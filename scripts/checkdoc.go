//go:build ignore

// Command checkdoc fails when an exported identifier in the given
// packages lacks a doc comment. It is the docs-hygiene gate wired into
// CI (.github/workflows/ci.yml) for the packages whose godoc the
// repository commits to keeping complete: internal/congest,
// internal/graphio, internal/service, internal/faultpoint,
// internal/partition, internal/core, internal/obs, internal/oracle,
// and internal/corpus.
//
// Usage: go run scripts/checkdoc.go [package-dir ...]
//
// Checked: exported types, functions, methods (on exported receivers),
// package-level constants and variables (a doc comment on the grouped
// decl covers its members), and struct fields of exported structs are
// NOT required (field docs are encouraged, not gated). Every package
// must also carry a package comment.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{
			"internal/congest", "internal/graphio", "internal/service",
			"internal/faultpoint", "internal/partition", "internal/core",
			"internal/obs", "internal/oracle", "internal/corpus",
		}
	}
	bad := 0
	for _, dir := range dirs {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d exported identifiers missing doc comments\n", bad)
		os.Exit(1)
	}
}

func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkdoc: %s: %v\n", dir, err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for path, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			bad += checkFile(fset, path, f)
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
	}
	return bad
}

func checkFile(fset *token.FileSet, path string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s has no doc comment\n", filepath.ToSlash(p.Filename), p.Line, kind, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue // method on an unexported type
			}
			report(d.Pos(), "function", d.Name.Name)
			bad++
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
						bad++
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl ("// Verdicts.")
					// covers every member of the group.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), d.Tok.String(), name.Name)
							bad++
						}
					}
				}
			}
		}
	}
	return bad
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
