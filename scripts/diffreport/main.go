// Command diffreport runs the differential-testing corpus: every named
// family instance goes through both the CONGEST planarity tester and the
// exact sequential oracle, and the confusion matrix lands as a text
// report. The committed docs/diffreport.txt artifact is produced by
//
//	go run ./scripts/diffreport -out docs/diffreport.txt
//
// and CI runs the same corpus (shorter schedule) as the diff-corpus
// gate. Exit status 1 when the gate fails: any oracle-planar instance
// rejected by the CONGEST tester, or any ε-far instance accepted.
//
// Usage:
//
//	go run ./scripts/diffreport [-sizes 32,72,128] [-seeds 1,2,3] [-eps 0.25] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/corpus"
)

func main() {
	var (
		sizes = flag.String("sizes", "", "comma-separated target node counts (default 32,72,128)")
		seeds = flag.String("seeds", "", "comma-separated seeds (default 1,2,3)")
		eps   = flag.Float64("eps", 0, "distance parameter for the CONGEST tester (default 0.25)")
		out   = flag.String("out", "", "write the report to this file instead of stdout")
	)
	flag.Parse()

	cfg := corpus.Config{Epsilon: *eps}
	var err error
	if cfg.Sizes, err = parseInts(*sizes); err != nil {
		fmt.Fprintln(os.Stderr, "diffreport: bad -sizes:", err)
		os.Exit(2)
	}
	if cfg.Seeds, err = parseInt64s(*seeds); err != nil {
		fmt.Fprintln(os.Stderr, "diffreport: bad -seeds:", err)
		os.Exit(2)
	}

	rep, err := corpus.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diffreport:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diffreport:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteText(w); err != nil {
		fmt.Fprintln(os.Stderr, "diffreport:", err)
		os.Exit(2)
	}
	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "diffreport: GATE FAILED with %d violations\n", len(rep.Violations))
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
