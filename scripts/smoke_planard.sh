#!/usr/bin/env bash
# End-to-end smoke test for the planard service (run by CI):
#
#   1. build all command binaries;
#   2. start planard;
#   3. POST a 10^4-node random planar graph (multipart, edge-list) and
#      require an accept verdict with CONGEST metrics;
#   4. POST the identical graph again and require a cache hit — both in
#      the response and in the /metrics counters, which must also expose
#      the request/run latency histograms and the per-phase engine
#      attribution series;
#   5. POST the same graph with mode=exact and require an oracle verdict
#      with its own cache entry (miss, then hit on replay) and the
#      planard_exact_runs_total counter;
#   6. shut the server down gracefully (SIGTERM) and require a clean exit;
#   7. restart with -checkpoint-dir, submit an async job and require its
#      GET view to expose a live progress object, SIGKILL the daemon
#      mid-run, restart it on the same directory, and require the
#      interrupted job to resume from its checkpoint, finish with the
#      same verdict, and repopulate the result cache;
#   8. restart-keeps-cache: start with -cache-dir, POST (cold run),
#      restart the daemon on the same directory, re-POST, and require a
#      cache hit served from the disk tier — no engine re-run.
#
# No dependencies beyond curl and the go toolchain.
#
# Usage: scripts/smoke_planard.sh [n]   (default n=10000)
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-10000}"
PORT="${PLANARD_SMOKE_PORT:-18234}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building command binaries"
go build -o "$WORK/bin/" ./cmd/...
ls "$WORK/bin"

echo "== generating a ${N}-node random planar graph"
"$WORK/bin/graphgen" -family randplanar -n "$N" -seed 7 > "$WORK/graph.txt"
wc -l "$WORK/graph.txt"

echo "== starting planard on :$PORT"
"$WORK/bin/planard" -addr "127.0.0.1:$PORT" > "$WORK/planard.log" 2>&1 &
SRV_PID=$!
for i in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "planard died on startup:"; cat "$WORK/planard.log"; exit 1; }
    sleep 0.1
done
curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null

post() {
    curl -sf -X POST "http://127.0.0.1:$PORT/v1/test" \
        -F 'request={"property":"planarity","epsilon":0.25,"seed":1}' \
        -F "graph=@$WORK/graph.txt"
}

# require BODY SUBSTRING LABEL: fail loudly when a response lacks a marker.
require() {
    if ! printf '%s' "$1" | grep -q "$2"; then
        echo "FAIL: $3: response missing '$2'" >&2
        printf '%s\n' "$1" >&2
        exit 1
    fi
}

echo "== POST 1 (cold): expect accept verdict with CONGEST metrics"
R1="$(post)"
require "$R1" '"state":"done"'        "first POST"
require "$R1" '"verdict":"accept"'    "first POST"
require "$R1" '"cache_hit":false'     "first POST"
require "$R1" '"rounds":'             "first POST (metrics)"
require "$R1" '"graph_n":'"$N"        "first POST (graph size)"

echo "== POST 2 (identical): expect a cache hit, no engine run"
R2="$(post)"
require "$R2" '"state":"done"'        "second POST"
require "$R2" '"verdict":"accept"'    "second POST"
require "$R2" '"cache_hit":true'      "second POST"

echo "== /metrics: one miss (the cold run), one hit (the replay)"
M="$(curl -sf "http://127.0.0.1:$PORT/metrics")"
require "$M" '^planard_cache_hits_total 1$'   "/metrics"
require "$M" '^planard_cache_misses_total 1$' "/metrics"
require "$M" 'planard_jobs_total{property="planarity",status="done"} 2' "/metrics"
# Overload-hardening families: present from the first scrape, with sane
# idle values (nothing shed, nothing quarantined, budget drained, and a
# live memory-tier entry from the run above).
require "$M" '^planard_shed_requests_total 0$'       "/metrics (admission)"
require "$M" '^planard_quarantined_entries_total 0$' "/metrics (disk integrity)"
require "$M" '^planard_inflight_graph_bytes 0$'      "/metrics (budget drained)"
require "$M" 'planard_cache_bytes{tier="mem"} [1-9]' "/metrics (mem tier accounted)"
require "$M" 'planard_cache_bytes{tier="disk"} 0'    "/metrics (disk tier off)"
# Telemetry added with the obs layer: request/run latency histograms and
# per-phase engine attribution, all populated by the two POSTs above.
require "$M" 'planard_request_seconds_bucket{route="test",status="200",le="+Inf"}' "/metrics (request histogram)"
require "$M" 'planard_request_seconds_count{route="test",status="200"} 2'          "/metrics (request histogram count)"
require "$M" 'planard_engine_run_seconds_bucket{property="planarity",le="+Inf"} 1' "/metrics (run histogram)"
require "$M" 'planard_engine_phase_seconds_total{phase="stage1/p01"}'              "/metrics (phase attribution)"
require "$M" 'planard_engine_phase_messages_total{phase="run"}'                    "/metrics (phase traffic)"

echo "== mode=exact: oracle verdict for the same graph, cached independently"
post_exact() {
    curl -sf -X POST "http://127.0.0.1:$PORT/v1/test" \
        -F 'request={"property":"planarity","mode":"exact"}' \
        -F "graph=@$WORK/graph.txt"
}
# Same graph bytes as the CONGEST runs above, but mode=exact keys its own
# cache entry: the first POST is a miss that runs the sequential oracle
# (no CONGEST metrics), the replay is a hit.
RE1="$(post_exact)"
require "$RE1" '"state":"done"'     "exact POST"
require "$RE1" '"verdict":"accept"' "exact POST"
require "$RE1" '"cache_hit":false'  "exact POST (independent of the congest entry)"
require "$RE1" '"mode":"exact"'     "exact POST"
require "$RE1" '"oracle":{'         "exact POST (oracle breakdown)"
require "$RE1" '"bicomps":'         "exact POST (oracle breakdown)"
RE2="$(post_exact)"
require "$RE2" '"cache_hit":true'   "exact replay"
require "$RE2" '"mode":"exact"'     "exact replay"
ME="$(curl -sf "http://127.0.0.1:$PORT/metrics")"
require "$ME" '^planard_exact_runs_total 1$'  "/metrics (exact run counter)"
require "$ME" '^planard_cache_hits_total 2$'  "/metrics (exact replay hit)"
require "$ME" '^planard_cache_misses_total 2$' "/metrics (exact entry distinct)"

echo "== graceful shutdown"
kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "FAIL: planard did not exit after SIGTERM" >&2
    exit 1
fi
SRV_PID=""
grep -q "planard: bye" "$WORK/planard.log" || { echo "FAIL: no clean shutdown marker"; cat "$WORK/planard.log"; exit 1; }

echo "== crash recovery: checkpointed run must survive SIGKILL + restart"
CKPT="$WORK/ckpt"
# Distinct graph (seed 8) so this section cannot collide with the
# cache/metrics assertions above. The cadence is sparse — a planarity
# run executes tens of thousands of barriers, so the first checkpoint
# still lands a few percent into the run, long before completion.
"$WORK/bin/graphgen" -family randplanar -n "$N" -seed 8 > "$WORK/big.txt"

start_durable() {
    "$WORK/bin/planard" -addr "127.0.0.1:$PORT" -checkpoint-dir "$CKPT" -checkpoint-every 2048 \
        > "$1" 2>&1 &
    SRV_PID=$!
    for i in $(seq 1 100); do
        curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
        kill -0 "$SRV_PID" 2>/dev/null || { echo "planard died on startup:"; cat "$1"; exit 1; }
        sleep 0.1
    done
    curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null
}

post_big() {
    curl -sf -X POST "http://127.0.0.1:$PORT/v1/test" \
        -F 'request={"property":"planarity","epsilon":0.25,"seed":2'"$1"'}' \
        -F "graph=@$WORK/big.txt"
}

start_durable "$WORK/planard2.log"
R3="$(post_big ',"async":true')"
require "$R3" '"state":' "async POST (durable)"
JOB_ID="$(printf '%s' "$R3" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB_ID" ] || { echo "FAIL: async POST returned no job_id" >&2; printf '%s\n' "$R3" >&2; exit 1; }

echo "== live progress: GET /v1/jobs/$JOB_ID reports phase/round while running"
PROGRESS=""
for i in $(seq 1 600); do
    PROGRESS="$(curl -sf "http://127.0.0.1:$PORT/v1/jobs/$JOB_ID" | grep -o '"progress":{[^}]*}' || true)"
    [ -n "$PROGRESS" ] && break
    sleep 0.05
done
[ -n "$PROGRESS" ] || { echo "FAIL: running job never exposed a progress object" >&2; exit 1; }
printf '%s\n' "$PROGRESS"
require "$PROGRESS" '"phase":'             "job progress"
require "$PROGRESS" '"round":'             "job progress"
require "$PROGRESS" '"barriers_executed":' "job progress"

CKFILE=""
for i in $(seq 1 600); do
    CKFILE="$(ls "$CKPT"/jobs/*/state.ckpt 2>/dev/null | head -n1 || true)"
    [ -n "$CKFILE" ] && break
    sleep 0.05
done
[ -n "$CKFILE" ] || { echo "FAIL: no checkpoint landed before the kill" >&2; cat "$WORK/planard2.log" >&2; exit 1; }

echo "== SIGKILL mid-run (checkpoint on disk: $CKFILE)"
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "== restart on the same -checkpoint-dir: the interrupted job resumes"
start_durable "$WORK/planard3.log"
grep -q "resumed 1 interrupted job" "$WORK/planard3.log" || {
    echo "FAIL: restart did not resume the interrupted job" >&2
    cat "$WORK/planard3.log" >&2
    exit 1
}

R4="$(post_big '')" # sync: coalesces onto the recovered run (or hits its result)
require "$R4" '"state":"done"'     "post-restart POST"
require "$R4" '"verdict":"accept"' "post-restart POST (same verdict as an uninterrupted run)"

R5="$(post_big '')"
require "$R5" '"cache_hit":true'   "post-restart replay (cache repopulated by the recovered run)"

M2="$(curl -sf "http://127.0.0.1:$PORT/metrics")"
require "$M2" '^planard_recovered_jobs_total 1$' "/metrics (recovery counter)"

kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
SRV_PID=""

echo "== restart-keeps-cache: results survive a restart via the disk tier"
DCACHE="$WORK/dcache"

start_cached() {
    "$WORK/bin/planard" -addr "127.0.0.1:$PORT" -cache-dir "$DCACHE" > "$1" 2>&1 &
    SRV_PID=$!
    for i in $(seq 1 100); do
        curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
        kill -0 "$SRV_PID" 2>/dev/null || { echo "planard died on startup:"; cat "$1"; exit 1; }
        sleep 0.1
    done
    curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null
    curl -sf "http://127.0.0.1:$PORT/readyz" >/dev/null
}

start_cached "$WORK/planard4.log"
R6="$(post)"
require "$R6" '"state":"done"'     "disk-cache cold POST"
require "$R6" '"cache_hit":false'  "disk-cache cold POST"

kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
SRV_PID=""
ls "$DCACHE"/cache/*/* >/dev/null || { echo "FAIL: no disk-cache entry landed" >&2; exit 1; }

start_cached "$WORK/planard5.log"
R7="$(post)"
require "$R7" '"state":"done"'     "post-restart cached POST"
require "$R7" '"verdict":"accept"' "post-restart cached POST"
require "$R7" '"cache_hit":true'   "post-restart cached POST (served from disk, no re-run)"

M3="$(curl -sf "http://127.0.0.1:$PORT/metrics")"
require "$M3" '^planard_cache_disk_hits_total 1$' "/metrics (disk tier hit)"
require "$M3" '^planard_cache_misses_total 0$'    "/metrics (no engine re-run after restart)"
require "$M3" 'planard_cache_bytes{tier="disk"} [1-9]' "/metrics (disk tier accounted)"

kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
SRV_PID=""

echo "smoke_planard: OK (n=$N, accept + cache hit + exact mode + graceful shutdown + kill-and-resume + restart-keeps-cache)"
