#!/usr/bin/env bash
# Runs the flagship experiment benchmarks (E1/E11/E12), the exact-oracle
# fast path (BenchmarkOracle: the mode=exact speedup baseline), the engine
# microbenchmarks, the serving-layer benchmarks (BenchmarkService:
# cache-hit and cache-miss paths), and the large-n family
# (BenchmarkLargeN), then writes a
# BENCH_<utc-timestamp>.json trajectory file in the repo root so future
# PRs can track the perf curve (scripts/bench_compare.sh gates regressions
# against the latest committed file).
#
# Usage: scripts/bench.sh [-short] [-cpuprofile FILE] [-memprofile FILE] [benchtime]
#   -short       CI mode: 1x benchtime and skip the 10^6-node LargeN sizes.
#                -short numbers are for the CI regression gate ONLY: one
#                iteration of the flagship benchmarks is too noisy to
#                serve as a baseline. Committed BENCH_*.json baselines
#                must come from a full run (no -short), and are committed
#                with `git add -f` past the .gitignore (DESIGN.md §5).
#   -cpuprofile  pass -cpuprofile to every go test invocation; since the
#                three benchmark groups are separate test runs, the file
#                name is suffixed per group (FILE.E.prof, FILE.engine.prof,
#                FILE.largen.prof). Inspect with `go tool pprof`.
#   -memprofile  same, for allocation profiles.
#   benchtime    go test -benchtime for the flagship/engine benchmarks
#                (default: 5x; the LargeN family always runs at 1x — each
#                iteration is tens of seconds to minutes, so one iteration
#                is the measurement).
# The profiling workflow is documented in DESIGN.md §5.
set -euo pipefail

cd "$(dirname "$0")/.."
SHORT=0
CPUPROF=""
MEMPROF=""
while :; do
    case "${1:-}" in
    -short) SHORT=1; shift ;;
    -cpuprofile) CPUPROF="$2"; shift 2 ;;
    -memprofile) MEMPROF="$2"; shift 2 ;;
    *) break ;;
    esac
done
BENCHTIME="${1:-5x}"
SHORTFLAG=""
if [ "$SHORT" = 1 ]; then
    BENCHTIME="${1:-1x}"
    SHORTFLAG="-short"
fi

# profflags GROUP -> per-group -cpuprofile/-memprofile arguments.
profflags() {
    local out=""
    [ -n "$CPUPROF" ] && out="$out -cpuprofile $CPUPROF.$1.prof"
    [ -n "$MEMPROF" ] && out="$out -memprofile $MEMPROF.$1.prof"
    echo "$out"
}
STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
OUT="BENCH_${STAMP}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkE1RoundsVsN|BenchmarkE11Baseline|BenchmarkE12Congestion|BenchmarkOracle' \
    -benchmem -benchtime "$BENCHTIME" $(profflags E) . | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkEngine' \
    -benchmem -benchtime "$BENCHTIME" $(profflags engine) ./internal/congest/ | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkService' \
    -benchmem -benchtime "$BENCHTIME" $(profflags service) ./internal/service/ | tee -a "$RAW"
go test $SHORTFLAG -run '^$' -bench 'BenchmarkLargeN' -timeout 6h \
    -benchmem -benchtime 1x $(profflags largen) . | tee -a "$RAW"

awk -v stamp="$STAMP" '
BEGIN { printf "{\n  \"timestamp\": \"%s\",\n  \"benchmarks\": [\n", stamp }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 2; i <= NF - 1; i++) {
        u = $(i + 1)
        if (u == "ns/op") ns = $i
        else if (u == "B/op") bytes = $i
        else if (u == "allocs/op") allocs = $i
        else if ($i ~ /^[0-9.]+$/ && u ~ /^[a-zA-Z][a-zA-Z0-9_\/-]*$/) {
            # custom testing.B metrics, e.g. "congest-rounds"
            gsub(/"/, "", u)
            if (extra != "") extra = extra ", "
            extra = sprintf("%s\"%s\": %s", extra, u, $i)
        }
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (extra != "")  printf ", %s", extra
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
