#!/usr/bin/env bash
# Runs the flagship experiment benchmarks (E1/E11/E12), the engine
# microbenchmarks, and the large-n family (BenchmarkLargeN), then writes a
# BENCH_<utc-timestamp>.json trajectory file in the repo root so future
# PRs can track the perf curve (scripts/bench_compare.sh gates regressions
# against the latest committed file).
#
# Usage: scripts/bench.sh [-short] [benchtime]
#   -short     CI mode: 1x benchtime and skip the 10^6-node LargeN sizes.
#   benchtime  go test -benchtime for the flagship/engine benchmarks
#              (default: 5x; the LargeN family always runs at 1x — each
#              iteration is tens of seconds to minutes, so one iteration
#              is the measurement).
set -euo pipefail

cd "$(dirname "$0")/.."
SHORT=0
if [ "${1:-}" = "-short" ]; then
    SHORT=1
    shift
fi
BENCHTIME="${1:-5x}"
SHORTFLAG=""
if [ "$SHORT" = 1 ]; then
    BENCHTIME="${1:-1x}"
    SHORTFLAG="-short"
fi
STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
OUT="BENCH_${STAMP}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkE1RoundsVsN|BenchmarkE11Baseline|BenchmarkE12Congestion' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkEngine' \
    -benchmem -benchtime "$BENCHTIME" ./internal/congest/ | tee -a "$RAW"
go test $SHORTFLAG -run '^$' -bench 'BenchmarkLargeN' -timeout 6h \
    -benchmem -benchtime 1x . | tee -a "$RAW"

awk -v stamp="$STAMP" '
BEGIN { printf "{\n  \"timestamp\": \"%s\",\n  \"benchmarks\": [\n", stamp }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 2; i <= NF - 1; i++) {
        u = $(i + 1)
        if (u == "ns/op") ns = $i
        else if (u == "B/op") bytes = $i
        else if (u == "allocs/op") allocs = $i
        else if ($i ~ /^[0-9.]+$/ && u ~ /^[a-zA-Z][a-zA-Z0-9_\/-]*$/) {
            # custom testing.B metrics, e.g. "congest-rounds"
            gsub(/"/, "", u)
            if (extra != "") extra = extra ", "
            extra = sprintf("%s\"%s\": %s", extra, u, $i)
        }
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (extra != "")  printf ", %s", extra
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
