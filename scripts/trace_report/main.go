// Command trace_report summarizes a JSONL run trace produced by the
// engine's obs.Tracer (planartest -trace FILE, or congest.Config.Trace
// directly): it folds the phase_exit segment deltas into a per-phase
// table, lists checkpoint/merge/fast-forward activity, and reports how
// much of the run's wall time the phase segments account for.
//
// Usage:
//
//	go run ./scripts/trace_report trace.jsonl
//	planartest -family grid -n 10000 -trace /tmp/t.jsonl && go run ./scripts/trace_report /tmp/t.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// event mirrors obs.Event (kept separate so the script stays a plain
// consumer of the documented JSONL schema, not of internal types).
type event struct {
	Event    string `json:"event"`
	AtNs     int64  `json:"at_ns"`
	Round    int64  `json:"round,omitempty"`
	Barrier  int64  `json:"barrier,omitempty"`
	Phase    string `json:"phase,omitempty"`
	WallNs   int64  `json:"wall_ns,omitempty"`
	Wakes    int64  `json:"wakes,omitempty"`
	Barriers int64  `json:"barriers,omitempty"`
	Messages int64  `json:"messages,omitempty"`
	Bits     int64  `json:"bits,omitempty"`
	Windows  int64  `json:"windows,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Merge    string `json:"merge,omitempty"`
	Shards   int64  `json:"shards,omitempty"`
	Err      string `json:"err,omitempty"`
	N        int64  `json:"n,omitempty"`
	M        int64  `json:"m,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Workers  int64  `json:"workers,omitempty"`
}

// phaseAgg accumulates one phase's segments (a phase can be re-entered,
// e.g. across multiple runs appended to one file).
type phaseAgg struct {
	name     string
	first    int64 // at_ns of the first segment exit, for stable ordering
	segments int64
	wallNs   int64
	wakes    int64
	barriers int64
	messages int64
	bits     int64
	windows  int64
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: trace_report FILE.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace_report:", err)
		os.Exit(1)
	}
	defer f.Close()

	phases := make(map[string]*phaseAgg)
	var (
		runs, checkpoints, ckptBytes, ffWindows, ffMessages int64
		mergeKinds                                          = map[string]int64{}
		totalWallNs, totalMessages, totalBits, lastRound    int64
		aborts                                              []string
		header                                              *event
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "trace_report: line %d: %v\n", line, err)
			os.Exit(1)
		}
		switch ev.Event {
		case "run_start":
			runs++
			if header == nil {
				h := ev
				header = &h
			}
		case "phase_exit":
			a := phases[ev.Phase]
			if a == nil {
				a = &phaseAgg{name: ev.Phase, first: ev.AtNs}
				phases[ev.Phase] = a
			}
			a.segments++
			a.wallNs += ev.WallNs
			a.wakes += ev.Wakes
			a.barriers += ev.Barriers
			a.messages += ev.Messages
			a.bits += ev.Bits
			a.windows += ev.Windows
		case "checkpoint":
			checkpoints++
			ckptBytes += ev.Bytes
		case "fast_forward":
			ffWindows += ev.Windows
			ffMessages += ev.Messages
		case "merge":
			mergeKinds[ev.Merge]++
		case "abort":
			aborts = append(aborts, ev.Err)
		case "run_end":
			totalWallNs += ev.WallNs
			totalMessages += ev.Messages
			totalBits += ev.Bits
			lastRound = ev.Round
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "trace_report:", err)
		os.Exit(1)
	}
	if header != nil {
		fmt.Printf("run: n=%d m=%d seed=%d workers=%d (%d run(s) in file)\n",
			header.N, header.M, header.Seed, header.Workers, runs)
	}

	ordered := make([]*phaseAgg, 0, len(phases))
	var sumNs, sumWakes, sumBarriers, sumMsgs, sumBits, sumWindows int64
	for _, a := range phases {
		ordered = append(ordered, a)
		sumNs += a.wallNs
		sumWakes += a.wakes
		sumBarriers += a.barriers
		sumMsgs += a.messages
		sumBits += a.bits
		sumWindows += a.windows
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].first < ordered[j].first })

	fmt.Printf("%-16s %12s %6s %12s %10s %12s %14s %8s\n",
		"phase", "wall", "%", "wakes", "barriers", "messages", "bits", "windows")
	for _, a := range ordered {
		pct := 0.0
		if totalWallNs > 0 {
			pct = 100 * float64(a.wallNs) / float64(totalWallNs)
		}
		fmt.Printf("%-16s %11.3fs %5.1f%% %12d %10d %12d %14d %8d\n",
			a.name, float64(a.wallNs)/1e9, pct, a.wakes, a.barriers, a.messages, a.bits, a.windows)
	}
	fmt.Printf("%-16s %11.3fs %5.1f%% %12d %10d %12d %14d %8d\n",
		"total", float64(sumNs)/1e9, pctOf(sumNs, totalWallNs), sumWakes, sumBarriers, sumMsgs, sumBits, sumWindows)

	fmt.Printf("\nrun wall: %.3fs over %d rounds; phase segments cover %.1f%% of it\n",
		float64(totalWallNs)/1e9, lastRound, pctOf(sumNs, totalWallNs))
	fmt.Printf("traffic: %d messages, %d bits (phase attribution: %d messages, %d bits)\n",
		totalMessages, totalBits, sumMsgs, sumBits)
	if ffWindows > 0 {
		fmt.Printf("fast-forward: %d windows charging %d messages\n", ffWindows, ffMessages)
	}
	if len(mergeKinds) > 0 {
		kinds := make([]string, 0, len(mergeKinds))
		for k := range mergeKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("barrier merges:")
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, mergeKinds[k])
		}
		fmt.Println()
	}
	if checkpoints > 0 {
		fmt.Printf("checkpoints: %d written, %d bytes total\n", checkpoints, ckptBytes)
	}
	for _, a := range aborts {
		fmt.Printf("abort: %s\n", a)
	}
}

func pctOf(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
