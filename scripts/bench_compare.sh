#!/usr/bin/env bash
# Bench-regression gate: compares a fresh BENCH_*.json (from
# scripts/bench.sh) against the latest *committed* BENCH_*.json and fails
# when any flagship (E1/E11/E12), Engine, Service/cache-hit, or the
# CI-sized LargeN planar benchmarks (n10000, n100000) regressed by more
# than the threshold in ns/op. New benchmarks (present only in the fresh
# file) and the 10^6-node LargeN sizes (minutes-long single iterations,
# skipped in -short mode) are reported but never gate; the gated LargeN
# sizes are single iterations too, so their threshold rides on the
# shared BENCH_REGRESSION_THRESHOLD. Committed baselines must come from
# full (non -short) bench.sh runs — see the bench.sh header.
#
# Usage: scripts/bench_compare.sh [fresh.json] [baseline.json]
#   fresh.json     defaults to the newest BENCH_*.json in the repo root
#   baseline.json  defaults to the newest git-tracked BENCH_*.json
set -euo pipefail

cd "$(dirname "$0")/.."
THRESHOLD="${BENCH_REGRESSION_THRESHOLD:-25}"

fresh="${1:-}"
base="${2:-}"
if [ -z "$base" ]; then
    base="$(git ls-files 'BENCH_*.json' | sort | tail -n1)"
fi
if [ -z "$base" ]; then
    echo "bench_compare: no committed BENCH_*.json baseline found" >&2
    exit 2
fi
if [ -z "$fresh" ]; then
    fresh="$(ls BENCH_*.json 2>/dev/null | sort | tail -n1)"
fi
if [ -z "$fresh" ] || [ ! -f "$fresh" ]; then
    echo "bench_compare: no fresh BENCH_*.json found (run scripts/bench.sh first)" >&2
    exit 2
fi
if [ "$fresh" = "$base" ]; then
    echo "bench_compare: fresh file $fresh is the committed baseline itself" >&2
    exit 2
fi

# Extract "name ns_per_op" pairs from the trajectory JSON. Layout-agnostic
# (bench.sh writes one object per line; older committed files are
# pretty-printed): flatten, then match adjacent name/ns_per_op fields.
extract() {
    tr -d '\n' < "$1" \
        | grep -o '"name"[[:space:]]*:[[:space:]]*"[^"]*"[[:space:]]*,[[:space:]]*"ns_per_op"[[:space:]]*:[[:space:]]*[0-9.]*' \
        | sed 's/"name"[[:space:]]*:[[:space:]]*"//; s/"[[:space:]]*,[[:space:]]*"ns_per_op"[[:space:]]*:[[:space:]]*/ /'
}

echo "bench_compare: $fresh vs baseline $base (gate: >${THRESHOLD}% ns/op on E1/E11/E12/Engine/Service-cache-hit/LargeN-n10000/LargeN-n100000)"
base_pairs="$(extract "$base")" || base_pairs=""
fail=0
compared=0
while read -r name ns; do
    gated=0
    case "$name" in
        BenchmarkE1RoundsVsN*|BenchmarkE11Baseline*|BenchmarkE12Congestion*|BenchmarkEngine*) gated=1 ;;
        BenchmarkLargeN/planar-n10000|BenchmarkLargeN/planar-n100000) gated=1 ;;
        BenchmarkService/cache-hit) gated=1 ;;
    esac
    bns="$(printf '%s\n' "$base_pairs" | awk -v n="$name" '$1 == n { print $2; exit }')" || bns=""
    if [ -z "$bns" ]; then
        printf '  %-55s %16.0f ns/op (new, no baseline)\n' "$name" "$ns"
        continue
    fi
    [ "$gated" = 1 ] && compared=$((compared + 1))
    awk -v n="$name" -v f="$ns" -v b="$bns" -v t="$THRESHOLD" -v g="$gated" 'BEGIN {
        pct = (f - b) / b * 100
        status = g ? "ok" : "info"
        if (g && pct > t) status = "REGRESSION"
        printf "  %-55s %14.0f -> %14.0f ns/op (%+6.1f%%) [%s]\n", n, b, f, pct, status
        exit (g && pct > t) ? 1 : 0
    }' || fail=1
done < <(extract "$fresh")

# Fail closed: a gate that compared nothing (unparseable file, renamed
# benchmarks) must not pass silently.
if [ "$compared" = 0 ]; then
    echo "bench_compare: FAIL — no gated benchmark could be compared (bad bench output or renamed benchmarks?)" >&2
    exit 2
fi
if [ "$fail" = 1 ]; then
    echo "bench_compare: FAIL — gated benchmark regressed more than ${THRESHOLD}% ns/op" >&2
    exit 1
fi
echo "bench_compare: OK (${compared} gated benchmarks compared)"
