package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

func TestFacadePlanarAccepted(t *testing.T) {
	res, err := repro.TestPlanarity(repro.Grid(8, 8), repro.TesterOptions{Epsilon: 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Fatal("planar grid rejected")
	}
}

func TestFacadeFarRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, dist := repro.PlanarPlusRandomEdges(80, 70, rng)
	if dist == 0 {
		t.Fatal("expected certified-far graph")
	}
	rate, err := repro.DetectionRate(g, repro.TesterOptions{Epsilon: 0.1}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.75 {
		t.Fatalf("detection rate %.2f too low", rate)
	}
}

func TestFacadePartition(t *testing.T) {
	g := repro.Grid(7, 7)
	part, cut, m, err := repro.Partition(g, repro.PartitionOptions{Epsilon: 0.3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != g.N() {
		t.Fatalf("partition covers %d of %d nodes", len(part), g.N())
	}
	if float64(cut) > 0.3*float64(g.M())/2 {
		t.Fatalf("cut %d exceeds eps*m/2", cut)
	}
	if m.Rounds == 0 {
		t.Fatal("metrics missing")
	}
}

func TestFacadeSpanner(t *testing.T) {
	g := repro.Grid(9, 9)
	sp, _, err := repro.BuildSpanner(g, repro.SpannerOptions{Epsilon: 0.3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.IsConnected() {
		t.Fatal("spanner disconnected")
	}
	if float64(sp.M()) > 1.6*float64(g.N()) {
		t.Fatalf("spanner too dense: %d edges", sp.M())
	}
}

func TestFacadeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := repro.RandomTree(50, rng)
	res, err := repro.TestProperty(tr, repro.CycleFreeness, repro.PropertyOptions{Epsilon: 0.25}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Fatal("tree rejected by cycle-freeness tester")
	}
	res, err = repro.TestProperty(repro.Grid(6, 6), repro.Bipartiteness, repro.PropertyOptions{Epsilon: 0.25}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Fatal("grid rejected by bipartiteness tester")
	}
}

func TestFacadeHereditaryOuterplanarity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ok, err := repro.TestHereditary(repro.RandomTree(40, rng), repro.IsOuterplanar,
		repro.PropertyOptions{Epsilon: 0.25}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Rejected {
		t.Fatal("tree rejected by outerplanarity tester")
	}
	bad, err := repro.TestHereditary(repro.MaximalPlanar(50, rng), repro.IsOuterplanar,
		repro.PropertyOptions{Epsilon: 0.2}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !bad.Rejected {
		t.Fatal("maximal planar graph accepted by outerplanarity tester")
	}
}

func TestFacadeLowerBound(t *testing.T) {
	ins := repro.NewLowerBoundInstance(512, 8, 8)
	if !ins.GirthAtLeast() {
		t.Fatal("girth surgery failed")
	}
	if ins.CertifiedDistance <= 0 {
		t.Fatal("instance not certified far")
	}
}

func TestFacadeK5Rejected(t *testing.T) {
	res, err := repro.TestPlanarity(repro.Complete(5), repro.TesterOptions{Epsilon: 0.5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected {
		t.Fatal("K5 accepted")
	}
}
