// Package repro is a full reproduction of "Property Testing of Planarity
// in the CONGEST model" (Levi, Medina, Ron; PODC 2018): a distributed
// one-sided property tester for planarity running in
// O(log n * poly(1/eps)) rounds of the CONGEST model, together with every
// substrate it needs — a CONGEST simulator, a planarity/embedding engine,
// the Barenboim–Elkin forest decomposition, the Stage I partitioning
// algorithm (deterministic and randomized), the Stage II violating-edge
// tester, the minor-free applications of §4 (cycle-freeness and
// bipartiteness testers, ultra-sparse spanners), and the §3 lower-bound
// construction.
//
// This root package is a thin facade over the implementation packages in
// internal/; see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduced results.
//
// Quick start:
//
//	g := repro.Grid(16, 16)
//	res, err := repro.TestPlanarity(g, repro.TesterOptions{Epsilon: 0.25}, 1)
//	// res.Rejected == false: every node accepted the planar grid.
package repro

import (
	"math/rand"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/partition"
	"repro/internal/planar"
	"repro/internal/spanner"
	"repro/internal/testers"
)

// Graph is a simple undirected graph with dense node indices.
type Graph = graph.Graph

// TesterOptions configures the planarity tester (Theorem 1).
type TesterOptions = core.Options

// TesterResult summarizes a tester run.
type TesterResult = core.RunResult

// Metrics is the CONGEST accounting of a run.
type Metrics = congest.Metrics

// TestPlanarity runs the distributed one-sided planarity tester on g.
// On planar inputs every node accepts; on inputs eps-far from planarity
// at least one node rejects with high probability.
func TestPlanarity(g *Graph, opts TesterOptions, seed int64) (*TesterResult, error) {
	return core.RunTester(g, opts, seed)
}

// DetectionRate runs the tester across several seeds and reports the
// fraction of runs that rejected.
func DetectionRate(g *Graph, opts TesterOptions, trials int, baseSeed int64) (float64, error) {
	return core.DetectionRate(g, opts, trials, baseSeed)
}

// Property is a minor-free testable property (Corollary 16).
type Property = testers.Property

// Minor-free properties.
const (
	CycleFreeness = testers.CycleFreeness
	Bipartiteness = testers.Bipartiteness
)

// PropertyOptions configures a minor-free property test.
type PropertyOptions = testers.Options

// TestProperty runs the distributed cycle-freeness or bipartiteness
// tester under the minor-free promise.
func TestProperty(g *Graph, prop Property, opts PropertyOptions, seed int64) (*TesterResult, error) {
	return testers.Run(g, prop, opts, seed)
}

// PartPredicate decides a hereditary property on a gathered part.
type PartPredicate = testers.PartPredicate

// TestHereditary runs the generic hereditary-property tester of the §4.2
// remark: any property closed under induced subgraphs and decidable per
// part (e.g. outerplanarity via IsOuterplanar) plugs into the partition.
func TestHereditary(g *Graph, pred PartPredicate, opts PropertyOptions, seed int64) (*TesterResult, error) {
	return testers.RunHereditary(g, pred, opts, seed)
}

// IsOuterplanar reports outerplanarity ({K4, K23}-minor freeness),
// usable as a PartPredicate.
func IsOuterplanar(g *Graph) bool { return planar.IsOuterplanar(g) }

// SpannerOptions configures the spanner construction (Corollary 17).
type SpannerOptions = spanner.Options

// BuildSpanner constructs a poly(1/eps)-spanner with (1+O(eps))n edges of
// a minor-free graph; it returns the spanner subgraph and run metrics.
func BuildSpanner(g *Graph, opts SpannerOptions, seed int64) (*Graph, Metrics, error) {
	sp, _, m, err := spanner.Collect(g, opts, seed)
	return sp, m, err
}

// PartitionOptions configures Stage I (Theorems 3 and 4).
type PartitionOptions = partition.Options

// Partition runs the Stage I partitioning algorithm and returns the part
// assignment (part root id per node), the edge cut, and metrics.
func Partition(g *Graph, opts PartitionOptions, seed int64) (part []int, cut int, m Metrics, err error) {
	outs, _, res, err := partition.CollectStageI(g, opts, seed)
	if err != nil {
		return nil, 0, Metrics{}, err
	}
	return partition.PartAssignment(outs), partition.CutEdges(g, outs), res.Metrics, nil
}

// LowerBoundInstance is a §3 instance: certified far from planarity with
// girth Theta(log n).
type LowerBoundInstance = lowerbound.Instance

// NewLowerBoundInstance builds a lower-bound instance on n nodes with
// average degree c.
func NewLowerBoundInstance(n int, c float64, seed int64) *LowerBoundInstance {
	return lowerbound.New(n, c, seed)
}

// Graph generators re-exported for examples and downstream use.

// Grid returns the rows x cols planar grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// MaximalPlanar returns a random maximal planar graph (m = 3n-6).
func MaximalPlanar(n int, rng *rand.Rand) *Graph { return graph.MaximalPlanar(n, rng) }

// RandomPlanar returns a connected random planar graph with m edges.
func RandomPlanar(n, m int, rng *rand.Rand) *Graph { return graph.RandomPlanar(n, m, rng) }

// PlanarPlusRandomEdges returns a maximal planar graph with extra random
// edges and the certified distance to planarity.
func PlanarPlusRandomEdges(n, extra int, rng *rand.Rand) (*Graph, int) {
	return graph.PlanarPlusRandomEdges(n, extra, rng)
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// RandomTree returns a uniform-attachment random tree.
func RandomTree(n int, rng *rand.Rand) *Graph { return graph.RandomTree(n, rng) }
