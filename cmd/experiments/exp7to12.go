package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/partition"
	"repro/internal/planar"
	"repro/internal/spanner"
	"repro/internal/testers"
)

// runE7 builds the §3 lower-bound instances: certified-far graphs whose
// girth (hence the view-indistinguishability radius) grows with log n,
// while the full tester still rejects them.
func runE7(quick bool) error {
	ns := []int{256, 512, 1024, 2048, 4096}
	if quick {
		ns = []int{256, 512, 1024}
	}
	rng := rand.New(rand.NewSource(7))
	row("n", "girth>=", "cert.eps", "removed", "tree-views@r", "tester rejects")
	for _, n := range ns {
		ins := lowerbound.New(n, 8, 17)
		if !ins.GirthAtLeast() {
			return fmt.Errorf("n=%d: surgery failed", n)
		}
		r := (ins.MinGirth - 2) / 2
		frac := lowerbound.FractionTreeViews(ins.G, r, 150, rng)
		if frac != 1 {
			return fmt.Errorf("n=%d: non-tree view below girth radius", n)
		}
		res, err := core.RunTester(ins.G, core.Options{Epsilon: ins.Epsilon / 2}, 23)
		if err != nil {
			return err
		}
		row(n, ins.MinGirth, fmt.Sprintf("%.3f", ins.Epsilon), ins.RemovedEdges,
			fmt.Sprintf("100%% (r=%d)", r), res.Rejected)
	}
	fmt.Println("below the girth radius every local view is a forest, so ANY one-sided")
	fmt.Println("tester with that round budget must accept; the radius grows with log n.")
	return nil
}

// runE8 sweeps (eps, delta) for the randomized partition (Theorem 4):
// rounds grow with log(1/delta) and poly(1/eps); the cut bound holds with
// probability >= 1 - delta.
func runE8(quick bool) error {
	g := graph.Grid(10, 10)
	seeds := 8
	if quick {
		seeds = 4
	}
	row("eps", "delta", "trials/phase", "mean rounds", "cut<=eps*n rate")
	for _, eps := range []float64{0.5, 0.25} {
		for _, delta := range []float64{0.25, 0.06, 0.015} {
			opts := partition.Options{Epsilon: eps, Variant: partition.Randomized, Delta: delta}
			good, totalRounds := 0, 0
			for s := 0; s < seeds; s++ {
				outs, _, res, err := partition.CollectStageI(g, opts, int64(100+s))
				if err != nil {
					return err
				}
				totalRounds += res.Metrics.Rounds
				if float64(partition.CutEdges(g, outs)) <= eps*float64(g.N()) {
					good++
				}
			}
			row(eps, delta, opts.SelectionTrials(),
				totalRounds/seeds, fmt.Sprintf("%d/%d", good, seeds))
		}
	}
	fmt.Println("the per-phase selection cost grows with log(1/delta) (trials column); total")
	fmt.Println("rounds also depend on how quickly parts merge, so the interplay is visible")
	fmt.Println("in the mean-rounds column. The cut bound holds across seeds at every delta.")
	return nil
}

// runE9 exercises the Corollary 16 testers with both partition variants.
func runE9(quick bool) error {
	rng := rand.New(rand.NewSource(9))
	type tc struct {
		name   string
		g      *graph.Graph
		prop   testers.Property
		expect bool
	}
	cases := []tc{
		{"tree n=100", graph.RandomTree(100, rng), testers.CycleFreeness, false},
		{"tree+40 edges", graph.TreePlusRandomEdges(100, 40, rng), testers.CycleFreeness, true},
		{"grid 10x10", graph.Grid(10, 10), testers.Bipartiteness, false},
		{"grid+odd chords", graph.GridWithOddChords(10, 10, 12, rng), testers.Bipartiteness, true},
	}
	variants := []struct {
		name string
		opts testers.Options
	}{
		{"deterministic", testers.Options{Epsilon: 0.2}},
		{"randomized", testers.Options{Epsilon: 0.2,
			Partition: partition.Options{Epsilon: 0.2, Variant: partition.Randomized}}},
	}
	row("input", "property", "variant", "verdict", "rounds")
	for _, c := range cases {
		for _, v := range variants {
			res, err := testers.Run(c.g, c.prop, v.opts, 31)
			if err != nil {
				return err
			}
			if res.Rejected != c.expect {
				return fmt.Errorf("%s/%s: verdict %v, want %v", c.name, v.name, res.Rejected, c.expect)
			}
			verdict := "accept"
			if res.Rejected {
				verdict = "REJECT"
			}
			row(c.name, c.prop.String(), v.name, verdict, res.Metrics.Rounds)
		}
	}
	// Hereditary-property extension (§4.2 remark): outerplanarity.
	hcases := []struct {
		name   string
		g      *graph.Graph
		expect bool
	}{
		{"outerplanar n=60", graph.Outerplanar(60, rng), false},
		{"maxplanar n=60", graph.MaximalPlanar(60, rng), true},
	}
	for _, c := range hcases {
		res, err := testers.RunHereditary(c.g, planar.IsOuterplanar,
			testers.Options{Epsilon: 0.2,
				Partition: partition.Options{Epsilon: 0.2, Variant: partition.Randomized}}, 37)
		if err != nil {
			return err
		}
		if res.Rejected != c.expect {
			return fmt.Errorf("hereditary %s: verdict %v, want %v", c.name, res.Rejected, c.expect)
		}
		verdict := "accept"
		if res.Rejected {
			verdict = "REJECT"
		}
		row(c.name, "outerplanarity", "hereditary", verdict, res.Metrics.Rounds)
	}
	return nil
}

// runE10 sweeps eps for the spanner construction: size (1+O(eps))n,
// stretch bounded by the per-part certificate.
func runE10(quick bool) error {
	rng := rand.New(rand.NewSource(10))
	inputs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 16x16", graph.Grid(16, 16)},
		{"maxplanar n=250", graph.MaximalPlanar(250, rng)},
	}
	if quick {
		inputs = inputs[:1]
	}
	row("input", "eps", "edges/n", "(1+2eps)", "max stretch", "mean stretch")
	for _, in := range inputs {
		for _, eps := range []float64{0.5, 0.25, 0.125} {
			sp, views, _, err := spanner.Collect(in.g, spanner.Options{Epsilon: eps}, 13)
			if err != nil {
				return err
			}
			if err := spanner.VerifySymmetric(in.g, views); err != nil {
				return err
			}
			ratio := float64(sp.M()) / float64(in.g.N())
			if ratio > 1+2*eps {
				return fmt.Errorf("%s eps=%.2f: size ratio %.3f exceeds bound", in.name, eps, ratio)
			}
			maxS, meanS := spanner.MeasureStretch(in.g, sp, 250, rng)
			row(in.name, eps, fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.2f", 1+2*eps),
				fmt.Sprintf("%.1f", maxS), fmt.Sprintf("%.2f", meanS))
		}
	}
	fmt.Println("ultra-sparse: edges/n stays near 1 while eps shrinks the cut contribution.")
	return nil
}

// runE11 compares the full tester on Stage I against the Elkin–Neiman
// baseline: EN has cheaper partitioning (O(log n/eps) rounds) but its
// parts have Theta(log n/eps) diameter, which Stage II pays back; the
// paper's Stage I keeps part diameter eps-only.
func runE11(quick bool) error {
	sides := []int{8, 12, 16, 24}
	if quick {
		sides = []int{8, 12}
	}
	eps := 0.25
	row("n", "rounds(StageI)", "rounds(EN)", "EN part diam", "EN cut/m")
	for _, s := range sides {
		g := graph.Grid(s, s)
		r1, err := core.RunTester(g, core.Options{Epsilon: eps}, 3)
		if err != nil {
			return err
		}
		r2, err := core.RunTester(g, core.Options{Epsilon: eps, UseEN: true}, 3)
		if err != nil {
			return err
		}
		outs, _, _, err := partition.CollectEN(g, eps, 3)
		if err != nil {
			return err
		}
		row(g.N(), r1.Metrics.Rounds, r2.Metrics.Rounds,
			partition.MaxPartDiameter(g, outs),
			fmt.Sprintf("%.3f", float64(partition.CutEdges(g, outs))/float64(g.M())))
	}
	fmt.Println("EN rounds grow with log^2 n flavor (diameter log n/eps enters Stage II),")
	fmt.Println("while Stage I pays a larger eps-constant but only log n in n.")
	return nil
}

// runE12 verifies CONGEST conformance across the whole pipeline: the
// maximum message ever sent stays within B = O(log n) bits.
func runE12(quick bool) error {
	rng := rand.New(rand.NewSource(12))
	inputs := []struct {
		name string
		g    *graph.Graph
		opts core.Options
	}{
		{"grid 12x12 det", graph.Grid(12, 12), core.Options{Epsilon: 0.25}},
		{"maxplanar n=150", graph.MaximalPlanar(150, rng), core.Options{Epsilon: 0.25}},
		{"far n=100", mustFar(100, 80, rng), core.Options{Epsilon: 0.1}},
		{"grid EN", graph.Grid(12, 12), core.Options{Epsilon: 0.25, UseEN: true}},
	}
	if quick {
		inputs = inputs[:2]
	}
	row("run", "bound B", "max msg bits", "messages", "msgs/round", "modeled rounds")
	for _, in := range inputs {
		res, err := core.RunTester(in.g, in.opts, 29)
		if err != nil {
			return err
		}
		m := res.Metrics
		if m.MaxMessageBits > m.BitBound {
			return fmt.Errorf("%s: message %d bits exceeds bound %d", in.name, m.MaxMessageBits, m.BitBound)
		}
		perRound := float64(m.Messages) / math.Max(1, float64(m.Rounds))
		row(in.name, m.BitBound, m.MaxMessageBits, m.Messages,
			fmt.Sprintf("%.2f", perRound), m.ModeledRounds)
	}
	fmt.Println("every message fits the O(log n)-bit CONGEST bound; long payloads were chunked.")
	return nil
}

func mustFar(n, extra int, rng *rand.Rand) *graph.Graph {
	g, _ := graph.PlanarPlusRandomEdges(n, extra, rng)
	return g
}
