package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/planar"
)

// runE1 measures tester rounds against n at fixed eps on planar inputs.
//
// Theorem 1's O(log n * poly(1/eps)) holds for the paper's literal
// schedule, whose fixed phase count t(eps) hides a constant of order
// 4^t — unobservable. Two practically measurable regimes:
//
//   - fixed phase count (practical schedule): the n-dependence is exactly
//     the Theta(log n) super-round count — rounds/log2(n) converges;
//   - paper schedule with early exit: parts merge fully after ~log n
//     phases, and the exponentially growing budget of the last phase
//     dominates, so rounds grow polynomially in n (still far below the
//     paper's 4^t constant).
func runE1(quick bool) error {
	sides := []int{8, 12, 16, 24, 32}
	if quick {
		sides = []int{8, 12, 16}
	}
	eps := 0.25
	row("n", "m", "rounds(fixed-t)", "perlog2n", "rounds(early-exit)")
	for _, s := range sides {
		g := graph.Grid(s, s)
		fixed := core.Options{Epsilon: eps}
		fixed.Partition = partition.Options{Epsilon: eps, Schedule: partition.PracticalSchedule}
		rf, err := core.RunTester(g, fixed, 1)
		if err != nil {
			return err
		}
		re, err := core.RunTester(g, core.Options{Epsilon: eps}, 1)
		if err != nil {
			return err
		}
		logn := math.Log2(float64(g.N()))
		row(g.N(), g.M(), rf.Metrics.Rounds,
			fmt.Sprintf("%.0f", float64(rf.Metrics.Rounds)/logn),
			re.Metrics.Rounds)
	}
	fmt.Println("fixed-t rounds/log2(n) approaches a constant (the poly(1/eps) factor);")
	fmt.Println("the early-exit variant trades the 4^t constant for polynomial n-growth.")
	return nil
}

// runE2 verifies one-sidedness (planar inputs: zero rejections, ever) and
// measures the detection rate on certified-far inputs.
func runE2(quick bool) error {
	rng := rand.New(rand.NewSource(2))
	seeds := 6
	if quick {
		seeds = 3
	}
	planarInputs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 12x12", graph.Grid(12, 12)},
		{"maxplanar n=150", graph.MaximalPlanar(150, rng)},
		{"randplanar n=150", graph.RandomPlanar(150, 300, rng)},
		{"tree n=150", graph.RandomTree(150, rng)},
	}
	row("planar input", "runs", "false rejects")
	for _, in := range planarInputs {
		rate, err := core.DetectionRate(in.g, core.Options{Epsilon: 0.25}, seeds, 10)
		if err != nil {
			return err
		}
		row(in.name, seeds, fmt.Sprintf("%.0f (must be 0)", rate*float64(seeds)))
		if rate != 0 {
			return fmt.Errorf("one-sidedness violated on %s", in.name)
		}
	}
	row("far input", "cert. eps", "detection rate")
	for _, extra := range []int{40, 80, 160} {
		g, dist := graph.PlanarPlusRandomEdges(120, extra, rng)
		eps := float64(dist) / float64(g.M())
		rate, err := core.DetectionRate(g, core.Options{Epsilon: eps / 2}, seeds, 20)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("planar+%d", extra), fmt.Sprintf("%.3f", eps), fmt.Sprintf("%.0f%%", 100*rate))
	}
	return nil
}

// runE3 measures the cut weight after each phase against the Claim 1
// bound (1 - 1/(12*alpha))^k * m and the Claim 14 randomized bound.
func runE3(quick bool) error {
	g := graph.Grid(14, 14)
	if quick {
		g = graph.Grid(9, 9)
	}
	maxPhases := 8
	row("phase", "cut(det)", "cut(rand)", "Claim1 bound", "Claim14 bound")
	m := float64(g.M())
	alpha := 3.0
	for k := 1; k <= maxPhases; k++ {
		det, _, _, err := partition.CollectStageI(g,
			partition.Options{Epsilon: 0.25, MaxPhases: k}, 3)
		if err != nil {
			return err
		}
		rnd, _, _, err := partition.CollectStageI(g,
			partition.Options{Epsilon: 0.25, Variant: partition.Randomized, MaxPhases: k}, 3)
		if err != nil {
			return err
		}
		b1 := m * math.Pow(1-1/(12*alpha), float64(k))
		b14 := m * math.Pow(1-1/(64*alpha), float64(k))
		row(k, partition.CutEdges(g, det), partition.CutEdges(g, rnd),
			fmt.Sprintf("%.0f", b1), fmt.Sprintf("%.0f", b14))
	}
	fmt.Println("measured cuts must stay below the proved per-phase bounds (they shrink much faster).")
	return nil
}

// runE4 measures the maximum part diameter after each phase against the
// Claim 4 bound 3^k - 1.
func runE4(quick bool) error {
	g := graph.Grid(14, 14)
	if quick {
		g = graph.Grid(9, 9)
	}
	row("phase", "max part diam", "bound 3^k-1", "#parts")
	for k := 1; k <= 7; k++ {
		outs, _, _, err := partition.CollectStageI(g,
			partition.Options{Epsilon: 0.25, MaxPhases: k}, 5)
		if err != nil {
			return err
		}
		d := partition.MaxPartDiameter(g, outs)
		bound := partition.DiamBound(k + 1)
		if d > bound {
			return fmt.Errorf("phase %d: diameter %d exceeds bound %d", k, d, bound)
		}
		row(k, d, bound, partition.NumParts(outs))
	}
	return nil
}

// runE5 sweeps eps and checks the final cut against eps*m/2 (Claim 3) for
// the paper schedule, with the practical schedule as an ablation.
func runE5(quick bool) error {
	rng := rand.New(rand.NewSource(5))
	inputs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 12x12", graph.Grid(12, 12)},
		{"maxplanar n=120", graph.MaximalPlanar(120, rng)},
	}
	epss := []float64{0.5, 0.3, 0.2, 0.1}
	if quick {
		epss = []float64{0.5, 0.25}
	}
	row("input", "eps", "eps*m/2", "cut(paper)", "cut(practical)")
	for _, in := range inputs {
		for _, eps := range epss {
			po, _, _, err := partition.CollectStageI(in.g, partition.Options{Epsilon: eps}, 7)
			if err != nil {
				return err
			}
			pr, _, _, err := partition.CollectStageI(in.g,
				partition.Options{Epsilon: eps, Schedule: partition.PracticalSchedule}, 7)
			if err != nil {
				return err
			}
			cut := partition.CutEdges(in.g, po)
			if float64(cut) > eps*float64(in.g.M())/2 {
				return fmt.Errorf("%s eps=%.2f: cut %d exceeds bound", in.name, eps, cut)
			}
			row(in.name, eps, fmt.Sprintf("%.1f", eps*float64(in.g.M())/2),
				cut, partition.CutEdges(in.g, pr))
		}
	}
	return nil
}

// runE6 counts violating edges: zero on planar inputs (Claim 10, with the
// attachment-label erratum fix); at least the certified distance on far
// inputs (Corollary 9), under both embedding fallback modes.
func runE6(quick bool) error {
	rng := rand.New(rand.NewSource(6))
	trials := 200
	if quick {
		trials = 50
	}
	worstPlanar := 0
	for i := 0; i < trials; i++ {
		n := 10 + rng.Intn(60)
		g := graph.RandomPlanar(n, n-1+rng.Intn(2*n-5), rng)
		emb, err := planar.Embed(g)
		if err != nil {
			return err
		}
		root := rng.Intn(n)
		v, _ := core.CountViolations(g, root, g.BFS(root).Parent, emb)
		if v > worstPlanar {
			worstPlanar = v
		}
	}
	fmt.Printf("planar sweep (%d graphs): max violating edges = %d (must be 0)\n", trials, worstPlanar)
	if worstPlanar != 0 {
		return fmt.Errorf("violations on planar input")
	}
	row("far input", "cert. dist", "viol(arbitrary)", "viol(maxsubgraph)")
	for _, extra := range []int{10, 25, 50} {
		g, dist := graph.PlanarPlusRandomEdges(80, extra, rng)
		root := 0
		parent := g.BFS(root).Parent
		ra := planar.EmbedOrFallback(g, planar.FallbackArbitrary)
		va, _ := core.CountViolations(g, root, parent, ra.Embedding)
		rm := planar.EmbedOrFallback(g, planar.FallbackMaxPlanarSubgraph)
		vm, _ := core.CountViolations(g, root, parent, rm.Embedding)
		if va < dist || vm < dist {
			return fmt.Errorf("violations below certified distance (%d/%d < %d)", va, vm, dist)
		}
		row(fmt.Sprintf("planar+%d", extra), dist, va, vm)
	}
	fmt.Println("Corollary 9 holds for any ordering: violations >= distance; the adversarial")
	fmt.Println("max-planar-subgraph ordering yields fewer violations but never below the bound.")
	return nil
}
