// Command experiments regenerates every experiment of the reproduction
// (E1-E12 in DESIGN.md), one table per theorem/claim of the paper. The
// paper is a theory paper with no empirical section, so these tables ARE
// the "figures": each checks a proved bound or asymptotic shape.
//
// Usage:
//
//	experiments            # run everything (minutes)
//	experiments -run E1,E5 # selected experiments
//	experiments -quick     # smaller sizes (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id    string
	title string
	run   func(q bool) error
}

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "smaller instances")
	)
	flag.Parse()

	all := []experiment{
		{"E1", "Theorem 1: rounds scale as O(log n) for fixed eps", runE1},
		{"E2", "Theorem 1: one-sided error and detection rate", runE2},
		{"E3", "Claims 1/14: per-phase cut-weight contraction", runE3},
		{"E4", "Claim 4: part diameter vs 3^i-1 bound", runE4},
		{"E5", "Claim 3/Theorem 3: final cut vs eps*m/2", runE5},
		{"E6", "Claims 8-10/Corollary 9: violating-edge counts", runE6},
		{"E7", "Theorem 2: lower-bound instances", runE7},
		{"E8", "Theorem 4: randomized partition tradeoff", runE8},
		{"E9", "Corollary 16: cycle-freeness and bipartiteness", runE9},
		{"E10", "Corollary 17: ultra-sparse spanners", runE10},
		{"E11", "Section 1.1: Stage I vs Elkin-Neiman baseline", runE11},
		{"E12", "CONGEST conformance: message sizes and traffic", runE12},
	}
	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("=== %s — %s ===\n", e.id, e.title)
		start := time.Now()
		if err := e.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed++
		}
		fmt.Printf("(%s took %.1fs)\n\n", e.id, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// row prints aligned columns.
func row(cols ...any) {
	var b strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&b, "%14v", c)
	}
	fmt.Println(b.String())
}

func sortedKeys[T any](m map[int]T) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
