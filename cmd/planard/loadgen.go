package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/service"
)

// runLoadgen drives a planard instance with a mixed workload: random
// graph families and sizes, all four wire formats, every property, and
// a configurable fraction of repeated requests that should land in the
// result cache. It reports sustained throughput and a latency profile.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("planard loadgen", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "planard base URL")
		duration    = fs.Duration("duration", 15*time.Second, "how long to drive load")
		concurrency = fs.Int("concurrency", 4, "client goroutines")
		nmin        = fs.Int("nmin", 64, "smallest graph")
		nmax        = fs.Int("nmax", 2048, "largest graph")
		eps         = fs.Float64("eps", 0.25, "distance parameter")
		seed        = fs.Int64("seed", 1, "workload seed")
		repeat      = fs.Float64("repeat", 0.5, "fraction of requests re-sent from the recent pool (cache exercise)")
		properties  = fs.String("properties", "planarity,cycle-freeness,bipartiteness,spanner", "comma list of properties to mix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	props, err := splitProps(*properties)
	if err != nil {
		return err
	}

	// Probe the server before unleashing the fleet.
	if resp, err := http.Get(*addr + "/healthz"); err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var (
		wg        sync.WaitGroup
		requests  atomic.Int64
		failures  atomic.Int64
		rejects   atomic.Int64
		cacheHits atomic.Int64
		retries   atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	started := time.Now()
	stopAt := started.Add(*duration)
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
			w := newWorkload(rng, *nmin, *nmax, *eps, props, *repeat)
			client := &http.Client{Timeout: 5 * time.Minute}
			for time.Now().Before(stopAt) {
				body, ctype := w.next()
				start := time.Now()
				view, err := postTestRetry(client, *addr, body, ctype, rng, &retries)
				lat := time.Since(start)
				requests.Add(1)
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
				switch {
				case err != nil:
					failures.Add(1)
				default:
					if view.CacheHit {
						cacheHits.Add(1)
					}
					if view.Outcome != nil && view.Outcome.Rejected {
						rejects.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(started) // actual window: late sync requests overshoot -duration

	n := requests.Load()
	if n == 0 {
		return fmt.Errorf("no requests completed")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("planard loadgen: %d requests in %s (%.1f req/s, %d clients)\n",
		n, elapsed.Round(time.Second), float64(n)/elapsed.Seconds(), *concurrency)
	fmt.Printf("  failures:   %d\n", failures.Load())
	fmt.Printf("  retries:    %d (503 answers retried with backoff)\n", retries.Load())
	fmt.Printf("  rejects:    %d (far-from-property instances in the mix)\n", rejects.Load())
	fmt.Printf("  cache hits: %d (%.0f%%)\n", cacheHits.Load(), 100*float64(cacheHits.Load())/float64(n))
	fmt.Printf("  latency:    p50 %s  p90 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%d requests failed", f)
	}
	return nil
}

func splitProps(s string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(s, ",") {
		name := strings.TrimSpace(p)
		if name == "" {
			continue
		}
		ok := false
		for _, known := range service.Properties() {
			if name == known {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown property %q", name)
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no properties selected")
	}
	return out, nil
}

// workload generates requests: fresh random (family, size, seed)
// combinations serialized in a rotating format, with a `repeat`
// fraction re-sent from a pool of recently issued requests so the
// server's cache sees realistic re-reference traffic.
type workload struct {
	rng        *rand.Rand
	nmin, nmax int
	eps        float64
	props      []string
	repeat     float64
	recent     [][2]string // body, content type
	k          int
}

func newWorkload(rng *rand.Rand, nmin, nmax int, eps float64, props []string, repeat float64) *workload {
	return &workload{rng: rng, nmin: nmin, nmax: nmax, eps: eps, props: props, repeat: repeat}
}

func (w *workload) next() (body, contentType string) {
	if len(w.recent) > 0 && w.rng.Float64() < w.repeat {
		r := w.recent[w.rng.Intn(len(w.recent))]
		return r[0], r[1]
	}
	n := w.nmin + w.rng.Intn(w.nmax-w.nmin+1)
	prop := w.props[w.rng.Intn(len(w.props))]
	g := w.randomGraph(prop, n)
	format := graphio.Formats()[w.k%4]
	w.k++

	var buf bytes.Buffer
	if err := graphio.Write(&buf, g, format); err != nil {
		panic(err)
	}
	gobj := map[string]any{"format": format.String()}
	if format == graphio.Binary {
		gobj["data_base64"] = base64.StdEncoding.EncodeToString(buf.Bytes())
	} else {
		gobj["data"] = buf.String()
	}
	req, err := json.Marshal(map[string]any{
		"property": prop,
		"epsilon":  w.eps,
		"seed":     w.rng.Int63n(1 << 30),
		"graph":    gobj,
	})
	if err != nil {
		panic(err)
	}
	body = string(req)
	if len(w.recent) < 256 {
		w.recent = append(w.recent, [2]string{body, "application/json"})
	} else {
		w.recent[w.rng.Intn(len(w.recent))] = [2]string{body, "application/json"}
	}
	return body, "application/json"
}

// randomGraph draws a family suited to the property: mostly positive
// instances, with a sprinkle of far-from-property graphs so reject
// paths stay exercised.
func (w *workload) randomGraph(prop string, n int) *graph.Graph {
	r := w.rng
	if r.Float64() < 0.15 { // adversarial share
		switch prop {
		case service.PropCycleFree:
			return graph.Cycle(n)
		case service.PropBipartiteness:
			g, _ := graph.PlanarPlusRandomEdges(n, n/4+1, r)
			return g
		default:
			return graph.K5Subdivision(n)
		}
	}
	switch prop {
	case service.PropCycleFree:
		return graph.RandomTree(n, r)
	case service.PropBipartiteness:
		rows := 2 + r.Intn(8)
		return graph.Grid(rows, (n+rows-1)/rows)
	case service.PropOuterplanar:
		return graph.Outerplanar(n, r)
	default:
		switch r.Intn(4) {
		case 0:
			rows := 2 + r.Intn(30)
			return graph.Grid(rows, (n+rows-1)/rows)
		case 1:
			return graph.MaximalPlanar(n, r)
		case 2:
			return graph.RandomTree(n, r)
		default:
			return graph.RandomPlanar(n, 2*n, r)
		}
	}
}

// errUnavailable marks a 503 answer — the queue is full or the server
// is draining. The request was not started, so it is safe to retry.
type errUnavailable struct{ body string }

func (e *errUnavailable) Error() string { return "status 503: " + e.body }

// postTestRetry issues postTest, retrying 503 answers with exponential
// backoff plus jitter (so a fleet of clients does not re-slam a full
// queue in lockstep). Other failures are returned as-is; after
// maxAttempts the last 503 is.
func postTestRetry(client *http.Client, addr, body, contentType string, rng *rand.Rand, retries *atomic.Int64) (*service.View, error) {
	const maxAttempts = 5
	backoff := 50 * time.Millisecond
	for attempt := 1; ; attempt++ {
		view, err := postTest(client, addr, body, contentType)
		var unavail *errUnavailable
		if err == nil || attempt == maxAttempts || !errors.As(err, &unavail) {
			return view, err
		}
		retries.Add(1)
		// Uniform jitter in [backoff/2, backoff*3/2).
		time.Sleep(backoff/2 + time.Duration(rng.Int63n(int64(backoff))))
		backoff *= 2
	}
}

// postTest issues one synchronous POST /v1/test and decodes the view.
func postTest(client *http.Client, addr, body, contentType string) (*service.View, error) {
	resp, err := client.Post(addr+"/v1/test", contentType, bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return nil, &errUnavailable{body: string(raw)}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var v service.View
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return &v, nil
}
