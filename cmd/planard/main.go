// Command planard serves the distributed property testers over HTTP: a
// job manager with a bounded run pool and a content-addressed result
// cache (internal/service) behind a small REST API. It also ships a
// load generator for throughput experiments.
//
// Usage:
//
//	planard [serve] [-addr :8080] [-concurrency N] [-cache N] ...
//	planard loadgen -addr http://localhost:8080 -duration 30s -concurrency 8
//
// Endpoints:
//
//	POST   /v1/test       {"property","epsilon","seed","variant","timeout","async","graph":{...}}
//	                      or multipart/form-data with a "graph" file part
//	GET    /v1/jobs/{id}  poll an async job
//	DELETE /v1/jobs/{id}  cancel a job (idempotent)
//	GET    /metrics       Prometheus text exposition
//	GET    /healthz       liveness
//	GET    /readyz        readiness (503 while draining or overloaded)
//
// A quickstart transcript lives in README.md; the architecture and the
// cache-soundness argument are in DESIGN.md §7.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "loadgen" {
		if err := runLoadgen(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "planard loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
	}
	if err := serve(args); err != nil {
		fmt.Fprintln(os.Stderr, "planard:", err)
		os.Exit(1)
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("planard serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		concurrency = fs.Int("concurrency", 0, "max jobs running the engine at once (0: GOMAXPROCS/engine-workers)")
		queue       = fs.Int("queue", 0, "queued-job bound before 503s (0: 64*concurrency)")
		cache       = fs.Int("cache", 0, "result cache entries (0: 4096, negative: disable)")
		cacheMB     = fs.Int64("cache-mb", 0, "in-memory result cache byte bound, MiB (0: 256, negative: unbounded)")
		cacheDir    = fs.String("cache-dir", "", "directory for the disk-backed cache tier; cached results survive restarts (empty: disabled)")
		diskMB      = fs.Int64("disk-cache-mb", 0, "disk cache tier byte bound, MiB (0: 4096, negative: unbounded)")
		budgetMB    = fs.Int64("mem-budget-mb", 0, "admission byte budget, MiB: bodies + in-flight graphs beyond it are shed with 503 (0: unbounded)")
		workers     = fs.Int("engine-workers", 0, "engine worker goroutines per job (0: GOMAXPROCS)")
		retention   = fs.Int("job-retention", 0, "finished jobs kept pollable (0: 16384)")
		maxMB       = fs.Int64("max-request-mb", 512, "request body limit, MiB")
		drain       = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		ckptDir     = fs.String("checkpoint-dir", "", "directory for durable job checkpoints; interrupted runs resume on restart (empty: disabled)")
		ckptEvery   = fs.Int("checkpoint-every", 0, "engine barriers between durable checkpoints (0: 256)")
		maxTimeout  = fs.Duration("max-timeout", 0, "server-side cap and default for per-request timeouts (0: unbounded)")
		logFormat   = fs.String("log-format", "text", "log output format: text or json")
		pprofAddr   = fs.String("pprof-addr", "", "listen address for the net/http/pprof profiling endpoints, kept off the service listener (empty: disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("log-format: unknown format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	if *cacheDir != "" {
		// Fail fast on a misconfigured cache directory; the manager
		// itself degrades to memory-only if the disk tier breaks later.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			return fmt.Errorf("cache-dir: %w", err)
		}
	}
	mb := func(v int64) int64 {
		if v < 0 {
			return -1
		}
		return v << 20
	}
	m := service.New(service.Config{
		MaxConcurrent:   *concurrency,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		CacheBytes:      mb(*cacheMB),
		CacheDir:        *cacheDir,
		DiskCacheBytes:  mb(*diskMB),
		MemoryBudget:    mb(*budgetMB),
		EngineWorkers:   *workers,
		JobRetention:    *retention,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		MaxTimeout:      *maxTimeout,
		Logger:          logger,
	})
	if *ckptDir != "" {
		n, err := m.Recover()
		if err != nil {
			logger.Error(fmt.Sprintf("planard: checkpoint recovery: %v", err))
		} else if n > 0 {
			logger.Info(fmt.Sprintf("planard: resumed %d interrupted job(s) from %s", n, *ckptDir))
		}
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(m, service.HandlerConfig{MaxRequestBytes: *maxMB << 20}),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener so they can
		// be bound to loopback (or firewalled) independently of the
		// service port, and so a profile scrape never competes for the
		// service mux.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux}
		go func() {
			logger.Info(fmt.Sprintf("planard: pprof on %s", *pprofAddr))
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error(fmt.Sprintf("planard: pprof listener: %v", err))
			}
		}()
		defer psrv.Close()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info(fmt.Sprintf("planard: serving on %s", *addr))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		m.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /readyz to 503 so load balancers stop
	// routing, stop accepting, drain in-flight HTTP, then cancel
	// whatever is still running on the engine.
	m.BeginDrain()
	logger.Info(fmt.Sprintf("planard: shutting down (drain %s)", *drain))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	m.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	logger.Info("planard: bye")
	return nil
}
