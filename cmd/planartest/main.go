// Command planartest runs the distributed planarity tester on a generated
// or user-supplied graph and prints the verdict with CONGEST metrics.
//
// Usage:
//
//	planartest -family grid -n 256 -eps 0.25
//	planartest -family planar+noise -n 500 -mode both   # CONGEST vs exact oracle
//	planartest -family planar+noise -n 100 -extra 60 -eps 0.1 -seeds 5
//	planartest -family gnp -n 400 -degree 8 -en
//	planartest -edges graph.txt -eps 0.2             # format autodetected
//	planartest -edges graph.pgb -format binary       # or forced explicitly
//	planartest -family randplanar -n 100000 -m 150000 -eps 0.5 \
//	    -schedule practical -phases -trace run.jsonl # per-phase attribution
//
// -edges accepts every internal/graphio format: edge-list, DIMACS,
// JSON, and the compact binary encoding; -format defaults to "auto"
// (file extension, then content sniffing). Unlike the pre-graphio
// parser, inputs are validated: duplicate edges, self-loops, and
// malformed lines (e.g. trailing fields) are rejected rather than
// silently dropped.
//
// -mode selects the decision procedure: "congest" (default) runs the
// paper's distributed tester, "exact" runs the sequential oracle
// (internal/oracle: Euler shortcuts + per-biconnected-component
// left-right planarity), and "both" runs the two back to back and
// fails if the one-sided contract is broken (oracle-planar input
// rejected by the CONGEST tester).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/partition"
)

func main() {
	var (
		family = flag.String("family", "grid", "graph family: grid|maxplanar|randplanar|tree|cycle|gnp|complete|planar+noise")
		n      = flag.Int("n", 256, "node count (grid uses the nearest square)")
		m      = flag.Int("m", 0, "edge count for randplanar (default 2n)")
		extra  = flag.Int("extra", 50, "extra edges for planar+noise")
		degree = flag.Float64("degree", 8, "average degree for gnp")
		eps    = flag.Float64("eps", 0.25, "distance parameter")
		seed   = flag.Int64("seed", 1, "base seed")
		seeds  = flag.Int("seeds", 1, "number of seeds to run")
		en     = flag.Bool("en", false, "use the Elkin-Neiman baseline partition")
		sched  = flag.String("schedule", "paper", "Stage I phase schedule: paper|practical (the benchmarks use practical)")
		random = flag.Bool("randomized", false, "use the randomized Stage I variant (Theorem 4)")
		strict = flag.Bool("strict-embed", false, "reject as soon as the embedding step sees non-planarity")
		edges  = flag.String("edges", "", "read graph from file instead of generating (edge-list|dimacs|json|binary)")
		format = flag.String("format", "auto", "format of -edges: auto|edge-list|dimacs|json|binary")
		phases = flag.Bool("phases", false, "print the per-phase attribution table after each run")
		trace  = flag.String("trace", "", "write a JSONL run trace to this file (summarize with scripts/trace_report)")
		mode   = flag.String("mode", "congest", "decision procedure: congest|exact|both")
	)
	flag.Parse()
	switch *mode {
	case "congest", "exact", "both":
	default:
		fmt.Fprintf(os.Stderr, "planartest: unknown -mode %q (want congest, exact, or both)\n", *mode)
		os.Exit(1)
	}

	g, desc, err := buildGraph(*family, *n, *m, *extra, *degree, *seed, *edges, *format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planartest:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s (n=%d m=%d)\n", desc, g.N(), g.M())
	if d := graph.EulerDistanceLowerBound(g); d > 0 {
		fmt.Printf("certified distance to planarity: >= %d edges (eps >= %.3f)\n",
			d, float64(d)/float64(g.M()))
	}

	exactPlanar := false
	if *mode == "exact" || *mode == "both" {
		// No wall time in the output: every planartest invocation must be
		// byte-identical across runs (the repo's CLI determinism check).
		res := oracle.Decide(g)
		verdict := "accept (planar)"
		if !res.Planar {
			verdict = "REJECT (non-planar)"
			if res.EulerRejected {
				verdict = "REJECT (non-planar, global Euler bound)"
			}
		}
		fmt.Printf("exact:    %s\n", verdict)
		fmt.Printf("          components=%d bicomps=%d trivial=%d eulerRejects=%d lrRuns=%d\n",
			res.Components, res.Bicomps, res.TrivialBicomps, res.EulerRejects, res.LRTested)
		exactPlanar = res.Planar
		if *mode == "exact" {
			return
		}
	}

	opts := repro.TesterOptions{Epsilon: *eps, UseEN: *en}
	switch *sched {
	case "paper":
		// the default phase-count rule; leave the zero value
	case "practical":
		opts.Partition.Epsilon = *eps
		opts.Partition.Schedule = partition.PracticalSchedule
	default:
		fmt.Fprintf(os.Stderr, "planartest: unknown -schedule %q (want paper or practical)\n", *sched)
		os.Exit(1)
	}
	if *random {
		opts.Partition.Epsilon = *eps
		opts.Partition.Variant = partition.Randomized
	}
	opts.StageII.StrictEmbedReject = *strict
	if *phases || *trace != "" {
		// Tracing rides on the probe: phase events need interned names.
		opts.Probe = obs.NewProbe()
	}
	var tracer *obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "planartest:", err)
			os.Exit(1)
		}
		tracer = obs.NewTracer(f)
		opts.Trace = tracer
	}

	rejected := 0
	for s := 0; s < *seeds; s++ {
		res, err := repro.TestPlanarity(g, opts, *seed+int64(s)*101)
		if err != nil {
			fmt.Fprintln(os.Stderr, "planartest:", err)
			os.Exit(1)
		}
		verdict := "accept"
		if res.Rejected {
			verdict = "REJECT"
			rejected++
		}
		fmt.Printf("seed %3d: %s  rounds=%-12d msgs=%-10d maxMsgBits=%d/%d modeledRounds=%d\n",
			s, verdict, res.Metrics.Rounds, res.Metrics.Messages,
			res.Metrics.MaxMessageBits, res.Metrics.BitBound, res.Metrics.ModeledRounds)
		if *phases {
			fmt.Print(res.Phases)
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "planartest: trace:", err)
			os.Exit(1)
		}
	}
	if *seeds > 1 {
		fmt.Printf("rejected %d/%d runs\n", rejected, *seeds)
	}
	if *mode == "both" {
		if exactPlanar && rejected > 0 {
			fmt.Fprintln(os.Stderr, "planartest: ONE-SIDED ERROR BROKEN: exact oracle says planar, CONGEST tester rejected")
			os.Exit(1)
		}
		fmt.Println("modes agree with the one-sided contract")
	}
}

func buildGraph(family string, n, m, extra int, degree float64, seed int64, edgeFile, format string) (*repro.Graph, string, error) {
	if edgeFile != "" {
		f, err := graphio.ParseFormat(format)
		if err != nil {
			return nil, "", err
		}
		g, err := graphio.ReadFile(edgeFile, f)
		return g, "file " + edgeFile, err
	}
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Grid(side, side), fmt.Sprintf("grid %dx%d", side, side), nil
	case "maxplanar":
		return graph.MaximalPlanar(n, rng), "maximal planar", nil
	case "randplanar":
		if m == 0 {
			m = 2 * n
		}
		if m > 3*n-6 {
			m = 3*n - 6
		}
		return graph.RandomPlanar(n, m, rng), "random planar", nil
	case "tree":
		return graph.RandomTree(n, rng), "random tree", nil
	case "cycle":
		return graph.Cycle(n), "cycle", nil
	case "gnp":
		return graph.GNP(n, degree/float64(n), rng), fmt.Sprintf("G(n,%.1f/n)", degree), nil
	case "complete":
		return graph.Complete(n), "complete", nil
	case "planar+noise":
		g, _ := graph.PlanarPlusRandomEdges(n, extra, rng)
		return g, fmt.Sprintf("maximal planar + %d random edges", extra), nil
	default:
		return nil, "", fmt.Errorf("unknown family %q", family)
	}
}
