// Command graphgen generates the synthetic graph families used by the
// experiments and writes them in any internal/graphio format (edge
// list, DIMACS, JSON, compact binary) or as DOT.
//
// Usage:
//
//	graphgen -family maxplanar -n 200 > g.txt
//	graphgen -family randplanar -n 10000 -format binary > g.pgb
//	graphgen -family lowerbound -n 1024 -format dot > g.dot
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/lowerbound"
)

func main() {
	var (
		family = flag.String("family", "grid", "grid|maxplanar|randplanar|outerplanar|tree|cycle|gnp|complete|bipartite|planar+noise|lowerbound")
		n      = flag.Int("n", 100, "node count")
		m      = flag.Int("m", 0, "edge count (randplanar)")
		extra  = flag.Int("extra", 50, "extra edges (planar+noise)")
		degree = flag.Float64("degree", 8, "average degree (gnp, lowerbound)")
		seed   = flag.Int64("seed", 1, "seed")
		format = flag.String("format", "edges", "edges|dimacs|json|binary|dot")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var g *graph.Graph
	switch *family {
	case "grid":
		side := 1
		for (side+1)*(side+1) <= *n {
			side++
		}
		g = graph.Grid(side, side)
	case "maxplanar":
		g = graph.MaximalPlanar(*n, rng)
	case "randplanar":
		mm := *m
		if mm == 0 {
			mm = 2 * *n
		}
		if mm > 3**n-6 {
			mm = 3**n - 6
		}
		g = graph.RandomPlanar(*n, mm, rng)
	case "outerplanar":
		g = graph.Outerplanar(*n, rng)
	case "tree":
		g = graph.RandomTree(*n, rng)
	case "cycle":
		g = graph.Cycle(*n)
	case "gnp":
		g = graph.GNP(*n, *degree/float64(*n), rng)
	case "complete":
		g = graph.Complete(*n)
	case "bipartite":
		g = graph.CompleteBipartite(*n/2, *n-*n/2)
	case "planar+noise":
		g, _ = graph.PlanarPlusRandomEdges(*n, *extra, rng)
	case "lowerbound":
		g = lowerbound.New(*n, *degree, *seed).G
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown family %q\n", *family)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *format == "dot" {
		fmt.Fprintf(w, "graph g {\n")
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "  %d -- %d;\n", e.U, e.V)
		}
		fmt.Fprintf(w, "}\n")
		return
	}
	f, err := graphio.ParseFormat(*format)
	if err != nil || f == graphio.Auto {
		fmt.Fprintf(os.Stderr, "graphgen: unknown format %q\n", *format)
		os.Exit(1)
	}
	if f == graphio.EdgeList {
		// Provenance comment; the canonical "# graphio edge-list n= m="
		// header follows from the writer, so isolated trailing nodes
		// survive round trips into the CLIs and planard.
		fmt.Fprintf(w, "# %s seed=%d\n", *family, *seed)
	}
	if err := graphio.Write(w, g, f); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}
