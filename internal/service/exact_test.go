package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphio"
)

func TestExactModeAcceptsAndRejects(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()

	out, err := m.Run(ctx, &Request{Property: PropPlanarity, Mode: ModeExact, Graph: graph.Grid(10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rejected || out.Verdict != "accept" || out.Mode != ModeExact {
		t.Fatalf("exact grid run: %+v", out)
	}
	if out.Oracle == nil || out.Oracle.Bicomps == 0 {
		t.Fatalf("exact outcome missing oracle stats: %+v", out)
	}
	if out.Metrics.Rounds != 0 || out.Metrics.Messages != 0 {
		t.Fatalf("exact run must not account CONGEST cost: %+v", out.Metrics)
	}

	out, err = m.Run(ctx, &Request{Property: PropPlanarity, Mode: ModeExact, Graph: graph.K5Subdivision(64)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rejected || out.Verdict != "reject" {
		t.Fatalf("exact mode accepted a K5 subdivision: %+v", out)
	}
	if out.Oracle == nil || out.Oracle.LRTested != 1 {
		t.Fatalf("K5 subdivision should reach the LR run: %+v", out.Oracle)
	}
	if got := m.Metrics().ExactRuns.Load(); got != 2 {
		t.Fatalf("exact runs counter = %d, want 2", got)
	}
}

// Exact and CONGEST results for the same graph must live under distinct
// cache keys: a mode=exact answer must never be served for a congest
// request (they answer different questions) and vice versa.
func TestExactModeCachedIndependently(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	g := graph.Grid(8, 8)

	congestReq := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: g}
	exactReq := &Request{Property: PropPlanarity, Mode: ModeExact, Graph: g}
	if _, err := m.Run(ctx, congestReq); err != nil {
		t.Fatal(err)
	}
	// Same graph hash, different mode: must miss and run the oracle.
	j, err := m.Submit(ctx, exactReq)
	if err != nil {
		t.Fatal(err)
	}
	if j.CacheHit {
		t.Fatal("exact submit hit the congest result for the same graph")
	}
	exactOut, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if exactOut.Mode != ModeExact {
		t.Fatalf("outcome mode %q, want %q", exactOut.Mode, ModeExact)
	}
	// Replaying each mode hits its own entry.
	j2, err := m.Submit(ctx, &Request{Property: PropPlanarity, Mode: ModeExact, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Fatal("identical exact request must be a cache hit")
	}
	if out2, _ := j2.Wait(ctx); out2 != exactOut {
		t.Fatal("exact replay returned a different outcome object")
	}
	j3, err := m.Submit(ctx, &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if !j3.CacheHit {
		t.Fatal("identical congest request must still hit after the exact run")
	}
	if out3, _ := j3.Wait(ctx); out3.Mode == ModeExact {
		t.Fatal("congest replay served the exact outcome")
	}
	if h, ms := m.Metrics().CacheHits.Load(), m.Metrics().CacheMisses.Load(); h != 2 || ms != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", h, ms)
	}
}

// Exact requests ignore epsilon/seed/variant: Validate normalizes them,
// so any parameter spelling of the same graph shares one cache entry.
func TestExactModeNormalizesParameters(t *testing.T) {
	g := graph.Grid(5, 5)
	a := &Request{Property: PropPlanarity, Mode: ModeExact, Graph: g}
	b := &Request{Property: PropPlanarity, Mode: ModeExact, Epsilon: 0.7, Seed: 42, Variant: VariantRandomized, Graph: g}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("exact requests with different irrelevant parameters must share a cache key")
	}
	// A congest request with the default-normalized parameters must NOT
	// collide with the exact entry.
	c := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 0, Graph: g}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CacheKey() == a.CacheKey() {
		t.Fatal("congest and exact requests must have distinct cache keys")
	}
}

func TestExactModeValidation(t *testing.T) {
	g := graph.Grid(4, 4)
	// Exact applies to planarity only.
	bad := &Request{Property: PropBipartiteness, Mode: ModeExact, Epsilon: 0.25, Graph: g}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "applies only") {
		t.Fatalf("exact bipartiteness validated: %v", err)
	}
	if err := (&Request{Mode: "quantum", Epsilon: 0.25, Graph: g}).Validate(); err == nil {
		t.Fatal("unknown mode validated")
	}
	// Exact requests need no epsilon; congest requests still do.
	if err := (&Request{Property: PropPlanarity, Mode: ModeExact, Graph: g}).Validate(); err != nil {
		t.Fatalf("exact without epsilon: %v", err)
	}
	if err := (&Request{Property: PropPlanarity, Graph: g}).Validate(); err == nil {
		t.Fatal("congest without epsilon validated")
	}
	// Defaulting: empty mode is congest.
	r := &Request{Property: PropPlanarity, Epsilon: 0.25, Graph: g}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Mode != ModeCongest {
		t.Fatalf("mode defaulted to %q, want %q", r.Mode, ModeCongest)
	}
}

// Exact mode rides the same HTTP surface: a JSON POST with mode=exact
// answers with the oracle breakdown and caches independently of the
// congest entry for the same graph bytes.
func TestHTTPExactMode(t *testing.T) {
	srv, m := testServer(t)
	g := graph.Grid(8, 8)
	data := encodeGraph(t, g, graphio.EdgeList)
	graphBody := map[string]any{"format": "edge-list", "data": data}

	resp, out := postJSON(t, srv.URL+"/v1/test", map[string]any{
		"property": PropPlanarity, "mode": ModeExact, "graph": graphBody,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var v View
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != "done" || v.Outcome == nil || v.Outcome.Rejected {
		t.Fatalf("exact POST: %s", out)
	}
	if v.Outcome.Mode != ModeExact || v.Outcome.Oracle == nil {
		t.Fatalf("exact POST missing mode/oracle fields: %s", out)
	}
	if v.CacheHit {
		t.Fatal("first exact POST must be a miss")
	}
	// A congest POST of the same graph misses (distinct key), and an
	// exact replay hits.
	resp, out = postJSON(t, srv.URL+"/v1/test", map[string]any{
		"property": PropPlanarity, "epsilon": 0.25, "seed": 1, "graph": graphBody,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("congest POST status %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if v.CacheHit {
		t.Fatal("congest POST must not hit the exact entry")
	}
	resp, out = postJSON(t, srv.URL+"/v1/test", map[string]any{
		"property": PropPlanarity, "mode": ModeExact, "graph": graphBody,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact replay status %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit || v.Outcome.Mode != ModeExact {
		t.Fatalf("exact replay: %s", out)
	}
	// Exact mode on a non-planarity property is a 400.
	resp, out = postJSON(t, srv.URL+"/v1/test", map[string]any{
		"property": PropBipartiteness, "mode": ModeExact, "epsilon": 0.25, "graph": graphBody,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("exact bipartiteness status %d: %s", resp.StatusCode, out)
	}
	if got := m.Metrics().ExactRuns.Load(); got != 1 {
		t.Fatalf("exact runs counter = %d, want 1", got)
	}
}

// Exact mode must agree with the CONGEST tester's one-sided contract on
// a mixed bag: both accept planar instances; the exact verdict is the
// ground truth for the non-planar ones.
func TestExactModeMatchesOracleOnMixedBag(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	noisy, _ := graph.PlanarPlusRandomEdges(60, 40, rng)
	cases := []struct {
		name   string
		g      *graph.Graph
		planar bool
	}{
		{"maxplanar", graph.MaximalPlanar(200, rng), true},
		{"ladder", graph.Ladder(64), true},
		{"barbell K5", graph.Barbell(5, 10), false},
		{"noisy", noisy, false},
		{"K33 subdivision", graph.K33Subdivision(77), false},
	}
	for _, c := range cases {
		out, err := m.Run(ctx, &Request{Property: PropPlanarity, Mode: ModeExact, Graph: c.g})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if out.Rejected == c.planar {
			t.Fatalf("%s: exact verdict %s, want planar=%v", c.name, out.Verdict, c.planar)
		}
	}
}
