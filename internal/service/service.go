// Package service is the serving subsystem of the reproduction: a job
// manager with a bounded run pool, a content-addressed LRU result cache
// keyed on (graph, options, seed), job states with cancellation, and
// Prometheus-style counters. cmd/planard exposes it over HTTP; the
// architecture and the cache-soundness argument live in DESIGN.md §7.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/congest"
	"repro/internal/obs"
)

// Config sizes the Manager.
type Config struct {
	// MaxConcurrent bounds how many jobs run the engine at once (the
	// run pool size). 0 means GOMAXPROCS/EngineWorkers (at least 1).
	MaxConcurrent int
	// QueueDepth bounds the number of queued jobs; Submit returns
	// ErrQueueFull beyond it. 0 means 64 * MaxConcurrent.
	QueueDepth int
	// CacheEntries sizes the LRU result cache. 0 means 4096; negative
	// disables caching.
	CacheEntries int
	// CacheBytes bounds the in-memory result-cache tier by accounted
	// outcome bytes (the entry's canonical JSON size). 0 means 256 MiB;
	// negative removes the byte bound (CacheEntries still applies).
	CacheBytes int64
	// CacheDir enables the disk-backed second cache tier under this
	// directory: outcomes are written through and survive restarts, so
	// a restarted instance keeps its hit rate. Entries failing the
	// integrity check are quarantined, never served. Empty disables.
	CacheDir string
	// DiskCacheBytes bounds the disk tier's live entries; oldest are
	// evicted past it. 0 means 4 GiB; negative removes the bound.
	DiskCacheBytes int64
	// MemoryBudget bounds the bytes admitted into the process at once:
	// streaming request bodies plus the decoded graphs of queued and
	// running jobs. Overflow is shed with ErrOverloaded (503 on the
	// wire) instead of growing toward OOM. 0 disables admission
	// control.
	MemoryBudget int64
	// EngineWorkers is the per-job engine worker-pool size
	// (core.Options.Workers). 0 means GOMAXPROCS: one job then
	// saturates the host, which suits few large graphs; set 1 and raise
	// MaxConcurrent for many small graphs.
	EngineWorkers int
	// JobRetention bounds how many finished jobs stay addressable via
	// Job() after completion. 0 means 16384.
	JobRetention int
	// CheckpointDir enables crash recovery: eligible runs (planarity,
	// non-EN Stage I) persist periodic engine checkpoints under this
	// directory, and Recover re-enqueues interrupted jobs after a
	// restart. Empty disables durability.
	CheckpointDir string
	// CheckpointEvery is the barrier interval between durable
	// checkpoints. 0 means 256; smaller values bound lost work tighter
	// at more I/O per run.
	CheckpointEvery int
	// MaxTimeout caps (and, when a request carries no timeout, supplies)
	// the per-job wall-clock bound. 0 means requests without a timeout
	// run unbounded.
	MaxTimeout time.Duration
	// Logger receives the manager's structured logs (job lifecycle,
	// recovery, quarantine), each record scoped with the job id and cache
	// key. nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	// Non-positive values fall back to defaults (CacheEntries excepted:
	// negative documented as "disable"), so a stray -1 flag cannot
	// start a manager with zero workers or a negative queue.
	if c.MaxConcurrent <= 0 {
		per := c.EngineWorkers
		if per <= 0 {
			per = runtime.GOMAXPROCS(0)
		}
		c.MaxConcurrent = runtime.GOMAXPROCS(0) / per
		if c.MaxConcurrent < 1 {
			c.MaxConcurrent = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64 * c.MaxConcurrent
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	} else if c.CacheBytes < 0 {
		c.CacheBytes = 0 // unbounded by bytes
	}
	if c.DiskCacheBytes == 0 {
		c.DiskCacheBytes = 4 << 30
	} else if c.DiskCacheBytes < 0 {
		c.DiskCacheBytes = 0 // unbounded
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 16384
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 256
	}
	return c
}

// Errors reported by Submit.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: manager closed")
)

// Manager owns the job queue, the run pool, the result cache, and the
// metrics. Create with New, dispose with Close.
type Manager struct {
	cfg     Config
	cache   *tieredCache
	metrics *Metrics
	store   *ckptStore // nil when CheckpointDir is unset
	budget  byteBudget
	log     *slog.Logger
	seq     atomic.Int64

	draining atomic.Bool

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job // by job ID; finished jobs kept for polling
	retained []*Job          // FIFO over jobs, for retention eviction
	inflight map[string]*Job // by cache key; queued or running only
}

// New starts a Manager with cfg.withDefaults(): MaxConcurrent pool
// goroutines consuming a QueueDepth-bounded queue.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	lg := cfg.Logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := &Manager{
		cfg:      cfg,
		metrics:  newMetrics(),
		log:      lg,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	m.budget.total = cfg.MemoryBudget
	var disk *diskCache
	if cfg.CacheDir != "" {
		// A disk tier that fails to open costs persistence, not
		// service: the manager degrades to the memory tier alone
		// (cmd/planard validates the directory up front and fails fast
		// on real misconfiguration).
		if d, err := newDiskCache(cfg.CacheDir, cfg.DiskCacheBytes, &m.metrics.Quarantined); err == nil {
			disk = d
		}
	}
	m.cache = newTieredCache(newResultCache(cfg.CacheEntries, cfg.CacheBytes), disk, &m.metrics.DiskHits)
	if cfg.CheckpointDir != "" {
		m.store = newCkptStore(cfg.CheckpointDir)
	}
	m.metrics.cacheEntries = m.cache.Len
	m.metrics.cacheBytesMem = m.cache.Bytes
	if disk != nil {
		m.metrics.cacheBytesDisk = disk.size
	}
	m.metrics.inflightBytes = m.budget.used.Load
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close drains the pool: no new jobs are accepted, and queued or
// running jobs are canceled (they finish with context.Canceled before
// touching the engine, or abort at the next round barrier). Blocks
// until every pool goroutine exits.
func (m *Manager) Close() {
	m.draining.Store(true)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	for _, j := range m.inflight {
		j.cancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Metrics returns the service counters.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// CacheLen returns the number of outcomes in the memory cache tier.
func (m *Manager) CacheLen() int { return m.cache.Len() }

// BeginDrain marks the manager as draining: /readyz answers 503 so
// load balancers stop routing before requests start failing, while
// in-flight work keeps running. Submission is unaffected (Close, not
// BeginDrain, stops the pool); call it when graceful shutdown starts.
func (m *Manager) BeginDrain() { m.draining.Store(true) }

// Draining reports whether BeginDrain (or Close) has been called.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Saturated reports whether the byte budget is currently full: new
// work would be shed, so readiness probes should fail.
func (m *Manager) Saturated() bool { return m.budget.saturated() }

// AdmitBytes reserves n bytes of the admission budget for a request
// body while it streams in; the returned release must be called once
// decoding is over (the decoded graph is then accounted separately by
// Submit). A saturated budget sheds with ErrOverloaded; n larger than
// the whole budget is ErrTooLarge. n <= 0 (unknown length) admits
// without reserving.
func (m *Manager) AdmitBytes(n int64) (release func(), err error) {
	if err := m.budget.tryAcquire(n); err != nil {
		m.metrics.ShedRequests.Add(1)
		return nil, err
	}
	var once sync.Once
	return func() { once.Do(func() { m.budget.release(n) }) }, nil
}

// Submit validates req and returns its job without waiting for it:
//
//   - cache hit: a job already in StateDone, served without touching
//     the engine;
//   - an identical request is queued or running: that job is returned
//     (work is coalesced; all submitters observe the same run);
//   - otherwise: a fresh job, enqueued for the run pool.
//
// The underlying job may be shared; the returned Submission is this
// caller's private handle on it (its Cancel is idempotent and releases
// only this caller's attachment).
func (m *Manager) Submit(ctx context.Context, req *Request) (*Submission, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if m.isClosed() {
		return nil, ErrClosed
	}
	key := req.CacheKey()

	if out, ok := m.cache.Get(key); ok {
		m.metrics.CacheHits.Add(1)
		m.metrics.CountJob(req.Property, "done")
		j := m.newJob(req, key)
		j.CacheHit = true
		j.releaseGraph()
		j.finish(out, nil)
		m.mu.Lock()
		m.rememberLocked(j) // registered even when racing Close: the id must poll
		m.mu.Unlock()
		return &Submission{Job: j}, nil
	}

	// Fresh work pins its decoded graph while queued and running:
	// charge it against the admission budget before taking a queue
	// slot, and shed (503 on the wire) when the budget cannot fit it.
	// Only the fresh-job path below keeps the charge; a coalesced
	// submit shares the already-charged job.
	charge := GraphMemBytes(req.Graph)
	if err := m.budget.tryAcquire(charge); err != nil {
		m.metrics.ShedRequests.Add(1)
		m.metrics.CountJob(req.Property, "shed")
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.budget.release(charge)
		return nil, ErrClosed
	}
	if j, ok := m.inflight[key]; ok {
		j.attach()
		m.mu.Unlock()
		m.budget.release(charge)
		m.metrics.Coalesced.Add(1)
		return &Submission{Job: j}, nil
	}
	j := m.newJob(req, key)
	j.charged = charge
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.budget.release(charge)
		m.metrics.ShedRequests.Add(1)
		m.metrics.CountJob(req.Property, "rejected")
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	// Incremented before the lock drops: a worker that races this
	// submit cannot drive the gauge below zero.
	m.metrics.JobsInFlight.Add(1)
	m.inflight[key] = j
	m.rememberLocked(j)
	m.mu.Unlock()
	return &Submission{Job: j}, nil
}

// Run is the synchronous convenience wrapper: Submit then Wait.
func (m *Manager) Run(ctx context.Context, req *Request) (*Outcome, error) {
	j, err := m.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// newJob allocates a job shell in StateQueued. The request is copied:
// the job owns its Request (releaseGraph drops the graph reference at a
// terminal state without mutating the caller's struct).
func (m *Manager) newJob(req *Request, key string) *Job {
	cp := *req
	j := &Job{
		ID:       fmt.Sprintf("j%06d-%s", m.seq.Add(1), key[:12]),
		Key:      key,
		Request:  &cp,
		Created:  time.Now(),
		done:     make(chan struct{}),
		cancelCh: make(chan struct{}),
	}
	j.state.Store(int32(StateQueued))
	j.attached.Store(1)
	return j
}

// rememberLocked indexes j for polling, evicting the oldest finished
// jobs beyond the retention bound. Live (queued/running) jobs are never
// evicted — they rotate to the back so eviction continues behind a
// long-running head instead of stalling on it. Callers hold m.mu.
func (m *Manager) rememberLocked(j *Job) {
	m.jobs[j.ID] = j
	m.retained = append(m.retained, j)
	rotations := 0
	for len(m.retained) > m.cfg.JobRetention {
		old := m.retained[0]
		m.retained = m.retained[1:]
		if old.State() == StateQueued || old.State() == StateRunning {
			m.retained = append(m.retained, old)
			if rotations++; rotations > len(m.retained) {
				return // everything retained is live; nothing to evict
			}
			continue
		}
		delete(m.jobs, old.ID)
	}
}

// forget drops j's in-flight key reservation.
func (m *Manager) forget(j *Job) {
	m.mu.Lock()
	if m.inflight[j.Key] == j {
		delete(m.inflight, j.Key)
	}
	m.mu.Unlock()
}

// effectiveTimeout combines a request's timeout with the server-side
// cap: MaxTimeout bounds every request and supplies the bound for
// requests that carry none.
func (m *Manager) effectiveTimeout(req time.Duration) time.Duration {
	limit := m.cfg.MaxTimeout
	if limit <= 0 {
		return req
	}
	if req <= 0 || req > limit {
		return limit
	}
	return req
}

// durableRequest reports whether a run can be checkpointed: only the
// step-model planarity tester implements engine snapshots. The EN
// baseline and the other properties run fine without durability — their
// jobs simply restart from scratch after a crash is not offered. Exact
// runs finish in milliseconds; checkpointing them would cost more than
// re-running.
func durableRequest(req *Request) bool {
	return req.Property == PropPlanarity && req.Variant != VariantEN && req.Mode != ModeExact
}

// checkpointConfig is the engine-side checkpoint plumbing for one
// durable job: snapshots land in the job's directory, sink failures are
// counted and cost durability only.
func (m *Manager) checkpointConfig(key string) congest.CheckpointConfig {
	return congest.CheckpointConfig{
		EveryBarriers: m.cfg.CheckpointEvery,
		Sink: func(round int, data []byte) error {
			if err := m.store.writeCkpt(key, data); err != nil {
				return err
			}
			m.metrics.CheckpointsWritten.Add(1)
			return nil
		},
		OnError: func(round int, err error) { m.metrics.CheckpointErrs.Add(1) },
	}
}

// Recover scans CheckpointDir for runs interrupted by a crash and
// re-enqueues them, resuming each from its latest valid checkpoint (or
// from round 0 when none landed). Directories that cannot be
// reconstructed are quarantined. Call once, after New and before
// serving traffic; returns the number of jobs re-enqueued.
func (m *Manager) Recover() (int, error) {
	if m.store == nil {
		return 0, nil
	}
	jobs, err := m.store.scan()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, rj := range jobs {
		if err := m.resubmit(rj); err != nil {
			// Queue full or closing: the job directory stays on disk
			// for the next restart instead of being dropped.
			m.log.Warn("recovered job not re-enqueued; kept on disk",
				"key", rj.req.CacheKey(), "err", err)
			continue
		}
		n++
	}
	return n, nil
}

// resubmit enqueues one recovered job. Mirrors Submit's fresh-job path
// (the result cache is empty after a restart) plus the resume snapshot,
// which must be attached before a worker can pick the job up.
func (m *Manager) resubmit(rj recoveredJob) error {
	key := rj.req.CacheKey()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.inflight[key]; ok {
		return nil // an identical live job already covers this work
	}
	j := m.newJob(rj.req, key)
	j.resume = rj.resume
	j.charged = GraphMemBytes(rj.req.Graph)
	if err := m.budget.tryAcquire(j.charged); err != nil {
		// Over budget at startup: the job directory stays on disk for
		// the next restart instead of being dropped.
		return err
	}
	select {
	case m.queue <- j:
	default:
		m.budget.release(j.charged)
		return fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.metrics.JobsInFlight.Add(1)
	m.metrics.RecoveredJobs.Add(1)
	m.inflight[key] = j
	m.rememberLocked(j)
	return nil
}

// worker is one run-pool goroutine: it drains the queue and executes
// jobs on the engine.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.execute(j)
	}
}

// execute runs one job to a terminal state. The graph reference is
// dropped once the run is over: up to JobRetention finished jobs stay
// pollable, and they must not pin their (potentially huge) inputs.
func (m *Manager) execute(j *Job) {
	defer m.metrics.JobsInFlight.Add(-1)
	defer m.forget(j)
	defer j.releaseGraph()
	defer m.budget.release(j.charged)

	lg := m.log.With("job_id", j.ID, "key", j.Key, "property", j.Request.Property)
	if j.canceled() {
		m.metrics.CountJob(j.Request.Property, "failed")
		lg.Info("job canceled before start")
		j.finish(nil, context.Canceled)
		return
	}
	j.setState(StateRunning)
	m.metrics.CacheMisses.Add(1)

	env := runEnv{workers: m.cfg.EngineWorkers, cancel: j.cancelCh, resume: j.resume}
	if j.Request.Property == PropPlanarity && j.Request.Mode != ModeExact {
		// Instrument the run: a fresh probe per job (phase IDs are
		// per-run) and a progress cell that GET /v1/jobs/{id} snapshots
		// while the engine is inside the run.
		env.probe = obs.NewProbe()
		env.progress = obs.NewProgress(env.probe)
		j.progress.Store(env.progress)
	}
	if t := m.effectiveTimeout(j.Request.Timeout); t > 0 {
		env.deadline = time.Now().Add(t)
	}
	durable := false
	if m.store != nil && durableRequest(j.Request) {
		durable = true
		if err := m.store.writeSpec(j.Key, j.Request); err != nil {
			m.metrics.CheckpointErrs.Add(1) // run without durability
			lg.Warn("job spec write failed; running without durability", "err", err)
		} else {
			env.checkpoint = m.checkpointConfig(j.Key)
		}
	}
	lg.Info("job started", "n", j.Request.Graph.N(), "m", j.Request.Graph.M(),
		"resumed", env.resume != nil, "durable", durable)
	// Any terminal state — done, failed, canceled, deadline — ends the
	// job's durability window: a restart must not re-run it. The dir is
	// removed before finish publishes, so a completed job is never
	// observable alongside its durable state.
	finish := func(out *Outcome, err error) {
		if durable {
			m.store.remove(j.Key)
		}
		j.finish(out, err)
	}

	out, err := run(j.Request, env)
	if err != nil && env.resume != nil && errors.Is(err, congest.ErrBadSnapshot) {
		// The recovered checkpoint passed the integrity scan but failed
		// restore (e.g. a format or graph mismatch): quarantine it and
		// re-run the job from round 0 rather than failing it.
		m.metrics.CheckpointErrs.Add(1)
		m.store.quarantine(j.Key, ckptFile)
		lg.Warn("recovered checkpoint failed restore; quarantined, re-running from round 0", "err", err)
		env.resume = nil
		out, err = run(j.Request, env)
	}
	if err != nil {
		m.metrics.CountJob(j.Request.Property, "failed")
		lg.Info("job failed", "err", err)
		finish(nil, err)
		return
	}
	if out.Mode == ModeExact {
		m.metrics.ExactRuns.Add(1)
	}
	mm := out.Metrics
	m.metrics.SimulatedRnds.Add(int64(mm.Rounds))
	m.metrics.ModeledRnds.Add(mm.ModeledRounds)
	m.metrics.Messages.Add(mm.Messages)
	m.metrics.GraphNodes.Add(int64(out.GraphN))
	m.metrics.GraphEdges.Add(int64(out.GraphM))
	m.metrics.AddWallSeconds(out.WallSeconds)
	m.metrics.ObserveRun(j.Request.Property, out.WallSeconds)
	m.metrics.AddPhases(out.Phases)
	m.metrics.CountJob(j.Request.Property, "done")
	m.cache.Put(j.Key, out)
	lg.Info("job done", "verdict", out.Verdict, "rounds", mm.Rounds, "wall_seconds", out.WallSeconds)
	finish(out, nil)
}
