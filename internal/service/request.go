package service

import (
	"fmt"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/planar"
	"repro/internal/spanner"
	"repro/internal/testers"
)

// Property names accepted by the API. Every entry runs on the same
// Stage I partitioning substrate: the planarity tester of Theorem 1,
// the minor-free applications of §4 (cycle-freeness, bipartiteness, and
// the hereditary outerplanarity tester), and the Corollary 17 spanner.
const (
	PropPlanarity     = "planarity"
	PropCycleFree     = "cycle-freeness"
	PropBipartiteness = "bipartiteness"
	PropOuterplanar   = "outerplanarity"
	PropSpanner       = "spanner"
)

// Properties lists the supported property names.
func Properties() []string {
	return []string{PropPlanarity, PropCycleFree, PropBipartiteness, PropOuterplanar, PropSpanner}
}

// Stage I variant names.
const (
	VariantDeterministic = "deterministic"
	VariantRandomized    = "randomized"
	VariantEN            = "en"
)

// Execution modes. ModeCongest runs the distributed tester on the
// engine; ModeExact answers with the sequential oracle
// (internal/oracle) — exact, deterministic, and orders of magnitude
// faster, but with no CONGEST cost accounting. Exact mode applies to
// planarity only.
const (
	ModeCongest = "congest"
	ModeExact   = "exact"
)

// Request is one unit of work: test a property of a graph (or build its
// spanner) at a given distance parameter and seed.
type Request struct {
	// Property selects the algorithm; see Properties().
	Property string `json:"property"`
	// Epsilon is the distance parameter in (0, 1].
	Epsilon float64 `json:"epsilon"`
	// Seed fixes the run's randomness; runs are deterministic per
	// (graph, options, seed), which is what makes caching sound.
	Seed int64 `json:"seed"`
	// Variant selects Stage I: deterministic (default), randomized
	// (Theorem 4), or en (the Elkin–Neiman baseline, planarity only).
	Variant string `json:"variant,omitempty"`
	// Mode selects the execution path: congest (default, the
	// distributed tester) or exact (the sequential oracle fast path,
	// planarity only).
	Mode string `json:"mode,omitempty"`
	// Graph is the input graph. Decoded from the wire formats by the
	// HTTP layer; never nil for a valid request.
	Graph *graph.Graph `json:"-"`
	// Timeout bounds the run's wall clock; the run aborts with
	// congest.ErrDeadlineExceeded at the first barrier past it. 0 means
	// no request-side bound (Config.MaxTimeout still applies).
	Timeout time.Duration `json:"-"`
}

// Validate normalizes defaults and rejects malformed requests.
func (r *Request) Validate() error {
	if r.Graph == nil {
		return fmt.Errorf("service: request has no graph")
	}
	if r.Timeout < 0 {
		return fmt.Errorf("service: negative timeout %v", r.Timeout)
	}
	switch r.Property {
	case PropPlanarity, PropCycleFree, PropBipartiteness, PropOuterplanar, PropSpanner:
	case "":
		r.Property = PropPlanarity
	default:
		return fmt.Errorf("service: unknown property %q (want one of %v)", r.Property, Properties())
	}
	switch r.Mode {
	case "":
		r.Mode = ModeCongest
	case ModeCongest:
	case ModeExact:
		if r.Property != PropPlanarity {
			return fmt.Errorf("service: mode %q applies only to %q", ModeExact, PropPlanarity)
		}
		// The oracle is deterministic and parameter-free: epsilon, seed,
		// and variant cannot change its answer, so they are normalized
		// away and identical work shares one cache entry.
		r.Epsilon = 0
		r.Seed = 0
		r.Variant = VariantDeterministic
		return nil
	default:
		return fmt.Errorf("service: unknown mode %q (want %q or %q)", r.Mode, ModeCongest, ModeExact)
	}
	if !(r.Epsilon > 0 && r.Epsilon <= 1) { // NaN fails both comparisons
		return fmt.Errorf("service: epsilon %v outside (0,1]", r.Epsilon)
	}
	switch r.Variant {
	case "":
		r.Variant = VariantDeterministic
	case VariantDeterministic, VariantRandomized:
	case VariantEN:
		if r.Property != PropPlanarity {
			return fmt.Errorf("service: variant %q applies only to %q", VariantEN, PropPlanarity)
		}
	default:
		return fmt.Errorf("service: unknown variant %q", r.Variant)
	}
	return nil
}

// CacheKey is the content address of the request: the canonical graph
// hash mixed with every option that can change the run's result.
// Deliberately absent: engine worker count (Results are byte-identical
// at any Workers value), anything about the wire format the graph
// arrived in (all formats canonicalize to the same labeled graph), and
// Timeout (a deadline can only fail a run, and failed runs are never
// cached — it cannot change a cached outcome).
func (r *Request) CacheKey() string {
	return graphio.NewKeyHasher(r.Graph).
		Field("property", r.Property).
		Field("epsilon", r.Epsilon).
		Field("seed", r.Seed).
		Field("variant", r.Variant).
		Field("mode", r.Mode).
		Sum()
}

// RunMetrics is the JSON view of the CONGEST accounting.
type RunMetrics struct {
	Rounds         int   `json:"rounds"`
	ModeledRounds  int64 `json:"modeled_rounds"`
	Messages       int64 `json:"messages"`
	TotalBits      int64 `json:"total_bits"`
	MaxMessageBits int   `json:"max_message_bits"`
	BitBound       int   `json:"bit_bound"`
}

func newRunMetrics(m congest.Metrics) RunMetrics {
	return RunMetrics{
		Rounds:         m.Rounds,
		ModeledRounds:  m.ModeledRounds,
		Messages:       m.Messages,
		TotalBits:      m.TotalBits,
		MaxMessageBits: m.MaxMessageBits,
		BitBound:       m.BitBound,
	}
}

// Outcome is the result of one finished run. Cached outcomes are shared
// between jobs and must be treated as immutable.
type Outcome struct {
	Property   string     `json:"property"`
	Verdict    string     `json:"verdict"` // "accept" or "reject"
	Rejected   bool       `json:"rejected"`
	RejectedBy int        `json:"rejected_by"`
	GraphN     int        `json:"graph_n"`
	GraphM     int        `json:"graph_m"`
	Metrics    RunMetrics `json:"metrics"`
	// Mode records which execution path produced the outcome; empty
	// means congest (outcomes cached before the field existed).
	Mode string `json:"mode,omitempty"`
	// Oracle is the exact-mode decision breakdown; nil for CONGEST runs.
	Oracle *OracleStats `json:"oracle,omitempty"`
	// Spanner-only fields: the subgraph size and the part-diameter
	// stretch certificate (max over parts).
	SpannerEdges   int `json:"spanner_edges,omitempty"`
	SpannerStretch int `json:"spanner_stretch,omitempty"`
	// WallSeconds is the engine wall time of the original run (a cache
	// hit reports the cost of the run it reuses, not of the lookup).
	WallSeconds float64 `json:"wall_seconds"`
	// Phases is the per-phase attribution of an instrumented run. Kept
	// out of the JSON (and therefore out of both cache tiers): its WallNs
	// is wall-clock and so nondeterministic, while cached outcome bytes
	// must be a pure function of the cache key. The worker folds it into
	// the service metrics instead.
	Phases obs.PhaseBreakdown `json:"-"`
}

// OracleStats is the JSON view of how the exact oracle reached its
// verdict: which shortcut decided, and how much work the left–right
// test actually did.
type OracleStats struct {
	// Components and Bicomps count the connected and biconnected
	// components of the input.
	Components int `json:"components"`
	Bicomps    int `json:"bicomps"`
	// TrivialBicomps counts blocks decided by size alone (< 5 nodes).
	TrivialBicomps int `json:"trivial_bicomps"`
	// EulerRejected is set when the whole graph died at the global
	// m > 3n-6 count; EulerRejects counts blocks rejected locally.
	EulerRejected bool `json:"euler_rejected,omitempty"`
	EulerRejects  int  `json:"euler_rejects,omitempty"`
	// LRTested counts blocks that required a left–right planarity run.
	LRTested int `json:"lr_tested"`
}

// runEnv is the engine-facing execution environment of one job: the
// manager-owned knobs that are not part of the request's content
// address (worker count, cancellation, wall-clock deadline, checkpoint
// plumbing, and an optional snapshot to resume from).
type runEnv struct {
	workers    int
	cancel     <-chan struct{}
	deadline   time.Time
	checkpoint congest.CheckpointConfig
	resume     []byte // engine checkpoint to continue from (planarity only)
	// probe and progress instrument the run (planarity only): the probe
	// attributes cost per phase, the progress cell feeds live job views.
	// Both nil for the other properties — their runs are unobserved, not
	// broken.
	probe    *obs.Probe
	progress *obs.Progress
}

// run executes the request on the engine. env.cancel aborts the
// simulation at the next round barrier (congest.ErrCanceled),
// env.deadline at the first barrier past it (congest.ErrDeadlineExceeded).
func run(req *Request, env runEnv) (*Outcome, error) {
	start := time.Now()
	out := &Outcome{
		Property: req.Property,
		Mode:     req.Mode,
		GraphN:   req.Graph.N(),
		GraphM:   req.Graph.M(),
	}
	if req.Mode == ModeExact {
		// The exact fast path never touches the engine: the sequential
		// oracle decides in O(n) with no rounds, messages, or bits to
		// account. Metrics stay zero by construction.
		res := oracle.Decide(req.Graph)
		out.Rejected = !res.Planar
		out.Oracle = &OracleStats{
			Components:     res.Components,
			Bicomps:        res.Bicomps,
			TrivialBicomps: res.TrivialBicomps,
			EulerRejected:  res.EulerRejected,
			EulerRejects:   res.EulerRejects,
			LRTested:       res.LRTested,
		}
		out.Verdict = "accept"
		if out.Rejected {
			out.Verdict = "reject"
		}
		out.WallSeconds = time.Since(start).Seconds()
		return out, nil
	}
	popts := partition.Options{Epsilon: req.Epsilon}
	if req.Variant == VariantRandomized {
		popts.Variant = partition.Randomized
	}
	switch req.Property {
	case PropPlanarity:
		copts := core.Options{
			Epsilon:    req.Epsilon,
			UseEN:      req.Variant == VariantEN,
			Partition:  popts,
			Workers:    env.workers,
			Cancel:     env.cancel,
			Deadline:   env.deadline,
			Checkpoint: env.checkpoint,
			Probe:      env.probe,
			Progress:   env.progress,
		}
		var res *core.RunResult
		var err error
		if env.resume != nil {
			res, err = core.ResumeTester(req.Graph, copts, req.Seed, env.resume)
		} else {
			res, err = core.RunTester(req.Graph, copts, req.Seed)
		}
		if err != nil {
			return nil, err
		}
		out.Rejected, out.RejectedBy, out.Metrics = res.Rejected, res.RejectedBy, newRunMetrics(res.Metrics)
		out.Phases = res.Phases
	case PropCycleFree, PropBipartiteness:
		prop := testers.CycleFreeness
		if req.Property == PropBipartiteness {
			prop = testers.Bipartiteness
		}
		res, err := testers.Run(req.Graph, prop, testers.Options{
			Epsilon:   req.Epsilon,
			Partition: popts,
			Workers:   env.workers,
			Cancel:    env.cancel,
			Deadline:  env.deadline,
		}, req.Seed)
		if err != nil {
			return nil, err
		}
		out.Rejected, out.RejectedBy, out.Metrics = res.Rejected, res.RejectedBy, newRunMetrics(res.Metrics)
	case PropOuterplanar:
		res, err := testers.RunHereditary(req.Graph, planar.IsOuterplanar, testers.Options{
			Epsilon:   req.Epsilon,
			Partition: popts,
			Workers:   env.workers,
			Cancel:    env.cancel,
			Deadline:  env.deadline,
		}, req.Seed)
		if err != nil {
			return nil, err
		}
		out.Rejected, out.RejectedBy, out.Metrics = res.Rejected, res.RejectedBy, newRunMetrics(res.Metrics)
	case PropSpanner:
		sp, views, m, err := spanner.Collect(req.Graph, spanner.Options{
			Epsilon:   req.Epsilon,
			Partition: popts,
			Workers:   env.workers,
			Cancel:    env.cancel,
			Deadline:  env.deadline,
		}, req.Seed)
		if err != nil {
			return nil, err
		}
		out.Metrics = newRunMetrics(m)
		out.SpannerEdges = sp.M()
		for _, v := range views {
			if v != nil && v.StretchBound > out.SpannerStretch {
				out.SpannerStretch = v.StretchBound
			}
		}
	default:
		return nil, fmt.Errorf("service: unknown property %q", req.Property)
	}
	out.Verdict = "accept"
	if out.Rejected {
		out.Verdict = "reject"
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out, nil
}
