package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/congest"
	"repro/internal/faultpoint"
	"repro/internal/graphio"
)

// FaultCheckpointWrite is the faultpoint guarding every durable
// checkpoint write. Arming it injects I/O errors into the sink so tests
// can prove a failing disk degrades durability, never correctness.
const FaultCheckpointWrite = "service.checkpoint.write"

// Store layout under Config.CheckpointDir:
//
//	jobs/<cache-key>/request.json  options sidecar (jobSpec)
//	jobs/<cache-key>/graph.pgb     input graph, graphio binary format
//	jobs/<cache-key>/state.ckpt    latest engine snapshot (atomic rename)
//	quarantine/...                 rejected files, kept for inspection
//
// A job directory exists exactly while its run is in flight: it is
// created when the run starts and removed at any terminal state, so a
// directory found at startup is a run interrupted by a crash.
const (
	specFile  = "request.json"
	graphFile = "graph.pgb"
	ckptFile  = "state.ckpt"
)

// ckptStore is the on-disk side of crash recovery. All I/O is lazy (the
// directory is created on first use) and every visible file appears via
// write-to-temp-then-rename, so readers never observe a torn write.
type ckptStore struct{ dir string }

func newCkptStore(dir string) *ckptStore { return &ckptStore{dir: dir} }

func (s *ckptStore) jobDir(key string) string { return filepath.Join(s.dir, "jobs", key) }

// jobSpec is the JSON sidecar that makes a job directory self-contained:
// together with the graph file it reconstructs the Request after a crash.
type jobSpec struct {
	Property string  `json:"property"`
	Epsilon  float64 `json:"epsilon"`
	Seed     int64   `json:"seed"`
	Variant  string  `json:"variant"`
	Timeout  string  `json:"timeout,omitempty"`
}

// writeSpec persists the request sidecar and graph; called once when a
// durable job starts running. The write order does not matter: recovery
// quarantines any directory it cannot fully load.
func (s *ckptStore) writeSpec(key string, req *Request) error {
	dir := s.jobDir(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	spec := jobSpec{
		Property: req.Property,
		Epsilon:  req.Epsilon,
		Seed:     req.Seed,
		Variant:  req.Variant,
	}
	if req.Timeout > 0 {
		spec.Timeout = req.Timeout.String()
	}
	b, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, specFile), b); err != nil {
		return err
	}
	tmp := filepath.Join(dir, graphFile+".tmp")
	if err := graphio.WriteFile(tmp, req.Graph, graphio.Binary); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, graphFile))
}

// writeCkpt lands one engine snapshot as the job's latest checkpoint.
// It is the congest.CheckpointConfig sink for durable jobs, so it runs
// between two engine barriers; a failure here is reported through
// OnError and costs durability, not the run.
func (s *ckptStore) writeCkpt(key string, data []byte) error {
	if err := faultpoint.Hit(FaultCheckpointWrite); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(s.jobDir(key), ckptFile), data)
}

// remove drops a job's directory once the job is terminal.
func (s *ckptStore) remove(key string) { os.RemoveAll(s.jobDir(key)) }

// quarantine moves one file of a job directory (or, with name == "",
// the whole directory) under quarantine/ instead of deleting it, so a
// corrupt checkpoint stays inspectable. The destination carries a
// timestamp: repeated crashes must not collide.
func (s *ckptStore) quarantine(key, name string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	src, dst := s.jobDir(key), key
	if name != "" {
		src = filepath.Join(src, name)
		dst = key + "-" + name
	}
	dst = fmt.Sprintf("%s.%d", dst, time.Now().UnixNano())
	return os.Rename(src, filepath.Join(qdir, dst))
}

// recoveredJob is one crash-interrupted run found on disk.
type recoveredJob struct {
	req    *Request
	resume []byte // latest valid snapshot; nil restarts from round 0
}

// scan loads every job directory, quarantining the ones that cannot be
// reconstructed. A valid directory with a corrupt or mismatched
// checkpoint loses only the checkpoint: the job re-runs from scratch.
func (s *ckptStore) scan() ([]recoveredJob, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var jobs []recoveredJob
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		key := e.Name()
		rj, err := s.load(key)
		if err != nil {
			s.quarantine(key, "")
			continue
		}
		jobs = append(jobs, rj)
	}
	return jobs, nil
}

// load reconstructs one job directory into a validated Request plus the
// latest checkpoint, if it passes integrity and shape checks.
func (s *ckptStore) load(key string) (recoveredJob, error) {
	dir := s.jobDir(key)
	b, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return recoveredJob{}, err
	}
	var spec jobSpec
	if err := json.Unmarshal(b, &spec); err != nil {
		return recoveredJob{}, fmt.Errorf("bad %s: %w", specFile, err)
	}
	req := &Request{
		Property: spec.Property,
		Epsilon:  spec.Epsilon,
		Seed:     spec.Seed,
		Variant:  spec.Variant,
	}
	if spec.Timeout != "" {
		if req.Timeout, err = time.ParseDuration(spec.Timeout); err != nil {
			return recoveredJob{}, fmt.Errorf("bad timeout in %s: %w", specFile, err)
		}
	}
	if req.Graph, err = graphio.ReadFile(filepath.Join(dir, graphFile), graphio.Binary); err != nil {
		return recoveredJob{}, err
	}
	if err := req.Validate(); err != nil {
		return recoveredJob{}, err
	}
	rj := recoveredJob{req: req}
	data, err := os.ReadFile(filepath.Join(dir, ckptFile))
	if err != nil {
		return rj, nil // no checkpoint landed before the crash; run fresh
	}
	info, err := congest.InspectSnapshot(data)
	if err != nil || info.N != req.Graph.N() || info.M != req.Graph.M() || info.Seed != req.Seed {
		s.quarantine(key, ckptFile)
		return rj, nil
	}
	rj.resume = data
	return rj, nil
}

// writeFileAtomic writes data so the destination path only ever holds a
// complete file: temp file in the same directory, then rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
