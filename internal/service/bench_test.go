package service

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// BenchmarkService tracks the serving overhead on the two paths that
// matter: a content-addressed cache hit (the steady-state fast path —
// hash the graph, look up, return; no engine) and a cold run on a
// 1000-node random planar graph (hash + full CONGEST simulation).
// scripts/bench.sh records both; bench_compare.sh gates the cache-hit
// path against the committed baseline.
func BenchmarkService(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	g := graph.RandomPlanar(1000, 2000, rng)
	ctx := context.Background()

	b.Run("cache-hit", func(b *testing.B) {
		m := New(Config{EngineWorkers: 1})
		defer m.Close()
		warm := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: g}
		if _, err := m.Run(ctx, warm); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: g}
			out, err := m.Run(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if out.Rejected {
				b.Fatal("rejected planar graph")
			}
		}
		b.StopTimer()
		if misses := m.Metrics().CacheMisses.Load(); misses != 1 {
			b.Fatalf("cache-hit bench ran the engine %d times", misses)
		}
	})

	b.Run("cache-miss-n1000", func(b *testing.B) {
		m := New(Config{EngineWorkers: 1})
		defer m.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh seed per iteration defeats the cache: every run
			// simulates.
			req := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: int64(i + 1), Graph: g}
			out, err := m.Run(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if out.Rejected {
				b.Fatal("rejected planar graph")
			}
		}
		b.StopTimer()
		if hits := m.Metrics().CacheHits.Load(); hits != 0 {
			b.Fatalf("cache-miss bench hit the cache %d times", hits)
		}
	})
}
