package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// State is a job's lifecycle position.
type State int32

// Job states. Queued and Running are transient; Done and Failed are
// terminal (a canceled job fails with context.Canceled).
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

// String implements fmt.Stringer with the wire names.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Job tracks one submitted request through the run pool. Fields set at
// creation (ID, Key, Request, CacheHit, Created) are immutable; the
// rest is published through accessors once the job reaches a terminal
// state.
type Job struct {
	ID  string
	Key string
	// Request is the submitted work item (its graph included).
	Request *Request
	// CacheHit records whether this job was answered by the result
	// cache without running the engine.
	CacheHit bool
	Created  time.Time

	state        atomic.Int32
	done         chan struct{}
	cancelOnce   sync.Once
	cancelCh     chan struct{}
	attached     atomic.Int64 // submissions sharing this job (coalescing)
	httpReleased atomic.Bool  // DELETE /v1/jobs/{id} already released once
	resume       []byte       // engine checkpoint to continue from (crash recovery)
	charged      int64        // admission-budget bytes held until the job releases
	// progress is the engine's barrier-updated progress cell, installed
	// by the worker when the run starts (nil before that, and always nil
	// for cache hits and non-instrumented properties). Stored through an
	// atomic pointer so View can snapshot it concurrently.
	progress atomic.Pointer[obs.Progress]

	// Terminal results; written exactly once before done closes.
	outcome *Outcome
	err     error
	ended   time.Time
}

// State returns the job's current state.
func (j *Job) State() State { return State(j.state.Load()) }

func (j *Job) setState(s State) { j.state.Store(int32(s)) }

// cancel forces cancellation: a queued job fails before it runs, a
// running job aborts at the engine's next round barrier. Terminal jobs
// are unaffected.
func (j *Job) cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

// attach records one more submission sharing this job (coalescing).
func (j *Job) attach() { j.attached.Add(1) }

// release drops one submission's attachment; the job is canceled when
// the last one goes. The count is clamped at zero so a stray extra
// release (a bug upstream) cannot push it negative and swallow a later
// legitimate attachment's veto.
func (j *Job) release() {
	for {
		n := j.attached.Load()
		if n <= 0 {
			return
		}
		if j.attached.CompareAndSwap(n, n-1) {
			if n == 1 {
				j.cancel()
			}
			return
		}
	}
}

// cancelHTTP releases the HTTP-side interest in the job, at most once
// per job: HTTP submissions are not addressable per client, so repeated
// DELETEs of the same job id must stay no-ops instead of draining other
// submitters' attachments.
func (j *Job) cancelHTTP() {
	if j.httpReleased.CompareAndSwap(false, true) {
		j.release()
	}
}

// Submission is one submitter's handle on a (possibly shared) job.
// Job accessors are promoted; Cancel releases only this handle's
// attachment and is idempotent — calling it twice on the same handle
// is a no-op, not a second submitter's veto.
type Submission struct {
	*Job
	released atomic.Bool
}

// Cancel releases this submission's interest in the job. Because
// identical concurrent submissions coalesce onto one job, the
// underlying run only aborts once every attached submission has
// canceled — one client abandoning a shared request must not fail it
// for the others. Repeated calls on the same handle are no-ops.
func (s *Submission) Cancel() {
	if s.released.CompareAndSwap(false, true) {
		s.Job.release()
	}
}

// releaseGraph drops the job's graph reference so retained (finished)
// jobs do not pin their inputs in memory. The job owns its Request
// copy, so the submitter's struct is untouched. Never call while the
// job can still run.
func (j *Job) releaseGraph() { j.Request.Graph = nil }

func (j *Job) canceled() bool {
	select {
	case <-j.cancelCh:
		return true
	default:
		return false
	}
}

// finish publishes the terminal state. Must be called exactly once.
func (j *Job) finish(out *Outcome, err error) {
	j.outcome, j.err = out, err
	j.ended = time.Now()
	if err != nil {
		j.setState(StateFailed)
	} else {
		j.setState(StateDone)
	}
	close(j.done)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx expires; on ctx expiry the
// job keeps running (async submitters may still be watching it) and
// ctx.Err() is returned.
func (j *Job) Wait(ctx context.Context) (*Outcome, error) {
	select {
	case <-j.done:
		return j.outcome, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the terminal outcome and error; valid only after Done
// is closed.
func (j *Job) Result() (*Outcome, error) {
	select {
	case <-j.done:
		return j.outcome, j.err
	default:
		return nil, nil
	}
}

// View is the JSON representation of a job for the HTTP API.
type View struct {
	ID       string   `json:"job_id"`
	State    string   `json:"state"`
	Property string   `json:"property"`
	CacheHit bool     `json:"cache_hit"`
	Error    string   `json:"error,omitempty"`
	Outcome  *Outcome `json:"outcome,omitempty"`
	// Progress reports where a still-running engine run currently is
	// (phase, round, barriers executed); present only while the job runs.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
}

// View snapshots the job for serialization. Gated on the done channel
// (not the state) so an outcome is only read once it is published.
func (j *Job) View() View {
	v := View{
		ID:       j.ID,
		State:    j.State().String(),
		Property: j.Request.Property,
		CacheHit: j.CacheHit,
	}
	select {
	case <-j.done:
		v.State = j.State().String() // terminal by the time done closes
		if j.err != nil {
			v.Error = j.err.Error()
		}
		v.Outcome = j.outcome
	default:
		if p := j.progress.Load(); p != nil {
			s := p.Snapshot()
			v.Progress = &s
		}
	}
	return v
}
