package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/faultpoint"
)

func newTestDiskCache(t *testing.T, dir string, budget int64) (*diskCache, *atomic.Int64) {
	t.Helper()
	q := new(atomic.Int64)
	d, err := newDiskCache(dir, budget, q)
	if err != nil {
		t.Fatal(err)
	}
	return d, q
}

func testOutcome(verdict string) *Outcome {
	return &Outcome{Property: PropPlanarity, Verdict: verdict, GraphN: 64, GraphM: 112,
		Metrics: RunMetrics{Rounds: 100, Messages: 4242, BitBound: 32}}
}

func mustPut(t *testing.T, d *diskCache, key string, o *Outcome) []byte {
	t.Helper()
	blob, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	d.put(key, blob)
	if _, err := os.Stat(d.path(key)); err != nil {
		t.Fatalf("entry did not land: %v", err)
	}
	return blob
}

const testKey = "ab54d882e59cd2f1aa1234567890abcdef1234567890abcdef1234567890abcd"

func TestDiskCacheRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d, _ := newTestDiskCache(t, dir, 0)
	want := mustPut(t, d, testKey, testOutcome("accept"))

	// A fresh store over the same directory models a process restart:
	// the entry must come back byte-identical.
	d2, q := newTestDiskCache(t, dir, 0)
	got, size, ok := d2.get(testKey)
	if !ok {
		t.Fatal("restart lost the entry")
	}
	if size != int64(len(want)) {
		t.Fatalf("promoted size %d, want %d", size, len(want))
	}
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(want) {
		t.Fatalf("outcome not byte-identical after restart:\n got %s\nwant %s", back, want)
	}
	if q.Load() != 0 {
		t.Fatalf("clean restart quarantined %d entries", q.Load())
	}
}

func TestDiskCacheCorruptionQuarantine(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bit-flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-3] ^= 0x40 // flip a payload bit
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncation", func(t *testing.T, path string) {
			if err := os.Truncate(path, 20); err != nil { // inside the header
				t.Fatal(err)
			}
		}},
		{"wrong-hash", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(diskCacheMagic)] ^= 0xff // corrupt the stored digest
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"partial-write", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// A torn write: the header landed, the payload tail did not.
			if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-payload-json", func(t *testing.T, path string) {
			// Integrity-valid bytes that do not decode: a store-level
			// writer bug must still quarantine, not crash or serve.
			payload := []byte("not json")
			sum := sha256.Sum256(payload)
			raw := append([]byte(diskCacheMagic), sum[:]...)
			raw = append(raw, payload...)
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, q := newTestDiskCache(t, dir, 0)
			mustPut(t, d, testKey, testOutcome("accept"))
			tc.corrupt(t, d.path(testKey))

			if _, _, ok := d.get(testKey); ok {
				t.Fatal("corrupt entry was served")
			}
			if q.Load() != 1 {
				t.Fatalf("quarantined counter = %d, want 1", q.Load())
			}
			if _, err := os.Stat(d.path(testKey)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry still at its path: %v", err)
			}
			qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(qents) != 1 {
				t.Fatalf("quarantine dir: %v entries, err %v (corrupt entries are kept, never deleted)", len(qents), err)
			}

			// The tier recovers: a re-run re-caches and serves again.
			mustPut(t, d, testKey, testOutcome("accept"))
			if _, _, ok := d.get(testKey); !ok {
				t.Fatal("re-cached entry not served after quarantine")
			}
		})
	}
}

func TestDiskCacheScanQuarantinesPartialTmp(t *testing.T) {
	dir := t.TempDir()
	d, _ := newTestDiskCache(t, dir, 0)
	mustPut(t, d, testKey, testOutcome("accept"))
	// A crash between WriteFile and Rename leaves a .tmp beside the
	// entry; the next open must sweep it into quarantine.
	tmp := d.path(testKey) + ".tmp"
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, q := newTestDiskCache(t, dir, 0)
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray tmp survived the open scan: %v", err)
	}
	if q.Load() != 1 {
		t.Fatalf("quarantined counter = %d, want 1", q.Load())
	}
	if _, _, ok := d2.get(testKey); !ok {
		t.Fatal("valid entry lost while sweeping the tmp")
	}
}

func TestDiskCacheEviction(t *testing.T) {
	dir := t.TempDir()
	// Budget fits roughly two entries; the oldest must be evicted.
	o := testOutcome("accept")
	blob, _ := json.Marshal(o)
	entry := int64(len(diskCacheMagic) + 32 + len(blob))
	d, q := newTestDiskCache(t, dir, 2*entry+8)
	keys := []string{"aa" + testKey[2:], "bb" + testKey[2:], "cc" + testKey[2:]}
	for _, k := range keys {
		mustPut(t, d, k, o)
	}
	if got := d.size(); got > 2*entry+8 {
		t.Fatalf("disk tier holds %d bytes, budget %d", got, 2*entry+8)
	}
	live := 0
	for _, k := range keys {
		if _, _, ok := d.get(k); ok {
			live++
		}
	}
	if live != 2 {
		t.Fatalf("%d live entries after eviction, want 2", live)
	}
	if q.Load() != 0 {
		t.Fatal("eviction must delete valid entries, not quarantine them")
	}
}

func TestDiskCacheFaultpoints(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	dir := t.TempDir()
	d, q := newTestDiskCache(t, dir, 0)
	boom := errors.New("injected disk fault")

	// Write fault: the put is lost (memory tier unaffected in real use).
	faultpoint.Arm(FaultCacheWrite, 0, func() error { return boom })
	blob, _ := json.Marshal(testOutcome("accept"))
	d.put(testKey, blob)
	faultpoint.Disarm(FaultCacheWrite)
	if _, err := os.Stat(d.path(testKey)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("write fault did not suppress the entry")
	}

	// Read fault: a present, valid entry is a miss — degraded, never wrong.
	mustPut(t, d, testKey, testOutcome("accept"))
	faultpoint.Arm(FaultCacheRead, 0, func() error { return boom })
	if _, _, ok := d.get(testKey); ok {
		t.Fatal("read fault served an entry")
	}
	faultpoint.Disarm(FaultCacheRead)

	// Quarantine fault: the corrupt file stays in place but every read
	// keeps rejecting it — it is never served.
	raw, _ := os.ReadFile(d.path(testKey))
	raw[len(raw)-1] ^= 1
	os.WriteFile(d.path(testKey), raw, 0o644)
	faultpoint.Arm(FaultCacheQuarantine, 0, func() error { return boom })
	for i := 0; i < 3; i++ {
		if _, _, ok := d.get(testKey); ok {
			t.Fatal("corrupt entry served while quarantine is failing")
		}
	}
	faultpoint.Disarm(FaultCacheQuarantine)
	if q.Load() != 0 {
		t.Fatal("failed quarantine still bumped the counter")
	}
	// Once the disk heals, the next read finally quarantines it.
	if _, _, ok := d.get(testKey); ok {
		t.Fatal("corrupt entry served after quarantine healed")
	}
	if q.Load() != 1 {
		t.Fatalf("quarantined counter = %d, want 1", q.Load())
	}
}

// TestManagerRestartServesFromDisk is the restart-keeps-cache
// acceptance path at the Manager level: a result computed before a
// restart is served from the disk tier afterwards, byte-identical, with
// the hit counted.
func TestManagerRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := Config{EngineWorkers: 1, CacheDir: dir}

	m1 := New(cfg)
	first, err := m1.Run(ctx, gridRequest(PropPlanarity))
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	wantJSON, _ := json.Marshal(first)

	m2 := New(cfg)
	defer m2.Close()
	j, err := m2.Submit(ctx, gridRequest(PropPlanarity))
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit {
		t.Fatal("restarted manager missed a disk-cached result")
	}
	second, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(second)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("disk-restored outcome differs:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	mm := m2.Metrics()
	if mm.DiskHits.Load() != 1 || mm.CacheHits.Load() != 1 || mm.CacheMisses.Load() != 0 {
		t.Fatalf("disk=%d hits=%d misses=%d, want 1/1/0 (no engine re-run)",
			mm.DiskHits.Load(), mm.CacheHits.Load(), mm.CacheMisses.Load())
	}
	// The promoted entry serves the next request from memory.
	if _, err := m2.Run(ctx, gridRequest(PropPlanarity)); err != nil {
		t.Fatal(err)
	}
	if mm.DiskHits.Load() != 1 || mm.CacheHits.Load() != 2 {
		t.Fatalf("promotion did not stick: disk=%d hits=%d", mm.DiskHits.Load(), mm.CacheHits.Load())
	}
}
