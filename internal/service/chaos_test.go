package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// chaosBody is one pre-built request with its known-correct verdict.
type chaosBody struct {
	body    []byte
	verdict string
}

func chaosJSON(t *testing.T, g *graph.Graph, epsilon float64, seed int64) ([]byte, *Request) {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g, graphio.EdgeList); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"property": PropPlanarity,
		"epsilon":  epsilon,
		"seed":     seed,
		"graph":    map[string]any{"format": "edge-list", "data": buf.String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body, &Request{Property: PropPlanarity, Epsilon: epsilon, Seed: seed, Graph: g}
}

// TestOverloadChaos drives the service at 4x run-pool capacity with
// every disk-cache fault site armed intermittently, live entries being
// corrupted mid-run, and a deliberately tiny admission budget. The
// assertions are the degradation contract: no crash, no wrong verdict
// (every 200 matches a fault-free ground-truth run of the same key —
// runs are deterministic per key, so this is exact), every rejection a
// 503/429 carrying Retry-After, and the admission meter never exceeding
// the configured byte budget.
func TestOverloadChaos(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	// Bodies that recur across clients: their keys get cached, evicted to
	// disk, corrupted, quarantined. Ground truth comes from a clean
	// manager below — the one-sided tester always accepts planar inputs,
	// but rejection is seed-dependent, so we learn it rather than guess.
	small := graph.RandomPlanar(128, 256, rng)
	// Sized so that three concurrently held copies overflow the byte
	// budget below: budget sheds are guaranteed, not incidental.
	mid := graph.RandomPlanar(300, 600, rng)
	recurring := make([]chaosBody, 0, 4)
	requests := make([]*Request, 0, 4)
	for _, c := range []struct {
		g       *graph.Graph
		epsilon float64
		seed    int64
	}{
		{small, 0.25, 1},
		{mid, 0.25, 2},
		{graph.Complete(40), 0.05, 3},
		{graph.K5Subdivision(200), 0.25, 4},
	} {
		body, req := chaosJSON(t, c.g, c.epsilon, c.seed)
		recurring = append(recurring, chaosBody{body: body})
		requests = append(requests, req)
	}
	truth := New(Config{EngineWorkers: 1})
	for i, req := range requests {
		out, err := truth.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		recurring[i].verdict = out.Verdict
	}
	truth.Close()

	const budget = 64 << 10
	dir := t.TempDir()
	m := New(Config{
		MaxConcurrent: 2,
		QueueDepth:    2,
		EngineWorkers: 1,
		MemoryBudget:  budget,
		CacheDir:      dir,
		CacheEntries:  2, // force mem evictions so the disk tier serves mid-run
	})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	defer srv.Close()

	// Every disk-cache I/O site fails intermittently and deterministically.
	var wHits, rHits, qHits atomic.Int64
	boom := errors.New("injected disk fault")
	faultpoint.Arm(FaultCacheWrite, 0, func() error {
		if wHits.Add(1)%3 == 0 {
			return boom
		}
		return nil
	})
	faultpoint.Arm(FaultCacheRead, 0, func() error {
		if rHits.Add(1)%4 == 0 {
			return boom
		}
		return nil
	})
	faultpoint.Arm(FaultCacheQuarantine, 0, func() error {
		if qHits.Add(1)%2 == 0 {
			return boom
		}
		return nil
	})

	// Sample the admission meter concurrently with the load: it must
	// never exceed the budget — everything the ingest path pins (bodies
	// being decoded, queued and running graphs) is accounted there, so
	// this is the bounded-memory guarantee under overload.
	stopSampling := make(chan struct{})
	var sampled sync.WaitGroup
	var budgetPeak atomic.Int64
	sampled.Add(1)
	go func() {
		defer sampled.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if u := m.budget.used.Load(); u > budgetPeak.Load() {
				budgetPeak.Store(u)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const clients = 8 // 4x the run pool
	const perClient = 10
	var (
		wg    sync.WaitGroup
		ok200 atomic.Int64
		shed  atomic.Int64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perClient; i++ {
				// Corrupt a random live disk entry mid-flight every few
				// requests: served results must stay correct regardless.
				if c == 0 && i%3 == 2 {
					corruptOneDiskEntry(dir)
				}
				pick := recurring[crng.Intn(len(recurring))]
				if crng.Intn(2) == 0 {
					// Cache-busting planar body with a unique seed: a
					// guaranteed fresh engine run (so the queue and the
					// byte budget stay under real pressure all the way
					// through) with a guaranteed verdict — the tester is
					// one-sided, planar inputs always accept.
					body, _ := chaosJSON(t, mid, 0.25, int64(100000+c*1000+i))
					pick = chaosBody{body: body, verdict: "accept"}
				}
				resp, err := http.Post(srv.URL+"/v1/test", "application/json", bytes.NewReader(pick.body))
				if err != nil {
					t.Errorf("client %d: transport error: %v", c, err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					var v View
					if err := json.Unmarshal(raw, &v); err != nil {
						t.Errorf("client %d: bad view: %v", c, err)
						continue
					}
					if v.State != "done" || v.Outcome == nil {
						t.Errorf("client %d: 200 with non-done view: %s", c, raw)
						continue
					}
					if v.Outcome.Verdict != pick.verdict {
						t.Errorf("client %d: WRONG VERDICT %q (want %q, cache_hit=%v)",
							c, v.Outcome.Verdict, pick.verdict, v.CacheHit)
					}
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d: shed %d without Retry-After", c, resp.StatusCode)
					}
				default:
					t.Errorf("client %d: unexpected status %d: %s", c, resp.StatusCode, raw)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopSampling)
	sampled.Wait()

	if peak := budgetPeak.Load(); peak > budget {
		t.Fatalf("admission meter peaked at %d, budget %d", peak, budget)
	}
	if got := m.budget.used.Load(); got != 0 {
		t.Fatalf("admission meter did not drain: %d bytes still held", got)
	}
	mm := m.Metrics()
	if shed.Load() != mm.ShedRequests.Load() {
		t.Fatalf("clients saw %d sheds, metrics counted %d", shed.Load(), mm.ShedRequests.Load())
	}
	// The mix (8 sync clients, pool 2, queue 2, cache-busting bodies)
	// guarantees pressure; zero sheds means admission never engaged.
	if shed.Load() == 0 {
		t.Fatal("overload run shed nothing — admission control never engaged")
	}
	if ok200.Load() == 0 {
		t.Fatal("overload run served nothing")
	}
	t.Logf("chaos: %d ok, %d shed, faults w/r/q %d/%d/%d, %d quarantined, %d disk hits",
		ok200.Load(), shed.Load(), wHits.Load(), rHits.Load(), qHits.Load(),
		mm.Quarantined.Load(), mm.DiskHits.Load())
}

// corruptOneDiskEntry flips a byte in some live disk-cache entry, if
// any exists. It runs concurrently with serving: that is the point.
func corruptOneDiskEntry(dir string) {
	root := filepath.Join(dir, diskCacheSubdir)
	filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) == 0 {
			return nil
		}
		raw[len(raw)-1] ^= 0x10
		os.WriteFile(path, raw, 0o644)
		return fmt.Errorf("done") // stop after one
	})
}
