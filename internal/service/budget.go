package service

import (
	"errors"
	"sync/atomic"

	"repro/internal/graph"
)

// Admission-control errors reported by Submit (and mapped by the HTTP
// layer to 503 + Retry-After and 413 respectively).
var (
	// ErrOverloaded means the byte budget is saturated: the request was
	// shed before allocating and is safe to retry after backoff.
	ErrOverloaded = errors.New("service: byte budget saturated")
	// ErrTooLarge means the request alone exceeds the whole byte
	// budget; retrying cannot help.
	ErrTooLarge = errors.New("service: request exceeds the byte budget")
)

// byteBudget is the global admission meter: every byte a request pins —
// its body while it streams in, its decoded graph while the job is
// queued or running — is acquired up front and released when the
// holder lets go. Acquisition never blocks; overflow is shed at the
// door (ErrOverloaded) so the process degrades with 503s instead of
// growing toward OOM. total <= 0 disables the bound (usage is still
// tracked for the inflight_graph_bytes gauge).
type byteBudget struct {
	total int64
	used  atomic.Int64
}

// tryAcquire reserves n bytes or reports why it cannot.
func (b *byteBudget) tryAcquire(n int64) error {
	if n <= 0 {
		return nil
	}
	for {
		u := b.used.Load()
		if b.total > 0 && u+n > b.total {
			if n > b.total {
				return ErrTooLarge
			}
			return ErrOverloaded
		}
		if b.used.CompareAndSwap(u, u+n) {
			return nil
		}
	}
}

// release returns n reserved bytes.
func (b *byteBudget) release(n int64) {
	if n > 0 {
		b.used.Add(-n)
	}
}

// saturated reports whether the budget is currently full — the /readyz
// signal for load balancers to route elsewhere before requests fail.
func (b *byteBudget) saturated() bool {
	return b.total > 0 && b.used.Load() >= b.total
}

// GraphMemBytes estimates the resident bytes a decoded graph pins: two
// int32 endpoints per undirected edge in the adjacency lists plus a
// slice header per node, doubled for the reverse-port table the engine
// materializes lazily. This is the admission unit for queued and
// running jobs (deliberately not the full per-run algorithm state,
// which belongs to the run pool bound, not the ingest bound).
func GraphMemBytes(g *graph.Graph) int64 {
	if g == nil {
		return 0
	}
	return 2 * (24*int64(g.N()) + 8*int64(g.M()))
}
