package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/partition"
)

// crashState fabricates what a SIGKILLed daemon leaves behind for req: a
// job directory with the spec, the graph, and a mid-run engine
// checkpoint captured by killing a run at a barrier.
func crashState(t *testing.T, dir string, req *Request) string {
	t.Helper()
	defer faultpoint.Reset()
	key := req.CacheKey()
	store := newCkptStore(dir)
	if err := store.writeSpec(key, req); err != nil {
		t.Fatal(err)
	}
	var last []byte
	copts := core.Options{
		Epsilon:   req.Epsilon,
		Partition: partition.Options{Epsilon: req.Epsilon},
		Workers:   1,
		Checkpoint: congest.CheckpointConfig{
			EveryBarriers: 1,
			Sink:          func(round int, data []byte) error { last = data; return nil },
		},
	}
	boom := errors.New("killed")
	faultpoint.Arm(congest.FaultBarrier, 5, func() error { return boom })
	_, err := core.RunTester(req.Graph, copts, req.Seed)
	faultpoint.Disarm(congest.FaultBarrier)
	if !errors.Is(err, boom) {
		t.Fatalf("expected injected kill, got %v", err)
	}
	if last == nil {
		t.Fatal("no checkpoint captured before the kill")
	}
	if err := store.writeCkpt(key, last); err != nil {
		t.Fatal(err)
	}
	return key
}

// TestServiceCrashRecovery is the service half of the kill-and-resume
// story: a job directory left by a crashed daemon is picked up by
// Recover, resumed from its checkpoint, finishes with the same outcome
// as an uninterrupted run, lands in the result cache, and releases its
// durability state.
func TestServiceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	req := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 3, Graph: graph.Grid(12, 12)}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	base, err := run(req, runEnv{workers: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	key := crashState(t, dir, req)

	m := New(Config{EngineWorkers: 1, CheckpointDir: dir, CheckpointEvery: 1})
	defer m.Close()
	n, err := m.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	if got := m.Metrics().RecoveredJobs.Load(); got != 1 {
		t.Fatalf("RecoveredJobs = %d, want 1", got)
	}

	ctx := context.Background()
	sub, err := m.Submit(ctx, req) // coalesces onto (or cache-hits) the recovered run
	if err != nil {
		t.Fatal(err)
	}
	out, err := sub.Wait(ctx)
	if err != nil {
		t.Fatalf("recovered job failed: %v", err)
	}
	if out.Verdict != base.Verdict || out.Rejected != base.Rejected ||
		out.RejectedBy != base.RejectedBy || out.Metrics != base.Metrics {
		t.Fatalf("recovered outcome differs from baseline:\nbase:      %+v\nrecovered: %+v", base, out)
	}

	// The cache survived the "restart": a fresh submission is a hit.
	sub2, err := m.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.CacheHit {
		t.Fatal("re-submission after recovery missed the cache")
	}
	// Terminal state closed the durability window.
	if _, err := os.Stat(filepath.Join(dir, "jobs", key)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("job directory still present after completion (stat err %v)", err)
	}
}

// TestServiceRecoverQuarantines asserts startup recovery rejects what it
// cannot trust: a corrupt checkpoint costs only the checkpoint (the job
// re-runs from scratch), an unreadable job directory is quarantined
// whole, and both stay on disk for inspection.
func TestServiceRecoverQuarantines(t *testing.T) {
	dir := t.TempDir()
	req := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 7, Graph: graph.Grid(8, 8)}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	key := req.CacheKey()
	store := newCkptStore(dir)
	if err := store.writeSpec(key, req); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.jobDir(key), ckptFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken := filepath.Join(dir, "jobs", "deadbeef")
	if err := os.MkdirAll(broken, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(broken, specFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := New(Config{EngineWorkers: 1, CheckpointDir: dir, CheckpointEvery: 1})
	defer m.Close()
	n, err := m.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1 (the corrupt-checkpoint job, restarted fresh)", n)
	}
	ctx := context.Background()
	sub, err := m.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := sub.Wait(ctx); err != nil || out.Rejected {
		t.Fatalf("restarted job: out=%+v err=%v", out, err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatalf("quarantine dir: %v", err)
	}
	if len(entries) != 2 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("quarantine holds %v, want the corrupt checkpoint and the broken directory", names)
	}
}

// TestServiceCheckpointWriteFaults injects I/O errors into every durable
// checkpoint write and asserts the failure costs durability only: the
// run completes with the correct verdict, errors are counted, nothing
// is written.
func TestServiceCheckpointWriteFaults(t *testing.T) {
	defer faultpoint.Reset()
	m := New(Config{EngineWorkers: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 1})
	defer m.Close()
	faultpoint.Arm(FaultCheckpointWrite, 0, func() error { return errors.New("disk gone") })
	out, err := m.Run(context.Background(), &Request{
		Property: PropPlanarity, Epsilon: 0.25, Seed: 2, Graph: graph.Grid(8, 8),
	})
	faultpoint.Disarm(FaultCheckpointWrite)
	if err != nil {
		t.Fatalf("run with failing checkpoint disk: %v", err)
	}
	if out.Rejected {
		t.Fatal("grid rejected")
	}
	if m.Metrics().CheckpointErrs.Load() == 0 {
		t.Fatal("checkpoint errors not counted")
	}
	if m.Metrics().CheckpointsWritten.Load() != 0 {
		t.Fatal("checkpoints written despite injected faults")
	}
}

// TestServiceDurableRunCheckpointsAndCleans asserts the happy path:
// a durable run lands checkpoints while in flight and removes its job
// directory at completion.
func TestServiceDurableRunCheckpointsAndCleans(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{EngineWorkers: 1, CheckpointDir: dir, CheckpointEvery: 1})
	defer m.Close()
	out, err := m.Run(context.Background(), &Request{
		Property: PropPlanarity, Epsilon: 0.25, Seed: 4, Graph: graph.Grid(10, 10),
	})
	if err != nil || out.Rejected {
		t.Fatalf("durable run: out=%+v err=%v", out, err)
	}
	if m.Metrics().CheckpointsWritten.Load() == 0 {
		t.Fatal("no checkpoints written during a durable run")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("jobs directory not cleaned after completion: %v", entries)
	}
}

// TestRequestTimeout asserts the wall-clock bound: a too-small request
// timeout fails the job with congest.ErrDeadlineExceeded, the failure
// is never cached, the server-side MaxTimeout applies to requests that
// carry no bound, and the timeout never enters the cache key.
func TestRequestTimeout(t *testing.T) {
	big := graph.Grid(300, 300)
	m := New(Config{EngineWorkers: 1})
	defer m.Close()
	_, err := m.Run(context.Background(), &Request{
		Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: big, Timeout: time.Millisecond,
	})
	if !errors.Is(err, congest.ErrDeadlineExceeded) {
		t.Fatalf("expected ErrDeadlineExceeded, got %v", err)
	}
	if m.CacheLen() != 0 {
		t.Fatal("timed-out run was cached")
	}

	m2 := New(Config{EngineWorkers: 1, MaxTimeout: time.Millisecond})
	defer m2.Close()
	_, err = m2.Run(context.Background(), &Request{
		Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: big,
	})
	if !errors.Is(err, congest.ErrDeadlineExceeded) {
		t.Fatalf("expected MaxTimeout to bound an unbounded request, got %v", err)
	}

	a := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: big}
	b := &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Graph: big, Timeout: time.Hour}
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("timeout leaked into the cache key")
	}
}
