package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
)

// Faultpoints guarding every disk-cache I/O path. Arming them injects
// errors into the store so the chaos suite can prove a failing disk
// degrades the hit rate, never correctness: a failed write costs the
// disk copy, a failed read is a miss, a failed quarantine leaves the
// corrupt file in place where the integrity check keeps rejecting it.
const (
	// FaultCacheWrite fires before a disk-cache entry write.
	FaultCacheWrite = "service.cache.write"
	// FaultCacheRead fires before a disk-cache entry read.
	FaultCacheRead = "service.cache.read"
	// FaultCacheQuarantine fires before a corrupt entry is moved to
	// quarantine.
	FaultCacheQuarantine = "service.cache.quarantine"
)

// Disk-cache layout under the cache directory:
//
//	cache/<key[:2]>/<key>   one entry: "PDC1" magic, the SHA-256 of the
//	                        payload, then the payload (the outcome's
//	                        canonical JSON); written via tmp+rename so a
//	                        crash never leaves a torn entry visible
//	quarantine/<name>.<ns>  entries that failed the integrity check,
//	                        moved aside for inspection — never deleted,
//	                        never served
//
// Keys are hex SHA-256 cache keys (Request.CacheKey), so the two-char
// prefix fans entries out over at most 256 subdirectories and doubles
// as the natural consistent-hashing boundary for a future shared cache.
const (
	diskCacheMagic  = "PDC1"
	diskCacheSubdir = "cache"
	quarantineDir   = "quarantine"
)

// diskCache is the persistent second tier of the result cache. All
// methods are best-effort: any I/O failure costs at most the cached
// copy (a put that fails is simply not cached on disk; a get that fails
// is a miss). Corrupt entries — wrong magic, truncated, bit-flipped,
// hash-mismatched, or undecodable — are quarantined, never deleted and
// never served.
type diskCache struct {
	dir         string
	budget      int64 // max payload bytes on disk; <= 0 means unbounded
	quarantined *atomic.Int64

	mu    sync.Mutex
	bytes int64 // accounted bytes of live entries
}

// newDiskCache opens (or creates) a disk cache rooted at dir and scans
// it: live entry bytes are summed for the eviction budget, and stray
// .tmp files — partial writes interrupted by a crash — are quarantined.
func newDiskCache(dir string, budget int64, quarantined *atomic.Int64) (*diskCache, error) {
	d := &diskCache{dir: dir, budget: budget, quarantined: quarantined}
	root := filepath.Join(dir, diskCacheSubdir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	err := filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		if strings.Contains(e.Name(), ".tmp") {
			d.quarantine(path)
			return nil
		}
		if info, err := e.Info(); err == nil {
			d.bytes += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.evict()
	return d, nil
}

func (d *diskCache) path(key string) string {
	prefix := "xx"
	if len(key) >= 2 {
		prefix = key[:2]
	}
	return filepath.Join(d.dir, diskCacheSubdir, prefix, key)
}

// put lands one serialized outcome on disk, atomically (tmp+rename in
// the same directory), then evicts oldest entries past the budget.
func (d *diskCache) put(key string, payload []byte) {
	if err := faultpoint.Hit(FaultCacheWrite); err != nil {
		return
	}
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	var buf bytes.Buffer
	buf.Grow(len(diskCacheMagic) + sha256.Size + len(payload))
	buf.WriteString(diskCacheMagic)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	buf.Write(payload)

	var prev int64
	if info, err := os.Stat(path); err == nil {
		prev = info.Size()
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	d.mu.Lock()
	d.bytes += int64(buf.Len()) - prev
	d.mu.Unlock()
	d.evict()
}

// get loads, integrity-checks, and decodes one entry. Any corruption
// quarantines the file and reports a miss; the returned size is the
// payload length (the memory tier's accounting unit for the promoted
// entry).
func (d *diskCache) get(key string) (*Outcome, int64, bool) {
	if err := faultpoint.Hit(FaultCacheRead); err != nil {
		return nil, 0, false
	}
	path := d.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	payload, err := verifyDiskEntry(raw)
	if err != nil {
		d.quarantine(path)
		return nil, 0, false
	}
	var o Outcome
	if err := json.Unmarshal(payload, &o); err != nil {
		d.quarantine(path)
		return nil, 0, false
	}
	return &o, int64(len(payload)), true
}

// verifyDiskEntry checks magic and SHA-256 integrity, returning the
// payload of a sound entry.
func verifyDiskEntry(raw []byte) ([]byte, error) {
	hdr := len(diskCacheMagic) + sha256.Size
	if len(raw) < hdr {
		return nil, fmt.Errorf("truncated entry (%d bytes)", len(raw))
	}
	if string(raw[:len(diskCacheMagic)]) != diskCacheMagic {
		return nil, fmt.Errorf("bad magic %q", raw[:len(diskCacheMagic)])
	}
	payload := raw[hdr:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[len(diskCacheMagic):hdr]) {
		return nil, fmt.Errorf("payload hash mismatch")
	}
	return payload, nil
}

// quarantine moves a rejected file under quarantine/ instead of
// deleting it, so corrupt entries stay inspectable. The destination
// carries a nanosecond timestamp: repeated corruption must not collide.
// On failure (including an armed faultpoint) the file stays where it
// is; it is still never served, because every read re-runs the
// integrity check.
func (d *diskCache) quarantine(path string) {
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	var size int64
	if info, err := os.Stat(path); err == nil {
		size = info.Size()
	}
	if err := faultpoint.Hit(FaultCacheQuarantine); err != nil {
		return
	}
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		return
	}
	d.quarantined.Add(1)
	d.mu.Lock()
	d.bytes -= size
	d.mu.Unlock()
}

// size returns the accounted bytes of the live disk entries.
func (d *diskCache) size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// evict deletes oldest-modified live entries until the store fits the
// budget. Valid cached results are expendable (they re-run); quarantine
// is out of scope and never touched.
func (d *diskCache) evict() {
	if d.budget <= 0 {
		return
	}
	d.mu.Lock()
	over := d.bytes > d.budget
	d.mu.Unlock()
	if !over {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	root := filepath.Join(d.dir, diskCacheSubdir)
	filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return nil
		}
		if info, err := e.Info(); err == nil {
			entries = append(entries, entry{path, info.Size(), info.ModTime()})
		}
		return nil
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if d.bytes <= d.budget {
			return
		}
		if os.Remove(e.path) == nil {
			d.bytes -= e.size
		}
	}
}
