package service

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// HandlerConfig tunes the HTTP front-end.
type HandlerConfig struct {
	// MaxRequestBytes bounds request bodies (0: 512 MiB).
	MaxRequestBytes int64
}

// wireRequest is the JSON body of POST /v1/test. The graph travels
// inline ("data" for text formats, "data_base64" for binary) or as a
// multipart part named "graph".
type wireRequest struct {
	Property string  `json:"property"`
	Epsilon  float64 `json:"epsilon"`
	Seed     int64   `json:"seed"`
	Variant  string  `json:"variant"`
	// Timeout is a Go duration string ("30s", "2m") bounding the run's
	// wall clock; a timed-out sync request answers 504. The server's
	// MaxTimeout caps it.
	Timeout string `json:"timeout,omitempty"`
	Async   bool   `json:"async"`
	Graph   *struct {
		Format     string `json:"format"`
		Data       string `json:"data"`
		DataBase64 string `json:"data_base64"`
	} `json:"graph"`
}

// NewHandler exposes m over HTTP:
//
//	POST   /v1/test       run a test (sync by default, async=true for 202 + job)
//	GET    /v1/jobs/{id}  poll a job
//	DELETE /v1/jobs/{id}  release the HTTP submitters' interest
//	                      (idempotent); the run aborts once all
//	                      coalesced submitters canceled
//	GET    /metrics       Prometheus text exposition
//	GET    /healthz       liveness
func NewHandler(m *Manager, hc HandlerConfig) http.Handler {
	if hc.MaxRequestBytes == 0 {
		hc.MaxRequestBytes = 512 << 20
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/test", func(w http.ResponseWriter, r *http.Request) {
		handleTest(m, hc, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSONResponse(w, http.StatusOK, j.View())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		j.cancelHTTP()
		writeJSONResponse(w, http.StatusOK, j.View())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// handleTest decodes a test request (JSON or multipart), submits it,
// and either waits (sync) or returns the queued job (async, 202).
func handleTest(m *Manager, hc HandlerConfig, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, hc.MaxRequestBytes)
	req, async, err := decodeTestRequest(r)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err)
		return
	}
	if r.URL.Query().Get("async") == "1" || r.URL.Query().Get("async") == "true" {
		async = true
	}
	j, err := m.Submit(r.Context(), req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrQueueFull):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	if async {
		writeJSONResponse(w, http.StatusAccepted, j.View())
		return
	}
	if _, err := j.Wait(r.Context()); err != nil {
		if errors.Is(err, congest.ErrDeadlineExceeded) {
			// The run hit its wall-clock bound; the failure is terminal
			// (and, like every failure, never cached).
			writeJSONResponse(w, http.StatusGatewayTimeout, j.View())
			return
		}
		if j.State() == StateFailed {
			// Engine-side failure (panic, cancellation): the view
			// carries the error.
			writeJSONResponse(w, http.StatusInternalServerError, j.View())
			return
		}
		// The client went away; the job keeps running for the cache.
		httpError(w, http.StatusGatewayTimeout, err)
		return
	}
	writeJSONResponse(w, http.StatusOK, j.View())
}

// decodeTestRequest parses the two wire shapes of POST /v1/test.
func decodeTestRequest(r *http.Request) (*Request, bool, error) {
	ct := r.Header.Get("Content-Type")
	mediaType := ct
	if ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil {
			mediaType = mt
		}
	}
	if strings.HasPrefix(mediaType, "multipart/") {
		return decodeMultipart(r)
	}
	var wire wireRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return nil, false, fmt.Errorf("bad request body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		if err == nil {
			err = fmt.Errorf("unexpected token")
		}
		return nil, false, fmt.Errorf("trailing data after request object: %w", err)
	}
	if wire.Graph == nil {
		return nil, false, fmt.Errorf("request has no graph (inline \"graph\" object or multipart part)")
	}
	f, err := graphio.ParseFormat(wire.Graph.Format)
	if err != nil {
		return nil, false, err
	}
	// Both payload shapes stream into the reader; no intermediate
	// copies of a potentially huge graph.
	var rd io.Reader
	switch {
	case wire.Graph.DataBase64 != "" && wire.Graph.Data != "":
		return nil, false, fmt.Errorf("graph has both data and data_base64")
	case wire.Graph.DataBase64 != "":
		rd = base64.NewDecoder(base64.StdEncoding, strings.NewReader(wire.Graph.DataBase64))
	default:
		rd = strings.NewReader(wire.Graph.Data)
	}
	g, err := graphio.Read(rd, f)
	if err != nil {
		return nil, false, err
	}
	req, err := wireToRequest(wire, g)
	return req, wire.Async, err
}

// decodeMultipart parses multipart/form-data: a "request" field with
// the options JSON (graph omitted) and a "graph" file part, optionally
// a "format" field (default: autodetect, trying the filename first).
func decodeMultipart(r *http.Request) (*Request, bool, error) {
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		return nil, false, fmt.Errorf("bad multipart body: %w", err)
	}
	var wire wireRequest
	if s := r.FormValue("request"); s != "" {
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wire); err != nil {
			return nil, false, fmt.Errorf("bad request field: %w", err)
		}
		if wire.Graph != nil {
			return nil, false, fmt.Errorf("multipart request must carry the graph as a part, not inline")
		}
	} else {
		// Bare-form convenience: property/epsilon/seed as form values.
		wire.Property = r.FormValue("property")
		wire.Variant = r.FormValue("variant")
		if s := r.FormValue("epsilon"); s != "" {
			if _, err := fmt.Sscan(s, &wire.Epsilon); err != nil {
				return nil, false, fmt.Errorf("bad epsilon %q", s)
			}
		}
		if s := r.FormValue("seed"); s != "" {
			if _, err := fmt.Sscan(s, &wire.Seed); err != nil {
				return nil, false, fmt.Errorf("bad seed %q", s)
			}
		}
		wire.Async = r.FormValue("async") == "1" || r.FormValue("async") == "true"
	}
	if s := r.FormValue("timeout"); s != "" {
		wire.Timeout = s
	}
	file, hdr, err := r.FormFile("graph")
	if err != nil {
		return nil, false, fmt.Errorf("missing graph part: %w", err)
	}
	defer file.Close()
	f, err := graphio.ParseFormat(r.FormValue("format"))
	if err != nil {
		return nil, false, err
	}
	if f == graphio.Auto && hdr != nil {
		f = graphio.DetectPath(hdr.Filename)
	}
	g, err := graphio.Read(file, f)
	if err != nil {
		return nil, false, err
	}
	req, err := wireToRequest(wire, g)
	return req, wire.Async, err
}

func wireToRequest(wire wireRequest, g *graph.Graph) (*Request, error) {
	req := &Request{
		Property: wire.Property,
		Epsilon:  wire.Epsilon,
		Seed:     wire.Seed,
		Variant:  wire.Variant,
		Graph:    g,
	}
	if wire.Timeout != "" {
		d, err := time.ParseDuration(wire.Timeout)
		if err != nil {
			return nil, fmt.Errorf("bad timeout %q: %w", wire.Timeout, err)
		}
		req.Timeout = d
	}
	return req, nil
}

func writeJSONResponse(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSONResponse(w, status, map[string]string{"error": err.Error()})
}
