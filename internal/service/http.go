package service

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// HandlerConfig tunes the HTTP front-end.
type HandlerConfig struct {
	// MaxRequestBytes bounds request bodies (0: 512 MiB).
	MaxRequestBytes int64
}

// wireRequest is the JSON body of POST /v1/test. The graph travels
// inline ("data" for text formats, "data_base64" for binary) or as a
// multipart part named "graph".
type wireRequest struct {
	Property string  `json:"property"`
	Epsilon  float64 `json:"epsilon"`
	Seed     int64   `json:"seed"`
	Variant  string  `json:"variant"`
	Mode     string  `json:"mode"`
	// Timeout is a Go duration string ("30s", "2m") bounding the run's
	// wall clock; a timed-out sync request answers 504. The server's
	// MaxTimeout caps it.
	Timeout string `json:"timeout,omitempty"`
	Async   bool   `json:"async"`
	Graph   *struct {
		Format     string `json:"format"`
		Data       string `json:"data"`
		DataBase64 string `json:"data_base64"`
	} `json:"graph"`
}

// NewHandler exposes m over HTTP:
//
//	POST   /v1/test       run a test (sync by default, async=true for 202 + job)
//	GET    /v1/jobs/{id}  poll a job
//	DELETE /v1/jobs/{id}  release the HTTP submitters' interest
//	                      (idempotent); the run aborts once all
//	                      coalesced submitters canceled
//	GET    /metrics       Prometheus text exposition
//	GET    /healthz       liveness
//	GET    /readyz        readiness: 503 while draining or while the
//	                      admission byte budget is saturated, so load
//	                      balancers stop routing before requests fail
func NewHandler(m *Manager, hc HandlerConfig) http.Handler {
	if hc.MaxRequestBytes == 0 {
		hc.MaxRequestBytes = 512 << 20
	}
	mux := http.NewServeMux()
	// Every route is wrapped with the latency recorder under a fixed
	// route name, so planard_request_seconds{route,status} cardinality is
	// bounded by this list times the statuses the handlers answer.
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			h(rec, r)
			m.Metrics().ObserveRequest(route, rec.status, time.Since(start).Seconds())
		})
	}
	handle("POST /v1/test", "test", func(w http.ResponseWriter, r *http.Request) {
		handleTest(m, hc, w, r)
	})
	handle("GET /v1/jobs/{id}", "job_get", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSONResponse(w, http.StatusOK, j.View())
	})
	handle("DELETE /v1/jobs/{id}", "job_delete", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		j.cancelHTTP()
		writeJSONResponse(w, http.StatusOK, j.View())
	})
	handle("GET /metrics", "metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.Metrics().WritePrometheus(w)
	})
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok\n")
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		switch {
		case m.Draining():
			w.Header().Set("Retry-After", retryAfterSeconds)
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
		case m.Saturated():
			w.Header().Set("Retry-After", retryAfterSeconds)
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "overloaded\n")
		default:
			io.WriteString(w, "ready\n")
		}
	})
	return mux
}

// statusRecorder captures the status a handler answered with so the
// latency recorder can label its observation. Handlers that never call
// WriteHeader implicitly answer 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// retryAfterSeconds is the Retry-After hint on every shed response:
// shedding means transient pressure (a full queue or byte budget), so
// clients should back off briefly, not give up.
const retryAfterSeconds = "1"

// handleTest decodes a test request (JSON or multipart), submits it,
// and either waits (sync) or returns the queued job (async, 202).
func handleTest(m *Manager, hc HandlerConfig, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, hc.MaxRequestBytes)
	// Byte-accounted admission: the declared body length is reserved
	// against the global budget while the body streams into the graph
	// readers, so a burst of concurrent uploads sheds instead of
	// buffering its way to OOM. Chunked bodies (ContentLength < 0)
	// pass here and are still bounded by MaxRequestBytes.
	releaseBody, err := m.AdmitBytes(r.ContentLength)
	if err != nil {
		shedError(w, err)
		return
	}
	req, async, err := decodeTestRequest(r)
	releaseBody()
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err)
		return
	}
	if r.URL.Query().Get("async") == "1" || r.URL.Query().Get("async") == "true" {
		async = true
	}
	j, err := m.Submit(r.Context(), req)
	if err != nil {
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrOverloaded) ||
			errors.Is(err, ErrTooLarge) || errors.Is(err, ErrClosed) {
			shedError(w, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if async {
		writeJSONResponse(w, http.StatusAccepted, j.View())
		return
	}
	if _, err := j.Wait(r.Context()); err != nil {
		if errors.Is(err, congest.ErrDeadlineExceeded) {
			// The run hit its wall-clock bound; the failure is terminal
			// (and, like every failure, never cached).
			writeJSONResponse(w, http.StatusGatewayTimeout, j.View())
			return
		}
		if j.State() == StateFailed {
			// Engine-side failure (panic, cancellation): the view
			// carries the error.
			writeJSONResponse(w, http.StatusInternalServerError, j.View())
			return
		}
		// The client went away; the job keeps running for the cache.
		httpError(w, http.StatusGatewayTimeout, err)
		return
	}
	writeJSONResponse(w, http.StatusOK, j.View())
}

// decodeTestRequest parses the two wire shapes of POST /v1/test.
func decodeTestRequest(r *http.Request) (*Request, bool, error) {
	ct := r.Header.Get("Content-Type")
	mediaType := ct
	if ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil {
			mediaType = mt
		}
	}
	if strings.HasPrefix(mediaType, "multipart/") {
		return decodeMultipart(r)
	}
	var wire wireRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return nil, false, fmt.Errorf("bad request body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		if err == nil {
			err = fmt.Errorf("unexpected token")
		}
		return nil, false, fmt.Errorf("trailing data after request object: %w", err)
	}
	if wire.Graph == nil {
		return nil, false, fmt.Errorf("request has no graph (inline \"graph\" object or multipart part)")
	}
	f, err := graphio.ParseFormat(wire.Graph.Format)
	if err != nil {
		return nil, false, err
	}
	// Both payload shapes stream into the reader; no intermediate
	// copies of a potentially huge graph.
	var rd io.Reader
	switch {
	case wire.Graph.DataBase64 != "" && wire.Graph.Data != "":
		return nil, false, fmt.Errorf("graph has both data and data_base64")
	case wire.Graph.DataBase64 != "":
		rd = base64.NewDecoder(base64.StdEncoding, strings.NewReader(wire.Graph.DataBase64))
	default:
		rd = strings.NewReader(wire.Graph.Data)
	}
	g, err := graphio.Read(rd, f)
	if err != nil {
		return nil, false, err
	}
	req, err := wireToRequest(wire, g)
	return req, wire.Async, err
}

// maxMultipartFieldBytes bounds each non-graph multipart field. The
// fields carry options JSON or scalar values; anything bigger is a
// malformed request, not a large graph.
const maxMultipartFieldBytes = 1 << 20

// decodeMultipart parses multipart/form-data: a "request" field with
// the options JSON (graph omitted) and a "graph" file part, optionally
// a "format" field (default: autodetect, trying the filename first).
//
// The body is consumed as a stream: parts are visited in wire order
// and the graph part is fed straight into the graphio reader, so a
// multi-hundred-MB upload is never buffered in memory or on disk (the
// old ParseMultipartForm path silently spooled everything past 32MB to
// temp files). The only ordering constraint this imposes is that a
// "format" field, which changes how the graph bytes are parsed, must
// precede the "graph" part.
func decodeMultipart(r *http.Request) (*Request, bool, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, false, fmt.Errorf("bad multipart body: %w", err)
	}
	fields := make(map[string]string)
	var g *graph.Graph
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, fmt.Errorf("bad multipart body: %w", err)
		}
		name := part.FormName()
		if name == "graph" {
			if g != nil {
				part.Close()
				return nil, false, fmt.Errorf("duplicate graph part")
			}
			f, err := graphio.ParseFormat(fields["format"])
			if err != nil {
				part.Close()
				return nil, false, err
			}
			if f == graphio.Auto {
				f = graphio.DetectPath(part.FileName())
			}
			g, err = graphio.Read(part, f)
			part.Close()
			if err != nil {
				return nil, false, err
			}
			continue
		}
		if name == "format" && g != nil {
			part.Close()
			return nil, false, fmt.Errorf("format field must precede the graph part (the graph is decoded as it streams)")
		}
		val, err := readFieldValue(part, name)
		part.Close()
		if err != nil {
			return nil, false, err
		}
		fields[name] = val
	}
	if g == nil {
		return nil, false, fmt.Errorf("missing graph part")
	}

	var wire wireRequest
	if s := fields["request"]; s != "" {
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wire); err != nil {
			return nil, false, fmt.Errorf("bad request field: %w", err)
		}
		if wire.Graph != nil {
			return nil, false, fmt.Errorf("multipart request must carry the graph as a part, not inline")
		}
	} else {
		// Bare-form convenience: property/epsilon/seed as form values.
		wire.Property = fields["property"]
		wire.Variant = fields["variant"]
		wire.Mode = fields["mode"]
		if s := fields["epsilon"]; s != "" {
			if _, err := fmt.Sscan(s, &wire.Epsilon); err != nil {
				return nil, false, fmt.Errorf("bad epsilon %q", s)
			}
		}
		if s := fields["seed"]; s != "" {
			if _, err := fmt.Sscan(s, &wire.Seed); err != nil {
				return nil, false, fmt.Errorf("bad seed %q", s)
			}
		}
		wire.Async = fields["async"] == "1" || fields["async"] == "true"
	}
	if s := fields["timeout"]; s != "" {
		wire.Timeout = s
	}
	req, err := wireToRequest(wire, g)
	return req, wire.Async, err
}

// readFieldValue drains one small (non-graph) multipart field.
func readFieldValue(part io.Reader, name string) (string, error) {
	b, err := io.ReadAll(io.LimitReader(part, maxMultipartFieldBytes+1))
	if err != nil {
		return "", fmt.Errorf("reading field %q: %w", name, err)
	}
	if len(b) > maxMultipartFieldBytes {
		return "", fmt.Errorf("field %q exceeds %d bytes", name, maxMultipartFieldBytes)
	}
	return string(b), nil
}

func wireToRequest(wire wireRequest, g *graph.Graph) (*Request, error) {
	req := &Request{
		Property: wire.Property,
		Epsilon:  wire.Epsilon,
		Seed:     wire.Seed,
		Variant:  wire.Variant,
		Mode:     wire.Mode,
		Graph:    g,
	}
	if wire.Timeout != "" {
		d, err := time.ParseDuration(wire.Timeout)
		if err != nil {
			return nil, fmt.Errorf("bad timeout %q: %w", wire.Timeout, err)
		}
		req.Timeout = d
	}
	return req, nil
}

func writeJSONResponse(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSONResponse(w, status, map[string]string{"error": err.Error()})
}

// shedError maps admission-control rejections onto the degradation
// ladder's wire contract: transient pressure (full queue, saturated
// budget, draining) answers 503 + Retry-After so well-behaved clients
// back off and retry; a request that can never fit answers 413.
func shedError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrTooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds)
	httpError(w, http.StatusServiceUnavailable, err)
}
