package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
)

func testServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	m := New(Config{EngineWorkers: 1})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	t.Cleanup(srv.Close)
	return srv, m
}

func encodeGraph(t *testing.T, g *graph.Graph, f graphio.Format) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g, f); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func testRequestBody(g *graph.Graph, f graphio.Format, data string, extra map[string]any) map[string]any {
	body := map[string]any{
		"property": PropPlanarity,
		"epsilon":  0.25,
		"seed":     1,
		"graph":    map[string]any{"format": f.String(), "data": data},
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

func TestHTTPSyncTestAllFormats(t *testing.T) {
	srv, _ := testServer(t)
	g := graph.Grid(8, 8)
	var views []View
	for _, f := range graphio.Formats() {
		body := map[string]any{
			"property": PropPlanarity,
			"epsilon":  0.25,
			"seed":     1,
		}
		if f == graphio.Binary {
			body["graph"] = map[string]any{
				"format":      f.String(),
				"data_base64": base64.StdEncoding.EncodeToString([]byte(encodeGraph(t, g, f))),
			}
		} else {
			body["graph"] = map[string]any{"format": f.String(), "data": encodeGraph(t, g, f)}
		}
		resp, out := postJSON(t, srv.URL+"/v1/test", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d: %s", f, resp.StatusCode, out)
		}
		var v View
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if v.State != "done" || v.Outcome == nil || v.Outcome.Rejected {
			t.Fatalf("%v: unexpected view %s", f, out)
		}
		if v.Outcome.Metrics.Rounds <= 0 || v.Outcome.Metrics.BitBound <= 0 {
			t.Fatalf("%v: CONGEST metrics missing from %s", f, out)
		}
		views = append(views, v)
	}
	// All four wire formats address the same cache entry: one miss.
	for i, v := range views {
		if (i > 0) != v.CacheHit {
			t.Fatalf("format %d: cacheHit=%v, want %v", i, v.CacheHit, i > 0)
		}
	}
}

func TestHTTPAsyncJobLifecycle(t *testing.T) {
	srv, _ := testServer(t)
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomPlanar(2000, 4000, rng)
	body := testRequestBody(g, graphio.EdgeList, encodeGraph(t, g, graphio.EdgeList), map[string]any{"async": true})
	resp, out := postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: status %d: %s", resp.StatusCode, out)
	}
	var v View
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatalf("async POST returned no job id: %s", out)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", r.StatusCode, out)
		}
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == "done" {
			break
		}
		if v.State == "failed" {
			t.Fatalf("job failed: %s", out)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Outcome == nil || v.Outcome.Rejected {
		t.Fatalf("bad terminal view: %+v", v)
	}
}

func TestHTTPMultipartUpload(t *testing.T) {
	srv, _ := testServer(t)
	g := graph.Grid(6, 6)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if err := mw.WriteField("request", fmt.Sprintf(`{"property":%q,"epsilon":0.25,"seed":2}`, PropBipartiteness)); err != nil {
		t.Fatal(err)
	}
	fw, err := mw.CreateFormFile("graph", "grid.col")
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(fw, g, graphio.DIMACS); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	resp, err := http.Post(srv.URL+"/v1/test", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multipart POST: status %d: %s", resp.StatusCode, out)
	}
	var v View
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if v.Property != PropBipartiteness || v.State != "done" || v.Outcome.Rejected {
		t.Fatalf("unexpected view: %s", out)
	}
}

func TestHTTPCancelJob(t *testing.T) {
	srv, _ := testServer(t)
	rng := rand.New(rand.NewSource(12))
	g := graph.MaximalPlanar(20000, rng)
	body := testRequestBody(g, graphio.EdgeList, encodeGraph(t, g, graphio.EdgeList),
		map[string]any{"async": true, "epsilon": 0.05})
	resp, out := postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: status %d: %s", resp.StatusCode, out)
	}
	var v View
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", r.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == "failed" {
			if !strings.Contains(v.Error, "cancel") {
				t.Fatalf("failed without cancellation error: %s", out)
			}
			break
		}
		if v.State == "done" {
			t.Skip("job finished before the cancel landed") // tiny host: not an error
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q after cancel", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	g := graph.Grid(5, 5)
	body := testRequestBody(g, graphio.JSON, encodeGraph(t, g, graphio.JSON), nil)
	for i := 0; i < 2; i++ {
		if resp, out := postJSON(t, srv.URL+"/v1/test", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d: %d %s", i, resp.StatusCode, out)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"planard_cache_hits_total 1",
		"planard_cache_misses_total 1",
		`planard_jobs_total{property="planarity",status="done"} 2`,
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := testServer(t)
	el := encodeGraph(t, graph.Grid(3, 3), graphio.EdgeList)
	cases := []struct {
		name string
		body map[string]any
	}{
		{"no graph", map[string]any{"property": PropPlanarity, "epsilon": 0.25}},
		{"bad epsilon", testRequestBody(nil, graphio.EdgeList, el, map[string]any{"epsilon": 7})},
		{"bad property", testRequestBody(nil, graphio.EdgeList, el, map[string]any{"property": "chordality"})},
		{"bad format", map[string]any{"epsilon": 0.25, "graph": map[string]any{"format": "gexf", "data": el}}},
		{"corrupt graph", map[string]any{"epsilon": 0.25, "graph": map[string]any{"format": "edge-list", "data": "0 x\n"}}},
		{"unknown field", testRequestBody(nil, graphio.EdgeList, el, map[string]any{"bogus": 1})},
		{"both datas", map[string]any{"epsilon": 0.25, "graph": map[string]any{"data": el, "data_base64": "AAAA"}}},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/v1/test", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (want 400): %s", tc.name, resp.StatusCode, out)
		}
		var e map[string]string
		if err := json.Unmarshal(out, &e); err != nil || e["error"] == "" {
			t.Fatalf("%s: error body %q", tc.name, out)
		}
	}
	if r, _ := http.Get(srv.URL + "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", r.StatusCode)
	}
	if r, _ := http.Get(srv.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", r.StatusCode)
	}
}

// TestHTTPEndToEnd10k is the acceptance scenario: POST a 10^4-node
// random planar graph, expect an accept verdict with CONGEST metrics;
// POST it again and observe the cache hit through the counters.
func TestHTTPEndToEnd10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10^4-node end-to-end run skipped in -short mode")
	}
	srv, m := testServer(t)
	rng := rand.New(rand.NewSource(20260730))
	g := graph.RandomPlanar(10000, 20000, rng)
	body := testRequestBody(g, graphio.Binary, "", map[string]any{"graph": map[string]any{
		"format":      "binary",
		"data_base64": base64.StdEncoding.EncodeToString([]byte(encodeGraph(t, g, graphio.Binary))),
	}})
	var views [2]View
	for i := range views {
		resp, out := postJSON(t, srv.URL+"/v1/test", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d: status %d: %s", i, resp.StatusCode, out)
		}
		if err := json.Unmarshal(out, &views[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range views {
		if v.State != "done" || v.Outcome == nil {
			t.Fatalf("POST %d: not done: %+v", i, v)
		}
		if v.Outcome.Rejected {
			t.Fatalf("POST %d: rejected a planar graph", i)
		}
		if v.Outcome.Metrics.Rounds <= 0 || v.Outcome.Metrics.Messages <= 0 {
			t.Fatalf("POST %d: missing CONGEST metrics: %+v", i, v.Outcome)
		}
	}
	if views[0].CacheHit || !views[1].CacheHit {
		t.Fatalf("cache hits: first=%v second=%v, want false/true", views[0].CacheHit, views[1].CacheHit)
	}
	if hits, misses := m.Metrics().CacheHits.Load(), m.Metrics().CacheMisses.Load(); hits != 1 || misses != 1 {
		t.Fatalf("counters: hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestHTTPTimeoutAnswers504(t *testing.T) {
	srv, _ := testServer(t)
	g := graph.Grid(300, 300)
	data := encodeGraph(t, g, graphio.EdgeList)
	body := testRequestBody(g, graphio.EdgeList, data, map[string]any{"timeout": "1ms"})
	resp, out := postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out sync POST: status %d: %s", resp.StatusCode, out)
	}
	var v View
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != "failed" || !strings.Contains(v.Error, "deadline") {
		t.Fatalf("504 view: %s", out)
	}

	// A malformed timeout is a client error, not a run.
	body = testRequestBody(g, graphio.EdgeList, data, map[string]any{"timeout": "soon"})
	resp, out = postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d: %s", resp.StatusCode, out)
	}
}

func TestHTTPDeleteIdempotent(t *testing.T) {
	srv, _ := testServer(t)
	rng := rand.New(rand.NewSource(23))
	g := graph.MaximalPlanar(20000, rng)
	body := testRequestBody(g, graphio.EdgeList, encodeGraph(t, g, graphio.EdgeList),
		map[string]any{"async": true, "epsilon": 0.05})
	resp, out := postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: status %d: %s", resp.StatusCode, out)
	}
	var v View
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	// Two DELETEs of the same job must both answer 200 and release at
	// most one attachment (the second is a no-op, not an over-release).
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v.ID, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %d: status %d", i, r.StatusCode)
		}
	}
}

func TestHTTPReadyz(t *testing.T) {
	srv, m := testServer(t)
	get := func() (*http.Response, string) {
		t.Helper()
		r, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, string(out)
	}
	if r, out := get(); r.StatusCode != http.StatusOK || out != "ready\n" {
		t.Fatalf("idle readyz: %d %q", r.StatusCode, out)
	}
	m.BeginDrain()
	r, out := get()
	if r.StatusCode != http.StatusServiceUnavailable || out != "draining\n" {
		t.Fatalf("draining readyz: %d %q", r.StatusCode, out)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz carries no Retry-After")
	}
}

func TestHTTPReadyzSaturated(t *testing.T) {
	m := New(Config{EngineWorkers: 1, MemoryBudget: 1 << 10})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	t.Cleanup(srv.Close)

	release, err := m.AdmitBytes(1 << 10) // fill the whole budget
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || string(out) != "overloaded\n" {
		t.Fatalf("saturated readyz: %d %q", r.StatusCode, out)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("saturated readyz carries no Retry-After")
	}
	release()
	if r, _ := http.Get(srv.URL + "/readyz"); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz still failing after the budget drained: %d", r.StatusCode)
	}
}

// TestHTTPMultipartStreamingOrder pins the one ordering rule the
// streaming decoder imposes: a "format" field after the "graph" part is
// rejected (the graph was already decoded as it streamed), while the
// same field before the part selects the parser.
func TestHTTPMultipartStreamingOrder(t *testing.T) {
	srv, _ := testServer(t)
	g := graph.Grid(4, 4)
	build := func(formatFirst bool) (*bytes.Buffer, string) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		writeFormat := func() {
			if err := mw.WriteField("format", "edge-list"); err != nil {
				t.Fatal(err)
			}
		}
		if formatFirst {
			writeFormat()
		}
		// No file extension: only the format field can name the parser.
		fw, err := mw.CreateFormFile("graph", "payload")
		if err != nil {
			t.Fatal(err)
		}
		if err := graphio.Write(fw, g, graphio.EdgeList); err != nil {
			t.Fatal(err)
		}
		if !formatFirst {
			writeFormat()
		}
		if err := mw.WriteField("property", PropPlanarity); err != nil {
			t.Fatal(err)
		}
		if err := mw.WriteField("epsilon", "0.25"); err != nil {
			t.Fatal(err)
		}
		mw.Close()
		return &buf, mw.FormDataContentType()
	}

	body, ct := build(true)
	resp, err := http.Post(srv.URL+"/v1/test", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("format-first multipart: %d %s", resp.StatusCode, out)
	}

	body, ct = build(false)
	resp, err = http.Post(srv.URL+"/v1/test", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format-after-graph multipart: %d (want 400) %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "precede") {
		t.Fatalf("format-after-graph error does not explain the ordering: %s", out)
	}
}

// TestHTTPRequestBodyLimit413 drives an oversized upload through the
// streaming multipart path: MaxBytesReader trips mid-part and the
// MaxBytesError must survive the graphio readers up to a 413.
func TestHTTPRequestBodyLimit413(t *testing.T) {
	m := New(Config{EngineWorkers: 1})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m, HandlerConfig{MaxRequestBytes: 4 << 10}))
	t.Cleanup(srv.Close)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("format", "edge-list")
	fw, err := mw.CreateFormFile("graph", "big.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(fw, graph.Grid(40, 40), graphio.EdgeList); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	if buf.Len() <= 4<<10 {
		t.Fatalf("test body too small to trip the limit: %d bytes", buf.Len())
	}
	resp, err := http.Post(srv.URL+"/v1/test", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized multipart: %d (want 413) %s", resp.StatusCode, out)
	}
}

// TestHTTPBudgetShed exercises both admission verdicts on the byte
// budget: a body that can never fit answers 413, and a budget held by
// someone else answers 503 + Retry-After.
func TestHTTPBudgetShed(t *testing.T) {
	const budget = 32 << 10
	m := New(Config{EngineWorkers: 1, MemoryBudget: budget})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	t.Cleanup(srv.Close)

	g := graph.Grid(3, 3)
	body := testRequestBody(g, graphio.EdgeList, encodeGraph(t, g, graphio.EdgeList), nil)

	// Larger than the whole budget: terminal, 413, no Retry-After.
	huge := testRequestBody(g, graphio.EdgeList,
		encodeGraph(t, g, graphio.EdgeList)+strings.Repeat("# pad\n", budget/6+1), nil)
	resp, out := postJSON(t, srv.URL+"/v1/test", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget body: %d (want 413) %s", resp.StatusCode, out)
	}

	// Budget held elsewhere: transient, 503 + Retry-After.
	release, err := m.AdmitBytes(budget - 16)
	if err != nil {
		t.Fatal(err)
	}
	resp, out = postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated POST: %d (want 503) %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed carries no Retry-After")
	}
	release()
	if m.Metrics().ShedRequests.Load() != 2 {
		t.Fatalf("shed counter = %d, want 2", m.Metrics().ShedRequests.Load())
	}

	// Pressure gone: the same request is served.
	resp, out = postJSON(t, srv.URL+"/v1/test", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-pressure POST: %d %s", resp.StatusCode, out)
	}
}
