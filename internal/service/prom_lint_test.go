package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestPrometheusExpositionLint runs real work through the manager and the
// HTTP handler (so counters, jobs-by-outcome, both histograms, and the
// per-phase series are all populated), then lints the full /metrics
// exposition: every metric carries HELP and TYPE before its first sample,
// names are unique and planard_-prefixed, label values are quoted and
// escaped, and histogram buckets are cumulative and end at le="+Inf" with
// _count equal to the +Inf bucket.
func TestPrometheusExpositionLint(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	if _, err := m.Run(ctx, gridRequest(PropPlanarity)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ctx, gridRequest(PropCycleFree)); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(m, HandlerConfig{})
	for _, path := range []string{"/healthz", "/v1/jobs/nope", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}

	var sb strings.Builder
	if err := m.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, sb.String())
}

type promMeta struct {
	help, typ bool
	sampled   bool
}

func lintExposition(t *testing.T, text string) {
	t.Helper()
	metas := make(map[string]*promMeta)
	// histogram base -> label-set (minus le) -> ordered (le, count)
	type bucketSeq struct {
		les    []string
		counts []int64
	}
	buckets := make(map[string]map[string]*bucketSeq)
	counts := make(map[string]map[string]int64) // base -> labels -> _count value

	meta := func(name string) *promMeta {
		p := metas[name]
		if p == nil {
			p = &promMeta{}
			metas[name] = p
		}
		return p
	}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			p := meta(fields[0])
			if p.help {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, fields[0])
			}
			if p.sampled {
				t.Fatalf("line %d: HELP for %s after its samples", ln+1, fields[0])
			}
			p.help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, fields[1])
			}
			p := meta(fields[0])
			if p.typ {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			p.typ = true
			continue
		}
		name, labels, value := parseSample(t, ln+1, line)
		if !strings.HasPrefix(name, "planard_") {
			t.Fatalf("line %d: metric %s lacks the planard_ prefix", ln+1, name)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if p, ok := metas[strings.TrimSuffix(name, suffix)]; ok && p.typ {
					base = strings.TrimSuffix(name, suffix)
				}
				break
			}
		}
		p := metas[base]
		if p == nil || !p.help || !p.typ {
			t.Fatalf("line %d: sample of %s (base %s) without preceding HELP+TYPE", ln+1, name, base)
		}
		p.sampled = true

		if strings.HasSuffix(name, "_bucket") && base != name {
			le, rest := "", make([]string, 0, len(labels))
			for _, kv := range labels {
				if strings.HasPrefix(kv, "le=") {
					le = kv[len("le="):]
				} else {
					rest = append(rest, kv)
				}
			}
			if le == "" {
				t.Fatalf("line %d: histogram bucket without le: %q", ln+1, line)
			}
			key := strings.Join(rest, ",")
			if buckets[base] == nil {
				buckets[base] = make(map[string]*bucketSeq)
			}
			seq := buckets[base][key]
			if seq == nil {
				seq = &bucketSeq{}
				buckets[base][key] = seq
			}
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", ln+1, value, err)
			}
			seq.les = append(seq.les, le)
			seq.counts = append(seq.counts, n)
		}
		if strings.HasSuffix(name, "_count") && base != name {
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: count value %q: %v", ln+1, value, err)
			}
			if counts[base] == nil {
				counts[base] = make(map[string]int64)
			}
			counts[base][strings.Join(labels, ",")] = n
		}
	}
	for name, p := range metas {
		if !p.help || !p.typ {
			t.Fatalf("metric %s missing HELP or TYPE", name)
		}
	}

	if len(buckets) == 0 {
		t.Fatal("no histogram series in the exposition (expected request and run histograms)")
	}
	for base, byLabels := range buckets {
		for labels, seq := range byLabels {
			last := seq.les[len(seq.les)-1]
			if last != `"+Inf"` {
				t.Fatalf("%s{%s}: bucket sequence does not end at +Inf (got %s)", base, labels, last)
			}
			for i := 1; i < len(seq.counts); i++ {
				if seq.counts[i] < seq.counts[i-1] {
					t.Fatalf("%s{%s}: buckets not cumulative at le=%s: %v", base, labels, seq.les[i], seq.counts)
				}
			}
			inf := seq.counts[len(seq.counts)-1]
			if c, ok := counts[base][labels]; !ok {
				t.Fatalf("%s{%s}: buckets without a _count series", base, labels)
			} else if c != inf {
				t.Fatalf("%s{%s}: _count %d != +Inf bucket %d", base, labels, c, inf)
			}
		}
	}

	// The work above must have populated the series this PR adds.
	for _, want := range []string{
		"planard_request_seconds", "planard_engine_run_seconds",
		"planard_engine_phase_seconds_total", "planard_jobs_total",
	} {
		if p, ok := metas[want]; !ok || !p.sampled {
			names := make([]string, 0, len(metas))
			for n := range metas {
				names = append(names, n)
			}
			sort.Strings(names)
			t.Fatalf("expected samples of %s; have %v", want, names)
		}
	}
}

// parseSample splits one exposition sample into name, label pairs, and
// value, failing the test on malformed quoting or escaping.
func parseSample(t *testing.T, ln int, line string) (name string, labels []string, value string) {
	t.Helper()
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", ln, line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		body, tail := rest[1:end], rest[end+1:]
		for _, kv := range splitLabels(t, ln, body) {
			eq := strings.Index(kv, "=")
			if eq <= 0 {
				t.Fatalf("line %d: malformed label %q", ln, kv)
			}
			val := kv[eq+1:]
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				t.Fatalf("line %d: unquoted label value in %q", ln, kv)
			}
			if _, err := strconv.Unquote(val); err != nil {
				t.Fatalf("line %d: bad label escaping in %q: %v", ln, kv, err)
			}
			labels = append(labels, kv)
		}
		rest = tail
	}
	value = strings.TrimSpace(rest)
	if value == "" || strings.Contains(value, " ") {
		t.Fatalf("line %d: malformed value %q", ln, rest)
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		t.Fatalf("line %d: non-numeric value %q", ln, value)
	}
	return name, labels, value
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(t *testing.T, ln int, body string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			escaped = false
		case r == '\\' && inQuote:
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if inQuote {
		t.Fatalf("line %d: unterminated quote in labels %q", ln, body)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// TestJobViewProgress asserts the job view carries the progress snapshot
// exactly while the job runs: absent before the cell is installed,
// present (with the cell's values) mid-run, absent again once terminal.
func TestJobViewProgress(t *testing.T) {
	m := testManager(t, Config{})
	j := m.newJob(gridRequest(PropPlanarity), strings.Repeat("ab", 16))
	if v := j.View(); v.Progress != nil {
		t.Fatal("queued job (no progress cell) reports progress")
	}
	progress := obs.NewProgress(obs.NewProbe())
	j.progress.Store(progress)
	progress.Set(41, 7, 0)
	v := j.View()
	if v.Progress == nil {
		t.Fatal("running job with a progress cell reports no progress")
	}
	if v.Progress.Round != 41 || v.Progress.Barriers != 7 || v.Progress.Phase != "run" {
		t.Fatalf("unexpected progress snapshot: %+v", v.Progress)
	}
	j.finish(&Outcome{Property: PropPlanarity, Verdict: "accept"}, nil)
	if v := j.View(); v.Progress != nil {
		t.Fatal("terminal job still reports progress")
	}
}

// TestPropertyLabelClamped asserts unknown properties cannot mint
// unbounded label values.
func TestPropertyLabelClamped(t *testing.T) {
	mm := newMetrics()
	for i := 0; i < 10; i++ {
		mm.CountJob(fmt.Sprintf("hostile-%d", i), "done")
	}
	mm.CountJob(PropPlanarity, "done")
	var sb strings.Builder
	if err := mm.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "hostile") {
		t.Fatal("unclamped property label leaked into the exposition")
	}
	if !strings.Contains(sb.String(), `planard_jobs_total{property="other",status="done"} 10`) {
		t.Fatal("clamped counter missing or wrong")
	}
}
