package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Metrics is the service's Prometheus-style instrumentation: monotonic
// counters plus a few gauges, all safe for concurrent use and rendered
// in the text exposition format by WritePrometheus. Counter names carry
// the planard_ prefix so several services can share a scrape target.
type Metrics struct {
	CacheHits     atomic.Int64 // jobs served from the result cache
	CacheMisses   atomic.Int64 // jobs that ran the engine
	Coalesced     atomic.Int64 // jobs attached to an identical in-flight run
	JobsInFlight  atomic.Int64 // queued + running jobs
	SimulatedRnds atomic.Int64 // engine rounds across all finished runs
	ModeledRnds   atomic.Int64 // modeled rounds across all finished runs
	Messages      atomic.Int64 // CONGEST messages across all finished runs
	GraphNodes    atomic.Int64 // sum of n over non-cached runs
	GraphEdges    atomic.Int64 // sum of m over non-cached runs
	ExactRuns     atomic.Int64 // jobs answered by the sequential oracle (mode=exact)

	CheckpointsWritten atomic.Int64 // durable engine snapshots landed on disk
	CheckpointErrs     atomic.Int64 // checkpoint I/O or snapshot failures (durability lost)
	RecoveredJobs      atomic.Int64 // jobs re-enqueued by Recover after a restart
	DiskHits           atomic.Int64 // cache hits served from the disk tier (post-restart or post-eviction)
	ShedRequests       atomic.Int64 // requests shed by admission control (byte budget or full queue)
	Quarantined        atomic.Int64 // corrupt disk-cache entries moved to quarantine
	wallMicros         atomic.Int64 // engine wall time, microseconds
	cacheEntries       func() int   // live cache size, set by the Manager
	cacheBytesMem      func() int64 // memory-tier accounted bytes, set by the Manager
	cacheBytesDisk     func() int64 // disk-tier accounted bytes, set by the Manager
	inflightBytes      func() int64 // admission budget currently held
	jobsMu             sync.Mutex
	jobsByOutcome      map[jobsKey]*atomic.Int64

	// Latency histograms (fixed obs.DefBuckets bounds). Request
	// histograms are keyed by (route, status) where both label values
	// come from small fixed sets (the mux's route names and the handful
	// of statuses each can answer); run histograms are keyed by the
	// clamped property. Cardinality is therefore bounded by
	// construction, like jobsByOutcome.
	histMu   sync.Mutex
	reqHist  map[reqKey]*obs.Histogram
	runHist  map[string]*obs.Histogram
	phaseTab map[string]*phaseTotals
}

// phaseTotals accumulates one engine phase's attribution across runs
// (folded from RunResult.Phases once per finished engine run, under
// histMu — this is a per-job cost, not a per-round one).
type phaseTotals struct {
	wallNs   int64
	wakes    int64
	barriers int64
	messages int64
	bits     int64
}

type jobsKey struct {
	property string
	status   string
}

type reqKey struct {
	route  string
	status string
}

func newMetrics() *Metrics {
	return &Metrics{
		jobsByOutcome:  make(map[jobsKey]*atomic.Int64),
		reqHist:        make(map[reqKey]*obs.Histogram),
		runHist:        make(map[string]*obs.Histogram),
		phaseTab:       make(map[string]*phaseTotals),
		cacheEntries:   func() int { return 0 },
		cacheBytesMem:  func() int64 { return 0 },
		cacheBytesDisk: func() int64 { return 0 },
		inflightBytes:  func() int64 { return 0 },
	}
}

// clampProperty bounds the property label to the known set: an
// unrecognized value (possible only through future drift between the
// validator and this list) lands in "other" instead of minting a new
// time series per hostile string.
func clampProperty(p string) string {
	switch p {
	case PropPlanarity, PropCycleFree, PropBipartiteness, PropOuterplanar, PropSpanner:
		return p
	}
	return "other"
}

// CountJob bumps the planard_jobs_total{property,status} counter.
func (m *Metrics) CountJob(property, status string) {
	k := jobsKey{clampProperty(property), status}
	m.jobsMu.Lock()
	c := m.jobsByOutcome[k]
	if c == nil {
		c = new(atomic.Int64)
		m.jobsByOutcome[k] = c
	}
	m.jobsMu.Unlock()
	c.Add(1)
}

// ObserveRequest records one HTTP request's latency into
// planard_request_seconds{route,status}. Routes are the mux's fixed
// names; status is the numeric HTTP status.
func (m *Metrics) ObserveRequest(route string, status int, seconds float64) {
	k := reqKey{route, strconv.Itoa(status)}
	m.histMu.Lock()
	h := m.reqHist[k]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.reqHist[k] = h
	}
	m.histMu.Unlock()
	h.Observe(seconds)
}

// ObserveRun records one finished engine run's wall time into
// planard_engine_run_seconds{property}.
func (m *Metrics) ObserveRun(property string, seconds float64) {
	p := clampProperty(property)
	m.histMu.Lock()
	h := m.runHist[p]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.runHist[p] = h
	}
	m.histMu.Unlock()
	h.Observe(seconds)
}

// AddPhases folds one run's per-phase attribution into the service
// totals (planard_engine_phase_*_total{phase=...}).
func (m *Metrics) AddPhases(pb obs.PhaseBreakdown) {
	if len(pb) == 0 {
		return
	}
	m.histMu.Lock()
	defer m.histMu.Unlock()
	for _, st := range pb {
		t := m.phaseTab[st.Name]
		if t == nil {
			t = &phaseTotals{}
			m.phaseTab[st.Name] = t
		}
		t.wallNs += st.WallNs
		t.wakes += st.Wakes
		t.barriers += st.Barriers
		t.messages += st.Messages
		t.bits += st.Bits
	}
}

// AddWallSeconds accumulates engine wall time.
func (m *Metrics) AddWallSeconds(s float64) {
	m.wallMicros.Add(int64(math.Round(s * 1e6)))
}

// WallSeconds returns the accumulated engine wall time.
func (m *Metrics) WallSeconds() float64 {
	return float64(m.wallMicros.Load()) / 1e6
}

// WritePrometheus renders every metric in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	type line struct {
		name, help, typ string
		value           string
	}
	plain := []line{
		{"planard_cache_hits_total", "Jobs served from the content-addressed result cache.", "counter", fmt.Sprint(m.CacheHits.Load())},
		{"planard_cache_misses_total", "Jobs that ran the CONGEST engine.", "counter", fmt.Sprint(m.CacheMisses.Load())},
		{"planard_coalesced_jobs_total", "Jobs attached to an identical in-flight run.", "counter", fmt.Sprint(m.Coalesced.Load())},
		{"planard_jobs_inflight", "Jobs currently queued or running.", "gauge", fmt.Sprint(m.JobsInFlight.Load())},
		{"planard_cache_entries", "Entries in the result cache.", "gauge", fmt.Sprint(m.cacheEntries())},
		{"planard_simulated_rounds_total", "CONGEST rounds simulated across all runs.", "counter", fmt.Sprint(m.SimulatedRnds.Load())},
		{"planard_modeled_rounds_total", "Modeled (black-box substituted) rounds across all runs.", "counter", fmt.Sprint(m.ModeledRnds.Load())},
		{"planard_messages_total", "CONGEST messages delivered across all runs.", "counter", fmt.Sprint(m.Messages.Load())},
		{"planard_graph_nodes_total", "Sum of node counts over engine (non-cached) runs.", "counter", fmt.Sprint(m.GraphNodes.Load())},
		{"planard_graph_edges_total", "Sum of edge counts over engine (non-cached) runs.", "counter", fmt.Sprint(m.GraphEdges.Load())},
		{"planard_engine_wall_seconds_total", "Engine wall time across all runs.", "counter", fmt.Sprintf("%g", m.WallSeconds())},
		{"planard_exact_runs_total", "Jobs answered by the sequential exact oracle (mode=exact).", "counter", fmt.Sprint(m.ExactRuns.Load())},
		{"planard_checkpoints_written_total", "Durable engine checkpoints landed on disk.", "counter", fmt.Sprint(m.CheckpointsWritten.Load())},
		{"planard_checkpoint_errors_total", "Checkpoint failures (durability lost, runs unaffected).", "counter", fmt.Sprint(m.CheckpointErrs.Load())},
		{"planard_recovered_jobs_total", "Jobs re-enqueued from checkpoints after a restart.", "counter", fmt.Sprint(m.RecoveredJobs.Load())},
		{"planard_cache_disk_hits_total", "Cache hits served from the disk tier.", "counter", fmt.Sprint(m.DiskHits.Load())},
		{"planard_shed_requests_total", "Requests shed by admission control (byte budget or full queue).", "counter", fmt.Sprint(m.ShedRequests.Load())},
		{"planard_quarantined_entries_total", "Corrupt disk-cache entries moved to quarantine.", "counter", fmt.Sprint(m.Quarantined.Load())},
		{"planard_inflight_graph_bytes", "Admission-budget bytes currently held by request bodies and in-flight graphs.", "gauge", fmt.Sprint(m.inflightBytes())},
	}
	for _, l := range plain {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", l.name, l.help, l.name, l.typ, l.name, l.value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP planard_cache_bytes Accounted bytes of live result-cache entries by tier.\n"+
			"# TYPE planard_cache_bytes gauge\n"+
			"planard_cache_bytes{tier=\"mem\"} %d\nplanard_cache_bytes{tier=\"disk\"} %d\n",
		m.cacheBytesMem(), m.cacheBytesDisk()); err != nil {
		return err
	}

	m.jobsMu.Lock()
	keys := make([]jobsKey, 0, len(m.jobsByOutcome))
	for k := range m.jobsByOutcome {
		keys = append(keys, k)
	}
	m.jobsMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].property != keys[j].property {
			return keys[i].property < keys[j].property
		}
		return keys[i].status < keys[j].status
	})
	if _, err := fmt.Fprintf(w, "# HELP planard_jobs_total Jobs by property and terminal status.\n# TYPE planard_jobs_total counter\n"); err != nil {
		return err
	}
	for _, k := range keys {
		m.jobsMu.Lock()
		v := m.jobsByOutcome[k].Load()
		m.jobsMu.Unlock()
		if _, err := fmt.Fprintf(w, "planard_jobs_total{property=%q,status=%q} %d\n", k.property, k.status, v); err != nil {
			return err
		}
	}
	if err := m.writeHistograms(w); err != nil {
		return err
	}
	return m.writePhases(w)
}

// writeHistograms renders the request and run latency histograms:
// cumulative buckets ending in le="+Inf", then _sum and _count, per the
// text exposition format.
func (m *Metrics) writeHistograms(w io.Writer) error {
	m.histMu.Lock()
	reqKeys := make([]reqKey, 0, len(m.reqHist))
	for k := range m.reqHist {
		reqKeys = append(reqKeys, k)
	}
	runKeys := make([]string, 0, len(m.runHist))
	for k := range m.runHist {
		runKeys = append(runKeys, k)
	}
	m.histMu.Unlock()
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].status < reqKeys[j].status
	})
	sort.Strings(runKeys)

	if _, err := fmt.Fprintf(w, "# HELP planard_request_seconds HTTP request latency by route and status.\n# TYPE planard_request_seconds histogram\n"); err != nil {
		return err
	}
	for _, k := range reqKeys {
		m.histMu.Lock()
		h := m.reqHist[k]
		m.histMu.Unlock()
		labels := fmt.Sprintf("route=%q,status=%q", k.route, k.status)
		if err := writeHistogram(w, "planard_request_seconds", labels, h); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP planard_engine_run_seconds Engine run wall time by property (cache hits excluded).\n# TYPE planard_engine_run_seconds histogram\n"); err != nil {
		return err
	}
	for _, k := range runKeys {
		m.histMu.Lock()
		h := m.runHist[k]
		m.histMu.Unlock()
		if err := writeHistogram(w, "planard_engine_run_seconds", fmt.Sprintf("property=%q", k), h); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one labeled histogram series.
func writeHistogram(w io.Writer, name, labels string, h *obs.Histogram) error {
	cum, sum, count := h.Snapshot()
	bounds := h.Bounds()
	for i, b := range bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, formatBound(b), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum[len(bounds)]); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, sum, name, labels, count)
	return err
}

// formatBound renders a bucket bound the way Prometheus clients expect
// (shortest float form: 0.005, 1, 2.5, ...).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// writePhases renders the per-phase engine attribution counters folded
// from instrumented runs.
func (m *Metrics) writePhases(w io.Writer) error {
	m.histMu.Lock()
	names := make([]string, 0, len(m.phaseTab))
	for k := range m.phaseTab {
		names = append(names, k)
	}
	m.histMu.Unlock()
	sort.Strings(names)
	series := []struct {
		name, help string
		value      func(t *phaseTotals) string
	}{
		{"planard_engine_phase_seconds_total", "Engine wall time attributed to each phase across instrumented runs.",
			func(t *phaseTotals) string { return fmt.Sprintf("%g", float64(t.wallNs)/1e9) }},
		{"planard_engine_phase_wakes_total", "Node wakes attributed to each phase across instrumented runs.",
			func(t *phaseTotals) string { return fmt.Sprint(t.wakes) }},
		{"planard_engine_phase_barriers_total", "Round barriers attributed to each phase across instrumented runs.",
			func(t *phaseTotals) string { return fmt.Sprint(t.barriers) }},
		{"planard_engine_phase_messages_total", "CONGEST messages attributed to each phase across instrumented runs.",
			func(t *phaseTotals) string { return fmt.Sprint(t.messages) }},
		{"planard_engine_phase_bits_total", "Message bits attributed to each phase across instrumented runs.",
			func(t *phaseTotals) string { return fmt.Sprint(t.bits) }},
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", s.name, s.help, s.name); err != nil {
			return err
		}
		for _, n := range names {
			m.histMu.Lock()
			t := m.phaseTab[n]
			v := s.value(t)
			m.histMu.Unlock()
			if _, err := fmt.Fprintf(w, "%s{phase=%q} %s\n", s.name, n, v); err != nil {
				return err
			}
		}
	}
	return nil
}
