package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is the service's Prometheus-style instrumentation: monotonic
// counters plus a few gauges, all safe for concurrent use and rendered
// in the text exposition format by WritePrometheus. Counter names carry
// the planard_ prefix so several services can share a scrape target.
type Metrics struct {
	CacheHits     atomic.Int64 // jobs served from the result cache
	CacheMisses   atomic.Int64 // jobs that ran the engine
	Coalesced     atomic.Int64 // jobs attached to an identical in-flight run
	JobsInFlight  atomic.Int64 // queued + running jobs
	SimulatedRnds atomic.Int64 // engine rounds across all finished runs
	ModeledRnds   atomic.Int64 // modeled rounds across all finished runs
	Messages      atomic.Int64 // CONGEST messages across all finished runs
	GraphNodes    atomic.Int64 // sum of n over non-cached runs
	GraphEdges    atomic.Int64 // sum of m over non-cached runs

	CheckpointsWritten atomic.Int64 // durable engine snapshots landed on disk
	CheckpointErrs     atomic.Int64 // checkpoint I/O or snapshot failures (durability lost)
	RecoveredJobs      atomic.Int64 // jobs re-enqueued by Recover after a restart
	DiskHits           atomic.Int64 // cache hits served from the disk tier (post-restart or post-eviction)
	ShedRequests       atomic.Int64 // requests shed by admission control (byte budget or full queue)
	Quarantined        atomic.Int64 // corrupt disk-cache entries moved to quarantine
	wallMicros         atomic.Int64 // engine wall time, microseconds
	cacheEntries       func() int   // live cache size, set by the Manager
	cacheBytesMem      func() int64 // memory-tier accounted bytes, set by the Manager
	cacheBytesDisk     func() int64 // disk-tier accounted bytes, set by the Manager
	inflightBytes      func() int64 // admission budget currently held
	jobsMu             sync.Mutex
	jobsByOutcome      map[jobsKey]*atomic.Int64
}

type jobsKey struct {
	property string
	status   string
}

func newMetrics() *Metrics {
	return &Metrics{
		jobsByOutcome:  make(map[jobsKey]*atomic.Int64),
		cacheEntries:   func() int { return 0 },
		cacheBytesMem:  func() int64 { return 0 },
		cacheBytesDisk: func() int64 { return 0 },
		inflightBytes:  func() int64 { return 0 },
	}
}

// CountJob bumps the planard_jobs_total{property,status} counter.
func (m *Metrics) CountJob(property, status string) {
	k := jobsKey{property, status}
	m.jobsMu.Lock()
	c := m.jobsByOutcome[k]
	if c == nil {
		c = new(atomic.Int64)
		m.jobsByOutcome[k] = c
	}
	m.jobsMu.Unlock()
	c.Add(1)
}

// AddWallSeconds accumulates engine wall time.
func (m *Metrics) AddWallSeconds(s float64) {
	m.wallMicros.Add(int64(math.Round(s * 1e6)))
}

// WallSeconds returns the accumulated engine wall time.
func (m *Metrics) WallSeconds() float64 {
	return float64(m.wallMicros.Load()) / 1e6
}

// WritePrometheus renders every metric in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	type line struct {
		name, help, typ string
		value           string
	}
	plain := []line{
		{"planard_cache_hits_total", "Jobs served from the content-addressed result cache.", "counter", fmt.Sprint(m.CacheHits.Load())},
		{"planard_cache_misses_total", "Jobs that ran the CONGEST engine.", "counter", fmt.Sprint(m.CacheMisses.Load())},
		{"planard_coalesced_jobs_total", "Jobs attached to an identical in-flight run.", "counter", fmt.Sprint(m.Coalesced.Load())},
		{"planard_jobs_inflight", "Jobs currently queued or running.", "gauge", fmt.Sprint(m.JobsInFlight.Load())},
		{"planard_cache_entries", "Entries in the result cache.", "gauge", fmt.Sprint(m.cacheEntries())},
		{"planard_simulated_rounds_total", "CONGEST rounds simulated across all runs.", "counter", fmt.Sprint(m.SimulatedRnds.Load())},
		{"planard_modeled_rounds_total", "Modeled (black-box substituted) rounds across all runs.", "counter", fmt.Sprint(m.ModeledRnds.Load())},
		{"planard_messages_total", "CONGEST messages delivered across all runs.", "counter", fmt.Sprint(m.Messages.Load())},
		{"planard_graph_nodes_total", "Sum of node counts over engine (non-cached) runs.", "counter", fmt.Sprint(m.GraphNodes.Load())},
		{"planard_graph_edges_total", "Sum of edge counts over engine (non-cached) runs.", "counter", fmt.Sprint(m.GraphEdges.Load())},
		{"planard_engine_wall_seconds_total", "Engine wall time across all runs.", "counter", fmt.Sprintf("%g", m.WallSeconds())},
		{"planard_checkpoints_written_total", "Durable engine checkpoints landed on disk.", "counter", fmt.Sprint(m.CheckpointsWritten.Load())},
		{"planard_checkpoint_errors_total", "Checkpoint failures (durability lost, runs unaffected).", "counter", fmt.Sprint(m.CheckpointErrs.Load())},
		{"planard_recovered_jobs_total", "Jobs re-enqueued from checkpoints after a restart.", "counter", fmt.Sprint(m.RecoveredJobs.Load())},
		{"planard_cache_disk_hits_total", "Cache hits served from the disk tier.", "counter", fmt.Sprint(m.DiskHits.Load())},
		{"planard_shed_requests_total", "Requests shed by admission control (byte budget or full queue).", "counter", fmt.Sprint(m.ShedRequests.Load())},
		{"planard_quarantined_entries_total", "Corrupt disk-cache entries moved to quarantine.", "counter", fmt.Sprint(m.Quarantined.Load())},
		{"planard_inflight_graph_bytes", "Admission-budget bytes currently held by request bodies and in-flight graphs.", "gauge", fmt.Sprint(m.inflightBytes())},
	}
	for _, l := range plain {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", l.name, l.help, l.name, l.typ, l.name, l.value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP planard_cache_bytes Accounted bytes of live result-cache entries by tier.\n"+
			"# TYPE planard_cache_bytes gauge\n"+
			"planard_cache_bytes{tier=\"mem\"} %d\nplanard_cache_bytes{tier=\"disk\"} %d\n",
		m.cacheBytesMem(), m.cacheBytesDisk()); err != nil {
		return err
	}

	m.jobsMu.Lock()
	keys := make([]jobsKey, 0, len(m.jobsByOutcome))
	for k := range m.jobsByOutcome {
		keys = append(keys, k)
	}
	m.jobsMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].property != keys[j].property {
			return keys[i].property < keys[j].property
		}
		return keys[i].status < keys[j].status
	})
	if _, err := fmt.Fprintf(w, "# HELP planard_jobs_total Jobs by property and terminal status.\n# TYPE planard_jobs_total counter\n"); err != nil {
		return err
	}
	for _, k := range keys {
		m.jobsMu.Lock()
		v := m.jobsByOutcome[k].Load()
		m.jobsMu.Unlock()
		if _, err := fmt.Fprintf(w, "planard_jobs_total{property=%q,status=%q} %d\n", k.property, k.status, v); err != nil {
			return err
		}
	}
	return nil
}
