package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
)

func testManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.EngineWorkers == 0 {
		cfg.EngineWorkers = 1
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

func gridRequest(prop string) *Request {
	return &Request{Property: prop, Epsilon: 0.25, Seed: 1, Graph: graph.Grid(8, 8)}
}

func TestRunEveryProperty(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))
	// A positive instance per property: every node must accept.
	instance := map[string]*graph.Graph{
		PropPlanarity:     graph.Grid(8, 8),
		PropCycleFree:     graph.RandomTree(64, rng),
		PropBipartiteness: graph.Grid(8, 8),
		PropOuterplanar:   graph.Outerplanar(48, rng),
		PropSpanner:       graph.Grid(8, 8),
	}
	for _, prop := range Properties() {
		out, err := m.Run(ctx, &Request{Property: prop, Epsilon: 0.25, Seed: 1, Graph: instance[prop]})
		if err != nil {
			t.Fatalf("%s: %v", prop, err)
		}
		if out.Rejected {
			t.Fatalf("%s rejected its positive instance", prop)
		}
		if out.Metrics.Rounds <= 0 {
			t.Fatalf("%s: no simulated rounds", prop)
		}
		if prop == PropSpanner && out.SpannerEdges <= 0 {
			t.Fatal("spanner outcome has no edges")
		}
	}
}

func TestRejectsFarFromPlanar(t *testing.T) {
	m := testManager(t, Config{})
	out, err := m.Run(context.Background(), &Request{
		Property: PropPlanarity, Epsilon: 0.05, Seed: 3, Graph: graph.Complete(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rejected || out.Verdict != "reject" {
		t.Fatalf("K40 accepted: %+v", out)
	}
}

func TestCacheHitSkipsEngine(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	req := gridRequest(PropPlanarity)
	first, err := m.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if h, ms := m.Metrics().CacheHits.Load(), m.Metrics().CacheMisses.Load(); h != 0 || ms != 1 {
		t.Fatalf("after first run: hits=%d misses=%d", h, ms)
	}

	// The same logical request in a fresh Request (and via a different
	// wire format, were it serialized) must hit.
	j, err := m.Submit(ctx, gridRequest(PropPlanarity))
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit || j.State() != StateDone {
		t.Fatalf("second submit: cacheHit=%v state=%v", j.CacheHit, j.State())
	}
	second, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("cache hit returned a different outcome object")
	}
	if h, ms := m.Metrics().CacheHits.Load(), m.Metrics().CacheMisses.Load(); h != 1 || ms != 1 {
		t.Fatalf("after second run: hits=%d misses=%d", h, ms)
	}

	// Different seed, property, epsilon, or variant must all miss.
	for _, req := range []*Request{
		{Property: PropPlanarity, Epsilon: 0.25, Seed: 2, Graph: graph.Grid(8, 8)},
		{Property: PropCycleFree, Epsilon: 0.25, Seed: 1, Graph: graph.Grid(8, 8)},
		{Property: PropPlanarity, Epsilon: 0.5, Seed: 1, Graph: graph.Grid(8, 8)},
		{Property: PropPlanarity, Epsilon: 0.25, Seed: 1, Variant: VariantRandomized, Graph: graph.Grid(8, 8)},
	} {
		if _, err := m.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if h, ms := m.Metrics().CacheHits.Load(), m.Metrics().CacheMisses.Load(); h != 1 || ms != 5 {
		t.Fatalf("distinct options should miss: hits=%d misses=%d", h, ms)
	}
}

func TestCacheEviction(t *testing.T) {
	m := testManager(t, Config{CacheEntries: 2})
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		req := gridRequest(PropPlanarity)
		req.Seed = seed
		if _, err := m.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.CacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2 (LRU cap)", n)
	}
	// Seed 1 was evicted (least recently used): a re-run misses.
	req := gridRequest(PropPlanarity)
	if _, err := m.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	if h := m.Metrics().CacheHits.Load(); h != 0 {
		t.Fatalf("evicted entry served a hit (hits=%d)", h)
	}
}

func TestConcurrentIdenticalSubmitsCoalesce(t *testing.T) {
	m := testManager(t, Config{MaxConcurrent: 2})
	ctx := context.Background()
	const clients = 8
	var wg sync.WaitGroup
	outs := make([]*Outcome, clients)
	errs := make([]error, clients)
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomPlanar(400, 800, rng)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = m.Run(ctx, &Request{Property: PropPlanarity, Epsilon: 0.25, Seed: 7, Graph: g})
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if outs[i].Rejected {
			t.Fatalf("client %d: rejected planar graph", i)
		}
	}
	// All clients observed one engine run: misses + coalesced + hits
	// account for every submit, with exactly one miss... unless some
	// client submitted after the run finished, which is a cache hit.
	mm := m.Metrics()
	if mm.CacheMisses.Load() != 1 {
		t.Fatalf("misses=%d, want 1 (single engine run)", mm.CacheMisses.Load())
	}
	if got := mm.CacheHits.Load() + mm.Coalesced.Load(); got != clients-1 {
		t.Fatalf("hits+coalesced=%d, want %d", got, clients-1)
	}
}

func TestJobLifecycleAndPolling(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	j, err := m.Submit(ctx, gridRequest(PropPlanarity))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Job(j.ID); !ok {
		t.Fatal("submitted job not addressable by ID")
	}
	out, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if j.State() != StateDone {
		t.Fatalf("state %v after Wait", j.State())
	}
	v := j.View()
	if v.State != "done" || v.Outcome != out || v.Error != "" {
		t.Fatalf("view %+v inconsistent with result", v)
	}
	if _, ok := m.Job("j999999-nope"); ok {
		t.Fatal("unknown job ID resolved")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// One slow job occupies the single worker; a second job is canceled
	// while queued and must fail with context.Canceled, never touching
	// the engine.
	m := testManager(t, Config{MaxConcurrent: 1, QueueDepth: 4})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	blocker, err := m.Submit(ctx, &Request{
		Property: PropPlanarity, Epsilon: 0.1, Seed: 1, Graph: graph.MaximalPlanar(3000, rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Submit(ctx, gridRequest(PropCycleFree))
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, err := victim.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued job returned %v", err)
	}
	if victim.State() != StateFailed {
		t.Fatalf("canceled job state %v", victim.State())
	}
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if hits := m.Metrics().CacheMisses.Load(); hits != 1 {
		t.Fatalf("engine ran %d times, want 1 (victim canceled before running)", hits)
	}
}

func TestCoalescedCancelNeedsAllSubmitters(t *testing.T) {
	// Two identical submits share one job; the first Cancel must not
	// abort the run out from under the second submitter.
	m := testManager(t, Config{MaxConcurrent: 1, QueueDepth: 8})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(14))
	blocker, err := m.Submit(ctx, &Request{
		Property: PropPlanarity, Epsilon: 0.1, Seed: 1, Graph: graph.MaximalPlanar(3000, rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Submit(ctx, gridRequest(PropBipartiteness))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(ctx, gridRequest(PropBipartiteness))
	if err != nil {
		t.Fatal(err)
	}
	if a.Job != b.Job {
		t.Fatal("identical queued submits were not coalesced")
	}
	a.Cancel() // one of two submitters abandons: run must survive
	a.Cancel() // double Cancel on one handle must not spend b's veto
	if a.canceled() {
		t.Fatal("job canceled while a submitter is still attached")
	}
	out, err := b.Wait(ctx)
	if err != nil {
		t.Fatalf("surviving submitter got %v", err)
	}
	if out.Rejected {
		t.Fatal("grid rejected")
	}
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCancelIdempotentPerSubmission(t *testing.T) {
	// Regression for the old Job.Cancel footgun: each Cancel used to
	// drain one attachment, so a client calling it twice (e.g. a defer
	// plus an explicit call) canceled the run for everyone coalesced
	// onto it. A Submission handle releases at most once.
	m := testManager(t, Config{MaxConcurrent: 1, QueueDepth: 8})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(15))
	blocker, err := m.Submit(ctx, &Request{
		Property: PropPlanarity, Epsilon: 0.1, Seed: 1, Graph: graph.MaximalPlanar(3000, rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Submit(ctx, gridRequest(PropBipartiteness))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(ctx, gridRequest(PropBipartiteness))
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Submit(ctx, gridRequest(PropBipartiteness))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Cancel() // five times, one attachment
	}
	b.Cancel()
	if a.canceled() {
		t.Fatal("job canceled while a submitter is still attached")
	}
	out, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("surviving submitter got %v", err)
	}
	if out.Rejected {
		t.Fatal("grid rejected")
	}
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := testManager(t, Config{MaxConcurrent: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(6))
	j, err := m.Submit(ctx, &Request{
		Property: PropPlanarity, Epsilon: 0.05, Seed: 1, Graph: graph.MaximalPlanar(20000, rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	_, err = j.Wait(ctx)
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if !errors.Is(err, congest.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v", err)
	}
	// The failed run must not poison the cache.
	if m.CacheLen() != 0 {
		t.Fatal("canceled run was cached")
	}
}

func TestQueueFull(t *testing.T) {
	m := testManager(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	// Fill the worker and the 1-deep queue with slow distinct jobs. The
	// first must leave the queue (reach the worker) before the second
	// enqueues, so poll its state.
	for seed := int64(0); seed < 2; seed++ {
		j, err := m.Submit(ctx, &Request{
			Property: PropPlanarity, Epsilon: 0.1, Seed: seed, Graph: graph.MaximalPlanar(3000, rng),
		})
		if err != nil {
			t.Fatal(err)
		}
		if seed == 0 {
			for j.State() == StateQueued {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	_, err := m.Submit(ctx, gridRequest(PropPlanarity))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue returned %v", err)
	}
}

func TestJobRetentionEvictsBehindLiveHead(t *testing.T) {
	// A long-running job near the head of the retention FIFO must not
	// stall eviction: finished jobs around it are still evicted once
	// the bound is exceeded, and the live job itself is never evicted.
	m := testManager(t, Config{MaxConcurrent: 1, JobRetention: 4, QueueDepth: 64})
	ctx := context.Background()
	if _, err := m.Run(ctx, gridRequest(PropPlanarity)); err != nil {
		t.Fatal(err) // warm the cache so replays finish instantly
	}
	rng := rand.New(rand.NewSource(13))
	blocker, err := m.Submit(ctx, &Request{
		Property: PropPlanarity, Epsilon: 0.05, Seed: 1, Graph: graph.MaximalPlanar(20000, rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cache-hit replays: each is a fresh finished job entering
	// retention behind (then rotating past) the live blocker.
	var ids []string
	for i := 0; i < 20; i++ {
		j, err := m.Submit(ctx, gridRequest(PropPlanarity))
		if err != nil {
			t.Fatal(err)
		}
		if !j.CacheHit {
			t.Fatal("replay missed the cache")
		}
		ids = append(ids, j.ID)
	}
	m.mu.Lock()
	retained := len(m.retained)
	m.mu.Unlock()
	if retained > 4+1 { // cap, +1 tolerated while a live job rotates
		t.Fatalf("retained %d jobs, cap is 4", retained)
	}
	if _, ok := m.Job(blocker.ID); !ok {
		t.Fatal("live job was evicted from the index")
	}
	if _, ok := m.Job(ids[0]); ok {
		t.Fatal("oldest finished job survived past the retention cap")
	}
	blocker.Cancel()
	if _, err := blocker.Wait(ctx); err == nil {
		t.Fatal("canceled blocker reported success")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := testManager(t, Config{})
	ctx := context.Background()
	cases := []*Request{
		{Property: PropPlanarity, Epsilon: 0.25, Graph: nil},
		{Property: PropPlanarity, Epsilon: 0, Graph: graph.Grid(2, 2)},
		{Property: PropPlanarity, Epsilon: 1.5, Graph: graph.Grid(2, 2)},
		{Property: PropPlanarity, Epsilon: math.NaN(), Graph: graph.Grid(2, 2)},
		{Property: "treewidth", Epsilon: 0.25, Graph: graph.Grid(2, 2)},
		{Property: PropSpanner, Epsilon: 0.25, Variant: VariantEN, Graph: graph.Grid(2, 2)},
		{Property: PropPlanarity, Epsilon: 0.25, Variant: "quantum", Graph: graph.Grid(2, 2)},
	}
	for i, req := range cases {
		if _, err := m.Submit(ctx, req); err == nil {
			t.Fatalf("case %d: invalid request accepted", i)
		}
	}
}

func TestManagerClose(t *testing.T) {
	m := New(Config{MaxConcurrent: 1, EngineWorkers: 1})
	rng := rand.New(rand.NewSource(8))
	j, err := m.Submit(context.Background(), &Request{
		Property: PropPlanarity, Epsilon: 0.05, Seed: 1, Graph: graph.MaximalPlanar(20000, rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // cancels the running job and waits for the pool
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("job survived Close without error")
	}
	if _, err := m.Submit(context.Background(), gridRequest(PropPlanarity)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close returned %v", err)
	}
	m.Close() // idempotent
}

func TestMetricsRendering(t *testing.T) {
	m := testManager(t, Config{})
	if _, err := m.Run(context.Background(), gridRequest(PropPlanarity)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), gridRequest(PropPlanarity)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"planard_cache_hits_total 1",
		"planard_cache_misses_total 1",
		"planard_cache_entries 1",
		`planard_jobs_total{property="planarity",status="done"} 2`,
		"# TYPE planard_jobs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
