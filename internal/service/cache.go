package service

import (
	"container/list"
	"sync"
)

// resultCache is a thread-safe LRU cache mapping content-addressed
// request keys to finished Outcomes. Because every run is deterministic
// in its key (the engine is a pure function of graph, options, and
// seed; see DESIGN.md §7), a hit can skip the whole CONGEST simulation
// and replay the stored outcome.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key     string
	outcome *Outcome
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached outcome for key and marks it recently used.
func (c *resultCache) get(key string) (*Outcome, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).outcome, true
}

// put stores an outcome, evicting the least recently used entry when
// over capacity. The stored outcome must never be mutated afterwards.
func (c *resultCache) put(key string, o *Outcome) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).outcome = o
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, outcome: o})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of live entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
