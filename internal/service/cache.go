package service

import (
	"container/list"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// CacheStore is the result-cache abstraction the Manager runs against:
// a content-addressed map from request keys to finished Outcomes.
// Because every run is deterministic in its key (the engine is a pure
// function of graph, options, and seed; see DESIGN.md §7), a hit can
// skip the whole CONGEST simulation and replay the stored outcome.
// Implementations must be safe for concurrent use, and stored outcomes
// must never be mutated after Put.
type CacheStore interface {
	// Get returns the cached outcome for key, if present.
	Get(key string) (*Outcome, bool)
	// Put stores a finished outcome under key.
	Put(key string, o *Outcome)
	// Len returns the number of live entries.
	Len() int
	// Bytes returns the accounted size of the live entries.
	Bytes() int64
}

// resultCache is the in-memory tier: a thread-safe LRU bounded both by
// entry count and by accounted outcome bytes (the size of the entry's
// canonical JSON encoding — the same bytes the disk tier persists), so
// a flood of large outcomes evicts earlier instead of growing the heap
// past the operator's bound.
type resultCache struct {
	mu       sync.Mutex
	cap      int   // max entries; <= 0 disables the tier
	maxBytes int64 // max accounted bytes; <= 0 means unbounded by bytes
	bytes    int64
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key     string
	outcome *Outcome
	size    int64
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached outcome for key and marks it recently used.
func (c *resultCache) get(key string) (*Outcome, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).outcome, true
}

// put stores an outcome of the given accounted size, evicting least
// recently used entries while either bound (entries or bytes) is
// exceeded. The stored outcome must never be mutated afterwards.
func (c *resultCache) put(key string, o *Outcome, size int64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.outcome, e.size = o, size
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, outcome: o, size: size})
		c.bytes += size
	}
	for c.order.Len() > 1 && (c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		c.evictOldestLocked()
	}
	// A single entry larger than maxBytes is kept: evicting the only
	// entry would make oversized outcomes uncacheable, which costs more
	// memory (repeated runs hold the graph) than it saves.
}

func (c *resultCache) evictOldestLocked() {
	last := c.order.Back()
	e := last.Value.(*cacheEntry)
	c.order.Remove(last)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// len returns the number of live entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// size returns the accounted bytes of the live entries.
func (c *resultCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// tieredCache is the Manager's CacheStore: a write-through pair of the
// in-memory LRU and an optional disk tier. Reads try memory first and
// promote disk hits; writes land in both, so a restart only loses the
// memory tier and the disk tier restores the hit rate (DESIGN.md §11).
type tieredCache struct {
	mem      *resultCache
	disk     *diskCache // nil when no cache directory is configured
	diskHits *atomic.Int64
}

func newTieredCache(mem *resultCache, disk *diskCache, diskHits *atomic.Int64) *tieredCache {
	return &tieredCache{mem: mem, disk: disk, diskHits: diskHits}
}

// Get implements CacheStore: memory first, then the disk tier (a disk
// hit is decoded, promoted into memory, and counted).
func (c *tieredCache) Get(key string) (*Outcome, bool) {
	if o, ok := c.mem.get(key); ok {
		return o, true
	}
	if c.disk == nil {
		return nil, false
	}
	o, size, ok := c.disk.get(key)
	if !ok {
		return nil, false
	}
	c.mem.put(key, o, size)
	c.diskHits.Add(1)
	return o, true
}

// Put implements CacheStore: the outcome is serialized once (the JSON
// bytes double as the memory tier's accounting unit and the disk tier's
// payload) and written through both tiers.
func (c *tieredCache) Put(key string, o *Outcome) {
	blob, err := json.Marshal(o)
	if err != nil {
		return // outcomes are plain data; cannot happen
	}
	c.mem.put(key, o, int64(len(blob)))
	if c.disk != nil {
		c.disk.put(key, blob)
	}
}

// Len implements CacheStore with the in-memory entry count.
func (c *tieredCache) Len() int { return c.mem.len() }

// Bytes implements CacheStore with the in-memory accounted bytes.
func (c *tieredCache) Bytes() int64 { return c.mem.size() }
