package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// readJSON parses {"n": <n>, "edges": [[u,v], ...]} token by token, so
// the edge array streams through the accumulator instead of
// materializing as [][]int. Keys may appear in either order; unknown
// keys are rejected. Exactly one JSON value is allowed (trailing data
// errors).
func readJSON(br *bufio.Reader) (*graph.Graph, error) {
	dec := json.NewDecoder(br)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	n := -1
	sawEdges := false
	acc, err := newEdgeAccum(JSON, -1, -1)
	if err != nil {
		return nil, err
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, jsonErr(err)
		}
		key, ok := tok.(string)
		if !ok {
			return nil, parseErrf(JSON, 0, "unexpected token %v for object key", tok)
		}
		switch key {
		case "n":
			if n >= 0 {
				return nil, parseErrf(JSON, 0, "duplicate key %q", key)
			}
			var v int64
			if err := decodeInt(dec, &v); err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, parseErrf(JSON, 0, "negative n %d", v)
			}
			n = int(v)
			prev := acc.edges
			if acc, err = newEdgeAccum(JSON, n, -1); err != nil {
				return nil, err
			}
			// Re-validate any edges parsed before n was known.
			for _, e := range prev {
				if aerr := acc.add(0, int(e.U), int(e.V)); aerr != nil {
					return nil, aerr
				}
			}
		case "edges":
			if sawEdges {
				return nil, parseErrf(JSON, 0, "duplicate key %q", key)
			}
			sawEdges = true
			if err := expectDelim(dec, '['); err != nil {
				return nil, err
			}
			for dec.More() {
				if err := expectDelim(dec, '['); err != nil {
					return nil, err
				}
				var u, v int64
				if err := decodeInt(dec, &u); err != nil {
					return nil, err
				}
				if err := decodeInt(dec, &v); err != nil {
					return nil, err
				}
				if dec.More() {
					return nil, parseErrf(JSON, 0, "edge with more than two endpoints")
				}
				if err := expectDelim(dec, ']'); err != nil {
					return nil, err
				}
				if aerr := acc.add(0, int(u), int(v)); aerr != nil {
					return nil, aerr
				}
			}
			if err := expectDelim(dec, ']'); err != nil {
				return nil, err
			}
		default:
			return nil, parseErrf(JSON, 0, "unknown key %q", key)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, parseErrf(JSON, 0, "missing key \"n\"")
	}
	if !sawEdges {
		return nil, parseErrf(JSON, 0, "missing key \"edges\"")
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, parseErrf(JSON, 0, "trailing data after graph object")
	}
	return acc.build()
}

func jsonErr(err error) error {
	return parseErrf(JSON, 0, "%v", err)
}

// expectDelim consumes one token and requires it to be the delimiter d.
func expectDelim(dec *json.Decoder, d rune) error {
	tok, err := dec.Token()
	if err != nil {
		return jsonErr(err)
	}
	if got, ok := tok.(json.Delim); !ok || rune(got) != d {
		return parseErrf(JSON, 0, "unexpected token %v (want %q)", tok, string(d))
	}
	return nil
}

// decodeInt consumes one token and requires an integral JSON number.
func decodeInt(dec *json.Decoder, out *int64) error {
	tok, err := dec.Token()
	if err != nil {
		return jsonErr(err)
	}
	num, ok := tok.(float64)
	if !ok {
		return parseErrf(JSON, 0, "unexpected token %v (want integer)", tok)
	}
	v := int64(num)
	if float64(v) != num {
		return parseErrf(JSON, 0, "non-integer number %v", num)
	}
	*out = v
	return nil
}

// writeJSON emits the compact canonical encoding with n before edges.
func writeJSON(bw *bufio.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(bw, "{\"n\":%d,\"edges\":[", g.N()); err != nil {
		return err
	}
	first := true
	err := eachEdge(g, func(u, v int) error {
		sep := ","
		if first {
			sep, first = "", false
		}
		_, err := fmt.Fprintf(bw, "%s[%d,%d]", sep, u, v)
		return err
	})
	if err != nil {
		return err
	}
	_, err = bw.WriteString("]}\n")
	return err
}
