package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// edgeListHeader is the comment header the writer emits so that node
// counts (including isolated trailing nodes) survive round trips.
// Readers treat any other '#' line as a plain comment.
const edgeListHeaderPrefix = "# graphio edge-list "

// readEdgeList parses whitespace-separated "u v" lines. Blank lines and
// '#' comments are skipped; the optional writer header pins n and m.
func readEdgeList(br *bufio.Reader) (*graph.Graph, error) {
	acc, err := newEdgeAccum(EdgeList, -1, -1)
	if err != nil {
		return nil, err
	}
	line := 0
	for {
		line++
		s, err := br.ReadString('\n')
		if s == "" && err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		t := strings.TrimSpace(s)
		switch {
		case t == "":
		case strings.HasPrefix(t, edgeListHeaderPrefix):
			if acc.n >= 0 || len(acc.edges) > 0 {
				return nil, parseErrf(EdgeList, line, "header after data")
			}
			n, m, herr := parseEdgeListHeader(t)
			if herr != nil {
				return nil, parseErrf(EdgeList, line, "%v", herr)
			}
			if acc, err = newEdgeAccum(EdgeList, n, m); err != nil {
				return nil, err
			}
		case t[0] == '#':
		default:
			u, v, perr := parseEdgePair(t)
			if perr != nil {
				return nil, parseErrf(EdgeList, line, "bad edge line %q: %v", t, perr)
			}
			if aerr := acc.add(line, u, v); aerr != nil {
				return nil, aerr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return acc.build()
}

// parseEdgeListHeader parses "# graphio edge-list n=<n> m=<m>".
func parseEdgeListHeader(t string) (n, m int, err error) {
	n, m = -1, -1
	for _, field := range strings.Fields(t[len(edgeListHeaderPrefix):]) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return 0, 0, fmt.Errorf("bad header field %q", field)
		}
		x, err := strconv.Atoi(val)
		if err != nil || x < 0 {
			return 0, 0, fmt.Errorf("bad header value %q", field)
		}
		switch key {
		case "n":
			n = x
		case "m":
			m = x
		default:
			return 0, 0, fmt.Errorf("unknown header field %q", field)
		}
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("header missing n")
	}
	return n, m, nil
}

// parseEdgePair parses exactly two non-negative integers.
func parseEdgePair(t string) (u, v int, err error) {
	us, rest, ok := cutFields(t)
	if !ok {
		return 0, 0, fmt.Errorf("want two fields")
	}
	vs, rest, _ := cutFields(rest)
	if rest != "" {
		return 0, 0, fmt.Errorf("trailing data %q", rest)
	}
	if u, err = strconv.Atoi(us); err != nil {
		return 0, 0, err
	}
	if v, err = strconv.Atoi(vs); err != nil {
		return 0, 0, err
	}
	return u, v, nil
}

// cutFields splits off the first whitespace-separated field.
func cutFields(s string) (field, rest string, ok bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", false
	}
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", true
	}
	return s[:i], strings.TrimSpace(s[i:]), true
}

// writeEdgeList emits the header plus one "u v" line per edge in
// canonical sorted order.
func writeEdgeList(bw *bufio.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(bw, "%sn=%d m=%d\n", edgeListHeaderPrefix, g.N(), g.M()); err != nil {
		return err
	}
	return eachEdge(g, func(u, v int) error {
		_, err := fmt.Fprintf(bw, "%d %d\n", u, v)
		return err
	})
}
