package graphio

import (
	"bufio"
	"encoding/binary"
	"io"

	"repro/internal/graph"
)

// binaryMagic identifies the compact binary format ("planar graph
// binary, version 1").
const binaryMagic = "PGB1"

// The binary layout after the 4-byte magic is:
//
//	uvarint n
//	uvarint m
//	m edge records over the canonical order (sorted, u < v):
//	    uvarint du          // u - prevU
//	    uvarint gap         // v - base - 1, base = u when du > 0
//	                        //               else prevV (first edge: 0)
//
// Within one u the v values are strictly increasing and always exceed
// u, so every gap is >= 0 and decoding can never produce a self-loop or
// duplicate edge — corrupt streams surface as bounds violations,
// truncation, or trailing-byte errors instead.

// readBinary decodes the compact format, validating bounds per edge and
// requiring exact stream length (no trailing bytes).
func readBinary(br *bufio.Reader) (*graph.Graph, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, parseErrf(Binary, 0, "short magic: %v", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, parseErrf(Binary, 0, "bad magic %q", magic[:])
	}
	n, err := readUvarint(br, "n")
	if err != nil {
		return nil, err
	}
	m, err := readUvarint(br, "m")
	if err != nil {
		return nil, err
	}
	if n > MaxNodes {
		return nil, parseErrf(Binary, 0, "node count %d exceeds the %d limit", n, MaxNodes)
	}
	if maxM := n * (n - 1) / 2; m > maxM {
		return nil, parseErrf(Binary, 0, "m=%d exceeds the simple-graph maximum %d for n=%d", m, maxM, n)
	}
	acc, err := newEdgeAccum(Binary, int(n), int(m))
	if err != nil {
		return nil, err
	}
	prevU, prevV := uint64(0), uint64(0)
	for i := uint64(0); i < m; i++ {
		du, err := readUvarint(br, "edge delta")
		if err != nil {
			return nil, err
		}
		gap, err := readUvarint(br, "edge gap")
		if err != nil {
			return nil, err
		}
		u := prevU + du
		base := prevV
		if du > 0 || i == 0 {
			base = u
		}
		v := base + gap + 1
		// u < prevU or v <= base means the uint64 sum wrapped (huge
		// varint): reject rather than decode an out-of-order stream.
		if u < prevU || v <= base || u >= uint64(MaxNodes) || v >= uint64(MaxNodes) {
			return nil, parseErrf(Binary, 0, "edge %d out of range", i)
		}
		if aerr := acc.add(0, int(u), int(v)); aerr != nil {
			return nil, aerr
		}
		prevU, prevV = u, v
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, parseErrf(Binary, 0, "trailing bytes after %d edges", m)
	}
	return acc.build()
}

// readUvarint decodes one varint, rejecting non-minimal encodings (a
// zero final byte after a continuation) and 64-bit overflow, so every
// value has exactly one accepted byte sequence — the property that
// keeps the format canonical (FuzzReadBinary checks accepted inputs
// re-encode byte-identically).
func readUvarint(br *bufio.Reader, what string) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, parseErrf(Binary, 0, "truncated %s: %v", what, err)
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, parseErrf(Binary, 0, "%s: varint overflows 64 bits", what)
			}
			if b == 0 && i > 0 {
				return 0, parseErrf(Binary, 0, "%s: non-minimal varint", what)
			}
			return x | uint64(b)<<s, nil
		}
		if i == 9 {
			return 0, parseErrf(Binary, 0, "%s: varint overflows 64 bits", what)
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// writeBinary encodes g; the canonical sorted edge order makes the
// output a pure function of the graph (and the basis of Hash).
func writeBinary(w io.Writer, g *graph.Graph) error {
	var buf [2 * binary.MaxVarintLen64]byte
	k := copy(buf[:], binaryMagic)
	k += binary.PutUvarint(buf[k:], uint64(g.N()))
	if _, err := w.Write(buf[:k]); err != nil {
		return err
	}
	k = binary.PutUvarint(buf[:], uint64(g.M()))
	if _, err := w.Write(buf[:k]); err != nil {
		return err
	}
	prevU, prevV := 0, 0
	first := true
	return eachEdge(g, func(u, v int) error {
		base := prevV
		if u != prevU || first {
			base = u
		}
		k := binary.PutUvarint(buf[:], uint64(u-prevU))
		k += binary.PutUvarint(buf[k:], uint64(v-base-1))
		prevU, prevV, first = u, v, false
		_, err := w.Write(buf[:k])
		return err
	})
}
