package graphio

import (
	"encoding/binary"
	"errors"
)

// The exported varint helpers below are the byte-slice counterparts of
// the stream codec in binary.go: the same unsigned LEB128 layout and the
// same canonicality rule (exactly one accepted byte sequence per value).
// The checkpoint format in internal/congest builds on them so that both
// binary formats of the repository share one set of encoding rules.

// ErrVarint is the error reported (wrapped with detail) by ConsumeUvarint
// for a truncated, non-minimal, or overflowing varint. Test with
// errors.Is.
var ErrVarint = errors.New("graphio: invalid varint")

// AppendUvarint appends the canonical (minimal) varint encoding of v to b
// and returns the extended slice.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// ConsumeUvarint decodes one varint from the front of b, returning the
// value and the number of bytes consumed. Like readUvarint in the binary
// graph codec it rejects non-minimal encodings (a zero final byte after a
// continuation) and 64-bit overflow, so accepted inputs re-encode
// byte-identically.
func ConsumeUvarint(b []byte) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		if i >= len(b) {
			return 0, 0, errors.Join(ErrVarint, errors.New("truncated"))
		}
		c := b[i]
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, 0, errors.Join(ErrVarint, errors.New("overflows 64 bits"))
			}
			if c == 0 && i > 0 {
				return 0, 0, errors.Join(ErrVarint, errors.New("non-minimal encoding"))
			}
			return x | uint64(c)<<s, i + 1, nil
		}
		if i == 9 {
			return 0, 0, errors.Join(ErrVarint, errors.New("overflows 64 bits"))
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}
