package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// readDIMACS parses the DIMACS edge format: 'c' comment lines, exactly
// one 'p edge <n> <m>' problem line before any edge, and m 'e <u> <v>'
// lines with 1-based endpoints.
func readDIMACS(br *bufio.Reader) (*graph.Graph, error) {
	var acc *edgeAccum
	line := 0
	for {
		line++
		s, err := br.ReadString('\n')
		if s == "" && err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		t := strings.TrimSpace(s)
		switch {
		case t == "" || t[0] == 'c':
		case strings.HasPrefix(t, "p "):
			if acc != nil {
				return nil, parseErrf(DIMACS, line, "duplicate problem line")
			}
			f := strings.Fields(t)
			if len(f) != 4 || f[1] != "edge" {
				return nil, parseErrf(DIMACS, line, "bad problem line %q (want \"p edge n m\")", t)
			}
			n, err1 := strconv.Atoi(f[2])
			m, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || n < 0 || m < 0 {
				return nil, parseErrf(DIMACS, line, "bad problem line %q", t)
			}
			if acc, err = newEdgeAccum(DIMACS, n, m); err != nil {
				return nil, err
			}
		case strings.HasPrefix(t, "e "):
			if acc == nil {
				return nil, parseErrf(DIMACS, line, "edge before problem line")
			}
			u, v, perr := parseEdgePair(t[2:])
			if perr != nil {
				return nil, parseErrf(DIMACS, line, "bad edge line %q: %v", t, perr)
			}
			if u < 1 || v < 1 {
				return nil, parseErrf(DIMACS, line, "node below 1 in edge line %q (DIMACS is 1-based)", t)
			}
			if aerr := acc.add(line, u-1, v-1); aerr != nil {
				return nil, aerr
			}
		default:
			return nil, parseErrf(DIMACS, line, "unknown record %q", t)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, parseErrf(DIMACS, 0, "missing problem line")
	}
	return acc.build()
}

// writeDIMACS emits the problem line plus 1-based edges in canonical
// sorted order.
func writeDIMACS(bw *bufio.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	return eachEdge(g, func(u, v int) error {
		_, err := fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
		return err
	})
}
