package graphio

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Hash returns the canonical content hash of g: the SHA-256 of its
// canonical binary encoding (magic, n, m, delta-coded sorted edges),
// streamed straight into the hasher. Two graphs hash equally iff they
// are the same labeled graph, which makes the hash a sound
// content-address for deterministic runs keyed on (graph, options):
// the service layer's result cache builds its keys on top of it.
func Hash(g *graph.Graph) [sha256.Size]byte {
	h := sha256.New()
	if err := writeBinary(h, g); err != nil {
		panic(fmt.Sprintf("graphio: hashing cannot fail: %v", err)) // hash.Hash never errors
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// HashString returns Hash(g) in hex.
func HashString(g *graph.Graph) string {
	h := Hash(g)
	return hex.EncodeToString(h[:])
}

// KeyHasher accumulates a content-addressed cache key: the graph hash
// plus any number of option fields. Field order matters (callers fix a
// canonical order); every field is length-prefixed so concatenations
// cannot collide.
type KeyHasher struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
	}
}

// NewKeyHasher starts a key over the canonical hash of g.
func NewKeyHasher(g *graph.Graph) *KeyHasher {
	k := &KeyHasher{h: sha256.New()}
	gh := Hash(g)
	k.h.Write(gh[:])
	return k
}

// Field mixes one labeled option value into the key.
func (k *KeyHasher) Field(name string, value any) *KeyHasher {
	s := fmt.Sprintf("%v", value)
	fmt.Fprintf(k.h, "%d:%s=%d:%s;", len(name), name, len(s), s)
	return k
}

// Sum returns the final key in hex.
func (k *KeyHasher) Sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}
