// Package graphio provides streaming readers and writers for the graph
// interchange formats understood by the serving layer and the CLIs:
// plain edge lists, DIMACS, JSON, and a compact delta-encoded binary
// format. Every reader validates as it parses — node bounds, self-loops,
// duplicate edges, malformed records — and feeds edges straight into a
// single flat builder buffer (no per-edge intermediate slices), so
// multi-million-edge inputs stream at I/O speed. Writers are
// deterministic: the edge stream is emitted in canonical sorted order,
// so Write∘Read∘Write round-trips are byte-identical for every format
// (exercised by the round-trip property tests).
//
// The package also defines the canonical content hash of a graph
// (Hash), the basis of the service layer's content-addressed result
// cache: two graphs hash equally iff they are the same labeled graph.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// Format identifies a graph interchange format.
type Format int

// Supported formats.
const (
	// Auto sniffs the format from the input's leading bytes (and, for
	// ReadFile, the file extension).
	Auto Format = iota
	// EdgeList is whitespace-separated "u v" lines with '#' comments.
	// The writer emits a "# graphio edge-list n=<n> m=<m>" header so
	// isolated trailing nodes survive round trips; headerless files
	// infer n as maxNode+1.
	EdgeList
	// DIMACS is the classic "p edge n m" / "e u v" 1-based format.
	DIMACS
	// JSON is {"n": <n>, "edges": [[u,v], ...]}, parsed token by token.
	JSON
	// Binary is the compact format: "PGB1" magic, uvarint n and m, then
	// delta-encoded uvarint edge gaps over the canonical sorted order.
	Binary
)

// String implements fmt.Stringer with the names ParseFormat accepts.
func (f Format) String() string {
	switch f {
	case Auto:
		return "auto"
	case EdgeList:
		return "edge-list"
	case DIMACS:
		return "dimacs"
	case JSON:
		return "json"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat maps a format name (as accepted by CLI flags and the HTTP
// API) to its Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "edge-list", "edgelist", "edges", "txt":
		return EdgeList, nil
	case "dimacs", "col":
		return DIMACS, nil
	case "json":
		return JSON, nil
	case "binary", "bin", "pgb":
		return Binary, nil
	default:
		return Auto, fmt.Errorf("graphio: unknown format %q (want edge-list|dimacs|json|binary|auto)", s)
	}
}

// Formats lists the four concrete formats (excluding Auto), for tests
// and CLIs that iterate over all of them.
func Formats() []Format { return []Format{EdgeList, DIMACS, JSON, Binary} }

// ParseError reports a malformed input with its location.
type ParseError struct {
	Format Format
	Line   int // 1-based line for text formats, 0 for binary
	Msg    string
}

// Error implements error.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("graphio: %s line %d: %s", e.Format, e.Line, e.Msg)
	}
	return fmt.Sprintf("graphio: %s: %s", e.Format, e.Msg)
}

func parseErrf(f Format, line int, format string, args ...any) error {
	return &ParseError{Format: f, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// MaxNodes bounds the node counts a reader accepts, protecting servers
// against tiny inputs that declare astronomically large graphs (e.g. a
// 12-byte binary header requesting a 2^60-node allocation).
const MaxNodes = 1 << 28

// edgeAccum accumulates validated edges for one reader pass: a single
// flat slice plus the running max endpoint. n < 0 means the node count
// is not known up front (headerless edge lists) and bounds are checked
// against MaxNodes only; known-n inputs are bounds-checked per edge.
type edgeAccum struct {
	f       Format
	n       int
	wantM   int // expected edge count, -1 when unknown
	edges   []graph.Edge
	maxNode int
}

func newEdgeAccum(f Format, n, wantM int) (*edgeAccum, error) {
	if n > MaxNodes {
		return nil, parseErrf(f, 0, "node count %d exceeds the %d limit", n, MaxNodes)
	}
	a := &edgeAccum{f: f, n: n, wantM: wantM, maxNode: -1}
	if wantM > 0 && n >= 0 {
		if max := 3 * n; wantM <= max { // planar-scale hint; oversized claims fall back to append growth
			a.edges = make([]graph.Edge, 0, wantM)
		}
	}
	return a, nil
}

func (a *edgeAccum) add(line, u, v int) error {
	if u == v {
		return parseErrf(a.f, line, "self-loop at node %d", u)
	}
	if u < 0 || v < 0 {
		return parseErrf(a.f, line, "negative node in edge (%d,%d)", u, v)
	}
	hi := u
	if v > hi {
		hi = v
	}
	if a.n >= 0 && hi >= a.n {
		return parseErrf(a.f, line, "edge (%d,%d) out of range [0,%d)", u, v, a.n)
	}
	if hi >= MaxNodes {
		return parseErrf(a.f, line, "edge (%d,%d) exceeds the %d-node limit", u, v, MaxNodes)
	}
	if hi > a.maxNode {
		a.maxNode = hi
	}
	a.edges = append(a.edges, graph.NormEdge(u, v))
	return nil
}

// build finalizes the accumulated edges into a Graph, detecting
// duplicate edges (the builder dedups silently; a count mismatch after
// Build means the input repeated an edge) and edge-count mismatches
// against a declared m.
func (a *edgeAccum) build() (*graph.Graph, error) {
	if a.wantM >= 0 && len(a.edges) != a.wantM {
		return nil, parseErrf(a.f, 0, "declared m=%d but found %d edges", a.wantM, len(a.edges))
	}
	n := a.n
	if n < 0 {
		n = a.maxNode + 1
	}
	b := graph.NewBuilder(n)
	for _, e := range a.edges {
		b.AddEdge(int(e.U), int(e.V))
	}
	g := b.Build()
	if g.M() != len(a.edges) {
		return nil, parseErrf(a.f, 0, "%d duplicate edges", len(a.edges)-g.M())
	}
	return g, nil
}

// eachEdge calls fn for every edge (u < v) in canonical sorted order,
// streaming straight off the adjacency lists (no Edges() slice).
func eachEdge(g *graph.Graph, fn func(u, v int) error) error {
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if v := int(w); u < v {
				if err := fn(u, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Read parses a graph from r in the given format; Auto sniffs the
// format first (see Detect).
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if f == Auto {
		var err error
		if f, err = Detect(br); err != nil {
			return nil, err
		}
	}
	switch f {
	case EdgeList:
		return readEdgeList(br)
	case DIMACS:
		return readDIMACS(br)
	case JSON:
		return readJSON(br)
	case Binary:
		return readBinary(br)
	default:
		return nil, fmt.Errorf("graphio: cannot read format %v", f)
	}
}

// Write serializes g to w in the given format (Auto is not writable).
// Output is deterministic: a canonical sorted edge stream, so writing
// the same graph always produces the same bytes.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var err error
	switch f {
	case EdgeList:
		err = writeEdgeList(bw, g)
	case DIMACS:
		err = writeDIMACS(bw, g)
	case JSON:
		err = writeJSON(bw, g)
	case Binary:
		err = writeBinary(bw, g)
	default:
		err = fmt.Errorf("graphio: cannot write format %v", f)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Detect sniffs the format from the reader's buffered prefix without
// consuming it: binary magic, a leading '{' for JSON, DIMACS 'c'/'p'
// lines, otherwise an edge list.
func Detect(br *bufio.Reader) (Format, error) {
	prefix, err := br.Peek(512)
	if len(prefix) == 0 {
		if err != nil && err != io.EOF {
			return Auto, err
		}
		return Auto, fmt.Errorf("graphio: empty input")
	}
	return DetectBytes(prefix), nil
}

// DetectBytes classifies a prefix of the input (see Detect).
func DetectBytes(prefix []byte) Format {
	if len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic {
		return Binary
	}
	for _, line := range strings.Split(string(prefix), "\n") {
		s := strings.TrimSpace(line)
		if s == "" {
			continue
		}
		switch {
		case s[0] == '{':
			return JSON
		case s[0] == 'c' || s[0] == 'p' || s[0] == 'e':
			// A DIMACS record ('c comment', 'p edge n m', 'e u v'); a bare
			// edge list line starts with a digit.
			return DIMACS
		case s[0] == '#':
			continue // edge-list comment; keep scanning
		default:
			return EdgeList
		}
	}
	return EdgeList
}

// DetectPath guesses a format from a file extension, falling back to
// Auto (content sniffing) for unknown extensions.
func DetectPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".txt", ".edges", ".el":
		return EdgeList
	case ".col", ".dimacs":
		return DIMACS
	case ".json":
		return JSON
	case ".pgb", ".bin":
		return Binary
	default:
		return Auto
	}
}

// ReadFile reads a graph from path. Format Auto tries the file
// extension first, then content sniffing.
func ReadFile(path string, f Format) (*graph.Graph, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	if f == Auto {
		f = DetectPath(path)
	}
	return Read(fh, f)
}

// WriteFile writes g to path in the given format (Auto: by extension,
// defaulting to EdgeList).
func WriteFile(path string, g *graph.Graph, f Format) error {
	if f == Auto {
		if f = DetectPath(path); f == Auto {
			f = EdgeList
		}
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(fh, g, f); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
