package graphio

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzReadBinary throws arbitrary bytes at the binary reader: it must
// never panic, and anything it accepts must re-encode byte-identically
// (the format has exactly one encoding per graph).
func FuzzReadBinary(f *testing.F) {
	seed := func(g *graph.Graph) {
		var buf bytes.Buffer
		if err := Write(&buf, g, Binary); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(graph.NewBuilder(0).Build())
	seed(graph.Path(9))
	seed(graph.Grid(4, 5))
	seed(graph.Complete(6))
	f.Add([]byte("PGB1"))
	f.Add([]byte("PGB1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data), Binary)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, g, Binary); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		if !bytes.Equal(data, out.Bytes()) {
			t.Fatalf("accepted %q but re-encoded as %q", data, out.Bytes())
		}
	})
}

// FuzzReadAuto exercises format sniffing plus every text reader: no
// input may panic, and accepted graphs must round-trip through their
// detected format.
func FuzzReadAuto(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# graphio edge-list n=3 m=1\n0 1\n"))
	f.Add([]byte("p edge 3 2\ne 1 2\ne 2 3\n"))
	f.Add([]byte(`{"n":3,"edges":[[0,1],[1,2]]}`))
	f.Add([]byte("PGB1\x03\x02\x00\x00\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data), Auto)
		if err != nil {
			return
		}
		fmtDetected := DetectBytes(data)
		var out bytes.Buffer
		if err := Write(&out, g, fmtDetected); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		got, err := Read(&out, fmtDetected)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("round trip changed size: n=%d m=%d vs n=%d m=%d", got.N(), got.M(), g.N(), g.M())
		}
	})
}
