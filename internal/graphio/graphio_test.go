package graphio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// testFamilies spans the generator families the experiments use,
// including edge cases: empty, single node, isolated nodes, dense.
func testFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	fams := map[string]*graph.Graph{
		"empty":       graph.NewBuilder(0).Build(),
		"single":      graph.NewBuilder(1).Build(),
		"isolated":    graph.NewBuilder(7).Build(),
		"path":        graph.Path(17),
		"cycle":       graph.Cycle(23),
		"star":        graph.Star(12),
		"grid":        graph.Grid(9, 7),
		"complete":    graph.Complete(13),
		"bipartite":   graph.CompleteBipartite(5, 9),
		"tree":        graph.RandomTree(64, rng),
		"maxplanar":   graph.MaximalPlanar(80, rng),
		"randplanar":  graph.RandomPlanar(100, 180, rng),
		"outerplanar": graph.Outerplanar(40, rng),
		"gnp":         graph.GNP(60, 0.1, rng),
		"k5sub":       graph.K5Subdivision(50),
	}
	g, _ := graph.PlanarPlusRandomEdges(70, 25, rng)
	fams["planar+noise"] = g
	// Trailing isolated nodes: the regression case for formats that
	// would otherwise infer n from the max endpoint.
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	fams["trailing-isolated"] = b.Build()
	return fams
}

func sameGraph(t *testing.T, want, got *graph.Graph, ctx string) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: got n=%d m=%d, want n=%d m=%d", ctx, got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < want.N(); v++ {
		w, g := want.Neighbors(v), got.Neighbors(v)
		if len(w) != len(g) {
			t.Fatalf("%s: node %d degree %d, want %d", ctx, v, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: node %d neighbor %d is %d, want %d", ctx, v, i, g[i], w[i])
			}
		}
	}
}

// TestRoundTrip checks, for every family x format: read(write(g)) == g,
// write(read(write(g))) is byte-identical, and Auto detection decodes
// the written bytes.
func TestRoundTrip(t *testing.T) {
	for name, g := range testFamilies(t) {
		for _, f := range Formats() {
			t.Run(name+"/"+f.String(), func(t *testing.T) {
				var buf bytes.Buffer
				if err := Write(&buf, g, f); err != nil {
					t.Fatalf("write: %v", err)
				}
				first := append([]byte(nil), buf.Bytes()...)

				got, err := Read(bytes.NewReader(first), f)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				sameGraph(t, g, got, "after round trip")

				var second bytes.Buffer
				if err := Write(&second, got, f); err != nil {
					t.Fatalf("rewrite: %v", err)
				}
				if !bytes.Equal(first, second.Bytes()) {
					t.Fatalf("round trip not byte-identical:\n%q\nvs\n%q", first, second.Bytes())
				}

				auto, err := Read(bytes.NewReader(first), Auto)
				if err != nil {
					t.Fatalf("auto read: %v", err)
				}
				sameGraph(t, g, auto, "after auto-detected round trip")
			})
		}
	}
}

// TestHashStability checks that the content hash is invariant under
// serialization round trips and distinguishes distinct graphs.
func TestHashStability(t *testing.T) {
	seen := map[string]string{}
	for name, g := range testFamilies(t) {
		h := HashString(g)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %s and %s", prev, name)
		}
		seen[h] = name
		for _, f := range Formats() {
			var buf bytes.Buffer
			if err := Write(&buf, g, f); err != nil {
				t.Fatal(err)
			}
			got, err := Read(&buf, f)
			if err != nil {
				t.Fatal(err)
			}
			if HashString(got) != h {
				t.Fatalf("%s: hash changed through %v round trip", name, f)
			}
		}
	}
	// The hash must see the node count, not just edges.
	a := graph.NewBuilder(3)
	a.AddEdge(0, 1)
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if HashString(a.Build()) == HashString(b.Build()) {
		t.Fatal("hash ignores isolated nodes")
	}
}

// TestKeyHasher checks field separation: distinct (name,value) splits
// must produce distinct keys.
func TestKeyHasher(t *testing.T) {
	g := graph.Path(4)
	k1 := NewKeyHasher(g).Field("eps", 0.25).Field("seed", 1).Sum()
	k2 := NewKeyHasher(g).Field("eps", 0.2).Field("seed", 51).Sum()
	k3 := NewKeyHasher(g).Field("eps", 0.25).Field("seed", 1).Sum()
	if k1 == k2 {
		t.Fatal("different options produced the same key")
	}
	if k1 != k3 {
		t.Fatal("identical options produced different keys")
	}
}

func TestHeaderlessEdgeList(t *testing.T) {
	g, err := Read(strings.NewReader("0 1\n1 2\n\n# comment\n2 3\n"), EdgeList)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want n=4 m=3", g.N(), g.M())
	}
	// Tab separation and no trailing newline parse too.
	g, err = Read(strings.NewReader("0\t5\n3 4"), EdgeList)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want n=6 m=2", g.N(), g.M())
	}
}

// TestCorruptInputs drives every reader's error paths.
func TestCorruptInputs(t *testing.T) {
	binOK := func(g *graph.Graph) []byte {
		var buf bytes.Buffer
		if err := Write(&buf, g, Binary); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	pathBin := binOK(graph.Path(5))

	cases := []struct {
		name string
		f    Format
		in   string
		want string // substring of the error
	}{
		{"edgelist/garbage", EdgeList, "0 x\n", "bad edge line"},
		{"edgelist/three-fields", EdgeList, "0 1 2\n", "bad edge line"},
		{"edgelist/one-field", EdgeList, "7\n", "bad edge line"},
		{"edgelist/self-loop", EdgeList, "3 3\n", "self-loop"},
		{"edgelist/negative", EdgeList, "-1 2\n", "negative node"},
		{"edgelist/dup", EdgeList, "0 1\n1 0\n", "duplicate"},
		{"edgelist/out-of-range", EdgeList, "# graphio edge-list n=2 m=1\n0 5\n", "out of range"},
		{"edgelist/m-mismatch", EdgeList, "# graphio edge-list n=3 m=2\n0 1\n", "declared m=2"},
		{"edgelist/bad-header", EdgeList, "# graphio edge-list n=x\n", "bad header"},
		{"edgelist/header-after-data", EdgeList, "0 1\n# graphio edge-list n=5 m=1\n", "header after data"},
		{"dimacs/no-p", DIMACS, "e 1 2\n", "edge before problem line"},
		{"dimacs/missing-p", DIMACS, "c only comments\n", "missing problem line"},
		{"dimacs/double-p", DIMACS, "p edge 3 0\np edge 3 0\n", "duplicate problem line"},
		{"dimacs/bad-p", DIMACS, "p clique 3 1\n", "bad problem line"},
		{"dimacs/zero-based", DIMACS, "p edge 3 1\ne 0 1\n", "1-based"},
		{"dimacs/out-of-range", DIMACS, "p edge 3 1\ne 1 9\n", "out of range"},
		{"dimacs/self-loop", DIMACS, "p edge 3 1\ne 2 2\n", "self-loop"},
		{"dimacs/m-mismatch", DIMACS, "p edge 3 2\ne 1 2\n", "declared m=2"},
		{"dimacs/unknown-record", DIMACS, "p edge 3 0\nx 1 2\n", "unknown record"},
		{"json/not-object", JSON, "[1,2]", "unexpected token"},
		{"json/unknown-key", JSON, `{"n":3,"nodes":[]}`, "unknown key"},
		{"json/missing-n", JSON, `{"edges":[[0,1]]}`, `missing key "n"`},
		{"json/missing-edges", JSON, `{"n":3}`, `missing key "edges"`},
		{"json/float-n", JSON, `{"n":2.5,"edges":[]}`, "non-integer"},
		{"json/edge-arity", JSON, `{"n":3,"edges":[[0,1,2]]}`, "more than two"},
		{"json/edge-not-array", JSON, `{"n":3,"edges":[5]}`, "unexpected token"},
		{"json/self-loop", JSON, `{"n":3,"edges":[[1,1]]}`, "self-loop"},
		{"json/out-of-range", JSON, `{"n":2,"edges":[[0,5]]}`, "out of range"},
		{"json/edges-before-n-bound", JSON, `{"edges":[[0,9]],"n":3}`, "out of range"},
		{"json/trailing", JSON, `{"n":1,"edges":[]}{}`, "trailing data"},
		{"json/truncated", JSON, `{"n":3,"edges":[[0,`, ""},
		{"binary/bad-magic", Binary, "NOPE" + string(pathBin[4:]), "bad magic"},
		{"binary/truncated-header", Binary, "PGB1", "truncated n"},
		{"binary/truncated-edges", Binary, string(pathBin[:len(pathBin)-1]), "truncated"},
		{"binary/trailing", Binary, string(pathBin) + "\x00", "trailing bytes"},
		{"binary/huge-n", Binary, "PGB1" + string([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00}), "limit"},
		// n=5 m=1, then du so large that prevU+du wraps uint64 to a
		// small in-range u: must be rejected, not decoded.
		{"binary/wrapping-delta", Binary, "PGB1\x05\x01" + string([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00}), "out of range"},
		// Non-minimal varint (0xe8 0x00 decodes like 0x68): one value,
		// one encoding — anything else breaks content addressing.
		{"binary/non-minimal-varint", Binary, "PGB1\xe8\x00\x00", "non-minimal"},
		{"empty-auto", Auto, "", "empty input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in), tc.f)
			if err == nil {
				t.Fatalf("corrupt input parsed without error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			var pe *ParseError
			if tc.name != "empty-auto" && tc.name != "json/truncated" && !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError", err)
			}
		})
	}
}

func TestDetectBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Format
	}{
		{"PGB1\x05\x04", Binary},
		{`{"n":3,"edges":[]}`, JSON},
		{"c comment\np edge 3 1\n", DIMACS},
		{"p edge 3 1\ne 1 2\n", DIMACS},
		{"0 1\n1 2\n", EdgeList},
		{"# graphio edge-list n=3 m=1\n0 1\n", EdgeList},
		{"# just a comment\n", EdgeList},
	}
	for _, tc := range cases {
		if got := DetectBytes([]byte(tc.in)); got != tc.want {
			t.Errorf("DetectBytes(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, f := range Formats() {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("gexf"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := graph.Grid(4, 4)
	for _, ext := range []string{".txt", ".col", ".json", ".pgb"} {
		path := t.TempDir() + "/g" + ext
		if err := WriteFile(path, g, Auto); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path, Auto)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, g, got, ext)
	}
}
