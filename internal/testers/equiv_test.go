package testers

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/planar"
)

// TestMinorFreeEngineEquivalence proves that the native step path of the
// minor-free property testers and the blocking path produce byte-identical
// RunResults for fixed seeds, across ≥3 graph families (accepting and
// rejecting), both properties, and both Stage I variants (issue acceptance
// criterion).
func TestMinorFreeEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(7, 7)},                                                          // accepts both properties' bipartite side
		{"tree", graph.RandomTree(50, rand.New(rand.NewSource(1)))},                         // accepts cycle-freeness
		{"tree-plus-edges", graph.TreePlusRandomEdges(60, 20, rand.New(rand.NewSource(2)))}, // rejects cycle-freeness
		{"odd-chords", graph.GridWithOddChords(6, 6, 5, rand.New(rand.NewSource(3)))},       // rejects bipartiteness
	}
	variants := []partition.Variant{partition.Deterministic, partition.Randomized}
	for _, fam := range families {
		for _, prop := range []Property{CycleFreeness, Bipartiteness} {
			for _, variant := range variants {
				for seed := int64(0); seed < 2; seed++ {
					name := fmt.Sprintf("%s/%v/variant%d/seed%d", fam.name, prop, variant, seed)
					opts := Options{Epsilon: 0.2, Partition: partition.Options{
						Epsilon: 0.2, Variant: variant, Schedule: partition.PracticalSchedule}}
					nr, nErr := Run(fam.g, prop, opts, seed)
					br, bErr := RunBlocking(fam.g, prop, opts, seed)
					if (nErr == nil) != (bErr == nil) {
						t.Fatalf("%s: err mismatch: native=%v blocking=%v", name, nErr, bErr)
					}
					if nErr != nil {
						continue
					}
					if !reflect.DeepEqual(nr, br) {
						t.Fatalf("%s: result mismatch:\nnative:   %+v\nblocking: %+v", name, nr, br)
					}
				}
			}
		}
	}
}

// TestHereditaryEngineEquivalence proves the same for the generic
// hereditary-property tester (outerplanarity as the predicate), including
// a rejecting family.
func TestHereditaryEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"outerplanar", graph.Outerplanar(30, rand.New(rand.NewSource(5)))}, // accepts
		{"cycle", graph.Cycle(25)}, // accepts
		{"grid", graph.Grid(6, 6)}, // rejects (not outerplanar)
	}
	for _, fam := range families {
		for seed := int64(0); seed < 2; seed++ {
			name := fmt.Sprintf("%s/seed%d", fam.name, seed)
			opts := Options{Epsilon: 0.25, Partition: partition.Options{
				Epsilon: 0.25, Schedule: partition.PracticalSchedule}}
			nr, nErr := RunHereditary(fam.g, planar.IsOuterplanar, opts, seed)
			br, bErr := RunHereditaryBlocking(fam.g, planar.IsOuterplanar, opts, seed)
			if (nErr == nil) != (bErr == nil) {
				t.Fatalf("%s: err mismatch: native=%v blocking=%v", name, nErr, bErr)
			}
			if nErr != nil {
				continue
			}
			if !reflect.DeepEqual(nr, br) {
				t.Fatalf("%s: result mismatch:\nnative:   %+v\nblocking: %+v", name, nr, br)
			}
		}
	}
}
