package testers

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/planar"
)

func TestHereditaryOuterplanarAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []*graph.Graph{
		graph.Outerplanar(40, rng),
		graph.Cycle(25),
		graph.RandomTree(35, rng),
		graph.Path(20),
	}
	for i, g := range cases {
		if !planar.IsOuterplanar(g) {
			t.Fatalf("case %d: generator must be outerplanar", i)
		}
		r, err := RunHereditary(g, planar.IsOuterplanar, Options{Epsilon: 0.25}, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			t.Fatalf("case %d: outerplanar graph rejected (hereditary one-sidedness)", i)
		}
	}
}

func TestHereditaryOuterplanarRejectsFar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Maximal planar graphs have m = 3n-6 > 2n-3: certified far from
	// outerplanarity by the size bound (distance >= n-3 = about m/3).
	g := graph.MaximalPlanar(60, rng)
	if d := planar.OuterplanarDistanceLowerBound(g); d < g.N()-4 {
		t.Fatalf("expected certified distance, got %d", d)
	}
	for seed := int64(0); seed < 3; seed++ {
		r, err := RunHereditary(g, planar.IsOuterplanar, Options{Epsilon: 0.2}, 10+seed)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Rejected {
			t.Fatalf("seed %d: far-from-outerplanar graph accepted", seed)
		}
	}
}

func TestHereditaryPlanarityPredicateMatchesMainTester(t *testing.T) {
	// Planarity itself is hereditary; the generic tester with the exact
	// LR predicate is a deterministic-per-part variant of Stage II.
	rng := rand.New(rand.NewSource(3))
	planarG := graph.RandomPlanar(50, 100, rng)
	r, err := RunHereditary(planarG, planar.IsPlanar, Options{Epsilon: 0.25}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rejected {
		t.Fatal("planar graph rejected by exact predicate")
	}
	farG, _ := graph.PlanarPlusRandomEdges(50, 40, rng)
	r, err = RunHereditary(farG, planar.IsPlanar, Options{Epsilon: 0.15}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatal("far graph accepted by exact predicate")
	}
}

func TestHereditaryRandomizedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Outerplanar(30, rng)
	opts := Options{Epsilon: 0.25}
	opts.Partition.Epsilon = 0.25
	opts.Partition.Variant = 2 // partition.Randomized
	r, err := RunHereditary(g, planar.IsOuterplanar, opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rejected {
		t.Fatal("outerplanar graph rejected under randomized partition")
	}
}

func TestIsOuterplanarBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if !planar.IsOuterplanar(graph.Cycle(10)) {
		t.Fatal("cycle is outerplanar")
	}
	if !planar.IsOuterplanar(graph.Outerplanar(25, rng)) {
		t.Fatal("maximal outerplanar generator must be outerplanar")
	}
	if planar.IsOuterplanar(graph.Complete(4)) {
		t.Fatal("K4 is not outerplanar")
	}
	if planar.IsOuterplanar(graph.CompleteBipartite(2, 3)) {
		t.Fatal("K23 is not outerplanar")
	}
	if planar.IsOuterplanar(graph.Grid(3, 3)) {
		t.Fatal("3x3 grid is not outerplanar (K23 minor)")
	}
	if !planar.IsOuterplanar(graph.Grid(2, 8)) {
		t.Fatal("2xk grid (ladder) is outerplanar")
	}
}
