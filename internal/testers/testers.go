// Package testers implements the minor-free property testers of
// Corollary 16: distributed one-sided testing of cycle-freeness and
// bipartiteness under the promise that the input graph is minor-free.
// The algorithms partition the graph with Stage I (deterministic,
// Theorem 3) or its randomized variant (Theorem 4) and verify the
// property within each part, where a BFS tree makes both checks local.
package testers

import (
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Property is a testable property of Corollary 16.
type Property int

// Properties.
const (
	// CycleFreeness rejects iff a part contains a non-tree edge.
	CycleFreeness Property = iota + 1
	// Bipartiteness rejects iff a part contains an edge joining two
	// nodes of equal BFS-level parity (an odd cycle witness).
	Bipartiteness
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case CycleFreeness:
		return "cycle-freeness"
	case Bipartiteness:
		return "bipartiteness"
	default:
		return "unknown"
	}
}

// Options configures a minor-free property test.
type Options struct {
	// Epsilon is the distance parameter; the partition is run with the
	// edge-cut parameter set to it (Corollary 16 prescribes "slightly
	// below" epsilon; the half used for planarity covers it).
	Epsilon float64
	// Partition overrides the partitioning options; zero value derives
	// the deterministic Stage I from Epsilon. Set Variant to
	// partition.Randomized for the O(poly(1/eps)(log(1/delta)+log* n))
	// variant.
	Partition partition.Options
	// Workers is passed through to congest.Config.Workers (0: GOMAXPROCS).
	// Results are byte-identical for every value.
	Workers int
	// Cancel is passed through to congest.Config.Cancel: when it becomes
	// readable the run aborts with congest.ErrCanceled. Pass a context's
	// Done() channel; nil disables cancellation.
	Cancel <-chan struct{}
	// Deadline is passed through to congest.Config.Deadline: a non-zero
	// wall-clock instant after which the run aborts with
	// congest.ErrDeadlineExceeded at the next barrier.
	Deadline time.Time
}

// Test runs the distributed property tester inside a node program and
// returns (and outputs) the node's verdict: on inputs with the property
// every node accepts; on minor-free inputs eps-far from the property at
// least one node rejects.
func Test(api *congest.API, prop Property, opts Options) congest.Verdict {
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		panic("testers: Epsilon must be in (0,1]")
	}
	if opts.Partition.Epsilon == 0 {
		opts.Partition.Epsilon = opts.Epsilon
	}
	po := partition.RunStageI(api, opts.Partition)
	ctx := core.BuildPartContext(api, po)

	reject := false
	switch prop {
	case CycleFreeness:
		// Any intra-part non-tree edge closes a cycle.
		reject = len(ctx.NonTreeAssignedPorts()) > 0
	case Bipartiteness:
		// An intra-part edge between equal level parities closes an
		// odd cycle (BFS-level argument, §4.2).
		for _, p := range ctx.AssignedPorts() {
			if (ctx.Level()+ctx.NeighborLevel(p))%2 == 0 {
				reject = true
				break
			}
		}
	default:
		panic("testers: unknown property")
	}
	if reject || po.Rejected {
		api.Output(congest.VerdictReject)
		return congest.VerdictReject
	}
	api.Output(congest.VerdictAccept)
	return congest.VerdictAccept
}

// Run executes the tester on g over the simulator and returns the run
// result (StopOnReject semantics). It runs on the engine's native step
// path; RunBlocking forces the goroutine compatibility path, which
// produces byte-identical results for a fixed seed
// (TestMinorFreeEngineEquivalence). Panics on invalid Options (Epsilon
// outside (0,1]), like core.RunTester.
func Run(g *graph.Graph, prop Property, opts Options, seed int64) (*core.RunResult, error) {
	plan := stageIPlanFor(g, opts)
	res, err := congest.RunStep(testersConfig(g, opts, seed), func(node int) congest.StepProgram {
		return newPropertyProgram(plan, prop)
	})
	return newRunResult(res, err)
}

// RunBlocking executes the tester on the blocking compatibility path (one
// goroutine per node); kept for the engine-equivalence tests.
func RunBlocking(g *graph.Graph, prop Property, opts Options, seed int64) (*core.RunResult, error) {
	res, err := congest.Run(testersConfig(g, opts, seed), func(api *congest.API) {
		Test(api, prop, opts)
	})
	return newRunResult(res, err)
}
