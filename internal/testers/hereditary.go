package testers

import (
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// PartPredicate decides a hereditary graph property on one part. It runs
// at the part root over the gathered part graph (central evaluation,
// charged as modeled rounds — the paper's §4.2 remark covers any
// hereditary property verifiable in rounds polynomial in the part
// diameter; gathering the poly(1/eps)-diameter part is one such way).
type PartPredicate func(g *graph.Graph) bool

// TestHereditary is the generic tester behind the §4.2 remark: for any
// hereditary property P (closed under induced subgraphs, so parts of a
// P-graph keep P) that can be decided per part, it partitions the graph
// and evaluates P on each part:
//
//   - if G has P, every part has P (hereditary) — every node accepts;
//   - if G is eps-far from P and minor-free, the partition removes at
//     most eps*m edges, so some part violates P — its root rejects.
func TestHereditary(api *congest.API, pred PartPredicate, opts Options) congest.Verdict {
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		panic("testers: Epsilon must be in (0,1]")
	}
	if opts.Partition.Epsilon == 0 {
		opts.Partition.Epsilon = opts.Epsilon
	}
	po := partition.RunStageI(api, opts.Partition)
	ctx := core.BuildPartContext(api, po)
	_, m := ctx.Counts()
	pg, _ := ctx.GatherGraph(m)
	bad := false
	if pg != nil { // part root
		bad = !pred(pg)
	}
	reject := ctx.BroadcastBit(bad)
	if reject || po.Rejected {
		// Per the paper only the root needs to reject; rejecting at the
		// root keeps the verdict semantics identical.
		if pg != nil || po.Rejected {
			api.Output(congest.VerdictReject)
			return congest.VerdictReject
		}
		api.Output(congest.VerdictAccept)
		return congest.VerdictAccept
	}
	api.Output(congest.VerdictAccept)
	return congest.VerdictAccept
}

// RunHereditary executes TestHereditary on g over the simulator. It runs
// on the engine's native step path; RunHereditaryBlocking forces the
// goroutine compatibility path, which produces byte-identical results for
// a fixed seed (TestHereditaryEngineEquivalence). Panics on invalid
// Options (Epsilon outside (0,1]), like core.RunTester.
func RunHereditary(g *graph.Graph, pred PartPredicate, opts Options, seed int64) (*core.RunResult, error) {
	plan := stageIPlanFor(g, opts)
	res, err := congest.RunStep(testersConfig(g, opts, seed), func(node int) congest.StepProgram {
		return newHereditaryProgram(plan, pred)
	})
	return newRunResult(res, err)
}

// RunHereditaryBlocking executes TestHereditary on the blocking
// compatibility path; kept for the engine-equivalence tests.
func RunHereditaryBlocking(g *graph.Graph, pred PartPredicate, opts Options, seed int64) (*core.RunResult, error) {
	res, err := congest.Run(testersConfig(g, opts, seed), func(api *congest.API) {
		TestHereditary(api, pred, opts)
	})
	return newRunResult(res, err)
}
