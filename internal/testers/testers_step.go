package testers

import (
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// This file contains the native StepProgram runners behind Run and
// RunHereditary: the step-model Stage I plan (either variant) hands each
// node over to the part-context builder (core.PartCtxStep), whose done
// callback performs the same local checks and verdict outputs, in the same
// rounds, as the blocking Test/TestHereditary. The blocking runners are
// kept as *Blocking for the engine-equivalence tests.

// newPropertyProgram builds the per-node step program of the minor-free
// property tester: after the part context is ready the checks are purely
// local, so the done callback outputs the verdict directly.
func newPropertyProgram(plan *partition.StageIPlan, prop Property) congest.StepProgram {
	return plan.NewNode(func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
		return congest.BecomeStep(core.NewPartCtxStep(po, func(api *congest.StepAPI, c *core.PartCtxStep) congest.Status {
			reject := false
			switch prop {
			case CycleFreeness:
				reject = len(c.NonTreeAssignedPorts()) > 0
			case Bipartiteness:
				for _, p := range c.AssignedPorts() {
					if (c.Level()+c.NeighborLevel(p))%2 == 0 {
						reject = true
						break
					}
				}
			default:
				panic("testers: unknown property")
			}
			if reject || po.Rejected {
				api.Output(congest.VerdictReject)
			} else {
				api.Output(congest.VerdictAccept)
			}
			return congest.Done()
		}))
	})
}

// newHereditaryProgram builds the per-node step program of the generic
// hereditary-property tester: the part context chains into the
// gather-and-evaluate continuation, and the verdict rule mirrors
// TestHereditary (only the root — or a Stage I rejector — rejects).
func newHereditaryProgram(plan *partition.StageIPlan, pred PartPredicate) congest.StepProgram {
	return plan.NewNode(func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
		return congest.BecomeStep(core.NewPartCtxStep(po, func(api *congest.StepAPI, c *core.PartCtxStep) congest.Status {
			return congest.BecomeStep(c.NewGatherEval(pred, func(api *congest.StepAPI, reject, rootEvaluated bool) congest.Status {
				if (reject || po.Rejected) && (rootEvaluated || po.Rejected) {
					api.Output(congest.VerdictReject)
				} else {
					api.Output(congest.VerdictAccept)
				}
				return congest.Done()
			}))
		}))
	})
}

// stageIPlanFor validates the options exactly like the blocking testers
// and compiles the shared Stage I plan.
func stageIPlanFor(g *graph.Graph, opts Options) *partition.StageIPlan {
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		panic("testers: Epsilon must be in (0,1]")
	}
	if opts.Partition.Epsilon == 0 {
		opts.Partition.Epsilon = opts.Epsilon
	}
	return partition.NewStageIPlan(opts.Partition, g.N())
}

func testersConfig(g *graph.Graph, opts Options, seed int64) congest.Config {
	return congest.Config{
		Graph:        g,
		Seed:         seed,
		StopOnReject: true,
		MaxRounds:    1 << 40,
		Workers:      opts.Workers,
		Cancel:       opts.Cancel,
		Deadline:     opts.Deadline,
	}
}

func newRunResult(res *congest.Result, err error) (*core.RunResult, error) {
	if err != nil {
		return nil, err
	}
	return &core.RunResult{
		Rejected:   res.Rejected(),
		RejectedBy: res.RejectCount(),
		Metrics:    res.Metrics,
	}, nil
}
