package testers

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestCycleFreenessAcceptsForests(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []*graph.Graph{
		graph.RandomTree(40, rng),
		graph.Path(25),
		graph.Star(20),
		graph.DisjointUnion(graph.RandomTree(15, rng), graph.RandomTree(12, rng)),
	}
	for i, g := range cases {
		for seed := int64(0); seed < 3; seed++ {
			r, err := Run(g, CycleFreeness, Options{Epsilon: 0.25}, 10*int64(i)+seed)
			if err != nil {
				t.Fatal(err)
			}
			if r.Rejected {
				t.Fatalf("case %d seed %d: forest rejected", i, seed)
			}
		}
	}
}

func TestCycleFreenessRejectsFarGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A tree plus many extra edges is far from cycle-free (distance =
	// extra edges); the minor-free promise holds (it is planar).
	g := graph.TreePlusRandomEdges(60, 25, rng)
	for seed := int64(0); seed < 3; seed++ {
		r, err := Run(g, CycleFreeness, Options{Epsilon: 0.2}, 20+seed)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Rejected {
			t.Fatalf("seed %d: far-from-cycle-free graph accepted", seed)
		}
	}
}

func TestCycleFreenessSingleCycle(t *testing.T) {
	// One big cycle: 1/m-far only, but the whole component becomes one
	// part, where the single non-tree edge is found deterministically.
	r, err := Run(graph.Cycle(30), CycleFreeness, Options{Epsilon: 0.2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatal("cycle must be caught once its component is one part")
	}
}

func TestBipartitenessAcceptsBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []*graph.Graph{
		graph.Grid(6, 7),
		graph.Cycle(24),
		graph.RandomTree(40, rng),
		graph.Path(19),
	}
	for i, g := range cases {
		for seed := int64(0); seed < 3; seed++ {
			r, err := Run(g, Bipartiteness, Options{Epsilon: 0.25}, 30*int64(i)+seed)
			if err != nil {
				t.Fatal(err)
			}
			if r.Rejected {
				t.Fatalf("case %d seed %d: bipartite graph rejected", i, seed)
			}
		}
	}
}

func TestBipartitenessRejectsOddStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []*graph.Graph{
		graph.Cycle(9),
		graph.GridWithOddChords(6, 6, 8, rng),
		graph.MaximalPlanar(30, rng), // triangles everywhere
	}
	for i, g := range cases {
		if g.IsBipartite() {
			t.Fatalf("case %d: test graph must be non-bipartite", i)
		}
		r, err := Run(g, Bipartiteness, Options{Epsilon: 0.15}, int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Rejected {
			t.Fatalf("case %d: non-bipartite graph accepted", i)
		}
	}
}

func TestRandomizedVariantTesters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := Options{
		Epsilon:   0.25,
		Partition: partition.Options{Epsilon: 0.25, Variant: partition.Randomized},
	}
	if r, err := Run(graph.RandomTree(30, rng), CycleFreeness, opts, 51); err != nil || r.Rejected {
		t.Fatalf("forest rejected by randomized variant (err=%v)", err)
	}
	if r, err := Run(graph.Grid(5, 5), Bipartiteness, opts, 52); err != nil || r.Rejected {
		t.Fatalf("grid rejected by randomized variant (err=%v)", err)
	}
	if r, err := Run(graph.TreePlusRandomEdges(40, 20, rng), CycleFreeness, opts, 53); err != nil || !r.Rejected {
		t.Fatalf("far graph accepted by randomized variant (err=%v)", err)
	}
}

func TestOneSidednessSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		tr := graph.RandomTree(20+rng.Intn(30), rng)
		r, err := Run(tr, CycleFreeness, Options{Epsilon: 0.3}, int64(60+trial))
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			t.Fatalf("trial %d: forest rejected", trial)
		}
		// Even cycles are bipartite.
		c := graph.Cycle(2 * (5 + rng.Intn(10)))
		r, err = Run(c, Bipartiteness, Options{Epsilon: 0.3}, int64(70+trial))
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			t.Fatalf("trial %d: even cycle rejected", trial)
		}
	}
}

func TestPropertyString(t *testing.T) {
	if CycleFreeness.String() != "cycle-freeness" || Bipartiteness.String() != "bipartiteness" {
		t.Fatal("property names wrong")
	}
}
