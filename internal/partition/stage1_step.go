package partition

import (
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/obs"
)

// This file is the native StepProgram port of Stage I (stage1.go), in both
// variants. The interpreter state below is the per-node "cold" side of
// the engine's memory model (DESIGN.md §8): one heap object per node
// behind the StepProgram interface, reached once per wake through the
// slab-backed StepAPI, with its own per-wake-hot fields (pc, inOp, the
// embedded bd/cv machines) declared up front. Every node executes the same static script of
// budget-synchronized operations per phase — broadcasts, convergecasts,
// single cross-boundary rounds, and the contraction flip window — so the
// whole phase schedule compiles to a flat op list interpreted by a small
// state machine. The Deterministic variant compiles the forest
// decomposition into the script; the Randomized variant compiles the
// weighted-edge-selection trials (select_random.go) instead, drawing
// per-node randomness in the same program order as the blocking
// implementation. The port is round-exact: it sends the same messages in
// the same rounds (and calls Output at the same rounds) as the blocking
// implementation, so both execution models produce byte-identical Results
// for a fixed seed (verified by TestStageIEngineEquivalence).

type sOpKind uint8

const (
	sBoundary sOpKind = iota // SendAll(rootAnnounce) + 1 round
	sBcast                   // part-tree broadcast, budget D
	sCvg                     // part-tree convergecast, budget D
	sCross                   // one global round of cross-boundary sends
	sFlip                    // contract's D-round orientation flip window
)

// sTag identifies the glue code (prepare/absorb) of a script op.
type sTag uint8

const (
	tBoundary    sTag = iota
	tHasCross         // cvg: OR of per-node has-cross-edge flags
	tEarlyDec         // bcast: early-exit decision
	tFDStatus         // bcast: forest-decomposition status (arg = super-round)
	tFDActivity       // cross: activity exchange (arg = super-round)
	tFDAgg            // cvg: decomposition aggregate (arg = super-round)
	tSel              // bcast: selected out-edge
	tCand             // cvg: min-id candidate for u^j
	tWinner           // bcast: designated node announcement
	tFSelect          // cross: u^j -> v^j child notice
	tMutual           // cvg: OR of mutual-selection evidence
	tDrop             // bcast: mutual-selection drop decision
	tWithdraw         // cross: withdraw child notice
	tKids             // cvg: child count sum
	tCVIter           // fFetch: Cole-Vishkin iteration (arg = k)
	tShift            // fFetch: shift-down pass (arg = dropped class)
	tRecolor          // fFetch: recolor pass (arg = dropped class)
	tReport           // bcast: part color/weight report
	tReportX          // cross: child report u^j -> v^j
	tColorSums        // cvg: per-color incoming weights
	tMarkPC           // fFetch: parent color for the chi=2 marking rule
	tMarkDec          // bcast: marking decision
	tMarkX            // cross: marked-edge notifications
	tByParent         // cvg: OR of marked-by-parent evidence
	tAnyKid           // cvg: OR of has-marked-child flags
	tOutMkd           // bcast: out-edge-marked mirror bit
	tLvlAnn           // bcast: level announcement (arg = hop)
	tLvlX             // cross: level cascade (arg = hop)
	tLvlUp            // cvg: level pickup (arg = hop)
	tParAnn           // bcast: parity-weight announcement (arg = hop, descending)
	tParX             // cross: parity-weight cascade (arg = hop)
	tParUp            // cvg: parity-weight pickup (arg = hop)
	tDecAnn           // bcast: contraction parity announcement (arg = hop)
	tDecX             // cross: parity cascade (arg = hop)
	tDecUp            // cvg: parity pickup (arg = hop)
	tContract         // bcast: contraction announcement
	tFlip             // flip window
	tAttach           // cross: u^j attaches under v^j
	tTrialPick        // cvg: weighted cut-edge reservoir pick (arg = trial)
	tTrialAnn         // bcast: drawn target announcement (arg = trial)
	tTrialWeight      // cvg: w(P, target) evaluation (arg = trial)
)

// fFetch sites expand to the op triple [bcast own | cross forward | cvg
// pickup] sharing the fFetch mechanics of state.go.

type sOp struct {
	kind sOpKind
	ff   bool // op belongs to an fFetch triple (0: bcast, cross, cvg order)
	tag  sTag
	arg  int32
}

// StageIPlan is the compiled per-phase op script of the Stage I schedule
// (either variant), shared by every node of a run.
type StageIPlan struct {
	opts   Options
	phases int
	S      int // forest-decomposition super-rounds
	iters  int // Cole-Vishkin reduction iterations
	trials int // randomized: weighted-edge-selection trials
	ops    []sOp
	fdEnd  int // op index just past the forest-decomposition loop

	// Super-round batching coordination (DESIGN.md §10). A plan carries
	// single-run counter state: every run (and every resume) compiles its
	// own plan, and ResumeNode rebuilds the counters from the decoded
	// nodes. fdParticipants[p] counts the nodes that entered phase p+1's
	// forest decomposition; fdStable[p*S+l] counts participants whose
	// super-round l of phase p+1 was clean (no local decomposition state
	// change). Both are updated with atomics from parallel workers and
	// read only at rounds strictly after the last write to the slot, so
	// the engine barrier provides the happens-before edge (DESIGN.md §10).
	fdParticipants []int64
	fdStable       []int64

	// Cascade-window tallies (DESIGN.md §10), maintained for both
	// variants: cascInT[p] counts the parts of phase p+1 that joined the
	// marked trees T; lvlAt[p*H+h] and decAt[p*H+h] count the parts whose
	// level / contraction parity was assigned during hop h of the phase's
	// cascade loops; lvlByVal[p*(H+1)+L] counts the parts holding level L
	// (H = treeHeightBound). Roots write with atomics; readers only load
	// slots whose last write is at least one hop (2D+1 rounds, hence one
	// engine barrier) old, so the same happens-before argument applies.
	cascInT  []int64
	lvlAt    []int64
	decAt    []int64
	lvlByVal []int64

	// nodeSlab backs the run's interpreter nodes in node-index order: the
	// engine walks due lists ascending, and one contiguous array with a
	// fixed stride keeps the hardware prefetcher ahead of the per-wake
	// first-line load that dominates the Stage I profile (DESIGN.md §5).
	// Both RunStep and ResumeStep construct nodes in ascending order, so
	// slab order matches node order; overflow (never expected) falls back
	// to individual allocation.
	nodeSlab []stageINode
	nodeNext int
	n        int

	// phaseIDs are the per-merging-phase obs phase IDs ("stage1/p01",
	// ...), interned at plan compile time when Options.Probe is set so
	// no node ever takes the probe's intern mutex mid-run; nil when the
	// run is unprobed (beginPhase then announces nothing).
	phaseIDs []obs.PhaseID
}

// NewStageIPlan compiles the Stage I schedule for an n-node network. Both
// the Deterministic and the Randomized variant compile to a script: they
// differ only in the out-edge-selection ops (forest decomposition versus
// weighted selection trials).
func NewStageIPlan(opts Options, n int) *StageIPlan {
	opts = opts.withDefaults()
	pl := &StageIPlan{
		opts:   opts,
		phases: opts.Phases(),
		S:      superRounds(n),
		iters:  forest.CVIterations(int64(n)),
		trials: opts.SelectionTrials(),
		n:      n,
	}
	pl.cascInT = make([]int64, pl.phases)
	pl.lvlAt = make([]int64, pl.phases*treeHeightBound)
	pl.decAt = make([]int64, pl.phases*treeHeightBound)
	pl.lvlByVal = make([]int64, pl.phases*(treeHeightBound+1))
	if opts.Probe != nil {
		pl.phaseIDs = make([]obs.PhaseID, pl.phases)
		for p := range pl.phaseIDs {
			pl.phaseIDs[p] = opts.Probe.Phase(fmt.Sprintf("stage1/p%02d", p+1))
		}
	}
	add := func(kind sOpKind, tag sTag, arg int32) {
		pl.ops = append(pl.ops, sOp{kind: kind, tag: tag, arg: arg})
	}
	ffetch := func(tag sTag, arg int32) {
		pl.ops = append(pl.ops,
			sOp{kind: sBcast, ff: true, tag: tag, arg: arg},
			sOp{kind: sCross, ff: true, tag: tag, arg: arg},
			sOp{kind: sCvg, ff: true, tag: tag, arg: arg},
		)
	}
	// Step 0-1: boundary discovery and early exit.
	add(sBoundary, tBoundary, 0)
	add(sCvg, tHasCross, 0)
	add(sBcast, tEarlyDec, 0)
	// Steps 2-3: out-edge selection (forest decomposition + heaviest edge
	// in the deterministic variant; weighted random trials otherwise),
	// then designation.
	if opts.Variant == Randomized {
		for t := 0; t < pl.trials; t++ {
			add(sCvg, tTrialPick, int32(t))
			add(sBcast, tTrialAnn, int32(t))
			add(sCvg, tTrialWeight, int32(t))
		}
	} else {
		pl.fdParticipants = make([]int64, pl.phases)
		pl.fdStable = make([]int64, pl.phases*pl.S)
		for l := 0; l < pl.S; l++ {
			add(sBcast, tFDStatus, int32(l))
			add(sCross, tFDActivity, int32(l))
			add(sCvg, tFDAgg, int32(l))
		}
	}
	pl.fdEnd = len(pl.ops)
	add(sBcast, tSel, 0)
	add(sCvg, tCand, 0)
	add(sBcast, tWinner, 0)
	add(sCross, tFSelect, 0)
	add(sCvg, tMutual, 0)
	add(sBcast, tDrop, 0)
	add(sCross, tWithdraw, 0)
	add(sCvg, tKids, 0)
	// Step 4: Cole-Vishkin 3-coloring.
	for k := 0; k < pl.iters; k++ {
		ffetch(tCVIter, int32(k))
	}
	for _, drop := range []int32{5, 4, 3} {
		ffetch(tShift, drop)
		ffetch(tRecolor, drop)
	}
	// Steps 5-6: child reports and per-color weight sums.
	add(sBcast, tReport, 0)
	add(sCross, tReportX, 0)
	add(sCvg, tColorSums, 0)
	// Step 7: marking.
	ffetch(tMarkPC, 0)
	add(sBcast, tMarkDec, 0)
	add(sCross, tMarkX, 0)
	add(sCvg, tByParent, 0)
	add(sCvg, tAnyKid, 0)
	add(sBcast, tOutMkd, 0)
	// Steps 8-10: levels, parity weights, contraction decision.
	for hop := 0; hop < treeHeightBound; hop++ {
		add(sBcast, tLvlAnn, int32(hop))
		add(sCross, tLvlX, int32(hop))
		add(sCvg, tLvlUp, int32(hop))
	}
	for hop := treeHeightBound; hop >= 1; hop-- {
		add(sBcast, tParAnn, int32(hop))
		add(sCross, tParX, int32(hop))
		add(sCvg, tParUp, int32(hop))
	}
	for hop := 0; hop < treeHeightBound; hop++ {
		add(sBcast, tDecAnn, int32(hop))
		add(sCross, tDecX, int32(hop))
		add(sCvg, tDecUp, int32(hop))
	}
	// Step 11: contract.
	add(sBcast, tContract, 0)
	add(sFlip, tFlip, 0)
	add(sCross, tAttach, 0)
	return pl
}

// NewNode creates the StepProgram for one node. onDone is invoked exactly
// once, at the round Stage I completes at this node, with the node's
// Outcome; its Status becomes the node's next scheduling instruction
// (Done for standalone runs, Become(stageII) for the full tester).
func (pl *StageIPlan) NewNode(onDone func(api *congest.StepAPI, out *Outcome) congest.Status) congest.StepProgram {
	s := pl.allocNode()
	s.plan = pl
	s.onDone = onDone
	return s
}

// allocNode hands out the next nodeSlab entry (see the field comment).
func (pl *StageIPlan) allocNode() *stageINode {
	if pl.nodeSlab == nil {
		pl.nodeSlab = make([]stageINode, pl.n)
	}
	if pl.nodeNext >= len(pl.nodeSlab) {
		return &stageINode{}
	}
	s := &pl.nodeSlab[pl.nodeNext]
	pl.nodeNext++
	return s
}

// stageINode is the per-node interpreter state plus the mirror of the
// blocking state struct (state.go), with port-indexed slices in place of
// maps and reusable scratch buffers in place of per-phase allocation.
type stageINode struct {
	// The dispatch cluster — everything Step touches before entering an
	// op — is packed into the struct's first cache line: with ~19 lines
	// of interpreter state per node and 10⁵-node due lists, the first
	// field loads dominate the Stage I profile, so the flags and scalars
	// the per-wake prologue reads must not be scattered (DESIGN.md §5).
	plan   *StageIPlan
	onDone func(api *congest.StepAPI, out *Outcome) congest.Status

	started   bool
	finished  bool
	restored  bool // decoded from a checkpoint; closures need reattaching
	inOp      bool
	fdJoined  bool // entered this phase's forest decomposition (§10)
	fdDirty   bool // current super-round changed local FD state
	fdFF      bool // fast-forwarding the remaining super-rounds
	cascFF    bool // fast-forwarding a cascade loop's quiet tail (§10)
	phase     int  // 1-based
	pc        int
	D         int
	fdFFUntil int // round the current fast-forward window ends at

	phasesRun   int
	earlyExit   bool
	fdCleanMask uint64 // bit l set: super-round l was clean at this node

	bd congest.BroadcastDownStep
	cv congest.ConvergecastStep

	// Mirror of the blocking per-node state.
	rootID   int64
	tree     congest.Tree
	rejected bool

	nbrRoot []int64 // per port: neighbor's part root this phase
	cross   []bool  // per port: crosses a part boundary

	isU         bool
	uPort       int
	fChild      []bool  // per port: an F-child's u^j sits there
	fChildColor []int64 // per port: child color (after report)
	fChildWt    []int64 // per port: aux edge weight
	fChildMark  []bool  // per port: marked aux edge

	partHasOut   bool
	partTarget   int64
	partWeight   int64
	partMutual   bool
	partColor    int64
	partPreShift int64
	partHasKids  bool
	partOutMkd   bool
	partInT      bool
	partLevel    int
	partContract bool

	// Forest-decomposition state (root-only where noted).
	fdActive   bool         // root
	fdResolved bool         // root
	watch      []int64      // root: roots to resolve directions for
	pending    []rootWeight // root: neighbors at inactivation time
	outs       []rootWeight // root: resolved candidate out-edges
	actPort    []bool       // per port: latest activity flag
	actSeen    []bool       // per port: activity flag received
	stStatus   statusMsg    // this super-round's status broadcast
	fdCombine  func(own congest.Message, children []congest.Message) congest.Message

	// Randomized-variant selection state (root-only best tracking plus a
	// reusable cross-port scratch buffer and the RNG-bearing combiner).
	bestW        int64
	bestTarget   int64
	crossScratch []int
	trialCombine func(own congest.Message, children []congest.Message) congest.Message

	// Scratch buffers for decompAgg payloads (see mergeFD).
	ownEntries []rootWeight
	ownWatch   []rootFlag
	aggEntries []rootWeight
	aggWatch   []rootFlag
	fdLists    [][]rootWeight
	fdWatches  [][]rootFlag
	fdIdx      []int

	// Cached boxed activity payloads (rebuilt when rootID changes).
	actMsgRoot int64
	actMsgT    congest.Message
	actMsgF    congest.Message

	// Inter-op message registers.
	opMsg     congest.Message // last broadcast result (fFetch got, level/parity msg)
	crossGot  congest.Message // cross-round pickup (fFetch fromParent, cascades)
	crossPair pairMsg         // parity cascade sum of marked-child contributions
	gotSel    selMsg          // designate: broadcast selection
	cvRes     congest.Message // last convergecast result (subtree aggregate)
	dropDec   int64           // designate: mutual-selection drop decision
	mbParent  int64           // mark: marked-by-parent flag
	mkDec     markMsg         // mark: broadcast decision
	mkPC      int64           // root: parent color fetched for marking
	mkPCOK    bool            // root: parent color present
	sums      colorSums       // root: per-color incoming weights
	acc       pairMsg         // root: parity-weight accumulator
	parity    int64           // root: contraction parity decision
	newRoot   int64           // contract: adopted root id
	merging   bool            // contract: this part merges
	flipped   bool            // contract: orientation already flipped
	deadline  int             // flip window deadline
}

// Step implements congest.StepProgram: it advances through the op script,
// starting follow-up ops in the same wake whenever an op completes (ops
// complete exactly at their deadline, and the next op begins there).
func (s *stageINode) Step(api *congest.StepAPI, inbox []congest.Inbound) congest.Status {
	if !s.started {
		s.started = true
		s.initNode(api)
	}
	if s.restored {
		s.restored = false
		s.reattach(api)
	}
	for {
		if s.finished {
			out := &Outcome{
				RootID:    s.rootID,
				Tree:      s.tree,
				Rejected:  s.rejected,
				PhasesRun: s.phasesRun,
				EarlyExit: s.earlyExit,
			}
			return s.onDone(api, out)
		}
		if s.fdFF {
			// Inside a batched super-round window (defensive: no message
			// can reach a windowed node, so only the deadline wakes it).
			if api.Round() < s.fdFFUntil {
				return congest.Sleep(s.fdFFUntil)
			}
			s.fdFF = false
			s.fdFinish(api)
		}
		if s.cascFF {
			// Inside a cascade quiet-tail window; unlike the FD window
			// there is no post-loop glue to run at the wake round.
			if api.Round() < s.fdFFUntil {
				return congest.Sleep(s.fdFFUntil)
			}
			s.cascFF = false
		}
		op := &s.plan.ops[s.pc]
		switch op.kind {
		case sBoundary:
			if !s.inOp {
				s.beginPhase(api)
				api.SendAll(rootAnnounce{Root: s.rootID})
				s.inOp = true
				return congest.Running()
			}
			for _, in := range inbox {
				s.nbrRoot[in.Port] = in.Msg.(rootAnnounce).Root
				s.cross[in.Port] = s.nbrRoot[in.Port] != s.rootID
			}
			s.inOp = false

		case sBcast:
			if !s.inOp {
				if op.tag == tFDStatus && s.fdWindow(api, int(op.arg)) {
					return congest.Sleep(s.fdFFUntil)
				}
				if s.cascWindow(api, op) {
					return congest.Sleep(s.fdFFUntil)
				}
				if !s.bd.Begin(api, s.tree, api.Round()+s.D, s.prepBcast(api, op), nil) {
					s.inOp = true
					return s.bd.Wake()
				}
			} else if !s.bd.Feed(api, inbox) {
				return s.bd.Wake()
			} else {
				s.inOp = false
			}
			got, ok := s.bd.Result()
			if !ok {
				panic(fmt.Sprintf("partition: broadcast under-budgeted (node %d, D=%d)", api.Index(), s.D))
			}
			s.absorbBcast(api, op, got)
			if s.finished {
				continue
			}

		case sCvg:
			if !s.inOp {
				own, combine := s.prepCvg(api, op)
				if !s.cv.Begin(api, s.tree, api.Round()+s.D, own, combine) {
					s.inOp = true
					return s.cv.Wake()
				}
			} else if !s.cv.Feed(api, inbox) {
				return s.cv.Wake()
			} else {
				s.inOp = false
			}
			agg, ok := s.cv.Result()
			if !ok {
				panic(fmt.Sprintf("partition: convergecast under-budgeted (node %d, D=%d)", api.Index(), s.D))
			}
			s.absorbCvg(api, op, agg)

		case sCross:
			if !s.inOp {
				s.prepCross(api, op)
				s.inOp = true
				return congest.Running()
			}
			s.inOp = false
			s.absorbCross(api, op, inbox)

		case sFlip:
			if !s.inOp {
				s.beginFlip(api)
				s.inOp = true
				if api.Round() < s.deadline {
					return congest.Sleep(s.deadline)
				}
			} else if !s.feedFlip(api, inbox) {
				return congest.Sleep(s.deadline)
			}
			s.inOp = false
		}
		s.pc++
		if s.pc == len(s.plan.ops) {
			s.pc = 0
			if s.phase == s.plan.phases {
				s.finished = true
			}
		}
	}
}

func (s *stageINode) initNode(api *congest.StepAPI) {
	deg := api.Degree()
	s.rootID = api.ID()
	s.tree = congest.Tree{ParentPort: -1}
	s.uPort = -1
	s.nbrRoot = make([]int64, deg)
	s.cross = make([]bool, deg)
	s.fChild = make([]bool, deg)
	s.fChildColor = make([]int64, deg)
	s.fChildWt = make([]int64, deg)
	s.fChildMark = make([]bool, deg)
	s.actPort = make([]bool, deg)
	s.actSeen = make([]bool, deg)
	s.fdCombine = func(own congest.Message, children []congest.Message) congest.Message {
		return s.mergeFD(own.(decompAgg), children)
	}
	s.trialCombine = func(own congest.Message, children []congest.Message) congest.Message {
		return combineTrial(api.Rand(), own, children)
	}
}

// beginPhase mirrors state.resetPhase plus the per-phase bookkeeping of
// RunStageI's loop.
func (s *stageINode) beginPhase(api *congest.StepAPI) {
	s.phase++
	s.phasesRun++
	s.D = phaseBudget(s.phase)
	if ids := s.plan.phaseIDs; ids != nil {
		api.PhaseEnter(ids[s.phase-1])
	}
	for p := range s.nbrRoot {
		s.nbrRoot[p] = -1 // boundary discovery treats silent ports as absent
		s.cross[p] = false
		s.fChild[p] = false
		s.fChildColor[p] = 0
		s.fChildWt[p] = 0
		s.fChildMark[p] = false
		s.actPort[p] = false
		s.actSeen[p] = false
	}
	s.isU = false
	s.uPort = -1
	s.partHasOut = false
	s.partTarget = 0
	s.partWeight = 0
	s.partMutual = false
	s.partColor = 0
	s.partPreShift = 0
	s.partHasKids = false
	s.partOutMkd = false
	s.partInT = false
	s.partLevel = -1
	s.partContract = false
	s.fdActive = true
	s.fdResolved = false
	s.watch = s.watch[:0]
	s.pending = s.pending[:0]
	s.outs = s.outs[:0]
	s.fdJoined = false
	s.fdDirty = false
	s.fdCleanMask = 0
	s.fdFF = false
	s.cascFF = false
	s.fdFFUntil = 0
	s.mkPCOK = false
	s.sums = colorSums{}
	s.acc = pairMsg{}
	s.parity = -1
	s.merging = false
	s.flipped = false
	s.bestW = -1
	s.bestTarget = 0
}

// markedChildPorts iterates ports with a marked child edge in ascending
// order (the slice mirror of state.markedChildPorts).
func (s *stageINode) eachMarkedChild(f func(p int)) {
	for p, m := range s.fChildMark {
		if m {
			f(p)
		}
	}
}

// prepBcast returns the root payload for a broadcast op (non-root values
// are ignored by BroadcastDown, mirroring the blocking call sites). All
// prepare-time side effects are root-only, so non-root nodes skip payload
// construction entirely and avoid the interface boxing.
func (s *stageINode) prepBcast(api *congest.StepAPI, op *sOp) congest.Message {
	if !s.tree.IsRoot() {
		return nil
	}
	if op.ff {
		// All fFetch sites broadcast the part color; the first CV iteration
		// also initializes it (colorPart entry glue).
		if op.tag == tCVIter && op.arg == 0 && s.tree.IsRoot() {
			s.partColor = s.rootID
		}
		return vmsg(s.partColor)
	}
	switch op.tag {
	case tEarlyDec:
		var any int64
		if v, ok := s.cvRes.(valMsg); ok {
			any = v.V
		}
		return vmsg(any)
	case tFDStatus:
		return smsg(s.fdActive, s.watch)
	case tTrialAnn:
		if tm, ok := s.cvRes.(trialMsg); ok {
			return vmsg(tm.Target)
		}
		return noneMsg{}
	case tSel:
		return selMsg{HasOut: s.partHasOut, Target: s.partTarget, Weight: s.partWeight}
	case tWinner:
		if s.tree.IsRoot() {
			return s.cvRes
		}
		return noneMsg{}
	case tDrop:
		return vmsg(s.dropDec)
	case tReport:
		return reportMsg{Color: s.partColor, Weight: s.partWeight}
	case tMarkDec:
		var dec markMsg
		if s.tree.IsRoot() {
			parentColor := int64(0)
			if s.mkPCOK && s.partHasOut {
				parentColor = s.mkPC
			}
			switch s.partColor {
			case 1:
				if s.partHasOut && s.partWeight >= s.sums.W[1]+s.sums.W[2]+s.sums.W[3] {
					dec.MarkOut = true
				} else {
					dec.InClass = markAllIn
				}
			case 2:
				if s.partHasOut && parentColor == 3 && s.partWeight >= s.sums.W[3] {
					dec.MarkOut = true
				} else {
					dec.InClass = 3
				}
			}
		}
		return dec
	case tOutMkd:
		var v int64
		if s.tree.IsRoot() && s.partOutMkd {
			v = 1
		}
		return vmsg(v)
	case tLvlAnn:
		if op.arg == 0 && s.tree.IsRoot() && s.partInT && !s.partOutMkd {
			s.partLevel = 0 // computeLevels entry glue
			s.recordLevel(0)
		}
		if s.tree.IsRoot() && s.partLevel == int(op.arg) {
			return vmsg(int64(s.partLevel))
		}
		return noneMsg{}
	case tParAnn:
		if int(op.arg) == treeHeightBound && s.tree.IsRoot() {
			// aggregateParityWeights entry glue.
			s.acc = pairMsg{}
			if s.partInT && s.partOutMkd && s.partLevel > 0 {
				if s.partLevel%2 == 0 {
					s.acc.A = s.partWeight
				} else {
					s.acc.B = s.partWeight
				}
			}
		}
		if s.tree.IsRoot() && s.partLevel == int(op.arg) && s.partOutMkd {
			return s.acc
		}
		return noneMsg{}
	case tDecAnn:
		if op.arg == 0 && s.tree.IsRoot() {
			// decideContraction entry glue.
			s.parity = -1
			if s.partInT && s.partLevel == 0 {
				if s.acc.A >= s.acc.B {
					s.parity = 0
				} else {
					s.parity = 1
				}
				atomic.AddInt64(&s.plan.decAt[(s.phase-1)*treeHeightBound], 1)
			}
		}
		if s.tree.IsRoot() && s.partLevel == int(op.arg) && s.parity >= 0 {
			return vmsg(s.parity)
		}
		return noneMsg{}
	case tContract:
		if s.tree.IsRoot() {
			// decideContraction exit glue.
			if s.partInT && s.partOutMkd && s.partLevel > 0 && s.parity >= 0 {
				even := s.partLevel%2 == 0
				s.partContract = (even && s.parity == 0) || (!even && s.parity == 1)
			}
			if s.partContract {
				return vmsg(s.partTarget)
			}
		}
		return noneMsg{}
	}
	panic("partition: unknown bcast tag")
}

// absorbBcast consumes the broadcast result at every node.
func (s *stageINode) absorbBcast(api *congest.StepAPI, op *sOp, got congest.Message) {
	if op.ff {
		s.opMsg = got
		return
	}
	switch op.tag {
	case tEarlyDec:
		if got.(valMsg).V == 0 {
			s.earlyExit = true
			s.finished = true
		} else if s.plan.opts.Variant == Deterministic {
			// This node runs the phase's forest decomposition; register it
			// so fdWindow can tell when every participant is at the fixed
			// point. The counter settles at this op's deadline barrier,
			// strictly before the first read (super-round 3's first round).
			s.fdJoined = true
			atomic.AddInt64(&s.plan.fdParticipants[s.phase-1], 1)
		}
	case tFDStatus:
		g := got.(statusMsg)
		if g.Active != s.stStatus.Active || !slices.Equal(g.Watch, s.stStatus.Watch) {
			s.fdDirty = true
		}
		s.stStatus = g
	case tTrialAnn:
		s.opMsg = got // the drawn target (valMsg) or noneMsg
	case tSel:
		s.gotSel = got.(selMsg)
	case tWinner:
		if v, ok := got.(valMsg); ok && s.gotSel.HasOut && v.V == api.ID() {
			s.isU = true
			for p, c := range s.cross {
				if c && s.nbrRoot[p] == s.gotSel.Target {
					s.uPort = p
					break
				}
			}
		}
	case tDrop:
		if got.(valMsg).V == 1 && s.isU {
			s.isU = false // designation withdrawn
		}
		s.dropDec = got.(valMsg).V
	case tReport:
		s.opMsg = got
	case tMarkDec:
		s.mkDec = got.(markMsg)
	case tOutMkd:
		s.partOutMkd = got.(valMsg).V == 1
	case tLvlAnn, tParAnn, tDecAnn:
		s.opMsg = got
	case tContract:
		if v, ok := got.(valMsg); ok {
			s.newRoot, s.merging = v.V, true
		} else {
			s.newRoot, s.merging = 0, false
		}
	}
}

// prepCvg returns this node's contribution and the combiner for a
// convergecast op.
func (s *stageINode) prepCvg(api *congest.StepAPI, op *sOp) (congest.Message, func(congest.Message, []congest.Message) congest.Message) {
	if op.ff {
		return s.crossGot, combineFirst
	}
	switch op.tag {
	case tHasCross:
		var has int64
		for _, c := range s.cross {
			if c {
				has = 1
			}
		}
		return vmsg(has), combineOr
	case tFDAgg:
		own := decompAgg{}
		s.ownEntries = s.ownEntries[:0]
		for p, c := range s.cross {
			if !(c && s.actSeen[p] && s.actPort[p]) {
				continue
			}
			root := s.nbrRoot[p]
			// Insert into the root-sorted entry list (degree is small).
			i := len(s.ownEntries)
			for i > 0 && s.ownEntries[i-1].Root > root {
				i--
			}
			if i > 0 && s.ownEntries[i-1].Root == root {
				s.ownEntries[i-1].Weight++
				continue
			}
			s.ownEntries = append(s.ownEntries, rootWeight{})
			copy(s.ownEntries[i+1:], s.ownEntries[i:])
			s.ownEntries[i] = rootWeight{Root: root, Weight: 1}
		}
		own.Entries = s.ownEntries
		s.ownWatch = s.ownWatch[:0]
		for _, wr := range s.stStatus.Watch {
			for p, c := range s.cross {
				if c && s.actSeen[p] && s.nbrRoot[p] == wr {
					s.ownWatch = append(s.ownWatch, rootFlag{Root: wr, Active: s.actPort[p]})
					break
				}
			}
		}
		own.Watch = s.ownWatch
		if len(own.Entries) == 0 && len(own.Watch) == 0 {
			return emptyDecomp, s.fdCombine // interior nodes: no boxing
		}
		return own, s.fdCombine
	case tTrialPick:
		// Mirror of selectRandomized step (1): each node draws a uniform
		// incident cut edge; the convergecast performs the weighted
		// reservoir pick (combineTrial draws the same randomness in the
		// same program order as the blocking combiner).
		s.crossScratch = s.crossScratch[:0]
		for p, c := range s.cross {
			if c {
				s.crossScratch = append(s.crossScratch, p)
			}
		}
		if len(s.crossScratch) > 0 {
			p := s.crossScratch[api.Rand().Intn(len(s.crossScratch))]
			return trialMsg{
				NodeID: api.ID(),
				Target: s.nbrRoot[p],
				Degree: int64(len(s.crossScratch)),
			}, s.trialCombine
		}
		return noneMsg{}, s.trialCombine
	case tTrialWeight:
		// Step (3): count this node's edges into the announced target.
		cnt := int64(0)
		if tv, ok := s.opMsg.(valMsg); ok {
			for p, c := range s.cross {
				if c && s.nbrRoot[p] == tv.V {
					cnt++
				}
			}
		}
		return vmsg(cnt), combineSum
	case tCand:
		if s.gotSel.HasOut {
			for p, c := range s.cross {
				if c && s.nbrRoot[p] == s.gotSel.Target {
					return vmsg(api.ID()), combineMin
				}
			}
		}
		return noneMsg{}, combineMin
	case tMutual:
		var mutual int64
		for p, f := range s.fChild {
			if f && s.gotSel.HasOut && s.nbrRoot[p] == s.gotSel.Target {
				mutual = 1
			}
		}
		return vmsg(mutual), combineOr
	case tKids:
		var kids int64
		for _, f := range s.fChild {
			if f {
				kids++
			}
		}
		return vmsg(kids), combineSum
	case tColorSums:
		own := colorSums{}
		for p, f := range s.fChild {
			if !f {
				continue
			}
			c := s.fChildColor[p]
			if c >= 1 && c <= 3 {
				own.W[c] += s.fChildWt[p]
			}
		}
		if own == (colorSums{}) {
			return zeroColorSums, combineColorSums
		}
		return own, combineColorSums
	case tByParent:
		return vmsg(s.mbParent), combineOr
	case tAnyKid:
		var has int64
		s.eachMarkedChild(func(int) { has = 1 })
		return vmsg(has), combineOr
	case tLvlUp, tDecUp:
		return s.crossGot, combineFirst
	case tParUp:
		if s.crossPair == (pairMsg{}) {
			return zeroPair, combinePairSum
		}
		return s.crossPair, combinePairSum
	}
	panic("partition: unknown cvg tag")
}

// absorbCvg consumes the convergecast result (the root sees the full
// aggregate, every other node its subtree aggregate).
func (s *stageINode) absorbCvg(api *congest.StepAPI, op *sOp, agg congest.Message) {
	s.cvRes = agg
	root := s.tree.IsRoot()
	if op.ff {
		if !root {
			return
		}
		res, isVal := agg.(valMsg)
		switch op.tag {
		case tCVIter:
			parent := forest.CVRootParent(s.partColor)
			if isVal && s.partHasOut {
				parent = res.V
			}
			s.partColor = forest.CVStep(s.partColor, parent)
		case tShift:
			s.partPreShift = s.partColor
			if isVal && s.partHasOut {
				s.partColor = res.V
			} else if s.partColor == 0 {
				s.partColor = 1
			} else {
				s.partColor = 0
			}
		case tRecolor:
			if s.partColor == int64(op.arg) {
				used := [6]bool{}
				if isVal && s.partHasOut {
					used[res.V] = true
				}
				if s.partHasKids {
					used[s.partPreShift] = true
				}
				for c := int64(0); c < 3; c++ {
					if !used[c] {
						s.partColor = c
						break
					}
				}
			}
			if op.arg == 3 {
				s.partColor++ // colorPart exit glue: colors 1..3
			}
		case tMarkPC:
			s.mkPC, s.mkPCOK = 0, false
			if isVal {
				s.mkPC, s.mkPCOK = res.V, true
			}
		}
		return
	}
	switch op.tag {
	case tFDAgg:
		if root {
			s.fdRootDecision(api, agg.(decompAgg), int(op.arg))
		}
		if l := int(op.arg); s.fdJoined && !s.fdDirty && l >= 1 && l < 64 {
			// Super-round l replayed super-round l-1 at this node verbatim;
			// fdWindow reads the tally two super-rounds later (DESIGN.md
			// §10), so the atomic add below settles well before any read.
			s.fdCleanMask |= 1 << uint(l)
			atomic.AddInt64(&s.plan.fdStable[(s.phase-1)*s.plan.S+l], 1)
		}
		if int(op.arg) == s.plan.S-1 {
			s.fdFinish(api)
		}
	case tTrialWeight:
		if root {
			if tv, ok := s.opMsg.(valMsg); ok {
				if w := agg.(valMsg).V; w > s.bestW {
					s.bestW, s.bestTarget = w, tv.V
				}
			}
			if int(op.arg) == s.plan.trials-1 && s.bestW > 0 {
				// selectRandomized exit glue: the maximum-weight draw wins.
				s.partHasOut = true
				s.partTarget = s.bestTarget
				s.partWeight = s.bestW
			}
		}
	case tMutual:
		s.dropDec = 0
		if root && agg.(valMsg).V == 1 && s.rootID > s.gotSel.Target {
			s.partHasOut = false
			s.partMutual = true
			s.dropDec = 1
		}
	case tKids:
		if root {
			s.partHasKids = agg.(valMsg).V > 0
		}
	case tColorSums:
		if root {
			s.sums = agg.(colorSums)
		}
	case tByParent:
		if root {
			s.partOutMkd = s.mkDec.MarkOut || agg.(valMsg).V == 1
		}
	case tAnyKid:
		if root {
			s.partInT = s.partOutMkd || agg.(valMsg).V == 1
			if s.partInT {
				atomic.AddInt64(&s.plan.cascInT[s.phase-1], 1)
			}
		}
	case tLvlUp:
		if root && s.partLevel == -1 {
			if v, ok := agg.(valMsg); ok {
				s.partLevel = int(v.V)
				s.recordLevel(int(op.arg))
			}
		}
	case tParUp:
		if root {
			sub := agg.(pairMsg)
			s.acc.A += sub.A
			s.acc.B += sub.B
		}
	case tDecUp:
		if root && s.parity == -1 {
			if v, ok := agg.(valMsg); ok {
				s.parity = v.V
				atomic.AddInt64(&s.plan.decAt[(s.phase-1)*treeHeightBound+int(op.arg)], 1)
			}
		}
	}
}

// fdRootDecision mirrors the root decision logic of the forest
// decomposition super-round loop.
func (s *stageINode) fdRootDecision(api *congest.StepAPI, agg decompAgg, l int) {
	alpha := s.plan.opts.Alpha
	if s.fdActive {
		if !agg.TooMany && len(agg.Entries) <= 3*alpha {
			s.fdDirty = true
			s.fdActive = false
			s.pending = append(s.pending[:0], agg.Entries...)
			s.watch = s.watch[:0]
			for _, e := range s.pending {
				s.watch = append(s.watch, e.Root)
			}
		}
	} else if len(s.watch) > 0 {
		// Resolve edge directions one super-round after inactivation.
		s.fdDirty = true
		for _, e := range s.pending {
			active := false
			for _, wf := range agg.Watch {
				if wf.Root == e.Root {
					active = wf.Active
					break
				}
			}
			if active || s.rootID < e.Root {
				s.outs = append(s.outs, e)
			}
		}
		s.watch = s.watch[:0]
		s.fdResolved = true
	}
}

// fdFinish mirrors the post-loop logic of forestDecomposition (reject
// evidence or conservative resolution) plus storeOuts/selectHeaviest.
func (s *stageINode) fdFinish(api *congest.StepAPI) {
	if !s.tree.IsRoot() {
		return
	}
	if s.fdActive {
		s.rejected = true
		api.Output(congest.VerdictReject)
	} else if !s.fdResolved && len(s.watch) > 0 {
		for _, e := range s.pending {
			if s.rootID < e.Root {
				s.outs = append(s.outs, e)
			}
		}
	}
	// storeOuts: keep the heaviest candidate, ties by lower root id.
	s.partHasOut = false
	for _, e := range s.outs {
		if !s.partHasOut || e.Weight > s.partWeight ||
			(e.Weight == s.partWeight && e.Root < s.partTarget) {
			s.partHasOut = true
			s.partTarget = e.Root
			s.partWeight = e.Weight
		}
	}
}

// fdWindow runs at the first round of forest-decomposition super-round l
// and decides whether the phase's remaining super-rounds can be
// fast-forwarded (DESIGN.md §10). Once every participant of the phase has
// recorded super-round l-2 as clean, the decomposition is at a fixed
// point: super-rounds l-1, l, ... replay the same messages and decisions
// verbatim, so executing them can be replaced by charging their traffic
// and sleeping. The node jumps its program counter past the loop and
// wakes at exactly the round the unbatched schedule would run fdFinish,
// which keeps verdict rounds — and hence StopOnReject cuts — identical.
// The counter slot read here was last written one full super-round (2D+1
// rounds, hence at least one engine barrier) earlier, so the read is
// race-free and every participant takes the same branch at the same
// round: lockstep is preserved.
func (s *stageINode) fdWindow(api *congest.StepAPI, l int) bool {
	s.fdDirty = false // super-round l starts here
	pl := s.plan
	if pl.opts.NoSuperRoundBatching || l < 3 || l-2 > 63 {
		return false
	}
	p := s.phase - 1
	if atomic.LoadInt64(&pl.fdStable[p*pl.S+(l-2)]) != atomic.LoadInt64(&pl.fdParticipants[p]) {
		return false
	}
	// Per skipped super-round this node would send: the status broadcast
	// to each tree child, one activity message per cross edge, and — at
	// every non-root — one convergecast aggregate to the parent. All
	// three payloads are the ones of the just-completed super-round
	// (that is what "fixed point" means), so their sizes are exact.
	K := pl.S - l
	nCross := 0
	for _, c := range s.cross {
		if c {
			nCross++
		}
	}
	msgs := int64(len(s.tree.ChildPorts) + nCross)
	bits := int64(len(s.tree.ChildPorts)) * int64(s.stStatus.Bits())
	if nCross > 0 {
		bits += int64(nCross) * int64(activityMsg{Root: s.rootID, Active: s.stStatus.Active}.Bits())
	}
	if !s.tree.IsRoot() {
		msgs++
		bits += int64(s.cvRes.Bits())
	}
	api.ChargeTraffic(int64(K)*msgs, int64(K)*bits)
	s.fdFF = true
	s.fdFFUntil = api.Round() + K*(2*s.D+1)
	s.pc = pl.fdEnd
	return true
}

// recordLevel tallies a just-assigned part level for the cascade windows
// (DESIGN.md §10): the per-hop slot feeds the level loop's quiet-tail
// predicate, the per-value slot the parity loop's skip target. Root-only
// (levels live at part roots).
func (s *stageINode) recordLevel(hop int) {
	pl := s.plan
	p := s.phase - 1
	atomic.AddInt64(&pl.lvlAt[p*treeHeightBound+hop], 1)
	if s.partLevel <= treeHeightBound {
		atomic.AddInt64(&pl.lvlByVal[p*(treeHeightBound+1)+s.partLevel], 1)
	}
}

// cascWindow runs at the announcement round of a cascade-loop hop and
// decides whether the loop's remaining inert hops can be fast-forwarded
// (DESIGN.md §10). A hop of the level or parity-decision loop is provably
// inert once every part of the marked trees T has its level (respectively
// contraction parity) assigned: assignments recorded through hop j-2 bound
// every part level by j-1, so no part announces at hop >= j and no state
// changes again. The parity-weight loop iterates hops downward with
// announcements only at hops maxLevel..1, so its quiet PREFIX is skipped:
// the skip target is the highest assigned level, read from tallies that
// settled when the level loop ended. An inert hop still carries the
// broadcast/convergecast scaffolding traffic — a noneMsg to every tree
// child and one all-none aggregate (noneMsg, or the zero pairMsg in the
// parity-weight loop) to the parent — which is charged exactly, K hops at
// once. Every tally slot read here was last written at least one full hop
// (2D+1 rounds, hence at least one engine barrier) earlier, so all nodes
// read the same settled values at the same round and take the window in
// lockstep, exactly as fdWindow does.
func (s *stageINode) cascWindow(api *congest.StepAPI, op *sOp) bool {
	pl := s.plan
	if pl.opts.NoSuperRoundBatching || op.ff {
		return false
	}
	p := s.phase - 1
	hop := int(op.arg)
	K := 0
	switch op.tag {
	case tLvlAnn, tDecAnn:
		if hop < 2 {
			return false
		}
		tally := pl.lvlAt
		if op.tag == tDecAnn {
			tally = pl.decAt
		}
		var sum int64
		for h := 0; h <= hop-2; h++ {
			sum += atomic.LoadInt64(&tally[p*treeHeightBound+h])
		}
		if sum != atomic.LoadInt64(&pl.cascInT[p]) {
			return false
		}
		K = treeHeightBound - hop
	case tParAnn:
		if hop >= treeHeightBound {
			return false // hop H runs: it carries the loop's entry glue
		}
		M := 0
		for L := treeHeightBound; L >= 1; L-- {
			if atomic.LoadInt64(&pl.lvlByVal[p*(treeHeightBound+1)+L]) > 0 {
				M = L
				break
			}
		}
		K = hop - M
	default:
		return false
	}
	if K <= 0 {
		return false
	}
	kids := int64(len(s.tree.ChildPorts))
	msgs := kids
	bits := kids * int64(noneMsg{}.Bits())
	if !s.tree.IsRoot() {
		msgs++
		if op.tag == tParAnn {
			bits += int64(pairMsg{}.Bits())
		} else {
			bits += int64(noneMsg{}.Bits())
		}
	}
	api.ChargeTraffic(int64(K)*msgs, int64(K)*bits)
	// Mirror the state the skipped inert hops would have left behind.
	s.opMsg = noneMsg{}
	if op.tag == tParAnn {
		s.cvRes = zeroPair
		s.crossPair = pairMsg{}
	} else {
		s.crossGot = noneMsg{}
		s.cvRes = noneMsg{}
	}
	s.cascFF = true
	s.fdFFUntil = api.Round() + K*(2*s.D+1)
	s.pc += 3 * K
	return true
}

// mergeFD is the allocation-lean equivalent of mergeDecomp for sorted
// inputs: every decompAgg entry/watch list is root-sorted by construction,
// so a k-way merge produces the identical capped, sorted aggregate.
func (s *stageINode) mergeFD(own decompAgg, children []congest.Message) congest.Message {
	limit := 3*s.plan.opts.Alpha + 1
	s.fdLists = append(s.fdLists[:0], own.Entries)
	s.fdWatches = append(s.fdWatches[:0], own.Watch)
	tooMany := own.TooMany
	for _, c := range children {
		a, ok := c.(decompAgg)
		if !ok {
			continue // noneMsg from non-contributing children
		}
		tooMany = tooMany || a.TooMany
		s.fdLists = append(s.fdLists, a.Entries)
		s.fdWatches = append(s.fdWatches, a.Watch)
	}
	out := decompAgg{TooMany: tooMany}
	s.aggEntries = s.aggEntries[:0]
	s.fdIdx = s.fdIdx[:0]
	for range s.fdLists {
		s.fdIdx = append(s.fdIdx, 0)
	}
	idx := s.fdIdx
	for {
		lo := int64(0)
		found := false
		for i, l := range s.fdLists {
			if idx[i] < len(l) && (!found || l[idx[i]].Root < lo) {
				lo, found = l[idx[i]].Root, true
			}
		}
		if !found {
			break
		}
		var w int64
		for i, l := range s.fdLists {
			if idx[i] < len(l) && l[idx[i]].Root == lo {
				w += l[idx[i]].Weight
				idx[i]++
			}
		}
		s.aggEntries = append(s.aggEntries, rootWeight{Root: lo, Weight: w})
	}
	if len(s.aggEntries) > limit {
		out.TooMany = true
		s.aggEntries = s.aggEntries[:limit]
	}
	out.Entries = s.aggEntries
	s.aggWatch = s.aggWatch[:0]
	for i := range idx {
		idx[i] = 0
	}
	for {
		lo := int64(0)
		found := false
		for i, l := range s.fdWatches {
			if idx[i] < len(l) && (!found || l[idx[i]].Root < lo) {
				lo, found = l[idx[i]].Root, true
			}
		}
		if !found {
			break
		}
		var f bool
		for i, l := range s.fdWatches {
			if idx[i] < len(l) && l[idx[i]].Root == lo {
				f = l[idx[i]].Active // duplicates agree (same broadcast flag)
				idx[i]++
			}
		}
		s.aggWatch = append(s.aggWatch, rootFlag{Root: lo, Active: f})
	}
	out.Watch = s.aggWatch
	if !out.TooMany && len(out.Entries) == 0 && len(out.Watch) == 0 {
		return emptyDecomp
	}
	return out
}

// prepCross performs this node's sends for a single cross-boundary round
// (the step counterpart of state.crossRound call sites, sends in
// ascending port order).
func (s *stageINode) prepCross(api *congest.StepAPI, op *sOp) {
	if op.ff {
		for p, f := range s.fChild {
			if f {
				api.Send(p, s.opMsg)
			}
		}
		return
	}
	switch op.tag {
	case tFDActivity:
		if s.actMsgRoot != s.rootID {
			// Re-box the two activity payload variants only when the part
			// root changed (once per contraction, not per super-round).
			s.actMsgT = activityMsg{Root: s.rootID, Active: true}
			s.actMsgF = activityMsg{Root: s.rootID, Active: false}
			s.actMsgRoot = s.rootID
		}
		m := s.actMsgF
		if s.stStatus.Active {
			m = s.actMsgT
		}
		for p, c := range s.cross {
			if c {
				api.Send(p, m)
			}
		}
	case tFSelect:
		if s.isU {
			api.Send(s.uPort, fSelect{ChildRoot: s.rootID})
		}
	case tWithdraw:
		if s.dropDec == 1 && s.uPort >= 0 {
			api.Send(s.uPort, edgeMarked{}) // reused as "withdraw" marker
		}
	case tReportX:
		if s.isU {
			rep := s.opMsg.(reportMsg)
			api.Send(s.uPort, childReport{Color: rep.Color, Weight: rep.Weight})
		}
	case tMarkX:
		for p, f := range s.fChild {
			if f && (s.mkDec.InClass == markAllIn || int64(s.mkDec.InClass) == s.fChildColor[p]) {
				s.fChildMark[p] = true
			}
		}
		// Sends in ascending port order (u^j's out-edge and child edges).
		for p, deg := 0, api.Degree(); p < deg; p++ {
			if (s.isU && s.mkDec.MarkOut && p == s.uPort) || s.fChildMark[p] {
				api.Send(p, edgeMarked{})
			}
		}
	case tLvlX, tDecX:
		if v, ok := s.opMsg.(valMsg); ok {
			fwd := vmsg(v.V + 1)
			if op.tag == tDecX {
				fwd = s.opMsg // parity forwarded unchanged
			}
			s.eachMarkedChild(func(p int) { api.Send(p, fwd) })
		}
	case tParX:
		if _, ok := s.opMsg.(pairMsg); ok && s.isU && s.partOutMkd {
			api.Send(s.uPort, s.opMsg)
		}
	case tAttach:
		if s.merging && s.isU {
			api.Send(s.uPort, attachMsg{})
		}
	}
}

// absorbCross consumes the messages of a cross-boundary round.
func (s *stageINode) absorbCross(api *congest.StepAPI, op *sOp, inbox []congest.Inbound) {
	if op.ff {
		s.crossGot = noneMsg{}
		for _, m := range inbox {
			if s.isU && m.Port == s.uPort {
				s.crossGot = m.Msg
			}
		}
		return
	}
	switch op.tag {
	case tFDActivity:
		for _, m := range inbox {
			am := m.Msg.(activityMsg)
			if !s.actSeen[m.Port] || s.actPort[m.Port] != am.Active {
				s.fdDirty = true
			}
			s.actPort[m.Port] = am.Active
			s.actSeen[m.Port] = true
		}
	case tFSelect:
		for _, m := range inbox {
			if _, ok := m.Msg.(fSelect); ok {
				s.fChild[m.Port] = true
				s.fChildWt[m.Port] = 0
				s.fChildColor[m.Port] = 0
			}
		}
	case tWithdraw:
		for _, m := range inbox {
			if _, ok := m.Msg.(edgeMarked); ok {
				s.fChild[m.Port] = false
				s.fChildWt[m.Port] = 0
				s.fChildColor[m.Port] = 0
			}
		}
	case tReportX:
		for _, m := range inbox {
			if cr, ok := m.Msg.(childReport); ok && s.fChild[m.Port] {
				s.fChildColor[m.Port] = cr.Color
				s.fChildWt[m.Port] = cr.Weight
			}
		}
	case tMarkX:
		s.mbParent = 0
		for _, m := range inbox {
			if _, ok := m.Msg.(edgeMarked); !ok {
				continue
			}
			if s.isU && m.Port == s.uPort {
				s.mbParent = 1
			} else if s.fChild[m.Port] {
				s.fChildMark[m.Port] = true
			}
		}
	case tLvlX, tDecX:
		s.crossGot = noneMsg{}
		for _, m := range inbox {
			if s.isU && m.Port == s.uPort && s.partOutMkd {
				s.crossGot = m.Msg
			}
		}
	case tParX:
		s.crossPair = pairMsg{}
		for _, m := range inbox {
			if pm, ok := m.Msg.(pairMsg); ok && s.fChildMark[m.Port] {
				s.crossPair.A += pm.A
				s.crossPair.B += pm.B
			}
		}
	case tAttach:
		for _, m := range inbox {
			if _, ok := m.Msg.(attachMsg); ok {
				s.tree.ChildPorts = insertPortSorted(s.tree.ChildPorts, m.Port)
			}
		}
		if s.merging {
			s.rootID = s.newRoot
		}
	}
}

// beginFlip opens the contraction flip window (contract's path reversal).
func (s *stageINode) beginFlip(api *congest.StepAPI) {
	s.deadline = api.Round() + s.D
	s.flipped = false
	if s.merging && s.isU {
		oldParent := s.tree.ParentPort
		s.tree.ParentPort = s.uPort
		if oldParent >= 0 {
			api.Send(oldParent, flipMsg{})
			s.tree.ChildPorts = insertPortSorted(s.tree.ChildPorts, oldParent)
		}
		s.flipped = true
	}
}

// feedFlip consumes one wake of the flip window; returns true at the
// deadline.
func (s *stageINode) feedFlip(api *congest.StepAPI, inbox []congest.Inbound) bool {
	for _, m := range inbox {
		if _, ok := m.Msg.(flipMsg); !ok {
			panic("partition: unexpected message during flip")
		}
		if s.flipped {
			panic("partition: node flipped twice")
		}
		s.flipped = true
		oldParent := s.tree.ParentPort
		s.tree.ParentPort = m.Port
		removePort(&s.tree.ChildPorts, m.Port)
		if oldParent >= 0 {
			api.Send(oldParent, flipMsg{})
			s.tree.ChildPorts = insertPortSorted(s.tree.ChildPorts, oldParent)
		}
	}
	return api.Round() >= s.deadline
}

// insertPortSorted inserts p into the ascending port list (the slice
// equivalent of append+sort.Ints in the blocking contract).
func insertPortSorted(ports []int, p int) []int {
	i := len(ports)
	for i > 0 && ports[i-1] > p {
		i--
	}
	ports = append(ports, 0)
	copy(ports[i+1:], ports[i:])
	ports[i] = p
	return ports
}

// Interned empty payloads: the dominant contributions on large parts are
// all-zero, and reusing one boxed value keeps the hot combiners
// allocation-free without changing any message's contents or size.
var (
	zeroPair      congest.Message = pairMsg{}
	zeroColorSums congest.Message = colorSums{}
	emptyDecomp   congest.Message = decompAgg{}
)

// combineColorSums merges colorSums contributions (shared with the
// blocking collectColorSums).
func combineColorSums(own congest.Message, children []congest.Message) congest.Message {
	sum := own.(colorSums)
	for _, c := range children {
		cc := c.(colorSums)
		for i := 1; i <= 3; i++ {
			sum.W[i] += cc.W[i]
		}
	}
	if sum == (colorSums{}) {
		return zeroColorSums
	}
	return sum
}

// CollectStageIStep runs the native step-model Stage I on g and returns
// the per-node outcomes, the assigned ids, and the run result (the step
// counterpart of CollectStageI; both produce byte-identical results for a
// fixed seed).
func CollectStageIStep(g *graph.Graph, opts Options, seed int64) ([]*Outcome, []int64, *congest.Result, error) {
	ids := permIDs(g.N(), seed)
	outs := make([]*Outcome, g.N())
	plan := NewStageIPlan(opts, g.N())
	res, err := congest.RunStep(congest.Config{
		Graph:        g,
		Seed:         seed,
		IDs:          ids,
		StopOnReject: true,
		MaxRounds:    1 << 40,
	}, func(node int) congest.StepProgram {
		return plan.NewNode(func(api *congest.StepAPI, out *Outcome) congest.Status {
			outs[api.Index()] = out
			return congest.Done()
		})
	})
	return outs, ids, res, err
}
