package partition

import (
	"fmt"
	"sort"

	"repro/internal/congest"
)

// state is the per-node Stage I execution state. All nodes of all parts
// run the same schedule in lockstep; fields prefixed "part" are only
// meaningful at the part root, which acts for the auxiliary node v(P).
type state struct {
	api  *congest.API
	opts Options

	rootID int64
	tree   congest.Tree

	rejected bool

	// Per-phase boundary structure.
	nbrRoot []int64 // per port: neighbor's part root this phase
	cross   []bool  // per port: crosses a part boundary

	// Designated-edge structure (per phase).
	isU         bool          // this node is u^j, in charge of the out-edge
	uPort       int           // u^j's port to v^j
	fChildPort  map[int]bool  // ports where an F-child's u^j sits
	fChildColor map[int]int64 // port -> child color (after report)
	fChildWt    map[int]int64 // port -> aux edge weight
	fChildMark  map[int]bool  // port -> marked aux edge

	// Root-only part attributes.
	partHasOut   bool
	partTarget   int64 // F-parent part root
	partWeight   int64 // weight of the selected out-edge
	partMutual   bool  // randomized: both endpoints selected this edge
	partColor    int64
	partPreShift int64
	partHasKids  bool
	partOutMkd   bool // out-edge marked (by either endpoint)
	partInT      bool
	partLevel    int // level in the marked tree T; -1 unknown
	partContract bool
}

// treeHeightBound is the height bound of the marked subtrees T (the paper
// cites height <= 10 from Czygrinow et al.); we use a small safety margin.
const treeHeightBound = 12

func newState(api *congest.API, opts Options) *state {
	return &state{
		api:    api,
		opts:   opts,
		rootID: api.ID(),
		tree:   congest.Tree{ParentPort: -1},
	}
}

func (s *state) resetPhase() {
	deg := s.api.Degree()
	s.nbrRoot = make([]int64, deg)
	s.cross = make([]bool, deg)
	s.isU = false
	s.uPort = -1
	s.fChildPort = make(map[int]bool)
	s.fChildColor = make(map[int]int64)
	s.fChildWt = make(map[int]int64)
	s.fChildMark = make(map[int]bool)
	s.partHasOut = false
	s.partTarget = 0
	s.partWeight = 0
	s.partMutual = false
	s.partColor = 0
	s.partPreShift = 0
	s.partHasKids = false
	s.partOutMkd = false
	s.partInT = false
	s.partLevel = -1
	s.partContract = false
}

// bcast runs a part-level broadcast with budget D; the root supplies msg.
// Returns the received message (the root's own msg at the root).
func (s *state) bcast(D int, msg congest.Message) congest.Message {
	deadline := s.api.Round() + D
	var rootMsg congest.Message
	if s.tree.IsRoot() {
		rootMsg = msg
	}
	got, ok := s.tree.BroadcastDown(s.api, deadline, rootMsg, nil)
	if !ok {
		panic(fmt.Sprintf("partition: broadcast under-budgeted (node %d, D=%d)", s.api.Index(), D))
	}
	return got
}

// cvg runs a part-level convergecast with budget D.
func (s *state) cvg(D int, own congest.Message, combine func(own congest.Message, children []congest.Message) congest.Message) congest.Message {
	deadline := s.api.Round() + D
	agg, ok := s.tree.Convergecast(s.api, deadline, own, combine)
	if !ok {
		panic(fmt.Sprintf("partition: convergecast under-budgeted (node %d, D=%d)", s.api.Index(), D))
	}
	return agg
}

// crossRound performs one global round in which every node sends the
// per-port messages in sends (may be nil) and returns what it received.
func (s *state) crossRound(sends map[int]congest.Message) []congest.Inbound {
	ports := make([]int, 0, len(sends))
	for p := range sends {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		s.api.Send(p, sends[p])
	}
	return s.api.NextRound()
}

// combineFirst picks the first non-none contribution (used when exactly
// one node of the part holds the value, e.g. u^j).
func combineFirst(own congest.Message, children []congest.Message) congest.Message {
	if _, none := own.(noneMsg); !none {
		return own
	}
	for _, c := range children {
		if _, none := c.(noneMsg); !none {
			return c
		}
	}
	return noneMsg{}
}

// combineSum adds valMsg contributions.
func combineSum(own congest.Message, children []congest.Message) congest.Message {
	s := own.(valMsg).V
	for _, c := range children {
		s += c.(valMsg).V
	}
	return vmsg(s)
}

// combineMin keeps the minimum valMsg, treating noneMsg as +inf.
func combineMin(own congest.Message, children []congest.Message) congest.Message {
	best, ok := int64(0), false
	if v, isVal := own.(valMsg); isVal {
		best, ok = v.V, true
	}
	for _, c := range children {
		if v, isVal := c.(valMsg); isVal {
			if !ok || v.V < best {
				best, ok = v.V, true
			}
		}
	}
	if !ok {
		return noneMsg{}
	}
	return vmsg(best)
}

// combineOr ORs boolean valMsg contributions (0/1).
func combineOr(own congest.Message, children []congest.Message) congest.Message {
	v := own.(valMsg).V
	for _, c := range children {
		if c.(valMsg).V != 0 {
			v = 1
		}
	}
	if v != 0 {
		v = 1
	}
	return vmsg(v)
}

// combinePairSum adds pairMsg contributions componentwise.
func combinePairSum(own congest.Message, children []congest.Message) congest.Message {
	p := own.(pairMsg)
	for _, c := range children {
		q := c.(pairMsg)
		p.A += q.A
		p.B += q.B
	}
	if p == (pairMsg{}) {
		return zeroPair
	}
	return p
}

// fFetch retrieves a part-level value from the F-parent part: every part
// broadcasts its own value; every node forwards it across F-child ports;
// the designated node u^j convergecasts what it received from v^j. At the
// root, the result is the parent part's value, or noneMsg when the part
// has no F-parent. Costs 2D+1 rounds.
func (s *state) fFetch(D int, ownVal congest.Message) congest.Message {
	got := s.bcast(D, ownVal)
	sends := make(map[int]congest.Message)
	for p := range s.fChildPort {
		sends[p] = got
	}
	in := s.crossRound(sends)
	var fromParent congest.Message = noneMsg{}
	for _, m := range in {
		if s.isU && m.Port == s.uPort {
			fromParent = m.Msg
		}
	}
	return s.cvg(D, fromParent, combineFirst)
}
