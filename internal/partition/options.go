// Package partition implements Stage I of the paper — the distributed
// partitioning algorithm (§2.1) — together with its randomized variant
// (§4, Theorem 4) and the Elkin–Neiman-style random-shift clustering
// baseline mentioned in §1.1. All algorithms run as node programs on the
// CONGEST simulator (package congest) and produce, at every node, the part
// root identity and the rooted spanning tree structure of Lemma 6.
//
// The deterministic variant's round structure mirrors Theorem 3: each of
// the Phases() merging phases runs superRounds(n) = Θ(log n) forest-
// decomposition super-rounds (package forest supplies the per-level
// peeling rule), and each super-round spends 2D+1 engine rounds — a
// status broadcast down the part tree, a cross-edge activity exchange,
// and a convergecast back up — at the phase's diameter budget D =
// phaseBudget(phase). The decomposition is monotone and usually reaches
// its fixed point well before the worst-case super-round count, so the
// step interpreter detects the fixed point and fast-forwards the dead
// tail, charging exactly the traffic the skipped exchanges would have
// sent; the phase's contraction cascades (levels, parity weights,
// contraction parities over the marked trees) get the same treatment
// once their deepest part is reached. Results are byte-identical either
// way (DESIGN.md §10, Options.NoSuperRoundBatching).
package partition

import (
	"math"

	"repro/internal/congest"
	"repro/internal/forest"
	"repro/internal/obs"
)

// Variant selects the Stage I flavor.
type Variant int

// Variants.
const (
	// Deterministic is the paper's Stage I: Barenboim–Elkin forest
	// decomposition per phase plus heaviest-out-edge merging (Theorem 3).
	Deterministic Variant = iota + 1
	// Randomized skips the forest decomposition and uses weighted random
	// edge selection (Theorem 4); it requires a minor-free promise for
	// its cut guarantee.
	Randomized
)

// Schedule selects the phase-count rule.
type Schedule int

// Schedules.
const (
	// PaperSchedule uses the worst-case phase count from Claim 1:
	// ceil(12*alpha*ln(2/eps)) phases guarantee w(G_{t+1}) <= eps*m/2.
	PaperSchedule Schedule = iota + 1
	// PracticalSchedule uses ceil(log2(2/eps))+2 phases, matching the
	// empirically observed per-phase contraction (about 1/2); it voids
	// the worst-case cut guarantee but keeps round counts small. Used as
	// an ablation (E5/E11).
	PracticalSchedule
)

// Options configures Stage I.
type Options struct {
	// Epsilon is the edge-cut parameter; the deterministic algorithm
	// guarantees at most eps*m/2 cut edges when the input is planar.
	Epsilon float64
	// Alpha is the arboricity bound verified per phase (3 for planarity).
	// Zero means 3.
	Alpha int
	// Variant selects Deterministic (default) or Randomized.
	Variant Variant
	// Schedule selects the phase-count rule (default PaperSchedule).
	Schedule Schedule
	// Delta is the failure probability of the Randomized variant
	// (weighted-edge selection repeats Theta(log(1/Delta)) times).
	// Zero means 1/8.
	Delta float64
	// MaxPhases, when positive, caps the number of phases below the
	// schedule (used by the per-phase experiments E3/E4 to observe the
	// partition after exactly k phases).
	MaxPhases int
	// NoSuperRoundBatching disables the forest-decomposition fixed-point
	// fast-forward of the step interpreter (DESIGN.md §10) so every
	// super-round executes literally. Both settings produce byte-identical
	// Results (TestStageIBatchingEquivalence); the toggle exists for that
	// test and for profiling the unbatched schedule.
	NoSuperRoundBatching bool
	// Probe, when non-nil, enables per-phase attribution: the step
	// interpreter interns one phase name per merging phase
	// ("stage1/p01", "stage1/p02", ...) and announces each phase entry
	// through StepAPI.PhaseEnter, so engine Results carry a per-phase
	// PhaseBreakdown. nil (the default) announces nothing; all
	// deterministic Result fields are identical either way.
	Probe *obs.Probe
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 3
	}
	if o.Variant == 0 {
		o.Variant = Deterministic
	}
	if o.Schedule == 0 {
		o.Schedule = PaperSchedule
	}
	if o.Delta == 0 {
		o.Delta = 1.0 / 8
	}
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		panic("partition: Epsilon must be in (0,1]")
	}
	return o
}

// Phases returns the number of merging phases t for the configured
// schedule. Every node computes the same value from global knowledge.
func (o Options) Phases() int {
	alpha := o.Alpha
	if alpha == 0 {
		alpha = 3
	}
	var t int
	switch o.Schedule {
	case PracticalSchedule:
		t = int(math.Ceil(math.Log2(2/o.Epsilon))) + 2
	default:
		// (1 - 1/(12*alpha))^t <= eps/2 with -ln(1-x) >= x.
		t = int(math.Ceil(12 * float64(alpha) * math.Log(2/o.Epsilon)))
	}
	if o.MaxPhases > 0 && o.MaxPhases < t {
		t = o.MaxPhases
	}
	return t
}

// SelectionTrials returns the number of weighted-edge-selection trials s
// for the Randomized variant: Theta(log(1/delta)).
func (o Options) SelectionTrials() int {
	s := int(math.Ceil(math.Log2(1 / o.Delta)))
	if s < 1 {
		s = 1
	}
	return s + 1
}

// diamCap bounds per-phase diameter budgets so that round counters stay
// far from overflow even on adversarial schedules; parts on real inputs
// merge (and exit) long before this matters.
const diamCap = 1 << 34

// DiamBound returns the Claim 4 diameter bound for parts of phase i
// (1-based): d_1 = 0 and d_{i+1} = 3*d_i + 2, i.e. d_i = 3^(i-1) - 1.
func DiamBound(i int) int {
	d := 1
	for k := 1; k < i; k++ {
		d *= 3
		if d > diamCap {
			return diamCap
		}
	}
	return d - 1
}

// phaseBudget is the round budget of a single tree operation in phase i:
// the diameter bound plus slack so that no message is ever in flight when
// an operation's deadline expires.
func phaseBudget(i int) int {
	return DiamBound(i) + 2
}

// Outcome is the per-node result of Stage I.
type Outcome struct {
	// RootID identifies the node's part (the id of the part's root).
	RootID int64
	// Tree is the node's view of the part's rooted spanning tree
	// (Lemma 6): parent port and child ports within the part.
	Tree congest.Tree
	// Rejected is true when this node holds evidence that the graph has
	// arboricity greater than alpha at some contraction level (the
	// forest-decomposition step did not terminate), which for alpha=3
	// certifies non-planarity.
	Rejected bool
	// PhasesRun counts the phases this node's part actually executed
	// (parts exit early once they span their whole component).
	PhasesRun int
	// EarlyExit is true when the part exited before the full schedule
	// because it had no remaining cross edges.
	EarlyExit bool
}

// superRounds returns the number of forest-decomposition super-rounds
// (plus one resolution round), Theta(log n) per §2.1.1.
func superRounds(n int) int {
	return forest.HPartitionRounds(n) + 1
}
