package partition

import (
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
)

// This file is the native StepProgram port of the Elkin–Neiman-style
// random-shift clustering baseline (en.go). The blocking program is a
// single wait-claim-flood loop, so the port is a five-state machine whose
// transitions replicate the blocking control flow yield for yield: every
// SleepUntil becomes a Sleep status, every NextRound a Running status, and
// the one ExpFloat64 draw happens at the same program point (the first
// wake). Both execution models therefore produce byte-identical Results
// for a fixed seed (TestENEngineEquivalence).

type enState uint8

const (
	enUnclaimed enState = iota // parked until the shifted start or a claim
	enFlooded                  // claimed and flooded this round (NextRound)
	enClaimed                  // claimed, parked until the deadline
	enAcked                    // ack sent, collecting child notices
)

// enNode is the per-node interpreter state of the baseline clustering.
type enNode struct {
	eps    float64
	onDone func(api *congest.StepAPI, out *Outcome) congest.Status

	started  bool
	st       enState
	base     int
	start    int
	deadline int
	prio     int64

	rootID     int64
	bestPrio   int64
	parentPort int
	childPorts []int
}

// NewENNode returns the native StepProgram for one node of the
// Elkin–Neiman baseline. onDone is invoked exactly once, at the round the
// clustering completes at this node, with the node's Outcome; its Status
// becomes the node's next scheduling instruction (Done for standalone
// runs, BecomeStep(stageII) for the full tester).
func NewENNode(eps float64, onDone func(api *congest.StepAPI, out *Outcome) congest.Status) congest.StepProgram {
	return &enNode{eps: eps, onDone: onDone}
}

// Step implements congest.StepProgram.
func (e *enNode) Step(api *congest.StepAPI, inbox []congest.Inbound) congest.Status {
	if !e.started {
		e.started = true
		e.init(api)
	}
	switch e.st {
	case enUnclaimed:
		// A SleepUntil wake: adopt the best incoming claim, if any.
		best := -1
		for i, in := range inbox {
			cm, ok := in.Msg.(claimMsg)
			if !ok {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			bc := inbox[best].Msg.(claimMsg)
			if cm.Prio > bc.Prio || (cm.Prio == bc.Prio && cm.Root < bc.Root) {
				best = i
			}
		}
		if best >= 0 {
			cm := inbox[best].Msg.(claimMsg)
			e.rootID = cm.Root
			e.bestPrio = cm.Prio
			e.parentPort = inbox[best].Port
			e.flood(api)
			e.st = enFlooded
			return congest.Running()
		}
		// Loop top of the blocking program.
		if api.Round() >= e.deadline {
			return e.ackPhase(api)
		}
		if api.Round() >= e.base+e.start {
			// Wake: claim self.
			e.rootID = api.ID()
			e.bestPrio = e.prio
			e.parentPort = -1
			e.flood(api)
			e.st = enFlooded
			return congest.Running()
		}
		until := e.base + e.start
		if until > e.deadline {
			until = e.deadline
		}
		return congest.Sleep(until)

	case enFlooded:
		// The NextRound after flooding; its inbox is discarded.
		if api.Round() >= e.deadline {
			return e.ackPhase(api)
		}
		e.st = enClaimed
		return congest.Sleep(e.deadline)

	case enClaimed:
		// Already decided; later claims are ignored.
		if api.Round() >= e.deadline {
			return e.ackPhase(api)
		}
		return congest.Sleep(e.deadline)

	default: // enAcked
		for _, in := range inbox {
			if _, ok := in.Msg.(ackMsg); ok {
				e.childPorts = append(e.childPorts, in.Port)
			}
		}
		out := &Outcome{
			RootID: e.rootID,
			Tree:   congest.Tree{ParentPort: e.parentPort, ChildPorts: e.childPorts},
		}
		return e.onDone(api, out)
	}
}

// init mirrors the entry of RunElkinNeiman: validate eps, draw the
// exponential shift, and derive the schedule constants.
func (e *enNode) init(api *congest.StepAPI) {
	if e.eps <= 0 || e.eps > 1 {
		panic("partition: eps must be in (0,1]")
	}
	beta := e.eps / 2
	shiftCap := ENShiftCap(api.N(), beta)
	delta := api.Rand().ExpFloat64() / beta
	if delta > float64(shiftCap) {
		delta = float64(shiftCap)
	}
	e.start = shiftCap - int(math.Floor(delta))
	e.prio = int64((delta - math.Floor(delta)) * (1 << 20))
	e.base = api.Round()
	e.deadline = e.base + 2*shiftCap + 2
	e.rootID = -1
	e.parentPort = -1
}

func (e *enNode) flood(api *congest.StepAPI) {
	api.SendAll(claimMsg{Root: e.rootID, Prio: e.bestPrio})
}

// ackPhase is the post-loop acknowledgement round: children notify their
// cluster-tree parents; child notices are collected at the next wake.
func (e *enNode) ackPhase(api *congest.StepAPI) congest.Status {
	if e.parentPort >= 0 {
		api.Send(e.parentPort, ackMsg{})
	}
	e.st = enAcked
	return congest.Running()
}

// CollectENStep runs the native step-model baseline partition on g (the
// step counterpart of CollectENBlocking; both produce byte-identical
// results for a fixed seed).
func CollectENStep(g *graph.Graph, eps float64, seed int64) ([]*Outcome, []int64, *congest.Result, error) {
	ids := permIDs(g.N(), seed)
	outs := make([]*Outcome, g.N())
	res, err := congest.RunStep(congest.Config{Graph: g, Seed: seed, IDs: ids}, func(node int) congest.StepProgram {
		return NewENNode(eps, func(api *congest.StepAPI, out *Outcome) congest.Status {
			outs[api.Index()] = out
			return congest.Done()
		})
	})
	return outs, ids, res, err
}
