package partition

import (
	"math"

	"repro/internal/congest"
)

// This file implements the random-shift clustering baseline discussed in
// §1.1 of the paper: the Elkin–Neiman/Miller–Peng–Xu style partition that
// yields parts of diameter O(log(n)/eps) with at most eps*m cut edges in
// expectation, in O(log(n)/eps) rounds. Replacing Stage I with it gives
// the O(log^2 n * poly(1/eps))-round tester the paper compares against
// (experiment E11).

// claimMsg floods a cluster claim: the claiming root and a tie-breaking
// priority (quantized fractional part of the exponential shift).
type claimMsg struct {
	Root int64
	Prio int64
}

func (m claimMsg) Bits() int { return 2 + bitsVal(m.Root) + bitsVal(m.Prio) }

// ackMsg tells a neighbor it became this node's cluster-tree parent.
type ackMsg struct{}

func (ackMsg) Bits() int { return 2 }

// ENShiftCap returns the shift truncation bound: exponential shifts exceed
// (2/beta)*ln(n) with probability at most 1/n^2.
func ENShiftCap(n int, beta float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(2 * math.Log(float64(n)) / beta))
}

// RunElkinNeiman executes the random-shift clustering inside a node
// program: every node draws an exponential shift delta_v with rate beta =
// eps/2 and wakes at round cap-floor(delta_v); the first claim to reach a
// node (ties broken by priority, then root id) wins, and claims flood
// outward one hop per round. Returns the same Outcome shape as Stage I so
// that Stage II runs unchanged on the resulting parts.
func RunElkinNeiman(api *congest.API, eps float64) *Outcome {
	if eps <= 0 || eps > 1 {
		panic("partition: eps must be in (0,1]")
	}
	beta := eps / 2
	n := api.N()
	shiftCap := ENShiftCap(n, beta)
	delta := api.Rand().ExpFloat64() / beta
	if delta > float64(shiftCap) {
		delta = float64(shiftCap)
	}
	start := shiftCap - int(math.Floor(delta))
	// Priority: the fractional part of the shift, quantized; larger wins
	// (it corresponds to an earlier fractional start time).
	prio := int64((delta - math.Floor(delta)) * (1 << 20))

	base := api.Round()
	deadline := base + 2*shiftCap + 2 // flood completes by then

	rootID := int64(-1)
	parentPort := -1
	var bestPrio int64
	var claimed bool

	flood := func() {
		api.SendAll(claimMsg{Root: rootID, Prio: bestPrio})
	}

	for api.Round() < deadline {
		if !claimed && api.Round() >= base+start {
			// Wake: claim self.
			claimed = true
			rootID = api.ID()
			bestPrio = prio
			parentPort = -1
			flood()
			api.NextRound()
			continue
		}
		var until int
		if !claimed {
			until = base + start
			if until > deadline {
				until = deadline
			}
		} else {
			until = deadline
		}
		inbox := api.SleepUntil(until)
		if claimed {
			continue // already decided; ignore later claims
		}
		best := -1
		for i, in := range inbox {
			cm, ok := in.Msg.(claimMsg)
			if !ok {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			bc := inbox[best].Msg.(claimMsg)
			if cm.Prio > bc.Prio || (cm.Prio == bc.Prio && cm.Root < bc.Root) {
				best = i
			}
		}
		if best >= 0 {
			cm := inbox[best].Msg.(claimMsg)
			claimed = true
			rootID = cm.Root
			bestPrio = cm.Prio
			parentPort = inbox[best].Port
			flood()
			api.NextRound()
		}
	}

	// Acknowledgement round: children notify parents.
	if parentPort >= 0 {
		api.Send(parentPort, ackMsg{})
	}
	var childPorts []int
	for _, in := range api.NextRound() {
		if _, ok := in.Msg.(ackMsg); ok {
			childPorts = append(childPorts, in.Port)
		}
	}
	return &Outcome{
		RootID: rootID,
		Tree:   congest.Tree{ParentPort: parentPort, ChildPorts: childPorts},
	}
}
