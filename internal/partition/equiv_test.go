package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestStageIEngineEquivalence proves that the native StepProgram port of
// Stage I (both variants) and the blocking implementation produce
// byte-identical Results (verdicts, rounds, messages, bits) and identical
// per-node outcomes for fixed seeds across several graph families (issue
// acceptance criterion).
func TestStageIEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	farG, _ := graph.PlanarPlusRandomEdges(60, 40, rng)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(7, 9)},
		{"cycle", graph.Cycle(41)},
		{"tree-plus-edges", graph.TreePlusRandomEdges(50, 12, rand.New(rand.NewSource(7)))},
		{"planar-plus-edges", farG},
		{"star", graph.Star(17)},
	}
	schedules := []Schedule{PaperSchedule, PracticalSchedule}
	variants := []Variant{Deterministic, Randomized}
	for _, fam := range families {
		for _, sched := range schedules {
			for _, variant := range variants {
				for seed := int64(0); seed < 3; seed++ {
					opts := Options{Epsilon: 0.25, Schedule: sched, Variant: variant}
					name := fmt.Sprintf("%s/%v/variant%d/seed%d", fam.name, sched, variant, seed)
					bOuts, bIDs, bRes, bErr := CollectStageIBlocking(fam.g, opts, seed)
					sOuts, sIDs, sRes, sErr := CollectStageIStep(fam.g, opts, seed)
					if (bErr == nil) != (sErr == nil) {
						t.Fatalf("%s: err mismatch: blocking=%v step=%v", name, bErr, sErr)
					}
					if bErr != nil {
						continue
					}
					if !reflect.DeepEqual(bIDs, sIDs) {
						t.Fatalf("%s: id assignment mismatch", name)
					}
					if !reflect.DeepEqual(bRes.Metrics, sRes.Metrics) {
						t.Fatalf("%s: metrics mismatch:\nblocking: %+v\nstep:     %+v",
							name, bRes.Metrics, sRes.Metrics)
					}
					if !reflect.DeepEqual(bRes.Verdicts, sRes.Verdicts) {
						t.Fatalf("%s: verdicts mismatch", name)
					}
					for v := range bOuts {
						bo, so := bOuts[v], sOuts[v]
						if (bo == nil) != (so == nil) {
							t.Fatalf("%s: node %d outcome presence mismatch", name, v)
						}
						if bo == nil {
							continue
						}
						if bo.RootID != so.RootID || bo.Rejected != so.Rejected ||
							bo.PhasesRun != so.PhasesRun || bo.EarlyExit != so.EarlyExit ||
							bo.Tree.ParentPort != so.Tree.ParentPort ||
							!equalPorts(bo.Tree.ChildPorts, so.Tree.ChildPorts) {
							t.Fatalf("%s: node %d outcome mismatch:\nblocking: %+v\nstep:     %+v",
								name, v, bo, so)
						}
					}
				}
			}
		}
	}
}

// TestENEngineEquivalence proves the same for the Elkin–Neiman baseline:
// the step-native state machine and the blocking loop produce
// byte-identical Results and identical per-node cluster outcomes.
func TestENEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(8, 8)},
		{"cycle", graph.Cycle(37)},
		{"tree-plus-edges", graph.TreePlusRandomEdges(60, 15, rand.New(rand.NewSource(3)))},
		{"star", graph.Star(21)},
	}
	for _, fam := range families {
		for _, eps := range []float64{0.25, 0.5} {
			for seed := int64(0); seed < 3; seed++ {
				name := fmt.Sprintf("%s/eps%v/seed%d", fam.name, eps, seed)
				bOuts, bIDs, bRes, bErr := CollectENBlocking(fam.g, eps, seed)
				sOuts, sIDs, sRes, sErr := CollectENStep(fam.g, eps, seed)
				if (bErr == nil) != (sErr == nil) {
					t.Fatalf("%s: err mismatch: blocking=%v step=%v", name, bErr, sErr)
				}
				if bErr != nil {
					continue
				}
				if !reflect.DeepEqual(bIDs, sIDs) {
					t.Fatalf("%s: id assignment mismatch", name)
				}
				if !reflect.DeepEqual(bRes.Metrics, sRes.Metrics) {
					t.Fatalf("%s: metrics mismatch:\nblocking: %+v\nstep:     %+v",
						name, bRes.Metrics, sRes.Metrics)
				}
				if !reflect.DeepEqual(bRes.Verdicts, sRes.Verdicts) {
					t.Fatalf("%s: verdicts mismatch", name)
				}
				for v := range bOuts {
					bo, so := bOuts[v], sOuts[v]
					if bo.RootID != so.RootID ||
						bo.Tree.ParentPort != so.Tree.ParentPort ||
						!equalPorts(bo.Tree.ChildPorts, so.Tree.ChildPorts) {
						t.Fatalf("%s: node %d outcome mismatch:\nblocking: %+v\nstep:     %+v",
							name, v, bo, so)
					}
				}
			}
		}
	}
}

func equalPorts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStageIStepValidates runs the native Stage I on a larger grid and
// checks the structural partition guarantees end to end.
func TestStageIStepValidates(t *testing.T) {
	g := graph.Grid(10, 10)
	opts := Options{Epsilon: 0.25, Schedule: PracticalSchedule}
	outs, ids, res, err := CollectStageIStep(g, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected() {
		t.Fatal("planar grid rejected by Stage I")
	}
	if err := ValidateOutcomes(g, ids, outs, 0); err != nil {
		t.Fatal(err)
	}
}
