package partition

import (
	"math/rand"

	"repro/internal/congest"
)

// selectRandomized implements the weighted-edge selection of §4 (Theorem
// 4): in each of Theta(log 1/delta) trials the part draws a uniformly
// random incident cut edge (via the tree-sampling procedure of §4.1, which
// draws an aux edge with probability proportional to its weight), then
// evaluates the drawn target's weight; the maximum-weight draw wins. No
// forest-decomposition step is needed under the minor-free promise.
func (s *state) selectRandomized(D int) {
	trials := s.opts.SelectionTrials()
	bestW := int64(-1)
	bestTarget := int64(0)
	for t := 0; t < trials; t++ {
		// (1) Uniform cut-edge sample via weighted reservoir convergecast.
		var own congest.Message = noneMsg{}
		var crossPorts []int
		for p, c := range s.cross {
			if c {
				crossPorts = append(crossPorts, p)
			}
		}
		if len(crossPorts) > 0 {
			p := crossPorts[s.api.Rand().Intn(len(crossPorts))]
			own = trialMsg{
				NodeID: s.api.ID(),
				Target: s.nbrRoot[p],
				Degree: int64(len(crossPorts)),
			}
		}
		pick := s.cvg(D, own, func(o congest.Message, ch []congest.Message) congest.Message {
			return combineTrial(s.api.Rand(), o, ch)
		})

		// (2) Announce the drawn target.
		var ann congest.Message = noneMsg{}
		if s.tree.IsRoot() {
			if tm, ok := pick.(trialMsg); ok {
				ann = valMsg{V: tm.Target}
			}
		}
		target := s.bcast(D, ann)

		// (3) Evaluate w(P, target): each node counts its edges into the
		// target part.
		cnt := int64(0)
		if tv, ok := target.(valMsg); ok {
			for p, c := range s.cross {
				if c && s.nbrRoot[p] == tv.V {
					cnt++
				}
			}
		}
		w := s.cvg(D, valMsg{V: cnt}, combineSum).(valMsg).V
		if s.tree.IsRoot() {
			if tv, ok := target.(valMsg); ok && w > bestW {
				bestW = w
				bestTarget = tv.V
			}
		}
	}
	if s.tree.IsRoot() && bestW > 0 {
		s.partHasOut = true
		s.partTarget = bestTarget
		s.partWeight = bestW
	}
}

// combineTrial is the weighted reservoir combiner of the tree-sampling
// procedure (§4.1), shared by the blocking and the step-native selection:
// it picks one candidate with probability proportional to its subtree
// cross-degree and re-labels the winner with the subtree total.
func combineTrial(rng *rand.Rand, o congest.Message, ch []congest.Message) congest.Message {
	cands := make([]trialMsg, 0, len(ch)+1)
	if tm, ok := o.(trialMsg); ok {
		cands = append(cands, tm)
	}
	for _, c := range ch {
		if tm, ok := c.(trialMsg); ok {
			cands = append(cands, tm)
		}
	}
	if len(cands) == 0 {
		return noneMsg{}
	}
	total := int64(0)
	for _, c := range cands {
		total += c.Degree
	}
	r := rng.Int63n(total)
	for _, c := range cands {
		if r < c.Degree {
			c.Degree = total
			return c
		}
		r -= c.Degree
	}
	panic("partition: weighted pick out of range")
}
