package partition

import (
	"cmp"
	"slices"
	"sort"

	"repro/internal/congest"
	"repro/internal/forest"
)

// RunStageI executes the Stage I partitioning algorithm inside a node
// program and returns this node's outcome. Every node of the network must
// call it at the same round with the same options. On return, nodes of a
// part share a rooted spanning tree (Lemma 6) and know their part root;
// parts that exhausted the phase schedule or exited early are final.
//
// The Rejected flag is set at nodes holding evidence that some contraction
// minor of the input has arboricity above alpha (Definition 2 failure) —
// for alpha = 3 this certifies non-planarity (one-sided).
func RunStageI(api *congest.API, opts Options) *Outcome {
	opts = opts.withDefaults()
	s := newState(api, opts)
	t := opts.Phases()
	phasesRun := 0
	earlyExit := false
	for i := 1; i <= t; i++ {
		done := s.runPhase(i)
		phasesRun++
		if done {
			earlyExit = true
			break
		}
	}
	return &Outcome{
		RootID:    s.rootID,
		Tree:      s.tree,
		Rejected:  s.rejected,
		PhasesRun: phasesRun,
		EarlyExit: earlyExit,
	}
}

// runPhase executes phase i; returns true when the part has no cross edges
// left (it spans its connected component) and exits the schedule.
func (s *state) runPhase(i int) bool {
	D := phaseBudget(i)
	s.resetPhase()

	// Step 0: boundary discovery (1 round). Ports that stay silent (a
	// neighbor terminated during a StopOnReject shutdown race) are
	// treated as absent.
	for p := range s.nbrRoot {
		s.nbrRoot[p] = -1
	}
	s.api.SendAll(rootAnnounce{Root: s.rootID})
	for _, in := range s.api.NextRound() {
		s.nbrRoot[in.Port] = in.Msg.(rootAnnounce).Root
		s.cross[in.Port] = s.nbrRoot[in.Port] != s.rootID
	}

	// Step 1: early exit when the part has no cross edges (it will never
	// interact with the rest of the network again; see DESIGN.md).
	hasCross := int64(0)
	for _, c := range s.cross {
		if c {
			hasCross = 1
		}
	}
	any := s.cvg(D, valMsg{V: hasCross}, combineOr).(valMsg).V
	dec := s.bcast(D, valMsg{V: any}).(valMsg).V
	if dec == 0 {
		return true
	}

	// Steps 2-3: out-edge selection (forest decomposition + heaviest edge
	// in the deterministic variant; weighted random trials otherwise).
	if s.opts.Variant == Randomized {
		s.selectRandomized(D)
	} else {
		s.forestDecomposition(D)
		s.selectHeaviest()
	}
	s.designate(D)

	// Step 4: Cole–Vishkin 3-coloring of the selected pseudo-forest F_i.
	s.colorPart(D)

	// Steps 5-6: report child colors/weights across boundaries, then
	// aggregate per-color incoming weights at each root.
	s.reportChildren(D)
	sums := s.collectColorSums(D)

	// Step 7: marking (sub-step 2b of the merging step).
	s.mark(D, sums)

	// Steps 8-10: levels, even/odd weights, and the contraction decision
	// cascaded over the marked trees T (height <= treeHeightBound).
	s.computeLevels(D)
	w0, w1 := s.aggregateParityWeights(D)
	s.decideContraction(D, w0, w1)

	// Step 11: contract.
	s.contract(D)
	return false
}

// forestDecomposition emulates the Barenboim–Elkin peeling on the
// auxiliary graph G_i (§2.1.5). After it returns, the root knows the
// part's oriented out-edges with weights, or has set s.rejected.
func (s *state) forestDecomposition(D int) {
	alpha := s.opts.Alpha
	maxEntries := 3*alpha + 1
	S := superRounds(s.api.N())

	active := true           // part's auxiliary node is active
	var watch []int64        // roots to resolve directions for
	var outs []rootWeight    // resolved candidate out-edges
	var pending []rootWeight // neighbors at inactivation time
	resolved := false

	nbrActive := make(map[int64]bool) // latest activity flag per adjacent part

	for l := 0; l < S; l++ {
		// (a) Status broadcast.
		st := s.bcast(D, smsg(active, watch)).(statusMsg)
		// (b) Cross activity exchange.
		sends := make(map[int]congest.Message)
		for p, c := range s.cross {
			if c {
				sends[p] = activityMsg{Root: s.rootID, Active: st.Active}
			}
		}
		in := s.crossRound(sends)
		for _, m := range in {
			am := m.Msg.(activityMsg)
			nbrActive[am.Root] = am.Active
		}
		// (c) Convergecast of active neighbors and watch flags.
		own := decompAgg{}
		seen := make(map[int64]int64)
		for p, c := range s.cross {
			if c && nbrActive[s.nbrRoot[p]] {
				seen[s.nbrRoot[p]]++
			}
		}
		for r, w := range seen {
			own.Entries = append(own.Entries, rootWeight{Root: r, Weight: w})
		}
		slices.SortFunc(own.Entries, func(a, b rootWeight) int { return cmp.Compare(a.Root, b.Root) })
		for _, wr := range st.Watch {
			if f, ok := nbrActive[wr]; ok {
				own.Watch = append(own.Watch, rootFlag{Root: wr, Active: f})
			}
		}
		agg := s.cvg(D, own, func(o congest.Message, ch []congest.Message) congest.Message {
			return mergeDecomp(o.(decompAgg), ch, maxEntries)
		}).(decompAgg)

		if !s.tree.IsRoot() {
			continue
		}
		// Root decision logic.
		if active {
			if !agg.TooMany && len(agg.Entries) <= 3*alpha {
				active = false
				pending = agg.Entries
				watch = watch[:0]
				for _, e := range pending {
					watch = append(watch, e.Root)
				}
			}
		} else if len(watch) > 0 {
			// Resolve edge directions one super-round after inactivation.
			flags := make(map[int64]bool, len(agg.Watch))
			for _, wf := range agg.Watch {
				flags[wf.Root] = wf.Active
			}
			for _, e := range pending {
				if flags[e.Root] || s.rootID < e.Root {
					// Neighbor outlived us, or tie broken by id: ours.
					outs = append(outs, e)
				}
			}
			watch = nil
			resolved = true
		}
	}
	if s.tree.IsRoot() {
		if active {
			// Evidence: the auxiliary graph has arboricity > alpha.
			// Output immediately (a single reject decides the global
			// verdict); the part stays in the schedule as an inert
			// auxiliary node so that lockstep is preserved for runs that
			// continue past the rejection.
			s.rejected = true
			s.api.Output(congest.VerdictReject)
		} else if !resolved && len(watch) > 0 {
			// Inactivated in the very last super-round; resolve
			// conservatively by id order (neighbors' fates unknown, but
			// S includes a spare resolution round so this is unreachable
			// for successful runs).
			for _, e := range pending {
				if s.rootID < e.Root {
					outs = append(outs, e)
				}
			}
		}
		s.storeOuts(outs)
	}
}

// storeOuts records the chosen out-edge candidates at the root.
func (s *state) storeOuts(outs []rootWeight) {
	s.partHasOut = false
	for _, e := range outs {
		if !s.partHasOut || e.Weight > s.partWeight ||
			(e.Weight == s.partWeight && e.Root < s.partTarget) {
			s.partHasOut = true
			s.partTarget = e.Root
			s.partWeight = e.Weight
		}
	}
}

// selectHeaviest is a no-op beyond storeOuts (kept for symmetry with the
// randomized variant; the heaviest edge is chosen in storeOuts).
func (s *state) selectHeaviest() {}

// designate implements the designated-edge machinery of §2.1.6: the root
// announces the selected target part, the minimum-id node with an edge
// into it becomes u^j, and u^j notifies its neighbor v^j across the edge.
// Costs 3D+1+D rounds. Also resolves mutual selections (randomized
// variant) by dropping the out-edge at the higher-id endpoint.
func (s *state) designate(D int) {
	sel := selMsg{HasOut: s.partHasOut, Target: s.partTarget, Weight: s.partWeight}
	got := s.bcast(D, sel).(selMsg)

	// Candidate convergecast: min id among nodes with an edge into the
	// target part.
	var own congest.Message = noneMsg{}
	if got.HasOut {
		for p, c := range s.cross {
			if c && s.nbrRoot[p] == got.Target {
				own = valMsg{V: s.api.ID()}
				break
			}
		}
	}
	winner := s.cvg(D, own, combineMin)
	var winMsg congest.Message = noneMsg{}
	if s.tree.IsRoot() {
		winMsg = winner
	}
	w := s.bcast(D, winMsg)
	if v, ok := w.(valMsg); ok && got.HasOut && v.V == s.api.ID() {
		s.isU = true
		for p, c := range s.cross {
			if c && s.nbrRoot[p] == got.Target {
				s.uPort = p
				break
			}
		}
	}

	// Cross notification: u^j -> v^j.
	sends := make(map[int]congest.Message)
	if s.isU {
		sends[s.uPort] = fSelect{ChildRoot: s.rootID}
	}
	in := s.crossRound(sends)
	for _, m := range in {
		if _, ok := m.Msg.(fSelect); ok {
			s.fChildPort[m.Port] = true
			s.fChildWt[m.Port] = 0
			s.fChildColor[m.Port] = 0
		}
	}

	// Mutual-selection detection (randomized variant): did my target
	// select me back? Aggregate an OR over nodes seeing a child notice
	// from the target part.
	mutual := int64(0)
	for p := range s.fChildPort {
		if got.HasOut && s.nbrRoot[p] == got.Target {
			mutual = 1
		}
	}
	m := s.cvg(D, valMsg{V: mutual}, combineOr).(valMsg).V
	drop := int64(0)
	if s.tree.IsRoot() && m == 1 && s.rootID > got.Target {
		// Both endpoints selected the aux edge; it is oriented out of the
		// lower id, so this part keeps only the child role.
		s.partHasOut = false
		s.partMutual = true
		drop = 1
	}
	dropDec := s.bcast(D, valMsg{V: drop}).(valMsg).V
	if dropDec == 1 && s.isU {
		// Withdraw the designation: tell v^j to forget the child notice.
		s.isU = false
	}
	sends = make(map[int]congest.Message)
	if dropDec == 1 && s.uPort >= 0 {
		sends[s.uPort] = edgeMarked{} // reused as "withdraw" marker
	}
	in = s.crossRound(sends)
	for _, mm := range in {
		if _, ok := mm.Msg.(edgeMarked); ok {
			delete(s.fChildPort, mm.Port)
			delete(s.fChildWt, mm.Port)
			delete(s.fChildColor, mm.Port)
		}
	}

	// Child-count aggregation for the coloring step.
	kids := int64(len(s.fChildPort))
	total := s.cvg(D, valMsg{V: kids}, combineSum).(valMsg).V
	if s.tree.IsRoot() {
		s.partHasKids = total > 0
	}
}

// colorPart runs the distributed Cole–Vishkin 3-coloring of the selected
// pseudo-forest, mirroring forest.ColorPseudoForest: CVIterations(n)
// reduction steps, then three shift-down+recolor passes. Each step costs
// one fFetch (2D+1 rounds). The final color (1..3 stored as 0..2) lives
// at the root in s.partColor.
func (s *state) colorPart(D int) {
	if s.tree.IsRoot() {
		s.partColor = s.rootID
	}
	iters := forest.CVIterations(int64(s.api.N()))
	for k := 0; k < iters; k++ {
		pc := s.fFetch(D, valMsg{V: s.partColor})
		if s.tree.IsRoot() {
			parent := forest.CVRootParent(s.partColor)
			if v, ok := pc.(valMsg); ok && s.partHasOut {
				parent = v.V
			}
			s.partColor = forest.CVStep(s.partColor, parent)
		}
	}
	for _, drop := range []int64{5, 4, 3} {
		// Shift down.
		pc := s.fFetch(D, valMsg{V: s.partColor})
		if s.tree.IsRoot() {
			s.partPreShift = s.partColor
			if v, ok := pc.(valMsg); ok && s.partHasOut {
				s.partColor = v.V
			} else if s.partColor == 0 {
				s.partColor = 1
			} else {
				s.partColor = 0
			}
		}
		// Recolor the dropped class.
		pc = s.fFetch(D, valMsg{V: s.partColor})
		if s.tree.IsRoot() && s.partColor == drop {
			used := [6]bool{}
			if v, ok := pc.(valMsg); ok && s.partHasOut {
				used[v.V] = true
			}
			if s.partHasKids {
				used[s.partPreShift] = true
			}
			for c := int64(0); c < 3; c++ {
				if !used[c] {
					s.partColor = c
					break
				}
			}
		}
	}
	if s.tree.IsRoot() {
		s.partColor++ // colors 1..3
	}
}

// reportChildren sends (color, weight) from each part through u^j to v^j.
func (s *state) reportChildren(D int) {
	rep := s.bcast(D, reportMsg{Color: s.partColor, Weight: s.partWeight}).(reportMsg)
	sends := make(map[int]congest.Message)
	if s.isU {
		sends[s.uPort] = childReport{Color: rep.Color, Weight: rep.Weight}
	}
	for _, m := range s.crossRound(sends) {
		if cr, ok := m.Msg.(childReport); ok && s.fChildPort[m.Port] {
			s.fChildColor[m.Port] = cr.Color
			s.fChildWt[m.Port] = cr.Weight
		}
	}
}

// collectColorSums aggregates, at each root, the total incoming aux-edge
// weight per child color.
func (s *state) collectColorSums(D int) colorSums {
	own := colorSums{}
	for p := range s.fChildPort {
		c := s.fChildColor[p]
		if c >= 1 && c <= 3 {
			own.W[c] += s.fChildWt[p]
		}
	}
	return s.cvg(D, own, combineColorSums).(colorSums)
}

// mark applies the marking rules of sub-step 2b and distributes marked
// status to both endpoints of every marked aux edge.
func (s *state) mark(D int, sums colorSums) {
	// The chi=2 rule needs the parent's color.
	pc := s.fFetch(D, valMsg{V: s.partColor})
	var decision markMsg
	if s.tree.IsRoot() {
		parentColor := int64(0)
		if v, ok := pc.(valMsg); ok && s.partHasOut {
			parentColor = v.V
		}
		switch s.partColor {
		case 1:
			if s.partHasOut && s.partWeight >= sums.W[1]+sums.W[2]+sums.W[3] {
				decision.MarkOut = true
			} else {
				decision.InClass = markAllIn
			}
		case 2:
			if s.partHasOut && parentColor == 3 && s.partWeight >= sums.W[3] {
				decision.MarkOut = true
			} else {
				decision.InClass = 3
			}
		}
	}
	dec := s.bcast(D, decision).(markMsg)

	// Cross notifications (both directions in one round).
	sends := make(map[int]congest.Message)
	if s.isU && dec.MarkOut {
		sends[s.uPort] = edgeMarked{}
	}
	for p := range s.fChildPort {
		if dec.InClass == markAllIn || int64(dec.InClass) == s.fChildColor[p] {
			s.fChildMark[p] = true
			sends[p] = edgeMarked{}
		}
	}
	markedByParent := int64(0)
	for _, m := range s.crossRound(sends) {
		if _, ok := m.Msg.(edgeMarked); !ok {
			continue
		}
		if s.isU && m.Port == s.uPort {
			markedByParent = 1
		} else if s.fChildPort[m.Port] {
			s.fChildMark[m.Port] = true
		}
	}
	byParent := s.cvg(D, valMsg{V: markedByParent}, combineOr).(valMsg).V
	if s.tree.IsRoot() {
		s.partOutMkd = dec.MarkOut || byParent == 1
	}
	// Every node needs to know whether its own out-edge is marked (u^j
	// forwards level messages only along marked edges), and whether the
	// part is in a marked tree at all.
	hasMarkedKid := int64(0)
	if len(s.markedChildPorts()) > 0 {
		hasMarkedKid = 1
	}
	anyKid := s.cvg(D, valMsg{V: hasMarkedKid}, combineOr).(valMsg).V
	outMkd := int64(0)
	if s.tree.IsRoot() {
		s.partInT = s.partOutMkd || anyKid == 1
		if s.partOutMkd {
			outMkd = 1
		}
	}
	om := s.bcast(D, valMsg{V: outMkd}).(valMsg).V
	// Mirror the out-marked bit to every node of the part: u^j consults it
	// when deciding whether to forward T-tree traffic in the cascades.
	s.partOutMkd = om == 1
}

func (s *state) markedChildPorts() []int {
	var ps []int
	for p, m := range s.fChildMark {
		if m {
			ps = append(ps, p)
		}
	}
	sort.Ints(ps)
	return ps
}

// computeLevels cascades levels down the marked trees T: the root of each
// T (marked children but unmarked out-edge) is level 0.
func (s *state) computeLevels(D int) {
	if s.tree.IsRoot() && s.partInT && !s.partOutMkd {
		s.partLevel = 0
	}
	for hop := 0; hop < treeHeightBound; hop++ {
		var announce congest.Message = noneMsg{}
		if s.tree.IsRoot() && s.partLevel == hop {
			announce = valMsg{V: int64(s.partLevel)}
		}
		lvl := s.bcast(D, announce)
		sends := make(map[int]congest.Message)
		if v, ok := lvl.(valMsg); ok {
			for _, p := range s.markedChildPorts() {
				sends[p] = valMsg{V: v.V + 1}
			}
		}
		var got congest.Message = noneMsg{}
		for _, m := range s.crossRound(sends) {
			if s.isU && m.Port == s.uPort && s.partOutMkd {
				got = m.Msg
			}
		}
		res := s.cvg(D, got, combineFirst)
		if s.tree.IsRoot() && s.partLevel == -1 {
			if v, ok := res.(valMsg); ok {
				s.partLevel = int(v.V)
			}
		}
	}
}

// aggregateParityWeights sums, at each T root, the total weight of even
// edges (child at even level) and odd edges, level by level bottom-up.
func (s *state) aggregateParityWeights(D int) (w0, w1 int64) {
	// acc accumulates this part's subtree sums at the root.
	var acc pairMsg
	if s.tree.IsRoot() && s.partInT && s.partOutMkd && s.partLevel > 0 {
		// Own contribution: the out-edge's weight in its parity class.
		if s.partLevel%2 == 0 {
			acc.A = s.partWeight
		} else {
			acc.B = s.partWeight
		}
	}
	for hop := treeHeightBound; hop >= 1; hop-- {
		var send congest.Message = noneMsg{}
		if s.tree.IsRoot() && s.partLevel == hop && s.partOutMkd {
			send = acc
		}
		down := s.bcast(D, send)
		sends := make(map[int]congest.Message)
		if p, ok := down.(pairMsg); ok && s.isU && s.partOutMkd {
			sends[s.uPort] = p
		}
		own := pairMsg{}
		for _, m := range s.crossRound(sends) {
			if pm, ok := m.Msg.(pairMsg); ok && s.fChildMark[m.Port] {
				own.A += pm.A
				own.B += pm.B
			}
		}
		sub := s.cvg(D, own, combinePairSum).(pairMsg)
		if s.tree.IsRoot() {
			acc.A += sub.A
			acc.B += sub.B
		}
	}
	if s.tree.IsRoot() && s.partInT && s.partLevel == 0 {
		return acc.A, acc.B
	}
	return 0, 0
}

// decideContraction broadcasts the even/odd decision from each T root
// down the marked tree; each part then knows whether its out-edge
// contracts.
func (s *state) decideContraction(D int, w0, w1 int64) {
	parity := int64(-1)
	if s.tree.IsRoot() && s.partInT && s.partLevel == 0 {
		if w0 >= w1 {
			parity = 0
		} else {
			parity = 1
		}
	}
	for hop := 0; hop < treeHeightBound; hop++ {
		var announce congest.Message = noneMsg{}
		if s.tree.IsRoot() && s.partLevel == hop && parity >= 0 {
			announce = valMsg{V: parity}
		}
		par := s.bcast(D, announce)
		sends := make(map[int]congest.Message)
		if v, ok := par.(valMsg); ok {
			for _, p := range s.markedChildPorts() {
				sends[p] = v
			}
		}
		var got congest.Message = noneMsg{}
		for _, m := range s.crossRound(sends) {
			if s.isU && m.Port == s.uPort && s.partOutMkd {
				got = m.Msg
			}
		}
		res := s.cvg(D, got, combineFirst)
		if s.tree.IsRoot() && parity == -1 {
			if v, ok := res.(valMsg); ok {
				parity = v.V
			}
		}
	}
	if s.tree.IsRoot() && s.partInT && s.partOutMkd && s.partLevel > 0 && parity >= 0 {
		even := s.partLevel%2 == 0
		s.partContract = (even && parity == 0) || (!even && parity == 1)
	}
}

// contract merges each contracting part into its F-parent: all nodes
// adopt the parent's root id, the path from u^j to the old root flips
// orientation (Lemma 6), and u^j attaches under v^j.
func (s *state) contract(D int) {
	var ann congest.Message = noneMsg{}
	if s.tree.IsRoot() && s.partContract {
		ann = valMsg{V: s.partTarget}
	}
	dec := s.bcast(D, ann)
	newRoot, merging := int64(0), false
	if v, ok := dec.(valMsg); ok {
		newRoot, merging = v.V, true
	}

	// Path flip: u^j starts; each node on the old root path reverses its
	// parent pointer. Budget D rounds.
	deadline := s.api.Round() + D
	if merging && s.isU {
		oldParent := s.tree.ParentPort
		s.tree.ParentPort = s.uPort
		if oldParent >= 0 {
			s.api.Send(oldParent, flipMsg{})
			s.tree.ChildPorts = append(s.tree.ChildPorts, oldParent)
			sort.Ints(s.tree.ChildPorts)
		}
	}
	flipped := merging && s.isU
	for s.api.Round() < deadline {
		inbox := s.api.SleepUntil(deadline)
		for _, m := range inbox {
			if _, ok := m.Msg.(flipMsg); !ok {
				panic("partition: unexpected message during flip")
			}
			if flipped {
				panic("partition: node flipped twice")
			}
			flipped = true
			oldParent := s.tree.ParentPort
			// The sender (a former child) becomes the parent.
			s.tree.ParentPort = m.Port
			removePort(&s.tree.ChildPorts, m.Port)
			if oldParent >= 0 {
				s.api.Send(oldParent, flipMsg{})
				s.tree.ChildPorts = append(s.tree.ChildPorts, oldParent)
				sort.Ints(s.tree.ChildPorts)
			}
		}
	}

	// Attach round: u^j tells v^j it is now a tree child.
	sends := make(map[int]congest.Message)
	if merging && s.isU {
		sends[s.uPort] = attachMsg{}
	}
	for _, m := range s.crossRound(sends) {
		if _, ok := m.Msg.(attachMsg); ok {
			s.tree.ChildPorts = append(s.tree.ChildPorts, m.Port)
			sort.Ints(s.tree.ChildPorts)
		}
	}
	if merging {
		s.rootID = newRoot
	}
}

func removePort(ports *[]int, p int) {
	out := (*ports)[:0]
	for _, q := range *ports {
		if q != p {
			out = append(out, q)
		}
	}
	*ports = out
}
