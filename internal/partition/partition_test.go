package partition

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func mustStageI(t *testing.T, g *graph.Graph, opts Options, seed int64) ([]*Outcome, []int64) {
	t.Helper()
	outs, ids, _, err := CollectStageI(g, opts, seed)
	if err != nil {
		t.Fatalf("stage I run failed: %v", err)
	}
	return outs, ids
}

func finalDiamBound(outs []*Outcome) int {
	maxPhase := 0
	for _, o := range outs {
		if o.PhasesRun > maxPhase {
			maxPhase = o.PhasesRun
		}
	}
	return DiamBound(maxPhase + 1)
}

func TestStageIOnPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := Options{Epsilon: 0.5}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(6, 7)},
		{"cycle", graph.Cycle(30)},
		{"tree", graph.RandomTree(40, rng)},
		{"maxplanar", graph.MaximalPlanar(40, rng)},
		{"path", graph.Path(25)},
		{"outerplanar", graph.Outerplanar(30, rng)},
	}
	for _, c := range cases {
		outs, ids := mustStageI(t, c.g, opts, 7)
		if AnyRejected(outs) {
			t.Errorf("%s: Stage I rejected a planar graph (one-sidedness violated)", c.name)
			continue
		}
		if err := ValidateOutcomes(c.g, ids, outs, finalDiamBound(outs)); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		// Claim 3: when Stage I completes, the cut is at most eps*m/2.
		cut := CutEdges(c.g, outs)
		if float64(cut) > opts.Epsilon*float64(c.g.M())/2 {
			t.Errorf("%s: cut %d > eps*m/2 = %.1f", c.name, cut, opts.Epsilon*float64(c.g.M())/2)
		}
	}
}

func TestStageIMergesConnectedPlanarFully(t *testing.T) {
	// With the paper schedule and a planar input, parts keep merging; a
	// small connected graph ends as a single part (cut 0, early exit).
	g := graph.Grid(5, 5)
	outs, _ := mustStageI(t, g, Options{Epsilon: 0.25}, 3)
	if NumParts(outs) != 1 {
		t.Fatalf("parts = %d, want 1", NumParts(outs))
	}
	if CutEdges(g, outs) != 0 {
		t.Fatal("single part must have zero cut")
	}
	for _, o := range outs {
		if !o.EarlyExit {
			t.Fatal("fully merged part must exit early")
		}
	}
}

func TestStageIRejectsDenseCore(t *testing.T) {
	// K11 has arboricity 6 > 3: the first forest-decomposition step must
	// leave active nodes, producing reject evidence.
	g := graph.Complete(11)
	_, _, res, err := CollectStageI(g, Options{Epsilon: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected() {
		t.Fatal("K11 must produce arboricity evidence")
	}
}

func TestStageIRejectsEmbeddedDenseCore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ConnectParts(graph.DisjointUnion(graph.Grid(8, 8), graph.Complete(12)), rng)
	_, _, res, err := CollectStageI(g, Options{Epsilon: 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected() {
		t.Fatal("hidden K12 must produce arboricity evidence")
	}
}

func TestStageIDisconnectedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.DisjointUnion(graph.Grid(4, 4), graph.Cycle(9), graph.RandomTree(12, rng))
	outs, ids := mustStageI(t, g, Options{Epsilon: 0.25}, 8)
	if AnyRejected(outs) {
		t.Fatal("planar components must not reject")
	}
	if err := ValidateOutcomes(g, ids, outs, finalDiamBound(outs)); err != nil {
		t.Fatal(err)
	}
	// Components never merge with each other.
	comp, _ := g.Components()
	for v := 0; v < g.N(); v++ {
		for w := v + 1; w < g.N(); w++ {
			if outs[v].RootID == outs[w].RootID && comp[v] != comp[w] {
				t.Fatal("parts crossed component boundaries")
			}
		}
	}
}

func TestStageIDeterminism(t *testing.T) {
	g := graph.Grid(5, 6)
	outs1, _ := mustStageI(t, g, Options{Epsilon: 0.25}, 11)
	outs2, _ := mustStageI(t, g, Options{Epsilon: 0.25}, 11)
	for v := range outs1 {
		if outs1[v].RootID != outs2[v].RootID || outs1[v].PhasesRun != outs2[v].PhasesRun {
			t.Fatalf("node %d: outcomes differ across identical runs", v)
		}
	}
}

func TestStageIPhaseProgress(t *testing.T) {
	// Parts must shrink in number as phases proceed; at least the node
	// count must drop below n after phase 1 on a cycle (every aux node
	// has out-degree and merging contracts something).
	g := graph.Cycle(24)
	outs, _ := mustStageI(t, g, Options{Epsilon: 0.5}, 13)
	if NumParts(outs) >= g.N() {
		t.Fatalf("no merging happened: %d parts", NumParts(outs))
	}
}

func TestStageIRandomizedVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []*graph.Graph{
		graph.Grid(5, 5),
		graph.MaximalPlanar(35, rng),
		graph.RandomTree(30, rng),
	}
	opts := Options{Epsilon: 0.5, Variant: Randomized, Delta: 0.125}
	for i, g := range cases {
		outs, ids, _, err := CollectStageI(g, opts, int64(20+i))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if AnyRejected(outs) {
			t.Fatalf("case %d: randomized variant rejected (it has no reject path)", i)
		}
		if err := ValidateOutcomes(g, ids, outs, finalDiamBound(outs)); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestStageIRandomizedCutBound(t *testing.T) {
	// Theorem 4 (minor-free promise): with probability 1-delta the cut is
	// at most eps*n... we assert the weaker empirical property that most
	// seeds achieve it.
	g := graph.Grid(8, 8)
	eps := 0.5
	good := 0
	const seeds = 6
	for s := int64(0); s < seeds; s++ {
		outs, _, _, err := CollectStageI(g, Options{Epsilon: eps, Variant: Randomized}, 100+s)
		if err != nil {
			t.Fatal(err)
		}
		if float64(CutEdges(g, outs)) <= eps*float64(g.N()) {
			good++
		}
	}
	if good < seeds-1 {
		t.Fatalf("cut bound met on only %d/%d seeds", good, seeds)
	}
}

func TestStageIPracticalSchedule(t *testing.T) {
	g := graph.Grid(6, 6)
	opts := Options{Epsilon: 0.25, Schedule: PracticalSchedule}
	outs, ids := mustStageI(t, g, opts, 15)
	if AnyRejected(outs) {
		t.Fatal("planar graph rejected")
	}
	if err := ValidateOutcomes(g, ids, outs, finalDiamBound(outs)); err != nil {
		t.Fatal(err)
	}
}

func TestElkinNeimanBaseline(t *testing.T) {
	g := graph.Grid(10, 10)
	eps := 0.4
	outs, ids, res, err := CollectEN(g, eps, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOutcomes(g, ids, outs, 0); err != nil {
		t.Fatal(err)
	}
	// Diameter bound O(log n / eps): flooding lasts at most 2*cap rounds,
	// so cluster radius <= 2*cap.
	capR := ENShiftCap(g.N(), eps/2)
	if d := MaxPartDiameter(g, outs); d > 4*capR {
		t.Fatalf("EN part diameter %d > %d", d, 4*capR)
	}
	// Rounds are O(log n / eps), far below Stage I budgets.
	if res.Metrics.Rounds > 10*capR {
		t.Fatalf("EN used %d rounds, cap is %d", res.Metrics.Rounds, 10*capR)
	}
	// Cut is eps*m in expectation; allow generous slack.
	if cut := CutEdges(g, outs); float64(cut) > 3*eps*float64(g.M()) {
		t.Fatalf("EN cut %d too large (m=%d, eps=%.2f)", cut, g.M(), eps)
	}
}

func TestElkinNeimanStatisticalCut(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.Grid(12, 12)
	eps := 0.3
	total := 0
	const seeds = 8
	for s := int64(0); s < seeds; s++ {
		outs, _, _, err := CollectEN(g, eps, 200+s)
		if err != nil {
			t.Fatal(err)
		}
		total += CutEdges(g, outs)
	}
	mean := float64(total) / seeds
	if mean > 2*eps*float64(g.M()) {
		t.Fatalf("mean EN cut %.1f exceeds 2*eps*m = %.1f", mean, 2*eps*float64(g.M()))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Epsilon: 0.1}.withDefaults()
	if o.Alpha != 3 || o.Variant != Deterministic || o.Schedule != PaperSchedule {
		t.Fatalf("bad defaults: %+v", o)
	}
	if o.Phases() < 36 {
		t.Fatalf("paper schedule phases %d too small for eps=0.1", o.Phases())
	}
	p := Options{Epsilon: 0.1, Schedule: PracticalSchedule}.withDefaults()
	if p.Phases() > 10 {
		t.Fatalf("practical schedule phases %d too large", p.Phases())
	}
}

func TestDiamBound(t *testing.T) {
	// d_i = 3^(i-1) - 1.
	want := []int{0, 2, 8, 26, 80}
	for i, w := range want {
		if d := DiamBound(i + 1); d != w {
			t.Fatalf("DiamBound(%d) = %d, want %d", i+1, d, w)
		}
	}
	// Cap prevents overflow.
	if DiamBound(100) != diamCap {
		t.Fatal("DiamBound must saturate at the cap")
	}
}

func TestStageIBitBoundRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.MaximalPlanar(30, rng)
	_, _, res, err := CollectStageI(g, Options{Epsilon: 0.5}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxMessageBits > res.Metrics.BitBound {
		t.Fatalf("message of %d bits exceeded bound %d", res.Metrics.MaxMessageBits, res.Metrics.BitBound)
	}
}

func TestStageILargerGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("larger run")
	}
	g := graph.Grid(12, 12)
	outs, ids := mustStageI(t, g, Options{Epsilon: 0.25}, 29)
	if AnyRejected(outs) {
		t.Fatal("planar graph rejected")
	}
	if err := ValidateOutcomes(g, ids, outs, finalDiamBound(outs)); err != nil {
		t.Fatal(err)
	}
	cut := CutEdges(g, outs)
	if float64(cut) > 0.25*float64(g.M())/2 {
		t.Fatalf("cut %d exceeds eps*m/2", cut)
	}
}
