package partition

import (
	"cmp"
	"slices"

	"repro/internal/congest"
)

// Message vocabulary of Stage I. Every type reports its size per the
// CONGEST O(log n)-bit discipline; list-valued messages are bounded by
// 3*alpha+1 entries (constant), so all messages are O(log n) bits.

// bitsVal is the encoded size of one integer field: sign bit plus value.
func bitsVal(v int64) int {
	if v < 0 {
		v = -v
	}
	return congest.BitsForValue(v) + 1
}

// noneMsg is an explicit "no contribution" marker used in convergecasts.
type noneMsg struct{}

func (noneMsg) Bits() int { return 1 }

// valMsg carries a single value (color, level, weight, id).
type valMsg struct{ V int64 }

func (m valMsg) Bits() int { return 2 + bitsVal(m.V) }

// smallVals interns boxed valMsg values for the dominant small payloads
// (colors, levels, flags, ids up to n) so that hot paths do not allocate
// on every interface conversion. vmsg(v) is behaviorally identical to
// congest.Message(valMsg{V: v}).
var smallVals = func() [1024]congest.Message {
	var a [1024]congest.Message
	for i := range a {
		a[i] = valMsg{V: int64(i)}
	}
	return a
}()

func vmsg(v int64) congest.Message {
	if v >= 0 && v < int64(len(smallVals)) {
		return smallVals[v]
	}
	return valMsg{V: v}
}

// pairMsg carries two values.
type pairMsg struct{ A, B int64 }

func (m pairMsg) Bits() int { return 2 + bitsVal(m.A) + bitsVal(m.B) }

// rootAnnounce is the phase-start boundary discovery message.
type rootAnnounce struct{ Root int64 }

func (m rootAnnounce) Bits() int { return 2 + bitsVal(m.Root) }

// statusMsg is the per-super-round broadcast from a part root: the part's
// activity flag and the roots it needs activity reports for (at most
// 3*alpha entries).
type statusMsg struct {
	Active bool
	Watch  []int64
}

func (m statusMsg) Bits() int {
	b := 3
	for _, w := range m.Watch {
		b += bitsVal(w)
	}
	return b
}

// statusInterned are the two watch-free status values, pre-boxed: most
// part roots broadcast an empty watch list every super-round, and the
// interned values keep that hot path allocation-free. An empty Watch
// and a nil Watch are indistinguishable to receivers (same Bits, same
// iteration), so the substitution does not change Results.
var statusInterned = [2]congest.Message{
	statusMsg{Active: false},
	statusMsg{Active: true},
}

// smsg boxes a statusMsg, reusing the interned watch-free values.
func smsg(active bool, watch []int64) congest.Message {
	if len(watch) == 0 {
		if active {
			return statusInterned[1]
		}
		return statusInterned[0]
	}
	return statusMsg{Active: active, Watch: watch}
}

// activityMsg crosses part boundaries each super-round.
type activityMsg struct {
	Root   int64
	Active bool
}

func (m activityMsg) Bits() int { return 3 + bitsVal(m.Root) }

// rootWeight is one (neighbor part, edge count) entry.
type rootWeight struct {
	Root   int64
	Weight int64
}

// rootFlag is one (watched part, still-active) entry.
type rootFlag struct {
	Root   int64
	Active bool
}

// decompAgg is the convergecast message of a forest-decomposition
// super-round: the set of active neighbor parts with edge counts (capped),
// plus activity flags for the watched parts.
type decompAgg struct {
	TooMany bool
	Entries []rootWeight
	Watch   []rootFlag
}

func (m decompAgg) Bits() int {
	b := 4
	for _, e := range m.Entries {
		b += bitsVal(e.Root) + bitsVal(e.Weight)
	}
	for _, w := range m.Watch {
		b += bitsVal(w.Root) + 1
	}
	return b
}

// mergeDecomp merges child aggregates into own, keeping entries sorted by
// root id and capped at limit active parts.
func mergeDecomp(own decompAgg, children []congest.Message, limit int) decompAgg {
	byRoot := make(map[int64]int64)
	tooMany := own.TooMany
	for _, e := range own.Entries {
		byRoot[e.Root] += e.Weight
	}
	watch := make(map[int64]bool)
	for _, w := range own.Watch {
		watch[w.Root] = w.Active
	}
	for _, c := range children {
		a, ok := c.(decompAgg)
		if !ok {
			continue // noneMsg from non-contributing children
		}
		tooMany = tooMany || a.TooMany
		for _, e := range a.Entries {
			byRoot[e.Root] += e.Weight
		}
		for _, w := range a.Watch {
			watch[w.Root] = w.Active
		}
	}
	out := decompAgg{TooMany: tooMany}
	for r, w := range byRoot {
		out.Entries = append(out.Entries, rootWeight{Root: r, Weight: w})
	}
	slices.SortFunc(out.Entries, func(a, b rootWeight) int { return cmp.Compare(a.Root, b.Root) })
	if len(out.Entries) > limit {
		out.TooMany = true
		out.Entries = out.Entries[:limit]
	}
	for r, f := range watch {
		out.Watch = append(out.Watch, rootFlag{Root: r, Active: f})
	}
	slices.SortFunc(out.Watch, func(a, b rootFlag) int { return cmp.Compare(a.Root, b.Root) })
	return out
}

// selMsg announces the selected out-edge (target part and weight).
type selMsg struct {
	Target int64
	Weight int64
	HasOut bool
}

func (m selMsg) Bits() int { return 3 + bitsVal(m.Target) + bitsVal(m.Weight) }

// fSelect notifies the designated neighbor v^j that this part selected an
// edge into v^j's part.
type fSelect struct{ ChildRoot int64 }

func (m fSelect) Bits() int { return 2 + bitsVal(m.ChildRoot) }

// reportMsg carries the part's final color and out-edge weight to its
// designated node for cross-boundary reporting.
type reportMsg struct {
	Color  int64
	Weight int64
}

func (m reportMsg) Bits() int { return 2 + bitsVal(m.Color) + bitsVal(m.Weight) }

// childReport crosses the boundary from u^j to v^j after coloring.
type childReport struct {
	Color  int64
	Weight int64
}

func (m childReport) Bits() int { return 2 + bitsVal(m.Color) + bitsVal(m.Weight) }

// colorSums aggregates incoming-edge weights per child color (1..3).
type colorSums struct{ W [4]int64 }

func (m colorSums) Bits() int {
	return 2 + bitsVal(m.W[1]) + bitsVal(m.W[2]) + bitsVal(m.W[3])
}

// markMsg is the root's marking decision broadcast.
type markMsg struct {
	MarkOut bool
	// InClass: 0 none, 1..3 mark in-edges from children of that color,
	// markAllIn marks all incoming edges.
	InClass int8
}

const markAllIn = int8(4)

func (markMsg) Bits() int { return 2 + 4 }

// edgeMarked crosses the boundary to tell the other endpoint of an aux
// edge that the edge is marked.
type edgeMarked struct{}

func (edgeMarked) Bits() int { return 2 }

// attachMsg tells v^j that u^j is now its tree child (contraction).
type attachMsg struct{}

func (attachMsg) Bits() int { return 2 }

// flipMsg reverses tree-edge orientation along the path to the old root.
type flipMsg struct{}

func (flipMsg) Bits() int { return 2 }

// trialMsg is one weighted-edge-selection candidate (randomized variant):
// the candidate node's id, its chosen target part, and the subtree's total
// cross-degree (for reservoir-style uniform sampling up the tree).
type trialMsg struct {
	NodeID int64
	Target int64
	Degree int64
}

func (m trialMsg) Bits() int {
	return 2 + bitsVal(m.NodeID) + bitsVal(m.Target) + bitsVal(m.Degree)
}
