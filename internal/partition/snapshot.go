package partition

// Checkpoint support for the Stage I step interpreter: message codecs for
// the Stage I vocabulary, the Snapshottable implementation of stageINode,
// and the restore entry point on StageIPlan. The encoding policy is
// "every mutable field except derivable scratch": per-op scratch buffers
// (ownEntries, aggEntries, fdLists, crossScratch, ...) are rebuilt from
// scratch by the next operation that uses them, and the boxed activity
// cache (actMsgRoot/actMsgT/actMsgF) is invalidated by construction —
// rootIDs are always >= 1, so the zero-valued cache key after a restore
// forces a rebuild. Function-typed fields cannot be serialized; Step
// reinstalls them on the first wake after a restore (reattach).

import (
	"fmt"

	"repro/internal/congest"
)

// SnapKindStageI identifies a Stage I interpreter record inside an engine
// checkpoint (congest.Snapshottable.SnapshotKind).
const SnapKindStageI uint16 = 1

// Message codec kinds 32..63 are reserved for package partition
// (internal/congest uses 1..31, internal/core 64..95).
const (
	msgKindNone uint16 = 32 + iota
	msgKindVal
	msgKindPair
	msgKindRootAnnounce
	msgKindStatus
	msgKindActivity
	msgKindDecompAgg
	msgKindSel
	msgKindFSelect
	msgKindReport
	msgKindChildReport
	msgKindColorSums
	msgKindMark
	msgKindEdgeMarked
	msgKindAttach
	msgKindFlip
	msgKindTrial
)

func init() {
	congest.RegisterMessageCodec(msgKindNone, noneMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return noneMsg{} })
	congest.RegisterMessageCodec(msgKindVal, valMsg{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Varint(m.(valMsg).V) },
		func(d *congest.SnapDecoder) congest.Message { return vmsg(d.Varint()) })
	congest.RegisterMessageCodec(msgKindPair, pairMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			p := m.(pairMsg)
			e.Varint(p.A)
			e.Varint(p.B)
		},
		func(d *congest.SnapDecoder) congest.Message {
			p := pairMsg{A: d.Varint(), B: d.Varint()}
			if p == (pairMsg{}) {
				return zeroPair
			}
			return p
		})
	congest.RegisterMessageCodec(msgKindRootAnnounce, rootAnnounce{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Varint(m.(rootAnnounce).Root) },
		func(d *congest.SnapDecoder) congest.Message { return rootAnnounce{Root: d.Varint()} })
	congest.RegisterMessageCodec(msgKindStatus, statusMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			s := m.(statusMsg)
			e.Bool(s.Active)
			e.Int64s(s.Watch)
		},
		func(d *congest.SnapDecoder) congest.Message {
			active := d.Bool()
			return smsg(active, d.Int64s())
		})
	congest.RegisterMessageCodec(msgKindActivity, activityMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			a := m.(activityMsg)
			e.Varint(a.Root)
			e.Bool(a.Active)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return activityMsg{Root: d.Varint(), Active: d.Bool()}
		})
	congest.RegisterMessageCodec(msgKindDecompAgg, decompAgg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			a := m.(decompAgg)
			e.Bool(a.TooMany)
			encRootWeights(e, a.Entries)
			encRootFlags(e, a.Watch)
		},
		func(d *congest.SnapDecoder) congest.Message {
			a := decompAgg{TooMany: d.Bool()}
			a.Entries = decRootWeights(d)
			a.Watch = decRootFlags(d)
			if !a.TooMany && a.Entries == nil && a.Watch == nil {
				return emptyDecomp
			}
			return a
		})
	congest.RegisterMessageCodec(msgKindSel, selMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			s := m.(selMsg)
			e.Varint(s.Target)
			e.Varint(s.Weight)
			e.Bool(s.HasOut)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return selMsg{Target: d.Varint(), Weight: d.Varint(), HasOut: d.Bool()}
		})
	congest.RegisterMessageCodec(msgKindFSelect, fSelect{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Varint(m.(fSelect).ChildRoot) },
		func(d *congest.SnapDecoder) congest.Message { return fSelect{ChildRoot: d.Varint()} })
	congest.RegisterMessageCodec(msgKindReport, reportMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			r := m.(reportMsg)
			e.Varint(r.Color)
			e.Varint(r.Weight)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return reportMsg{Color: d.Varint(), Weight: d.Varint()}
		})
	congest.RegisterMessageCodec(msgKindChildReport, childReport{},
		func(e *congest.SnapEncoder, m congest.Message) {
			r := m.(childReport)
			e.Varint(r.Color)
			e.Varint(r.Weight)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return childReport{Color: d.Varint(), Weight: d.Varint()}
		})
	congest.RegisterMessageCodec(msgKindColorSums, colorSums{},
		func(e *congest.SnapEncoder, m congest.Message) {
			c := m.(colorSums)
			for _, w := range c.W {
				e.Varint(w)
			}
		},
		func(d *congest.SnapDecoder) congest.Message {
			var c colorSums
			for i := range c.W {
				c.W[i] = d.Varint()
			}
			if c == (colorSums{}) {
				return zeroColorSums
			}
			return c
		})
	congest.RegisterMessageCodec(msgKindMark, markMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			mk := m.(markMsg)
			e.Bool(mk.MarkOut)
			e.Int(int(mk.InClass))
		},
		func(d *congest.SnapDecoder) congest.Message {
			return markMsg{MarkOut: d.Bool(), InClass: int8(d.Int())}
		})
	congest.RegisterMessageCodec(msgKindEdgeMarked, edgeMarked{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return edgeMarked{} })
	congest.RegisterMessageCodec(msgKindAttach, attachMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return attachMsg{} })
	congest.RegisterMessageCodec(msgKindFlip, flipMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return flipMsg{} })
	congest.RegisterMessageCodec(msgKindTrial, trialMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			t := m.(trialMsg)
			e.Varint(t.NodeID)
			e.Varint(t.Target)
			e.Varint(t.Degree)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return trialMsg{NodeID: d.Varint(), Target: d.Varint(), Degree: d.Varint()}
		})
}

// encRootWeights appends a nil-preserving []rootWeight encoding.
func encRootWeights(e *congest.SnapEncoder, vs []rootWeight) {
	if vs == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(vs)) + 1)
	for _, v := range vs {
		e.Varint(v.Root)
		e.Varint(v.Weight)
	}
}

func decRootWeights(d *congest.SnapDecoder) []rootWeight {
	n := d.Uvarint()
	if n == 0 || d.Err() != nil {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.Int() // force a sticky truncation error via a failed read
		return nil
	}
	vs := make([]rootWeight, 0, n)
	for i := uint64(0); i < n; i++ {
		vs = append(vs, rootWeight{Root: d.Varint(), Weight: d.Varint()})
	}
	return vs
}

// encRootFlags appends a nil-preserving []rootFlag encoding.
func encRootFlags(e *congest.SnapEncoder, vs []rootFlag) {
	if vs == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(vs)) + 1)
	for _, v := range vs {
		e.Varint(v.Root)
		e.Bool(v.Active)
	}
}

func decRootFlags(d *congest.SnapDecoder) []rootFlag {
	n := d.Uvarint()
	if n == 0 || d.Err() != nil {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.Int()
		return nil
	}
	vs := make([]rootFlag, 0, n)
	for i := uint64(0); i < n; i++ {
		vs = append(vs, rootFlag{Root: d.Varint(), Active: d.Bool()})
	}
	return vs
}

// SnapshotKind implements congest.Snapshottable.
func (s *stageINode) SnapshotKind() uint16 { return SnapKindStageI }

// EncodeState implements congest.Snapshottable. Field order is the
// declaration order of stageINode; ResumeNode mirrors it exactly.
func (s *stageINode) EncodeState(e *congest.SnapEncoder) {
	e.Bool(s.started)
	e.Bool(s.finished)
	e.Int(s.phase)
	e.Int(s.pc)
	e.Bool(s.inOp)
	e.Int(s.D)
	e.Int(s.phasesRun)
	e.Bool(s.earlyExit)
	s.bd.EncodeState(e)
	s.cv.EncodeState(e)
	e.Varint(s.rootID)
	e.Tree(s.tree)
	e.Bool(s.rejected)
	e.Int64s(s.nbrRoot)
	e.Bools(s.cross)
	e.Bool(s.isU)
	e.Int(s.uPort)
	e.Bools(s.fChild)
	e.Int64s(s.fChildColor)
	e.Int64s(s.fChildWt)
	e.Bools(s.fChildMark)
	e.Bool(s.partHasOut)
	e.Varint(s.partTarget)
	e.Varint(s.partWeight)
	e.Bool(s.partMutual)
	e.Varint(s.partColor)
	e.Varint(s.partPreShift)
	e.Bool(s.partHasKids)
	e.Bool(s.partOutMkd)
	e.Bool(s.partInT)
	e.Int(s.partLevel)
	e.Bool(s.partContract)
	e.Bool(s.fdActive)
	e.Bool(s.fdResolved)
	e.Int64s(s.watch)
	encRootWeights(e, s.pending)
	encRootWeights(e, s.outs)
	e.Bools(s.actPort)
	e.Bools(s.actSeen)
	e.Bool(s.stStatus.Active)
	e.Int64s(s.stStatus.Watch)
	e.Bool(s.fdJoined)
	e.Bool(s.fdDirty)
	e.Uvarint(s.fdCleanMask)
	e.Bool(s.fdFF)
	e.Bool(s.cascFF)
	e.Int(s.fdFFUntil)
	e.Varint(s.bestW)
	e.Varint(s.bestTarget)
	e.Msg(s.opMsg)
	e.Msg(s.crossGot)
	e.Varint(s.crossPair.A)
	e.Varint(s.crossPair.B)
	e.Varint(s.gotSel.Target)
	e.Varint(s.gotSel.Weight)
	e.Bool(s.gotSel.HasOut)
	e.Msg(s.cvRes)
	e.Varint(s.dropDec)
	e.Varint(s.mbParent)
	e.Bool(s.mkDec.MarkOut)
	e.Int(int(s.mkDec.InClass))
	e.Varint(s.mkPC)
	e.Bool(s.mkPCOK)
	for _, w := range s.sums.W {
		e.Varint(w)
	}
	e.Varint(s.acc.A)
	e.Varint(s.acc.B)
	e.Varint(s.parity)
	e.Varint(s.newRoot)
	e.Bool(s.merging)
	e.Bool(s.flipped)
	e.Int(s.deadline)
}

// ResumeNode reconstructs one node's Stage I program from a checkpoint
// record written by EncodeState. The plan must be compiled from the same
// Options and n as the checkpointed run; onDone plays the role it has in
// NewNode. The returned program reinstalls its function-typed state
// (convergecast combiners) on its first Step.
func (pl *StageIPlan) ResumeNode(d *congest.SnapDecoder, onDone func(api *congest.StepAPI, out *Outcome) congest.Status) (congest.StepProgram, error) {
	s := pl.allocNode()
	s.plan = pl
	s.onDone = onDone
	s.restored = true
	s.started = d.Bool()
	s.finished = d.Bool()
	s.phase = d.Int()
	s.pc = d.Int()
	s.inOp = d.Bool()
	s.D = d.Int()
	s.phasesRun = d.Int()
	s.earlyExit = d.Bool()
	s.bd.DecodeState(d)
	s.cv.DecodeState(d)
	s.rootID = d.Varint()
	s.tree = d.Tree()
	s.rejected = d.Bool()
	s.nbrRoot = d.Int64s()
	s.cross = d.Bools()
	s.isU = d.Bool()
	s.uPort = d.Int()
	s.fChild = d.Bools()
	s.fChildColor = d.Int64s()
	s.fChildWt = d.Int64s()
	s.fChildMark = d.Bools()
	s.partHasOut = d.Bool()
	s.partTarget = d.Varint()
	s.partWeight = d.Varint()
	s.partMutual = d.Bool()
	s.partColor = d.Varint()
	s.partPreShift = d.Varint()
	s.partHasKids = d.Bool()
	s.partOutMkd = d.Bool()
	s.partInT = d.Bool()
	s.partLevel = d.Int()
	s.partContract = d.Bool()
	s.fdActive = d.Bool()
	s.fdResolved = d.Bool()
	s.watch = d.Int64s()
	s.pending = decRootWeights(d)
	s.outs = decRootWeights(d)
	s.actPort = d.Bools()
	s.actSeen = d.Bools()
	s.stStatus.Active = d.Bool()
	s.stStatus.Watch = d.Int64s()
	s.fdJoined = d.Bool()
	s.fdDirty = d.Bool()
	s.fdCleanMask = d.Uvarint()
	s.fdFF = d.Bool()
	s.cascFF = d.Bool()
	s.fdFFUntil = d.Int()
	s.bestW = d.Varint()
	s.bestTarget = d.Varint()
	s.opMsg = d.Msg()
	s.crossGot = d.Msg()
	s.crossPair.A = d.Varint()
	s.crossPair.B = d.Varint()
	s.gotSel.Target = d.Varint()
	s.gotSel.Weight = d.Varint()
	s.gotSel.HasOut = d.Bool()
	s.cvRes = d.Msg()
	s.dropDec = d.Varint()
	s.mbParent = d.Varint()
	s.mkDec.MarkOut = d.Bool()
	s.mkDec.InClass = int8(d.Int())
	s.mkPC = d.Varint()
	s.mkPCOK = d.Bool()
	for i := range s.sums.W {
		s.sums.W[i] = d.Varint()
	}
	s.acc.A = d.Varint()
	s.acc.B = d.Varint()
	s.parity = d.Varint()
	s.newRoot = d.Varint()
	s.merging = d.Bool()
	s.flipped = d.Bool()
	s.deadline = d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if !s.finished && (s.pc < 0 || s.pc >= len(pl.ops)) {
		return nil, fmt.Errorf("partition: stage I snapshot: pc %d out of range [0,%d)", s.pc, len(pl.ops))
	}
	// The plan's batching counters (fdParticipants/fdStable) are single-run
	// state, so the resumed run's fresh plan rebuilds them here from the
	// decoded nodes. ResumeNode runs before the engine starts, so plain
	// increments suffice. Finished nodes no longer vote: their phase is
	// over and its counter slots are never read again.
	if s.fdJoined && !s.finished && pl.fdParticipants != nil {
		p := s.phase - 1
		pl.fdParticipants[p]++
		for l := 1; l < pl.S && l < 64; l++ {
			if s.fdCleanMask&(1<<uint(l)) != 0 {
				pl.fdStable[p*pl.S+l]++
			}
		}
	}
	// The cascade-window tallies (DESIGN.md §10) rebuild the same way: a
	// root's restored T-membership, level, and contraction parity imply
	// exactly the tally writes its history performed this phase — level 0
	// and its parity are assigned in the hop-0 entry glue, level L >= 1
	// (and its parity) during hop L-1 of the respective cascade.
	if !s.finished && s.phase >= 1 && s.tree.ParentPort == -1 {
		p := s.phase - 1
		if s.partInT {
			pl.cascInT[p]++
		}
		if L := s.partLevel; L >= 0 && L <= treeHeightBound {
			slot := 0
			if L > 0 {
				slot = L - 1
			}
			pl.lvlAt[p*treeHeightBound+slot]++
			pl.lvlByVal[p*(treeHeightBound+1)+L]++
			if s.parity >= 0 {
				pl.decAt[p*treeHeightBound+slot]++
			}
		}
	}
	return s, nil
}

// reattach reinstalls the function-typed fields that a checkpoint cannot
// carry: the two closure combiners from initNode and, when a convergecast
// op is in flight, the op's combiner on the tree machine. Broadcast ops
// never carry a transform in Stage I (Begin is always called with nil),
// so bd needs no repair.
func (s *stageINode) reattach(api *congest.StepAPI) {
	s.fdCombine = func(own congest.Message, children []congest.Message) congest.Message {
		return s.mergeFD(own.(decompAgg), children)
	}
	s.trialCombine = func(own congest.Message, children []congest.Message) congest.Message {
		return combineTrial(api.Rand(), own, children)
	}
	if s.inOp {
		if op := &s.plan.ops[s.pc]; op.kind == sCvg {
			s.cv.SetCombine(s.cvgCombine(op))
		}
	}
}

// cvgCombine returns the combiner prepCvg would pick for op — the
// reinstall table for restored in-flight convergecasts. Kept next to
// reattach so a new sCvg tag that forgets to extend it fails loudly.
func (s *stageINode) cvgCombine(op *sOp) func(congest.Message, []congest.Message) congest.Message {
	if op.ff {
		return combineFirst
	}
	switch op.tag {
	case tHasCross, tMutual, tByParent, tAnyKid:
		return combineOr
	case tFDAgg:
		return s.fdCombine
	case tTrialPick:
		return s.trialCombine
	case tTrialWeight, tKids:
		return combineSum
	case tCand:
		return combineMin
	case tColorSums:
		return combineColorSums
	case tLvlUp, tDecUp:
		return combineFirst
	case tParUp:
		return combinePairSum
	}
	panic("partition: unknown cvg tag")
}
