package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// runStageI is CollectStageIStep with worker-count and checkpoint control,
// optionally collecting the concrete interpreter nodes so the batching
// tests can observe fast-forward state at checkpoint barriers.
func runStageI(g *graph.Graph, opts Options, seed int64, workers int,
	ck congest.CheckpointConfig, track *[]*stageINode) ([]*Outcome, []int64, *congest.Result, error) {
	ids := permIDs(g.N(), seed)
	outs := make([]*Outcome, g.N())
	plan := NewStageIPlan(opts, g.N())
	res, err := congest.RunStep(congest.Config{
		Graph:        g,
		Seed:         seed,
		IDs:          ids,
		StopOnReject: true,
		MaxRounds:    1 << 40,
		Workers:      workers,
		Checkpoint:   ck,
	}, func(node int) congest.StepProgram {
		sn := plan.NewNode(func(api *congest.StepAPI, out *Outcome) congest.Status {
			outs[api.Index()] = out
			return congest.Done()
		}).(*stageINode)
		if track != nil {
			*track = append(*track, sn)
		}
		return sn
	})
	return outs, ids, res, err
}

// resumeStageI restores a Stage I run from an engine checkpoint.
func resumeStageI(g *graph.Graph, opts Options, seed int64, workers int,
	snap []byte) ([]*Outcome, []int64, *congest.Result, error) {
	ids := permIDs(g.N(), seed)
	outs := make([]*Outcome, g.N())
	plan := NewStageIPlan(opts, g.N())
	res, err := congest.ResumeStep(congest.Config{
		Graph:        g,
		Seed:         seed,
		IDs:          ids,
		StopOnReject: true,
		MaxRounds:    1 << 40,
		Workers:      workers,
	}, snap, func(node int, kind uint16, d *congest.SnapDecoder) (congest.StepProgram, error) {
		if kind != SnapKindStageI {
			return nil, fmt.Errorf("unexpected snapshot kind %d", kind)
		}
		return plan.ResumeNode(d, func(api *congest.StepAPI, out *Outcome) congest.Status {
			outs[api.Index()] = out
			return congest.Done()
		})
	})
	return outs, ids, res, err
}

// stageIRun bundles one run's comparable artifacts.
type stageIRun struct {
	outs []*Outcome
	ids  []int64
	res  *congest.Result
}

func compareStageIRuns(t *testing.T, name string, want, got stageIRun) {
	t.Helper()
	if !reflect.DeepEqual(want.ids, got.ids) {
		t.Fatalf("%s: id assignment mismatch", name)
	}
	if !reflect.DeepEqual(want.res.Metrics, got.res.Metrics) {
		t.Fatalf("%s: metrics mismatch:\nwant: %+v\ngot:  %+v",
			name, want.res.Metrics, got.res.Metrics)
	}
	if !reflect.DeepEqual(want.res.Verdicts, got.res.Verdicts) {
		t.Fatalf("%s: verdicts mismatch", name)
	}
	for v := range want.outs {
		wo, go_ := want.outs[v], got.outs[v]
		if (wo == nil) != (go_ == nil) {
			t.Fatalf("%s: node %d outcome presence mismatch", name, v)
		}
		if wo == nil {
			continue
		}
		if wo.RootID != go_.RootID || wo.Rejected != go_.Rejected ||
			wo.PhasesRun != go_.PhasesRun || wo.EarlyExit != go_.EarlyExit ||
			wo.Tree.ParentPort != go_.Tree.ParentPort ||
			!equalPorts(wo.Tree.ChildPorts, go_.Tree.ChildPorts) {
			t.Fatalf("%s: node %d outcome mismatch:\nwant: %+v\ngot:  %+v",
				name, v, wo, go_)
		}
	}
}

// TestStageIBatchingEquivalence pins the DESIGN.md §10 contract: the
// super-round fast-forward changes nothing observable. Batched and
// unbatched (NoSuperRoundBatching) runs produce byte-identical Results —
// Metrics.Rounds, Messages, and TotalBits included — and identical
// per-node outcomes, across graph families, schedules, both Stage I
// variants, seeds, and worker counts {1, 2, 4}; and a run killed at a
// checkpoint cut inside a batched window resumes to the same Result.
func TestStageIBatchingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	farG, _ := graph.PlanarPlusRandomEdges(60, 40, rng)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(9, 9)},
		{"tree-plus-edges", graph.TreePlusRandomEdges(70, 18, rand.New(rand.NewSource(5)))},
		{"planar-plus-edges", farG},
		{"cycle", graph.Cycle(53)},
	}

	t.Run("batched-vs-unbatched", func(t *testing.T) {
		for _, fam := range families {
			for _, sched := range []Schedule{PaperSchedule, PracticalSchedule} {
				for _, variant := range []Variant{Deterministic, Randomized} {
					for seed := int64(0); seed < 2; seed++ {
						opts := Options{Epsilon: 0.25, Schedule: sched, Variant: variant}
						unb := opts
						unb.NoSuperRoundBatching = true
						uOuts, uIDs, uRes, uErr := runStageI(fam.g, unb, seed, 1, congest.CheckpointConfig{}, nil)
						if uErr != nil {
							t.Fatalf("%s/%v/variant%d/seed%d: unbatched: %v", fam.name, sched, variant, seed, uErr)
						}
						want := stageIRun{uOuts, uIDs, uRes}
						for _, w := range []int{1, 2, 4} {
							name := fmt.Sprintf("%s/%v/variant%d/seed%d/w%d", fam.name, sched, variant, seed, w)
							bOuts, bIDs, bRes, bErr := runStageI(fam.g, opts, seed, w, congest.CheckpointConfig{}, nil)
							if bErr != nil {
								t.Fatalf("%s: batched: %v", name, bErr)
							}
							compareStageIRuns(t, name, want, stageIRun{bOuts, bIDs, bRes})
						}
					}
				}
			}
		}
	})

	t.Run("kill-and-resume-mid-window", func(t *testing.T) {
		defer faultpoint.Reset()
		g := graph.Grid(9, 9)
		for seed := int64(0); seed < 2; seed++ {
			opts := Options{Epsilon: 0.25, Schedule: PracticalSchedule, Variant: Deterministic}

			bOuts, bIDs, bRes, err := runStageI(g, opts, seed, 1, congest.CheckpointConfig{}, nil)
			if err != nil {
				t.Fatalf("seed%d: baseline: %v", seed, err)
			}
			base := stageIRun{bOuts, bIDs, bRes}

			// Probe: checkpoint every barrier and find one taken while some
			// node is fast-forwarding through a batched super-round window
			// (fdFF, set at the decision barrier and cleared at fdFinish)
			// and one inside a cascade quiet-tail window (cascFF).
			var nodes []*stageINode
			barrier, fdCrash, cascCrash := 0, -1, -1
			probe := congest.CheckpointConfig{
				EveryBarriers: 1,
				Sink: func(round int, data []byte) error {
					barrier++
					for _, sn := range nodes {
						if fdCrash < 0 && sn.fdFF {
							fdCrash = barrier
						}
						if cascCrash < 0 && sn.cascFF {
							cascCrash = barrier
						}
					}
					return nil
				},
			}
			if _, _, _, err := runStageI(g, opts, seed, 1, probe, &nodes); err != nil {
				t.Fatalf("seed%d: probe run: %v", seed, err)
			}
			if fdCrash < 0 {
				t.Fatalf("seed%d: no checkpoint barrier cut a super-round window (batching never engaged?)", seed)
			}
			if cascCrash < 0 {
				t.Fatalf("seed%d: no checkpoint barrier cut a cascade window (quiet tails never engaged?)", seed)
			}

			for _, cut := range []struct {
				name    string
				crashAt int
			}{{"fd-window", fdCrash}, {"cascade-window", cascCrash}} {
				// Kill at that barrier; the latest checkpoint is the
				// mid-window snapshot.
				var last []byte
				ck := congest.CheckpointConfig{
					EveryBarriers: 1,
					Sink:          func(round int, data []byte) error { last = data; return nil },
					OnError: func(round int, err error) {
						t.Errorf("seed%d/%s: checkpoint error at round %d: %v", seed, cut.name, round, err)
					},
				}
				boom := errors.New("injected crash")
				faultpoint.Arm(congest.FaultBarrier, cut.crashAt, func() error { return boom })
				_, _, _, err = runStageI(g, opts, seed, 1, ck, nil)
				faultpoint.Disarm(congest.FaultBarrier)
				if !errors.Is(err, boom) {
					t.Fatalf("seed%d/%s: expected injected crash at barrier %d, got %v", seed, cut.name, cut.crashAt, err)
				}
				if last == nil {
					t.Fatalf("seed%d/%s: no checkpoint captured before crash", seed, cut.name)
				}

				for _, w := range []int{1, 2, 4} {
					rOuts, rIDs, rRes, err := resumeStageI(g, opts, seed, w, last)
					if err != nil {
						t.Fatalf("seed%d/%s/w%d: resume: %v", seed, cut.name, w, err)
					}
					compareStageIRuns(t, fmt.Sprintf("resume/seed%d/%s/w%d", seed, cut.name, w),
						base, stageIRun{rOuts, rIDs, rRes})
				}
			}
		}
	})
}
