package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/congest"
	"repro/internal/graph"
)

// CollectStageI runs Stage I on g and returns the per-node outcomes, the
// assigned ids, and the run result. It executes on the engine's native
// step path (both variants are ported); CollectStageIBlocking forces the
// goroutine compatibility path, which produces byte-identical results for
// a fixed seed (TestStageIEngineEquivalence).
func CollectStageI(g *graph.Graph, opts Options, seed int64) ([]*Outcome, []int64, *congest.Result, error) {
	return CollectStageIStep(g, opts, seed)
}

// CollectStageIBlocking runs Stage I on the blocking compatibility path
// (one goroutine per node); kept for the engine-equivalence tests.
func CollectStageIBlocking(g *graph.Graph, opts Options, seed int64) ([]*Outcome, []int64, *congest.Result, error) {
	ids := permIDs(g.N(), seed)
	outs := make([]*Outcome, g.N())
	res, err := congest.Run(congest.Config{
		Graph:        g,
		Seed:         seed,
		IDs:          ids,
		StopOnReject: true,
		MaxRounds:    1 << 40,
	}, func(api *congest.API) {
		outs[api.Index()] = RunStageI(api, opts)
	})
	return outs, ids, res, err
}

// CollectEN runs the Elkin–Neiman-style baseline partition on the native
// step path; CollectENBlocking forces the compatibility path.
func CollectEN(g *graph.Graph, eps float64, seed int64) ([]*Outcome, []int64, *congest.Result, error) {
	return CollectENStep(g, eps, seed)
}

// CollectENBlocking runs the baseline partition on the blocking
// compatibility path; kept for the engine-equivalence tests.
func CollectENBlocking(g *graph.Graph, eps float64, seed int64) ([]*Outcome, []int64, *congest.Result, error) {
	ids := permIDs(g.N(), seed)
	outs := make([]*Outcome, g.N())
	res, err := congest.Run(congest.Config{Graph: g, Seed: seed, IDs: ids}, func(api *congest.API) {
		outs[api.Index()] = RunElkinNeiman(api, eps)
	})
	return outs, ids, res, err
}

func permIDs(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed ^ 0x7A31))
	ids := make([]int64, n)
	for i, p := range rng.Perm(n) {
		ids[i] = int64(p + 1)
	}
	return ids
}

// PartAssignment maps each node to its part root id.
func PartAssignment(outs []*Outcome) []int {
	part := make([]int, len(outs))
	for v, o := range outs {
		part[v] = int(o.RootID)
	}
	return part
}

// ValidateOutcomes checks the structural guarantees of a partition
// (Lemma 6 and the partitioning-algorithm contract): consistent root
// knowledge, valid rooted spanning trees over real intra-part edges, and
// connected parts. diamBound, when positive, also enforces the per-part
// induced-diameter bound.
func ValidateOutcomes(g *graph.Graph, ids []int64, outs []*Outcome, diamBound int) error {
	n := g.N()
	if len(outs) != n || len(ids) != n {
		return fmt.Errorf("partition: %d outcomes / %d ids for %d nodes", len(outs), len(ids), n)
	}
	idToNode := make(map[int64]int, n)
	for v, id := range ids {
		idToNode[id] = v
	}
	members := make(map[int64][]int)
	for v, o := range outs {
		members[o.RootID] = append(members[o.RootID], v)
	}
	for rootID, mem := range members {
		rootNode, ok := idToNode[rootID]
		if !ok {
			return fmt.Errorf("partition: part root id %d is not a node id", rootID)
		}
		if outs[rootNode].RootID != rootID {
			return fmt.Errorf("partition: root node %d not in its own part", rootNode)
		}
		inPart := make([]bool, n)
		for _, v := range mem {
			inPart[v] = true
		}
		// Tree structure: parent/child port consistency over real edges.
		childCount := 0
		for _, v := range mem {
			t := outs[v].Tree
			if t.ParentPort < 0 {
				if v != rootNode {
					return fmt.Errorf("partition: node %d is a tree root but part root is %d", v, rootNode)
				}
			} else {
				p := int(g.Neighbors(v)[t.ParentPort])
				if !inPart[p] {
					return fmt.Errorf("partition: node %d has parent %d outside its part", v, p)
				}
				// The parent must list v as a child.
				found := false
				for _, cp := range outs[p].Tree.ChildPorts {
					if int(g.Neighbors(p)[cp]) == v {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("partition: edge %d->%d not mirrored in parent's children", v, p)
				}
			}
			for _, cp := range t.ChildPorts {
				c := int(g.Neighbors(v)[cp])
				if !inPart[c] {
					return fmt.Errorf("partition: node %d has child %d outside its part", v, c)
				}
				cpp := outs[c].Tree.ParentPort
				if cpp < 0 || int(g.Neighbors(c)[cpp]) != v {
					return fmt.Errorf("partition: child %d does not point back to %d", c, v)
				}
				childCount++
			}
		}
		if childCount != len(mem)-1 {
			return fmt.Errorf("partition: part %d has %d tree edges for %d nodes", rootID, childCount, len(mem))
		}
		// Spanning: BFS from root along child ports reaches everyone
		// (childCount == n-1 plus reachability implies a tree).
		reached := 0
		stack := []int{rootNode}
		seen := make(map[int]bool)
		seen[rootNode] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			reached++
			for _, cp := range outs[v].Tree.ChildPorts {
				c := int(g.Neighbors(v)[cp])
				if seen[c] {
					return fmt.Errorf("partition: node %d reached twice in part %d", c, rootID)
				}
				seen[c] = true
				stack = append(stack, c)
			}
		}
		if reached != len(mem) {
			return fmt.Errorf("partition: tree of part %d spans %d of %d nodes", rootID, reached, len(mem))
		}
		// Connectivity and induced diameter.
		sub, _ := g.InducedSubgraph(mem)
		if !sub.IsConnected() {
			return fmt.Errorf("partition: part %d induces a disconnected subgraph", rootID)
		}
		if diamBound > 0 {
			if d := sub.Diameter(); d > diamBound {
				return fmt.Errorf("partition: part %d has diameter %d > bound %d", rootID, d, diamBound)
			}
		}
	}
	return nil
}

// CutEdges returns the number of edges crossing parts.
func CutEdges(g *graph.Graph, outs []*Outcome) int {
	return graph.CutSize(g, PartAssignment(outs))
}

// MaxPartDiameter returns the maximum induced diameter over all parts.
func MaxPartDiameter(g *graph.Graph, outs []*Outcome) int {
	members := make(map[int64][]int)
	for v, o := range outs {
		members[o.RootID] = append(members[o.RootID], v)
	}
	max := 0
	for _, mem := range members {
		sub, _ := g.InducedSubgraph(mem)
		if d := sub.Diameter(); d > max {
			max = d
		}
	}
	return max
}

// NumParts returns the number of distinct parts.
func NumParts(outs []*Outcome) int {
	seen := make(map[int64]bool)
	for _, o := range outs {
		seen[o.RootID] = true
	}
	return len(seen)
}

// AnyRejected reports whether some node holds Stage I failure evidence.
// Nodes terminated by a StopOnReject shutdown (nil outcome) do not count;
// consult Result.Rejected for the authoritative global verdict.
func AnyRejected(outs []*Outcome) bool {
	for _, o := range outs {
		if o != nil && o.Rejected {
			return true
		}
	}
	return false
}
