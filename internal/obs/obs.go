// Package obs is the instrumentation layer shared by the CONGEST engine
// and the planard service: per-phase run attribution (Probe,
// PhaseBreakdown), live job progress (Progress), JSONL run traces
// (Tracer), and fixed-bucket latency histograms (Histogram).
//
// The package is a leaf: it imports nothing from the rest of the
// repository, so every layer — engine, Stage I/II programs, service,
// CLIs — can depend on it without cycles. Everything here follows the
// internal/faultpoint discipline: when a probe, trace sink, or progress
// cell is not installed, the instrumented code path is a nil check and
// nothing else, so runs with observability disabled are byte- and
// cost-identical to uninstrumented ones.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// PhaseID names an interned phase. ID 0 is always the implicit root
// phase "run" (everything not attributed to an announced phase);
// Probe.Phase returns IDs >= 1. The zero value doubles as "no phase
// announcement" in the engine's request slab, so a program can never
// explicitly re-enter "run".
type PhaseID int32

// Probe interns phase names for one engine run. Programs announce phase
// transitions with StepAPI.PhaseEnter(id) using IDs interned here before
// the run starts; the engine attributes per-barrier cost to the current
// phase and reports the totals as a PhaseBreakdown.
//
// A Probe is safe for concurrent interning, but it is meant to be
// dedicated to a single run: reusing one across runs leaks the earlier
// run's phase names (with zero stats) into the later breakdowns.
type Probe struct {
	mu     sync.Mutex
	byName map[string]PhaseID
	names  []string
}

// NewProbe returns a Probe with the root phase "run" pre-interned as
// PhaseID 0.
func NewProbe() *Probe {
	return &Probe{
		byName: map[string]PhaseID{"run": 0},
		names:  []string{"run"},
	}
}

// Phase interns name and returns its stable PhaseID (existing ID when
// the name was interned before). Intern phases before the run starts —
// interning takes a mutex, so doing it from inside per-node Step code
// would serialize parallel workers.
func (p *Probe) Phase(name string) PhaseID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.byName[name]; ok {
		return id
	}
	id := PhaseID(len(p.names))
	p.byName[name] = id
	p.names = append(p.names, name)
	return id
}

// Name returns the phase name for id ("run" for 0, "?" for an ID this
// probe never issued).
func (p *Probe) Name(id PhaseID) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || int(id) >= len(p.names) {
		return "?"
	}
	return p.names[id]
}

// Names returns a copy of all interned phase names in PhaseID order
// (index == ID).
func (p *Probe) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// PhaseStat is the accumulated cost of one named phase: wall time spent
// executing barriers while the phase was current, node wakes, executed
// barriers, delivered plus charged messages and bits, and the number of
// fast-forwarded windows (ChargeTraffic calls) folded into the phase.
//
// All fields except WallNs are deterministic: byte-identical across
// worker counts, with tracing on or off, and under kill-and-resume.
type PhaseStat struct {
	// Name is the interned phase name ("run" for the root phase).
	Name string `json:"phase"`
	// WallNs is wall-clock nanoseconds attributed to the phase. It is
	// the only nondeterministic field.
	WallNs int64 `json:"wall_ns"`
	// Wakes counts node Step invocations (due-list entries) executed
	// while the phase was current.
	Wakes int64 `json:"wakes"`
	// Barriers counts executed round barriers attributed to the phase.
	Barriers int64 `json:"barriers"`
	// Messages counts delivered messages plus charged (fast-forwarded)
	// messages attributed to the phase.
	Messages int64 `json:"messages"`
	// Bits counts delivered plus charged message bits attributed to the
	// phase.
	Bits int64 `json:"bits"`
	// Windows counts fast-forward windows (StepAPI.ChargeTraffic calls)
	// folded into the phase.
	Windows int64 `json:"windows"`
}

// add accumulates o into s (Name untouched).
func (s *PhaseStat) add(o PhaseStat) {
	s.WallNs += o.WallNs
	s.Wakes += o.Wakes
	s.Barriers += o.Barriers
	s.Messages += o.Messages
	s.Bits += o.Bits
	s.Windows += o.Windows
}

// PhaseBreakdown is the per-phase attribution table of one run, in
// PhaseID (interning) order. The deterministic columns sum to the run's
// totals: Messages and Bits across all phases equal Metrics.Messages
// and Metrics.TotalBits, and Barriers sums to the executed barrier
// count.
type PhaseBreakdown []PhaseStat

// Total returns the column sums of the breakdown (Name is "total").
func (b PhaseBreakdown) Total() PhaseStat {
	t := PhaseStat{Name: "total"}
	for _, s := range b {
		t.add(s)
	}
	return t
}

// String renders the breakdown as an aligned table, one phase per line,
// with a trailing total row — the format planartest -phases prints.
func (b PhaseBreakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %6s %12s %10s %12s %14s %8s\n",
		"phase", "wall", "%", "wakes", "barriers", "messages", "bits", "windows")
	total := b.Total()
	row := func(s PhaseStat) {
		pct := 0.0
		if total.WallNs > 0 {
			pct = 100 * float64(s.WallNs) / float64(total.WallNs)
		}
		fmt.Fprintf(&sb, "%-16s %11.3fs %5.1f%% %12d %10d %12d %14d %8d\n",
			s.Name, float64(s.WallNs)/1e9, pct, s.Wakes, s.Barriers, s.Messages, s.Bits, s.Windows)
	}
	for _, s := range b {
		// Interned-but-never-entered phases (a schedule's worst-case tail
		// that every part exited before) carry no information; skip them.
		if s == (PhaseStat{Name: s.Name}) {
			continue
		}
		row(s)
	}
	row(total)
	return sb.String()
}

// Progress is an atomic progress cell for one engine run: the engine
// stores the current round, executed-barrier count, and current phase
// at every barrier, and readers (the planard job API) snapshot it
// without locks at any time. The zero engine overhead rule applies: a
// run without a Progress cell performs one nil check per barrier.
type Progress struct {
	probe    *Probe
	round    atomic.Int64
	barriers atomic.Int64
	phase    atomic.Int32
}

// NewProgress returns a Progress cell resolving phase names through
// probe (nil is allowed; every phase then reads "run").
func NewProgress(probe *Probe) *Progress {
	return &Progress{probe: probe}
}

// Set publishes the current round, executed-barrier count, and phase.
// Called by the engine at every executed barrier.
func (p *Progress) Set(round, barriers int64, phase PhaseID) {
	p.round.Store(round)
	p.barriers.Store(barriers)
	p.phase.Store(int32(phase))
}

// Snapshot returns a consistent-enough view of the cell for display:
// the three fields are loaded independently, so a reader racing the
// engine may see adjacent barriers' values mixed, which is fine for a
// progress report.
func (p *Progress) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{
		Round:    p.round.Load(),
		Barriers: p.barriers.Load(),
		Phase:    "run",
	}
	if p.probe != nil {
		s.Phase = p.probe.Name(PhaseID(p.phase.Load()))
	}
	return s
}

// ProgressSnapshot is one observation of a Progress cell.
type ProgressSnapshot struct {
	// Phase is the name of the phase current at the last barrier.
	Phase string `json:"phase"`
	// Round is the CONGEST round number at the last barrier.
	Round int64 `json:"round"`
	// Barriers is the number of round barriers executed so far (the
	// engine fast-forwards empty rounds, so this is the honest measure
	// of work done).
	Barriers int64 `json:"barriers_executed"`
}
