package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestProbeInterning(t *testing.T) {
	p := NewProbe()
	if got := p.Name(0); got != "run" {
		t.Fatalf("PhaseID 0 = %q, want run", got)
	}
	a := p.Phase("stage1/p01")
	b := p.Phase("stage2/ops")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("interned IDs not distinct and nonzero: %d, %d", a, b)
	}
	if again := p.Phase("stage1/p01"); again != a {
		t.Fatalf("re-interning returned %d, want %d", again, a)
	}
	if got := p.Name(a); got != "stage1/p01" {
		t.Fatalf("Name(%d) = %q", a, got)
	}
	if got := p.Name(99); got != "?" {
		t.Fatalf("unknown ID name = %q, want ?", got)
	}
	want := []string{"run", "stage1/p01", "stage2/ops"}
	names := p.Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestProbeConcurrentInterning(t *testing.T) {
	p := NewProbe()
	var wg sync.WaitGroup
	ids := make([]PhaseID, 8)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = p.Phase("shared")
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("concurrent interning of one name minted multiple IDs: %v", ids)
		}
	}
}

func TestBreakdownTotalAndString(t *testing.T) {
	b := PhaseBreakdown{
		{Name: "run", WallNs: 100, Wakes: 2, Barriers: 1, Messages: 10, Bits: 80, Windows: 0},
		{Name: "stage1/p01", WallNs: 300, Wakes: 6, Barriers: 3, Messages: 30, Bits: 240, Windows: 1},
		{Name: "stage1/p02"}, // interned but never entered
	}
	total := b.Total()
	if total.WallNs != 400 || total.Messages != 40 || total.Bits != 320 || total.Barriers != 4 {
		t.Fatalf("Total() = %+v", total)
	}
	s := b.String()
	if !strings.Contains(s, "stage1/p01") || !strings.Contains(s, "total") {
		t.Fatalf("String() missing rows:\n%s", s)
	}
	if strings.Contains(s, "stage1/p02") {
		t.Fatalf("String() renders the all-zero phase:\n%s", s)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := NewProbe()
	id := p.Phase("stage2/ops")
	pr := NewProgress(p)
	if s := pr.Snapshot(); s.Round != 0 || s.Barriers != 0 || s.Phase != "run" {
		t.Fatalf("zero snapshot = %+v", s)
	}
	pr.Set(17, 5, id)
	s := pr.Snapshot()
	if s.Round != 17 || s.Barriers != 5 || s.Phase != "stage2/ops" {
		t.Fatalf("snapshot = %+v", s)
	}
	// A probe-less cell degrades to the root phase name, not a panic.
	bare := NewProgress(nil)
	bare.Set(1, 1, id)
	if s := bare.Snapshot(); s.Phase != "run" {
		t.Fatalf("probe-less snapshot phase = %q", s.Phase)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(DefBuckets)
	bounds := h.Bounds()
	if len(bounds) == 0 || bounds[0] <= 0 {
		t.Fatalf("bad bounds: %v", bounds)
	}
	h.Observe(bounds[0] / 2)              // first bucket
	h.Observe(bounds[0] * 1.5)            // second (if distinct)
	h.Observe(bounds[len(bounds)-1] * 10) // +Inf only
	counts, sum, count := h.Snapshot()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if len(counts) != len(bounds)+1 {
		t.Fatalf("len(counts) = %d, want %d", len(counts), len(bounds)+1)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("counts not cumulative: %v", counts)
		}
	}
	if counts[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", counts[0])
	}
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want count 3", counts[len(counts)-1])
	}
	wantSum := bounds[0]/2 + bounds[0]*1.5 + bounds[len(bounds)-1]*10
	if diff := sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum = %v, want ~%v", sum, wantSum)
	}
}

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Event: "run_start", N: 100, M: 180, Workers: 2})
	tr.Emit(Event{Event: "phase_exit", Phase: "stage1/p01", WallNs: 5, Messages: 7})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["event"] != "run_start" || first["n"] != float64(100) {
		t.Fatalf("line 1 = %v", first)
	}
	if _, ok := first["at_ns"]; !ok {
		t.Fatal("tracer did not stamp at_ns")
	}
	if _, ok := first["phase"]; ok {
		t.Fatal("empty fields must be omitted from the JSON")
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(&errWriter{n: 0})
	for i := 0; i < 20000; i++ { // enough to overflow the 64KB buffer
		tr.Emit(Event{Event: "phase_exit", Phase: "stage1/p01"})
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close() = nil after the sink failed")
	}
}
