package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one JSONL trace record. Every event carries its kind and the
// wall-clock offset since the trace started; the remaining fields are
// populated per kind and omitted when zero. The engine emits:
//
//	run_start    n, m, seed, workers
//	phase_enter  phase, round, barrier
//	phase_exit   phase, round, barrier, wall_ns, wakes, barriers,
//	             messages, bits, windows   (the closed segment's deltas)
//	fast_forward phase, round, barrier, windows, messages, bits
//	             (charged traffic folded at this barrier)
//	checkpoint   round, barrier, bytes     (snapshot handed to the sink)
//	merge        round, barrier, merge ("sharded"|"sequential"), shards,
//	             messages                  (parallel-barrier merge choice)
//	abort        err, round                (canceled/deadline/fault/panic)
//	run_end      round, barriers, messages, bits, wall_ns  (run totals)
type Event struct {
	// Event is the record kind (see the type comment for the schema).
	Event string `json:"event"`
	// AtNs is nanoseconds since the trace started; the Tracer stamps it
	// at Emit time.
	AtNs int64 `json:"at_ns"`
	// Round is the CONGEST round number of the event.
	Round int64 `json:"round,omitempty"`
	// Barrier is the executed-barrier count at the event.
	Barrier int64 `json:"barrier,omitempty"`
	// Phase is the interned phase name the event concerns.
	Phase string `json:"phase,omitempty"`
	// WallNs is the wall-clock span the event accounts for.
	WallNs int64 `json:"wall_ns,omitempty"`
	// Wakes is the node-wake count of a closed phase segment.
	Wakes int64 `json:"wakes,omitempty"`
	// Barriers is the barrier count of a closed segment or of the run.
	Barriers int64 `json:"barriers,omitempty"`
	// Messages is the delivered-plus-charged message count.
	Messages int64 `json:"messages,omitempty"`
	// Bits is the delivered-plus-charged bit count.
	Bits int64 `json:"bits,omitempty"`
	// Windows is the fast-forward-window count.
	Windows int64 `json:"windows,omitempty"`
	// Bytes is the encoded size of a checkpoint.
	Bytes int64 `json:"bytes,omitempty"`
	// Merge is the parallel-barrier merge decision: "sharded" or
	// "sequential".
	Merge string `json:"merge,omitempty"`
	// Shards is the number of merge shards of a sharded merge.
	Shards int64 `json:"shards,omitempty"`
	// Err is the abort reason of an abort event.
	Err string `json:"err,omitempty"`
	// N is the node count (run_start).
	N int64 `json:"n,omitempty"`
	// M is the edge count (run_start).
	M int64 `json:"m,omitempty"`
	// Seed is the run seed (run_start).
	Seed int64 `json:"seed,omitempty"`
	// Workers is the engine worker count (run_start).
	Workers int64 `json:"workers,omitempty"`
}

// TraceSink receives engine trace events. Implementations must tolerate
// being called from the engine loop only (no concurrent Emits per run);
// the JSONL Tracer locks anyway so one sink can serve tests that share
// it across runs.
type TraceSink interface {
	// Emit records one event.
	Emit(ev Event)
}

// Tracer is the JSONL TraceSink: one JSON object per line, flushed on
// Close. Events are stamped with nanoseconds since NewTracer.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	start time.Time
	err   error
}

// NewTracer returns a Tracer writing JSONL to w. When w is an
// io.Closer, Close closes it after flushing.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit implements TraceSink: it stamps ev.AtNs and appends one JSON
// line. Encoding errors are sticky and reported by Close.
func (t *Tracer) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	ev.AtNs = time.Since(t.start).Nanoseconds()
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Close flushes buffered events (and closes the underlying writer when
// it is an io.Closer), returning the first error seen.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
