package obs

import "sync/atomic"

// DefBuckets is the default latency bucket layout (seconds): micro
// through minute scale, matching planard's spread from cache hits
// (microseconds) to large engine runs (minutes).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket, lock-free latency histogram in the
// Prometheus cumulative-bucket model: Observe is a few atomic adds, and
// Snapshot renders cumulative counts ending in the implicit +Inf
// bucket. Bounds are fixed at construction; label handling is the
// caller's concern (planard keys a map of Histograms by label set).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sumNs  atomic.Int64
	count  atomic.Int64
}

// NewHistogram returns a Histogram over the given ascending upper
// bounds (seconds). Nil or empty bounds use DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(seconds * 1e9))
	h.count.Add(1)
}

// Bounds returns the bucket upper bounds (seconds, ascending, +Inf
// implicit).
func (h *Histogram) Bounds() []float64 {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	return b
}

// Snapshot returns the cumulative bucket counts (one per bound plus the
// final +Inf bucket), the sum of observed values in seconds, and the
// observation count.
func (h *Histogram) Snapshot() (cumulative []int64, sum float64, count int64) {
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return cumulative, float64(h.sumNs.Load()) / 1e9, h.count.Load()
}
