// Package faultpoint provides deterministic fault-injection hooks for
// robustness tests. Production code plants named hooks at interesting
// sites (a round barrier, a checkpoint write); tests arm a hook with a
// trigger count and a fault function, then exercise the code path. The
// fault fires on an exact hit number, so "crash at barrier N" or "fail
// the third checkpoint write" is reproducible — the property the
// kill-and-resume equivalence suite relies on.
//
// When nothing is armed, Hit is a single relaxed atomic load and no map
// or mutex is touched — the disabled hooks compile down to a no-op
// branch, so leaving them in hot paths (the engine's barrier loop) costs
// nothing measurable.
package faultpoint

import (
	"sync"
	"sync/atomic"
)

// armed tracks the number of armed hooks; Hit's fast path checks it
// before taking the registry lock.
var armed atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	at    uint64 // hit number that triggers (1-based); 0 = every hit
	hits  uint64
	fault func() error
}

// Arm installs a fault at the named hook: the at-th call to Hit(name)
// after arming invokes fault and returns its result (at <= 0 means
// every call). Re-arming a name replaces the previous fault and resets
// its hit count. The fault function may also just sleep and return nil
// to model a slow site rather than a failing one.
func Arm(name string, at int, fault func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	n := uint64(0)
	if at > 0 {
		n = uint64(at)
	}
	points[name] = &point{at: n, fault: fault}
}

// Disarm removes the named fault, if armed.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every hook. Tests call it in cleanup so an armed fault
// never leaks into the next test.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(points)))
	points = map[string]*point{}
}

// Hit reports the named hook was reached. It returns nil unless a fault
// is armed for the name and this call is its trigger; then it runs the
// fault and returns its error. The no-fault fast path is one atomic
// load.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	fire := p.at == 0 || p.hits == p.at
	fault := p.fault
	mu.Unlock()
	if !fire {
		return nil
	}
	return fault()
}

// Hits returns how many times the named hook has been reached since it
// was armed (0 when not armed). For test assertions.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return int(p.hits)
	}
	return 0
}
