package faultpoint

import (
	"errors"
	"testing"
)

func TestHitWithoutArmIsNil(t *testing.T) {
	defer Reset()
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("unarmed hit returned %v", err)
	}
	if Hits("nothing.armed") != 0 {
		t.Fatal("unarmed hook reported hits")
	}
}

func TestArmTriggersOnExactHit(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", 3, func() error { return boom })
	for i := 1; i <= 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Hit("p"); !errors.Is(err, boom) {
		t.Fatalf("hit 3 did not fire: %v", err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 4 fired again: %v", err)
	}
	if Hits("p") != 4 {
		t.Fatalf("Hits = %d, want 4", Hits("p"))
	}
}

func TestArmEveryHit(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", 0, func() error { return boom })
	for i := 0; i < 3; i++ {
		if err := Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d did not fire: %v", i, err)
		}
	}
}

func TestRearmResetsCount(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", 2, func() error { return boom })
	Hit("p")
	Arm("p", 2, func() error { return boom })
	if err := Hit("p"); err != nil {
		t.Fatalf("first hit after re-arm fired: %v", err)
	}
	if err := Hit("p"); !errors.Is(err, boom) {
		t.Fatalf("second hit after re-arm did not fire: %v", err)
	}
}

func TestDisarmAndReset(t *testing.T) {
	defer Reset()
	Arm("a", 1, func() error { return errors.New("a") })
	Arm("b", 1, func() error { return errors.New("b") })
	Disarm("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("disarmed hook fired: %v", err)
	}
	Reset()
	if err := Hit("b"); err != nil {
		t.Fatalf("reset hook fired: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d after Reset", armed.Load())
	}
}
