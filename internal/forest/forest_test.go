package forest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestCVStepBasics(t *testing.T) {
	// Colors 5 (101) and 1 (001) differ first at bit 2; own bit is 1.
	if c := CVStep(5, 1); c != 2*2+1 {
		t.Fatalf("CVStep(5,1) = %d, want 5", c)
	}
	// Colors 4 (100) and 5 (101) differ at bit 0; own bit is 0.
	if c := CVStep(4, 5); c != 0 {
		t.Fatalf("CVStep(4,5) = %d, want 0", c)
	}
}

func TestCVStepPreservesProperness(t *testing.T) {
	f := func(a, b int64) bool {
		a &= 0xFFFF
		b &= 0xFFFF
		if a == b {
			return true
		}
		// New colors of two adjacent nodes (each using the other as
		// parent) must differ.
		return CVStep(a, b) != CVStep(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCVIterations(t *testing.T) {
	if it := CVIterations(5); it != 1 {
		t.Fatalf("CVIterations(5) = %d, want 1", it)
	}
	// log* growth: even huge ranges need only a handful of iterations.
	if it := CVIterations(1 << 62); it > 6 {
		t.Fatalf("CVIterations(2^62) = %d, want <= 6", it)
	}
	// Monotone sanity.
	if CVIterations(100) > CVIterations(1<<40) {
		t.Fatal("CVIterations not monotone")
	}
}

func randomForestParents(n int, rng *rand.Rand) []int {
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// perm gives a random labeling; attach to an earlier perm node.
		parent[perm[i]] = perm[rng.Intn(i)]
	}
	return parent
}

func randomPseudoForestParents(n int, rng *rand.Rand) []int {
	parent := make([]int, n)
	for v := range parent {
		// Random functional graph; self-loops removed.
		p := rng.Intn(n)
		if p == v {
			p = -1
		}
		parent[v] = p
	}
	return parent
}

func TestColorPseudoForestOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		parent := randomForestParents(n, rng)
		color := ColorPseudoForest(parent)
		if err := CheckProperColoring(parent, color); err != nil {
			t.Fatal(err)
		}
		for _, c := range color {
			if c < 1 || c > 3 {
				t.Fatalf("color %d out of {1,2,3}", c)
			}
		}
	}
}

func TestColorPseudoForestOnFunctionalGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(300)
		parent := randomPseudoForestParents(n, rng)
		color := ColorPseudoForest(parent)
		if err := CheckProperColoring(parent, color); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColorPathAndCycle(t *testing.T) {
	// Long path.
	n := 1000
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	if err := CheckProperColoring(parent, ColorPseudoForest(parent)); err != nil {
		t.Fatal(err)
	}
	// Directed cycle (no root at all).
	for v := 0; v < n; v++ {
		parent[v] = (v + 1) % n
	}
	if err := CheckProperColoring(parent, ColorPseudoForest(parent)); err != nil {
		t.Fatal(err)
	}
	// Two-cycle plus tails.
	parent2 := []int{1, 0, 0, 1, 2}
	if err := CheckProperColoring(parent2, ColorPseudoForest(parent2)); err != nil {
		t.Fatal(err)
	}
}

func TestHPartitionOnPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.Graph{
		graph.Grid(10, 12),
		graph.MaximalPlanar(300, rng),
		graph.RandomTree(200, rng),
		graph.Cycle(50),
	} {
		res := HPartition(g, 3, HPartitionRounds(g.N()), nil)
		if !res.Success {
			t.Fatalf("HPartition failed on planar %v", g)
		}
		for v := 0; v < g.N(); v++ {
			if len(res.Out[v]) > 9 {
				t.Fatalf("out-degree %d > 9", len(res.Out[v]))
			}
		}
		if err := CheckAcyclicOrientation(res.Out); err != nil {
			t.Fatal(err)
		}
		// Orientation covers every edge exactly once.
		total := 0
		for v := 0; v < g.N(); v++ {
			total += len(res.Out[v])
		}
		if total != g.M() {
			t.Fatalf("oriented %d edges, want %d", total, g.M())
		}
	}
}

func TestHPartitionFailsOnDenseCore(t *testing.T) {
	// K11 has arboricity 6 > 3 and minimum degree 10 > 9: nobody ever
	// becomes inactive.
	g := graph.Complete(11)
	res := HPartition(g, 3, HPartitionRounds(g.N()), nil)
	if res.Success {
		t.Fatal("HPartition must fail on K11 with alpha=3")
	}
	if err := Arboricity3Evidence(g, res, 3); err != nil {
		t.Fatal(err)
	}
}

func TestHPartitionFailsOnEmbeddedDenseCore(t *testing.T) {
	// A K12 hidden inside a big sparse graph must still be detected.
	rng := rand.New(rand.NewSource(4))
	g := graph.DisjointUnion(graph.Grid(20, 20), graph.Complete(12))
	h := graph.ConnectParts(g, rng)
	res := HPartition(h, 3, HPartitionRounds(h.N()), nil)
	if res.Success {
		t.Fatal("dense core must prevent success")
	}
	if err := Arboricity3Evidence(h, res, 3); err != nil {
		t.Fatal(err)
	}
}

func TestHPartitionRespectsArboricityBound(t *testing.T) {
	// Random sparse graphs with average degree < 4 have arboricity <= 3
	// only heuristically, so instead verify: success implies all
	// invariants; failure implies evidence.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(200)
		g := graph.GNP(n, 6.0/float64(n), rng)
		res := HPartition(g, 3, HPartitionRounds(n), nil)
		if res.Success {
			for v := 0; v < n; v++ {
				if len(res.Out[v]) > 9 {
					t.Fatalf("out-degree %d > 9", len(res.Out[v]))
				}
			}
			if err := CheckAcyclicOrientation(res.Out); err != nil {
				t.Fatal(err)
			}
		} else if err := Arboricity3Evidence(g, res, 3); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHPartitionInactivationRounds(t *testing.T) {
	// On a path everything peels in round 0.
	g := graph.Path(40)
	res := HPartition(g, 3, HPartitionRounds(40), nil)
	if !res.Success {
		t.Fatal("path must peel")
	}
	for v, r := range res.InactiveRound {
		if r != 0 {
			t.Fatalf("path node %d peeled in round %d, want 0", v, r)
		}
	}
}

func TestHPartitionRoundsIsLogarithmic(t *testing.T) {
	if HPartitionRounds(1_000_000) > 40 {
		t.Fatalf("rounds for 1e6 = %d, want <= 40", HPartitionRounds(1_000_000))
	}
	if HPartitionRounds(1) != 1 {
		t.Fatal("rounds for n=1 must be 1")
	}
}

func TestCheckAcyclicOrientationDetectsCycle(t *testing.T) {
	out := [][]int32{{1}, {2}, {0}}
	if err := CheckAcyclicOrientation(out); err == nil {
		t.Fatal("3-cycle orientation must be rejected")
	}
}

// Property: HPartition peeling is monotone — adding rounds never unpeels.
func TestHPartitionMonotoneRounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(60, 0.08, rng)
		a := HPartition(g, 3, 3, nil)
		b := HPartition(g, 3, 6, nil)
		for v := range a.InactiveRound {
			ra, rb := a.InactiveRound[v], b.InactiveRound[v]
			if ra != -1 && rb != ra {
				return false // same prefix of rounds must agree
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
