package forest

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// HPartitionRounds returns the number of peeling rounds sufficient for the
// Barenboim–Elkin H-partition to finish on any n-node graph of arboricity
// at most alpha: each round at least a 1/3 fraction of the remaining nodes
// becomes inactive (average degree is at most 2*alpha < (2/3)*(3*alpha+1)),
// so ceil(log_{3/2} n) + 1 rounds suffice.
func HPartitionRounds(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n))/math.Log(1.5))) + 1
}

// HPartitionResult is the outcome of the Barenboim–Elkin peeling process.
type HPartitionResult struct {
	// InactiveRound[v] is the round at which v became inactive, or -1 if
	// v is still active after all rounds (evidence of arboricity > alpha).
	InactiveRound []int
	// Success reports whether every node became inactive.
	Success bool
	// Out[v] lists the out-neighbors of v in the orientation induced by
	// inactivation times (ties by id); |Out[v]| <= 3*alpha on success.
	// Only populated when Success.
	Out [][]int32
}

// HPartition runs the Barenboim–Elkin forest-decomposition peeling on g
// with parameter alpha for the given number of rounds (use
// HPartitionRounds(n)): while active, a node becomes inactive in the first
// round in which it has at most 3*alpha active neighbors. ids break
// orientation ties; pass nil to use node indices.
func HPartition(g *graph.Graph, alpha, rounds int, ids []int64) *HPartitionResult {
	n := g.N()
	if ids == nil {
		ids = make([]int64, n)
		for v := range ids {
			ids[v] = int64(v)
		}
	}
	res := &HPartitionResult{InactiveRound: make([]int, n)}
	for v := range res.InactiveRound {
		res.InactiveRound[v] = -1
	}
	activeDeg := make([]int, n)
	for v := 0; v < n; v++ {
		activeDeg[v] = g.Degree(v)
	}
	frontier := make([]int, 0, n)
	remaining := n
	for r := 0; r < rounds && remaining > 0; r++ {
		frontier = frontier[:0]
		for v := 0; v < n; v++ {
			if res.InactiveRound[v] == -1 && activeDeg[v] <= 3*alpha {
				frontier = append(frontier, v)
			}
		}
		for _, v := range frontier {
			res.InactiveRound[v] = r
			remaining--
		}
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				activeDeg[w]--
			}
		}
	}
	res.Success = remaining == 0
	if !res.Success {
		return res
	}
	res.Out = make([][]int32, n)
	for v := 0; v < n; v++ {
		rv := res.InactiveRound[v]
		for _, w := range g.Neighbors(v) {
			rw := res.InactiveRound[int(w)]
			// v -> w iff w outlives v, or they tie and w has the larger id.
			if rw > rv || (rw == rv && ids[int(w)] > ids[v]) {
				res.Out[v] = append(res.Out[v], w)
			}
		}
		if len(res.Out[v]) > 3*alpha {
			panic(fmt.Sprintf("forest: node %d has out-degree %d > 3*alpha=%d", v, len(res.Out[v]), 3*alpha))
		}
	}
	return res
}

// CheckAcyclicOrientation verifies that the orientation given by Out has
// no directed cycle (so the out-edges decompose into at most 3*alpha
// forests, one per out-slot).
func CheckAcyclicOrientation(out [][]int32) error {
	n := len(out)
	state := make([]int8, n) // 0 unvisited, 1 in-stack, 2 done
	type frame struct {
		v   int
		idx int
	}
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		stack := []frame{{s, 0}}
		state[s] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(out[f.v]) {
				w := int(out[f.v][f.idx])
				f.idx++
				switch state[w] {
				case 0:
					state[w] = 1
					stack = append(stack, frame{w, 0})
				case 1:
					return fmt.Errorf("forest: directed cycle through %d", w)
				}
				continue
			}
			state[f.v] = 2
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// Arboricity3Evidence verifies that a peeling failure is structural
// evidence of arboricity greater than alpha: it peels the still-active
// residual to a fixpoint and checks that a non-empty (3*alpha+1)-core
// remains. Such a core has m' > alpha*(n'-1) edges, so by Nash–Williams
// its arboricity exceeds alpha. An error means the failure was merely due
// to an insufficient round budget.
func Arboricity3Evidence(g *graph.Graph, res *HPartitionResult, alpha int) error {
	if res.Success {
		return fmt.Errorf("forest: peeling succeeded; no evidence expected")
	}
	var active []int
	for v, r := range res.InactiveRound {
		if r == -1 {
			active = append(active, v)
		}
	}
	sub, _ := g.InducedSubgraph(active)
	fix := HPartition(sub, alpha, sub.N()+1, nil)
	if fix.Success {
		return fmt.Errorf("forest: residual peels to empty; failure was only a round-budget artifact")
	}
	var core []int
	for v, r := range fix.InactiveRound {
		if r == -1 {
			core = append(core, v)
		}
	}
	coreSub, _ := sub.InducedSubgraph(core)
	for v := 0; v < coreSub.N(); v++ {
		if coreSub.Degree(v) <= 3*alpha {
			return fmt.Errorf("forest: core node with degree %d <= 3*alpha", coreSub.Degree(v))
		}
	}
	return nil
}
