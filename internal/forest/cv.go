// Package forest implements the two symmetry-breaking subroutines of
// Stage I of the paper: the Cole–Vishkin / Goldberg–Plotkin–Shannon
// O(log* n) 3-coloring of rooted pseudo-forests (§2.1.2 sub-step 2a) and
// the Barenboim–Elkin H-partition forest decomposition (§2.1.1).
//
// The functions here are the pure, single-step building blocks; package
// partition emulates them distributedly on the CONGEST simulator. In
// that emulation, one H-partition level = one super-round of 2D+1
// CONGEST rounds per merging phase of Theorem 3, and
// HPartitionRounds(n) bounds the levels needed — it is the worst-case
// super-round count that partition's fixed-point fast-forward trims at
// run time (DESIGN.md §10).
package forest

import (
	"fmt"
	"math/bits"
)

// CVStep performs one Cole–Vishkin color-reduction step: given a node's
// current color and its parent's current color (both proper, i.e.
// different), it returns the new color 2k+b where k is the lowest bit
// position at which the colors differ and b is the node's bit there.
// Nodes without a parent pass parent = own color with bit 0 flipped.
func CVStep(own, parent int64) int64 {
	if own == parent {
		panic(fmt.Sprintf("forest: CVStep on equal colors %d", own))
	}
	k := bits.TrailingZeros64(uint64(own ^ parent))
	b := (own >> k) & 1
	return int64(2*k) + b
}

// CVRootParent returns the pretend parent color used by parentless nodes.
func CVRootParent(own int64) int64 { return own ^ 1 }

// CVIterations returns the number of CVStep iterations sufficient to bring
// colors from the range [0, maxColor] down to {0,...,5}, for use in
// lockstep schedules where every node must run the same number of steps.
func CVIterations(maxColor int64) int {
	iters := 0
	w := bits.Len64(uint64(maxColor)) // current color bit-width
	if w < 1 {
		w = 1
	}
	for w > 3 {
		// After one step colors are < 2w, i.e. width <= 1 + ceil(log2 w).
		w = 1 + bits.Len(uint(w-1))
		iters++
	}
	// With width 3 (colors 0..7) one more step lands in 0..5 and stays.
	return iters + 1
}

// ColorPseudoForest 3-colors a pseudo-forest given as a parent slice
// (parent[v] = -1 for roots; otherwise the unique out-neighbor of v).
// The result is a proper coloring with colors in {1, 2, 3} of the
// underlying undirected graph. This is the pure reference implementation
// of sub-step 2a; the distributed version lives in package partition.
func ColorPseudoForest(parent []int) []int {
	n := len(parent)
	color := make([]int64, n)
	for v := range color {
		color[v] = int64(v)
	}
	// Cole–Vishkin reduction to colors 0..5.
	for it := CVIterations(int64(n - 1)); it > 0; it-- {
		next := make([]int64, n)
		for v := 0; v < n; v++ {
			pc := CVRootParent(color[v])
			if parent[v] >= 0 {
				pc = color[parent[v]]
			}
			next[v] = CVStep(color[v], pc)
		}
		color = next
	}
	// Shift-down plus recoloring of classes 5, 4, 3 into {0, 1, 2}.
	for _, drop := range []int64{5, 4, 3} {
		// Shift down: every node adopts its parent's color; roots take a
		// color different from their own previous color (so that their
		// children, which adopt the root's previous color, stay proper).
		next := make([]int64, n)
		for v := 0; v < n; v++ {
			if parent[v] >= 0 {
				next[v] = color[parent[v]]
			} else {
				// Roots only need to differ from their own previous color
				// (their children adopt it); choosing from {0,1,2} avoids
				// reintroducing an already-dropped class.
				if color[v] == 0 {
					next[v] = 1
				} else {
					next[v] = 0
				}
			}
		}
		color = next
		// Recolor the dropped class: children of v are monochromatic
		// after a shift-down, so each node has at most two constraints.
		childColor := make([]int64, n) // color of v's children (all equal)
		hasChild := make([]bool, n)
		for v := 0; v < n; v++ {
			if p := parent[v]; p >= 0 {
				childColor[p] = color[v]
				hasChild[p] = true
			}
		}
		for v := 0; v < n; v++ {
			if color[v] != drop {
				continue
			}
			used := [6]bool{}
			if parent[v] >= 0 {
				used[color[parent[v]]] = true
			}
			if hasChild[v] {
				used[childColor[v]] = true
			}
			for c := int64(0); c < 3; c++ {
				if !used[c] {
					color[v] = c
					break
				}
			}
		}
	}
	out := make([]int, n)
	for v := range color {
		out[v] = int(color[v]) + 1 // colors 1..3
	}
	return out
}

// CheckProperColoring verifies that color is a proper coloring of the
// pseudo-forest: color[v] != color[parent[v]] for every non-root v.
func CheckProperColoring(parent, color []int) error {
	for v, p := range parent {
		if p >= 0 && color[v] == color[p] {
			return fmt.Errorf("forest: edge (%d,%d) monochromatic with color %d", v, p, color[v])
		}
	}
	return nil
}
