package graph

import (
	"fmt"
	"sort"
)

// Weighted is a mutable weighted undirected graph used for the auxiliary
// graphs G_i of Stage I: nodes are parts, edge weights count the G-edges
// crossing between two parts (paper §2.1). Nodes are identified by opaque
// non-negative ids (part roots), not necessarily dense.
type Weighted struct {
	w map[int]map[int]int64 // w[u][v] == w[v][u] > 0
}

// NewWeighted returns an empty weighted graph.
func NewWeighted() *Weighted {
	return &Weighted{w: make(map[int]map[int]int64)}
}

// AddNode ensures u exists (possibly isolated).
func (g *Weighted) AddNode(u int) {
	if _, ok := g.w[u]; !ok {
		g.w[u] = make(map[int]int64)
	}
}

// AddWeight adds delta to the weight of edge {u, v}; the edge is created
// if absent. Panics on self-loops and non-positive results.
func (g *Weighted) AddWeight(u, v int, delta int64) {
	if u == v {
		panic(fmt.Sprintf("weighted: self-loop on %d", u))
	}
	g.AddNode(u)
	g.AddNode(v)
	nu := g.w[u][v] + delta
	if nu < 0 {
		panic(fmt.Sprintf("weighted: negative weight on {%d,%d}", u, v))
	}
	if nu == 0 {
		delete(g.w[u], v)
		delete(g.w[v], u)
		return
	}
	g.w[u][v] = nu
	g.w[v][u] = nu
}

// Weight returns the weight of edge {u, v} (0 when absent).
func (g *Weighted) Weight(u, v int) int64 {
	if m, ok := g.w[u]; ok {
		return m[v]
	}
	return 0
}

// NodeWeight returns w(v) = sum of weights of edges incident to v.
func (g *Weighted) NodeWeight(v int) int64 {
	var s int64
	for _, x := range g.w[v] {
		s += x
	}
	return s
}

// TotalWeight returns w(G) = sum of all edge weights.
func (g *Weighted) TotalWeight() int64 {
	var s int64
	for _, m := range g.w {
		for _, x := range m {
			s += x
		}
	}
	return s / 2
}

// NumNodes returns the number of nodes.
func (g *Weighted) NumNodes() int { return len(g.w) }

// NumEdges returns the number of (positive-weight) edges.
func (g *Weighted) NumEdges() int {
	c := 0
	for _, m := range g.w {
		c += len(m)
	}
	return c / 2
}

// Nodes returns all node ids in ascending order.
func (g *Weighted) Nodes() []int {
	ns := make([]int, 0, len(g.w))
	for u := range g.w {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// NeighborsOf returns the neighbors of u in ascending order.
func (g *Weighted) NeighborsOf(u int) []int {
	ns := make([]int, 0, len(g.w[u]))
	for v := range g.w[u] {
		ns = append(ns, v)
	}
	sort.Ints(ns)
	return ns
}

// DegreeOf returns the number of distinct neighbors of u.
func (g *Weighted) DegreeOf(u int) int { return len(g.w[u]) }

// Unweighted converts g to a simple Graph, relabeling nodes densely in
// ascending id order; it returns the graph and the dense->id map.
func (g *Weighted) Unweighted() (*Graph, []int) {
	ids := g.Nodes()
	idx := make(map[int]int, len(ids))
	for i, u := range ids {
		idx[u] = i
	}
	b := NewBuilder(len(ids))
	for u, m := range g.w {
		for v := range m {
			if u < v {
				b.AddEdge(idx[u], idx[v])
			}
		}
	}
	return b.Build(), ids
}

// Contract merges node v into node u: all edges of v are re-attached to u
// (weights of parallel edges add; a {u,v} edge disappears). v is removed.
func (g *Weighted) Contract(u, v int) {
	if u == v {
		panic("weighted: contracting a node into itself")
	}
	for x, wt := range g.w[v] {
		if x == u {
			continue
		}
		delete(g.w[x], v)
		g.AddWeight(u, x, wt)
	}
	delete(g.w[u], v)
	delete(g.w, v)
}

// Clone returns a deep copy.
func (g *Weighted) Clone() *Weighted {
	c := NewWeighted()
	for u, m := range g.w {
		c.AddNode(u)
		for v, wt := range m {
			c.w[u][v] = wt
		}
	}
	return c
}

// QuotientGraph builds the weighted auxiliary graph of g under the given
// part assignment: part[v] is an arbitrary part id for each node of g.
// Edge weights count crossing edges of g; intra-part edges are dropped.
func QuotientGraph(g *Graph, part []int) *Weighted {
	if len(part) != g.N() {
		panic(fmt.Sprintf("quotient: part len %d != n %d", len(part), g.N()))
	}
	q := NewWeighted()
	for v := 0; v < g.N(); v++ {
		q.AddNode(part[v])
	}
	for _, e := range g.Edges() {
		pu, pv := part[e.U], part[e.V]
		if pu != pv {
			q.AddWeight(pu, pv, 1)
		}
	}
	return q
}

// CutSize returns the number of edges of g whose endpoints lie in
// different parts.
func CutSize(g *Graph, part []int) int {
	cut := 0
	for _, e := range g.Edges() {
		if part[e.U] != part[e.V] {
			cut++
		}
	}
	return cut
}
