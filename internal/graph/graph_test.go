package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self-loop dropped
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edges present")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNP(50, 0.1, rng)
	es := g.Edges()
	if len(es) != g.M() {
		t.Fatalf("Edges len %d != M %d", len(es), g.M())
	}
	b := NewBuilder(g.N())
	for _, e := range es {
		b.AddEdge(int(e.U), int(e.V))
	}
	h := b.Build()
	if h.M() != g.M() {
		t.Fatalf("round trip lost edges: %d vs %d", h.M(), g.M())
	}
	for _, e := range es {
		if !h.HasEdge(int(e.U), int(e.V)) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestBFSPathDistances(t *testing.T) {
	g := Path(10)
	res := g.BFS(0)
	for v := 0; v < 10; v++ {
		if res.Dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	if res.Parent[0] != -1 || res.Parent[5] != 4 {
		t.Fatalf("parents wrong: %v", res.Parent)
	}
}

func TestBFSWithinRestriction(t *testing.T) {
	g := Cycle(10)
	allowed := make([]bool, 10)
	for i := 0; i < 5; i++ {
		allowed[i] = true
	}
	res := g.BFSWithin(0, allowed)
	if res.Dist[4] != 4 {
		t.Fatalf("dist[4] = %d, want 4 (wrap-around must be blocked)", res.Dist[4])
	}
	if res.Dist[7] != -1 {
		t.Fatalf("node 7 should be unreachable, dist %d", res.Dist[7])
	}
}

func TestComponents(t *testing.T) {
	g := DisjointUnion(Cycle(3), Path(4), Star(5))
	comp, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[2] || comp[3] != comp[6] || comp[7] != comp[11] {
		t.Fatalf("component assignment wrong: %v", comp)
	}
	if comp[0] == comp[3] || comp[3] == comp[7] {
		t.Fatalf("distinct components merged: %v", comp)
	}
	if g.IsConnected() {
		t.Fatal("disjoint union must not be connected")
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(10).Diameter(); d != 9 {
		t.Fatalf("path diameter %d, want 9", d)
	}
	if d := Cycle(10).Diameter(); d != 5 {
		t.Fatalf("cycle diameter %d, want 5", d)
	}
	if d := Complete(6).Diameter(); d != 1 {
		t.Fatalf("K6 diameter %d, want 1", d)
	}
	if d := Grid(4, 7).Diameter(); d != 9 {
		t.Fatalf("grid diameter %d, want 9", d)
	}
}

func TestTreeForestPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := RandomTree(40, rng)
	if !tr.IsTree() || !tr.IsForest() {
		t.Fatal("random tree must be tree and forest")
	}
	f := DisjointUnion(RandomTree(10, rng), RandomTree(7, rng))
	if f.IsTree() || !f.IsForest() {
		t.Fatal("two trees: forest but not tree")
	}
	c := Cycle(5)
	if c.IsTree() || c.IsForest() {
		t.Fatal("cycle is neither tree nor forest")
	}
}

func TestBipartite(t *testing.T) {
	if !Grid(5, 6).IsBipartite() {
		t.Fatal("grid is bipartite")
	}
	if !Cycle(8).IsBipartite() {
		t.Fatal("even cycle is bipartite")
	}
	if Cycle(7).IsBipartite() {
		t.Fatal("odd cycle is not bipartite")
	}
	e, odd := Cycle(7).OddCycleEdge()
	if !odd {
		t.Fatal("want odd cycle edge")
	}
	if !Cycle(7).HasEdge(int(e.U), int(e.V)) {
		t.Fatalf("reported edge %v not in graph", e)
	}
	rng := rand.New(rand.NewSource(3))
	g := GridWithOddChords(6, 6, 3, rng)
	if g.IsBipartite() {
		t.Fatal("grid with odd chords must not be bipartite")
	}
}

func TestGirth(t *testing.T) {
	if g := Cycle(9).Girth(20); g != 9 {
		t.Fatalf("girth of C9 = %d, want 9", g)
	}
	if g := Path(9).Girth(20); g != -1 {
		t.Fatalf("girth of path = %d, want -1", g)
	}
	if g := Complete(5).Girth(20); g != 3 {
		t.Fatalf("girth of K5 = %d, want 3", g)
	}
	if g := CompleteBipartite(3, 3).Girth(20); g != 4 {
		t.Fatalf("girth of K33 = %d, want 4", g)
	}
	// Bounded search must not report cycles above the bound.
	if g := Cycle(9).Girth(5); g != -1 {
		t.Fatalf("bounded girth of C9 = %d, want -1", g)
	}
}

func TestShortestCycleThrough(t *testing.T) {
	g := Cycle(6)
	if c := g.ShortestCycleThrough(0, 1, 10); c != 6 {
		t.Fatalf("cycle through C6 edge = %d, want 6", c)
	}
	tr := Path(5)
	if c := tr.ShortestCycleThrough(1, 2, 10); c != -1 {
		t.Fatalf("tree edge must report -1, got %d", c)
	}
	if c := tr.ShortestCycleThrough(0, 4, 10); c != -1 {
		t.Fatalf("non-edge must report -1, got %d", c)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid(3, 3)
	sub, orig := g.InducedSubgraph([]int{0, 1, 3, 4})
	if sub.N() != 4 || sub.M() != 4 {
		t.Fatalf("2x2 induced subgrid: n=%d m=%d, want 4,4", sub.N(), sub.M())
	}
	for i, v := range orig {
		if i > 0 && orig[i-1] >= v {
			t.Fatal("orig mapping must be sorted")
		}
	}
}

func TestDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Planar graphs have degeneracy <= 5.
	g := MaximalPlanar(200, rng)
	order, d := g.DegeneracyOrder()
	if len(order) != g.N() {
		t.Fatalf("order covers %d of %d nodes", len(order), g.N())
	}
	if d > 5 {
		t.Fatalf("planar degeneracy %d > 5", d)
	}
	// Trees have degeneracy 1.
	if _, d := RandomTree(100, rng).DegeneracyOrder(); d != 1 {
		t.Fatalf("tree degeneracy %d, want 1", d)
	}
	// K6 has degeneracy 5.
	if _, d := Complete(6).DegeneracyOrder(); d != 5 {
		t.Fatalf("K6 degeneracy %d, want 5", d)
	}
}

func TestRemoveAddEdges(t *testing.T) {
	g := Cycle(5)
	h := g.RemoveEdges([]Edge{NormEdge(0, 1), NormEdge(3, 2)})
	if h.M() != 3 {
		t.Fatalf("after removal m=%d, want 3", h.M())
	}
	h2 := h.AddEdges([]Edge{NormEdge(0, 1)})
	if h2.M() != 4 || !h2.HasEdge(0, 1) {
		t.Fatal("AddEdges failed")
	}
}

func TestGeneratorSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path", Path(8), 8, 7},
		{"cycle", Cycle(8), 8, 8},
		{"star", Star(8), 8, 7},
		{"K5", Complete(5), 5, 10},
		{"K33", CompleteBipartite(3, 3), 6, 9},
		{"grid", Grid(4, 5), 20, 31},
		{"tree", RandomTree(30, rng), 30, 29},
		{"maxplanar", MaximalPlanar(30, rng), 30, 84},
		{"outerplanar", Outerplanar(30, rng), 30, 57}, // 2n-3
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
	}
}

func TestCorpusFamilyGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"ladder", Ladder(6), 12, 16},                  // 3k-2
		{"ladder-k1", Ladder(1), 2, 1},                 // single rung
		{"circular-ladder", CircularLadder(6), 12, 18}, // 3k
		{"barbell-4-4", Barbell(4, 4), 12, 17},         // 2*C(4,2)+p+1
		{"barbell-5-0", Barbell(5, 0), 10, 21},         // two K5s + bridge
		{"lollipop-4-5", Lollipop(4, 5), 9, 11},        // C(4,2)+p
		{"lollipop-5-2", Lollipop(5, 2), 7, 12},
		{"balanced-tree-2-3", BalancedTree(2, 3), 15, 14},
		{"balanced-tree-3-0", BalancedTree(3, 0), 1, 0},
		{"k33-subdiv-6", K33Subdivision(6), 6, 9},
		{"k33-subdiv-20", K33Subdivision(20), 20, 23}, // m = n+3
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
	}
	// Structural spot checks beyond edge counts.
	if !CircularLadder(8).IsConnected() {
		t.Error("circular ladder must be connected")
	}
	for _, k := range []int{3, 5, 8} {
		cl := CircularLadder(k)
		for v := 0; v < cl.N(); v++ {
			if cl.Degree(v) != 3 {
				t.Fatalf("circular ladder CL_%d: degree(%d)=%d, want 3", k, v, cl.Degree(v))
			}
		}
	}
	if bt := BalancedTree(3, 4); !bt.IsTree() {
		t.Error("balanced tree must be a tree")
	}
	if !Barbell(5, 3).IsConnected() || !Lollipop(5, 7).IsConnected() {
		t.Error("barbell/lollipop must be connected")
	}
	if g := K33Subdivision(33); !g.IsConnected() {
		t.Error("K33 subdivision must be connected")
	}
}

func TestRandomPlanarSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range []int{29, 40, 60, 84} {
		g := RandomPlanar(30, m, rng)
		if g.N() != 30 || g.M() != m {
			t.Fatalf("RandomPlanar(30,%d): n=%d m=%d", m, g.N(), g.M())
		}
		if !g.IsConnected() {
			t.Fatalf("RandomPlanar(30,%d) must be connected", m)
		}
	}
}

func TestGNPStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	p := 0.02
	total := 0
	const reps = 20
	for i := 0; i < reps; i++ {
		total += GNP(n, p, rng).M()
	}
	mean := float64(total) / reps
	want := p * float64(n*(n-1)) / 2
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("GNP mean edges %.1f, want about %.1f", mean, want)
	}
	if GNP(10, 0, rng).M() != 0 {
		t.Fatal("GNP p=0 must be empty")
	}
	if GNP(10, 1, rng).M() != 45 {
		t.Fatal("GNP p=1 must be complete")
	}
}

func TestPlanarPlusRandomEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, dist := PlanarPlusRandomEdges(50, 30, rng)
	if g.M() != 3*50-6+30 {
		t.Fatalf("m = %d, want %d", g.M(), 3*50-6+30)
	}
	if dist != 30 {
		t.Fatalf("certified distance %d, want 30", dist)
	}
}

func TestEulerDistanceLowerBound(t *testing.T) {
	if d := EulerDistanceLowerBound(Complete(5)); d != 10-9 {
		t.Fatalf("K5 distance bound %d, want 1", d)
	}
	rng := rand.New(rand.NewSource(9))
	if d := EulerDistanceLowerBound(MaximalPlanar(40, rng)); d != 0 {
		t.Fatalf("maximal planar bound %d, want 0", d)
	}
	if d := EulerDistanceLowerBound(Path(2)); d != 0 {
		t.Fatalf("tiny graph bound %d, want 0", d)
	}
}

func TestShuffleIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := Grid(5, 5)
	h, perm := Shuffle(g, rng)
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("shuffle changed size")
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(perm[e.U], perm[e.V]) {
			t.Fatalf("edge %v lost under permutation", e)
		}
	}
}

func TestConnectParts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := DisjointUnion(Cycle(4), Cycle(4), Path(3))
	h := ConnectParts(g, rng)
	if !h.IsConnected() {
		t.Fatal("ConnectParts must connect")
	}
	if h.M() != g.M()+2 {
		t.Fatalf("added %d edges, want 2", h.M()-g.M())
	}
}

func TestRemoveShortCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := GNP(400, 8.0/400, rng)
	minG := 5
	h, removed := RemoveShortCycles(g, minG)
	if h.M()+removed != g.M() {
		t.Fatalf("edge accounting: %d + %d != %d", h.M(), removed, g.M())
	}
	if girth := h.Girth(minG - 1); girth != -1 {
		t.Fatalf("cycle of length %d survived surgery (minGirth %d)", girth, minG)
	}
	// Dense-enough graphs must retain most edges.
	if h.M() < g.M()/2 {
		t.Fatalf("surgery removed too much: %d -> %d", g.M(), h.M())
	}
}

func TestRemoveShortCyclesOnTriangleGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := MaximalPlanar(50, rng) // lots of triangles
	h, _ := RemoveShortCycles(g, 4)
	if h.Girth(3) != -1 {
		t.Fatal("triangles must be gone")
	}
}

// Property: for random graphs, quotient by components has no edges, and
// CutSize of the all-same partition is zero.
func TestQuotientProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(60, 0.05, rng)
		comp, _ := g.Components()
		if QuotientGraph(g, comp).NumEdges() != 0 {
			return false
		}
		same := make([]int, g.N())
		return CutSize(g, same) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CutSize + intra-part edges == m for random partitions.
func TestCutSizePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(50, 0.1, rng)
		part := make([]int, g.N())
		for i := range part {
			part[i] = rng.Intn(5)
		}
		cut := CutSize(g, part)
		q := QuotientGraph(g, part)
		return q.TotalWeight() == int64(cut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedBasics(t *testing.T) {
	w := NewWeighted()
	w.AddWeight(1, 2, 5)
	w.AddWeight(2, 3, 7)
	w.AddWeight(1, 2, 3)
	if w.Weight(1, 2) != 8 || w.Weight(2, 1) != 8 {
		t.Fatalf("weight = %d, want 8", w.Weight(1, 2))
	}
	if w.TotalWeight() != 15 {
		t.Fatalf("total = %d, want 15", w.TotalWeight())
	}
	if w.NodeWeight(2) != 15 {
		t.Fatalf("node weight = %d, want 15", w.NodeWeight(2))
	}
	if w.NumNodes() != 3 || w.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", w.NumNodes(), w.NumEdges())
	}
	w.AddWeight(2, 3, -7) // edge disappears
	if w.NumEdges() != 1 || w.Weight(2, 3) != 0 {
		t.Fatal("edge removal via weight failed")
	}
}

func TestWeightedContract(t *testing.T) {
	w := NewWeighted()
	w.AddWeight(1, 2, 5)
	w.AddWeight(2, 3, 7)
	w.AddWeight(1, 3, 1)
	w.Contract(1, 2) // 2 merges into 1
	if w.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", w.NumNodes())
	}
	if w.Weight(1, 3) != 8 {
		t.Fatalf("merged weight = %d, want 8", w.Weight(1, 3))
	}
	if w.TotalWeight() != 8 {
		t.Fatalf("total = %d, want 8 (the {1,2} edge is gone)", w.TotalWeight())
	}
}

func TestWeightedContractPreservesTotalMinusEdge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWeighted()
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(8), rng.Intn(8)
			if u != v {
				w.AddWeight(u, v, int64(1+rng.Intn(5)))
			}
		}
		if w.NumEdges() == 0 {
			return true
		}
		ns := w.Nodes()
		u := ns[rng.Intn(len(ns))]
		nbrs := w.NeighborsOf(u)
		if len(nbrs) == 0 {
			return true
		}
		v := nbrs[rng.Intn(len(nbrs))]
		before := w.TotalWeight()
		edge := w.Weight(u, v)
		w.Contract(u, v)
		return w.TotalWeight() == before-edge
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnweightedConversion(t *testing.T) {
	w := NewWeighted()
	w.AddWeight(10, 20, 3)
	w.AddWeight(20, 30, 1)
	w.AddNode(40)
	g, ids := w.Unweighted()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("converted n=%d m=%d", g.N(), g.M())
	}
	if ids[0] != 10 || ids[3] != 40 {
		t.Fatalf("id map wrong: %v", ids)
	}
}

func TestK5Subdivision(t *testing.T) {
	for _, n := range []int{5, 6, 17, 100} {
		g := K5Subdivision(n)
		if g.N() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.N())
		}
		if g.M() != n+5 {
			t.Fatalf("n=%d: got %d edges, want %d", n, g.M(), n+5)
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d: not connected", n)
		}
		// The five branch nodes keep degree 4; every subdivision node has
		// degree 2.
		for v := 0; v < n; v++ {
			want := 2
			if v < 5 {
				want = 4
			}
			if g.Degree(v) != want {
				t.Fatalf("n=%d: node %d degree %d, want %d", n, v, g.Degree(v), want)
			}
		}
	}
}
