package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file contains the synthetic graph families used by the experiments.
// Planar families are planar by construction; far-from-planar families come
// with a certified lower bound on their distance to planarity (see
// EulerDistanceLowerBound), which substitutes for the paper's probabilistic
// far-ness arguments (Claim 11) at laptop scale.

// Path returns the path 0-1-...-n-1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle on n nodes (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n>=3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with sides {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	bd := NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bd.AddEdge(i, a+j)
		}
	}
	return bd.Build()
}

// Grid returns the rows x cols planar grid.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return b.Build()
}

// TriangulatedGrid returns the rows x cols grid with one diagonal per
// cell: planar, non-bipartite, with about 3 edges per node — a denser
// planar family than the plain grid.
func TriangulatedGrid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				b.AddEdge(at(r, c), at(r+1, c+1))
			}
		}
	}
	return b.Build()
}

// RandomTree returns a uniform-attachment random tree: node i >= 1 attaches
// to a uniformly random node < i.
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i))
	}
	return b.Build()
}

// MaximalPlanar returns a random maximal planar graph (m = 3n-6, n >= 3)
// built as a stacked triangulation: starting from a triangle, each new node
// is inserted into a uniformly random face and connected to its three
// corners. Planar by construction.
func MaximalPlanar(n int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: maximal planar needs n>=3, got %d", n))
	}
	b := NewBuilder(n)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	faces := [][3]int32{{0, 1, 2}, {0, 1, 2}} // inner and outer face
	for v := 3; v < n; v++ {
		i := rng.Intn(len(faces))
		f := faces[i]
		b.AddEdge(v, int(f[0]))
		b.AddEdge(v, int(f[1]))
		b.AddEdge(v, int(f[2]))
		faces[i] = [3]int32{f[0], f[1], int32(v)}
		faces = append(faces,
			[3]int32{f[0], f[2], int32(v)},
			[3]int32{f[1], f[2], int32(v)})
	}
	return b.Build()
}

// RandomPlanar returns a connected random planar graph with n nodes and
// exactly m edges, n-1 <= m <= 3n-6: a random spanning tree of a random
// stacked triangulation plus m-(n-1) additional triangulation edges.
func RandomPlanar(n, m int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: random planar needs n>=3, got %d", n))
	}
	if m < n-1 || m > 3*n-6 {
		panic(fmt.Sprintf("gen: random planar needs n-1<=m<=3n-6, got n=%d m=%d", n, m))
	}
	tri := MaximalPlanar(n, rng)
	// Random spanning tree: BFS from a random root over a randomly
	// re-ordered adjacency structure.
	root := rng.Intn(n)
	inTree := make([]bool, n)
	inTree[root] = true
	tree := make(map[Edge]bool, n-1)
	frontier := []int{root}
	for len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		u := frontier[i]
		// Collect unvisited neighbors of u.
		var cands []int
		for _, w := range tri.Neighbors(u) {
			if !inTree[int(w)] {
				cands = append(cands, int(w))
			}
		}
		if len(cands) == 0 {
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			continue
		}
		v := cands[rng.Intn(len(cands))]
		inTree[v] = true
		tree[NormEdge(u, v)] = true
		frontier = append(frontier, v)
	}
	// Shuffle the non-tree edges and keep m-(n-1) of them.
	var rest []Edge
	for _, e := range tri.Edges() {
		if !tree[e] {
			rest = append(rest, e)
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	b := NewBuilder(n)
	for e := range tree {
		b.AddEdge(int(e.U), int(e.V))
	}
	for _, e := range rest[:m-(n-1)] {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build()
}

// Outerplanar returns a random maximal outerplanar graph: a cycle on n
// nodes (the polygon boundary) plus a random triangulation of its interior.
func Outerplanar(n int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: outerplanar needs n>=3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	// Triangulate polygons recursively: split (i..j) at random k.
	var tri func(lo, hi int)
	tri = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		k := lo + 1 + rng.Intn(hi-lo-1)
		if k > lo+1 {
			b.AddEdge(lo, k)
		}
		if k < hi-1 {
			b.AddEdge(k, hi)
		}
		tri(lo, k)
		tri(k, hi)
	}
	tri(0, n-1)
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	// Geometric skipping for sparse p.
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Iterate over pairs (i,j), i<j, skipping geometrically.
	v, w := 1, -1
	lp := math.Log1p(-p)
	for v < n {
		lr := math.Log1p(-rng.Float64())
		w += 1 + int(lr/lp)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	return b.Build()
}

// PlanarPlusRandomEdges returns a maximal planar graph on n nodes with
// `extra` additional random non-edges added, together with the certified
// distance lower bound (extra edges beyond the Euler bound must be removed
// to restore planarity).
func PlanarPlusRandomEdges(n, extra int, rng *rand.Rand) (*Graph, int) {
	g := MaximalPlanar(n, rng)
	b := g.Clone()
	added := 0
	for attempts := 0; added < extra && attempts < 100*extra+1000; attempts++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		b.AddEdge(u, v)
		g = b.Build()
		b = g.Clone()
		added++
	}
	out := b.Build()
	return out, EulerDistanceLowerBound(out)
}

// K5Subdivision returns a subdivision of K_5 on n >= 5 nodes: the ten
// edges of K_5 become internally disjoint paths whose interior nodes split
// the remaining n-5 nodes as evenly as possible. The result is non-planar
// for every n (Kuratowski) while staying sparse (m = n + 5), which makes
// it the adversarial counterpart of the planar families at large n.
func K5Subdivision(n int) *Graph {
	if n < 5 {
		panic(fmt.Sprintf("gen: K5 subdivision needs n>=5, got %d", n))
	}
	b := NewBuilder(n)
	next := 5
	extra := n - 5
	pairIdx := 0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			interior := extra / 10
			if pairIdx < extra%10 {
				interior++
			}
			prev := i
			for t := 0; t < interior; t++ {
				b.AddEdge(prev, next)
				prev = next
				next++
			}
			b.AddEdge(prev, j)
			pairIdx++
		}
	}
	return b.Build()
}

// Ladder returns the ladder graph L_k: two paths 0..k-1 and k..2k-1 with
// rungs i-(k+i). Planar (it is a 2 x k grid) with 3k-2 edges for k >= 1.
func Ladder(k int) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("gen: ladder needs k>=1, got %d", k))
	}
	b := NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		if i+1 < k {
			b.AddEdge(i, i+1)
			b.AddEdge(k+i, k+i+1)
		}
		b.AddEdge(i, k+i)
	}
	return b.Build()
}

// CircularLadder returns the circular ladder (prism) CL_k: two cycles
// 0..k-1 and k..2k-1 joined by rungs i-(k+i). Planar and 3-regular for
// k >= 3.
func CircularLadder(k int) *Graph {
	if k < 3 {
		panic(fmt.Sprintf("gen: circular ladder needs k>=3, got %d", k))
	}
	b := NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		b.AddEdge(i, (i+1)%k)
		b.AddEdge(k+i, k+(i+1)%k)
		b.AddEdge(i, k+i)
	}
	return b.Build()
}

// Barbell returns the barbell graph: two copies of K_k joined by a path
// with p interior nodes (p = 0 joins the cliques by a single edge).
// Planar iff K_k is planar, i.e. iff k <= 4 — the k = 5 barbell is the
// classic sparse non-planar family from the networkx test suite.
func Barbell(k, p int) *Graph {
	if k < 2 {
		panic(fmt.Sprintf("gen: barbell needs k>=2, got %d", k))
	}
	if p < 0 {
		panic(fmt.Sprintf("gen: barbell needs p>=0, got %d", p))
	}
	b := NewBuilder(2*k + p)
	clique := func(off int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddEdge(off+i, off+j)
			}
		}
	}
	clique(0)
	clique(k + p)
	// Path from node k-1 (first clique) through the p bridge nodes
	// k..k+p-1 to node k+p (second clique).
	prev := k - 1
	for t := 0; t < p; t++ {
		b.AddEdge(prev, k+t)
		prev = k + t
	}
	b.AddEdge(prev, k+p)
	return b.Build()
}

// Lollipop returns the lollipop graph: K_k with a path of p extra nodes
// hanging off node k-1. Planar iff k <= 4.
func Lollipop(k, p int) *Graph {
	if k < 2 {
		panic(fmt.Sprintf("gen: lollipop needs k>=2, got %d", k))
	}
	if p < 0 {
		panic(fmt.Sprintf("gen: lollipop needs p>=0, got %d", p))
	}
	b := NewBuilder(k + p)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := k - 1
	for t := 0; t < p; t++ {
		b.AddEdge(prev, k+t)
		prev = k + t
	}
	return b.Build()
}

// BalancedTree returns the perfectly balanced rooted tree with the given
// branching factor and depth (depth 0 is a single node). Trees are planar
// and acyclic, which makes this the canonical trivially-planar family.
func BalancedTree(branch, depth int) *Graph {
	if branch < 1 {
		panic(fmt.Sprintf("gen: balanced tree needs branch>=1, got %d", branch))
	}
	if depth < 0 {
		panic(fmt.Sprintf("gen: balanced tree needs depth>=0, got %d", depth))
	}
	n := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= branch
		n += level
	}
	b := NewBuilder(n)
	for child := 1; child < n; child++ {
		b.AddEdge(child, (child-1)/branch)
	}
	return b.Build()
}

// K33Subdivision returns a subdivision of K_{3,3} on n >= 6 nodes: the nine
// edges of K_{3,3} become internally disjoint paths whose interior nodes
// split the remaining n-6 nodes as evenly as possible. Non-planar for every
// n (Kuratowski) with m = n + 3 — even sparser than K5Subdivision.
func K33Subdivision(n int) *Graph {
	if n < 6 {
		panic(fmt.Sprintf("gen: K33 subdivision needs n>=6, got %d", n))
	}
	b := NewBuilder(n)
	next := 6
	extra := n - 6
	pairIdx := 0
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			interior := extra / 9
			if pairIdx < extra%9 {
				interior++
			}
			prev := i
			for t := 0; t < interior; t++ {
				b.AddEdge(prev, next)
				prev = next
				next++
			}
			b.AddEdge(prev, j)
			pairIdx++
		}
	}
	return b.Build()
}

// EulerDistanceLowerBound returns a certified lower bound on the number of
// edges that must be removed from g to make it planar: any planar graph on
// n >= 3 nodes has at most 3n-6 edges, so at least m-(3n-6) edges must go.
// Returns 0 when the bound is vacuous.
func EulerDistanceLowerBound(g *Graph) int {
	if g.N() < 3 {
		return 0
	}
	d := g.M() - (3*g.N() - 6)
	if d < 0 {
		return 0
	}
	return d
}

// DisjointUnion returns the disjoint union of the given graphs, with the
// nodes of each graph shifted after those of its predecessors.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			b.AddEdge(off+int(e.U), off+int(e.V))
		}
		off += g.N()
	}
	return b.Build()
}

// Shuffle returns an isomorphic copy of g with node indices permuted by a
// uniformly random permutation, plus the permutation used (perm[old]=new).
// Experiments use this to rule out id-correlated artifacts.
func Shuffle(g *Graph, rng *rand.Rand) (*Graph, []int) {
	perm := rng.Perm(g.N())
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	return b.Build(), perm
}

// ConnectParts adds, for each pair of consecutive components of g, one
// random edge between them so that the result is connected.
func ConnectParts(g *Graph, rng *rand.Rand) *Graph {
	comp, k := g.Components()
	if k <= 1 {
		return g
	}
	reps := make([][]int, k)
	for v := 0; v < g.N(); v++ {
		reps[comp[v]] = append(reps[comp[v]], v)
	}
	b := g.Clone()
	for c := 1; c < k; c++ {
		u := reps[c-1][rng.Intn(len(reps[c-1]))]
		v := reps[c][rng.Intn(len(reps[c]))]
		b.AddEdge(u, v)
	}
	return b.Build()
}

// GridWithOddChords returns a rows x cols grid with `chords` extra edges
// each of which closes an odd cycle (connecting two nodes at even grid
// distance), making the graph non-bipartite while staying sparse.
func GridWithOddChords(rows, cols, chords int, rng *rand.Rand) *Graph {
	g := Grid(rows, cols)
	b := g.Clone()
	at := func(r, c int) int { return r*cols + c }
	added := 0
	for attempts := 0; added < chords && attempts < 100*chords+1000; attempts++ {
		r, c := rng.Intn(rows), rng.Intn(cols-2)
		// (r,c)-(r,c+2) is at even distance 2: closes an odd cycle with
		// the two grid edges between them.
		u, v := at(r, c), at(r, c+2)
		if g.HasEdge(u, v) {
			continue
		}
		b.AddEdge(u, v)
		g = b.Build()
		b = g.Clone()
		added++
	}
	return b.Build()
}

// TreePlusRandomEdges returns a random tree with `extra` random non-tree
// edges added (each closes a cycle), used by the cycle-freeness experiments.
func TreePlusRandomEdges(n, extra int, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	b := g.Clone()
	added := 0
	for attempts := 0; added < extra && attempts < 100*extra+1000; attempts++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		b.AddEdge(u, v)
		g = b.Build()
		b = g.Clone()
		added++
	}
	return b.Build()
}

// RemoveShortCycles removes one edge from every cycle of length < minGirth
// (the girth surgery of Claim 12) and returns the surviving graph plus the
// number of edges removed. A single pass over all edges suffices: if a
// short cycle survived the pass intact, its last-examined edge would have
// detected it.
func RemoveShortCycles(g *Graph, minGirth int) (*Graph, int) {
	// Mutable adjacency sets for incremental removal.
	adj := make([]map[int32]bool, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = make(map[int32]bool, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			adj[v][w] = true
		}
	}
	removed := 0
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	var touched []int
	for _, e := range g.Edges() {
		u, v := int(e.U), int(e.V)
		if !adj[u][int32(v)] {
			continue
		}
		// BFS from u avoiding edge {u,v}, depth < minGirth-1.
		found := false
		dist[u] = 0
		touched = append(touched[:0], u)
		queue := []int{u}
		for len(queue) > 0 && !found {
			x := queue[0]
			queue = queue[1:]
			if dist[x] >= minGirth-2 {
				continue
			}
			for w := range adj[x] {
				y := int(w)
				if x == u && y == v {
					continue
				}
				if dist[y] == -1 {
					dist[y] = dist[x] + 1
					touched = append(touched, y)
					if y == v {
						found = true
						break
					}
					queue = append(queue, y)
				}
			}
		}
		for _, t := range touched {
			dist[t] = -1
		}
		if found {
			delete(adj[u], int32(v))
			delete(adj[v], int32(u))
			removed++
		}
	}
	b := NewBuilder(g.N())
	for u := 0; u < g.N(); u++ {
		for w := range adj[u] {
			if u < int(w) {
				b.AddEdge(u, int(w))
			}
		}
	}
	return b.Build(), removed
}
