// Package graph provides the graph substrate used throughout the
// reproduction of "Property Testing of Planarity in the CONGEST model"
// (Levi, Medina, Ron; PODC 2018): simple undirected graphs, weighted
// auxiliary multigraphs arising from part contraction, classic traversals,
// and the synthetic graph families the experiments run on.
//
// Nodes are dense indices 0..N()-1. The CONGEST simulator assigns
// (possibly non-contiguous) identifiers on top of these indices.
package graph

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Graph is an immutable simple undirected graph with nodes 0..n-1.
// Build one with a Builder. The zero value is an empty graph.
type Graph struct {
	n   int
	m   int
	adj [][]int32 // sorted, no duplicates, no self-loops

	revOnce sync.Once
	rev     [][]int32 // lazily built reverse port table (see RevPorts)
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops
// are silently dropped at Build time, keeping generator code simple.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalizes the Builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	slices.SortFunc(b.edges, func(x, y [2]int32) int {
		if c := cmp.Compare(x[0], y[0]); c != 0 {
			return c
		}
		return cmp.Compare(x[1], y[1])
	})
	deg := make([]int, b.n)
	m := 0
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		deg[e[0]]++
		deg[e[1]]++
		m++
	}
	adj := make([][]int32, b.n)
	for v := range adj {
		adj[v] = make([]int32, 0, deg[v])
	}
	prev = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		slices.Sort(adj[v])
	}
	return &Graph{n: b.n, m: m, adj: adj}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// RevPorts returns the reverse port table: RevPorts()[v][i] is the port
// of v in the adjacency list of its i-th neighbor. It is computed once in
// O(n+m) on first use and cached, so repeated simulation runs over the
// same graph share it. The returned slices are shared and must not be
// modified.
func (g *Graph) RevPorts() [][]int32 {
	g.revOnce.Do(func() {
		rev := make([][]int32, g.n)
		cnt := make([]int32, g.n)
		// Processing nodes in ascending order, cnt[w] counts the directed
		// edges (x, w) seen so far; since adjacency lists are sorted, when
		// edge (u, w) is reached, cnt[w] equals the number of neighbors of
		// w smaller than u — exactly u's port in w's list.
		for u := 0; u < g.n; u++ {
			rev[u] = make([]int32, len(g.adj[u]))
			for i, w := range g.adj[u] {
				rev[u][i] = cnt[w]
				cnt[w]++
			}
		}
		g.rev = rev
	})
	return g.rev
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edge is an undirected edge with U <= V.
type Edge struct {
	U, V int32
}

// NormEdge returns the Edge for {u, v} with endpoints ordered.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{int32(u), int32(v)}
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				es = append(es, Edge{int32(u), v})
			}
		}
	}
	return es
}

// Clone returns a deep copy of g as a Builder, allowing edge edits.
func (g *Graph) Clone() *Builder {
	b := NewBuilder(g.n)
	for _, e := range g.Edges() {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b
}

// RemoveEdges returns a copy of g with the given edges removed.
// Edges not present are ignored.
func (g *Graph) RemoveEdges(remove []Edge) *Graph {
	drop := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		drop[NormEdge(int(e.U), int(e.V))] = true
	}
	b := NewBuilder(g.n)
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(int(e.U), int(e.V))
		}
	}
	return b.Build()
}

// AddEdges returns a copy of g with the given extra edges added.
func (g *Graph) AddEdges(add []Edge) *Graph {
	b := g.Clone()
	for _, e := range add {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by nodes (which need not be
// sorted), together with the map from new indices to original indices.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	orig := make([]int, len(nodes))
	copy(orig, nodes)
	sort.Ints(orig)
	idx := make(map[int]int, len(orig))
	for i, v := range orig {
		if j, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: duplicate node %d at positions %d,%d", v, j, i))
		}
		idx[v] = i
	}
	b := NewBuilder(len(orig))
	for i, v := range orig {
		for _, w := range g.adj[v] {
			if j, ok := idx[int(w)]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), orig
}

// BFSResult holds a breadth-first search tree from a root.
type BFSResult struct {
	Root   int
	Dist   []int // -1 when unreachable
	Parent []int // -1 for root and unreachable nodes
	Order  []int // visit order, starting with Root
}

// BFS runs breadth-first search from root over all of g.
func (g *Graph) BFS(root int) *BFSResult {
	return g.BFSWithin(root, nil)
}

// BFSWithin runs BFS from root restricted to nodes where allowed[v] is true.
// A nil allowed means all nodes are allowed.
func (g *Graph) BFSWithin(root int, allowed []bool) *BFSResult {
	res := &BFSResult{
		Root:   root,
		Dist:   make([]int, g.n),
		Parent: make([]int, g.n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
	}
	if allowed != nil && !allowed[root] {
		return res
	}
	res.Dist[root] = 0
	queue := []int{root}
	res.Order = append(res.Order, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			v := int(w)
			if allowed != nil && !allowed[v] {
				continue
			}
			if res.Dist[v] == -1 {
				res.Dist[v] = res.Dist[u] + 1
				res.Parent[v] = u
				res.Order = append(res.Order, v)
				queue = append(queue, v)
			}
		}
	}
	return res
}

// Components returns, for each node, its component index, plus the number
// of components. Component indices are assigned in order of lowest node.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		res := g.BFS(v)
		for _, u := range res.Order {
			comp[u] = count
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether g is connected (true for the empty graph
// and single-node graphs).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, c := g.Components()
	return c == 1
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// node.
func (g *Graph) Eccentricity(v int) int {
	res := g.BFS(v)
	ecc := 0
	for _, d := range res.Dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter of g (max over connected pairs) by
// running BFS from every node. Suitable for the part sizes arising in
// experiments; O(n·m).
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > d {
			d = e
		}
	}
	return d
}

// IsTree reports whether g is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.IsConnected() && g.m == g.n-1
}

// IsForest reports whether g is acyclic.
func (g *Graph) IsForest() bool {
	_, c := g.Components()
	return g.m == g.n-c
}

// OddCycleEdge looks for an edge that closes an odd cycle. It returns the
// edge and true when g is not bipartite, and false otherwise.
func (g *Graph) OddCycleEdge() (Edge, bool) {
	color := make([]int8, g.n) // 0 unvisited, 1/2 sides
	for s := 0; s < g.n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				v := int(w)
				if color[v] == 0 {
					color[v] = 3 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return NormEdge(u, v), true
				}
			}
		}
	}
	return Edge{}, false
}

// IsBipartite reports whether g has no odd cycle.
func (g *Graph) IsBipartite() bool {
	_, odd := g.OddCycleEdge()
	return !odd
}

// ShortestCycleThrough returns the length of a shortest cycle through edge
// {u,v} (computed as dist(u,v) in g minus that edge, plus one), or -1 if
// the edge lies on no cycle. maxLen bounds the search: cycles longer than
// maxLen report -1.
func (g *Graph) ShortestCycleThrough(u, v int, maxLen int) int {
	if !g.HasEdge(u, v) {
		return -1
	}
	// BFS from u avoiding the edge {u,v}, stop beyond maxLen-1.
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] >= maxLen-1 {
			continue
		}
		for _, w := range g.adj[x] {
			y := int(w)
			if x == u && y == v {
				continue
			}
			if dist[y] == -1 {
				dist[y] = dist[x] + 1
				if y == v {
					return dist[y] + 1
				}
				queue = append(queue, y)
			}
		}
	}
	if dist[v] == -1 {
		return -1
	}
	return dist[v] + 1
}

// Girth returns the length of a shortest cycle in g, or -1 if acyclic.
// maxLen bounds the search; cycles longer than maxLen are not reported.
// O(m * m) in the worst case; fine at experiment scale.
func (g *Graph) Girth(maxLen int) int {
	best := -1
	for _, e := range g.Edges() {
		c := g.ShortestCycleThrough(int(e.U), int(e.V), maxLen)
		if c != -1 && (best == -1 || c < best) {
			best = c
			if best == 3 {
				return 3
			}
		}
	}
	return best
}

// MaxDegree returns the maximum degree in g (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// DegeneracyOrder returns a degeneracy ordering and the degeneracy of g
// (the maximum, over the ordering, of a node's remaining degree when
// removed). The arboricity of g lies in [ (degeneracy+1)/2, degeneracy ].
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	buckets := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = len(g.adj[v])
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	order = make([]int, 0, g.n)
	cur := 0
	for len(order) < g.n {
		for cur < len(buckets) && len(buckets[cur]) == 0 {
			cur++
		}
		if cur >= len(buckets) {
			break
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.adj[v] {
			u := int(w)
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
			}
		}
		if cur > 0 {
			cur--
		}
	}
	return order, degeneracy
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}
