// Package spanner implements the ultra-sparse spanner construction of
// Corollary 17: on an unweighted minor-free graph, the Stage I partition
// yields parts of diameter poly(1/eps) with at most eps*n crossing edges;
// the union of the part spanning trees with all crossing edges is a
// poly(1/eps)-spanner with (1+O(eps))n edges.
package spanner

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Options configures the spanner construction.
type Options struct {
	// Epsilon controls the size/stretch tradeoff: size (1+O(eps))n,
	// stretch poly(1/eps).
	Epsilon float64
	// Partition overrides the partitioning options (zero value: the
	// deterministic Stage I of Theorem 3; set Variant to
	// partition.Randomized for the Theorem 4 variant).
	Partition partition.Options
	// Workers is passed through to congest.Config.Workers (0: GOMAXPROCS).
	// Results are byte-identical for every value.
	Workers int
	// Cancel is passed through to congest.Config.Cancel: when it becomes
	// readable the run aborts with congest.ErrCanceled. Pass a context's
	// Done() channel; nil disables cancellation.
	Cancel <-chan struct{}
	// Deadline is passed through to congest.Config.Deadline: a non-zero
	// wall-clock instant after which the run aborts with
	// congest.ErrDeadlineExceeded at the next barrier.
	Deadline time.Time
}

// NodeSpanner is a node's local view of the spanner: which of its ports
// carry spanner edges. Views are symmetric across each edge.
type NodeSpanner struct {
	Ports []bool
	// PartRoot identifies the node's part.
	PartRoot int64
	// StretchBound is the part-diameter-based stretch guarantee agreed
	// part-wide (2 * Stage I tree depth).
	StretchBound int
}

// Build constructs the spanner inside a node program: the node's Stage I
// tree edges plus every cross-part edge. One extra round re-discovers
// boundaries after Stage I.
func Build(api *congest.API, opts Options) *NodeSpanner {
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		panic("spanner: Epsilon must be in (0,1]")
	}
	if opts.Partition.Epsilon == 0 {
		opts.Partition.Epsilon = opts.Epsilon
	}
	po := partition.RunStageI(api, opts.Partition)

	// Depth probe on the part tree for the stretch certificate.
	probe := api.N() + 2
	d, ok := po.Tree.BroadcastDown(api, api.Round()+probe, depthMsg{}, depthHop)
	if !ok {
		panic("spanner: depth probe under-budgeted")
	}
	maxd, ok := po.Tree.Convergecast(api, api.Round()+probe, d, combineMaxDepth)
	if !ok {
		panic("spanner: depth convergecast under-budgeted")
	}
	agreed, ok := po.Tree.BroadcastDown(api, api.Round()+probe, maxd, nil)
	if !ok {
		panic("spanner: depth broadcast under-budgeted")
	}

	// Boundary round: flag cross edges.
	ports := make([]bool, api.Degree())
	api.SendAll(rootMsg{Root: po.RootID})
	for _, in := range api.NextRound() {
		if rm, ok := in.Msg.(rootMsg); ok && rm.Root != po.RootID {
			ports[in.Port] = true // cross-part edge: keep
		}
	}
	// Part tree edges: parent and children ports.
	if po.Tree.ParentPort >= 0 {
		ports[po.Tree.ParentPort] = true
	}
	for _, c := range po.Tree.ChildPorts {
		ports[c] = true
	}
	return &NodeSpanner{
		Ports:        ports,
		PartRoot:     po.RootID,
		StretchBound: 2 * int(agreed.(depthMsg).D),
	}
}

type depthMsg struct{ D int64 }

func (m depthMsg) Bits() int { return 2 + congest.BitsForValue(m.D) }

// depthHop increments the depth-probe payload on each hop (shared by both
// execution models).
func depthHop(m congest.Message) congest.Message {
	return depthMsg{D: m.(depthMsg).D + 1}
}

// combineMaxDepth keeps the maximum depth contribution (shared by both
// execution models).
func combineMaxDepth(own congest.Message, ch []congest.Message) congest.Message {
	best := own.(depthMsg).D
	for _, c := range ch {
		if v := c.(depthMsg).D; v > best {
			best = v
		}
	}
	return depthMsg{D: best}
}

type rootMsg struct{ Root int64 }

func (m rootMsg) Bits() int { return 2 + congest.BitsForValue(m.Root) }

// Collect runs the construction on g and returns the spanner subgraph,
// the per-node views, and the run metrics. It runs on the engine's native
// step path; CollectBlocking forces the goroutine compatibility path,
// which produces byte-identical results for a fixed seed
// (TestSpannerEngineEquivalence). Panics on invalid Options (Epsilon
// outside (0,1]), like Build.
func Collect(g *graph.Graph, opts Options, seed int64) (*graph.Graph, []*NodeSpanner, congest.Metrics, error) {
	return CollectStep(g, opts, seed)
}

// CollectBlocking runs the construction on the blocking compatibility
// path (one goroutine per node); kept for the engine-equivalence tests.
func CollectBlocking(g *graph.Graph, opts Options, seed int64) (*graph.Graph, []*NodeSpanner, congest.Metrics, error) {
	views := make([]*NodeSpanner, g.N())
	res, err := congest.Run(congest.Config{
		Graph:     g,
		Seed:      seed,
		MaxRounds: 1 << 40,
		Workers:   opts.Workers,
		Cancel:    opts.Cancel,
		Deadline:  opts.Deadline,
	}, func(api *congest.API) {
		views[api.Index()] = Build(api, opts)
	})
	if err != nil {
		return nil, nil, congest.Metrics{}, err
	}
	return assembleSpanner(g, views), views, res.Metrics, nil
}

// VerifySymmetric checks that both endpoints of every spanner edge agree
// on membership.
func VerifySymmetric(g *graph.Graph, views []*NodeSpanner) error {
	for v := 0; v < g.N(); v++ {
		for p, keep := range views[v].Ports {
			w := int(g.Neighbors(v)[p])
			// Find v's port at w.
			q := -1
			for i, x := range g.Neighbors(w) {
				if int(x) == v {
					q = i
					break
				}
			}
			if views[w].Ports[q] != keep {
				return fmt.Errorf("spanner: edge {%d,%d} membership asymmetric", v, w)
			}
		}
	}
	return nil
}

// MeasureStretch samples `pairs` connected node pairs and returns the
// maximum and mean ratio of spanner distance to graph distance. Because
// every non-spanner edge stays within a part, the per-edge stretch bound
// is the part diameter bound; sampling verifies it end-to-end.
func MeasureStretch(g, sp *graph.Graph, pairs int, rng *rand.Rand) (maxStretch float64, meanStretch float64) {
	if g.N() == 0 {
		return 1, 1
	}
	count := 0
	var sum float64
	maxStretch = 1
	for i := 0; i < pairs; i++ {
		u := rng.Intn(g.N())
		bg := g.BFS(u)
		bs := sp.BFS(u)
		v := rng.Intn(g.N())
		if u == v || bg.Dist[v] <= 0 {
			continue
		}
		if bs.Dist[v] < 0 {
			return -1, -1 // spanner disconnected within a component: invalid
		}
		r := float64(bs.Dist[v]) / float64(bg.Dist[v])
		if r > maxStretch {
			maxStretch = r
		}
		sum += r
		count++
	}
	if count == 0 {
		return 1, 1
	}
	return maxStretch, sum / float64(count)
}
