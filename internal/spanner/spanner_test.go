package spanner

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// TestSpannerEngineEquivalence proves that the native step path of the
// spanner construction and the blocking path produce byte-identical
// Metrics, views, and spanner subgraphs for fixed seeds across ≥3 graph
// families and both Stage I variants (issue acceptance criterion).
func TestSpannerEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(7, 8)},
		{"maximal-planar", graph.MaximalPlanar(50, rng)},
		{"outerplanar", graph.Outerplanar(35, rng)},
		{"tree", graph.RandomTree(40, rng)},
	}
	variants := []partition.Variant{partition.Deterministic, partition.Randomized}
	for _, fam := range families {
		for _, variant := range variants {
			for seed := int64(0); seed < 2; seed++ {
				name := fmt.Sprintf("%s/variant%d/seed%d", fam.name, variant, seed)
				opts := Options{Epsilon: 0.3, Partition: partition.Options{
					Epsilon: 0.3, Variant: variant, Schedule: partition.PracticalSchedule}}
				nsp, nviews, nm, nErr := CollectStep(fam.g, opts, seed)
				bsp, bviews, bm, bErr := CollectBlocking(fam.g, opts, seed)
				if (nErr == nil) != (bErr == nil) {
					t.Fatalf("%s: err mismatch: native=%v blocking=%v", name, nErr, bErr)
				}
				if nErr != nil {
					continue
				}
				if !reflect.DeepEqual(nm, bm) {
					t.Fatalf("%s: metrics mismatch:\nnative:   %+v\nblocking: %+v", name, nm, bm)
				}
				if !reflect.DeepEqual(nviews, bviews) {
					t.Fatalf("%s: views mismatch", name)
				}
				if !reflect.DeepEqual(nsp.Edges(), bsp.Edges()) {
					t.Fatalf("%s: spanner subgraph mismatch", name)
				}
			}
		}
	}
}

func TestSpannerOnGrid(t *testing.T) {
	g := graph.Grid(8, 8)
	eps := 0.4
	sp, views, _, err := Collect(g, Options{Epsilon: eps}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySymmetric(g, views); err != nil {
		t.Fatal(err)
	}
	// Size: (1 + O(eps)) n for minor-free inputs (Corollary 17).
	bound := (1 + 2*eps) * float64(g.N())
	if float64(sp.M()) > bound {
		t.Fatalf("spanner has %d edges, bound %.1f", sp.M(), bound)
	}
	// Connectivity must be preserved per component.
	if !sp.IsConnected() {
		t.Fatal("grid spanner must be connected")
	}
	// Stretch: bounded by the agreed per-part bound.
	rng := rand.New(rand.NewSource(2))
	maxS, _ := MeasureStretch(g, sp, 200, rng)
	if maxS < 0 {
		t.Fatal("spanner disconnected inside a component")
	}
	worst := 0
	for _, v := range views {
		if v.StretchBound > worst {
			worst = v.StretchBound
		}
	}
	if maxS > float64(worst)+1 {
		t.Fatalf("measured stretch %.1f exceeds certified bound %d", maxS, worst)
	}
}

func TestSpannerOnPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []*graph.Graph{
		graph.MaximalPlanar(50, rng),
		graph.RandomPlanar(60, 120, rng),
		graph.Outerplanar(40, rng),
		graph.Cycle(30),
	}
	for i, g := range cases {
		sp, views, _, err := Collect(g, Options{Epsilon: 0.3}, int64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifySymmetric(g, views); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if float64(sp.M()) > (1+2*0.3)*float64(g.N()) {
			t.Fatalf("case %d: %d edges exceed size bound", i, sp.M())
		}
		maxS, _ := MeasureStretch(g, sp, 100, rng)
		if maxS < 0 {
			t.Fatalf("case %d: spanner disconnected", i)
		}
	}
}

func TestSpannerTreeInput(t *testing.T) {
	// A tree's spanner is the tree itself (stretch 1).
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomTree(40, rng)
	sp, _, _, err := Collect(g, Options{Epsilon: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sp.M() != g.M() {
		t.Fatalf("tree spanner must keep all %d edges, has %d", g.M(), sp.M())
	}
	maxS, mean := MeasureStretch(g, sp, 100, rng)
	if maxS != 1 || mean != 1 {
		t.Fatalf("tree stretch must be 1, got max %.2f mean %.2f", maxS, mean)
	}
}

func TestSpannerRandomizedPartition(t *testing.T) {
	g := graph.Grid(7, 7)
	opts := Options{
		Epsilon:   0.4,
		Partition: partition.Options{Epsilon: 0.4, Variant: partition.Randomized},
	}
	sp, views, _, err := Collect(g, opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySymmetric(g, views); err != nil {
		t.Fatal(err)
	}
	if !sp.IsConnected() {
		t.Fatal("spanner must be connected")
	}
}

func TestSpannerPreservesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.DisjointUnion(graph.Grid(4, 4), graph.Cycle(9), graph.RandomTree(11, rng))
	sp, _, _, err := Collect(g, Options{Epsilon: 0.3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, kg := g.Components()
	_, ks := sp.Components()
	if kg != ks {
		t.Fatalf("component count changed: %d -> %d", kg, ks)
	}
}
