package spanner

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
)

// This file is the native StepProgram port of the spanner construction
// (Build in spanner.go): after the step-model Stage I, each node runs the
// depth probe (broadcast, convergecast, broadcast on the part tree) and
// one boundary round, then assembles its NodeSpanner view. The port is
// round-exact versus the blocking Build, so both execution models produce
// byte-identical Results and views for a fixed seed
// (TestSpannerEngineEquivalence).

type spOp uint8

const (
	spDepthDown  spOp = iota // bcast: depth probe (+1 per hop)
	spDepthUp                // cvg: max depth
	spDepthAgree             // bcast: agreed depth
	spBoundary               // cross: flag cross-part edges
	spFinish
)

type spannerNode struct {
	part   *partition.Outcome
	record func(api *congest.StepAPI, v *NodeSpanner) congest.Status

	pc   spOp
	inOp bool
	bd   congest.BroadcastDownStep
	cv   congest.ConvergecastStep
	reg  congest.Message

	stretch int
	ports   []bool
}

// newSpannerNode returns the post-partition continuation for one node.
func newSpannerNode(part *partition.Outcome, record func(api *congest.StepAPI, v *NodeSpanner) congest.Status) congest.StepProgram {
	return &spannerNode{part: part, record: record}
}

// Step implements congest.StepProgram.
func (s *spannerNode) Step(api *congest.StepAPI, inbox []congest.Inbound) congest.Status {
	probe := api.N() + 2
	for {
		switch s.pc {
		case spDepthDown:
			if !s.inOp {
				if !s.bd.Begin(api, s.part.Tree, api.Round()+probe, depthMsg{}, depthHop) {
					s.inOp = true
					return s.bd.Wake()
				}
			} else if !s.bd.Feed(api, inbox) {
				return s.bd.Wake()
			} else {
				s.inOp = false
			}
			d, ok := s.bd.Result()
			if !ok {
				panic("spanner: depth probe under-budgeted")
			}
			s.reg = d
			s.pc = spDepthUp

		case spDepthUp:
			if !s.inOp {
				if !s.cv.Begin(api, s.part.Tree, api.Round()+probe, s.reg, combineMaxDepth) {
					s.inOp = true
					return s.cv.Wake()
				}
			} else if !s.cv.Feed(api, inbox) {
				return s.cv.Wake()
			} else {
				s.inOp = false
			}
			maxd, ok := s.cv.Result()
			if !ok {
				panic("spanner: depth convergecast under-budgeted")
			}
			s.reg = maxd
			s.pc = spDepthAgree

		case spDepthAgree:
			if !s.inOp {
				if !s.bd.Begin(api, s.part.Tree, api.Round()+probe, s.reg, nil) {
					s.inOp = true
					return s.bd.Wake()
				}
			} else if !s.bd.Feed(api, inbox) {
				return s.bd.Wake()
			} else {
				s.inOp = false
			}
			agreed, ok := s.bd.Result()
			if !ok {
				panic("spanner: depth broadcast under-budgeted")
			}
			s.stretch = 2 * int(agreed.(depthMsg).D)
			s.pc = spBoundary

		case spBoundary:
			if !s.inOp {
				s.ports = make([]bool, api.Degree())
				api.SendAll(rootMsg{Root: s.part.RootID})
				s.inOp = true
				return congest.Running()
			}
			s.inOp = false
			for _, in := range inbox {
				if rm, ok := in.Msg.(rootMsg); ok && rm.Root != s.part.RootID {
					s.ports[in.Port] = true // cross-part edge: keep
				}
			}
			if s.part.Tree.ParentPort >= 0 {
				s.ports[s.part.Tree.ParentPort] = true
			}
			for _, c := range s.part.Tree.ChildPorts {
				s.ports[c] = true
			}
			s.pc = spFinish

		default: // spFinish
			return s.record(api, &NodeSpanner{
				Ports:        s.ports,
				PartRoot:     s.part.RootID,
				StretchBound: s.stretch,
			})
		}
	}
}

// CollectStep runs the native step-model construction on g and returns the
// spanner subgraph, the per-node views, and the run metrics (the step
// counterpart of CollectBlocking; both produce byte-identical results for
// a fixed seed).
func CollectStep(g *graph.Graph, opts Options, seed int64) (*graph.Graph, []*NodeSpanner, congest.Metrics, error) {
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		panic("spanner: Epsilon must be in (0,1]")
	}
	if opts.Partition.Epsilon == 0 {
		opts.Partition.Epsilon = opts.Epsilon
	}
	plan := partition.NewStageIPlan(opts.Partition, g.N())
	views := make([]*NodeSpanner, g.N())
	res, err := congest.RunStep(congest.Config{
		Graph:     g,
		Seed:      seed,
		MaxRounds: 1 << 40,
		Workers:   opts.Workers,
		Cancel:    opts.Cancel,
		Deadline:  opts.Deadline,
	}, func(node int) congest.StepProgram {
		return plan.NewNode(func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
			return congest.BecomeStep(newSpannerNode(po, func(api *congest.StepAPI, v *NodeSpanner) congest.Status {
				views[api.Index()] = v
				return congest.Done()
			}))
		})
	})
	if err != nil {
		return nil, nil, congest.Metrics{}, err
	}
	return assembleSpanner(g, views), views, res.Metrics, nil
}

// assembleSpanner materializes the spanner subgraph from the per-node
// views (shared by both execution models' Collect paths).
func assembleSpanner(g *graph.Graph, views []*NodeSpanner) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		for p, keep := range views[v].Ports {
			if keep {
				b.AddEdge(v, int(g.Neighbors(v)[p]))
			}
		}
	}
	return b.Build()
}
