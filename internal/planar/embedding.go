// Package planar implements planarity testing and combinatorial (rotation
// system) embeddings of simple undirected graphs.
//
// The main entry points are IsPlanar and Embed, which run the left-right
// planarity algorithm (de Fraysseix, Ossona de Mendez, Rosenstiehl; in the
// formulation of Brandes' "The left-right planarity test"). Embed produces
// a combinatorial embedding: a clockwise circular ordering of the edges
// around every node such that some planar drawing realizes all orderings.
//
// In the reproduction this package substitutes for the distributed planar
// embedding algorithm of Ghaffari and Haeupler (PODC 2016) used as a black
// box by Stage II of the paper; see DESIGN.md §3 for why the substitution
// preserves the tester's behaviour.
package planar

import (
	"fmt"

	"repro/internal/graph"
)

// Embedding is a combinatorial embedding: for every node, a circular
// clockwise ordering of its incident half-edges. Half-edge (v,w) is the
// occurrence of edge {v,w} in v's rotation.
type Embedding struct {
	n        int
	cwNext   []map[int32]int32 // cwNext[v][w]: neighbor following w clockwise around v
	ccwNext  []map[int32]int32
	firstNbr []int32 // entry point of v's rotation; -1 when v has no edges
}

// NewEmbedding returns an embedding over n nodes with all rotations empty.
func NewEmbedding(n int) *Embedding {
	e := &Embedding{
		n:        n,
		cwNext:   make([]map[int32]int32, n),
		ccwNext:  make([]map[int32]int32, n),
		firstNbr: make([]int32, n),
	}
	for v := range e.firstNbr {
		e.firstNbr[v] = -1
		e.cwNext[v] = make(map[int32]int32)
		e.ccwNext[v] = make(map[int32]int32)
	}
	return e
}

// NewEmbeddingFromRotations builds an Embedding from explicit clockwise
// rotations (one slice of neighbors per node, in clockwise order).
func NewEmbeddingFromRotations(rot [][]int32) *Embedding {
	e := NewEmbedding(len(rot))
	for v, nbrs := range rot {
		prev := int32(-1)
		for _, w := range nbrs {
			e.AddHalfEdgeCW(int32(v), w, prev)
			prev = w
		}
	}
	return e
}

// N returns the number of nodes.
func (e *Embedding) N() int { return e.n }

// Degree returns the number of half-edges at v.
func (e *Embedding) Degree(v int) int { return len(e.cwNext[v]) }

// AddHalfEdgeCW inserts half-edge (start,end) immediately clockwise after
// ref in start's rotation. Pass ref = -1 when start has no edges yet.
func (e *Embedding) AddHalfEdgeCW(start, end, ref int32) {
	if ref < 0 {
		if len(e.cwNext[start]) != 0 {
			panic(fmt.Sprintf("planar: nil ref with non-empty rotation at %d", start))
		}
		e.cwNext[start][end] = end
		e.ccwNext[start][end] = end
		e.firstNbr[start] = end
		return
	}
	after := e.cwNext[start][ref]
	e.cwNext[start][ref] = end
	e.cwNext[start][end] = after
	e.ccwNext[start][after] = end
	e.ccwNext[start][end] = ref
}

// AddHalfEdgeCCW inserts half-edge (start,end) immediately counterclockwise
// before ref in start's rotation. Pass ref = -1 when start has no edges.
func (e *Embedding) AddHalfEdgeCCW(start, end, ref int32) {
	if ref < 0 {
		e.AddHalfEdgeCW(start, end, -1)
		return
	}
	e.AddHalfEdgeCW(start, end, e.ccwNext[start][ref])
	if e.firstNbr[start] == ref {
		e.firstNbr[start] = end
	}
}

// AddHalfEdgeFirst inserts half-edge (start,end) as the new first entry of
// start's rotation.
func (e *Embedding) AddHalfEdgeFirst(start, end int32) {
	e.AddHalfEdgeCCW(start, end, e.firstNbr[start])
}

// Rotation returns the clockwise rotation around v, starting at the first
// neighbor. The slice is freshly allocated.
func (e *Embedding) Rotation(v int) []int32 {
	if e.firstNbr[v] < 0 {
		return nil
	}
	out := make([]int32, 0, len(e.cwNext[v]))
	start := e.firstNbr[v]
	w := start
	for {
		out = append(out, w)
		w = e.cwNext[v][w]
		if w == start {
			break
		}
		if len(out) > len(e.cwNext[v]) {
			panic(fmt.Sprintf("planar: rotation at %d is not a single cycle", v))
		}
	}
	return out
}

// CWNext returns the neighbor following w clockwise around v.
func (e *Embedding) CWNext(v, w int32) int32 { return e.cwNext[v][w] }

// CCWNext returns the neighbor preceding w (counterclockwise) around v.
func (e *Embedding) CCWNext(v, w int32) int32 { return e.ccwNext[v][w] }

// HasHalfEdge reports whether (v,w) is present.
func (e *Embedding) HasHalfEdge(v, w int32) bool {
	_, ok := e.cwNext[v][w]
	return ok
}

// CountFaces traces all faces of the embedding and returns their number.
// The face containing half-edge (v,w) on its left is traced by repeatedly
// moving to (w, ccw_w(v)).
func (e *Embedding) CountFaces() int {
	seen := make(map[[2]int32]bool)
	faces := 0
	for v := 0; v < e.n; v++ {
		for w := range e.cwNext[v] {
			he := [2]int32{int32(v), w}
			if seen[he] {
				continue
			}
			faces++
			cv, cw := int32(v), w
			for !seen[[2]int32{cv, cw}] {
				seen[[2]int32{cv, cw}] = true
				cv, cw = cw, e.ccwNext[cw][cv]
			}
		}
	}
	return faces
}

// FaceOf returns the node cycle of the face to the left of half-edge (v,w).
func (e *Embedding) FaceOf(v, w int32) []int32 {
	var face []int32
	cv, cw := v, w
	for {
		face = append(face, cv)
		cv, cw = cw, e.ccwNext[cw][cv]
		if cv == v && cw == w {
			return face
		}
		if len(face) > 4*e.n*e.n+4 {
			panic("planar: face traversal does not terminate")
		}
	}
}

// Validate checks that e is a well-formed combinatorial embedding of g
// (every rotation is a single cycle through exactly g's neighbors) and that
// it is planar by Euler's formula: the number of traced faces must equal
// 2c - n + m + isolated-vertex deficit, where c is the number of connected
// components of g. Returns nil when e is a planar embedding of g.
func (e *Embedding) Validate(g *graph.Graph) error {
	if g.N() != e.n {
		return fmt.Errorf("planar: embedding has %d nodes, graph has %d", e.n, g.N())
	}
	for v := 0; v < e.n; v++ {
		rot := e.Rotation(v)
		if len(rot) != g.Degree(v) {
			return fmt.Errorf("planar: rotation at %d has %d entries, degree is %d", v, len(rot), g.Degree(v))
		}
		seen := make(map[int32]bool, len(rot))
		for _, w := range rot {
			if seen[w] {
				return fmt.Errorf("planar: duplicate neighbor %d in rotation at %d", w, v)
			}
			seen[w] = true
			if !g.HasEdge(v, int(w)) {
				return fmt.Errorf("planar: rotation at %d contains non-edge to %d", v, w)
			}
		}
	}
	_, c := g.Components()
	isolated := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			isolated++
		}
	}
	want := 2*c - g.N() + g.M() - isolated
	if got := e.CountFaces(); got != want {
		return fmt.Errorf("planar: embedding has %d faces, planarity requires %d (n=%d m=%d c=%d)",
			got, want, g.N(), g.M(), c)
	}
	return nil
}
