package planar

import "repro/internal/graph"

// IsOuterplanar reports whether g is outerplanar (drawable with every
// node on the outer face; equivalently {K4, K23}-minor free). Classic
// reduction: g is outerplanar iff g plus an apex vertex adjacent to every
// node is planar.
func IsOuterplanar(g *graph.Graph) bool {
	// Quick size bound: outerplanar graphs have at most 2n-3 edges.
	if g.N() >= 2 && g.M() > 2*g.N()-3 {
		return false
	}
	b := graph.NewBuilder(g.N() + 1)
	for _, e := range g.Edges() {
		b.AddEdge(int(e.U), int(e.V))
	}
	apex := g.N()
	for v := 0; v < g.N(); v++ {
		b.AddEdge(apex, v)
	}
	return IsPlanar(b.Build())
}

// OuterplanarDistanceLowerBound returns a certified lower bound on the
// number of edges whose removal makes g outerplanar, via the size bound
// m <= 2n-3.
func OuterplanarDistanceLowerBound(g *graph.Graph) int {
	if g.N() < 2 {
		return 0
	}
	d := g.M() - (2*g.N() - 3)
	if d < 0 {
		return 0
	}
	return d
}
