package planar

import (
	"sort"

	"repro/internal/graph"
)

// FallbackMode selects what EmbedOrFallback does on non-planar input.
// The paper's Stage II must handle the case where the promise-based
// embedding algorithm of Ghaffari–Haeupler "determines an ordering though
// G^j is not planar" (§2.2); these modes emulate that behaviour.
type FallbackMode int

const (
	// FallbackArbitrary returns the sorted-adjacency rotation system —
	// the cheapest "some ordering" a failed embedding could leave behind.
	FallbackArbitrary FallbackMode = iota + 1
	// FallbackMaxPlanarSubgraph greedily embeds a maximal planar subgraph
	// and splices the remaining edges into the rotations. This is the
	// adversarially hard case for Stage II: the ordering is planar except
	// for the few leftover edges.
	FallbackMaxPlanarSubgraph
)

// EmbedResult is the outcome of EmbedOrFallback.
type EmbedResult struct {
	Embedding *Embedding
	// Planar reports whether the input was planar (and hence Embedding is
	// a genuine planar embedding).
	Planar bool
	// SplicedEdges lists the edges that were inserted arbitrarily into the
	// rotation system by FallbackMaxPlanarSubgraph (nil otherwise).
	SplicedEdges []graph.Edge
}

// EmbedOrFallback computes a planar embedding of g when g is planar; for
// non-planar g it returns orderings per the chosen fallback mode, matching
// the paper's model of a promise-based embedding step that silently
// produces an ordering on non-planar input.
func EmbedOrFallback(g *graph.Graph, mode FallbackMode) *EmbedResult {
	if emb, err := Embed(g); err == nil {
		return &EmbedResult{Embedding: emb, Planar: true}
	}
	switch mode {
	case FallbackMaxPlanarSubgraph:
		kept, spliced := maxPlanarSubgraph(g)
		emb, err := Embed(kept)
		if err != nil {
			// Cannot happen: kept is planar by construction.
			panic("planar: maximal planar subgraph is not planar: " + err.Error())
		}
		full := spliceEdges(g, kept, emb, spliced)
		return &EmbedResult{Embedding: full, Planar: false, SplicedEdges: spliced}
	default:
		rot := make([][]int32, g.N())
		for v := range rot {
			rot[v] = append([]int32(nil), g.Neighbors(v)...)
		}
		return &EmbedResult{Embedding: NewEmbeddingFromRotations(rot), Planar: false}
	}
}

// maxPlanarSubgraph greedily selects a maximal planar subgraph of g:
// a spanning forest first (always planar), then each remaining edge if the
// running subgraph stays planar. Returns the subgraph and skipped edges.
func maxPlanarSubgraph(g *graph.Graph) (*graph.Graph, []graph.Edge) {
	// Spanning forest via BFS from every component.
	inForest := make(map[graph.Edge]bool)
	seen := make([]bool, g.N())
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		res := g.BFS(s)
		for _, v := range res.Order {
			seen[v] = true
			if res.Parent[v] >= 0 {
				inForest[graph.NormEdge(v, res.Parent[v])] = true
			}
		}
	}
	kept := make([]graph.Edge, 0, g.M())
	var rest []graph.Edge
	for _, e := range g.Edges() {
		if inForest[e] {
			kept = append(kept, e)
		} else {
			rest = append(rest, e)
		}
	}
	// Deterministic order for the greedy pass.
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].U != rest[j].U {
			return rest[i].U < rest[j].U
		}
		return rest[i].V < rest[j].V
	})
	var skipped []graph.Edge
	build := func(es []graph.Edge) *graph.Graph {
		b := graph.NewBuilder(g.N())
		for _, e := range es {
			b.AddEdge(int(e.U), int(e.V))
		}
		return b.Build()
	}
	cur := build(kept)
	for _, e := range rest {
		cand := cur.AddEdges([]graph.Edge{e})
		if IsPlanar(cand) {
			cur = cand
			kept = append(kept, e)
		} else {
			skipped = append(skipped, e)
		}
	}
	return cur, skipped
}

// spliceEdges inserts the skipped edges of the fallback into emb's
// rotations (after the current first neighbor), producing an ordering for
// all of g's edges. The result is generally NOT a planar embedding.
func spliceEdges(g *graph.Graph, kept *graph.Graph, emb *Embedding, spliced []graph.Edge) *Embedding {
	rot := make([][]int32, g.N())
	for v := range rot {
		rot[v] = emb.Rotation(v)
	}
	for _, e := range spliced {
		rot[e.U] = append(rot[e.U], e.V)
		rot[e.V] = append(rot[e.V], e.U)
	}
	return NewEmbeddingFromRotations(rot)
}
