package planar

import (
	"repro/internal/graph"
)

// BruteForcePlanar decides planarity by exhaustive search over rotation
// systems: a connected graph is planar iff some rotation system achieves
// the Euler face count. It is exponential and exists purely to
// cross-validate the left-right algorithm on tiny graphs in tests.
//
// The second return value is false when the search space exceeds maxWork
// rotation systems (use IsPlanar instead).
func BruteForcePlanar(g *graph.Graph, maxWork int64) (planar, ok bool) {
	// The search space is the product over nodes of (deg-1)!.
	work := int64(1)
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		for k := 2; k < d; k++ {
			work *= int64(k)
			if work > maxWork {
				return false, false
			}
		}
	}
	_, c := g.Components()
	isolated := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			isolated++
		}
	}
	wantFaces := 2*c - g.N() + g.M() - isolated

	// rotations[v] is a permutation of v's neighbors; the first neighbor
	// is pinned (rotations are circular) so we permute positions 1..d-1.
	rot := make([][]int32, g.N())
	for v := range rot {
		rot[v] = append([]int32(nil), g.Neighbors(v)...)
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N() {
			e := NewEmbeddingFromRotations(rot)
			return e.CountFaces() == wantFaces
		}
		if len(rot[v]) <= 2 {
			return rec(v + 1) // at most one circular order
		}
		// Heap-style permutation of rot[v][1:].
		var perm func(k int) bool
		perm = func(k int) bool {
			if k == len(rot[v]) {
				return rec(v + 1)
			}
			for i := k; i < len(rot[v]); i++ {
				rot[v][k], rot[v][i] = rot[v][i], rot[v][k]
				if perm(k + 1) {
					return true
				}
				rot[v][k], rot[v][i] = rot[v][i], rot[v][k]
			}
			return false
		}
		return perm(1)
	}
	return rec(0), true
}

// Genus returns the minimum genus over all rotation systems of a connected
// graph, by brute force (2 - n + m - f_max)/2. Only for tiny test graphs;
// the bool is false when the search exceeds maxWork.
func Genus(g *graph.Graph, maxWork int64) (int, bool) {
	work := int64(1)
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		for k := 2; k < d; k++ {
			work *= int64(k)
			if work > maxWork {
				return 0, false
			}
		}
	}
	rot := make([][]int32, g.N())
	for v := range rot {
		rot[v] = append([]int32(nil), g.Neighbors(v)...)
	}
	best := -1
	var rec func(v int)
	rec = func(v int) {
		if v == g.N() {
			if f := NewEmbeddingFromRotations(rot).CountFaces(); f > best {
				best = f
			}
			return
		}
		if len(rot[v]) <= 2 {
			rec(v + 1)
			return
		}
		var perm func(k int)
		perm = func(k int) {
			if k == len(rot[v]) {
				rec(v + 1)
				return
			}
			for i := k; i < len(rot[v]); i++ {
				rot[v][k], rot[v][i] = rot[v][i], rot[v][k]
				perm(k + 1)
				rot[v][k], rot[v][i] = rot[v][i], rot[v][k]
			}
		}
		perm(1)
	}
	rec(0)
	genus := (2 - g.N() + g.M() - best) / 2
	return genus, true
}
