package planar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	return b.Build()
}

func TestKnownPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K1", graph.Complete(1)},
		{"K2", graph.Complete(2)},
		{"K3", graph.Complete(3)},
		{"K4", graph.Complete(4)},
		{"path", graph.Path(20)},
		{"cycle", graph.Cycle(20)},
		{"star", graph.Star(20)},
		{"tree", graph.RandomTree(50, rng)},
		{"grid", graph.Grid(6, 7)},
		{"maxplanar", graph.MaximalPlanar(60, rng)},
		{"outerplanar", graph.Outerplanar(40, rng)},
		{"randomplanar", graph.RandomPlanar(50, 100, rng)},
		{"K5 minus edge", graph.Complete(5).RemoveEdges([]graph.Edge{graph.NormEdge(0, 1)})},
		{"K33 minus edge", graph.CompleteBipartite(3, 3).RemoveEdges([]graph.Edge{graph.NormEdge(0, 3)})},
		{"K23", graph.CompleteBipartite(2, 3)},
		{"disconnected", graph.DisjointUnion(graph.Cycle(5), graph.Grid(3, 3), graph.Complete(4))},
	}
	for _, c := range cases {
		if !IsPlanar(c.g) {
			t.Errorf("%s: IsPlanar = false, want true", c.name)
			continue
		}
		emb, err := Embed(c.g)
		if err != nil {
			t.Errorf("%s: Embed failed: %v", c.name, err)
			continue
		}
		if err := emb.Validate(c.g); err != nil {
			t.Errorf("%s: invalid embedding: %v", c.name, err)
		}
	}
}

// Degenerate inputs the corpus will hit: the empty graph, single nodes,
// isolated nodes mixed into components, and edgeless graphs. IsPlanar
// and Embed must handle all of them without special-casing by callers.
func TestDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"n=0", graph.NewBuilder(0).Build()},
		{"n=1", graph.NewBuilder(1).Build()},
		{"n=2 no edges", graph.NewBuilder(2).Build()},
		{"edgeless n=10", graph.NewBuilder(10).Build()},
		{"single edge", graph.Path(2)},
		{"edge plus isolated", graph.DisjointUnion(graph.Path(2), graph.NewBuilder(3).Build())},
	}
	for _, c := range cases {
		if !IsPlanar(c.g) {
			t.Errorf("%s: IsPlanar = false, want true", c.name)
			continue
		}
		emb, err := Embed(c.g)
		if err != nil {
			t.Errorf("%s: Embed failed: %v", c.name, err)
			continue
		}
		if err := emb.Validate(c.g); err != nil {
			t.Errorf("%s: invalid embedding: %v", c.name, err)
		}
	}
}

// Table mirroring the networkx planarity test-suite family list
// (SNIPPETS Snippet 1): named generator instances with known verdicts.
func TestSnippetFamilyTable(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		planar bool
	}{
		{"balanced tree 3,4", graph.BalancedTree(3, 4), true},
		{"barbell 4,4", graph.Barbell(4, 4), true},
		{"barbell 5,2", graph.Barbell(5, 2), false},
		{"barbell 55,11", graph.Barbell(55, 11), false},
		{"circular ladder 8", graph.CircularLadder(8), true},
		{"cycle 17", graph.Cycle(17), true},
		{"empty 10", graph.NewBuilder(10).Build(), true},
		{"ladder 12", graph.Ladder(12), true},
		{"lollipop 5,3", graph.Lollipop(5, 3), false},
		{"lollipop 4,33", graph.Lollipop(4, 33), true},
		{"null", graph.NewBuilder(0).Build(), true},
		{"path 30", graph.Path(30), true},
		{"star 25", graph.Star(25), true},
		{"trivial", graph.NewBuilder(1).Build(), true},
		{"K33 subdivision 30", graph.K33Subdivision(30), false},
	}
	for _, c := range cases {
		if got := IsPlanar(c.g); got != c.planar {
			t.Errorf("%s: IsPlanar = %v, want %v", c.name, got, c.planar)
		}
		_, err := Embed(c.g)
		if c.planar && err != nil {
			t.Errorf("%s: Embed failed on a planar graph: %v", c.name, err)
		}
		if !c.planar && err == nil {
			t.Errorf("%s: Embed succeeded on a non-planar graph", c.name)
		}
	}
}

func TestKnownNonPlanar(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K5", graph.Complete(5)},
		{"K6", graph.Complete(6)},
		{"K33", graph.CompleteBipartite(3, 3)},
		{"K34", graph.CompleteBipartite(3, 4)},
		{"petersen", petersen()},
		{"K5 plus isolated", graph.DisjointUnion(graph.Complete(5), graph.Path(1))},
		{"planar plus K5", graph.DisjointUnion(graph.Grid(4, 4), graph.Complete(5))},
	}
	for _, c := range cases {
		if IsPlanar(c.g) {
			t.Errorf("%s: IsPlanar = true, want false", c.name)
		}
		if _, err := Embed(c.g); err == nil {
			t.Errorf("%s: Embed succeeded, want ErrNotPlanar", c.name)
		}
	}
}

// Subdivisions of K5 and K33 must stay non-planar; this exercises deeper
// DFS structure than the bare Kuratowski graphs.
func TestSubdividedKuratowski(t *testing.T) {
	subdivide := func(g *graph.Graph, times int, rng *rand.Rand) *graph.Graph {
		for k := 0; k < times; k++ {
			es := g.Edges()
			e := es[rng.Intn(len(es))]
			n := g.N()
			b := graph.NewBuilder(n + 1)
			for _, f := range g.Edges() {
				if f != e {
					b.AddEdge(int(f.U), int(f.V))
				}
			}
			b.AddEdge(int(e.U), n)
			b.AddEdge(n, int(e.V))
			g = b.Build()
		}
		return g
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := subdivide(graph.Complete(5), 1+rng.Intn(15), rng)
		if IsPlanar(g) {
			t.Fatalf("subdivided K5 reported planar (trial %d)", trial)
		}
		h := subdivide(graph.CompleteBipartite(3, 3), 1+rng.Intn(15), rng)
		if IsPlanar(h) {
			t.Fatalf("subdivided K33 reported planar (trial %d)", trial)
		}
	}
}

// Property: the LR test agrees with brute-force search over rotation
// systems on small random graphs.
func TestLRAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	maxWork := int64(60_000)
	trials := 400
	if testing.Short() {
		maxWork, trials = 5_000, 100
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(5) // 3..7 nodes
		p := 0.2 + 0.6*rng.Float64()
		g := graph.GNP(n, p, rng)
		want, ok := BruteForcePlanar(g, maxWork)
		if !ok {
			continue
		}
		checked++
		if got := IsPlanar(g); got != want {
			t.Fatalf("disagreement on n=%d m=%d (trial %d): LR=%v brute=%v\nedges: %v",
				g.N(), g.M(), trial, got, want, g.Edges())
		}
	}
	if checked < trials/3 {
		t.Fatalf("only %d graphs were brute-force checkable", checked)
	}
}

func TestGenusOfKuratowskiGraphs(t *testing.T) {
	if g, ok := Genus(graph.Complete(5), 5_000_000); !ok || g != 1 {
		t.Fatalf("genus(K5) = %d (ok=%v), want 1", g, ok)
	}
	if g, ok := Genus(graph.CompleteBipartite(3, 3), 5_000_000); !ok || g != 1 {
		t.Fatalf("genus(K33) = %d (ok=%v), want 1", g, ok)
	}
	if g, ok := Genus(graph.Complete(4), 5_000_000); !ok || g != 0 {
		t.Fatalf("genus(K4) = %d (ok=%v), want 0", g, ok)
	}
}

// Property: every embedding returned by Embed on random planar graphs
// passes full validation (rotations correct + Euler face count).
func TestEmbedValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		m := n - 1 + rng.Intn(2*n-5)
		if m > 3*n-6 {
			m = 3*n - 6
		}
		g := graph.RandomPlanar(n, m, rng)
		emb, err := Embed(g)
		if err != nil {
			return false
		}
		return emb.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: deleting one edge from a planar-plus-few-extras graph never
// turns a planar graph non-planar (monotonicity sanity for the tester).
func TestPlanarityMonotoneUnderDeletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomPlanar(30, 60, rng)
		es := g.Edges()
		h := g.RemoveEdges([]graph.Edge{es[rng.Intn(len(es))]})
		return IsPlanar(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbeddingRotationStructure(t *testing.T) {
	g := graph.Grid(4, 4)
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		rot := emb.Rotation(v)
		if len(rot) != g.Degree(v) {
			t.Fatalf("rotation size at %d: %d, want %d", v, len(rot), g.Degree(v))
		}
		// cw and ccw must be inverse permutations.
		for _, w := range rot {
			if emb.CCWNext(int32(v), emb.CWNext(int32(v), w)) != w {
				t.Fatalf("cw/ccw inconsistent at %d", v)
			}
		}
	}
}

func TestCountFacesOnKnownEmbeddings(t *testing.T) {
	// Triangle: 2 faces.
	tri := NewEmbeddingFromRotations([][]int32{{1, 2}, {0, 2}, {0, 1}})
	if f := tri.CountFaces(); f != 2 {
		t.Fatalf("triangle faces = %d, want 2", f)
	}
	// Single edge: 1 face.
	e := NewEmbeddingFromRotations([][]int32{{1}, {0}})
	if f := e.CountFaces(); f != 1 {
		t.Fatalf("edge faces = %d, want 1", f)
	}
	// K4 planar embedding: 4 faces.
	g := graph.Complete(4)
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if f := emb.CountFaces(); f != 4 {
		t.Fatalf("K4 faces = %d, want 4", f)
	}
}

func TestFaceOf(t *testing.T) {
	g := graph.Cycle(5)
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	face := emb.FaceOf(0, 1)
	if len(face) != 5 {
		t.Fatalf("cycle face length %d, want 5", len(face))
	}
}

func TestEmbedOrFallbackPlanar(t *testing.T) {
	g := graph.Grid(5, 5)
	res := EmbedOrFallback(g, FallbackArbitrary)
	if !res.Planar {
		t.Fatal("grid must be planar")
	}
	if err := res.Embedding.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedOrFallbackNonPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := graph.PlanarPlusRandomEdges(30, 15, rng)
	if IsPlanar(g) {
		t.Skip("unlucky: graph turned out planar")
	}
	for _, mode := range []FallbackMode{FallbackArbitrary, FallbackMaxPlanarSubgraph} {
		res := EmbedOrFallback(g, mode)
		if res.Planar {
			t.Fatalf("mode %d: non-planar input reported planar", mode)
		}
		// The returned ordering must still cover every edge at every node.
		for v := 0; v < g.N(); v++ {
			if res.Embedding.Degree(v) != g.Degree(v) {
				t.Fatalf("mode %d: node %d has %d half-edges, degree %d",
					mode, v, res.Embedding.Degree(v), g.Degree(v))
			}
		}
		if mode == FallbackMaxPlanarSubgraph && len(res.SplicedEdges) == 0 {
			t.Fatal("max-planar-subgraph fallback must report spliced edges")
		}
	}
}

func TestMaxPlanarSubgraphIsMaximalAndPlanar(t *testing.T) {
	g := graph.Complete(6)
	kept, skipped := maxPlanarSubgraph(g)
	if !IsPlanar(kept) {
		t.Fatal("kept subgraph must be planar")
	}
	if kept.M()+len(skipped) != g.M() {
		t.Fatalf("edge accounting: %d + %d != %d", kept.M(), len(skipped), g.M())
	}
	// Maximality: adding any skipped edge back breaks planarity.
	for _, e := range skipped {
		if IsPlanar(kept.AddEdges([]graph.Edge{e})) {
			t.Fatalf("adding skipped edge %v keeps planarity; subgraph not maximal", e)
		}
	}
	// K6 has 15 edges; max planar subgraph has 3*6-6=12.
	if kept.M() != 12 {
		t.Fatalf("K6 max planar subgraph has %d edges, want 12", kept.M())
	}
}

func TestEulerQuickReject(t *testing.T) {
	// A graph with m > 3n-6 must be rejected without deep work.
	rng := rand.New(rand.NewSource(5))
	g, _ := graph.PlanarPlusRandomEdges(100, 50, rng)
	if IsPlanar(g) {
		t.Fatal("m > 3n-6 graph reported planar")
	}
}

func TestLargePlanarEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.MaximalPlanar(3000, rng)
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIsPlanarMaximalPlanar2000(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := graph.MaximalPlanar(2000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IsPlanar(g) {
			b.Fatal("must be planar")
		}
	}
}

func BenchmarkEmbedGrid50x50(b *testing.B) {
	g := graph.Grid(50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(g); err != nil {
			b.Fatal(err)
		}
	}
}
