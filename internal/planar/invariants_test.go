package planar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// TestFaceLengthSum: the face boundary lengths of any embedding sum to
// the number of half-edges (2m).
func TestFaceLengthSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		m := n - 1 + rng.Intn(2*n-5)
		if m > 3*n-6 {
			m = 3*n - 6
		}
		g := graph.RandomPlanar(n, m, rng)
		emb, err := Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		seen := make(map[[2]int32]bool)
		for v := 0; v < g.N(); v++ {
			for _, w := range emb.Rotation(v) {
				he := [2]int32{int32(v), w}
				if seen[he] {
					continue
				}
				face := emb.FaceOf(int32(v), w)
				total += len(face)
				cv, cw := int32(v), w
				for !seen[[2]int32{cv, cw}] {
					seen[[2]int32{cv, cw}] = true
					cv, cw = cw, emb.CCWNext(cw, cv)
				}
			}
		}
		if total != 2*g.M() {
			t.Fatalf("face length sum %d, want %d", total, 2*g.M())
		}
	}
}

// TestMirrorEmbeddingIsValid: reversing every rotation yields another
// valid planar embedding (orientation reversal).
func TestMirrorEmbeddingIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := graph.MaximalPlanar(10+rng.Intn(40), rng)
		emb, err := Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		rot := make([][]int32, g.N())
		for v := 0; v < g.N(); v++ {
			r := emb.Rotation(v)
			for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
				r[i], r[j] = r[j], r[i]
			}
			rot[v] = r
		}
		mirror := NewEmbeddingFromRotations(rot)
		if err := mirror.Validate(g); err != nil {
			t.Fatalf("mirror embedding invalid: %v", err)
		}
	}
}

// TestTriangulatedGridPlanar: the denser planar family embeds and
// validates.
func TestTriangulatedGridPlanar(t *testing.T) {
	g := graph.TriangulatedGrid(8, 9)
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.IsBipartite() {
		t.Fatal("triangulated grid must contain triangles")
	}
}

// Property: a random subgraph of a planar graph is planar (minor-closed
// under edge deletion) and the LR test agrees.
func TestPlanarityClosedUnderSubgraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.MaximalPlanar(30, rng)
		var drop []graph.Edge
		for _, e := range g.Edges() {
			if rng.Intn(3) == 0 {
				drop = append(drop, e)
			}
		}
		return IsPlanar(g.RemoveEdges(drop))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: contracting an edge of a planar graph keeps it planar
// (planarity is minor-closed); exercised via the Weighted contraction
// plus rebuild.
func TestPlanarityClosedUnderContraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.MaximalPlanar(20, rng)
		es := g.Edges()
		e := es[rng.Intn(len(es))]
		// Contract e.V into e.U.
		b := graph.NewBuilder(g.N())
		for _, f := range g.Edges() {
			u, v := int(f.U), int(f.V)
			if u == int(e.V) {
				u = int(e.U)
			}
			if v == int(e.V) {
				v = int(e.U)
			}
			b.AddEdge(u, v)
		}
		return IsPlanar(b.Build())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
