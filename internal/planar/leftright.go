package planar

import (
	"errors"
	"sort"

	"repro/internal/graph"
)

// ErrNotPlanar is returned by Embed when the input graph is not planar.
var ErrNotPlanar = errors.New("planar: graph is not planar")

// IsPlanar reports whether g is planar, using the left-right algorithm.
func IsPlanar(g *graph.Graph) bool {
	st := newLRState(g)
	return st.run()
}

// Embed returns a combinatorial planar embedding of g, or ErrNotPlanar.
func Embed(g *graph.Graph) (*Embedding, error) {
	st := newLRState(g)
	if !st.run() {
		return nil, ErrNotPlanar
	}
	return st.embed(), nil
}

// dedge is a directed edge key.
type dedge struct{ u, v int32 }

func (e dedge) reversed() dedge { return dedge{e.v, e.u} }

// interval is a range of back edges on one side of a conflict pair,
// identified by its extremal edges. The zero interval is empty.
type interval struct {
	low, high dedge
	lowSet    bool
	highSet   bool
}

func (i interval) empty() bool { return !i.lowSet && !i.highSet }

// conflictPair groups the return edges of a subtree into a left and a
// right interval.
type conflictPair struct {
	l, r interval
}

func (p *conflictPair) swap() { p.l, p.r = p.r, p.l }

const noHeight = -1

// lrState carries the per-run state of the left-right algorithm.
type lrState struct {
	g     *graph.Graph
	roots []int32

	height     []int
	parentEdge []dedge
	hasParent  []bool

	// Per directed (oriented) edge attributes.
	lowpt, lowpt2, nesting map[dedge]int
	orientedAdj            [][]int32 // outgoing neighbors after orientation
	orderedAdj             [][]int32 // outgoing neighbors sorted by nesting depth

	ref  map[dedge]dedge
	side map[dedge]int

	s           []*conflictPair
	stackBottom map[dedge]*conflictPair
	lowptEdge   map[dedge]dedge
}

func newLRState(g *graph.Graph) *lrState {
	n := g.N()
	st := &lrState{
		g:           g,
		height:      make([]int, n),
		parentEdge:  make([]dedge, n),
		hasParent:   make([]bool, n),
		lowpt:       make(map[dedge]int, g.M()),
		lowpt2:      make(map[dedge]int, g.M()),
		nesting:     make(map[dedge]int, g.M()),
		orientedAdj: make([][]int32, n),
		orderedAdj:  make([][]int32, n),
		ref:         make(map[dedge]dedge),
		side:        make(map[dedge]int, g.M()),
		stackBottom: make(map[dedge]*conflictPair),
		lowptEdge:   make(map[dedge]dedge),
	}
	for v := range st.height {
		st.height[v] = noHeight
	}
	return st
}

// run executes orientation plus the testing phase; it reports planarity.
func (st *lrState) run() bool {
	// Quick Euler-formula rejection.
	if st.g.N() >= 3 && st.g.M() > 3*st.g.N()-6 {
		return false
	}
	// Phase 1: orientation (iterative DFS).
	for v := 0; v < st.g.N(); v++ {
		if st.height[v] == noHeight {
			st.height[v] = 0
			st.roots = append(st.roots, int32(v))
			st.dfsOrientation(int32(v))
		}
	}
	// Sort adjacency lists by nesting depth (ties by neighbor id for
	// determinism).
	for v := 0; v < st.g.N(); v++ {
		adj := st.orientedAdj[v]
		sort.SliceStable(adj, func(i, j int) bool {
			di := st.nesting[dedge{int32(v), adj[i]}]
			dj := st.nesting[dedge{int32(v), adj[j]}]
			if di != dj {
				return di < dj
			}
			return adj[i] < adj[j]
		})
		st.orderedAdj[v] = adj
	}
	// Phase 2: testing.
	for _, r := range st.roots {
		if !st.dfsTesting(r) {
			return false
		}
	}
	return true
}

// dfsOrientation orients edges from v, computing lowpt/lowpt2/nesting.
func (st *lrState) dfsOrientation(root int32) {
	type frame struct {
		v   int32
		idx int
	}
	oriented := make(map[dedge]bool)
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		nbrs := st.g.Neighbors(int(v))
		if f.idx >= len(nbrs) {
			stack = stack[:len(stack)-1]
			// Propagate this tree edge's lowpts into its parent edge,
			// which was deferred until the subtree finished.
			if st.hasParent[v] {
				vw := st.parentEdge[v]
				st.finishEdge(vw)
			}
			continue
		}
		w := nbrs[f.idx]
		f.idx++
		vw := dedge{v, w}
		if oriented[vw] || oriented[vw.reversed()] {
			continue
		}
		oriented[vw] = true
		st.orientedAdj[v] = append(st.orientedAdj[v], w)
		st.lowpt[vw] = st.height[v]
		st.lowpt2[vw] = st.height[v]
		if st.height[w] == noHeight { // tree edge
			st.parentEdge[w] = vw
			st.hasParent[w] = true
			st.height[w] = st.height[v] + 1
			stack = append(stack, frame{w, 0})
			// finishEdge(vw) runs when w's frame pops.
		} else { // back edge
			st.lowpt[vw] = st.height[w]
			st.finishEdge(vw)
		}
	}
}

// finishEdge computes nesting depth of vw and folds its lowpts into the
// parent edge of its source.
func (st *lrState) finishEdge(vw dedge) {
	v := vw.u
	st.nesting[vw] = 2 * st.lowpt[vw]
	if st.lowpt2[vw] < st.height[v] { // chordal: needs the +1 penalty
		st.nesting[vw]++
	}
	if !st.hasParent[v] {
		return
	}
	e := st.parentEdge[v]
	if st.lowpt[vw] < st.lowpt[e] {
		st.lowpt2[e] = min(st.lowpt[e], st.lowpt2[vw])
		st.lowpt[e] = st.lowpt[vw]
	} else if st.lowpt[vw] > st.lowpt[e] {
		st.lowpt2[e] = min(st.lowpt2[e], st.lowpt[vw])
	} else {
		st.lowpt2[e] = min(st.lowpt2[e], st.lowpt2[vw])
	}
}

func (st *lrState) top() *conflictPair {
	if len(st.s) == 0 {
		return nil
	}
	return st.s[len(st.s)-1]
}

func (st *lrState) pop() *conflictPair {
	p := st.s[len(st.s)-1]
	st.s = st.s[:len(st.s)-1]
	return p
}

// lowest returns the lowest lowpoint of a conflict pair.
func (st *lrState) lowest(p *conflictPair) int {
	if p.l.empty() && p.r.empty() {
		panic("planar: empty conflict pair on stack")
	}
	if p.l.empty() {
		return st.lowpt[p.r.low]
	}
	if p.r.empty() {
		return st.lowpt[p.l.low]
	}
	return min(st.lowpt[p.l.low], st.lowpt[p.r.low])
}

// conflicting reports whether interval i conflicts with edge b.
func (st *lrState) conflicting(i interval, b dedge) bool {
	return !i.empty() && st.lowpt[i.high] > st.lowpt[b]
}

// dfsTesting is the testing phase; false means non-planar.
func (st *lrState) dfsTesting(root int32) bool {
	type frame struct {
		v   int32
		idx int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		adj := st.orderedAdj[v]
		if f.idx < len(adj) {
			w := adj[f.idx]
			f.idx++
			ei := dedge{v, w}
			st.stackBottom[ei] = st.top()
			if st.hasParent[w] && st.parentEdge[w] == ei { // tree edge
				stack = append(stack, frame{w, 0})
				continue // the post-processing for ei happens on pop of w
			}
			// back edge
			st.lowptEdge[ei] = ei
			st.s = append(st.s, &conflictPair{r: interval{low: ei, high: ei, lowSet: true, highSet: true}})
			if !st.integrateNewReturnEdges(v, ei) {
				return false
			}
			continue
		}
		// All children processed: run the tail for v, then pop.
		stack = stack[:len(stack)-1]
		if st.hasParent[v] {
			e := st.parentEdge[v]
			u := e.u
			st.removeBackEdges(e, u)
			// After returning into u's frame, integrate e's constraints
			// there (this mirrors the recursive structure: the recursive
			// call to dfs_testing(w) is followed by the lowpt check).
			if !st.integrateNewReturnEdges(u, e) {
				return false
			}
		}
	}
	return true
}

// integrateNewReturnEdges performs the "if lowpt[ei] < height[v]" block of
// dfs_testing for edge ei out of v.
func (st *lrState) integrateNewReturnEdges(v int32, ei dedge) bool {
	if st.lowpt[ei] >= st.height[v] { // ei has no return edge
		return true
	}
	first := dedge{v, st.orderedAdj[v][0]}
	if ei == first {
		if st.hasParent[v] {
			st.lowptEdge[st.parentEdge[v]] = st.lowptEdge[ei]
		}
		return true
	}
	if !st.hasParent[v] {
		// A root has no parent edge to constrain; nothing to do.
		return true
	}
	return st.addConstraints(ei, st.parentEdge[v])
}

// addConstraints merges the conflict pairs of ei with those of earlier
// siblings, failing when a left and a right constraint collide.
func (st *lrState) addConstraints(ei, e dedge) bool {
	p := &conflictPair{}
	// Merge return edges of ei into p.r.
	for {
		q := st.pop()
		if !q.l.empty() {
			q.swap()
		}
		if !q.l.empty() {
			return false // not planar
		}
		if st.lowpt[q.r.low] > st.lowpt[e] {
			// Merge intervals.
			if p.r.empty() {
				p.r.high = q.r.high
				p.r.highSet = true
			} else {
				st.ref[p.r.low] = q.r.high
			}
			p.r.low = q.r.low
			p.r.lowSet = true
		} else {
			// Align.
			st.ref[q.r.low] = st.lowptEdge[e]
		}
		if st.top() == st.stackBottom[ei] {
			break
		}
	}
	// Merge conflicting return edges of previous siblings into p.l.
	for st.conflicting(st.top().l, ei) || st.conflicting(st.top().r, ei) {
		q := st.pop()
		if st.conflicting(q.r, ei) {
			q.swap()
		}
		if st.conflicting(q.r, ei) {
			return false // not planar
		}
		// Merge interval below lowpt(ei) into p.r.
		if p.r.lowSet {
			if q.r.highSet {
				st.ref[p.r.low] = q.r.high
			} else {
				delete(st.ref, p.r.low)
			}
		}
		if q.r.lowSet {
			p.r.low = q.r.low
			p.r.lowSet = true
		}
		if p.l.empty() {
			p.l.high = q.l.high
			p.l.highSet = true
		} else {
			st.ref[p.l.low] = q.l.high
		}
		p.l.low = q.l.low
		p.l.lowSet = true
	}
	if !(p.l.empty() && p.r.empty()) {
		st.s = append(st.s, p)
	}
	return true
}

// removeBackEdges trims back edges ending at the parent u when the DFS
// returns over tree edge e = (u, v).
func (st *lrState) removeBackEdges(e dedge, u int32) {
	// Drop entire conflict pairs.
	for len(st.s) > 0 && st.lowest(st.top()) == st.height[u] {
		p := st.pop()
		if p.l.lowSet {
			st.side[p.l.low] = -1
		}
	}
	// One more conflict pair may need partial trimming.
	if len(st.s) > 0 {
		p := st.pop()
		// Trim left interval.
		for p.l.highSet && p.l.high.v == u {
			if r, ok := st.ref[p.l.high]; ok {
				p.l.high = r
			} else {
				p.l.highSet = false
			}
		}
		if !p.l.highSet && p.l.lowSet {
			if p.r.lowSet {
				st.ref[p.l.low] = p.r.low
			} else {
				delete(st.ref, p.l.low)
			}
			st.side[p.l.low] = -1
			p.l.lowSet = false
		}
		// Trim right interval.
		for p.r.highSet && p.r.high.v == u {
			if r, ok := st.ref[p.r.high]; ok {
				p.r.high = r
			} else {
				p.r.highSet = false
			}
		}
		if !p.r.highSet && p.r.lowSet {
			if p.l.lowSet {
				st.ref[p.r.low] = p.l.low
			} else {
				delete(st.ref, p.r.low)
			}
			st.side[p.r.low] = -1
			p.r.lowSet = false
		}
		st.s = append(st.s, p)
	}
	// Choose the reference edge for e among the highest return edges.
	if st.lowpt[e] < st.height[u] { // e has a return edge
		t := st.top()
		var hl, hr dedge
		hlSet, hrSet := false, false
		if t != nil {
			hl, hlSet = t.l.high, t.l.highSet
			hr, hrSet = t.r.high, t.r.highSet
		}
		if hlSet && (!hrSet || st.lowpt[hl] > st.lowpt[hr]) {
			st.ref[e] = hl
		} else if hrSet {
			st.ref[e] = hr
		}
	}
}

// sign resolves the side of edge e through its reference chain.
func (st *lrState) sign(e dedge) int {
	// Iterative resolution with path collapsing.
	var chain []dedge
	cur := e
	for {
		if _, ok := st.side[cur]; !ok {
			st.side[cur] = 1
		}
		r, ok := st.ref[cur]
		if !ok {
			break
		}
		chain = append(chain, cur)
		cur = r
	}
	s := st.side[cur]
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		st.side[c] *= s
		s = st.side[c]
		delete(st.ref, c)
	}
	return s
}

// embed runs the embedding phase. Must be called only after run() returned
// true.
func (st *lrState) embed() *Embedding {
	n := st.g.N()
	// Apply signs to nesting depths and re-sort adjacency lists.
	for v := 0; v < n; v++ {
		for _, w := range st.orientedAdj[v] {
			e := dedge{int32(v), w}
			st.nesting[e] *= st.sign(e)
		}
	}
	for v := 0; v < n; v++ {
		adj := st.orderedAdj[v]
		sort.SliceStable(adj, func(i, j int) bool {
			di := st.nesting[dedge{int32(v), adj[i]}]
			dj := st.nesting[dedge{int32(v), adj[j]}]
			if di != dj {
				return di < dj
			}
			return adj[i] < adj[j]
		})
	}
	emb := NewEmbedding(n)
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range st.orderedAdj[v] {
			emb.AddHalfEdgeCW(int32(v), w, prev)
			prev = w
		}
	}
	leftRef := make([]int32, n)
	rightRef := make([]int32, n)
	for i := range leftRef {
		leftRef[i] = -1
		rightRef[i] = -1
	}
	type frame struct {
		v   int32
		idx int
	}
	for _, root := range st.roots {
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			adj := st.orderedAdj[v]
			if f.idx >= len(adj) {
				stack = stack[:len(stack)-1]
				continue
			}
			w := adj[f.idx]
			f.idx++
			ei := dedge{v, w}
			if st.hasParent[w] && st.parentEdge[w] == ei { // tree edge
				emb.AddHalfEdgeFirst(w, v)
				leftRef[v] = w
				rightRef[v] = w
				stack = append(stack, frame{w, 0})
			} else { // back edge
				if st.side[ei] == 1 {
					emb.AddHalfEdgeCW(w, v, rightRef[w])
				} else {
					emb.AddHalfEdgeCCW(w, v, leftRef[w])
					leftRef[w] = v
				}
			}
		}
	}
	return emb
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
