package planar

import (
	"errors"
	"sort"

	"repro/internal/graph"
)

// ErrNotPlanar is returned by Embed when the input graph is not planar.
var ErrNotPlanar = errors.New("planar: graph is not planar")

// IsPlanar reports whether g is planar, using the left-right algorithm.
func IsPlanar(g *graph.Graph) bool {
	st := newLRState(g)
	return st.run()
}

// Embed returns a combinatorial planar embedding of g, or ErrNotPlanar.
func Embed(g *graph.Graph) (*Embedding, error) {
	st := newLRState(g)
	if !st.run() {
		return nil, ErrNotPlanar
	}
	return st.embed(), nil
}

// Orientation assigns every undirected edge a unique direction, so the
// per-directed-edge attributes of the algorithm are dense over exactly
// M arcs and live in flat slabs indexed by arc id. Ids start at 1;
// id 0 is a reserved sentinel whose attributes (lowpt 0, target 0, no
// ref, unresolved side) reproduce what a lookup of a zero-valued edge
// key would have produced, so interval endpoints can be copied
// field-for-field without special cases.

// interval is a range of back edges on one side of a conflict pair,
// identified by its extremal arcs. The zero interval is empty.
type interval struct {
	low, high int32
	lowSet    bool
	highSet   bool
}

func (i interval) empty() bool { return !i.lowSet && !i.highSet }

// conflictPair groups the return edges of a subtree into a left and a
// right interval.
type conflictPair struct {
	l, r interval
}

func (p *conflictPair) swap() { p.l, p.r = p.r, p.l }

const noHeight = -1

// lrState carries the per-run state of the left-right algorithm.
type lrState struct {
	g     *graph.Graph
	roots []int32

	height     []int32
	parentArc  []int32 // arc id of the tree arc into v; -1 at roots
	parentNode []int32 // DFS parent of v; -1 at roots

	// Arc-indexed attribute slabs (index 0 is the sentinel).
	arcFrom     []int32
	arcTo       []int32
	lowpt       []int32
	lowpt2      []int32
	nesting     []int32
	ref         []int32 // next arc in the reference chain; -1 = none
	side        []int8  // 0 = unresolved (sign treats it as +1)
	lowptEdge   []int32
	stackBottom []int32 // conflict-stack height when the arc was reached

	orientedAdj [][]int32 // outgoing neighbors after orientation
	orientedArc [][]int32 // arc ids aligned with orientedAdj

	s     []conflictPair
	narcs int32
}

func newLRState(g *graph.Graph) *lrState {
	n, m := g.N(), g.M()
	st := &lrState{
		g:           g,
		height:      make([]int32, n),
		parentArc:   make([]int32, n),
		parentNode:  make([]int32, n),
		arcFrom:     make([]int32, m+1),
		arcTo:       make([]int32, m+1),
		lowpt:       make([]int32, m+1),
		lowpt2:      make([]int32, m+1),
		nesting:     make([]int32, m+1),
		ref:         make([]int32, m+1),
		side:        make([]int8, m+1),
		lowptEdge:   make([]int32, m+1),
		stackBottom: make([]int32, m+1),
		orientedAdj: make([][]int32, n),
		orientedArc: make([][]int32, n),
		narcs:       1, // 0 is the sentinel
	}
	for v := range st.height {
		st.height[v] = noHeight
		st.parentArc[v] = -1
		st.parentNode[v] = -1
	}
	for a := range st.ref {
		st.ref[a] = -1
	}
	// Carve per-vertex adjacency capacity out of two shared backings:
	// a vertex orients at most deg(v) arcs.
	adjBack := make([]int32, 2*m)
	arcBack := make([]int32, 2*m)
	off := 0
	for v := 0; v < n; v++ {
		d := len(g.Neighbors(v))
		st.orientedAdj[v] = adjBack[off : off : off+d]
		st.orientedArc[v] = arcBack[off : off : off+d]
		off += d
	}
	return st
}

// run executes orientation plus the testing phase; it reports planarity.
func (st *lrState) run() bool {
	// Quick Euler-formula rejection.
	if st.g.N() >= 3 && st.g.M() > 3*st.g.N()-6 {
		return false
	}
	// Phase 1: orientation (iterative DFS).
	for v := 0; v < st.g.N(); v++ {
		if st.height[v] == noHeight {
			st.height[v] = 0
			st.roots = append(st.roots, int32(v))
			st.dfsOrientation(int32(v))
		}
	}
	// Sort adjacency lists by nesting depth (ties by neighbor id for
	// determinism).
	ord := arcOrder{nesting: st.nesting}
	for v := 0; v < st.g.N(); v++ {
		ord.ws, ord.arcs = st.orientedAdj[v], st.orientedArc[v]
		sort.Stable(&ord)
	}
	// Phase 2: testing.
	for _, r := range st.roots {
		if !st.dfsTesting(r) {
			return false
		}
	}
	return true
}

// arcOrder stably sorts a vertex's oriented adjacency list and the
// aligned arc ids by nesting depth, ties by neighbor id.
type arcOrder struct {
	ws, arcs []int32
	nesting  []int32
}

func (o *arcOrder) Len() int { return len(o.ws) }

func (o *arcOrder) Less(i, j int) bool {
	di, dj := o.nesting[o.arcs[i]], o.nesting[o.arcs[j]]
	if di != dj {
		return di < dj
	}
	return o.ws[i] < o.ws[j]
}

func (o *arcOrder) Swap(i, j int) {
	o.ws[i], o.ws[j] = o.ws[j], o.ws[i]
	o.arcs[i], o.arcs[j] = o.arcs[j], o.arcs[i]
}

// dfsOrientation orients edges from v, computing lowpt/lowpt2/nesting.
func (st *lrState) dfsOrientation(root int32) {
	type frame struct {
		v   int32
		idx int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		nbrs := st.g.Neighbors(int(v))
		if f.idx >= len(nbrs) {
			stack = stack[:len(stack)-1]
			// Propagate this tree arc's lowpts into its parent arc,
			// which was deferred until the subtree finished.
			if a := st.parentArc[v]; a >= 0 {
				st.finishArc(a)
			}
			continue
		}
		w := nbrs[f.idx]
		f.idx++
		// An edge is oriented by the endpoint that examines it first.
		// Two "already oriented" cases: the tree arc into v, and edges
		// claimed by a deeper endpoint (a descendant's scan always
		// completes before v's resumes, so its edges are oriented).
		if w == st.parentNode[v] || (st.height[w] != noHeight && st.height[w] > st.height[v]) {
			continue
		}
		a := st.narcs
		st.narcs++
		st.arcFrom[a] = v
		st.arcTo[a] = w
		st.orientedAdj[v] = append(st.orientedAdj[v], w)
		st.orientedArc[v] = append(st.orientedArc[v], a)
		st.lowpt[a] = st.height[v]
		st.lowpt2[a] = st.height[v]
		if st.height[w] == noHeight { // tree arc
			st.parentArc[w] = a
			st.parentNode[w] = v
			st.height[w] = st.height[v] + 1
			stack = append(stack, frame{w, 0})
			// finishArc(a) runs when w's frame pops.
		} else { // back arc
			st.lowpt[a] = st.height[w]
			st.finishArc(a)
		}
	}
}

// finishArc computes the nesting depth of arc a and folds its lowpts
// into the parent arc of its source.
func (st *lrState) finishArc(a int32) {
	v := st.arcFrom[a]
	st.nesting[a] = 2 * st.lowpt[a]
	if st.lowpt2[a] < st.height[v] { // chordal: needs the +1 penalty
		st.nesting[a]++
	}
	e := st.parentArc[v]
	if e < 0 {
		return
	}
	if st.lowpt[a] < st.lowpt[e] {
		st.lowpt2[e] = min(st.lowpt[e], st.lowpt2[a])
		st.lowpt[e] = st.lowpt[a]
	} else if st.lowpt[a] > st.lowpt[e] {
		st.lowpt2[e] = min(st.lowpt2[e], st.lowpt[a])
	} else {
		st.lowpt2[e] = min(st.lowpt2[e], st.lowpt2[a])
	}
}

func (st *lrState) pop() conflictPair {
	p := st.s[len(st.s)-1]
	st.s = st.s[:len(st.s)-1]
	return p
}

// lowest returns the lowest lowpoint of a conflict pair.
func (st *lrState) lowest(p *conflictPair) int32 {
	if p.l.empty() && p.r.empty() {
		panic("planar: empty conflict pair on stack")
	}
	if p.l.empty() {
		return st.lowpt[p.r.low]
	}
	if p.r.empty() {
		return st.lowpt[p.l.low]
	}
	return min(st.lowpt[p.l.low], st.lowpt[p.r.low])
}

// conflicting reports whether interval i conflicts with arc b.
func (st *lrState) conflicting(i interval, b int32) bool {
	return !i.empty() && st.lowpt[i.high] > st.lowpt[b]
}

// dfsTesting is the testing phase; false means non-planar.
func (st *lrState) dfsTesting(root int32) bool {
	type frame struct {
		v   int32
		idx int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		adj := st.orientedAdj[v]
		if f.idx < len(adj) {
			w := adj[f.idx]
			ei := st.orientedArc[v][f.idx]
			f.idx++
			st.stackBottom[ei] = int32(len(st.s))
			if st.parentArc[w] == ei { // tree arc
				stack = append(stack, frame{w, 0})
				continue // the post-processing for ei happens on pop of w
			}
			// back arc
			st.lowptEdge[ei] = ei
			st.s = append(st.s, conflictPair{r: interval{low: ei, high: ei, lowSet: true, highSet: true}})
			if !st.integrateNewReturnEdges(v, ei) {
				return false
			}
			continue
		}
		// All children processed: run the tail for v, then pop.
		stack = stack[:len(stack)-1]
		if e := st.parentArc[v]; e >= 0 {
			u := st.arcFrom[e]
			st.removeBackEdges(e, u)
			// After returning into u's frame, integrate e's constraints
			// there (this mirrors the recursive structure: the recursive
			// call to dfs_testing(w) is followed by the lowpt check).
			if !st.integrateNewReturnEdges(u, e) {
				return false
			}
		}
	}
	return true
}

// integrateNewReturnEdges performs the "if lowpt[ei] < height[v]" block of
// dfs_testing for arc ei out of v.
func (st *lrState) integrateNewReturnEdges(v, ei int32) bool {
	if st.lowpt[ei] >= st.height[v] { // ei has no return edge
		return true
	}
	if ei == st.orientedArc[v][0] {
		if p := st.parentArc[v]; p >= 0 {
			st.lowptEdge[p] = st.lowptEdge[ei]
		}
		return true
	}
	if st.parentArc[v] < 0 {
		// A root has no parent edge to constrain; nothing to do.
		return true
	}
	return st.addConstraints(ei, st.parentArc[v])
}

// addConstraints merges the conflict pairs of ei with those of earlier
// siblings, failing when a left and a right constraint collide.
func (st *lrState) addConstraints(ei, e int32) bool {
	var p conflictPair
	// Merge return edges of ei into p.r.
	for {
		q := st.pop()
		if !q.l.empty() {
			q.swap()
		}
		if !q.l.empty() {
			return false // not planar
		}
		if st.lowpt[q.r.low] > st.lowpt[e] {
			// Merge intervals.
			if p.r.empty() {
				p.r.high = q.r.high
				p.r.highSet = true
			} else {
				st.ref[p.r.low] = q.r.high
			}
			p.r.low = q.r.low
			p.r.lowSet = true
		} else {
			// Align.
			st.ref[q.r.low] = st.lowptEdge[e]
		}
		if int32(len(st.s)) == st.stackBottom[ei] {
			break
		}
	}
	// Merge conflicting return edges of previous siblings into p.l.
	for st.conflicting(st.s[len(st.s)-1].l, ei) || st.conflicting(st.s[len(st.s)-1].r, ei) {
		q := st.pop()
		if st.conflicting(q.r, ei) {
			q.swap()
		}
		if st.conflicting(q.r, ei) {
			return false // not planar
		}
		// Merge interval below lowpt(ei) into p.r.
		if p.r.lowSet {
			if q.r.highSet {
				st.ref[p.r.low] = q.r.high
			} else {
				st.ref[p.r.low] = -1
			}
		}
		if q.r.lowSet {
			p.r.low = q.r.low
			p.r.lowSet = true
		}
		if p.l.empty() {
			p.l.high = q.l.high
			p.l.highSet = true
		} else {
			st.ref[p.l.low] = q.l.high
		}
		p.l.low = q.l.low
		p.l.lowSet = true
	}
	if !(p.l.empty() && p.r.empty()) {
		st.s = append(st.s, p)
	}
	return true
}

// removeBackEdges trims back edges ending at the parent u when the DFS
// returns over tree arc e = (u, v).
func (st *lrState) removeBackEdges(e, u int32) {
	// Drop entire conflict pairs.
	for len(st.s) > 0 && st.lowest(&st.s[len(st.s)-1]) == st.height[u] {
		p := st.pop()
		if p.l.lowSet {
			st.side[p.l.low] = -1
		}
	}
	// One more conflict pair may need partial trimming.
	if len(st.s) > 0 {
		p := st.pop()
		// Trim left interval.
		for p.l.highSet && st.arcTo[p.l.high] == u {
			if r := st.ref[p.l.high]; r >= 0 {
				p.l.high = r
			} else {
				p.l.highSet = false
			}
		}
		if !p.l.highSet && p.l.lowSet {
			if p.r.lowSet {
				st.ref[p.l.low] = p.r.low
			} else {
				st.ref[p.l.low] = -1
			}
			st.side[p.l.low] = -1
			p.l.lowSet = false
		}
		// Trim right interval.
		for p.r.highSet && st.arcTo[p.r.high] == u {
			if r := st.ref[p.r.high]; r >= 0 {
				p.r.high = r
			} else {
				p.r.highSet = false
			}
		}
		if !p.r.highSet && p.r.lowSet {
			if p.l.lowSet {
				st.ref[p.r.low] = p.l.low
			} else {
				st.ref[p.r.low] = -1
			}
			st.side[p.r.low] = -1
			p.r.lowSet = false
		}
		st.s = append(st.s, p)
	}
	// Choose the reference edge for e among the highest return edges.
	if st.lowpt[e] < st.height[u] { // e has a return edge
		var hl, hr int32
		hlSet, hrSet := false, false
		if len(st.s) > 0 {
			t := &st.s[len(st.s)-1]
			hl, hlSet = t.l.high, t.l.highSet
			hr, hrSet = t.r.high, t.r.highSet
		}
		if hlSet && (!hrSet || st.lowpt[hl] > st.lowpt[hr]) {
			st.ref[e] = hl
		} else if hrSet {
			st.ref[e] = hr
		}
	}
}

// sign resolves the side of arc e through its reference chain.
func (st *lrState) sign(e int32) int32 {
	// Iterative resolution with path collapsing.
	var chain []int32
	cur := e
	for {
		if st.side[cur] == 0 {
			st.side[cur] = 1
		}
		r := st.ref[cur]
		if r < 0 {
			break
		}
		chain = append(chain, cur)
		cur = r
	}
	s := st.side[cur]
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		st.side[c] *= s
		s = st.side[c]
		st.ref[c] = -1
	}
	return int32(s)
}

// embed runs the embedding phase. Must be called only after run() returned
// true.
func (st *lrState) embed() *Embedding {
	n := st.g.N()
	// Apply signs to nesting depths and re-sort adjacency lists.
	for v := 0; v < n; v++ {
		for _, a := range st.orientedArc[v] {
			st.nesting[a] *= st.sign(a)
		}
	}
	ord := arcOrder{nesting: st.nesting}
	for v := 0; v < n; v++ {
		ord.ws, ord.arcs = st.orientedAdj[v], st.orientedArc[v]
		sort.Stable(&ord)
	}
	emb := NewEmbedding(n)
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range st.orientedAdj[v] {
			emb.AddHalfEdgeCW(int32(v), w, prev)
			prev = w
		}
	}
	leftRef := make([]int32, n)
	rightRef := make([]int32, n)
	for i := range leftRef {
		leftRef[i] = -1
		rightRef[i] = -1
	}
	type frame struct {
		v   int32
		idx int
	}
	for _, root := range st.roots {
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			adj := st.orientedAdj[v]
			if f.idx >= len(adj) {
				stack = stack[:len(stack)-1]
				continue
			}
			w := adj[f.idx]
			ei := st.orientedArc[v][f.idx]
			f.idx++
			if st.parentArc[w] == ei { // tree arc
				emb.AddHalfEdgeFirst(w, v)
				leftRef[v] = w
				rightRef[v] = w
				stack = append(stack, frame{w, 0})
			} else { // back arc
				if st.side[ei] == 1 {
					emb.AddHalfEdgeCW(w, v, rightRef[w])
				} else {
					emb.AddHalfEdgeCCW(w, v, leftRef[w])
					leftRef[w] = v
				}
			}
		}
	}
	return emb
}
