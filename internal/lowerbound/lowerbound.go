// Package lowerbound builds the Ω(log n) lower-bound instances of §3
// (Theorem 2, Claims 11-12): sparse random graphs that are constant-far
// from planarity yet contain no cycles shorter than Θ(log n), so that any
// one-sided tester running fewer rounds sees only trees and must accept.
//
// The paper's constants (p = 1000k²/n) are proof-friendly but unrunnable;
// we use G(n, c/n) with c >= 8 and certify far-ness exactly via the Euler
// bound (distance >= m - 3n + 6), per DESIGN.md §3.
package lowerbound

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Instance is one lower-bound graph with its certificates.
type Instance struct {
	G *graph.Graph
	// MinGirth is the girth target: every cycle shorter than this was
	// removed by the surgery of Claim 12.
	MinGirth int
	// RemovedEdges counts the edges deleted by the girth surgery.
	RemovedEdges int
	// CertifiedDistance is the Euler-bound lower bound on the number of
	// edge deletions needed to reach planarity.
	CertifiedDistance int
	// Epsilon is the certified relative distance CertifiedDistance/m.
	Epsilon float64
}

// New builds an instance on n nodes with average degree c (c >= 8 keeps
// the Euler certificate positive after surgery with high probability).
// The girth target is floor(ln n / ln c), matching Claim 12's
// log(n)/c(k) with the expected count of shorter cycles bounded by a
// constant fraction of the edges.
func New(n int, c float64, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	g := graph.GNP(n, c/float64(n), rng)
	// Claim 12's target is log(n)/c(k) with c(k) = Theta(log k); the +2
	// keeps the Theta(log n) growth visible at laptop scale, where the
	// base-c logarithm alone is nearly flat.
	minGirth := int(math.Floor(math.Log(float64(n))/math.Log(c))) + 2
	if minGirth < 4 {
		minGirth = 4
	}
	h, removed := graph.RemoveShortCycles(g, minGirth)
	dist := graph.EulerDistanceLowerBound(h)
	eps := 0.0
	if h.M() > 0 {
		eps = float64(dist) / float64(h.M())
	}
	return &Instance{
		G:                 h,
		MinGirth:          minGirth,
		RemovedEdges:      removed,
		CertifiedDistance: dist,
		Epsilon:           eps,
	}
}

// BallIsTree reports whether the radius-r ball around v induces a forest
// (no cycle is visible within distance r of v).
func BallIsTree(g *graph.Graph, v, r int) bool {
	dist := g.BFS(v).Dist
	var ball []int
	for u, d := range dist {
		if d >= 0 && d <= r {
			ball = append(ball, u)
		}
	}
	sub, _ := g.InducedSubgraph(ball)
	return sub.IsForest()
}

// FractionTreeViews samples `sample` nodes (all nodes when sample <= 0 or
// >= n) and returns the fraction whose radius-r view is a forest. Any
// one-sided r-round CONGEST algorithm run at a node whose view is a
// forest behaves exactly as on some planar (indeed, acyclic) graph and
// therefore must accept; fraction 1 at radius r certifies that r rounds
// cannot suffice (Theorem 2's argument).
func FractionTreeViews(g *graph.Graph, r, sample int, rng *rand.Rand) float64 {
	n := g.N()
	if n == 0 {
		return 1
	}
	var nodes []int
	if sample <= 0 || sample >= n {
		for v := 0; v < n; v++ {
			nodes = append(nodes, v)
		}
	} else {
		for i := 0; i < sample; i++ {
			nodes = append(nodes, rng.Intn(n))
		}
	}
	trees := 0
	for _, v := range nodes {
		if BallIsTree(g, v, r) {
			trees++
		}
	}
	return float64(trees) / float64(len(nodes))
}

// GirthAtLeast verifies the surgery post-condition: no cycle shorter than
// the instance's MinGirth survives.
func (ins *Instance) GirthAtLeast() bool {
	return ins.G.Girth(ins.MinGirth-1) == -1
}
