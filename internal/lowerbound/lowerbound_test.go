package lowerbound

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestInstanceCertificates(t *testing.T) {
	ins := New(1200, 8, 1)
	if !ins.GirthAtLeast() {
		t.Fatal("girth surgery left a short cycle")
	}
	if ins.CertifiedDistance <= 0 {
		t.Fatalf("instance not certified far: distance %d", ins.CertifiedDistance)
	}
	if ins.Epsilon < 0.05 {
		t.Fatalf("certified epsilon %.3f too small", ins.Epsilon)
	}
	// The surgery must remove only a small fraction of edges.
	if float64(ins.RemovedEdges) > 0.2*float64(ins.G.M()+ins.RemovedEdges) {
		t.Fatalf("surgery removed %d of %d edges", ins.RemovedEdges, ins.G.M()+ins.RemovedEdges)
	}
}

func TestGirthGrowsWithN(t *testing.T) {
	g1 := New(256, 8, 2).MinGirth
	g2 := New(4096, 8, 2).MinGirth
	if g2 <= g1 {
		t.Fatalf("girth target must grow with n: %d vs %d", g1, g2)
	}
	// Theta(log n): ratio about log(4096)/log(256) = 1.5.
	want := math.Log(4096) / math.Log(256)
	got := float64(g2) / float64(g1)
	if got < want*0.5 || got > want*2 {
		t.Fatalf("girth growth %.2f, want about %.2f", got, want)
	}
}

func TestTreeViewsBelowGirthRadius(t *testing.T) {
	ins := New(800, 8, 3)
	rng := rand.New(rand.NewSource(4))
	// A radius-r ball can contain cycles of length up to 2r+1, so views
	// are trees exactly while 2r+1 < girth. At that round budget any
	// one-sided algorithm must accept (Theorem 2).
	r := (ins.MinGirth - 2) / 2
	if frac := FractionTreeViews(ins.G, r, 0, rng); frac != 1 {
		t.Fatalf("fraction of tree views at radius %d is %.3f, want 1", r, frac)
	}
}

func TestViewsSeeCyclesAtLargerRadius(t *testing.T) {
	ins := New(800, 8, 5)
	rng := rand.New(rand.NewSource(6))
	// Far beyond the girth radius, almost every view contains a cycle.
	r := 4 * ins.MinGirth
	if frac := FractionTreeViews(ins.G, r, 60, rng); frac > 0.2 {
		t.Fatalf("fraction of tree views at radius %d is %.3f, want near 0", r, frac)
	}
}

func TestBallIsTree(t *testing.T) {
	g := graph.Cycle(12)
	if !BallIsTree(g, 0, 5) {
		t.Fatal("radius-5 ball of C12 is a path")
	}
	if BallIsTree(g, 0, 6) {
		t.Fatal("radius-6 ball of C12 contains the cycle")
	}
}

func TestFullTesterRejectsInstance(t *testing.T) {
	// The full tester does reject these instances — given enough rounds.
	ins := New(500, 8, 7)
	rate, err := core.DetectionRate(ins.G, core.Options{Epsilon: ins.Epsilon / 2}, 3, 71)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.5 {
		t.Fatalf("full tester detection rate %.2f on a certified-far instance", rate)
	}
}
