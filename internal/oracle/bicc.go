package oracle

import "repro/internal/graph"

// BiconnectedComponents returns the edge sets of the biconnected
// components of g (every edge belongs to exactly one component) and the
// number of connected components. Isolated nodes form connected
// components without edges and therefore appear in neither list.
//
// The decomposition is the classic Hopcroft–Tarjan edge-stack DFS,
// iterative so that path-like corpus graphs (ladders, lollipops) cannot
// overflow the goroutine stack at large n.
func BiconnectedComponents(g *graph.Graph) (bicomps [][]graph.Edge, components int) {
	n := g.N()
	num := make([]int32, n) // DFS discovery number, 0 = unvisited
	low := make([]int32, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	var (
		counter   int32
		edgeStack []graph.Edge
	)
	type frame struct {
		v  int32
		pi int32 // next port of v to explore
	}
	var stack []frame

	for root := 0; root < n; root++ {
		if num[root] != 0 {
			continue
		}
		components++
		counter++
		num[root] = counter
		low[root] = counter
		stack = append(stack[:0], frame{v: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			nbrs := g.Neighbors(int(v))
			if int(f.pi) < len(nbrs) {
				w := nbrs[f.pi]
				f.pi++
				switch {
				case num[w] == 0:
					// Tree edge: push and descend.
					edgeStack = append(edgeStack, graph.NormEdge(int(v), int(w)))
					parent[w] = v
					counter++
					num[w] = counter
					low[w] = counter
					stack = append(stack, frame{v: w})
				case w != parent[v] && num[w] < num[v]:
					// Back edge (seen once, from the deeper endpoint).
					edgeStack = append(edgeStack, graph.NormEdge(int(v), int(w)))
					if num[w] < low[v] {
						low[v] = num[w]
					}
				}
				continue
			}
			// v is exhausted: fold its lowpoint into the parent and pop
			// a component if v's subtree cannot reach above the parent.
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p < 0 {
				continue
			}
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= num[p] {
				// p is an articulation point (or the root): the edges
				// pushed since the tree edge p-v form one biconnected
				// component, with p-v at the bottom.
				cut := graph.NormEdge(int(p), int(v))
				var comp []graph.Edge
				for len(edgeStack) > 0 {
					e := edgeStack[len(edgeStack)-1]
					edgeStack = edgeStack[:len(edgeStack)-1]
					comp = append(comp, e)
					if e == cut {
						break
					}
				}
				bicomps = append(bicomps, comp)
			}
		}
	}
	return bicomps, components
}
