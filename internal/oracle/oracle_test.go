package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/planar"
)

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
		b.AddEdge(5+i, 5+(i+2)%5)
		b.AddEdge(i, 5+i)
	}
	return b.Build()
}

func TestOraclePlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.NewBuilder(0).Build()},
		{"single node", graph.NewBuilder(1).Build()},
		{"two isolated nodes", graph.NewBuilder(2).Build()},
		{"K4", graph.Complete(4)},
		{"path", graph.Path(40)},
		{"cycle", graph.Cycle(40)},
		{"star", graph.Star(40)},
		{"ladder", graph.Ladder(20)},
		{"circular ladder", graph.CircularLadder(20)},
		{"barbell K4", graph.Barbell(4, 4)},
		{"lollipop K4", graph.Lollipop(4, 33)},
		{"balanced tree", graph.BalancedTree(3, 4)},
		{"grid", graph.Grid(8, 9)},
		{"triangulated grid", graph.TriangulatedGrid(7, 7)},
		{"maximal planar", graph.MaximalPlanar(80, rng)},
		{"outerplanar", graph.Outerplanar(50, rng)},
		{"random planar", graph.RandomPlanar(60, 120, rng)},
		{"disconnected planar", graph.DisjointUnion(graph.Cycle(6), graph.Grid(4, 4), graph.Complete(4))},
		{"K5 minus edge", graph.Complete(5).RemoveEdges([]graph.Edge{graph.NormEdge(0, 1)})},
	}
	for _, c := range cases {
		res := Decide(c.g)
		if !res.Planar {
			t.Errorf("%s: oracle rejects a planar graph (%+v)", c.name, res)
		}
		if res.EulerRejected || res.EulerRejects > 0 {
			t.Errorf("%s: spurious Euler rejection (%+v)", c.name, res)
		}
	}
}

func TestOracleNonPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	noisy, _ := graph.PlanarPlusRandomEdges(100, 60, rng)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K5", graph.Complete(5)},
		{"K33", graph.CompleteBipartite(3, 3)},
		{"petersen", petersen()},
		{"barbell K5", graph.Barbell(5, 2)},
		{"big barbell", graph.Barbell(20, 4)},
		{"lollipop K5", graph.Lollipop(5, 3)},
		{"K5 subdivision", graph.K5Subdivision(40)},
		{"K33 subdivision", graph.K33Subdivision(40)},
		{"planar plus noise", noisy},
		{"planar union K5", graph.DisjointUnion(graph.Grid(5, 5), graph.Complete(5))},
	}
	for _, c := range cases {
		if res := Decide(c.g); res.Planar {
			t.Errorf("%s: oracle accepts a non-planar graph (%+v)", c.name, res)
		}
	}
}

// The shortcut accounting must reflect how each verdict was reached:
// dense graphs die at the global Euler count, sparse subdivisions reach
// the left–right run, and bridge/tree structure is decided trivially.
func TestOracleShortcutAccounting(t *testing.T) {
	if res := Decide(graph.Complete(20)); !res.EulerRejected || res.LRTested != 0 {
		t.Fatalf("K20 should die at the global Euler count: %+v", res)
	}
	// A tree decomposes into m bridge blocks, all trivial.
	tree := graph.BalancedTree(2, 4)
	res := Decide(tree)
	if !res.Planar || res.LRTested != 0 || res.TrivialBicomps != tree.M() {
		t.Fatalf("tree accounting: %+v (m=%d)", res, tree.M())
	}
	// A K5 subdivision is one biconnected block that needs the LR run.
	res = Decide(graph.K5Subdivision(30))
	if res.Planar || res.LRTested != 1 || res.EulerRejected {
		t.Fatalf("K5 subdivision accounting: %+v", res)
	}
	// Disconnected: components counted, each block tested independently.
	g := graph.DisjointUnion(graph.Cycle(6), graph.Complete(4), graph.Path(3))
	res = Decide(g)
	if !res.Planar || res.Components != 3 {
		t.Fatalf("disjoint union accounting: %+v", res)
	}
	// Barbell of K5s: the first clique block rejects by its local Euler
	// count (10 edges > 3*5-6 = 9) before any LR run.
	res = Decide(graph.Barbell(5, 2))
	if res.Planar || res.EulerRejects != 1 || res.LRTested != 0 {
		t.Fatalf("K5 barbell accounting: %+v", res)
	}
}

func TestBiconnectedComponents(t *testing.T) {
	// Barbell(4, 2): two K4 blocks plus 3 bridge blocks.
	g := graph.Barbell(4, 2)
	bicomps, components := BiconnectedComponents(g)
	if components != 1 {
		t.Fatalf("barbell components = %d, want 1", components)
	}
	if len(bicomps) != 5 {
		t.Fatalf("barbell blocks = %d, want 5 (two K4s + three bridges)", len(bicomps))
	}
	sizes := map[int]int{}
	total := 0
	for _, c := range bicomps {
		sizes[len(c)]++
		total += len(c)
	}
	if sizes[6] != 2 || sizes[1] != 3 {
		t.Fatalf("block edge sizes %v, want two of 6 and three of 1", sizes)
	}
	if total != g.M() {
		t.Fatalf("blocks cover %d edges, want all %d", total, g.M())
	}

	// A cycle is a single block; a tree is all bridges.
	if bc, _ := BiconnectedComponents(graph.Cycle(12)); len(bc) != 1 || len(bc[0]) != 12 {
		t.Fatalf("cycle blocks: %d", len(bc))
	}
	if bc, k := BiconnectedComponents(graph.Path(8)); len(bc) != 7 || k != 1 {
		t.Fatalf("path blocks=%d components=%d, want 7, 1", len(bc), k)
	}
	// Isolated nodes are components without blocks.
	if bc, k := BiconnectedComponents(graph.NewBuilder(4).Build()); len(bc) != 0 || k != 4 {
		t.Fatalf("isolated nodes: blocks=%d components=%d, want 0, 4", len(bc), k)
	}
	// Disjoint union: blocks per component, components counted.
	bc, k := BiconnectedComponents(graph.DisjointUnion(graph.Cycle(5), graph.Path(4), graph.Complete(4)))
	if k != 3 || len(bc) != 1+3+1 {
		t.Fatalf("union: blocks=%d components=%d, want 5, 3", len(bc), k)
	}
}

// Property: block decomposition agrees with running the plain LR test on
// the whole graph, across random sparse graphs spanning both verdicts.
func TestOracleAgainstWholeGraphLR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trials := 300
	if testing.Short() {
		trials = 80
	}
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(40)
		g := graph.GNP(n, 2.5/float64(n), rng)
		want := planar.IsPlanar(g)
		if got := IsPlanar(g); got != want {
			t.Fatalf("disagreement on n=%d m=%d (trial %d): oracle=%v whole-graph LR=%v\nedges: %v",
				g.N(), g.M(), trial, got, want, g.Edges())
		}
	}
}

func BenchmarkDecideRandomPlanar10000(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomPlanar(10_000, 20_000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IsPlanar(g) {
			b.Fatal("must be planar")
		}
	}
}
