// Package oracle is the exact sequential planarity decision layer: it
// fronts the left–right tester in internal/planar with the classic
// shortcuts — the m > 3n−6 Euler rejection and connected/biconnected
// component decomposition, so components are tested independently and a
// single non-planar block answers the whole graph. It is the ground
// truth the differential corpus (internal/corpus) compares the CONGEST
// tester against, and the engine behind planard's mode=exact fast path.
//
// Unlike the distributed tester, the oracle is exact: it accepts iff the
// graph is planar, with no distance parameter and no randomness. A graph
// is planar iff every biconnected component is planar, so the oracle
// runs the O(n) left–right test only on the nontrivial blocks (≥ 5
// nodes, within the Euler bound); everything else is decided by
// counting.
package oracle

import (
	"repro/internal/graph"
	"repro/internal/planar"
)

// Result reports the oracle's verdict together with how it was reached,
// so callers (and the corpus report) can see which shortcut decided.
type Result struct {
	// Planar is the exact verdict: true iff the input graph is planar.
	Planar bool

	// Components is the number of connected components.
	Components int
	// Bicomps is the number of biconnected components (blocks).
	Bicomps int
	// TrivialBicomps counts blocks decided without a planarity run:
	// fewer than 5 nodes (always planar).
	TrivialBicomps int
	// EulerRejected is true when the whole graph was rejected by the
	// global m > 3n−6 count before any decomposition.
	EulerRejected bool
	// EulerRejects counts blocks rejected by their local Euler bound.
	EulerRejects int
	// LRTested counts blocks that required a left–right planarity run.
	LRTested int
}

// Decide runs the exact planarity decision on g and reports how the
// verdict was reached. It is deterministic and never errs on either
// side.
func Decide(g *graph.Graph) Result {
	var res Result
	// Global Euler rejection: any planar graph on n >= 3 nodes has at
	// most 3n-6 edges, so a denser graph is non-planar without looking
	// at its structure.
	if g.N() >= 3 && g.M() > 3*g.N()-6 {
		res.EulerRejected = true
		res.Planar = false
		return res
	}
	// Degenerate sizes: fewer than 5 nodes (K4 is planar) or no edges.
	if g.N() < 5 || g.M() == 0 {
		res.Planar = true
		_, res.Components = g.Components()
		return res
	}
	bicomps, components := BiconnectedComponents(g)
	res.Components = components
	res.Bicomps = len(bicomps)
	res.Planar = true

	// Scratch relabeling table, reset per block via the touched list so
	// repeated small blocks stay allocation-light.
	relabel := make([]int32, g.N())
	for i := range relabel {
		relabel[i] = -1
	}
	var touched []int32

	for _, comp := range bicomps {
		// Count the block's nodes by relabeling them densely.
		touched = touched[:0]
		k := int32(0)
		for _, e := range comp {
			for _, v := range [2]int32{e.U, e.V} {
				if relabel[v] < 0 {
					relabel[v] = k
					k++
					touched = append(touched, v)
				}
			}
		}
		decidePlanar := func() bool {
			// A block on fewer than 5 nodes cannot contain a K5 or
			// K3,3 subdivision.
			if k < 5 {
				res.TrivialBicomps++
				return true
			}
			if len(comp) > 3*int(k)-6 {
				res.EulerRejects++
				return false
			}
			b := graph.NewBuilder(int(k))
			for _, e := range comp {
				b.AddEdge(int(relabel[e.U]), int(relabel[e.V]))
			}
			res.LRTested++
			return planar.IsPlanar(b.Build())
		}
		ok := decidePlanar()
		for _, v := range touched {
			relabel[v] = -1
		}
		if !ok {
			res.Planar = false
			return res
		}
	}
	return res
}

// IsPlanar reports whether g is planar, exactly.
func IsPlanar(g *graph.Graph) bool {
	return Decide(g).Planar
}
