package oracle

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/planar"
)

// decodeGraph turns fuzz bytes into a simple graph on n <= max nodes:
// the first byte picks n, each following byte pair adds one edge (mod n).
func decodeGraph(data []byte, max int) *graph.Graph {
	if len(data) == 0 {
		return graph.NewBuilder(0).Build()
	}
	n := int(data[0])%max + 1
	b := graph.NewBuilder(n)
	for i := 1; i+1 < len(data); i += 2 {
		b.AddEdge(int(data[i])%n, int(data[i+1])%n)
	}
	return b.Build()
}

// FuzzOracleVsBruteForce checks the oracle against exhaustive
// rotation-system search on arbitrary graphs with n <= 9 — every
// decodable instance is either skipped (search budget exhausted) or an
// exact ground-truth comparison.
func FuzzOracleVsBruteForce(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})                                     // C4
	f.Add([]byte{5, 0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4}) // K5
	f.Add([]byte{6, 0, 3, 0, 4, 0, 5, 1, 3, 1, 4, 1, 5, 2, 3, 2, 4, 2, 5})       // K33
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeGraph(data, 9)
		want, ok := planar.BruteForcePlanar(g, 200_000)
		if !ok {
			t.Skip("brute-force budget exhausted")
		}
		res := Decide(g)
		if res.Planar != want {
			t.Fatalf("oracle=%v brute-force=%v on n=%d m=%d\nedges: %v\nresult: %+v",
				res.Planar, want, g.N(), g.M(), g.Edges(), res)
		}
		// The whole-graph LR test must agree too (decomposition soundness).
		if lr := planar.IsPlanar(g); lr != want {
			t.Fatalf("whole-graph LR=%v brute-force=%v on n=%d m=%d\nedges: %v",
				lr, want, g.N(), g.M(), g.Edges())
		}
	})
}
