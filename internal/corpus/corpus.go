// Package corpus is the differential-testing corpus of the repository:
// a deterministic registry of named graph families with known planarity
// structure, plus a harness (diff.go) that runs every instance through
// both the CONGEST tester and the exact sequential oracle
// (internal/oracle) and emits a confusion matrix. The paper's tester has
// one-sided error — a planar graph must never be rejected — and the
// corpus turns that contract into a failing CI gate: any false reject on
// an oracle-planar instance, or any accepted instance of an ε-far
// family, fails the run.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Kind classifies what a family promises about its instances.
type Kind int

// Family kinds. The gate applies different checks per kind: Planar
// families must never be rejected by either tester; Far families carry a
// certified Euler distance and must be rejected by both; NonPlanar
// families are non-planar but too sparse to be ε-far, so only the oracle
// verdict is gated (the CONGEST tester may legitimately accept them);
// Mixed families make no family-level promise — each instance is judged
// against the oracle alone.
const (
	KindPlanar Kind = iota
	KindFar
	KindNonPlanar
	KindMixed
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindPlanar:
		return "planar"
	case KindFar:
		return "far"
	case KindNonPlanar:
		return "nonplanar"
	case KindMixed:
		return "mixed"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Family is one named corpus entry: a deterministic generator from
// (target size, seed) to a graph. Generators treat n as a target — the
// actual node count tracks it but may differ (grids round to rectangles,
// trees to full levels).
type Family struct {
	// Name identifies the family in reports and CLI flags.
	Name string
	// Kind is the family's planarity promise; see the Kind constants.
	Kind Kind
	// Gen builds the instance for a target size and seed. Must be
	// deterministic in (n, seed).
	Gen func(n int, seed int64) *graph.Graph
}

// Families returns the full corpus registry in report order.
func Families() []Family {
	return []Family{
		// Planar by construction: the one-sided gate applies in full.
		{"path", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.Path(n) }},
		{"cycle", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.Cycle(max(n, 3)) }},
		{"star", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.Star(n) }},
		{"empty", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.NewBuilder(n).Build() }},
		{"balanced-tree", KindPlanar, func(n int, seed int64) *graph.Graph {
			// Smallest depth whose full ternary tree reaches n nodes.
			depth, total := 1, 4
			for total < n && depth < 10 {
				depth++
				total = total*3 + 1
			}
			return graph.BalancedTree(3, depth)
		}},
		{"ladder", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.Ladder(max(n/2, 1)) }},
		{"circular-ladder", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.CircularLadder(max(n/2, 3)) }},
		{"barbell-k4", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.Barbell(4, max(n-8, 0)) }},
		{"lollipop-k4", KindPlanar, func(n int, seed int64) *graph.Graph { return graph.Lollipop(4, max(n-4, 0)) }},
		{"grid", KindPlanar, func(n int, seed int64) *graph.Graph {
			side := 1
			for (side+1)*(side+1) <= n {
				side++
			}
			return graph.Grid(side, side)
		}},
		{"triangulated-grid", KindPlanar, func(n int, seed int64) *graph.Graph {
			side := 1
			for (side+1)*(side+1) <= n {
				side++
			}
			return graph.TriangulatedGrid(side, side)
		}},
		{"maximal-planar", KindPlanar, func(n int, seed int64) *graph.Graph {
			return graph.MaximalPlanar(max(n, 3), rand.New(rand.NewSource(seed)))
		}},
		{"random-planar", KindPlanar, func(n int, seed int64) *graph.Graph {
			n = max(n, 4)
			m := min(2*n, 3*n-6)
			return graph.RandomPlanar(n, m, rand.New(rand.NewSource(seed)))
		}},
		{"outerplanar", KindPlanar, func(n int, seed int64) *graph.Graph {
			return graph.Outerplanar(max(n, 3), rand.New(rand.NewSource(seed)))
		}},
		{"disjoint-union", KindPlanar, func(n int, seed int64) *graph.Graph {
			rng := rand.New(rand.NewSource(seed))
			third := max(n/3, 4)
			side := 2
			for (side+1)*(side+1) <= third {
				side++
			}
			return graph.DisjointUnion(
				graph.Grid(side, side),
				graph.RandomTree(third, rng),
				graph.Outerplanar(max(third, 3), rng))
		}},
		{"shuffled-maxplanar", KindPlanar, func(n int, seed int64) *graph.Graph {
			rng := rand.New(rand.NewSource(seed))
			g, _ := graph.Shuffle(graph.MaximalPlanar(max(n, 3), rng), rng)
			return g
		}},

		// ε-far by the Euler certificate: both testers must reject.
		{"complete", KindFar, func(n int, seed int64) *graph.Graph { return graph.Complete(max(n, 8)) }},
		{"complete-bipartite", KindFar, func(n int, seed int64) *graph.Graph {
			h := max(n/2, 4)
			return graph.CompleteBipartite(h, h)
		}},
		{"gnp-dense", KindFar, func(n int, seed int64) *graph.Graph {
			n = max(n, 16)
			return graph.GNP(n, 12/float64(n), rand.New(rand.NewSource(seed)))
		}},
		{"planar-plus-eps", KindFar, func(n int, seed int64) *graph.Graph {
			n = max(n, 8)
			extra := (3*n - 6) / 2 // certified eps = extra/m = 1/3
			g, _ := graph.PlanarPlusRandomEdges(n, extra, rand.New(rand.NewSource(seed)))
			return g
		}},

		// Non-planar but sparse (not ε-far): gated on the oracle only.
		{"k5-subdivision", KindNonPlanar, func(n int, seed int64) *graph.Graph { return graph.K5Subdivision(max(n, 5)) }},
		{"k33-subdivision", KindNonPlanar, func(n int, seed int64) *graph.Graph { return graph.K33Subdivision(max(n, 6)) }},
		{"barbell-k5", KindNonPlanar, func(n int, seed int64) *graph.Graph { return graph.Barbell(5, max(n-10, 0)) }},
		{"lollipop-k5", KindNonPlanar, func(n int, seed int64) *graph.Graph { return graph.Lollipop(5, max(n-5, 0)) }},

		// No family-level promise: each instance judged against the oracle.
		{"grid-odd-chords", KindMixed, func(n int, seed int64) *graph.Graph {
			side := 3
			for (side+1)*(side+1) <= n {
				side++
			}
			return graph.GridWithOddChords(side, side, side/2, rand.New(rand.NewSource(seed)))
		}},
	}
}

// ByName returns the named family.
func ByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}
