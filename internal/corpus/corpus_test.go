package corpus

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
)

func TestRegistryShape(t *testing.T) {
	fams := Families()
	if len(fams) < 10 {
		t.Fatalf("corpus has %d families, want >= 10", len(fams))
	}
	seen := map[string]bool{}
	kinds := map[Kind]int{}
	for _, f := range fams {
		if f.Name == "" || f.Gen == nil {
			t.Fatalf("malformed family %+v", f)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate family name %q", f.Name)
		}
		seen[f.Name] = true
		kinds[f.Kind]++
	}
	for _, k := range []Kind{KindPlanar, KindFar, KindNonPlanar} {
		if kinds[k] == 0 {
			t.Fatalf("no %s families in the registry", k)
		}
	}
	if _, ok := ByName("grid"); !ok {
		t.Fatal("ByName(grid) not found")
	}
	if _, ok := ByName("no-such-family"); ok {
		t.Fatal("ByName invented a family")
	}
}

// Generators must be deterministic in (n, seed): the corpus is a fixed
// test vector, not a sampler.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, f := range Families() {
		a := f.Gen(48, 7)
		b := f.Gen(48, 7)
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%s: size differs across identical calls", f.Name)
		}
		ae, be := a.Edges(), b.Edges()
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("%s: edge %d differs across identical calls", f.Name, i)
			}
		}
		// A different seed may change randomized families but must not
		// panic or change the family's planarity promise.
		c := f.Gen(48, 8)
		switch f.Kind {
		case KindPlanar:
			if !oracle.IsPlanar(c) {
				t.Fatalf("%s: planar family generated a non-planar instance", f.Name)
			}
		case KindFar, KindNonPlanar:
			if oracle.IsPlanar(c) {
				t.Fatalf("%s: non-planar family generated a planar instance", f.Name)
			}
		}
	}
}

// Every far family must actually carry a nonzero Euler certificate at
// every corpus size — otherwise the rejection gate is vacuous.
func TestFarFamiliesAreCertified(t *testing.T) {
	for _, f := range Families() {
		if f.Kind != KindFar {
			continue
		}
		for _, n := range []int{32, 72, 128} {
			g := f.Gen(n, 1)
			d := graph.EulerDistanceLowerBound(g)
			if d <= 0 {
				t.Fatalf("%s n=%d: no Euler certificate (m=%d, n=%d)", f.Name, n, g.M(), g.N())
			}
			eps := float64(d) / float64(g.M())
			if eps < 0.05 {
				t.Fatalf("%s n=%d: certified eps %.4f too weak for the corpus gate", f.Name, n, eps)
			}
		}
	}
}

// Instance sizes must track the target: a corpus "size" schedule that
// silently generated constant-size graphs would gut the coverage claim.
func TestGeneratorsTrackTargetSize(t *testing.T) {
	for _, f := range Families() {
		small := f.Gen(32, 1).N()
		large := f.Gen(128, 1).N()
		if large <= small {
			t.Fatalf("%s: n(128)=%d not larger than n(32)=%d", f.Name, large, small)
		}
		if small < 8 || large > 4*128 {
			t.Fatalf("%s: sizes %d..%d stray too far from targets 32..128", f.Name, small, large)
		}
	}
}
