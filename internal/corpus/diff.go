package corpus

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
)

// Config sizes one differential run.
type Config struct {
	// Sizes are the target node counts each family is generated at.
	// Empty means the default schedule {32, 72, 128}.
	Sizes []int
	// Seeds are the generator/tester seeds each (family, size) runs
	// under. Empty means {1, 2, 3}.
	Seeds []int64
	// Epsilon is the distance parameter handed to the CONGEST tester.
	// Far families run at min(Epsilon, certified eps) so the rejection
	// promise is backed by the instance's Euler certificate. 0 means
	// 0.25 (the repository's standard experiment parameter).
	Epsilon float64
	// Workers is the engine worker-pool size per run; 0 means 1.
	Workers int
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{32, 72, 128}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.25
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Cell is one corpus instance's differential result: the oracle verdict
// (ground truth), the CONGEST verdict, and the gate decision.
type Cell struct {
	// Family, Kind, Size, Seed identify the instance.
	Family string
	Kind   Kind
	Size   int
	Seed   int64
	// GraphN and GraphM are the generated instance's actual dimensions.
	GraphN, GraphM int
	// OraclePlanar is the exact sequential verdict — the ground truth.
	OraclePlanar bool
	// CongestRejected is the distributed tester's verdict at RunEps.
	CongestRejected bool
	// RunEps is the epsilon the CONGEST tester ran at.
	RunEps float64
	// CertifiedEps is the instance's Euler distance certificate
	// (distance / m), 0 when vacuous.
	CertifiedEps float64
	// Violations lists the gate clauses this cell breaks; empty cells
	// pass.
	Violations []string
}

// Report is the outcome of one differential run: every cell plus the
// aggregated confusion matrix with the oracle as ground truth (positive
// = planar): TP planar/accepted, FN planar/REJECTED (the one-sided
// contract forbids this entirely), FP non-planar/accepted (legitimate
// for sparse non-planar instances, a gate violation for ε-far ones),
// TN non-planar/rejected.
type Report struct {
	// Config echoes the run's effective configuration.
	Config Config
	// Cells holds one entry per (family, size, seed), in registry order.
	Cells []Cell
	// TP, FN, FP, TN is the confusion matrix over all cells.
	TP, FN, FP, TN int
	// Violations flattens every cell violation for the gate.
	Violations []string
}

// Failed reports whether the gate fires: any one-sided-error violation,
// any ε-far family instance that escaped rejection, or any family whose
// instance contradicts its planarity promise.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Run generates the corpus and pushes every instance through both the
// exact oracle and the CONGEST tester. Runs are deterministic in the
// config: generators and the tester are seeded, and the engine is
// byte-identical at any worker count.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Config: cfg}
	for _, fam := range Families() {
		for _, size := range cfg.Sizes {
			for _, seed := range cfg.Seeds {
				cell, err := runCell(fam, size, seed, cfg)
				if err != nil {
					return nil, fmt.Errorf("corpus: %s n=%d seed=%d: %w", fam.Name, size, seed, err)
				}
				rep.Cells = append(rep.Cells, cell)
				switch {
				case cell.OraclePlanar && !cell.CongestRejected:
					rep.TP++
				case cell.OraclePlanar && cell.CongestRejected:
					rep.FN++
				case !cell.OraclePlanar && !cell.CongestRejected:
					rep.FP++
				default:
					rep.TN++
				}
				rep.Violations = append(rep.Violations, cell.Violations...)
			}
		}
	}
	return rep, nil
}

func runCell(fam Family, size int, seed int64, cfg Config) (Cell, error) {
	g := fam.Gen(size, seed)
	cell := Cell{
		Family: fam.Name,
		Kind:   fam.Kind,
		Size:   size,
		Seed:   seed,
		GraphN: g.N(),
		GraphM: g.M(),
	}
	if g.M() > 0 {
		cell.CertifiedEps = float64(graph.EulerDistanceLowerBound(g)) / float64(g.M())
	}
	cell.OraclePlanar = oracle.IsPlanar(g)

	// Far families run at the strongest epsilon their certificate backs
	// (capped by the configured one): the rejection promise must hold at
	// the parameters the family is actually far for.
	cell.RunEps = cfg.Epsilon
	if fam.Kind == KindFar && cell.CertifiedEps > 0 && cell.CertifiedEps < cell.RunEps {
		cell.RunEps = cell.CertifiedEps
	}
	res, err := core.RunTester(g, core.Options{Epsilon: cell.RunEps, Workers: cfg.Workers}, seed)
	if err != nil {
		return cell, err
	}
	cell.CongestRejected = res.Rejected

	// Gate clauses.
	violate := func(format string, args ...any) {
		cell.Violations = append(cell.Violations,
			fmt.Sprintf("%s n=%d seed=%d: %s", fam.Name, size, seed, fmt.Sprintf(format, args...)))
	}
	if cell.OraclePlanar && cell.CongestRejected {
		violate("FALSE REJECT: oracle says planar, CONGEST tester rejected (one-sided error broken)")
	}
	switch fam.Kind {
	case KindPlanar:
		if !cell.OraclePlanar {
			violate("family promises planar, oracle rejected (generator or oracle bug)")
		}
	case KindFar:
		if cell.OraclePlanar {
			violate("family promises eps-far, oracle accepted (generator bug)")
		}
		if cell.CertifiedEps == 0 {
			violate("family promises eps-far but carries no Euler certificate")
		}
		if !cell.CongestRejected {
			violate("FAR MISS: certified eps=%.3f instance accepted at eps=%.3f", cell.CertifiedEps, cell.RunEps)
		}
	case KindNonPlanar:
		if cell.OraclePlanar {
			violate("family promises non-planar, oracle accepted (generator bug)")
		}
	}
	return cell, nil
}

// WriteText renders the report: the confusion matrix, a per-family
// summary table, and the violation list. Output is deterministic in the
// config so the committed docs/diffreport.txt artifact is stable.
func (r *Report) WriteText(w io.Writer) error {
	pf := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pf("differential corpus report\n==========================\n\n"); err != nil {
		return err
	}
	if err := pf("config: sizes=%v seeds=%v eps=%.3f\n", r.Config.Sizes, r.Config.Seeds, r.Config.Epsilon); err != nil {
		return err
	}
	if err := pf("cells: %d (%d families x %d sizes x %d seeds)\n\n",
		len(r.Cells), len(Families()), len(r.Config.Sizes), len(r.Config.Seeds)); err != nil {
		return err
	}
	if err := pf("confusion matrix (ground truth: exact oracle; positive = planar)\n"); err != nil {
		return err
	}
	if err := pf("                     congest accept   congest reject\n"); err != nil {
		return err
	}
	if err := pf("  oracle planar      TP %-12d  FN %d   <- FN must be 0 (one-sided error)\n", r.TP, r.FN); err != nil {
		return err
	}
	if err := pf("  oracle non-planar  FP %-12d  TN %d   <- far families may not contribute to FP\n\n", r.FP, r.TN); err != nil {
		return err
	}

	// Per-family rollup: verdict agreement across sizes and seeds.
	type agg struct {
		kind               Kind
		cells, planar, rej int
		minN, maxN         int
		violations         int
	}
	byFam := map[string]*agg{}
	var order []string
	for _, c := range r.Cells {
		a := byFam[c.Family]
		if a == nil {
			a = &agg{kind: c.Kind, minN: c.GraphN, maxN: c.GraphN}
			byFam[c.Family] = a
			order = append(order, c.Family)
		}
		a.cells++
		if c.OraclePlanar {
			a.planar++
		}
		if c.CongestRejected {
			a.rej++
		}
		if c.GraphN < a.minN {
			a.minN = c.GraphN
		}
		if c.GraphN > a.maxN {
			a.maxN = c.GraphN
		}
		a.violations += len(c.Violations)
	}
	if err := pf("%-20s %-10s %6s %14s %15s %6s\n", "family", "kind", "cells", "oracle-planar", "congest-reject", "gate"); err != nil {
		return err
	}
	for _, name := range order {
		a := byFam[name]
		gate := "ok"
		if a.violations > 0 {
			gate = fmt.Sprintf("FAIL:%d", a.violations)
		}
		if err := pf("%-20s %-10s %6d %11d/%-3d %12d/%-3d %6s\n",
			name, a.kind, a.cells, a.planar, a.cells, a.rej, a.cells, gate); err != nil {
			return err
		}
	}

	if len(r.Violations) > 0 {
		if err := pf("\nVIOLATIONS (%d)\n", len(r.Violations)); err != nil {
			return err
		}
		sorted := append([]string(nil), r.Violations...)
		sort.Strings(sorted)
		for _, v := range sorted {
			if err := pf("  %s\n", v); err != nil {
				return err
			}
		}
		return pf("\nGATE: FAIL\n")
	}
	return pf("\nGATE: PASS (zero false rejects on planar instances; every eps-far instance rejected)\n")
}
