package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/planar"
)

// TestDifferentialCorpusGate is the CI gate: every corpus instance runs
// through both the CONGEST tester and the exact oracle, and the run
// fails on any one-sided-error violation or eps-far miss. The short
// schedule keeps -race runs fast; the full default schedule is what
// scripts/diffreport commits to docs/diffreport.txt.
func TestDifferentialCorpusGate(t *testing.T) {
	cfg := Config{}
	if testing.Short() {
		cfg = Config{Sizes: []int{24, 48}, Seeds: []int64{1, 2}}
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Error(v)
		}
		t.Fatalf("differential gate failed with %d violations", len(rep.Violations))
	}
	if rep.FN != 0 {
		t.Fatalf("confusion matrix reports %d false negatives with no violations recorded", rep.FN)
	}
	if rep.TP == 0 || rep.TN == 0 {
		t.Fatalf("degenerate confusion matrix TP=%d TN=%d: corpus lost a side", rep.TP, rep.TN)
	}
	wantCells := len(Families()) * len(rep.Config.Sizes) * len(rep.Config.Seeds)
	if len(rep.Cells) != wantCells {
		t.Fatalf("ran %d cells, want %d", len(rep.Cells), wantCells)
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"confusion matrix", "GATE: PASS", "grid", "complete", "k5-subdivision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// The report must render violations when the gate fires.
func TestReportRendersViolations(t *testing.T) {
	rep := &Report{Config: Config{}.withDefaults(), FN: 1}
	rep.Cells = []Cell{{Family: "synthetic", Kind: KindPlanar, Size: 8, Seed: 1,
		OraclePlanar: true, CongestRejected: true,
		Violations: []string{"synthetic n=8 seed=1: FALSE REJECT"}}}
	rep.Violations = rep.Cells[0].Violations
	if !rep.Failed() {
		t.Fatal("report with violations did not fail")
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "GATE: FAIL") || !strings.Contains(sb.String(), "FALSE REJECT") {
		t.Fatalf("failure report incomplete:\n%s", sb.String())
	}
}

// Embedding satellite: on every corpus instance, planar.Embed must
// succeed exactly when the oracle accepts; accepted embeddings must
// Validate and satisfy Euler's face count, and EmbedOrFallback must
// report Planar consistently with the oracle verdict.
func TestEmbeddingAgreesWithOracle(t *testing.T) {
	for _, f := range Families() {
		g := f.Gen(48, 1)
		planarVerdict := oracle.IsPlanar(g)
		emb, err := planar.Embed(g)
		if (err == nil) != planarVerdict {
			t.Fatalf("%s: Embed err=%v, oracle planar=%v", f.Name, err, planarVerdict)
		}
		if planarVerdict {
			if err := emb.Validate(g); err != nil {
				t.Fatalf("%s: embedding failed validation: %v", f.Name, err)
			}
			// Euler's formula, spelled out: f = 2c - n + m - isolated.
			_, c := g.Components()
			isolated := 0
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) == 0 {
					isolated++
				}
			}
			if got, want := emb.CountFaces(), 2*c-g.N()+g.M()-isolated; got != want {
				t.Fatalf("%s: %d faces, Euler requires %d", f.Name, got, want)
			}
		}
		res := planar.EmbedOrFallback(g, planar.FallbackArbitrary)
		if res.Planar != planarVerdict {
			t.Fatalf("%s: EmbedOrFallback planar=%v, oracle planar=%v", f.Name, res.Planar, planarVerdict)
		}
		if res.Embedding == nil {
			t.Fatalf("%s: EmbedOrFallback returned no embedding", f.Name)
		}
	}
}

// FuzzOracleVsCongest feeds random planar and near-planar graphs through
// both deciders and checks the one-sided contract: whenever the exact
// oracle says planar, the CONGEST tester must accept. (Rejection of
// non-planar inputs is NOT required — the tester only promises to catch
// eps-far graphs — so that direction is left ungated.)
func FuzzOracleVsCongest(f *testing.F) {
	f.Add(uint8(20), uint8(0), int64(1))
	f.Add(uint8(40), uint8(5), int64(2))
	f.Add(uint8(64), uint8(40), int64(3))
	f.Fuzz(func(t *testing.T, size, extra uint8, seed int64) {
		n := 8 + int(size)%120
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomPlanar(n, min(2*n, 3*n-6), rng)
		if int(extra) > 0 {
			g, _ = graph.PlanarPlusRandomEdges(n, int(extra)%(2*n), rng)
		}
		planarVerdict := oracle.IsPlanar(g)
		res, err := core.RunTester(g, core.Options{Epsilon: 0.25}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if planarVerdict && res.Rejected {
			t.Fatalf("one-sided error broken: oracle-planar graph (n=%d m=%d extra=%d seed=%d) rejected",
				g.N(), g.M(), extra, seed)
		}
	})
}
