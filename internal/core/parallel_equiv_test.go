package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// TestParallelTesterEngineEquivalence proves the full tester produces
// byte-identical RunResults on the sequential engine (Workers=1) and the
// sharded engine (Workers=NumCPU, plus a fixed multi-worker count so the
// pool engages even on single-core CI) for the same seeds and graph
// families, on accepting and rejecting inputs (issue acceptance
// criterion). CI runs it under -race.
func TestParallelTesterEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	far, _ := graph.PlanarPlusRandomEdges(90, 70, rng)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10)},
		{"far-from-planar", far},
		{"tree-plus-edges", graph.TreePlusRandomEdges(110, 30, rand.New(rand.NewSource(8)))},
	}
	workers := []int{4}
	if n := runtime.NumCPU(); n > 1 && n != 4 {
		workers = append(workers, n)
	}
	optsList := []Options{
		{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}},
		{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Variant: partition.Randomized, Schedule: partition.PracticalSchedule}},
	}
	for _, fam := range families {
		for oi, opts := range optsList {
			for seed := int64(0); seed < 2; seed++ {
				seqOpts := opts
				seqOpts.Workers = 1
				sr, err := RunTester(fam.g, seqOpts, seed)
				if err != nil {
					t.Fatalf("%s/opts%d/seed%d: sequential: %v", fam.name, oi, seed, err)
				}
				for _, w := range workers {
					parOpts := opts
					parOpts.Workers = w
					pr, err := RunTester(fam.g, parOpts, seed)
					if err != nil {
						t.Fatalf("%s/opts%d/seed%d/w%d: parallel: %v", fam.name, oi, seed, w, err)
					}
					if !reflect.DeepEqual(sr, pr) {
						t.Fatalf("%s/opts%d/seed%d/w%d: result mismatch:\nworkers=1: %+v\nworkers=%d: %+v",
							fam.name, oi, seed, w, sr, w, pr)
					}
				}
			}
		}
	}
}
