package core
