package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/partition"
)

// TestKillAndResumeEquivalence is the headline fault-injection suite: for
// three graph families, two seeds, and worker counts {1, 2, 4}, it kills
// the full planarity tester at a (deterministically drawn) random barrier
// via faultpoint, restores from the last checkpoint, and asserts the
// resumed run produces a byte-identical RunResult — including identical
// Metrics.Rounds — to an uninterrupted baseline. Both Stage I variants
// run, so checkpoints of the script interpreter, the part-context
// prelude, the Stage II machine, and the RNG replay path are all
// exercised.
func TestKillAndResumeEquivalence(t *testing.T) {
	defer faultpoint.Reset()
	far, _ := graph.PlanarPlusRandomEdges(90, 70, rand.New(rand.NewSource(4)))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10)},
		{"far-from-planar", far},
		{"tree-plus-edges", graph.TreePlusRandomEdges(110, 30, rand.New(rand.NewSource(8)))},
	}
	optsList := []struct {
		name string
		opts Options
	}{
		{"det", Options{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}}},
		{"rand", Options{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Variant: partition.Randomized, Schedule: partition.PracticalSchedule}}},
	}
	crashRng := rand.New(rand.NewSource(99))
	for _, fam := range families {
		for _, oc := range optsList {
			for seed := int64(0); seed < 2; seed++ {
				baseOpts := oc.opts
				baseOpts.Workers = 1
				barriers := 0
				baseOpts.Checkpoint = congest.CheckpointConfig{
					EveryBarriers: 1,
					Sink:          func(round int, data []byte) error { barriers++; return nil },
				}
				base, err := RunTester(fam.g, baseOpts, seed)
				if err != nil {
					t.Fatalf("%s/%s/seed%d: baseline: %v", fam.name, oc.name, seed, err)
				}
				// Crash strictly inside the run: after at least one
				// checkpoint, before the final barrier.
				crashAt := 2 + crashRng.Intn(barriers-2)
				for _, w := range []int{1, 2, 4} {
					snap := crashRun(t, fam.g, oc.opts, seed, w, crashAt,
						fam.name+"/"+oc.name)
					resOpts := oc.opts
					resOpts.Workers = w
					res, err := ResumeTester(fam.g, resOpts, seed, snap)
					if err != nil {
						t.Fatalf("%s/%s/seed%d/w%d: resume: %v", fam.name, oc.name, seed, w, err)
					}
					if !reflect.DeepEqual(base, res) {
						t.Fatalf("%s/%s/seed%d/w%d: resumed result differs:\nbase:    %+v\nresumed: %+v",
							fam.name, oc.name, seed, w, base, res)
					}
				}
				// Cross-worker restore: a checkpoint taken under one worker
				// count resumes under another with the same Result.
				snap := crashRun(t, fam.g, oc.opts, seed, 1, crashAt, fam.name+"/"+oc.name)
				crossOpts := oc.opts
				crossOpts.Workers = 4
				res, err := ResumeTester(fam.g, crossOpts, seed, snap)
				if err != nil {
					t.Fatalf("%s/%s/seed%d: cross-worker resume: %v", fam.name, oc.name, seed, err)
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("%s/%s/seed%d: cross-worker resumed result differs:\nbase:    %+v\nresumed: %+v",
						fam.name, oc.name, seed, base, res)
				}
			}
		}
	}
}

// crashRun runs the tester with per-barrier checkpoints, kills it at the
// crashAt-th barrier, and returns the last checkpoint taken.
func crashRun(t *testing.T, g *graph.Graph, opts Options, seed int64, workers, crashAt int, tag string) []byte {
	t.Helper()
	var last []byte
	opts.Workers = workers
	opts.Checkpoint = congest.CheckpointConfig{
		EveryBarriers: 1,
		Sink: func(round int, data []byte) error {
			last = data
			return nil
		},
		OnError: func(round int, err error) {
			t.Errorf("%s/w%d: checkpoint error at round %d: %v", tag, workers, round, err)
		},
	}
	boom := errors.New("injected crash")
	faultpoint.Arm(congest.FaultBarrier, crashAt, func() error { return boom })
	_, err := RunTester(g, opts, seed)
	faultpoint.Disarm(congest.FaultBarrier)
	if !errors.Is(err, boom) {
		t.Fatalf("%s/w%d/seed%d: expected injected crash at barrier %d, got %v",
			tag, workers, seed, crashAt, err)
	}
	if last == nil {
		t.Fatalf("%s/w%d/seed%d: no checkpoint captured before crash", tag, workers, seed)
	}
	return last
}

// TestResumeRejectsWrongGraph asserts a checkpoint cannot be restored
// onto a different graph.
func TestResumeRejectsWrongGraph(t *testing.T) {
	defer faultpoint.Reset()
	g := graph.Grid(6, 6)
	opts := Options{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}}
	snap := crashRun(t, g, opts, 0, 1, 3, "wrong-graph")
	if _, err := ResumeTester(graph.Grid(6, 7), opts, 0, snap); !errors.Is(err, congest.ErrBadSnapshot) {
		t.Fatalf("expected ErrBadSnapshot for mismatched graph, got %v", err)
	}
}
