package core

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
	"sort"
	"sync"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/planar"
)

// StageIIOptions configures the per-part planarity check.
type StageIIOptions struct {
	// Epsilon is the distance parameter (drives the sample size).
	Epsilon float64
	// SampleCoeff scales the Theta(log n / eps) sample size. Zero means 2.
	SampleCoeff float64
	// EmbedMode selects what the substituted embedding step does on
	// non-planar parts (paper-faithful "some ordering"); see
	// planar.EmbedOrFallback. Zero means FallbackArbitrary.
	EmbedMode planar.FallbackMode
	// StrictEmbedReject rejects a part as soon as the embedding algorithm
	// determines non-planarity, instead of producing a fallback ordering.
	// The default (false) matches the paper's model, where the embedding
	// black box may silently produce orderings on non-planar inputs.
	StrictEmbedReject bool

	// partCtxPhase and opsPhase are the obs phase IDs ("stage2/partctx",
	// "stage2/ops") that the step machines announce on entry; zero (no
	// probe configured) announces nothing. They are interned by
	// Options.withDefaults before the run starts, travel by value through
	// the Stage II handoff, and are deliberately not serialized in
	// checkpoints: ResumeTester re-derives them from the caller's Options,
	// so a resumed run attributes to the same IDs as the original.
	partCtxPhase obs.PhaseID
	opsPhase     obs.PhaseID
}

func (o StageIIOptions) withDefaults() StageIIOptions {
	if o.SampleCoeff == 0 {
		o.SampleCoeff = 2
	}
	if o.EmbedMode == 0 {
		o.EmbedMode = planar.FallbackArbitrary
	}
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		panic("core: Epsilon must be in (0,1]")
	}
	return o
}

// RunStageII executes the Stage II planarity check of §2.2 on this node's
// part (given by the Stage I outcome) and returns the node's verdict:
// VerdictReject when the node holds evidence of non-planarity, and
// VerdictAccept otherwise. It must be called by every node of the network
// right after Stage I; parts proceed independently (all communication is
// intra-part after one global boundary round).
func RunStageII(api *congest.API, part *partition.Outcome, opts StageIIOptions) congest.Verdict {
	opts = opts.withDefaults()
	s := &stage2{api: api, part: part, opts: opts}

	// Step A: agree on a tight round budget from the Stage I tree depth.
	s.computeBudget()
	// Step B: one boundary round — intra-part ports and neighbor ids.
	s.exchangeIdentity()
	// Step C: BFS tree T_B^j rooted at the part root (§2.2.1).
	s.buildBFS()
	// Step D: levels exchange and edge assignment.
	s.assignEdges()
	// Step E: count n(G^j) and m(G^j); Euler-bound rejection.
	if !s.countAndCheckEuler() {
		if s.tree.IsRoot() {
			api.Output(congest.VerdictReject)
			return congest.VerdictReject
		}
		return congest.VerdictAccept
	}
	if s.partM == 0 || s.partN <= 2 {
		return congest.VerdictAccept // trivially planar part
	}
	// Step F: embedding (Ghaffari–Haeupler substitution; DESIGN.md §3).
	if !s.embed() {
		// Strict mode found non-planarity at the root.
		if s.tree.IsRoot() {
			api.Output(congest.VerdictReject)
			return congest.VerdictReject
		}
		return congest.VerdictAccept
	}
	// Step G: label the BFS tree per the embedding (§2.2.2).
	s.distributeLabels()
	// Step H: exchange labels across non-tree edges.
	s.exchangeNonTreeLabels()
	// Steps I-J: sample non-tree edges, gather and rebroadcast their
	// label pairs.
	samples := s.sampleAndShare()
	// Step K: local violation checks (Definition 7).
	if s.detectViolations(samples) {
		api.Output(congest.VerdictReject)
		return congest.VerdictReject
	}
	return congest.VerdictAccept
}

type stage2 struct {
	api  *congest.API
	part *partition.Outcome
	opts StageIIOptions

	budget   int // 2*oldDepth+2: covers any intra-part distance
	maxDepth int // Stage I tree depth bound agreed part-wide

	intra  []bool  // per port: same part
	nbrID  []int64 // per port: neighbor id
	nbrLvl []int64 // per port: neighbor BFS level

	tree  congest.Tree // BFS tree T_B
	level int64

	assigned []int // ports of edges assigned to this node
	partN    int64
	partM    int64

	rotPorts []int // clockwise rotation as ports (intra-part edges)

	label       Label   // vertex label (tree path edge positions)
	edgePos     []int32 // per port: attachment position in the rotation (-1 none)
	nbrLabels   []Label // per port: non-tree neighbor's attachment label
	nonTree     []LabeledEdge
	haveNonTree bool
}

// computeBudget measures the Stage I tree's depth exactly and derives the
// part-wide operation budget 2*depth+2 (an upper bound on the part's
// induced diameter, plus slack).
func (s *stage2) computeBudget() {
	t := s.part.Tree
	probe := s.api.N() + 2
	d, ok := t.BroadcastDown(s.api, s.api.Round()+probe, valMsg{V: 0}, depthTransform)
	if !ok {
		panic("core: depth probe under-budgeted")
	}
	maxd, ok := t.Convergecast(s.api, s.api.Round()+probe, d, combineMaxVal)
	if !ok {
		panic("core: depth convergecast under-budgeted")
	}
	agreed, ok := t.BroadcastDown(s.api, s.api.Round()+probe, maxd, nil)
	if !ok {
		panic("core: depth broadcast under-budgeted")
	}
	s.maxDepth = int(agreed.(valMsg).V)
	s.budget = 2*s.maxDepth + 2
}

// exchangeIdentity is the single global round in which every node learns,
// per port, the neighbor's part and id. After this round all Stage II
// communication is intra-part, so parts may proceed on skewed schedules.
func (s *stage2) exchangeIdentity() {
	deg := s.api.Degree()
	s.intra = make([]bool, deg)
	s.nbrID = make([]int64, deg)
	s.api.SendAll(announceMsg{PartRoot: s.part.RootID, ID: s.api.ID()})
	for _, in := range s.api.NextRound() {
		am, ok := in.Msg.(announceMsg)
		if !ok {
			continue // a neighboring part on a skewed schedule cannot
			// reach here (see DESIGN.md), but stay tolerant
		}
		s.intra[in.Port] = am.PartRoot == s.part.RootID
		s.nbrID[in.Port] = am.ID
	}
}

// buildBFS constructs the BFS tree of the part (§2.2.1 preprocessing).
func (s *stage2) buildBFS() {
	deadline := s.api.Round() + s.budget + 3
	parentPort := -1
	var childPorts []int
	adopted := s.part.Tree.IsRoot()
	s.level = 0
	if adopted {
		for p, ok := range s.intra {
			if ok {
				s.api.Send(p, bfsMsg{Level: 0})
			}
		}
	}
	for s.api.Round() < deadline {
		inbox := s.api.SleepUntil(deadline)
		bestPort := -1
		for _, in := range inbox {
			switch m := in.Msg.(type) {
			case bfsMsg:
				if adopted || !s.intra[in.Port] {
					continue
				}
				if bestPort == -1 || s.nbrID[in.Port] < s.nbrID[bestPort] {
					bestPort = in.Port
					s.level = m.Level + 1
				}
			case childMsg:
				childPorts = append(childPorts, in.Port)
			}
		}
		if bestPort >= 0 {
			adopted = true
			parentPort = bestPort
			s.api.Send(parentPort, childMsg{})
			for p, ok := range s.intra {
				if ok && p != parentPort {
					s.api.Send(p, bfsMsg{Level: s.level})
				}
			}
		}
	}
	if !adopted {
		panic("core: BFS did not reach a part node (invalid partition)")
	}
	sort.Ints(childPorts)
	s.tree = congest.Tree{ParentPort: parentPort, ChildPorts: childPorts}
	if s.part.Tree.IsRoot() {
		s.tree.ParentPort = -1
	}
}

// assignEdges exchanges BFS levels and assigns each intra-part edge to its
// higher-level endpoint (ties by larger id), per §2.2.1.
func (s *stage2) assignEdges() {
	deg := s.api.Degree()
	s.nbrLvl = make([]int64, deg)
	for p, ok := range s.intra {
		if ok {
			s.api.Send(p, lvlMsg{Level: s.level})
		}
	}
	for _, in := range s.api.NextRound() {
		if m, ok := in.Msg.(lvlMsg); ok {
			s.nbrLvl[in.Port] = m.Level
		}
	}
	for p, ok := range s.intra {
		if !ok {
			continue
		}
		if s.level > s.nbrLvl[p] || (s.level == s.nbrLvl[p] && s.api.ID() > s.nbrID[p]) {
			s.assigned = append(s.assigned, p)
		}
	}
}

// countAndCheckEuler aggregates n(G^j) and m(G^j) on the BFS tree and
// rejects at the root when m > 3n-6 (the part cannot be planar). Returns
// false when the part rejected.
func (s *stage2) countAndCheckEuler() bool {
	d := s.api.Round() + s.budget + 2
	agg, ok := s.tree.Convergecast(s.api, d, countsMsg{N: 1, M: int64(len(s.assigned))}, combineCounts)
	if !ok {
		panic("core: counts convergecast under-budgeted")
	}
	c := agg.(countsMsg)
	if s.tree.IsRoot() {
		c.Reject = c.N >= 3 && c.M > 3*c.N-6
	}
	res, ok := s.tree.BroadcastDown(s.api, s.api.Round()+s.budget+2, c, nil)
	if !ok {
		panic("core: counts broadcast under-budgeted")
	}
	rc := res.(countsMsg)
	s.partN = rc.N
	s.partM = rc.M
	return !rc.Reject
}

// embed runs the substituted embedding step: the part's edge list is
// pipelined to the root, the root computes a combinatorial embedding (a
// genuine planar one when the part is planar), and rotation entries are
// pipelined back down. Costs O(m + depth) real rounds; the modeled
// Ghaffari–Haeupler cost O(D + min(log n, D)) is charged to the metrics.
// Returns false if StrictEmbedReject is set and the part is not planar.
func (s *stage2) embed() bool {
	items := make([]congest.Message, 0, len(s.assigned))
	for _, p := range s.assigned {
		items = append(items, edgeItem{A: s.api.ID(), B: s.nbrID[p]})
	}
	gatherBudget := int(s.partM) + s.budget + 4
	collected, ok := s.tree.PipelineUp(s.api, s.api.Round()+gatherBudget, items)
	if s.tree.IsRoot() && !ok {
		panic("core: edge gather under-budgeted")
	}

	var out []congest.Message
	strictFail := false
	if s.tree.IsRoot() {
		out, strictFail = embedRotationItems(collected, s.api.ID(), s.partN, s.opts)
		// Modeled cost of the real GH embedding (DESIGN.md §3).
		s.api.ChargeModeledRounds(modeledEmbedRounds(s.api.N(), s.maxDepth))
	}
	if strictFail {
		out = []congest.Message{embedFail{}}
	}
	scatterBudget := int(2*s.partM) + s.budget + 6
	got, ok := s.tree.BroadcastItemsDown(s.api, s.api.Round()+scatterBudget, out)
	if !ok {
		panic("core: rotation scatter under-budgeted")
	}
	if len(got) == 1 {
		if _, fail := got[0].(embedFail); fail {
			return false
		}
	}
	s.rotPorts = rotationPorts(got, s.api.ID(), s.intra, s.nbrID)
	return true
}

// embedRotationItems is the root-side embedding step shared by both
// execution models: it builds the part graph from the gathered edge list,
// runs the (substituted) embedding, and flattens the rotation system into
// scatter items.
func embedRotationItems(collected []congest.Message, rootID int64, partN int64, opts StageIIOptions) (out []congest.Message, strictFail bool) {
	// Build the part graph on dense indices.
	idOf := make([]int64, 0, partN)
	idx := make(map[int64]int, partN)
	add := func(id int64) int {
		if i, ok := idx[id]; ok {
			return i
		}
		idx[id] = len(idOf)
		idOf = append(idOf, id)
		return len(idOf) - 1
	}
	add(rootID)
	type pair struct{ a, b int }
	pairs := make([]pair, 0, len(collected))
	for _, it := range collected {
		e := it.(edgeItem)
		pairs = append(pairs, pair{add(e.A), add(e.B)})
	}
	b := graph.NewBuilder(len(idOf))
	for _, p := range pairs {
		b.AddEdge(p.a, p.b)
	}
	pg := b.Build()
	res := planar.EmbedOrFallback(pg, opts.EmbedMode)
	if !res.Planar && opts.StrictEmbedReject {
		return nil, true
	}
	for v := 0; v < pg.N(); v++ {
		for i, w := range res.Embedding.Rotation(v) {
			out = append(out, rotItem{Node: idOf[v], Idx: int32(i), Nbr: idOf[w]})
		}
	}
	return out, false
}

// modeledEmbedRounds is the charged round cost O(D + min(log n, D)) of the
// Ghaffari–Haeupler embedding substitution.
func modeledEmbedRounds(n, maxDepth int) int {
	logn := int(math.Ceil(math.Log2(float64(n + 1))))
	mD := maxDepth
	if logn < mD {
		mD = logn
	}
	return 2*maxDepth + mD
}

// rotationPorts extracts this node's rotation from the scattered items,
// mapping neighbor ids back to ports (shared by both execution models).
func rotationPorts(got []congest.Message, id int64, intra []bool, nbrID []int64) []int {
	portOf := make(map[int64]int, len(intra))
	for p, ok := range intra {
		if ok {
			portOf[nbrID[p]] = p
		}
	}
	type entry struct {
		idx int32
		nbr int64
	}
	var mine []entry
	for _, it := range got {
		if r, ok := it.(rotItem); ok && r.Node == id {
			mine = append(mine, entry{r.Idx, r.Nbr})
		}
	}
	slices.SortFunc(mine, func(a, b entry) int { return cmp.Compare(a.idx, b.idx) })
	rotPorts := make([]int, 0, len(mine))
	for _, e := range mine {
		p, ok := portOf[e.nbr]
		if !ok {
			panic("core: rotation references unknown neighbor")
		}
		rotPorts = append(rotPorts, p)
	}
	return rotPorts
}

// labelElemsPerChunkFor is the per-element size used when chunking labels
// (shared by both execution models).
func labelElemsPerChunkFor(bitBound, n int) int {
	per := (bitBound - 16) / (congest.BitsForID(n) + 2)
	if per < 1 {
		per = 1
	}
	return per
}

// chunksPerLabelFor bounds the chunk count of any label in a part: label
// length equals BFS depth, which is at most the part diameter <= budget.
func chunksPerLabelFor(budget, per int) int {
	return (budget+2)/per + 1
}

// sampleWant is the Theta(log n / eps) sample-size target of §2.2.2.
func sampleWant(opts StageIIOptions, n int) float64 {
	return opts.SampleCoeff * (math.Log(float64(n)) + 1) / opts.Epsilon
}

func (s *stage2) labelElemsPerChunk() int {
	return labelElemsPerChunkFor(s.api.BitBound(), s.api.N())
}

func (s *stage2) chunksPerLabel() int {
	return chunksPerLabelFor(s.budget, s.labelElemsPerChunk())
}

// distributeLabels implements the labeling of §2.2.2: each node's label is
// its parent's label extended by the clockwise index of its tree edge
// (counted from the parent edge in the embedding's rotation). Labels are
// chunked down the BFS tree.
func (s *stage2) distributeLabels() {
	s.edgePos = edgePositionsFromRotation(s.rotPorts, s.tree.ParentPort, s.api.Degree())

	per := s.labelElemsPerChunk()
	deadline := s.api.Round() + (s.budget+1)*(s.chunksPerLabel()+1) + 4

	sendToChildren := func() {
		// Stream each child its full label (ours plus its edge index),
		// one chunk per round per child, in lockstep across children.
		childLbl := make([]Label, len(s.tree.ChildPorts))
		for i, c := range s.tree.ChildPorts {
			childLbl[i] = append(append(make(Label, 0, len(s.label)+1), s.label...), s.edgePos[c])
		}
		maxLen := len(s.label) + 1
		chunks := (maxLen + per - 1) / per
		for ci := 0; ci < chunks; ci++ {
			for i, c := range s.tree.ChildPorts {
				lbl := childLbl[i]
				lo := ci * per
				hi := lo + per
				if hi > len(lbl) {
					hi = len(lbl)
				}
				s.api.Send(c, labelChunk{Elems: lbl[lo:hi], Last: ci == chunks-1})
			}
			s.api.NextRound()
		}
	}

	if s.tree.IsRoot() {
		s.label = Label{}
		sendToChildren()
	} else {
		done := false
		for !done && s.api.Round() < deadline {
			for _, in := range s.api.SleepUntil(deadline) {
				ch, ok := in.Msg.(labelChunk)
				if !ok || in.Port != s.tree.ParentPort {
					panic("core: unexpected message during labeling")
				}
				s.label = append(s.label, ch.Elems...)
				if ch.Last {
					done = true
				}
			}
		}
		if !done {
			panic("core: label wave under-budgeted")
		}
		sendToChildren()
	}
	s.api.Idle(deadline - s.api.Round())
}

// exchangeNonTreeLabels sends this node's per-edge attachment label
// (vertex label extended by the edge's rotation position), chunked, over
// every intra-part non-tree edge (both directions simultaneously).
func (s *stage2) exchangeNonTreeLabels() {
	s.nbrLabels = make([]Label, s.api.Degree())
	var ports []int
	for p, ok := range s.intra {
		if !ok || p == s.tree.ParentPort || isIn(s.tree.ChildPorts, p) {
			continue
		}
		ports = append(ports, p)
	}
	attach := make(map[int]Label, len(ports))
	for _, p := range ports {
		attach[p] = append(append(Label{}, s.label...), s.edgePos[p])
	}
	per := s.labelElemsPerChunk()
	llen := len(s.label) + 1
	chunks := (llen + per - 1) / per
	deadline := s.api.Round() + s.chunksPerLabel() + 3
	finished := make(map[int]bool)
	ci := 0
	for s.api.Round() < deadline {
		if ci < chunks {
			lo := ci * per
			hi := lo + per
			if hi > llen {
				hi = llen
			}
			for _, p := range ports {
				s.api.Send(p, labelChunk{Elems: attach[p][lo:hi], Last: ci == chunks-1})
			}
			ci++
		}
		var inbox []congest.Inbound
		if ci < chunks {
			inbox = s.api.NextRound()
		} else {
			inbox = s.api.SleepUntil(deadline)
		}
		for _, in := range inbox {
			ch, ok := in.Msg.(labelChunk)
			if !ok {
				panic("core: unexpected message during label exchange")
			}
			s.nbrLabels[in.Port] = append(s.nbrLabels[in.Port], ch.Elems...)
			if ch.Last {
				finished[in.Port] = true
			}
		}
	}
	for _, p := range ports {
		if !finished[p] {
			panic("core: label exchange under-budgeted")
		}
	}
}

func isIn(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// edgePositionsFromRotation computes, per intra-part port, the edge's
// attachment position: the counterclockwise walk order starting from the
// parent edge (the tree's outer-face walk order; see EdgePositions). All
// intra-part edges get positions; tree children extend vertex labels,
// non-tree edges extend attachment labels. The result is indexed by port
// (deg entries, -1 on ports without a position). Shared by both
// execution models.
func edgePositionsFromRotation(rotPorts []int, parentPort, deg int) []int32 {
	edgePos := make([]int32, deg)
	for i := range edgePos {
		edgePos[i] = -1
	}
	start := 0
	if parentPort >= 0 {
		for i, p := range rotPorts {
			if p == parentPort {
				start = i
				break
			}
		}
	}
	for k := 0; k < len(rotPorts); k++ {
		p := rotPorts[((start-k)%len(rotPorts)+len(rotPorts))%len(rotPorts)]
		edgePos[p] = int32(k)
		if parentPort < 0 {
			edgePos[p] = int32(k) + 1
		}
	}
	return edgePos
}

// assignedNonTree returns the labeled pairs of this node's assigned
// non-tree edges, using attachment labels at both endpoints. The result
// is computed once and cached (both the sampling and the violation-check
// steps read it).
func (s *stage2) assignedNonTree() []LabeledEdge {
	if !s.haveNonTree {
		s.nonTree = assignedNonTreeEdges(s.assigned, s.tree, s.nbrLabels, s.label, s.edgePos)
		s.haveNonTree = true
	}
	return s.nonTree
}

// assignedNonTreeEdges is the shared implementation of assignedNonTree.
// All of this node's attachment labels (own label plus one position
// element) are carved out of a single backing array.
func assignedNonTreeEdges(assigned []int, tree congest.Tree, nbrLabels []Label, label Label, edgePos []int32) []LabeledEdge {
	cnt := 0
	for _, p := range assigned {
		if p == tree.ParentPort || isIn(tree.ChildPorts, p) {
			continue
		}
		cnt++
	}
	if cnt == 0 {
		return nil
	}
	out := make([]LabeledEdge, 0, cnt)
	llen := len(label) + 1
	backing := make([]int32, 0, cnt*llen)
	for _, p := range assigned {
		if p == tree.ParentPort || isIn(tree.ChildPorts, p) {
			continue
		}
		nl := nbrLabels[p]
		if nl == nil {
			panic("core: missing neighbor label on assigned non-tree edge")
		}
		backing = append(append(backing, label...), edgePos[p])
		mine := Label(backing[len(backing)-llen:])
		out = append(out, NewLabeledEdge(mine, nl))
	}
	return out
}

// sampleAndShare samples Theta(log n / eps) non-tree edges uniformly,
// pipelines their label pairs to the root, and rebroadcasts them to the
// whole part (§2.2.2). Every node returns the sampled label pairs.
func (s *stage2) sampleAndShare() []LabeledEdge {
	mt := s.partM - (s.partN - 1) // non-tree edge count m~
	want := sampleWant(s.opts, s.api.N())
	capEdges := int(4*want) + 8
	chunksPer := 2*s.chunksPerLabel() + 2

	var items []congest.Message
	if mt > 0 {
		items = buildSampleChunks(s.assignedNonTree(), want/float64(mt),
			s.labelElemsPerChunk(), s.api.ID(), s.api.Rand())
	}
	budget := capEdges*chunksPer + s.budget + 6
	up, _ := s.tree.PipelineUp(s.api, s.api.Round()+budget, items)
	// The root truncates an oversampled collection (a 1/poly(n) tail
	// event; the run then degrades gracefully, never rejecting wrongly).
	if s.tree.IsRoot() && len(up) > capEdges*chunksPer {
		up = up[:capEdges*chunksPer]
	}
	down, _ := s.tree.BroadcastItemsDown(s.api, s.api.Round()+budget, up)
	return collectSamples(down)
}

// buildSampleChunks samples each assigned non-tree edge with probability p
// and chunks the selected label pairs (shared by both execution models;
// the RNG draw order is part of the deterministic schedule).
func buildSampleChunks(mine []LabeledEdge, p float64, per int, id int64, rng *rand.Rand) []congest.Message {
	var items []congest.Message
	for ei, le := range mine {
		if p < 1 && rng.Float64() >= p {
			continue
		}
		elems := labelElems(le.U, le.V)
		total := (len(elems) + per - 1) / per
		for ci := 0; ci < total; ci++ {
			lo := ci * per
			hi := lo + per
			if hi > len(elems) {
				hi = len(elems)
			}
			items = append(items, &sampleChunk{
				Owner: id,
				EIdx:  int32(ei),
				CIdx:  int32(ci),
				Last:  ci == total-1,
				Elems: elems[lo:hi],
			})
		}
	}
	return items
}

// sampleScratch pools the chunk-reassembly scratch of reassembleSamples.
var sampleScratch = sync.Pool{
	New: func() any { return new([]*sampleChunk) },
}

// collectSamples reassembles the scattered sample chunks into label pairs
// (shared by both execution models). Every node of a part receives the
// same stream of shared chunk boxes in the same order, so the reassembly
// — dominated by the (owner, edge, chunk) sort — runs once per part: the
// stream's first box hosts the memo and the rest of the part reuses it.
// The returned edges are therefore shared, read-only data. A stream whose
// first box is not a chunk (or a restored stream, whose boxes are decoded
// per node) falls back to reassembling locally.
func collectSamples(down []congest.Message) []LabeledEdge {
	if len(down) == 0 {
		return nil
	}
	if first, ok := down[0].(*sampleChunk); ok {
		first.memoOnce.Do(func() { first.memo = reassembleSamples(down) })
		return first.memo
	}
	return reassembleSamples(down)
}

// reassembleSamples is the uncached reassembly behind collectSamples.
// Only the scratch is pooled; the returned edges own their label storage.
func reassembleSamples(down []congest.Message) []LabeledEdge {
	scratch := sampleScratch.Get().(*[]*sampleChunk)
	chunks := (*scratch)[:0]
	if cap(chunks) < len(down) {
		chunks = make([]*sampleChunk, 0, len(down))
	}
	for _, it := range down {
		if sc, ok := it.(*sampleChunk); ok {
			chunks = append(chunks, sc)
		}
	}
	defer func() {
		clear(chunks) // drop chunk references before pooling
		*scratch = chunks[:0]
		sampleScratch.Put(scratch)
	}()
	// One global (owner, edge, chunk) sort replaces the per-edge grouping
	// map; chunk keys are unique, so the grouped order is identical.
	slices.SortFunc(chunks, func(a, b *sampleChunk) int {
		if c := cmp.Compare(a.Owner, b.Owner); c != 0 {
			return c
		}
		if c := cmp.Compare(a.EIdx, b.EIdx); c != 0 {
			return c
		}
		return cmp.Compare(a.CIdx, b.CIdx)
	})
	// All reassembled label pairs share one backing array (the returned
	// edges alias it), so reassembly costs two allocations per call, not
	// two per sample.
	total := 0
	for _, c := range chunks {
		total += len(c.Elems)
	}
	backing := make([]int32, 0, total)
	var out []LabeledEdge
	for lo := 0; lo < len(chunks); {
		hi := lo + 1
		for hi < len(chunks) && chunks[hi].Owner == chunks[lo].Owner && chunks[hi].EIdx == chunks[lo].EIdx {
			hi++
		}
		cs := chunks[lo:hi]
		lo = hi
		if !cs[len(cs)-1].Last {
			continue // truncated edge; skip
		}
		start := len(backing)
		for _, c := range cs {
			backing = append(backing, c.Elems...)
		}
		if le, ok := parseLabelPair(backing[start:]); ok {
			out = append(out, le)
		}
	}
	return out
}

// detectViolations checks every assigned non-tree edge against every
// sampled edge for the crossing condition of Definition 7.
func (s *stage2) detectViolations(samples []LabeledEdge) bool {
	for _, mine := range s.assignedNonTree() {
		for _, sm := range samples {
			if Intersects(mine, sm) {
				return true
			}
		}
	}
	return false
}
