package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/planar"
)

// TestPaperClaim10Counterexample documents an erratum in the paper.
//
// Claim 10 states that a planar part with an embedding-consistent
// labeling has no violating edges, where Definition 7 compares the plain
// VERTEX labels ℓ(u), ℓ(v) of non-tree edge endpoints. That statement is
// false: a non-tree edge can attach to a node v at a rotation position
// behind v's subtree, while ℓ(v) marks the subtree's start, producing an
// interval crossing on a genuinely planar input. The 9-node instance
// below exhibits such a crossing under both the clockwise and the
// counterclockwise child-ordering convention.
//
// The fix implemented in this package labels each non-tree endpoint by
// its ATTACHMENT position (vertex label extended by the edge's index in
// the counterclockwise-from-parent rotation). Correctness then follows
// from the tree-contour argument: the complement of an embedded spanning
// tree is a single disk whose boundary walk visits the attachment points
// exactly in label order, so the non-tree edges of a planar embedding are
// pairwise non-crossing chords of that disk. Soundness (Claim 8 and
// Corollary 9) carries over unchanged.
func TestPaperClaim10Counterexample(t *testing.T) {
	b := graph.NewBuilder(9)
	for _, e := range [][2]int{
		{0, 3}, {0, 5}, {0, 6}, {1, 3}, {1, 4}, {2, 4}, {2, 6},
		{2, 7}, {2, 8}, {3, 5}, {3, 7}, {3, 8}, {5, 6}, {7, 8},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	if !planar.IsPlanar(g) {
		t.Fatal("counterexample graph must be planar")
	}
	emb, err := planar.Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(g); err != nil {
		t.Fatal(err)
	}
	root := 7
	parent := g.BFS(root).Parent

	// Under the paper's literal vertex-label definition, the pair of
	// non-tree edges {2,8} and {1,4} (or {3,8} and {1,4} under the
	// mirrored convention) crosses even though the graph is planar.
	labels := ComputeLabels(g, root, parent, emb)
	paperViolations := 0
	nt := NonTreeEdges(g, parent)
	for i := 0; i < len(nt); i++ {
		for j := i + 1; j < len(nt); j++ {
			ei := NewLabeledEdge(labels[nt[i].U], labels[nt[i].V])
			ej := NewLabeledEdge(labels[nt[j].U], labels[nt[j].V])
			if Intersects(ei, ej) {
				paperViolations++
			}
		}
	}
	if paperViolations == 0 {
		t.Fatal("expected the literal Claim 10 labeling to produce a false violation; " +
			"if this stops failing, the counterexample needs updating")
	}

	// With attachment labels, the planar input has zero violations.
	viol, _ := CountViolations(g, root, parent, emb)
	if viol != 0 {
		t.Fatalf("attachment-label construction reports %d violations on a planar graph", viol)
	}
}

// TestAttachmentLabelsNoViolationsSweep runs the corrected construction
// over many random planar graphs and roots: zero violations always.
func TestAttachmentLabelsNoViolationsSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(40)
		m := n - 1 + rng.Intn(2*n)
		if m > 3*n-6 {
			m = 3*n - 6
		}
		g := graph.RandomPlanar(n, m, rng)
		emb, err := planar.Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		root := rng.Intn(n)
		viol, _ := CountViolations(g, root, g.BFS(root).Parent, emb)
		if viol != 0 {
			t.Fatalf("trial %d: %d violations on planar n=%d m=%d root=%d", trial, viol, n, m, root)
		}
	}
}
