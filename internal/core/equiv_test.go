package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// TestTesterEngineEquivalence proves that the all-native execution path
// (step-model partitioning chained into the step-model Stage II) and the
// all-blocking path produce byte-identical RunResults for fixed seeds on
// accepting and rejecting inputs across ≥3 graph families and every
// partitioning configuration — deterministic, randomized, and the
// Elkin–Neiman baseline (issue acceptance criterion).
func TestTesterEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	far, _ := graph.PlanarPlusRandomEdges(60, 50, rng)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(8, 8)},
		{"far-from-planar", far},
		{"tree-plus-edges", graph.TreePlusRandomEdges(70, 20, rand.New(rand.NewSource(8)))},
		{"cycle", graph.Cycle(33)},
	}
	optsList := []Options{
		{Epsilon: 0.25},
		{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}},
		{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Variant: partition.Randomized, Schedule: partition.PracticalSchedule}},
		{Epsilon: 0.25, UseEN: true},
	}
	for _, fam := range families {
		for oi, opts := range optsList {
			for seed := int64(0); seed < 3; seed++ {
				hr, hErr := RunTester(fam.g, opts, seed)
				br, bErr := RunTesterBlocking(fam.g, opts, seed)
				if (hErr == nil) != (bErr == nil) {
					t.Fatalf("%s/opts%d/seed%d: err mismatch: hybrid=%v blocking=%v", fam.name, oi, seed, hErr, bErr)
				}
				if hErr != nil {
					continue
				}
				if !reflect.DeepEqual(hr, br) {
					t.Fatalf("%s/opts%d/seed%d: result mismatch:\nhybrid:   %+v\nblocking: %+v",
						fam.name, oi, seed, hr, br)
				}
			}
		}
	}
}
