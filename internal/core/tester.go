package core

import (
	"math/rand"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Options configures the end-to-end planarity tester (Theorem 1).
type Options struct {
	// Epsilon is the distance parameter: graphs eps-far from planarity
	// (more than eps*m edge removals needed) are rejected whp.
	Epsilon float64
	// Partition overrides the Stage I options (zero value: deterministic
	// Stage I with edge-cut parameter Epsilon).
	Partition partition.Options
	// UseEN replaces Stage I with the Elkin–Neiman-style random-shift
	// clustering (the O(log^2 n)-round variant of §1.1; experiment E11).
	UseEN bool
	// StageII overrides the Stage II options (zero value: derived from
	// Epsilon).
	StageII StageIIOptions
	// Workers is passed through to congest.Config.Workers: the number of
	// engine worker goroutines stepping due nodes within a barrier
	// (0: GOMAXPROCS). Results are byte-identical for every value.
	Workers int
	// Cancel is passed through to congest.Config.Cancel: when it becomes
	// readable the run aborts with congest.ErrCanceled. Pass a context's
	// Done() channel; nil disables cancellation.
	Cancel <-chan struct{}
	// Deadline is passed through to congest.Config.Deadline: a non-zero
	// wall-clock instant after which the run aborts with
	// congest.ErrDeadlineExceeded at the next barrier.
	Deadline time.Time
	// Checkpoint is passed through to congest.Config.Checkpoint: a
	// configured sink receives periodic engine snapshots that
	// ResumeTester can continue from.
	Checkpoint congest.CheckpointConfig
	// Probe, when non-nil, enables per-phase attribution on the step
	// execution path: Stage I announces one phase per merging phase and
	// Stage II announces its prelude and op-script phases, so
	// RunResult.Phases reports where the run spent its wall time, wakes,
	// barriers, messages, and bits. All deterministic result fields are
	// byte-identical with and without a probe. Phase names are interned on
	// the probe before the run starts; reusing one probe across runs
	// accumulates nothing (stats live in the engine), but is only safe
	// sequentially.
	Probe *obs.Probe
	// Trace, when non-nil, receives structured run events (phase
	// transitions, checkpoints, fast-forward windows, merge decisions,
	// abort/end) as they happen. Tracing requires Probe to attribute
	// phase events; without one, only run-level events are emitted.
	Trace obs.TraceSink
	// Progress, when non-nil, is updated at every engine barrier with the
	// current round, barrier count, and phase; readers may snapshot it
	// concurrently (planard serves it on GET /v1/jobs/{id}).
	Progress *obs.Progress
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		panic("core: Epsilon must be in (0,1]")
	}
	if o.Partition.Epsilon == 0 {
		o.Partition.Epsilon = o.Epsilon
	}
	if o.StageII.Epsilon == 0 {
		o.StageII.Epsilon = o.Epsilon / 2 // parts are (eps/2)-far (Claim 3)
	}
	if o.Probe != nil {
		// Intern the Stage II phases here and hand the probe to Stage I,
		// whose plan compiler interns the per-phase names. Interning is
		// idempotent, so calling withDefaults more than once (or resuming
		// a run with a fresh probe) yields the same name set.
		o.StageII.partCtxPhase = o.Probe.Phase("stage2/partctx")
		o.StageII.opsPhase = o.Probe.Phase("stage2/ops")
		o.Partition.Probe = o.Probe
	}
	return o
}

// TestPlanarity is the complete one-sided distributed planarity tester:
// Stage I partitions the graph (or the EN baseline does), Stage II checks
// each part. Every node outputs accept or reject; on planar inputs every
// node accepts, and on eps-far inputs at least one node rejects whp.
func TestPlanarity(api *congest.API, opts Options) congest.Verdict {
	opts = opts.withDefaults()
	var po *partition.Outcome
	if opts.UseEN {
		po = partition.RunElkinNeiman(api, opts.Partition.Epsilon)
	} else {
		po = partition.RunStageI(api, opts.Partition)
	}
	v := RunStageII(api, po, opts.StageII)
	if po.Rejected {
		v = congest.VerdictReject // already output during Stage I
	}
	if v != congest.VerdictReject {
		api.Output(congest.VerdictAccept)
	}
	return api.Verdict()
}

// RunResult summarizes one tester execution.
type RunResult struct {
	Rejected   bool
	RejectedBy int // number of rejecting nodes
	Metrics    congest.Metrics
	// Phases is the per-phase attribution table; non-nil exactly when the
	// run was configured with an Options.Probe.
	Phases obs.PhaseBreakdown
}

// RunTester executes the full tester on g with the given seed and returns
// the global verdict and metrics. It uses StopOnReject semantics: the run
// ends at the first reject.
//
// Every Options combination — deterministic or randomized Stage I, or the
// Elkin–Neiman baseline — runs on the engine's native step execution
// model: the partitioning stage hands each node over to the Stage II
// state machine at the exact round it completes for its part, so the
// whole tester runs with zero goroutines and zero channel operations.
// Both paths produce byte-identical results for a fixed seed
// (TestTesterEngineEquivalence); RunTesterBlocking forces the goroutine
// compatibility path, which only the equivalence tests use.
func RunTester(g *graph.Graph, opts Options, seed int64) (*RunResult, error) {
	o := opts.withDefaults()
	if o.UseEN {
		res, err := congest.RunStep(testerConfig(g, seed, o), func(node int) congest.StepProgram {
			return partition.NewENNode(o.Partition.Epsilon, func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
				return congest.BecomeStep(NewStageIINode(po, o.StageII))
			})
		})
		return newRunResult(res, err)
	}
	plan := partition.NewStageIPlan(o.Partition, g.N())
	res, err := congest.RunStep(testerConfig(g, seed, o), func(node int) congest.StepProgram {
		return plan.NewNode(func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
			return congest.BecomeStep(NewStageIINode(po, o.StageII))
		})
	})
	return newRunResult(res, err)
}

// RunTesterBlocking executes the full tester on the blocking
// compatibility path (one goroutine per node); kept for the
// engine-equivalence tests.
func RunTesterBlocking(g *graph.Graph, opts Options, seed int64) (*RunResult, error) {
	res, err := congest.Run(testerConfig(g, seed, opts), func(api *congest.API) {
		TestPlanarity(api, opts)
	})
	return newRunResult(res, err)
}

func testerConfig(g *graph.Graph, seed int64, opts Options) congest.Config {
	ids := make([]int64, g.N())
	rng := rand.New(rand.NewSource(seed ^ 0x7A31))
	for i, p := range rng.Perm(g.N()) {
		ids[i] = int64(p + 1)
	}
	return congest.Config{
		Graph:        g,
		Seed:         seed,
		IDs:          ids,
		StopOnReject: true,
		MaxRounds:    1 << 40,
		Workers:      opts.Workers,
		Cancel:       opts.Cancel,
		Deadline:     opts.Deadline,
		Checkpoint:   opts.Checkpoint,
		Probe:        opts.Probe,
		Trace:        opts.Trace,
		Progress:     opts.Progress,
	}
}

func newRunResult(res *congest.Result, err error) (*RunResult, error) {
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Rejected:   res.Rejected(),
		RejectedBy: res.RejectCount(),
		Metrics:    res.Metrics,
		Phases:     res.Phases,
	}, nil
}

// DetectionRate runs the tester on g with `trials` different seeds and
// returns the fraction of runs that rejected (experiment E2).
func DetectionRate(g *graph.Graph, opts Options, trials int, baseSeed int64) (float64, error) {
	rejected := 0
	for t := 0; t < trials; t++ {
		r, err := RunTester(g, opts, baseSeed+int64(t)*7919)
		if err != nil {
			return 0, err
		}
		if r.Rejected {
			rejected++
		}
	}
	return float64(rejected) / float64(trials), nil
}
