package core

import (
	"math/rand"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Options configures the end-to-end planarity tester (Theorem 1).
type Options struct {
	// Epsilon is the distance parameter: graphs eps-far from planarity
	// (more than eps*m edge removals needed) are rejected whp.
	Epsilon float64
	// Partition overrides the Stage I options (zero value: deterministic
	// Stage I with edge-cut parameter Epsilon).
	Partition partition.Options
	// UseEN replaces Stage I with the Elkin–Neiman-style random-shift
	// clustering (the O(log^2 n)-round variant of §1.1; experiment E11).
	UseEN bool
	// StageII overrides the Stage II options (zero value: derived from
	// Epsilon).
	StageII StageIIOptions
	// Workers is passed through to congest.Config.Workers: the number of
	// engine worker goroutines stepping due nodes within a barrier
	// (0: GOMAXPROCS). Results are byte-identical for every value.
	Workers int
	// Cancel is passed through to congest.Config.Cancel: when it becomes
	// readable the run aborts with congest.ErrCanceled. Pass a context's
	// Done() channel; nil disables cancellation.
	Cancel <-chan struct{}
	// Deadline is passed through to congest.Config.Deadline: a non-zero
	// wall-clock instant after which the run aborts with
	// congest.ErrDeadlineExceeded at the next barrier.
	Deadline time.Time
	// Checkpoint is passed through to congest.Config.Checkpoint: a
	// configured sink receives periodic engine snapshots that
	// ResumeTester can continue from.
	Checkpoint congest.CheckpointConfig
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		panic("core: Epsilon must be in (0,1]")
	}
	if o.Partition.Epsilon == 0 {
		o.Partition.Epsilon = o.Epsilon
	}
	if o.StageII.Epsilon == 0 {
		o.StageII.Epsilon = o.Epsilon / 2 // parts are (eps/2)-far (Claim 3)
	}
	return o
}

// TestPlanarity is the complete one-sided distributed planarity tester:
// Stage I partitions the graph (or the EN baseline does), Stage II checks
// each part. Every node outputs accept or reject; on planar inputs every
// node accepts, and on eps-far inputs at least one node rejects whp.
func TestPlanarity(api *congest.API, opts Options) congest.Verdict {
	opts = opts.withDefaults()
	var po *partition.Outcome
	if opts.UseEN {
		po = partition.RunElkinNeiman(api, opts.Partition.Epsilon)
	} else {
		po = partition.RunStageI(api, opts.Partition)
	}
	v := RunStageII(api, po, opts.StageII)
	if po.Rejected {
		v = congest.VerdictReject // already output during Stage I
	}
	if v != congest.VerdictReject {
		api.Output(congest.VerdictAccept)
	}
	return api.Verdict()
}

// RunResult summarizes one tester execution.
type RunResult struct {
	Rejected   bool
	RejectedBy int // number of rejecting nodes
	Metrics    congest.Metrics
}

// RunTester executes the full tester on g with the given seed and returns
// the global verdict and metrics. It uses StopOnReject semantics: the run
// ends at the first reject.
//
// Every Options combination — deterministic or randomized Stage I, or the
// Elkin–Neiman baseline — runs on the engine's native step execution
// model: the partitioning stage hands each node over to the Stage II
// state machine at the exact round it completes for its part, so the
// whole tester runs with zero goroutines and zero channel operations.
// Both paths produce byte-identical results for a fixed seed
// (TestTesterEngineEquivalence); RunTesterBlocking forces the goroutine
// compatibility path, which only the equivalence tests use.
func RunTester(g *graph.Graph, opts Options, seed int64) (*RunResult, error) {
	o := opts.withDefaults()
	if o.UseEN {
		res, err := congest.RunStep(testerConfig(g, seed, o), func(node int) congest.StepProgram {
			return partition.NewENNode(o.Partition.Epsilon, func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
				return congest.BecomeStep(NewStageIINode(po, o.StageII))
			})
		})
		return newRunResult(res, err)
	}
	plan := partition.NewStageIPlan(o.Partition, g.N())
	res, err := congest.RunStep(testerConfig(g, seed, o), func(node int) congest.StepProgram {
		return plan.NewNode(func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
			return congest.BecomeStep(NewStageIINode(po, o.StageII))
		})
	})
	return newRunResult(res, err)
}

// RunTesterBlocking executes the full tester on the blocking
// compatibility path (one goroutine per node); kept for the
// engine-equivalence tests.
func RunTesterBlocking(g *graph.Graph, opts Options, seed int64) (*RunResult, error) {
	res, err := congest.Run(testerConfig(g, seed, opts), func(api *congest.API) {
		TestPlanarity(api, opts)
	})
	return newRunResult(res, err)
}

func testerConfig(g *graph.Graph, seed int64, opts Options) congest.Config {
	ids := make([]int64, g.N())
	rng := rand.New(rand.NewSource(seed ^ 0x7A31))
	for i, p := range rng.Perm(g.N()) {
		ids[i] = int64(p + 1)
	}
	return congest.Config{
		Graph:        g,
		Seed:         seed,
		IDs:          ids,
		StopOnReject: true,
		MaxRounds:    1 << 40,
		Workers:      opts.Workers,
		Cancel:       opts.Cancel,
		Deadline:     opts.Deadline,
		Checkpoint:   opts.Checkpoint,
	}
}

func newRunResult(res *congest.Result, err error) (*RunResult, error) {
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Rejected:   res.Rejected(),
		RejectedBy: res.RejectCount(),
		Metrics:    res.Metrics,
	}, nil
}

// DetectionRate runs the tester on g with `trials` different seeds and
// returns the fraction of runs that rejected (experiment E2).
func DetectionRate(g *graph.Graph, opts Options, trials int, baseSeed int64) (float64, error) {
	rejected := 0
	for t := 0; t < trials; t++ {
		r, err := RunTester(g, opts, baseSeed+int64(t)*7919)
		if err != nil {
			return 0, err
		}
		if r.Rejected {
			rejected++
		}
	}
	return float64(rejected) / float64(trials), nil
}
