package core

import (
	"repro/internal/congest"
	"repro/internal/partition"
)

// This file is the native StepProgram port of Stage II (stage2.go); its
// per-node state is engine-"cold" (one object per node behind the
// StepProgram interface, see DESIGN.md §8) and every per-wake access
// goes through the slab-backed StepAPI. The
// §2.2.1 preprocessing (budget, boundary round, BFS, edge assignment) is
// the shared PartCtxStep prelude in partctx_step.go; the remaining
// schedule here is a linear script of tree operations (driven by the step
// state machines of package congest), single exchange rounds, and two
// message-driven label-stream windows.
// The port is round-exact: it sends the same messages in the same rounds,
// draws the same per-node randomness in the same order, and calls Output
// at the same rounds as the blocking implementation, so the hybrid tester
// produces byte-identical Results (TestTesterEngineEquivalence). Local
// computation is shared with the blocking path (embedRotationItems,
// edgePositionsFromRotation, buildSampleChunks, collectSamples, ...).

type s2op uint8

const (
	o2CountUp    s2op = iota // cvg: (n, m) counts
	o2CountDown              // bcast: counts + Euler decision
	o2GatherUp               // pipeline: edge list to the root
	o2Scatter                // stream: rotation items down (root embeds)
	o2Labels                 // window: vertex label wave
	o2Exchange               // window: non-tree attachment label swap
	o2SampleUp               // pipeline: sampled label pairs to the root
	o2SampleDown             // stream: samples to the whole part
	o2Finish                 // local: violation checks + verdict
)

// NewStageIINode returns the native Stage II continuation for a node with
// the given Stage I outcome. It is the step counterpart of RunStageII plus
// the TestPlanarity verdict wrap-up. The §2.2.1 preprocessing runs as the
// shared PartCtxStep prelude (partctx_step.go) — the same machine the
// minor-free testers chain from — which then hands over to the Stage II
// op script in the same round.
func NewStageIINode(part *partition.Outcome, opts StageIIOptions) congest.StepProgram {
	o := opts.withDefaults()
	c := NewPartCtxStep(part, stageIIHandoff(part, o))
	c.phase = o.partCtxPhase
	return c
}

// stageIIHandoff is the prelude-done callback that becomes the Stage II
// machine; shared by NewStageIINode and the checkpoint-restore path
// (snapshot.go), which must reinstall the exact same continuation.
func stageIIHandoff(part *partition.Outcome, o StageIIOptions) func(api *congest.StepAPI, c *PartCtxStep) congest.Status {
	return func(api *congest.StepAPI, c *PartCtxStep) congest.Status {
		return congest.BecomeStep(&stage2Node{
			part:     part,
			opts:     o,
			budget:   c.budget,
			maxDepth: c.maxDepth,
			intra:    c.intra,
			nbrID:    c.nbrID,
			nbrLvl:   c.nbrLvl,
			tree:     c.tree,
			level:    c.level,
			assigned: c.assigned,
		})
	}
}

type stage2Node struct {
	part *partition.Outcome
	opts StageIIOptions

	pc       s2op
	inOp     bool
	restored bool // decoded from a checkpoint; machines need reattaching

	bd  congest.BroadcastDownStep
	cv  congest.ConvergecastStep
	pu  congest.PipelineUpStep
	bid congest.BroadcastItemsDownStep
	reg congest.Message // result register between dependent ops

	// Mirror of the blocking stage2 state. edgePos and nbrLabels are
	// port-indexed slices (the step port interns all per-port lookups).
	budget    int
	maxDepth  int
	intra     []bool
	nbrID     []int64
	nbrLvl    []int64
	tree      congest.Tree
	level     int64
	assigned  []int
	partN     int64
	partM     int64
	rotPorts  []int
	label     Label
	edgePos   []int32
	nbrLabels []Label

	// Window state (label wave / label exchange). Outgoing labels share
	// the node's own label as their prefix: every child's (or non-tree
	// neighbor's) label differs from it only in the final element, so all
	// chunks but the last slice s.label directly and only the per-port
	// tails live in the tails backing array (see startLabelStream).
	deadline  int
	per       int
	chunks    int
	ci        int
	tails     []int32 // per target: label[tailLo:] + final element
	tailLo    int     // label offset covered by the tails
	streaming bool
	gotAll    bool
	xPorts    []int
	finished  []bool

	// Cached assigned non-tree attachment-label pairs (shared by the
	// sampling and violation-check steps).
	nonTree     []LabeledEdge
	haveNonTree bool

	// Sampling state.
	capChunks int // capEdges * chunksPer truncation bound
	sBudget   int
	samples   []LabeledEdge
	verdict   congest.Verdict
}

// Step advances the linear Stage II script; completed ops chain into the
// next one within the same wake (ops complete exactly at their deadline).
func (s *stage2Node) Step(api *congest.StepAPI, inbox []congest.Inbound) congest.Status {
	// Announce the op-script phase from the entry state only (first op,
	// not yet begun) — the same resume-safe pattern as PartCtxStep.Step.
	if s.opts.opsPhase != 0 && s.pc == o2CountUp && !s.inOp {
		api.PhaseEnter(s.opts.opsPhase)
	}
	if s.restored {
		s.restored = false
		s.reattach(api)
	}
	for {
		switch s.pc {
		case o2CountUp:
			if !s.inOp {
				own := countsMsg{N: 1, M: int64(len(s.assigned))}
				if !s.cv.Begin(api, s.tree, api.Round()+s.budget+2, own, combineCounts) {
					s.inOp = true
					return s.cv.Wake()
				}
			} else if !s.cv.Feed(api, inbox) {
				return s.cv.Wake()
			} else {
				s.inOp = false
			}
			agg, ok := s.cv.Result()
			if !ok {
				panic("core: counts convergecast under-budgeted")
			}
			s.reg = agg
			s.pc = o2CountDown

		case o2CountDown:
			if !s.inOp {
				c := s.reg.(countsMsg)
				if s.tree.IsRoot() {
					c.Reject = c.N >= 3 && c.M > 3*c.N-6
				}
				if !s.bd.Begin(api, s.tree, api.Round()+s.budget+2, c, nil) {
					s.inOp = true
					return s.bd.Wake()
				}
			} else if !s.bd.Feed(api, inbox) {
				return s.bd.Wake()
			} else {
				s.inOp = false
			}
			res, ok := s.bd.Result()
			if !ok {
				panic("core: counts broadcast under-budgeted")
			}
			rc := res.(countsMsg)
			s.partN = rc.N
			s.partM = rc.M
			if rc.Reject {
				s.verdict = congest.VerdictAccept
				if s.tree.IsRoot() {
					api.Output(congest.VerdictReject)
					s.verdict = congest.VerdictReject
				}
				s.pc = o2Finish
				continue
			}
			if s.partM == 0 || s.partN <= 2 {
				s.verdict = congest.VerdictAccept // trivially planar part
				s.pc = o2Finish
				continue
			}
			s.pc = o2GatherUp

		case o2GatherUp:
			if !s.inOp {
				items := make([]congest.Message, 0, len(s.assigned))
				for _, p := range s.assigned {
					items = append(items, edgeItem{A: api.ID(), B: s.nbrID[p]})
				}
				gatherBudget := int(s.partM) + s.budget + 4
				if !s.pu.Begin(api, s.tree, api.Round()+gatherBudget, items) {
					s.inOp = true
					return s.pu.Wake()
				}
			} else if !s.pu.Feed(api, inbox) {
				return s.pu.Wake()
			} else {
				s.inOp = false
			}
			collected, ok := s.pu.Result()
			if s.tree.IsRoot() && !ok {
				panic("core: edge gather under-budgeted")
			}
			if s.tree.IsRoot() {
				s.reg = edgeListMsg{items: collected}
			}
			s.pc = o2Scatter

		case o2Scatter:
			if !s.inOp {
				var out []congest.Message
				strictFail := false
				if s.tree.IsRoot() {
					collected := s.reg.(edgeListMsg).items
					out, strictFail = embedRotationItems(collected, api.ID(), s.partN, s.opts)
					api.ChargeModeledRounds(modeledEmbedRounds(api.N(), s.maxDepth))
				}
				if strictFail {
					out = []congest.Message{embedFail{}}
				}
				// Only this node's rotation entries (plus any control
				// message) are retained; forwarding is unaffected, so the
				// whole part's stream no longer lives in every node.
				id := api.ID()
				s.bid.Keep = func(m congest.Message) bool {
					r, ok := m.(rotItem)
					return !ok || r.Node == id
				}
				scatterBudget := int(2*s.partM) + s.budget + 6
				if !s.bid.Begin(api, s.tree, api.Round()+scatterBudget, out) {
					s.inOp = true
					return s.bid.Wake()
				}
			} else if !s.bid.Feed(api, inbox) {
				return s.bid.Wake()
			} else {
				s.inOp = false
			}
			got, ok := s.bid.Result()
			if !ok {
				panic("core: rotation scatter under-budgeted")
			}
			if len(got) == 1 {
				if _, fail := got[0].(embedFail); fail {
					s.verdict = congest.VerdictAccept
					if s.tree.IsRoot() {
						api.Output(congest.VerdictReject)
						s.verdict = congest.VerdictReject
					}
					s.pc = o2Finish
					continue
				}
			}
			s.rotPorts = rotationPorts(got, api.ID(), s.intra, s.nbrID)
			s.pc = o2Labels

		case o2Labels:
			if !s.inOp {
				s.beginLabels(api)
				s.inOp = true
				return s.labelsWake()
			}
			done, st := s.feedLabels(api, inbox)
			if !done {
				return st
			}
			s.inOp = false
			s.pc = o2Exchange

		case o2Exchange:
			if !s.inOp {
				s.beginExchange(api)
				s.inOp = true
				return s.exchangeWake()
			}
			done, st := s.feedExchange(api, inbox)
			if !done {
				return st
			}
			s.inOp = false
			s.pc = o2SampleUp

		case o2SampleUp:
			if !s.inOp {
				mt := s.partM - (s.partN - 1)
				want := sampleWant(s.opts, api.N())
				capEdges := int(4*want) + 8
				chunksPer := 2*chunksPerLabelFor(s.budget, s.per) + 2
				s.capChunks = capEdges * chunksPer
				s.sBudget = s.capChunks + s.budget + 6
				var items []congest.Message
				if mt > 0 {
					items = buildSampleChunks(s.assignedNonTree(), want/float64(mt), s.per, api.ID(), api.Rand())
				}
				if !s.pu.Begin(api, s.tree, api.Round()+s.sBudget, items) {
					s.inOp = true
					return s.pu.Wake()
				}
			} else if !s.pu.Feed(api, inbox) {
				return s.pu.Wake()
			} else {
				s.inOp = false
			}
			up, _ := s.pu.Result()
			if s.tree.IsRoot() {
				s.reg = edgeListMsg{items: up}
			}
			s.pc = o2SampleDown

		case o2SampleDown:
			if !s.inOp {
				var up []congest.Message
				if s.tree.IsRoot() {
					up = s.reg.(edgeListMsg).items
					if len(up) > s.capChunks {
						// Oversampling tail event: truncate, and clear the
						// dropped entries so the backing array does not
						// keep their chunks live for the whole stream.
						clear(up[s.capChunks:])
						up = up[:s.capChunks]
					}
				}
				s.bid.Keep = nil // every node needs the full sample stream
				if !s.bid.Begin(api, s.tree, api.Round()+s.sBudget, up) {
					s.inOp = true
					return s.bid.Wake()
				}
			} else if !s.bid.Feed(api, inbox) {
				return s.bid.Wake()
			} else {
				s.inOp = false
			}
			down, _ := s.bid.Result()
			s.samples = collectSamples(down)
			s.pc = o2Finish

			// Step K: local violation checks (Definition 7).
			s.verdict = congest.VerdictAccept
		detect:
			for _, m := range s.assignedNonTree() {
				for _, sm := range s.samples {
					if Intersects(m, sm) {
						api.Output(congest.VerdictReject)
						s.verdict = congest.VerdictReject
						break detect
					}
				}
			}

		case o2Finish:
			// TestPlanarity wrap-up: a Stage I rejection overrides, and
			// non-rejecting nodes accept.
			v := s.verdict
			if s.part.Rejected {
				v = congest.VerdictReject // already output during Stage I
			}
			if v != congest.VerdictReject {
				api.Output(congest.VerdictAccept)
			}
			return congest.Done()
		}
	}
}

// assignedNonTree returns this node's assigned non-tree attachment-label
// pairs, computed once and cached (the sampling and violation-check
// steps both read it).
func (s *stage2Node) assignedNonTree() []LabeledEdge {
	if !s.haveNonTree {
		s.nonTree = assignedNonTreeEdges(s.assigned, s.tree, s.nbrLabels, s.label, s.edgePos)
		s.haveNonTree = true
	}
	return s.nonTree
}

// edgeListMsg is an internal register wrapper (never sent) for passing an
// item slice between dependent ops.
type edgeListMsg struct{ items []congest.Message }

func (edgeListMsg) Bits() int { return 0 }

// beginLabels starts the label wave (the step port of distributeLabels).
func (s *stage2Node) beginLabels(api *congest.StepAPI) {
	s.edgePos = edgePositionsFromRotation(s.rotPorts, s.tree.ParentPort, api.Degree())
	s.per = labelElemsPerChunkFor(api.BitBound(), api.N())
	s.deadline = api.Round() + (s.budget+1)*(chunksPerLabelFor(s.budget, s.per)+1) + 4
	s.streaming = false
	s.gotAll = false
	if s.tree.IsRoot() {
		s.label = Label{}
		s.startLabelStream(api)
	}
}

// buildTails prepares the per-target tail chunks of an outgoing label
// wave over the given ports: the port's full outgoing label is s.label +
// edgePos[port], so every chunk but the last is a plain prefix slice of
// s.label (shared by all targets and by the in-flight messages — labels
// are immutable once streamed) and only the final chunk, label[tailLo:]
// plus the port's attachment element, needs materializing. All tails
// live in one backing array.
func (s *stage2Node) buildTails(ports []int) {
	llen := len(s.label) + 1
	s.chunks = (llen + s.per - 1) / s.per
	s.tailLo = (s.chunks - 1) * s.per
	tlen := llen - s.tailLo
	// Fresh backing per phase: the previous phase's tail chunks may still
	// sit in a recipient's mailbox at the phase boundary, so the old
	// array must not be overwritten.
	s.tails = make([]int32, 0, len(ports)*tlen)
	for _, p := range ports {
		s.tails = append(append(s.tails, s.label[s.tailLo:]...), s.edgePos[p])
	}
}

// tailChunk returns target k's final chunk.
func (s *stage2Node) tailChunk(k int) []int32 {
	tlen := len(s.label) + 1 - s.tailLo
	return s.tails[k*tlen : (k+1)*tlen]
}

// startLabelStream mirrors sendToChildren: the first chunk goes out in the
// current round, one chunk per round follows.
func (s *stage2Node) startLabelStream(api *congest.StepAPI) {
	s.buildTails(s.tree.ChildPorts)
	s.ci = 0
	s.streaming = true
	s.sendLabelChunk(api)
}

func (s *stage2Node) sendLabelChunk(api *congest.StepAPI) {
	last := s.ci == s.chunks-1
	if !last {
		// Prefix chunk: identical for every child — box one message.
		lo := s.ci * s.per
		m := congest.Message(labelChunk{Elems: s.label[lo : lo+s.per]})
		for _, c := range s.tree.ChildPorts {
			api.Send(c, m)
		}
	} else {
		for i, c := range s.tree.ChildPorts {
			api.Send(c, labelChunk{Elems: s.tailChunk(i), Last: true})
		}
	}
	s.ci++
}

func (s *stage2Node) labelsWake() congest.Status {
	if s.streaming {
		return congest.Running() // one chunk per round (NextRound cadence)
	}
	return congest.Sleep(s.deadline)
}

// feedLabels consumes one wake of the label wave.
func (s *stage2Node) feedLabels(api *congest.StepAPI, inbox []congest.Inbound) (bool, congest.Status) {
	if !s.tree.IsRoot() && !s.gotAll && !s.streaming {
		for _, in := range inbox {
			ch, ok := in.Msg.(labelChunk)
			if !ok || in.Port != s.tree.ParentPort {
				panic("core: unexpected message during labeling")
			}
			s.label = append(s.label, ch.Elems...)
			if ch.Last {
				s.gotAll = true
			}
		}
		if s.gotAll {
			s.startLabelStream(api)
			return false, s.labelsWake()
		}
		if api.Round() >= s.deadline {
			panic("core: label wave under-budgeted")
		}
		return false, congest.Sleep(s.deadline)
	}
	if s.streaming {
		if s.ci < s.chunks {
			s.sendLabelChunk(api)
		} else {
			s.streaming = false // one trailing round, as in the blocking loop
		}
	}
	if !s.streaming && api.Round() >= s.deadline {
		return true, congest.Status{}
	}
	return false, s.labelsWake()
}

// beginExchange starts the non-tree attachment label swap (the step port
// of exchangeNonTreeLabels). Attachment labels share s.label as their
// prefix exactly like the child labels of the wave, so only the per-port
// tails are materialized (buildTails).
func (s *stage2Node) beginExchange(api *congest.StepAPI) {
	s.nbrLabels = make([]Label, api.Degree())
	s.xPorts = s.xPorts[:0]
	for p, ok := range s.intra {
		if !ok || p == s.tree.ParentPort || isIn(s.tree.ChildPorts, p) {
			continue
		}
		s.xPorts = append(s.xPorts, p)
	}
	s.buildTails(s.xPorts)
	s.deadline = api.Round() + chunksPerLabelFor(s.budget, s.per) + 3
	s.finished = make([]bool, api.Degree())
	s.ci = 0
	s.sendExchangeChunk(api)
}

func (s *stage2Node) sendExchangeChunk(api *congest.StepAPI) {
	if s.ci >= s.chunks {
		return
	}
	last := s.ci == s.chunks-1
	if !last {
		lo := s.ci * s.per
		m := congest.Message(labelChunk{Elems: s.label[lo : lo+s.per]})
		for _, p := range s.xPorts {
			api.Send(p, m)
		}
	} else {
		for k, p := range s.xPorts {
			api.Send(p, labelChunk{Elems: s.tailChunk(k), Last: true})
		}
	}
	s.ci++
}

func (s *stage2Node) exchangeWake() congest.Status {
	if s.ci < s.chunks {
		return congest.Running()
	}
	return congest.Sleep(s.deadline)
}

// feedExchange consumes one wake of the label exchange.
func (s *stage2Node) feedExchange(api *congest.StepAPI, inbox []congest.Inbound) (bool, congest.Status) {
	for _, in := range inbox {
		ch, ok := in.Msg.(labelChunk)
		if !ok {
			panic("core: unexpected message during label exchange")
		}
		s.nbrLabels[in.Port] = append(s.nbrLabels[in.Port], ch.Elems...)
		if ch.Last {
			s.finished[in.Port] = true
		}
	}
	if api.Round() >= s.deadline {
		for _, p := range s.xPorts {
			if !s.finished[p] {
				panic("core: label exchange under-budgeted")
			}
		}
		return true, congest.Status{}
	}
	s.sendExchangeChunk(api)
	return false, s.exchangeWake()
}
