package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/planar"
)

func TestCompareLabels(t *testing.T) {
	cases := []struct {
		a, b Label
		want int
	}{
		{Label{}, Label{}, 0},
		{Label{}, Label{1}, -1},
		{Label{1}, Label{}, 1},
		{Label{1, 2}, Label{1, 3}, -1},
		{Label{1, 2}, Label{1, 2}, 0},
		{Label{2}, Label{1, 9, 9}, 1},
		{Label{1, 2}, Label{1, 2, 1}, -1},
	}
	for _, c := range cases {
		if got := CompareLabels(c.a, c.b); got != c.want {
			t.Errorf("CompareLabels(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareLabelsIsTotalOrder(t *testing.T) {
	f := func(a, b, c []int32) bool {
		la, lb, lc := Label(a), Label(b), Label(c)
		// Antisymmetry.
		if CompareLabels(la, lb) != -CompareLabels(lb, la) {
			return false
		}
		// Transitivity on a sample.
		if CompareLabels(la, lb) <= 0 && CompareLabels(lb, lc) <= 0 {
			return CompareLabels(la, lc) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersects(t *testing.T) {
	e := func(a, b string) LabeledEdge {
		conv := func(s string) Label {
			l := make(Label, len(s))
			for i := range s {
				l[i] = int32(s[i] - '0')
			}
			return l
		}
		return NewLabeledEdge(conv(a), conv(b))
	}
	// Intervals [1,3] and [2,4] cross.
	if !Intersects(e("1", "3"), e("2", "4")) {
		t.Fatal("crossing edges must intersect")
	}
	// Nested intervals do not.
	if Intersects(e("1", "4"), e("2", "3")) {
		t.Fatal("nested edges must not intersect")
	}
	// Disjoint intervals do not.
	if Intersects(e("1", "2"), e("3", "4")) {
		t.Fatal("disjoint edges must not intersect")
	}
	// Shared endpoint does not.
	if Intersects(e("1", "3"), e("3", "4")) {
		t.Fatal("edges sharing an endpoint must not intersect")
	}
	// Order of arguments is irrelevant.
	if !Intersects(e("2", "4"), e("1", "3")) {
		t.Fatal("intersection must be symmetric")
	}
}

// Claim 10: a planar part with a genuine planar embedding has no
// violating edges, for any BFS root.
func TestNoViolationsOnPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(60)
		g := graph.RandomPlanar(n, n-1+rng.Intn(2*n-5), rng)
		emb, err := planar.Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		root := rng.Intn(n)
		bfs := g.BFS(root)
		viol, _ := CountViolations(g, root, bfs.Parent, emb)
		if viol != 0 {
			t.Fatalf("planar graph has %d violating edges (trial %d, n=%d)", viol, trial, n)
		}
	}
}

// Corollary 9: the number of violating edges is at least the distance to
// planarity, for any embedding/ordering whatsoever.
func TestViolationsLowerBoundedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(30)
		extra := 5 + rng.Intn(15)
		g, dist := graph.PlanarPlusRandomEdges(n, extra, rng)
		if dist == 0 {
			continue
		}
		res := planar.EmbedOrFallback(g, planar.FallbackArbitrary)
		root := rng.Intn(n)
		bfs := g.BFS(root)
		viol, _ := CountViolations(g, root, bfs.Parent, res.Embedding)
		if viol < dist {
			t.Fatalf("violations %d < certified distance %d (trial %d)", viol, dist, trial)
		}
	}
}

func TestGridTesterAccepts(t *testing.T) {
	g := graph.Grid(6, 6)
	r, err := RunTester(g, Options{Epsilon: 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rejected {
		t.Fatal("grid must be accepted")
	}
}

func TestPlanarFamiliesAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(24)},
		{"tree", graph.RandomTree(30, rng)},
		{"maxplanar", graph.MaximalPlanar(30, rng)},
		{"randplanar", graph.RandomPlanar(36, 70, rng)},
		{"outerplanar", graph.Outerplanar(25, rng)},
		{"path", graph.Path(20)},
		{"star", graph.Star(15)},
		{"disconnected", graph.DisjointUnion(graph.Grid(4, 4), graph.Cycle(7))},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 3; seed++ {
			r, err := RunTester(c.g, Options{Epsilon: 0.3}, 100+seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", c.name, seed, err)
			}
			if r.Rejected {
				t.Fatalf("%s seed %d: planar graph rejected (one-sidedness violated)", c.name, seed)
			}
		}
	}
}

func TestDenseGraphRejected(t *testing.T) {
	// K12: Stage I arboricity evidence (or Euler) must reject.
	r, err := RunTester(graph.Complete(12), Options{Epsilon: 0.3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatal("K12 must be rejected")
	}
}

func TestFarGraphRejected(t *testing.T) {
	// Maximal planar plus many extra edges: eps-far with a certificate.
	rng := rand.New(rand.NewSource(4))
	g, dist := graph.PlanarPlusRandomEdges(60, 60, rng)
	eps := float64(dist) / float64(g.M())
	if eps < 0.2 {
		eps = 0.2
	}
	rate, err := DetectionRate(g, Options{Epsilon: eps / 2}, 5, 31)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.8 {
		t.Fatalf("detection rate %.2f too low for a far graph", rate)
	}
}

func TestSmallNonPlanarRejectedViaEuler(t *testing.T) {
	// K5 is non-planar but sparse overall; as a single part the Euler
	// bound m > 3n-6 (10 > 9) triggers.
	r, err := RunTester(graph.Complete(5), Options{Epsilon: 0.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatal("K5 must be rejected")
	}
}

func TestK33PlusPlanarRejected(t *testing.T) {
	// K33 disjoint from a grid, connected by one edge: m = 3n-... under
	// the Euler bound, so rejection must come from violating edges.
	rng := rand.New(rand.NewSource(8))
	g := graph.ConnectParts(graph.DisjointUnion(graph.CompleteBipartite(3, 3), graph.Grid(3, 3)), rng)
	if planar.IsPlanar(g) {
		t.Fatal("test graph must be non-planar")
	}
	rate, err := DetectionRate(g, Options{Epsilon: 0.05}, 6, 43)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.5 {
		t.Fatalf("detection rate %.2f too low for embedded K33", rate)
	}
}

func TestStrictEmbedReject(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.ConnectParts(graph.DisjointUnion(graph.CompleteBipartite(3, 3), graph.Grid(3, 3)), rng)
	opts := Options{Epsilon: 0.05}
	opts.StageII.Epsilon = 0.025
	opts.StageII.StrictEmbedReject = true
	r, err := RunTester(g, opts, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatal("strict embedding mode must reject a non-planar part deterministically")
	}
}

func TestENTesterAcceptsPlanar(t *testing.T) {
	g := graph.Grid(6, 6)
	for seed := int64(0); seed < 3; seed++ {
		r, err := RunTester(g, Options{Epsilon: 0.3, UseEN: true}, 300+seed)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			t.Fatal("EN-based tester rejected a planar graph")
		}
	}
}

func TestENTesterRejectsFar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g, _ := graph.PlanarPlusRandomEdges(50, 60, rng)
	rate, err := DetectionRate(g, Options{Epsilon: 0.2, UseEN: true}, 5, 57)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.8 {
		t.Fatalf("EN tester detection rate %.2f too low", rate)
	}
}

func TestRandomizedPartitionTester(t *testing.T) {
	g := graph.Grid(5, 5)
	opts := Options{Epsilon: 0.3}
	opts.Partition.Epsilon = 0.3
	opts.Partition.Variant = 2 // partition.Randomized
	r, err := RunTester(g, opts, 17)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rejected {
		t.Fatal("randomized partition tester rejected planar input")
	}
}

func TestOneSidednessManySeeds(t *testing.T) {
	// The hard invariant of the paper: planar inputs are NEVER rejected,
	// regardless of randomness.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 12 + rng.Intn(30)
		m := n - 1 + rng.Intn(2*n-6)
		g := graph.RandomPlanar(n, m, rng)
		r, err := RunTester(g, Options{Epsilon: 0.25}, int64(600+trial))
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			t.Fatalf("trial %d: planar graph n=%d m=%d rejected", trial, n, m)
		}
	}
}

func TestTesterBitBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.MaximalPlanar(40, rng)
	r, err := RunTester(g, Options{Epsilon: 0.3}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.MaxMessageBits > r.Metrics.BitBound {
		t.Fatalf("max message %d bits exceeds bound %d", r.Metrics.MaxMessageBits, r.Metrics.BitBound)
	}
	if r.Metrics.ModeledRounds == 0 {
		t.Fatal("embedding substitution must charge modeled rounds")
	}
}

func TestLabelPairRoundTrip(t *testing.T) {
	f := func(a, b []int32) bool {
		for i := range a {
			if a[i] < 0 {
				a[i] = -a[i]
			}
		}
		for i := range b {
			if b[i] < 0 {
				b[i] = -b[i]
			}
		}
		le := NewLabeledEdge(Label(a), Label(b))
		got, ok := parseLabelPair(labelElems(le.U, le.V))
		if !ok {
			return false
		}
		return CompareLabels(got.U, le.U) == 0 && CompareLabels(got.V, le.V) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTesterDeterminism(t *testing.T) {
	g := graph.Grid(5, 5)
	r1, err := RunTester(g, Options{Epsilon: 0.3}, 77)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTester(g, Options{Epsilon: 0.3}, 77)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics != r2.Metrics || r1.Rejected != r2.Rejected {
		t.Fatal("identical seeds must produce identical runs")
	}
}
