// Package core implements Stage II of the paper (§2.2) — per-part BFS
// trees, the Euler-bound check, the (substituted) planar-embedding step,
// the embedding-consistent edge/vertex labeling, and the violating-edge
// detection of Definition 7 — together with the end-to-end one-sided
// planarity tester of Theorem 1.
package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/planar"
)

// Label is a node label: the sequence of edge labels on the tree path
// from the part root (§2.2.2). Labels are compared lexicographically,
// with a proper prefix ordering before its extensions.
type Label []int32

// CompareLabels returns -1, 0, or 1 for a < b, a == b, a > b in the
// lexicographic order of §2.2.2 (footnote 5).
func CompareLabels(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// LabeledEdge is a non-tree edge given by the labels of its endpoints,
// normalized so that U < V.
type LabeledEdge struct {
	U, V Label
}

// NewLabeledEdge normalizes the endpoint order.
func NewLabeledEdge(a, b Label) LabeledEdge {
	if CompareLabels(a, b) > 0 {
		a, b = b, a
	}
	return LabeledEdge{U: a, V: b}
}

// Intersects reports whether two non-tree edges violate each other per
// Definition 7: with both normalized and (wlog) ℓ(u) < ℓ(u'), they
// intersect iff ℓ(u) < ℓ(u') < ℓ(v) < ℓ(v').
func Intersects(e, f LabeledEdge) bool {
	if CompareLabels(e.U, f.U) > 0 {
		e, f = f, e
	}
	return CompareLabels(e.U, f.U) < 0 &&
		CompareLabels(f.U, e.V) < 0 &&
		CompareLabels(e.V, f.V) < 0
}

// ComputeLabels derives the node labels of §2.2.2 centrally, for use by
// reference tests and experiments: given the part graph, its BFS tree
// (parent slice with -1 at the root), and a combinatorial embedding, each
// node's tree-children are labeled by their clockwise order starting from
// the parent edge, and node labels concatenate edge labels along the
// root path.
func ComputeLabels(g *graph.Graph, root int, parent []int, emb *planar.Embedding) []Label {
	n := g.N()
	edgeIdx := EdgePositions(g, parent, emb)
	labels := make([]Label, n)
	// BFS order guarantees parents are labeled before children.
	order := g.BFS(root).Order
	for _, v := range order {
		p := parent[v]
		if p < 0 {
			labels[v] = Label{}
			continue
		}
		lbl := make(Label, len(labels[p])+1)
		copy(lbl, labels[p])
		lbl[len(lbl)-1] = edgeIdx[p][int32(v)]
		labels[v] = lbl
	}
	return labels
}

// EdgePositions returns, for every node v, the position (1-based) of each
// incident edge in the counterclockwise order starting from the parent
// edge (at the root: from an arbitrary first edge). This is the order in
// which the outer-face walk of the embedded tree encounters v's edge
// attachments: entering v over (p,v), face traversal continues with
// (v, ccw_v(p)).
//
// Positions index ALL incident edges, not only tree edges. This matters:
// the paper's Claim 10 compares plain endpoint labels, but a non-tree edge
// can attach to v behind v's subtree in the rotation while ℓ(v) marks the
// subtree's start, producing interval crossings on genuinely planar
// inputs (see TestPaperClaim10Counterexample). Extending each non-tree
// endpoint label by the edge's attachment position restores correctness:
// the complement of an embedded spanning tree is a single disk whose
// boundary walk visits the attachment points in label order, and edges of
// a planar embedding are pairwise non-crossing chords of that disk.
func EdgePositions(g *graph.Graph, parent []int, emb *planar.Embedding) []map[int32]int32 {
	n := g.N()
	pos := make([]map[int32]int32, n)
	for v := 0; v < n; v++ {
		rot := emb.Rotation(v)
		pos[v] = make(map[int32]int32, len(rot))
		if len(rot) == 0 {
			continue
		}
		start := 0
		if parent[v] >= 0 {
			for i, w := range rot {
				if int(w) == parent[v] {
					start = i
					break
				}
			}
		}
		for k := 0; k < len(rot); k++ {
			w := rot[((start-k)%len(rot)+len(rot))%len(rot)]
			pos[v][w] = int32(k) // parent edge gets 0; others 1..deg-1
		}
		if parent[v] < 0 {
			// No parent edge: rot[start] itself is position 1.
			for w := range pos[v] {
				pos[v][w]++
			}
		}
	}
	return pos
}

// AttachmentLabel is the label of edge {v,w}'s endpoint at v: v's vertex
// label extended by the edge's attachment position at v.
func AttachmentLabel(labels []Label, pos []map[int32]int32, v, w int) Label {
	lbl := make(Label, len(labels[v])+1)
	copy(lbl, labels[v])
	lbl[len(lbl)-1] = pos[v][int32(w)]
	return lbl
}

// NonTreeEdges lists the edges of g not in the parent tree.
func NonTreeEdges(g *graph.Graph, parent []int) []graph.Edge {
	inTree := make(map[graph.Edge]bool, g.N())
	for v, p := range parent {
		if p >= 0 {
			inTree[graph.NormEdge(v, p)] = true
		}
	}
	var out []graph.Edge
	for _, e := range g.Edges() {
		if !inTree[e] {
			out = append(out, e)
		}
	}
	return out
}

// CountViolations returns the number of violating non-tree edges (those
// intersecting at least one other non-tree edge, Definition 7) and the
// total number of non-tree edges. Used by experiment E6 and tests; the
// distributed algorithm detects the same crossings by sampling.
func CountViolations(g *graph.Graph, root int, parent []int, emb *planar.Embedding) (violating, nonTree int) {
	labels := ComputeLabels(g, root, parent, emb)
	pos := EdgePositions(g, parent, emb)
	edges := NonTreeEdges(g, parent)
	les := make([]LabeledEdge, len(edges))
	for i, e := range edges {
		les[i] = NewLabeledEdge(
			AttachmentLabel(labels, pos, int(e.U), int(e.V)),
			AttachmentLabel(labels, pos, int(e.V), int(e.U)),
		)
	}
	sort.Slice(les, func(i, j int) bool { return CompareLabels(les[i].U, les[j].U) < 0 })
	bad := make([]bool, len(les))
	for i := 0; i < len(les); i++ {
		for j := i + 1; j < len(les); j++ {
			if Intersects(les[i], les[j]) {
				bad[i] = true
				bad[j] = true
			}
		}
	}
	for _, b := range bad {
		if b {
			violating++
		}
	}
	return violating, len(les)
}
