package core

import (
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// This file is the native StepProgram port of the per-part preprocessing
// exposed by PartContext (partctx.go): budget agreement, the boundary
// round, BFS tree construction, and edge assignment, followed by the
// optional gather-and-evaluate continuation that mirrors
// Counts() → GatherGraph(m) → predicate → BroadcastBit(). The ops are the
// same as the Stage II prelude (stage2_step.go) and replicate the blocking
// calls round for round, so testers built on either model produce
// byte-identical Results for a fixed seed (the minor-free and hereditary
// engine-equivalence tests).

type pcOp uint8

const (
	pcDepthDown  pcOp = iota // bcast: depth probe (+1 per hop)
	pcDepthUp                // cvg: max depth
	pcDepthAgree             // bcast: agreed depth -> budget
	pcIdentity               // cross: part root + id exchange
	pcBFS                    // window: BFS tree construction
	pcLevels                 // cross: BFS levels -> edge assignment
	pcDone                   // context ready; hand over to the caller
)

// PartCtxStep is the step-native counterpart of PartContext: a StepProgram
// that builds this node's part context and then invokes the done callback,
// whose Status becomes the node's next scheduling instruction (typically
// Done after local checks, or BecomeStep of a continuation such as
// NewGatherEval's).
type PartCtxStep struct {
	part *partition.Outcome
	done func(api *congest.StepAPI, c *PartCtxStep) congest.Status

	pc       pcOp
	inOp     bool
	restored bool        // decoded from a checkpoint; machines need reattaching
	phase    obs.PhaseID // "stage2/partctx"; zero announces nothing
	bd       congest.BroadcastDownStep
	cv       congest.ConvergecastStep
	reg      congest.Message

	budget   int
	maxDepth int
	intra    []bool
	nbrID    []int64
	nbrLvl   []int64
	tree     congest.Tree
	level    int64
	assigned []int

	// BFS window state.
	deadline   int
	adopted    bool
	parentPort int
	childPorts []int
}

// NewPartCtxStep returns the native part-context builder for one node with
// the given partition outcome.
func NewPartCtxStep(part *partition.Outcome, done func(api *congest.StepAPI, c *PartCtxStep) congest.Status) *PartCtxStep {
	return &PartCtxStep{part: part, done: done}
}

// Part returns the partition outcome the context was built from.
func (c *PartCtxStep) Part() *partition.Outcome { return c.part }

// Tree returns the BFS tree T_B^j view of this node.
func (c *PartCtxStep) Tree() congest.Tree { return c.tree }

// Budget returns the part-wide round budget (2*depth+2 of the Stage I
// tree).
func (c *PartCtxStep) Budget() int { return c.budget }

// MaxDepth returns the agreed Stage I tree depth.
func (c *PartCtxStep) MaxDepth() int { return c.maxDepth }

// Level returns this node's BFS level within its part.
func (c *PartCtxStep) Level() int64 { return c.level }

// IsIntra reports whether the edge on the given port stays within the
// part.
func (c *PartCtxStep) IsIntra(port int) bool { return c.intra[port] }

// NeighborID returns the id of the neighbor on the given port.
func (c *PartCtxStep) NeighborID(port int) int64 { return c.nbrID[port] }

// NeighborLevel returns the BFS level of the intra-part neighbor on the
// given port.
func (c *PartCtxStep) NeighborLevel(port int) int64 { return c.nbrLvl[port] }

// AssignedPorts returns the ports of intra-part edges assigned to this
// node (the higher-level endpoint, ties by id).
func (c *PartCtxStep) AssignedPorts() []int { return c.assigned }

// IsTreePort reports whether the port carries a BFS-tree edge.
func (c *PartCtxStep) IsTreePort(port int) bool {
	return port == c.tree.ParentPort || isIn(c.tree.ChildPorts, port)
}

// NonTreeAssignedPorts returns the assigned ports that are not BFS-tree
// edges (each closes a cycle within the part).
func (c *PartCtxStep) NonTreeAssignedPorts() []int {
	var out []int
	for _, p := range c.assigned {
		if !c.IsTreePort(p) {
			out = append(out, p)
		}
	}
	return out
}

// Step implements congest.StepProgram: it advances through the
// preprocessing ops (the same linear script as BuildPartContext) and hands
// over to the done callback once the context is complete.
func (c *PartCtxStep) Step(api *congest.StepAPI, inbox []congest.Inbound) congest.Status {
	// The phase announcement condition is derived purely from serialized
	// state (first op, not yet begun) so that an interrupted-and-resumed
	// run attributes identically to an uninterrupted one: the entry state
	// is consumed within the first Step, so a checkpoint can never park in
	// it and the announcement fires exactly once either way.
	if c.phase != 0 && c.pc == pcDepthDown && !c.inOp {
		api.PhaseEnter(c.phase)
	}
	if c.restored {
		c.restored = false
		c.reattach()
	}
	for {
		switch c.pc {
		case pcDepthDown:
			if !c.inOp {
				if !c.bd.Begin(api, c.part.Tree, api.Round()+api.N()+2, valMsg{V: 0}, depthTransform) {
					c.inOp = true
					return c.bd.Wake()
				}
			} else if !c.bd.Feed(api, inbox) {
				return c.bd.Wake()
			} else {
				c.inOp = false
			}
			d, ok := c.bd.Result()
			if !ok {
				panic("core: depth probe under-budgeted")
			}
			c.reg = d
			c.pc = pcDepthUp

		case pcDepthUp:
			if !c.inOp {
				if !c.cv.Begin(api, c.part.Tree, api.Round()+api.N()+2, c.reg, combineMaxVal) {
					c.inOp = true
					return c.cv.Wake()
				}
			} else if !c.cv.Feed(api, inbox) {
				return c.cv.Wake()
			} else {
				c.inOp = false
			}
			maxd, ok := c.cv.Result()
			if !ok {
				panic("core: depth convergecast under-budgeted")
			}
			c.reg = maxd
			c.pc = pcDepthAgree

		case pcDepthAgree:
			if !c.inOp {
				if !c.bd.Begin(api, c.part.Tree, api.Round()+api.N()+2, c.reg, nil) {
					c.inOp = true
					return c.bd.Wake()
				}
			} else if !c.bd.Feed(api, inbox) {
				return c.bd.Wake()
			} else {
				c.inOp = false
			}
			agreed, ok := c.bd.Result()
			if !ok {
				panic("core: depth broadcast under-budgeted")
			}
			c.maxDepth = int(agreed.(valMsg).V)
			c.budget = 2*c.maxDepth + 2
			c.pc = pcIdentity

		case pcIdentity:
			if !c.inOp {
				api.SendAll(announceMsg{PartRoot: c.part.RootID, ID: api.ID()})
				c.inOp = true
				return congest.Running()
			}
			c.inOp = false
			deg := api.Degree()
			c.intra = make([]bool, deg)
			c.nbrID = make([]int64, deg)
			for _, in := range inbox {
				am, ok := in.Msg.(announceMsg)
				if !ok {
					continue // skewed-schedule tolerance (see stage2.go)
				}
				c.intra[in.Port] = am.PartRoot == c.part.RootID
				c.nbrID[in.Port] = am.ID
			}
			c.pc = pcBFS

		case pcBFS:
			if !c.inOp {
				c.deadline = api.Round() + c.budget + 3
				c.parentPort = -1
				c.childPorts = nil
				c.adopted = c.part.Tree.IsRoot()
				c.level = 0
				if c.adopted {
					for p, ok := range c.intra {
						if ok {
							api.Send(p, bfsMsg{Level: 0})
						}
					}
				}
				c.inOp = true
				if api.Round() < c.deadline {
					return congest.Sleep(c.deadline)
				}
			} else if !c.feedBFS(api, inbox) {
				return congest.Sleep(c.deadline)
			}
			c.inOp = false
			if !c.adopted {
				panic("core: BFS did not reach a part node (invalid partition)")
			}
			sort.Ints(c.childPorts)
			c.tree = congest.Tree{ParentPort: c.parentPort, ChildPorts: c.childPorts}
			if c.part.Tree.IsRoot() {
				c.tree.ParentPort = -1
			}
			c.pc = pcLevels

		case pcLevels:
			if !c.inOp {
				for p, ok := range c.intra {
					if ok {
						api.Send(p, lvlMsg{Level: c.level})
					}
				}
				c.inOp = true
				return congest.Running()
			}
			c.inOp = false
			c.nbrLvl = make([]int64, api.Degree())
			for _, in := range inbox {
				if m, ok := in.Msg.(lvlMsg); ok {
					c.nbrLvl[in.Port] = m.Level
				}
			}
			for p, ok := range c.intra {
				if !ok {
					continue
				}
				if c.level > c.nbrLvl[p] || (c.level == c.nbrLvl[p] && api.ID() > c.nbrID[p]) {
					c.assigned = append(c.assigned, p)
				}
			}
			c.pc = pcDone

		default: // pcDone
			return c.done(api, c)
		}
	}
}

// feedBFS mirrors one wake of the blocking buildBFS loop; returns true at
// the deadline.
func (c *PartCtxStep) feedBFS(api *congest.StepAPI, inbox []congest.Inbound) bool {
	bestPort := -1
	for _, in := range inbox {
		switch m := in.Msg.(type) {
		case bfsMsg:
			if c.adopted || !c.intra[in.Port] {
				continue
			}
			if bestPort == -1 || c.nbrID[in.Port] < c.nbrID[bestPort] {
				bestPort = in.Port
				c.level = m.Level + 1
			}
		case childMsg:
			c.childPorts = append(c.childPorts, in.Port)
		}
	}
	if bestPort >= 0 {
		c.adopted = true
		c.parentPort = bestPort
		api.Send(c.parentPort, childMsg{})
		for p, ok := range c.intra {
			if ok && p != c.parentPort {
				api.Send(p, bfsMsg{Level: c.level})
			}
		}
	}
	return api.Round() >= c.deadline
}

type geOp uint8

const (
	geCountUp   geOp = iota // cvg: (n, m) counts
	geCountDown             // bcast: counts back down
	geGather                // pipeline: assigned edges to the root
	geBit                   // bcast: the root's predicate bit
	geFinish
)

// gatherEvalNode is the step-native counterpart of the blocking sequence
// ctx.Counts() → ctx.GatherGraph(m) → pred at the root →
// ctx.BroadcastBit(bad), used by the hereditary-property tester.
type gatherEvalNode struct {
	c    *PartCtxStep
	pred func(g *graph.Graph) bool
	done func(api *congest.StepAPI, reject, rootEvaluated bool) congest.Status

	pc   geOp
	inOp bool
	cv   congest.ConvergecastStep
	bd   congest.BroadcastDownStep
	pu   congest.PipelineUpStep
	reg  congest.Message
	m    int64
	bad  bool
}

// NewGatherEval returns the continuation that gathers the part graph at
// the root, evaluates pred on it, and broadcasts the verdict bit; done
// receives the part-wide reject bit and whether this node evaluated the
// predicate (i.e. is the part root holding the gathered graph).
func (c *PartCtxStep) NewGatherEval(pred func(g *graph.Graph) bool, done func(api *congest.StepAPI, reject, rootEvaluated bool) congest.Status) congest.StepProgram {
	return &gatherEvalNode{c: c, pred: pred, done: done}
}

// Step implements congest.StepProgram.
func (g *gatherEvalNode) Step(api *congest.StepAPI, inbox []congest.Inbound) congest.Status {
	c := g.c
	for {
		switch g.pc {
		case geCountUp:
			if !g.inOp {
				own := countsMsg{N: 1, M: int64(len(c.assigned))}
				if !g.cv.Begin(api, c.tree, api.Round()+c.budget+2, own, combineCounts) {
					g.inOp = true
					return g.cv.Wake()
				}
			} else if !g.cv.Feed(api, inbox) {
				return g.cv.Wake()
			} else {
				g.inOp = false
			}
			agg, ok := g.cv.Result()
			if !ok {
				panic("core: counts convergecast under-budgeted")
			}
			g.reg = agg
			g.pc = geCountDown

		case geCountDown:
			if !g.inOp {
				if !g.bd.Begin(api, c.tree, api.Round()+c.budget+2, g.reg, nil) {
					g.inOp = true
					return g.bd.Wake()
				}
			} else if !g.bd.Feed(api, inbox) {
				return g.bd.Wake()
			} else {
				g.inOp = false
			}
			res, ok := g.bd.Result()
			if !ok {
				panic("core: counts broadcast under-budgeted")
			}
			g.m = res.(countsMsg).M
			g.pc = geGather

		case geGather:
			if !g.inOp {
				items := make([]congest.Message, 0, len(c.assigned))
				for _, p := range c.assigned {
					items = append(items, edgeItem{A: api.ID(), B: c.nbrID[p]})
				}
				budget := int(g.m) + c.budget + 4
				if !g.pu.Begin(api, c.tree, api.Round()+budget, items) {
					g.inOp = true
					return g.pu.Wake()
				}
			} else if !g.pu.Feed(api, inbox) {
				return g.pu.Wake()
			} else {
				g.inOp = false
			}
			collected, ok := g.pu.Result()
			g.bad = false
			if c.tree.IsRoot() {
				if !ok {
					panic("core: edge gather under-budgeted")
				}
				pg, _ := buildPartGraph(collected, api.ID())
				api.ChargeModeledRounds(2 * c.maxDepth)
				g.bad = !g.pred(pg)
			}
			g.pc = geBit

		case geBit:
			if !g.inOp {
				v := int64(0)
				if g.bad {
					v = 1
				}
				if !g.bd.Begin(api, c.tree, api.Round()+c.budget+2, valMsg{V: v}, nil) {
					g.inOp = true
					return g.bd.Wake()
				}
			} else if !g.bd.Feed(api, inbox) {
				return g.bd.Wake()
			} else {
				g.inOp = false
			}
			got, ok := g.bd.Result()
			if !ok {
				panic("core: bit broadcast under-budgeted")
			}
			g.reg = got
			g.pc = geFinish

		default: // geFinish
			reject := g.reg.(valMsg).V == 1
			return g.done(api, reject, c.tree.IsRoot())
		}
	}
}

// buildPartGraph assembles the gathered edge list into the part's induced
// graph on dense indices plus the index->id mapping (shared by the
// blocking GatherGraph and the step-native gather).
func buildPartGraph(collected []congest.Message, rootID int64) (*graph.Graph, []int64) {
	idOf := make([]int64, 0, 16)
	idx := make(map[int64]int, 16)
	add := func(id int64) int {
		if i, ok := idx[id]; ok {
			return i
		}
		idx[id] = len(idOf)
		idOf = append(idOf, id)
		return len(idOf) - 1
	}
	add(rootID)
	type pair struct{ a, b int }
	pairs := make([]pair, 0, len(collected))
	for _, it := range collected {
		e := it.(edgeItem)
		pairs = append(pairs, pair{add(e.A), add(e.B)})
	}
	b := graph.NewBuilder(len(idOf))
	for _, p := range pairs {
		b.AddEdge(p.a, p.b)
	}
	return b.Build(), idOf
}
