package core

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
)

// PartContext exposes the per-part preprocessing of Stage II (§2.2.1) —
// round budget, intra-part ports, BFS tree, levels, and edge assignment —
// for reuse by the minor-free applications of §4.2 (cycle-freeness and
// bipartiteness testing, spanner construction). Every node of the network
// must call BuildPartContext at the same round, right after partitioning.
type PartContext struct {
	s *stage2
}

// BuildPartContext runs the preprocessing steps (budget agreement, one
// boundary round, BFS tree construction, level exchange and edge
// assignment) and returns this node's view.
func BuildPartContext(api *congest.API, part *partition.Outcome) *PartContext {
	s := &stage2{api: api, part: part, opts: StageIIOptions{Epsilon: 1}.withDefaults()}
	s.computeBudget()
	s.exchangeIdentity()
	s.buildBFS()
	s.assignEdges()
	return &PartContext{s: s}
}

// Tree returns the BFS tree T_B^j view of this node.
func (c *PartContext) Tree() congest.Tree { return c.s.tree }

// Budget returns the part-wide round budget (2*depth+2 of the Stage I
// tree, an upper bound on the part's induced diameter plus slack).
func (c *PartContext) Budget() int { return c.s.budget }

// Level returns this node's BFS level within its part.
func (c *PartContext) Level() int64 { return c.s.level }

// IsIntra reports whether the edge on the given port stays within the
// part.
func (c *PartContext) IsIntra(port int) bool { return c.s.intra[port] }

// NeighborLevel returns the BFS level of the intra-part neighbor on the
// given port.
func (c *PartContext) NeighborLevel(port int) int64 { return c.s.nbrLvl[port] }

// AssignedPorts returns the ports of intra-part edges assigned to this
// node (the higher-level endpoint, ties by id).
func (c *PartContext) AssignedPorts() []int { return c.s.assigned }

// IsTreePort reports whether the port carries a BFS-tree edge.
func (c *PartContext) IsTreePort(port int) bool {
	return port == c.s.tree.ParentPort || isIn(c.s.tree.ChildPorts, port)
}

// NonTreeAssignedPorts returns the assigned ports that are not BFS-tree
// edges (each closes a cycle within the part).
func (c *PartContext) NonTreeAssignedPorts() []int {
	var out []int
	for _, p := range c.s.assigned {
		if !c.IsTreePort(p) {
			out = append(out, p)
		}
	}
	return out
}

// Counts aggregates the part's node and edge counts on the BFS tree and
// broadcasts them, so that every part node agrees on (n, m). Every node
// of the part must call it at the same part-local round.
func (c *PartContext) Counts() (n, m int64) {
	s := c.s
	d := s.api.Round() + s.budget + 2
	agg, ok := s.tree.Convergecast(s.api, d, countsMsg{N: 1, M: int64(len(s.assigned))},
		func(own congest.Message, ch []congest.Message) congest.Message {
			cm := own.(countsMsg)
			for _, x := range ch {
				xc := x.(countsMsg)
				cm.N += xc.N
				cm.M += xc.M
			}
			return cm
		})
	if !ok {
		panic("core: counts convergecast under-budgeted")
	}
	res, ok := s.tree.BroadcastDown(s.api, s.api.Round()+s.budget+2, agg, nil)
	if !ok {
		panic("core: counts broadcast under-budgeted")
	}
	rc := res.(countsMsg)
	s.partN, s.partM = rc.N, rc.M
	return rc.N, rc.M
}

// GatherGraph pipelines every assigned edge of the part to the root
// (m + depth rounds, the standard pipelining bound) and, at the root,
// returns the part's induced graph on dense indices together with the
// index->id mapping. Non-root nodes return (nil, nil). m must be the
// part's edge count from Counts(). This realizes the paper's §4.2 remark
// that any part-local verification "in a number of rounds polynomial in
// the diameter" plugs into the partition; the central evaluation at the
// root is charged as modeled rounds like the embedding substitution.
func (c *PartContext) GatherGraph(m int64) (*graph.Graph, []int64) {
	s := c.s
	items := make([]congest.Message, 0, len(s.assigned))
	for _, p := range s.assigned {
		items = append(items, edgeItem{A: s.api.ID(), B: s.nbrID[p]})
	}
	budget := int(m) + s.budget + 4
	collected, ok := s.tree.PipelineUp(s.api, s.api.Round()+budget, items)
	if !s.tree.IsRoot() {
		return nil, nil
	}
	if !ok {
		panic("core: edge gather under-budgeted")
	}
	pg, idOf := buildPartGraph(collected, s.api.ID())
	s.api.ChargeModeledRounds(2 * s.maxDepth)
	return pg, idOf
}

// BroadcastBit lets the root distribute one bit to the whole part; every
// node returns the root's value. Every part node must call it together.
func (c *PartContext) BroadcastBit(rootVal bool) bool {
	s := c.s
	v := int64(0)
	if rootVal {
		v = 1
	}
	got, ok := s.tree.BroadcastDown(s.api, s.api.Round()+s.budget+2, valMsg{V: v}, nil)
	if !ok {
		panic("core: bit broadcast under-budgeted")
	}
	return got.(valMsg).V == 1
}
