package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// normalizePhases strips the one nondeterministic field (WallNs) so
// breakdowns from different executions can be compared exactly.
func normalizePhases(pb obs.PhaseBreakdown) obs.PhaseBreakdown {
	out := make(obs.PhaseBreakdown, len(pb))
	copy(out, pb)
	for i := range out {
		out[i].WallNs = 0
	}
	return out
}

// TestInstrumentationSoundness asserts the zero-interference contract of
// the obs layer: enabling the probe (and tracing on top of it) changes no
// deterministic Result field, the per-phase counters are themselves
// deterministic — identical across worker counts and with tracing on or
// off — and their Messages/Bits columns sum exactly to the run's Metrics.
func TestInstrumentationSoundness(t *testing.T) {
	far, _ := graph.PlanarPlusRandomEdges(90, 70, rand.New(rand.NewSource(4)))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10)},
		{"far-from-planar", far},
	}
	for _, fam := range families {
		base := Options{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}}
		plain, err := RunTester(fam.g, base, 1)
		if err != nil {
			t.Fatalf("%s: unprobed baseline: %v", fam.name, err)
		}
		if plain.Phases != nil {
			t.Fatalf("%s: unprobed run has a phase breakdown", fam.name)
		}
		var ref obs.PhaseBreakdown
		for _, workers := range []int{1, 2, 4} {
			for _, traced := range []bool{false, true} {
				opts := base
				opts.Workers = workers
				opts.Probe = obs.NewProbe()
				var buf bytes.Buffer
				var tracer *obs.Tracer
				if traced {
					tracer = obs.NewTracer(&buf)
					opts.Trace = tracer
				}
				res, err := RunTester(fam.g, opts, 1)
				if err != nil {
					t.Fatalf("%s/w%d/traced=%v: %v", fam.name, workers, traced, err)
				}
				if tracer != nil {
					if err := tracer.Close(); err != nil {
						t.Fatalf("%s/w%d: trace close: %v", fam.name, workers, err)
					}
				}
				if res.Rejected != plain.Rejected || res.RejectedBy != plain.RejectedBy ||
					!reflect.DeepEqual(res.Metrics, plain.Metrics) {
					t.Fatalf("%s/w%d/traced=%v: instrumentation changed the result:\nplain:  %+v\nprobed: %+v",
						fam.name, workers, traced, plain, res)
				}
				if res.Phases == nil {
					t.Fatalf("%s/w%d/traced=%v: probed run has no phase breakdown", fam.name, workers, traced)
				}
				got := normalizePhases(res.Phases)
				if ref == nil {
					ref = got
				} else if !reflect.DeepEqual(ref, got) {
					t.Fatalf("%s/w%d/traced=%v: phase breakdown differs from w1/untraced:\nref: %+v\ngot: %+v",
						fam.name, workers, traced, ref, got)
				}
				total := res.Phases.Total()
				if total.Messages != res.Metrics.Messages {
					t.Fatalf("%s/w%d: phase messages sum %d != run messages %d",
						fam.name, workers, total.Messages, res.Metrics.Messages)
				}
				if total.Bits != res.Metrics.TotalBits {
					t.Fatalf("%s/w%d: phase bits sum %d != run bits %d",
						fam.name, workers, total.Bits, res.Metrics.TotalBits)
				}
				if traced && buf.Len() == 0 {
					t.Fatalf("%s/w%d: tracing enabled but no events emitted", fam.name, workers)
				}
			}
		}
	}
}

// TestInstrumentationSurvivesResume kills a probed run at a barrier,
// resumes it from the last checkpoint with a fresh probe, and asserts the
// resumed run reports the same result and the same (WallNs-normalized)
// phase breakdown as an uninterrupted probed run — the obs snapshot
// section and the state-derived phase announcements must re-anchor
// attribution exactly.
func TestInstrumentationSurvivesResume(t *testing.T) {
	defer faultpoint.Reset()
	g := graph.Grid(10, 10)
	base := Options{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}}

	uopts := base
	uopts.Probe = obs.NewProbe()
	barriers := 0
	uopts.Checkpoint = congest.CheckpointConfig{
		EveryBarriers: 1,
		Sink:          func(round int, data []byte) error { barriers++; return nil },
	}
	uninterrupted, err := RunTester(g, uopts, 1)
	if err != nil {
		t.Fatalf("uninterrupted probed run: %v", err)
	}
	want := normalizePhases(uninterrupted.Phases)

	crashRng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		crashAt := 2 + crashRng.Intn(barriers-2)
		copts := base
		copts.Probe = obs.NewProbe()
		var last []byte
		copts.Checkpoint = congest.CheckpointConfig{
			EveryBarriers: 1,
			Sink:          func(round int, data []byte) error { last = data; return nil },
		}
		boom := errors.New("injected crash")
		faultpoint.Arm(congest.FaultBarrier, crashAt, func() error { return boom })
		_, err := RunTester(g, copts, 1)
		faultpoint.Disarm(congest.FaultBarrier)
		if !errors.Is(err, boom) {
			t.Fatalf("crash at barrier %d: expected injected crash, got %v", crashAt, err)
		}
		for _, workers := range []int{1, 4} {
			ropts := base
			ropts.Workers = workers
			ropts.Probe = obs.NewProbe()
			res, err := ResumeTester(g, ropts, 1, last)
			if err != nil {
				t.Fatalf("crash@%d/w%d: resume: %v", crashAt, workers, err)
			}
			if res.Rejected != uninterrupted.Rejected ||
				!reflect.DeepEqual(res.Metrics, uninterrupted.Metrics) {
				t.Fatalf("crash@%d/w%d: resumed result differs", crashAt, workers)
			}
			if got := normalizePhases(res.Phases); !reflect.DeepEqual(want, got) {
				t.Fatalf("crash@%d/w%d: resumed phase breakdown differs:\nwant: %+v\ngot:  %+v",
					crashAt, workers, want, got)
			}
		}
	}
}

// TestProgressCell asserts the engine publishes barrier progress: after
// a probed run, the cell reports the final round, a positive barrier
// count, and a phase name interned on the probe.
func TestProgressCell(t *testing.T) {
	g := graph.Grid(8, 8)
	opts := Options{Epsilon: 0.25, Partition: partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}}
	opts.Probe = obs.NewProbe()
	opts.Progress = obs.NewProgress(opts.Probe)
	res, err := RunTester(g, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := opts.Progress.Snapshot()
	if s.Round <= 0 || s.Barriers <= 0 {
		t.Fatalf("progress cell never updated: %+v", s)
	}
	if s.Round > int64(res.Metrics.Rounds) {
		t.Fatalf("progress round %d beyond run rounds %d", s.Round, res.Metrics.Rounds)
	}
	found := false
	for _, n := range opts.Probe.Names() {
		if n == s.Phase {
			found = true
		}
	}
	if !found {
		t.Fatalf("progress phase %q not interned on the probe", s.Phase)
	}
}
