package core

// Checkpoint support for the Stage II path: message codecs for the Stage
// II vocabulary, the Snapshottable implementations of PartCtxStep and
// stage2Node, and the ResumeTester entry point that reconstructs a full
// planarity-tester run from an engine checkpoint. Together with the Stage
// I support in internal/partition, every program state the planar tester
// parks in (Stage I interpreter, part-context prelude, Stage II machine)
// round-trips through a checkpoint; the minor-free/hereditary testers'
// gatherEvalNode and the Elkin–Neiman baseline do not implement
// Snapshottable, so those runs report congest.ErrNotSnapshottable and
// simply run without durability.

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/planar"
)

// Program snapshot kinds of package core (internal/partition owns
// SnapKindStageI = 1).
const (
	// SnapKindPartCtx identifies a part-context prelude record.
	SnapKindPartCtx uint16 = 2
	// SnapKindStageII identifies a Stage II machine record.
	SnapKindStageII uint16 = 3
)

// Message codec kinds 64..95 are reserved for package core
// (internal/congest uses 1..31, internal/partition 32..63).
const (
	msgKindAnnounce uint16 = 64 + iota
	msgKindVal
	msgKindNone
	msgKindBFS
	msgKindChild
	msgKindLvl
	msgKindCounts
	msgKindEdgeItem
	msgKindRotItem
	msgKindEmbedFail
	msgKindLabelChunk
	msgKindSampleChunk
	msgKindEdgeList
)

func init() {
	congest.RegisterMessageCodec(msgKindAnnounce, announceMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			a := m.(announceMsg)
			e.Varint(a.PartRoot)
			e.Varint(a.ID)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return announceMsg{PartRoot: d.Varint(), ID: d.Varint()}
		})
	congest.RegisterMessageCodec(msgKindVal, valMsg{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Varint(m.(valMsg).V) },
		func(d *congest.SnapDecoder) congest.Message { return valMsg{V: d.Varint()} })
	congest.RegisterMessageCodec(msgKindNone, noneMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return noneMsg{} })
	congest.RegisterMessageCodec(msgKindBFS, bfsMsg{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Varint(m.(bfsMsg).Level) },
		func(d *congest.SnapDecoder) congest.Message { return bfsMsg{Level: d.Varint()} })
	congest.RegisterMessageCodec(msgKindChild, childMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return childMsg{} })
	congest.RegisterMessageCodec(msgKindLvl, lvlMsg{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Varint(m.(lvlMsg).Level) },
		func(d *congest.SnapDecoder) congest.Message { return lvlMsg{Level: d.Varint()} })
	congest.RegisterMessageCodec(msgKindCounts, countsMsg{},
		func(e *congest.SnapEncoder, m congest.Message) {
			c := m.(countsMsg)
			e.Varint(c.N)
			e.Varint(c.M)
			e.Bool(c.Reject)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return countsMsg{N: d.Varint(), M: d.Varint(), Reject: d.Bool()}
		})
	congest.RegisterMessageCodec(msgKindEdgeItem, edgeItem{},
		func(e *congest.SnapEncoder, m congest.Message) {
			it := m.(edgeItem)
			e.Varint(it.A)
			e.Varint(it.B)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return edgeItem{A: d.Varint(), B: d.Varint()}
		})
	congest.RegisterMessageCodec(msgKindRotItem, rotItem{},
		func(e *congest.SnapEncoder, m congest.Message) {
			r := m.(rotItem)
			e.Varint(r.Node)
			e.Varint(int64(r.Idx))
			e.Varint(r.Nbr)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return rotItem{Node: d.Varint(), Idx: int32(d.Varint()), Nbr: d.Varint()}
		})
	congest.RegisterMessageCodec(msgKindEmbedFail, embedFail{},
		func(e *congest.SnapEncoder, m congest.Message) {},
		func(d *congest.SnapDecoder) congest.Message { return embedFail{} })
	congest.RegisterMessageCodec(msgKindLabelChunk, labelChunk{},
		func(e *congest.SnapEncoder, m congest.Message) {
			c := m.(labelChunk)
			e.Int32s(c.Elems)
			e.Bool(c.Last)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return labelChunk{Elems: d.Int32s(), Last: d.Bool()}
		})
	congest.RegisterMessageCodec(msgKindSampleChunk, &sampleChunk{},
		func(e *congest.SnapEncoder, m congest.Message) {
			c := m.(*sampleChunk)
			e.Varint(c.Owner)
			e.Varint(int64(c.EIdx))
			e.Varint(int64(c.CIdx))
			e.Bool(c.Last)
			e.Int32s(c.Elems)
		},
		func(d *congest.SnapDecoder) congest.Message {
			return &sampleChunk{
				Owner: d.Varint(),
				EIdx:  int32(d.Varint()),
				CIdx:  int32(d.Varint()),
				Last:  d.Bool(),
				Elems: d.Int32s(),
			}
		})
	// edgeListMsg is never sent, but it can sit in a node's result
	// register between dependent ops while the follow-up op is in flight,
	// so it needs a codec like any parked state.
	congest.RegisterMessageCodec(msgKindEdgeList, edgeListMsg{},
		func(e *congest.SnapEncoder, m congest.Message) { e.Msgs(m.(edgeListMsg).items) },
		func(d *congest.SnapDecoder) congest.Message { return edgeListMsg{items: d.Msgs()} })
}

// encOutcome appends a partition.Outcome (each Stage II program carries
// its own copy).
func encOutcome(e *congest.SnapEncoder, o *partition.Outcome) {
	e.Varint(o.RootID)
	e.Tree(o.Tree)
	e.Bool(o.Rejected)
	e.Int(o.PhasesRun)
	e.Bool(o.EarlyExit)
}

func decOutcome(d *congest.SnapDecoder) *partition.Outcome {
	return &partition.Outcome{
		RootID:    d.Varint(),
		Tree:      d.Tree(),
		Rejected:  d.Bool(),
		PhasesRun: d.Int(),
		EarlyExit: d.Bool(),
	}
}

// encLabels appends a nil-preserving [][]int32 (per-port labels).
func encLabels(e *congest.SnapEncoder, ls []Label) {
	if ls == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(ls)) + 1)
	for _, l := range ls {
		e.Int32s(l)
	}
}

func decLabels(d *congest.SnapDecoder) []Label {
	n := d.Uvarint()
	if n == 0 || d.Err() != nil {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.Int() // force a sticky truncation error via a failed read
		return nil
	}
	ls := make([]Label, 0, n)
	for i := uint64(0); i < n; i++ {
		ls = append(ls, Label(d.Int32s()))
	}
	return ls
}

// encLabeledEdges appends a nil-preserving []LabeledEdge.
func encLabeledEdges(e *congest.SnapEncoder, es []LabeledEdge) {
	if es == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(es)) + 1)
	for _, le := range es {
		e.Int32s(le.U)
		e.Int32s(le.V)
	}
}

func decLabeledEdges(d *congest.SnapDecoder) []LabeledEdge {
	n := d.Uvarint()
	if n == 0 || d.Err() != nil {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.Int()
		return nil
	}
	es := make([]LabeledEdge, 0, n)
	for i := uint64(0); i < n; i++ {
		es = append(es, LabeledEdge{U: Label(d.Int32s()), V: Label(d.Int32s())})
	}
	return es
}

// SnapshotKind implements congest.Snapshottable.
func (c *PartCtxStep) SnapshotKind() uint16 { return SnapKindPartCtx }

// EncodeState implements congest.Snapshottable. The done callback is not
// serialized; the restore entry point reinstalls the Stage II handoff
// (the only callback the planar tester parks with — the minor-free
// testers' continuations are not snapshottable).
func (c *PartCtxStep) EncodeState(e *congest.SnapEncoder) {
	encOutcome(e, c.part)
	e.Int(int(c.pc))
	e.Bool(c.inOp)
	c.bd.EncodeState(e)
	c.cv.EncodeState(e)
	e.Msg(c.reg)
	e.Int(c.budget)
	e.Int(c.maxDepth)
	e.Bools(c.intra)
	e.Int64s(c.nbrID)
	e.Int64s(c.nbrLvl)
	e.Tree(c.tree)
	e.Varint(c.level)
	e.Ints(c.assigned)
	e.Int(c.deadline)
	e.Bool(c.adopted)
	e.Int(c.parentPort)
	e.Ints(c.childPorts)
}

// resumePartCtx mirrors EncodeState; opts parameterizes the reinstalled
// Stage II handoff exactly as NewStageIINode would.
func resumePartCtx(d *congest.SnapDecoder, opts StageIIOptions) (congest.StepProgram, error) {
	o := opts.withDefaults()
	c := &PartCtxStep{restored: true}
	c.part = decOutcome(d)
	c.done = stageIIHandoff(c.part, o)
	c.phase = o.partCtxPhase
	c.pc = pcOp(d.Int())
	c.inOp = d.Bool()
	c.bd.DecodeState(d)
	c.cv.DecodeState(d)
	c.reg = d.Msg()
	c.budget = d.Int()
	c.maxDepth = d.Int()
	c.intra = d.Bools()
	c.nbrID = d.Int64s()
	c.nbrLvl = d.Int64s()
	c.tree = d.Tree()
	c.level = d.Varint()
	c.assigned = d.Ints()
	c.deadline = d.Int()
	c.adopted = d.Bool()
	c.parentPort = d.Int()
	c.childPorts = d.Ints()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if c.pc > pcDone {
		return nil, fmt.Errorf("core: part-context snapshot: pc %d out of range", c.pc)
	}
	return c, nil
}

// reattach reinstalls the function-typed tree-machine state after a
// restore (the depth probe's per-hop transform and the depth
// convergecast's combiner; every other op runs without functions).
func (c *PartCtxStep) reattach() {
	if !c.inOp {
		return
	}
	switch c.pc {
	case pcDepthDown:
		c.bd.SetTransform(depthTransform)
	case pcDepthUp:
		c.cv.SetCombine(combineMaxVal)
	}
}

// SnapshotKind implements congest.Snapshottable.
func (s *stage2Node) SnapshotKind() uint16 { return SnapKindStageII }

// EncodeState implements congest.Snapshottable. Every mutable field is
// encoded except the assigned non-tree cache (nonTree/haveNonTree), which
// is a pure function of encoded fields and is recomputed on demand after
// a restore.
func (s *stage2Node) EncodeState(e *congest.SnapEncoder) {
	encOutcome(e, s.part)
	e.Uvarint(math.Float64bits(s.opts.Epsilon))
	e.Uvarint(math.Float64bits(s.opts.SampleCoeff))
	e.Int(int(s.opts.EmbedMode))
	e.Bool(s.opts.StrictEmbedReject)
	e.Int(int(s.pc))
	e.Bool(s.inOp)
	s.bd.EncodeState(e)
	s.cv.EncodeState(e)
	s.pu.EncodeState(e)
	s.bid.EncodeState(e)
	e.Msg(s.reg)
	e.Int(s.budget)
	e.Int(s.maxDepth)
	e.Bools(s.intra)
	e.Int64s(s.nbrID)
	e.Int64s(s.nbrLvl)
	e.Tree(s.tree)
	e.Varint(s.level)
	e.Ints(s.assigned)
	e.Varint(s.partN)
	e.Varint(s.partM)
	e.Ints(s.rotPorts)
	e.Int32s(s.label)
	e.Int32s(s.edgePos)
	encLabels(e, s.nbrLabels)
	e.Int(s.deadline)
	e.Int(s.per)
	e.Int(s.chunks)
	e.Int(s.ci)
	e.Int32s(s.tails)
	e.Int(s.tailLo)
	e.Bool(s.streaming)
	e.Bool(s.gotAll)
	e.Ints(s.xPorts)
	e.Bools(s.finished)
	e.Int(s.capChunks)
	e.Int(s.sBudget)
	encLabeledEdges(e, s.samples)
	e.Uvarint(uint64(s.verdict))
}

// resumeStage2 mirrors stage2Node.EncodeState. The caller's opts supply
// only the obs phase IDs (deliberately not serialized — see StageIIOptions);
// every algorithmic option is decoded from the snapshot itself.
func resumeStage2(d *congest.SnapDecoder, opts StageIIOptions) (congest.StepProgram, error) {
	s := &stage2Node{restored: true}
	s.part = decOutcome(d)
	s.opts.Epsilon = math.Float64frombits(d.Uvarint())
	s.opts.SampleCoeff = math.Float64frombits(d.Uvarint())
	s.opts.EmbedMode = planar.FallbackMode(d.Int())
	s.opts.StrictEmbedReject = d.Bool()
	s.opts.partCtxPhase = opts.partCtxPhase
	s.opts.opsPhase = opts.opsPhase
	s.pc = s2op(d.Int())
	s.inOp = d.Bool()
	s.bd.DecodeState(d)
	s.cv.DecodeState(d)
	s.pu.DecodeState(d)
	s.bid.DecodeState(d)
	s.reg = d.Msg()
	s.budget = d.Int()
	s.maxDepth = d.Int()
	s.intra = d.Bools()
	s.nbrID = d.Int64s()
	s.nbrLvl = d.Int64s()
	s.tree = d.Tree()
	s.level = d.Varint()
	s.assigned = d.Ints()
	s.partN = d.Varint()
	s.partM = d.Varint()
	s.rotPorts = d.Ints()
	s.label = d.Int32s()
	s.edgePos = d.Int32s()
	s.nbrLabels = decLabels(d)
	s.deadline = d.Int()
	s.per = d.Int()
	s.chunks = d.Int()
	s.ci = d.Int()
	s.tails = d.Int32s()
	s.tailLo = d.Int()
	s.streaming = d.Bool()
	s.gotAll = d.Bool()
	s.xPorts = d.Ints()
	s.finished = d.Bools()
	s.capChunks = d.Int()
	s.sBudget = d.Int()
	s.samples = decLabeledEdges(d)
	s.verdict = congest.Verdict(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if s.pc > o2Finish {
		return nil, fmt.Errorf("core: stage II snapshot: pc %d out of range", s.pc)
	}
	return s, nil
}

// reattach reinstalls the function-typed state a checkpoint cannot carry:
// the counts combiner and the rotation-scatter Keep filter (the only two
// ops that park with a function installed — the sample stream runs with
// Keep nil and every Stage II broadcast uses a nil transform).
func (s *stage2Node) reattach(api *congest.StepAPI) {
	if !s.inOp {
		return
	}
	switch s.pc {
	case o2CountUp:
		s.cv.SetCombine(combineCounts)
	case o2Scatter:
		id := api.ID()
		s.bid.Keep = func(m congest.Message) bool {
			r, ok := m.(rotItem)
			return !ok || r.Node == id
		}
	}
}

// ResumeTester resumes a checkpointed RunTester execution. The graph,
// options, and seed must be those of the original run (the snapshot
// validates n, m, and carries the seed and node ids itself); data is a
// checkpoint produced via congest.Config.Checkpoint. The resumed run
// continues from the captured barrier and produces a byte-identical
// RunResult with identical Metrics.Rounds.
func ResumeTester(g *graph.Graph, opts Options, seed int64, data []byte) (*RunResult, error) {
	o := opts.withDefaults()
	if o.UseEN {
		return nil, fmt.Errorf("core: resume: %w: Elkin–Neiman runs are not snapshottable", congest.ErrNotSnapshottable)
	}
	plan := partition.NewStageIPlan(o.Partition, g.N())
	res, err := congest.ResumeStep(testerConfig(g, seed, o), data,
		func(node int, kind uint16, d *congest.SnapDecoder) (congest.StepProgram, error) {
			switch kind {
			case partition.SnapKindStageI:
				return plan.ResumeNode(d, func(api *congest.StepAPI, po *partition.Outcome) congest.Status {
					return congest.BecomeStep(NewStageIINode(po, o.StageII))
				})
			case SnapKindPartCtx:
				return resumePartCtx(d, o.StageII)
			case SnapKindStageII:
				return resumeStage2(d, o.StageII)
			}
			return nil, fmt.Errorf("core: unknown program snapshot kind %d", kind)
		})
	return newRunResult(res, err)
}
