package core

import (
	"sync"

	"repro/internal/congest"
)

// Message vocabulary of Stage II. Large logical payloads (node labels,
// sampled label pairs, part edge lists, rotations) are chunked into
// O(log n)-bit messages and pipelined.

func bitsVal(v int64) int {
	if v < 0 {
		v = -v
	}
	return congest.BitsForValue(v) + 1
}

// announceMsg is the Stage II boundary exchange: part root and node id.
type announceMsg struct {
	PartRoot int64
	ID       int64
}

func (m announceMsg) Bits() int { return 2 + bitsVal(m.PartRoot) + bitsVal(m.ID) }

// valMsg carries one value in tree operations.
type valMsg struct{ V int64 }

func (m valMsg) Bits() int { return 2 + bitsVal(m.V) }

// noneMsg is a no-contribution marker.
type noneMsg struct{}

func (noneMsg) Bits() int { return 1 }

// bfsMsg announces a BFS level (§2.2.1).
type bfsMsg struct{ Level int64 }

func (m bfsMsg) Bits() int { return 2 + bitsVal(m.Level) }

// childMsg notifies the chosen BFS parent.
type childMsg struct{}

func (childMsg) Bits() int { return 2 }

// lvlMsg carries the final BFS level for edge assignment.
type lvlMsg struct{ Level int64 }

func (m lvlMsg) Bits() int { return 2 + bitsVal(m.Level) }

// countsMsg aggregates (nodes, assigned edges) and broadcasts the Euler
// verdict back down.
type countsMsg struct {
	N, M   int64
	Reject bool
}

func (m countsMsg) Bits() int { return 3 + bitsVal(m.N) + bitsVal(m.M) }

// edgeItem is one part edge (by endpoint ids) in the embedding gather.
type edgeItem struct{ A, B int64 }

func (m edgeItem) Bits() int { return 2 + bitsVal(m.A) + bitsVal(m.B) }

// rotItem is one rotation entry in the embedding scatter: neighbor Nbr is
// at clockwise position Idx around node Node.
type rotItem struct {
	Node int64
	Idx  int32
	Nbr  int64
}

func (m rotItem) Bits() int { return 2 + bitsVal(m.Node) + bitsVal(int64(m.Idx)) + bitsVal(m.Nbr) }

// embedFail tells the part that the strict embedding step rejected.
type embedFail struct{}

func (embedFail) Bits() int { return 2 }

// labelChunk carries a slice of a node label down the BFS tree.
type labelChunk struct {
	Elems []int32
	Last  bool
}

func (m labelChunk) Bits() int {
	b := 4
	for _, e := range m.Elems {
		b += bitsVal(int64(e))
	}
	return b
}

// sampleChunk carries a slice of a sampled edge's label pair, keyed by the
// owning node and the edge's index at that node. The payload flattens
// [len(u), u..., len(v), v...]. Chunks are boxed as pointers: the sample
// stream is broadcast to a whole part, so every member holds the same
// boxes, and the first box of the stream hosts the once-per-part
// reassembly memo of collectSamples. The memo fields are receiver-local
// state, not payload — Bits ignores them and the checkpoint codec does
// not carry them (a restored stream simply reassembles again).
type sampleChunk struct {
	Owner int64
	EIdx  int32
	CIdx  int32
	Last  bool
	Elems []int32

	memoOnce sync.Once
	memo     []LabeledEdge
}

func (m *sampleChunk) Bits() int {
	b := 5 + bitsVal(m.Owner) + bitsVal(int64(m.EIdx)) + bitsVal(int64(m.CIdx))
	for _, e := range m.Elems {
		b += bitsVal(int64(e))
	}
	return b
}

// depthTransform increments the depth-probe payload on each hop (shared
// by both execution models of computeBudget).
func depthTransform(m congest.Message) congest.Message {
	return valMsg{V: m.(valMsg).V + 1}
}

// combineMaxVal keeps the maximum valMsg (depth convergecast).
func combineMaxVal(own congest.Message, ch []congest.Message) congest.Message {
	best := own.(valMsg).V
	for _, c := range ch {
		if v := c.(valMsg).V; v > best {
			best = v
		}
	}
	return valMsg{V: best}
}

// combineCounts sums (node, assigned-edge) counts up the BFS tree.
func combineCounts(own congest.Message, ch []congest.Message) congest.Message {
	c := own.(countsMsg)
	for _, x := range ch {
		xc := x.(countsMsg)
		c.N += xc.N
		c.M += xc.M
	}
	return c
}

// labelElems flattens a label pair for chunking.
func labelElems(u, v Label) []int32 {
	out := make([]int32, 0, len(u)+len(v)+2)
	out = append(out, int32(len(u)))
	out = append(out, u...)
	out = append(out, int32(len(v)))
	out = append(out, v...)
	return out
}

// parseLabelPair reverses labelElems.
func parseLabelPair(elems []int32) (LabeledEdge, bool) {
	if len(elems) < 2 {
		return LabeledEdge{}, false
	}
	lu := int(elems[0])
	if len(elems) < 1+lu+1 {
		return LabeledEdge{}, false
	}
	u := Label(elems[1 : 1+lu])
	lv := int(elems[1+lu])
	if len(elems) != 2+lu+lv {
		return LabeledEdge{}, false
	}
	v := Label(elems[2+lu:])
	// The returned labels alias elems; callers pass freshly assembled
	// slices that are not reused afterwards.
	return NewLabeledEdge(u, v), true
}
