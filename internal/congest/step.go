package congest

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// StepProgram is a node program expressed as an explicit state machine:
// the engine calls Step once per round in which the node is awake, handing
// it the messages delivered at the current barrier. The returned Status
// tells the engine when to wake the node next. Step runs to completion
// without blocking, which lets the engine drive all nodes in a plain loop
// — no goroutines and no channel operations on the hot path (DESIGN.md §2).
//
// The inbox slice is owned by the engine and is only valid until the next
// Step call for the same node; programs must copy anything they retain.
type StepProgram interface {
	Step(api *StepAPI, inbox []Inbound) Status
}

// StepFunc adapts a plain function to StepProgram.
type StepFunc func(api *StepAPI, inbox []Inbound) Status

// Step implements StepProgram.
func (f StepFunc) Step(api *StepAPI, inbox []Inbound) Status { return f(api, inbox) }

type statusKind uint8

const (
	statusRunning statusKind = iota
	statusSleep
	statusDone
	statusBecome
	statusBecomeStep
	statusPanic // internal: shim goroutine panicked
)

// Status is a StepProgram's yield instruction: it completes the node's
// current round and tells the engine when to call Step again. The zero
// value is Running().
type Status struct {
	kind     statusKind
	wake     int
	cont     Program
	contStep StepProgram
	panicVal any
}

// Running completes the round and wakes the node at the next round.
func Running() Status { return Status{kind: statusRunning} }

// Sleep completes the round and wakes the node when a message arrives or
// the global round reaches `untilRound`, whichever comes first (the step
// counterpart of API.SleepUntil).
func Sleep(untilRound int) Status { return Status{kind: statusSleep, wake: untilRound} }

// Done terminates the node. Messages sent to it afterwards are dropped
// (counted in Metrics.DroppedToDone).
func Done() Status { return Status{kind: statusDone} }

// Become switches the node to the blocking compatibility model: from the
// current round on, the node runs cont as an ordinary blocking Program on
// its own goroutine. The continuation starts executing immediately, in the
// same round in which Become was returned, exactly as if the whole node
// program had been one sequential function. Native step phases can hand
// over to not-yet-ported blocking phases this way (e.g. Stage I runs
// natively and Stage II runs as its blocking continuation).
func Become(cont Program) Status { return Status{kind: statusBecome, cont: cont} }

// BecomeStep switches the node to a different StepProgram: cont's first
// Step runs immediately, in the same round, staying on the native fast
// path. Use it to chain independently written step phases (e.g. Stage I
// hands over to Stage II).
func BecomeStep(cont StepProgram) Status { return Status{kind: statusBecomeStep, contStep: cont} }

// StepAPI is a node's handle to the network inside Step calls. It is also
// the engine-side core that the blocking API wraps, so both execution
// models share identical send, verdict, and randomness semantics. It is
// only valid during the node's Step call (or, for blocking programs,
// between the engine's resume and the program's next yield) and is not
// safe for concurrent use.
//
// The handle itself is a 32-byte view: per-round mutable state (outbox,
// duplicate-send bits, verdict/charge flags) lives in the engine's
// struct-of-arrays slabs, indexed by the node id, so accessors write
// dense arrays the barrier merge then streams through (DESIGN.md §8).
type StepAPI struct {
	eng     *engine
	node    int32 // slab index of this node
	degree  int32
	sentOff int32 // first word of this node's bitset in eng.sentBits
	id      int64
}

// ID returns this node's CONGEST identifier.
func (a *StepAPI) ID() int64 { return a.id }

// Index returns the node's simulation index (0..n-1). Exposed for tests
// and output collection; faithful algorithms use ID and ports only.
func (a *StepAPI) Index() int { return int(a.node) }

// N returns the number of nodes in the network (standard CONGEST
// assumption: n is global knowledge).
func (a *StepAPI) N() int { return a.eng.n }

// Degree returns the number of incident edges (ports 0..Degree()-1).
func (a *StepAPI) Degree() int { return int(a.degree) }

// BitBound returns the per-message bit bound B of this network, so that
// algorithms can chunk long logical payloads into B-bit messages.
func (a *StepAPI) BitBound() int { return a.eng.bitBound }

// Rand returns this node's private deterministic randomness source. The
// source is created on first use: only the sampling phases draw
// randomness, so most nodes of a deterministic-schedule run never pay
// the ~5KB math/rand state (the draw sequence is unaffected — seeding
// depends only on the run seed and the node id). The source counts its
// draws so a checkpoint can replay it by fast-forwarding a fresh source
// (snapshot.go).
func (a *StepAPI) Rand() *rand.Rand {
	e := a.eng
	r := e.rngs[a.node]
	if r == nil {
		src := &countingSource{src: nodeRNGSource(e.seed, int(a.node))}
		e.rngSrc[a.node] = src
		r = rand.New(src)
		e.rngs[a.node] = r
	}
	return r
}

// Round returns the current global round number.
func (a *StepAPI) Round() int { return a.eng.round }

// Send queues m on the given port for delivery at the next round. Sending
// twice on one port in a single round violates the CONGEST model and
// panics, as does an out-of-range port.
func (a *StepAPI) Send(port int, m Message) {
	if port < 0 || port >= int(a.degree) {
		panic(fmt.Sprintf("congest: node %d: send on invalid port %d (degree %d)", a.node, port, a.degree))
	}
	e := a.eng
	w, b := int(a.sentOff)+(port>>6), uint64(1)<<(port&63)
	if e.sentBits[w]&b != 0 {
		panic(fmt.Sprintf("congest: node %d: two messages on port %d in one round", a.node, port))
	}
	e.sentBits[w] |= b
	e.outbox[a.node] = append(e.outbox[a.node], outMsg{port: port, msg: m})
}

// SendAll queues m on every port.
func (a *StepAPI) SendAll(m Message) {
	for p := 0; p < int(a.degree); p++ {
		a.Send(p, m)
	}
}

// Output records this node's verdict. The last call wins; a node that
// never calls Output contributes VerdictNone. Only this node's slab
// slots are written, so Output is safe from parallel workers; the engine
// folds the reject flag into its global state at the barrier.
func (a *StepAPI) Output(v Verdict) {
	a.eng.verdicts[a.node] = v
	if v == VerdictReject {
		a.eng.rejFlag[a.node] = true
	}
}

// Verdict returns the verdict this node has recorded so far.
func (a *StepAPI) Verdict() Verdict {
	return a.eng.verdicts[a.node]
}

// ChargeModeledRounds adds r to the modeled-rounds counter, accounting for
// the documented black-box substitutions (DESIGN.md §3). Charges are
// per-node and summed into Metrics.ModeledRounds when the run ends.
func (a *StepAPI) ChargeModeledRounds(r int) {
	a.eng.modeled[a.node] += int64(r)
}

// ChargeTraffic adds msgs messages totaling bits bits to this node's
// modeled-traffic counters. Programs that elide exchanges whose content
// is provably fixed — Stage I's forest-decomposition fast-forward
// (DESIGN.md §10) — charge exactly the traffic the elided rounds would
// have sent, so Metrics.Messages and Metrics.TotalBits stay identical
// to an unbatched run. Charges are per-node, summed into the run's
// Metrics at the end, and folded into snapshot headers so resumed runs
// report the same totals.
func (a *StepAPI) ChargeTraffic(msgs, bits int64) {
	a.eng.chargedMsgs[a.node] += msgs
	a.eng.chargedBits[a.node] += bits
	if a.eng.pWinCnt != nil {
		// Per-phase attribution: record the fast-forward window so the
		// barrier fold can charge it to the current phase (obs.go).
		a.eng.pWinCnt[a.node]++
		a.eng.pWinMsgs[a.node] += msgs
		a.eng.pWinBits[a.node] += bits
	}
}

// PhaseEnter announces that this node is entering the named phase (an
// ID interned on the run's obs.Probe before the run started). The
// engine folds announcements at the next barrier in due order — the
// last announcing node in ascending index order decides the current
// phase — and attributes subsequent cost to it. Safe from parallel
// workers (each node writes only its own slot) and a no-op when the run
// has no probe (one nil check). PhaseEnter(0) is a no-op: ID 0 is the
// implicit root phase "run".
func (a *StepAPI) PhaseEnter(id obs.PhaseID) {
	if a.eng.pReq != nil {
		a.eng.pReq[a.node] = int32(id)
	}
}

// clearRound resets the per-round send state after the engine drained the
// outbox. Buffers are retained to avoid per-round allocation. A node
// that sent nothing has nothing to clear (every set bit in sentBits is
// paired with an outbox append), so silent nodes skip the word loop.
func (a *StepAPI) clearRound() {
	e := a.eng
	if len(e.outbox[a.node]) == 0 {
		return
	}
	e.outbox[a.node] = e.outbox[a.node][:0]
	for w, end := int(a.sentOff), int(a.sentOff)+(int(a.degree)+63)/64; w < end; w++ {
		e.sentBits[w] = 0
	}
}
