package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// snapMsg is a registered test message so checkpointed mailboxes can
// carry it.
type snapMsg struct{ V int64 }

func (snapMsg) Bits() int { return 8 }

const snapTestMsgKind = 200

func init() {
	RegisterMessageCodec(snapTestMsgKind, snapMsg{},
		func(e *SnapEncoder, m Message) { e.Varint(m.(snapMsg).V) },
		func(d *SnapDecoder) Message { return snapMsg{V: d.Varint()} })
}

// snapProg is a minimal Snapshottable program: every round it forwards a
// rolling sum on all ports, draws one random value into the sum (so RNG
// replay is exercised), and at the deadline records a verdict derived
// from the sum.
type snapProg struct {
	started  bool
	deadline int
	sum      int64
}

const snapTestProgKind = 201

func (p *snapProg) SnapshotKind() uint16 { return snapTestProgKind }

func (p *snapProg) EncodeState(e *SnapEncoder) {
	e.Bool(p.started)
	e.Int(p.deadline)
	e.Varint(p.sum)
}

func decodeSnapProg(d *SnapDecoder) (StepProgram, error) {
	p := &snapProg{}
	p.started = d.Bool()
	p.deadline = d.Int()
	p.sum = d.Varint()
	return p, d.Err()
}

func (p *snapProg) Step(api *StepAPI, inbox []Inbound) Status {
	if !p.started {
		p.started = true
		p.deadline = 20
		p.sum = api.ID()
	}
	for _, in := range inbox {
		p.sum += in.Msg.(snapMsg).V
	}
	p.sum += api.Rand().Int63n(1000)
	if api.Round() >= p.deadline {
		if p.sum%2 == 0 {
			api.Output(VerdictAccept)
		} else {
			api.Output(VerdictReject)
		}
		return Done()
	}
	api.SendAll(snapMsg{V: p.sum % 97})
	return Running()
}

func snapTestConfig(g *graph.Graph, seed int64) Config {
	ids := make([]int64, g.N())
	rng := rand.New(rand.NewSource(seed))
	for i, p := range rng.Perm(g.N()) {
		ids[i] = int64(p + 1)
	}
	return Config{Graph: g, Seed: seed, IDs: ids, MaxRounds: 100}
}

func snapProgs(int) StepProgram { return &snapProg{} }

func snapRestore(node int, kind uint16, d *SnapDecoder) (StepProgram, error) {
	if kind != snapTestProgKind {
		return nil, fmt.Errorf("unexpected kind %d", kind)
	}
	return decodeSnapProg(d)
}

// TestSnapshotResumeEquivalence kills a run at a barrier and resumes from
// the last checkpoint, asserting a byte-identical Result and identical
// round count.
func TestSnapshotResumeEquivalence(t *testing.T) {
	defer faultpoint.Reset()
	g := graph.Grid(4, 4)
	for seed := int64(0); seed < 3; seed++ {
		base, err := RunStep(snapTestConfig(g, seed), snapProgs)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		for _, crashAt := range []int{2, 7, 15} {
			var last []byte
			cfg := snapTestConfig(g, seed)
			cfg.Checkpoint = CheckpointConfig{
				EveryBarriers: 1,
				Sink: func(round int, data []byte) error {
					last = data
					return nil
				},
			}
			boom := errors.New("boom")
			faultpoint.Arm(FaultBarrier, crashAt, func() error { return boom })
			_, err := RunStep(cfg, snapProgs)
			faultpoint.Disarm(FaultBarrier)
			if !errors.Is(err, boom) {
				t.Fatalf("seed %d crash@%d: expected injected fault, got %v", seed, crashAt, err)
			}
			if last == nil {
				t.Fatalf("seed %d crash@%d: no checkpoint captured", seed, crashAt)
			}
			info, err := InspectSnapshot(last)
			if err != nil {
				t.Fatalf("seed %d crash@%d: inspect: %v", seed, crashAt, err)
			}
			if info.N != g.N() || info.M != g.M() || info.Seed != seed {
				t.Fatalf("seed %d crash@%d: bad snapshot info %+v", seed, crashAt, info)
			}
			res, err := ResumeStep(snapTestConfig(g, seed), last, snapRestore)
			if err != nil {
				t.Fatalf("seed %d crash@%d: resume: %v", seed, crashAt, err)
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("seed %d crash@%d: resumed result differs:\nbase:    %+v\nresumed: %+v",
					seed, crashAt, base, res)
			}
		}
	}
}

// TestSnapshotCorruptionRejected asserts truncated and bit-flipped
// checkpoints fail validation instead of restoring garbage.
func TestSnapshotCorruptionRejected(t *testing.T) {
	defer faultpoint.Reset()
	g := graph.Cycle(8)
	var snap []byte
	cfg := snapTestConfig(g, 1)
	cfg.Checkpoint = CheckpointConfig{
		EveryBarriers: 5,
		Sink: func(round int, data []byte) error {
			if snap == nil {
				snap = append([]byte(nil), data...)
			}
			return nil
		},
	}
	if _, err := RunStep(cfg, snapProgs); err != nil {
		t.Fatalf("run: %v", err)
	}
	if snap == nil {
		t.Fatal("no checkpoint captured")
	}
	if _, err := ResumeStep(snapTestConfig(g, 1), snap, snapRestore); err != nil {
		t.Fatalf("pristine snapshot should resume: %v", err)
	}

	truncated := snap[:len(snap)-5]
	if _, err := InspectSnapshot(truncated); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated: expected ErrBadSnapshot, got %v", err)
	}
	if _, err := ResumeStep(snapTestConfig(g, 1), truncated, snapRestore); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated resume: expected ErrBadSnapshot, got %v", err)
	}

	flippedFooter := append([]byte(nil), snap...)
	flippedFooter[len(flippedFooter)-1] ^= 0x40
	if _, err := ResumeStep(snapTestConfig(g, 1), flippedFooter, snapRestore); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("flipped footer: expected ErrBadSnapshot, got %v", err)
	}

	flippedBody := append([]byte(nil), snap...)
	flippedBody[len(flippedBody)/2] ^= 0x01
	if _, err := ResumeStep(snapTestConfig(g, 1), flippedBody, snapRestore); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("flipped body: expected ErrBadSnapshot, got %v", err)
	}

	if _, err := InspectSnapshot([]byte("PCK1")); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("short data: expected ErrBadSnapshot, got %v", err)
	}
	wrongMagic := append([]byte(nil), snap...)
	copy(wrongMagic, "NOPE")
	if _, err := InspectSnapshot(wrongMagic); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("wrong magic: expected ErrBadSnapshot, got %v", err)
	}
}

// TestSnapshotSinkErrorsDoNotAbort asserts a failing checkpoint sink is
// reported to OnError but never changes the run's outcome (durability is
// lost, not correctness).
func TestSnapshotSinkErrorsDoNotAbort(t *testing.T) {
	g := graph.Cycle(6)
	base, err := RunStep(snapTestConfig(g, 2), snapProgs)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var sinkErrs int
	cfg := snapTestConfig(g, 2)
	cfg.Checkpoint = CheckpointConfig{
		EveryBarriers: 1,
		Sink:          func(round int, data []byte) error { return errors.New("disk full") },
		OnError:       func(round int, err error) { sinkErrs++ },
	}
	res, err := RunStep(cfg, snapProgs)
	if err != nil {
		t.Fatalf("run with failing sink: %v", err)
	}
	if sinkErrs == 0 {
		t.Fatal("OnError never called")
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatalf("failing sink changed the result:\nbase: %+v\ngot:  %+v", base, res)
	}
}

// TestSnapshotNotSnapshottable asserts runs of programs without snapshot
// support complete normally, reporting ErrNotSnapshottable once via
// OnError and then disabling checkpointing.
func TestSnapshotNotSnapshottable(t *testing.T) {
	g := graph.Cycle(6)
	var got []error
	cfg := snapTestConfig(g, 3)
	cfg.Checkpoint = CheckpointConfig{
		EveryBarriers: 1,
		Sink:          func(round int, data []byte) error { t.Error("sink called for plain program"); return nil },
		OnError:       func(round int, err error) { got = append(got, err) },
	}
	res, err := RunStep(cfg, func(int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Round() >= 5 {
				api.Output(VerdictAccept)
				return Done()
			}
			return Running()
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Accepted() {
		t.Fatal("run did not complete")
	}
	if len(got) != 1 || !errors.Is(got[0], ErrNotSnapshottable) {
		t.Fatalf("expected exactly one ErrNotSnapshottable, got %v", got)
	}
}

// TestDeadlineExceeded asserts a past wall-clock deadline aborts the run
// with the typed error at a barrier.
func TestDeadlineExceeded(t *testing.T) {
	g := graph.Cycle(6)
	cfg := snapTestConfig(g, 4)
	cfg.Deadline = time.Now().Add(-time.Hour)
	_, err := RunStep(cfg, snapProgs)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expected ErrDeadlineExceeded, got %v", err)
	}
}
