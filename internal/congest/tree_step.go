package congest

import "fmt"

// Step-native ports of the Tree communication primitives. Each primitive
// is a small state machine driven from a StepProgram:
//
//	completed := sm.Begin(api, ...)   // at the operation's start round
//	for !completed {
//	    // yield sm.Wake() to the engine, then on the next wake:
//	    completed = sm.Feed(api, inbox)
//	}
//	result, ok := sm.Result()
//
// The machines replicate the blocking versions in tree.go round for round:
// they send the same messages in the same rounds and complete exactly at
// their deadline, so a step program composed of them produces byte-identical
// Results (rounds, message counts, bits) to its blocking counterpart. The
// structs are reusable: Begin fully resets them, and retained buffers are
// recycled across operations to keep the hot path allocation-free. They
// are embedded by value in the per-node program state, and everything
// they need per wake reaches them through the slab-backed StepAPI
// (DESIGN.md §8); the run-constant bit bound is captured at Begin so the
// per-round send path does not re-chase it through the engine.

// BroadcastDownStep is the step-native Tree.BroadcastDown: it distributes
// a message from the root to every tree node, transformed on each hop.
type BroadcastDownStep struct {
	t         Tree
	deadline  int
	transform func(Message) Message
	got       Message
	ok        bool
}

// Begin starts the broadcast at the current round (the root sends to its
// children immediately). It returns true when the operation is already
// complete (deadline reached).
func (b *BroadcastDownStep) Begin(api *StepAPI, t Tree, deadline int, rootMsg Message, transform func(Message) Message) bool {
	b.t, b.deadline, b.transform = t, deadline, transform
	b.got, b.ok = nil, false
	if t.IsRoot() {
		b.got, b.ok = rootMsg, true
		for _, c := range t.ChildPorts {
			api.Send(c, rootMsg)
		}
	}
	return api.Round() >= b.deadline
}

// Feed consumes one wake and reports whether the operation completed.
func (b *BroadcastDownStep) Feed(api *StepAPI, inbox []Inbound) bool {
	if b.got == nil && !b.t.IsRoot() {
		for _, in := range inbox {
			if in.Port != b.t.ParentPort {
				panic(fmt.Sprintf("congest: BroadcastDown: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			b.got = in.Msg
		}
		if b.got != nil {
			b.ok = true
			if b.transform != nil {
				b.got = b.transform(b.got)
			}
			for _, c := range b.t.ChildPorts {
				api.Send(c, b.got)
			}
		}
	}
	return api.Round() >= b.deadline
}

// Wake is the scheduling request while the operation is incomplete.
func (b *BroadcastDownStep) Wake() Status { return Sleep(b.deadline) }

// Result returns the received message; ok is false when the deadline
// passed before the message arrived (budget too small).
func (b *BroadcastDownStep) Result() (Message, bool) { return b.got, b.ok }

// EncodeState serializes the machine for a checkpoint. The transform
// function is not serialized: the owning program must reinstall it after
// DecodeState (before the next Feed) when it uses one.
func (b *BroadcastDownStep) EncodeState(e *SnapEncoder) {
	e.Tree(b.t)
	e.Int(b.deadline)
	e.Msg(b.got)
	e.Bool(b.ok)
}

// DecodeState restores the machine from a checkpoint record.
func (b *BroadcastDownStep) DecodeState(d *SnapDecoder) {
	b.t = d.Tree()
	b.deadline = d.Int()
	b.got = d.Msg()
	b.ok = d.Bool()
	b.transform = nil
}

// SetTransform reinstalls the per-hop transform after DecodeState; the
// function itself cannot be serialized.
func (b *BroadcastDownStep) SetTransform(f func(Message) Message) { b.transform = f }

// ConvergecastStep is the step-native Tree.Convergecast: it aggregates one
// message from every tree node to the root.
type ConvergecastStep struct {
	t        Tree
	deadline int
	own      Message
	combine  func(own Message, children []Message) Message
	children []Message // reused across operations
	missing  int
	agg      Message
	ok       bool
}

// Begin starts the convergecast at the current round. Leaves send to their
// parent immediately.
func (c *ConvergecastStep) Begin(api *StepAPI, t Tree, deadline int, own Message, combine func(own Message, children []Message) Message) bool {
	c.t, c.deadline, c.own, c.combine = t, deadline, own, combine
	c.children = c.children[:0]
	for range t.ChildPorts {
		c.children = append(c.children, nil)
	}
	c.missing = len(t.ChildPorts)
	c.agg, c.ok = nil, false
	if c.missing == 0 {
		c.finish(api)
	}
	return api.Round() >= c.deadline
}

// Feed consumes one wake and reports whether the operation completed.
func (c *ConvergecastStep) Feed(api *StepAPI, inbox []Inbound) bool {
	if c.missing > 0 {
		for _, in := range inbox {
			idx := -1
			for i, p := range c.t.ChildPorts {
				if p == in.Port {
					idx = i
					break
				}
			}
			if idx == -1 {
				panic(fmt.Sprintf("congest: Convergecast: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			if c.children[idx] != nil {
				panic(fmt.Sprintf("congest: Convergecast: duplicate message from child port %d", in.Port))
			}
			c.children[idx] = in.Msg
			c.missing--
		}
		if c.missing == 0 {
			c.finish(api)
		}
	}
	return api.Round() >= c.deadline
}

func (c *ConvergecastStep) finish(api *StepAPI) {
	c.agg = c.combine(c.own, c.children)
	c.ok = true
	if !c.t.IsRoot() {
		api.Send(c.t.ParentPort, c.agg)
	}
}

// Wake is the scheduling request while the operation is incomplete.
func (c *ConvergecastStep) Wake() Status { return Sleep(c.deadline) }

// Result returns the aggregate (the full aggregate at the root, the
// subtree aggregate elsewhere); ok is false when the deadline passed
// before all children reported.
func (c *ConvergecastStep) Result() (Message, bool) { return c.agg, c.ok }

// EncodeState serializes the machine for a checkpoint. The combine
// function is not serialized: the owning program must reinstall it after
// DecodeState when the operation is still in flight.
func (c *ConvergecastStep) EncodeState(e *SnapEncoder) {
	e.Tree(c.t)
	e.Int(c.deadline)
	e.Msg(c.own)
	e.Msgs(c.children)
	e.Int(c.missing)
	e.Msg(c.agg)
	e.Bool(c.ok)
}

// DecodeState restores the machine from a checkpoint record.
func (c *ConvergecastStep) DecodeState(d *SnapDecoder) {
	c.t = d.Tree()
	c.deadline = d.Int()
	c.own = d.Msg()
	c.children = d.Msgs()
	c.missing = d.Int()
	c.agg = d.Msg()
	c.ok = d.Bool()
	c.combine = nil
}

// SetCombine reinstalls the aggregation function after DecodeState; the
// function itself cannot be serialized.
func (c *ConvergecastStep) SetCombine(f func(own Message, children []Message) Message) { c.combine = f }

// PipelineUpStep is the step-native Tree.PipelineUp: it streams every
// node's items to the root, one B-bit batch of items per tree edge per
// round (packPipe).
type PipelineUpStep struct {
	t            Tree
	deadline     int
	bitBound     int       // captured at Begin (run constant)
	collected    []Message // root: gathered items
	queue        []Message // non-root: pending payloads to forward
	doneChildren int
	sentEnd      bool
	wantNext     bool // non-root: advance one round (NextRound) vs sleep
}

// Begin starts the pipeline at the current round.
func (p *PipelineUpStep) Begin(api *StepAPI, t Tree, deadline int, items []Message) bool {
	p.t, p.deadline, p.bitBound = t, deadline, api.BitBound()
	p.collected = p.collected[:0]
	// The queue backing must be fresh each operation: the batches packed
	// from it alias its slots, and the previous operation's final batches
	// may still sit in a recipient's mailbox at the handover round.
	p.queue = make([]Message, 0, len(items))
	p.doneChildren = 0
	p.sentEnd = false
	if t.IsRoot() {
		p.collected = append(p.collected, items...)
		return api.Round() >= p.deadline
	}
	p.queue = append(p.queue, items...)
	if api.Round() >= p.deadline {
		return true
	}
	p.sendPhase(api)
	return false
}

// sendPhase mirrors one send step of the blocking loop body: a maximal
// bit-bound-sized batch is packed from the queue front (own items and
// received ones re-batch together, so links stay fully utilized).
func (p *PipelineUpStep) sendPhase(api *StepAPI) {
	allDone := p.doneChildren == len(p.t.ChildPorts)
	switch {
	case len(p.queue) > 0:
		m, n := packPipe(p.queue, p.bitBound)
		api.Send(p.t.ParentPort, m)
		p.queue = p.queue[n:]
	case allDone && !p.sentEnd:
		api.Send(p.t.ParentPort, pipeEnd{})
		p.sentEnd = true
	}
	allDone = p.doneChildren == len(p.t.ChildPorts)
	p.wantNext = !(p.sentEnd || (len(p.queue) == 0 && !allDone))
}

// Feed consumes one wake and reports whether the operation completed.
func (p *PipelineUpStep) Feed(api *StepAPI, inbox []Inbound) bool {
	if p.t.IsRoot() {
		if p.doneChildren < len(p.t.ChildPorts) {
			for _, in := range inbox {
				if !p.t.isChildPort(in.Port) {
					panic(fmt.Sprintf("congest: PipelineUp: unexpected message on port %d (node %d)", in.Port, api.Index()))
				}
				var ok bool
				if p.collected, ok = pushPipePayloads(p.collected, in.Msg); !ok {
					if _, end := in.Msg.(pipeEnd); !end {
						panic("congest: PipelineUp: unexpected message type")
					}
					p.doneChildren++
				}
			}
		}
		return api.Round() >= p.deadline
	}
	for _, in := range inbox {
		if !p.t.isChildPort(in.Port) {
			panic(fmt.Sprintf("congest: PipelineUp: unexpected message on port %d (node %d)", in.Port, api.Index()))
		}
		var ok bool
		if p.queue, ok = pushPipePayloads(p.queue, in.Msg); !ok {
			if _, end := in.Msg.(pipeEnd); !end {
				panic("congest: PipelineUp: unexpected message type")
			}
			p.doneChildren++
		}
	}
	if api.Round() >= p.deadline {
		return true
	}
	p.sendPhase(api)
	return false
}

// Wake is the scheduling request while the operation is incomplete.
func (p *PipelineUpStep) Wake() Status {
	if !p.t.IsRoot() && p.wantNext {
		return Running()
	}
	return Sleep(p.deadline)
}

// Result returns, at the root, all items of the tree (its own first, then
// received ones in deterministic arrival order) and whether the stream
// completed; other nodes return nil and whether they flushed their queue.
func (p *PipelineUpStep) Result() ([]Message, bool) {
	if p.t.IsRoot() {
		return p.collected, p.doneChildren == len(p.t.ChildPorts)
	}
	return nil, p.sentEnd && len(p.queue) == 0
}

// EncodeState serializes the machine for a checkpoint.
func (p *PipelineUpStep) EncodeState(e *SnapEncoder) {
	e.Tree(p.t)
	e.Int(p.deadline)
	e.Int(p.bitBound)
	e.Msgs(p.collected)
	e.Msgs(p.queue)
	e.Int(p.doneChildren)
	e.Bool(p.sentEnd)
	e.Bool(p.wantNext)
}

// DecodeState restores the machine from a checkpoint record. The queue
// backing decoded here is necessarily fresh, which preserves Begin's
// no-aliasing invariant for batches still in flight.
func (p *PipelineUpStep) DecodeState(d *SnapDecoder) {
	p.t = d.Tree()
	p.deadline = d.Int()
	p.bitBound = d.Int()
	p.collected = d.Msgs()
	p.queue = d.Msgs()
	p.doneChildren = d.Int()
	p.sentEnd = d.Bool()
	p.wantNext = d.Bool()
}

// BroadcastItemsDownStep is the step-native Tree.BroadcastItemsDown: it
// streams a sequence of items from the root to every tree node, one item
// per round, pipelined through the tree.
type BroadcastItemsDownStep struct {
	t        Tree
	deadline int
	bitBound int       // captured at Begin (run constant)
	items    []Message // root: the source items
	got      []Message // non-root: received items (reused)
	next     int       // root: index of the next item to send
	endSent  bool      // root: pipeEnd dispatched
	done     bool      // non-root: pipeEnd received

	// Keep, when non-nil, filters which received items a non-root node
	// retains in its Result slice. Forwarding down the tree (and thus the
	// message schedule) is unaffected — the filter only cuts the local
	// buffer, for streams where a node needs a small slice of the items
	// (e.g. its own rotation entries out of the whole part's). Set it
	// before Begin; it applies until replaced, so callers reusing the
	// struct for an unfiltered stream must reset it to nil before that
	// Begin. The root's Result is always the unfiltered source items.
	Keep func(Message) bool
}

// Begin starts the stream at the current round (the root sends the first
// item immediately).
func (b *BroadcastItemsDownStep) Begin(api *StepAPI, t Tree, deadline int, items []Message) bool {
	b.t, b.deadline, b.items = t, deadline, items
	b.bitBound = api.BitBound()
	b.got = b.got[:0]
	b.next, b.endSent, b.done = 0, false, false
	if t.IsRoot() {
		b.rootSend(api)
	}
	return api.Round() >= b.deadline
}

func (b *BroadcastItemsDownStep) rootSend(api *StepAPI) {
	if b.next < len(b.items) {
		m, n := packPipe(b.items[b.next:], b.bitBound) // boxed once for all children
		b.next += n
		for _, c := range b.t.ChildPorts {
			api.Send(c, m)
		}
		return
	}
	if !b.endSent {
		for _, c := range b.t.ChildPorts {
			api.Send(c, pipeEnd{})
		}
		b.endSent = true
	}
}

// Feed consumes one wake and reports whether the operation completed.
func (b *BroadcastItemsDownStep) Feed(api *StepAPI, inbox []Inbound) bool {
	if b.t.IsRoot() {
		if !b.endSent {
			b.rootSend(api)
		}
		return api.Round() >= b.deadline
	}
	if !b.done {
		for _, in := range inbox {
			if in.Port != b.t.ParentPort {
				panic(fmt.Sprintf("congest: BroadcastItemsDown: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			switch m := in.Msg.(type) {
			case pipeItem:
				if b.Keep == nil || b.Keep(m.payload) {
					b.got = append(b.got, m.payload)
				}
			case pipeBatch:
				for _, pl := range m.payloads {
					if b.Keep == nil || b.Keep(pl) {
						b.got = append(b.got, pl)
					}
				}
			case pipeEnd:
				b.done = true
				for _, c := range b.t.ChildPorts {
					api.Send(c, pipeEnd{})
				}
				continue
			default:
				panic("congest: BroadcastItemsDown: unexpected message type")
			}
			for _, c := range b.t.ChildPorts {
				api.Send(c, in.Msg) // forward the already-boxed message
			}
		}
	}
	return api.Round() >= b.deadline
}

// Wake is the scheduling request while the operation is incomplete.
func (b *BroadcastItemsDownStep) Wake() Status {
	if b.t.IsRoot() && !b.endSent {
		return Running()
	}
	return Sleep(b.deadline)
}

// Result returns the full item sequence as seen by this node; ok is false
// when the deadline was too small. Non-root callers must copy the slice if
// they retain it (it is reused by the next Begin).
func (b *BroadcastItemsDownStep) Result() ([]Message, bool) {
	if b.t.IsRoot() {
		return b.items, true
	}
	return b.got, b.done
}

// EncodeState serializes the machine for a checkpoint. Keep is not
// serialized: the owning program must reinstall it after DecodeState
// when the in-flight stream uses a filter.
func (b *BroadcastItemsDownStep) EncodeState(e *SnapEncoder) {
	e.Tree(b.t)
	e.Int(b.deadline)
	e.Int(b.bitBound)
	e.Msgs(b.items)
	e.Msgs(b.got)
	e.Int(b.next)
	e.Bool(b.endSent)
	e.Bool(b.done)
}

// DecodeState restores the machine from a checkpoint record.
func (b *BroadcastItemsDownStep) DecodeState(d *SnapDecoder) {
	b.t = d.Tree()
	b.deadline = d.Int()
	b.bitBound = d.Int()
	b.items = d.Msgs()
	b.got = d.Msgs()
	b.next = d.Int()
	b.endSent = d.Bool()
	b.done = d.Bool()
	b.Keep = nil
}
