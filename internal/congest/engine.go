package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/obs"
)

// FaultBarrier is the faultpoint hook name the engine hits after every
// executed round barrier (after the periodic checkpoint, if any). Tests
// arm it to crash or slow the run at an exact barrier.
const FaultBarrier = "congest.barrier"

// Program is the code run by every node under the blocking compatibility
// model. It must communicate only through the provided API and must
// eventually return. Blocking programs run on one goroutine per node with
// a sequential direct handoff to the engine; the run-to-completion
// StepProgram model (step.go) avoids the goroutines entirely and is the
// fast path (DESIGN.md §2).
type Program func(api *API)

// Config configures a simulation run.
type Config struct {
	// Graph is the network to simulate. Required.
	Graph *graph.Graph
	// IDs are the CONGEST identifiers, one per node index. When nil, the
	// engine assigns a pseudorandom permutation of 1..n derived from Seed.
	IDs []int64
	// Seed drives all node-local randomness and the default ID assignment.
	Seed int64
	// BitBound is the maximum message size B. When 0, the engine uses
	// DefaultBitBound(n).
	BitBound int
	// MaxRounds aborts the run when exceeded (a safety net against
	// deadlocked or diverging programs). When 0, defaults to 4_000_000.
	// Round numbers can legitimately grow far past the executed-barrier
	// count: the engine fast-forwards over empty rounds, and schedules
	// with exponentially growing budgets sleep across billions of them.
	MaxRounds int
	// StopOnReject ends the run at the first barrier after some node
	// outputs VerdictReject. In distributed property testing a single
	// reject decides the global output, so testers use this to terminate
	// promptly once evidence is found (remaining nodes are shut down).
	StopOnReject bool
	// Workers is the number of engine worker goroutines that step due
	// nodes inside a round barrier. 0 uses runtime.GOMAXPROCS(0); 1 keeps
	// the engine fully sequential. Inboxes are captured before any due
	// node steps and sends only become deliverable at the next barrier,
	// so stepping is data-parallel; outboxes, scheduling effects, and
	// metrics are merged in node-index order after the barrier —
	// message-heavy barriers route in parallel by disjoint receiver
	// shard, which preserves the same per-mailbox order — making
	// Results byte-identical for every Workers value
	// (TestParallelEngineEquivalence, DESIGN.md §6, §10). Runs that end
	// in an error (node panic, bit-bound violation) report the same
	// error, but verdicts recorded in the failing round by nodes after
	// the failing one may differ from the sequential engine's, and the
	// aborted round's message/bit counters and undelivered mailboxes
	// may differ as well — error runs promise only the identical error.
	Workers int
	// Cancel aborts the run when it becomes readable: the engine polls it
	// at every round barrier and ends the run with ErrCanceled. Pass a
	// context's Done() channel to make a simulation cancelable; nil (the
	// zero value) disables the check. Cancellation does not affect the
	// determinism of completed runs — a run that finishes before the
	// channel fires is byte-identical to an uncancelable one.
	Cancel <-chan struct{}
	// Deadline, when non-zero, aborts the run with ErrDeadlineExceeded
	// at the first round barrier past the wall-clock instant. Like
	// Cancel it never affects the determinism of runs that finish in
	// time.
	Deadline time.Time
	// Checkpoint asks the engine to snapshot its state periodically at
	// round barriers (see CheckpointConfig). The zero value disables
	// checkpointing.
	Checkpoint CheckpointConfig
	// Probe, when non-nil, enables per-phase attribution: programs
	// announce phases through StepAPI.PhaseEnter with IDs interned on
	// this probe, the engine folds announcements at every barrier
	// (deterministically, in due order), and Result.Phases reports the
	// accumulated PhaseBreakdown. nil (the default) allocates nothing
	// and costs one nil check per barrier; all deterministic Result
	// fields are byte-identical with or without a probe.
	Probe *obs.Probe
	// Trace, when non-nil, receives JSONL-able run events (phase
	// transitions, checkpoints, fast-forward windows, merge decisions,
	// aborts; see obs.Event). Emitted from the sequential engine loop
	// only, never from workers. nil disables tracing at the cost of a
	// nil check; tracing never affects the Result.
	Trace obs.TraceSink
	// Progress, when non-nil, is updated at every executed barrier with
	// the current round, barrier count, and phase; readers snapshot it
	// concurrently (the planard job API serves it as the live
	// `progress` object). nil disables the per-barrier store.
	Progress *obs.Progress
}

// DefaultBitBound is the default per-message bound: c*ceil(log2 n) bits
// with c = 48, honoring the CONGEST requirement of O(log n)-bit messages
// while leaving room for constant-length compound messages.
func DefaultBitBound(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return 48 * b
}

// Metrics aggregates model-level accounting for a run.
type Metrics struct {
	Rounds         int   // rounds executed (final barrier count)
	Messages       int64 // total messages delivered
	TotalBits      int64 // sum of message sizes
	MaxMessageBits int   // largest single message
	BitBound       int   // the enforced bound
	DroppedToDone  int64 // messages sent to already-terminated nodes
	// ModeledRounds accumulates the documented round cost of substituted
	// black-box subroutines (see DESIGN.md §3); reported alongside the
	// actually simulated rounds.
	ModeledRounds int64
}

// Result is the outcome of a run.
type Result struct {
	Verdicts []Verdict
	Metrics  Metrics
	// Phases is the per-phase attribution table, non-nil exactly when
	// the run was configured with Config.Probe. All columns except
	// WallNs are deterministic, and the Messages/Bits columns sum to
	// Metrics.Messages/Metrics.TotalBits.
	Phases obs.PhaseBreakdown
}

// Accepted reports whether every node accepted.
func (r *Result) Accepted() bool {
	for _, v := range r.Verdicts {
		if v != VerdictAccept {
			return false
		}
	}
	return true
}

// Rejected reports whether at least one node rejected.
func (r *Result) Rejected() bool {
	for _, v := range r.Verdicts {
		if v == VerdictReject {
			return true
		}
	}
	return false
}

// RejectCount returns the number of rejecting nodes.
func (r *Result) RejectCount() int {
	c := 0
	for _, v := range r.Verdicts {
		if v == VerdictReject {
			c++
		}
	}
	return c
}

type outMsg struct {
	port int
	msg  Message
}

// nodeHot is the per-node dispatch cluster: exactly the state every
// node wake touches, packed into one 64-byte cache line (16-byte
// interface + two 24-byte slice headers). Stepping a node — whether in
// a dense streaming barrier or a sparse frontier wake — loads this one
// line; routing a message to the node touches the same line its own
// next wake needs (DESIGN.md §8).
type nodeHot struct {
	prog    StepProgram // current program; *shim once blocking
	inbox   []Inbound   // buffer handed to Step at the current wake (reused)
	mailbox []Inbound   // deliverable at the next barrier (reused buffer)
}

type nodePhase uint8

const (
	phaseWaiting nodePhase = iota // parked until deadline or mail
	phaseDone
)

var errAborted = errors.New("congest: run aborted")

// ErrCanceled is the error reported (wrapped with round context) when a
// run is aborted through Config.Cancel. Test with errors.Is.
var ErrCanceled = errors.New("congest: run canceled")

// Run executes prog on every node of cfg.Graph under the blocking
// compatibility model and returns the verdicts and metrics. It returns an
// error when a node program panics or the round limit is exceeded.
func Run(cfg Config, prog Program) (*Result, error) {
	return RunStep(cfg, func(int) StepProgram {
		return newShim(prog)
	})
}

// RunStep executes the simulation with one StepProgram per node, produced
// by progs (called once per node index before the run starts). This is
// the native run-to-completion execution model: a single engine loop
// drives every node, with zero goroutines and zero channel operations for
// nodes that stay in the step model. Both execution models produce
// byte-identical Results for identical logical programs and seeds.
func RunStep(cfg Config, progs func(node int) StepProgram) (*Result, error) {
	g := cfg.Graph
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	ids := cfg.IDs
	if ids == nil {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1D5))
		perm := rng.Perm(n)
		ids = make([]int64, n)
		for i, p := range perm {
			ids[i] = int64(p + 1)
		}
	} else if len(ids) != n {
		return nil, fmt.Errorf("congest: %d ids for %d nodes", len(ids), n)
	}
	bitBound := cfg.BitBound
	if bitBound == 0 {
		bitBound = DefaultBitBound(n)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4_000_000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	eng := &engine{
		g:            g,
		revPort:      g.RevPorts(),
		ids:          ids,
		n:            n,
		seed:         cfg.Seed,
		phase:        make([]nodePhase, n),
		deadline:     make([]int64, n),
		heapDl:       make([]int64, n),
		hot:          make([]nodeHot, n),
		outbox:       make([][]outMsg, n),
		rejFlag:      make([]bool, n),
		modeled:      make([]int64, n),
		chargedMsgs:  make([]int64, n),
		chargedBits:  make([]int64, n),
		rngs:         make([]*rand.Rand, n),
		rngSrc:       make([]*countingSource, n),
		apis:         make([]StepAPI, n),
		verdicts:     make([]Verdict, n),
		bitBound:     bitBound,
		maxRounds:    maxRounds,
		stopOnRej:    cfg.StopOnReject,
		workers:      workers,
		cancel:       cfg.Cancel,
		ckpt:         cfg.Checkpoint,
		wallDeadline: cfg.Deadline,
	}
	eng.m.BitBound = bitBound
	sentWords := 0
	for i := 0; i < n; i++ {
		sentWords += (g.Degree(i) + 63) / 64
	}
	eng.sentBits = make([]uint64, sentWords)
	off := int32(0)
	for i := 0; i < n; i++ {
		deg := g.Degree(i)
		eng.apis[i] = StepAPI{
			eng:     eng,
			node:    int32(i),
			degree:  int32(deg),
			sentOff: off,
			id:      ids[i],
		}
		off += int32((deg + 63) / 64)
		eng.hot[i].prog = progs(i)
	}

	eng.alive = n
	eng.initObs(cfg)
	due := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		due = append(due, int32(i)) // round 0: every node wakes, empty inbox
	}
	eng.run(due, false)
	eng.shutdown()
	eng.releaseRNG()

	eng.m.Rounds = eng.round
	for i := range eng.modeled {
		eng.m.ModeledRounds += eng.modeled[i]
		eng.m.Messages += eng.chargedMsgs[i]
		eng.m.TotalBits += eng.chargedBits[i]
	}
	return &Result{Verdicts: eng.verdicts, Metrics: eng.m, Phases: eng.finishObs()}, eng.runErr
}

// engine is the scheduler core. The per-node hot state is laid out as
// struct-of-arrays: each field the scheduler or a barrier scan touches
// lives in its own dense slab indexed by node id, so walking all due
// nodes streams through contiguous cache lines instead of chasing one
// heap object per node (DESIGN.md §8). All slabs are owned by the engine
// loop between barriers; inside a barrier, worker goroutines only read
// and write the slab entries of the nodes in their chunk (distinct
// indices, so the compute phase is race-free) plus their own panic slot,
// and the barrier join establishes the happens-before edges back to the
// engine loop. Blocking-node goroutines observe engine state only
// through the sequential channel handoff.
type engine struct {
	g       *graph.Graph
	revPort [][]int32
	ids     []int64
	n       int
	seed    int64

	// Hot per-node slabs, indexed by node id. The scan-heavy scalar
	// fields (phase, deadline, heapDl) are struct-of-arrays so barrier
	// scans stream dense cache lines; the dispatch cluster — everything
	// a single node wake must touch — is one 64-byte nodeHot line per
	// node, so a sparse wake costs one line instead of one per slab.
	// See DESIGN.md §8 for the layout rationale and field sizes.
	phase    []nodePhase       // parked/done; the barrier scan's hottest byte
	deadline []int64           // absolute round to wake by (while waiting)
	heapDl   []int64           // deadline of a live heap entry (0: none)
	hot      []nodeHot         // dispatch cluster: program, inbox, mailbox
	outbox   [][]outMsg        // sends queued by the current Step call
	sentBits []uint64          // flat dup-send bitsets; node i owns words [apis[i].sentOff, +⌈deg/64⌉)
	rejFlag  []bool            // node ever output VerdictReject (merged at barriers)
	modeled  []int64           // per-node modeled-round charges (summed at run end)
	rngs     []*rand.Rand      // lazily created on first StepAPI.Rand call
	rngSrc   []*countingSource // draw-counting sources behind rngs (snapshot.go)
	apis     []StepAPI         // per-node API handles (stable addresses; shims retain them)
	verdicts []Verdict

	m            Metrics
	round        int
	barriers     int64 // executed round barriers (checkpoint cadence)
	bitBound     int
	maxRounds    int
	stopOnRej    bool
	rejected     bool // some node rejected (StopOnReject trigger)
	cancel       <-chan struct{}
	wallDeadline time.Time        // Config.Deadline (zero: none)
	ckpt         CheckpointConfig // periodic snapshots (zero: none)
	ckptOff      bool             // ErrNotSnapshottable seen; stop trying
	curNode      int              // node being stepped (for the run-level panic recover)
	runErr       error
	wg           sync.WaitGroup // started shim goroutines

	// Event-driven wake tracking: no O(n) scans at round barriers.
	alive   int       // nodes not yet done
	dlHeap  []dlEntry // deadline min-heap (lazily invalidated entries)
	mailDue []int32   // nodes whose mailbox went non-empty this round
	queued  []uint64  // bitset: already collected for the current barrier
	nrList  []int32   // nodes parked for exactly round+1 (ascending order)
	extra   []int32   // scratch: mail/heap wakes of the current barrier

	// Worker pool (Workers > 1): barriers with enough due nodes are
	// stepped by a pool of persistent goroutines, then merged in index
	// order by the engine loop.
	workers  int
	pool     int // started worker goroutines
	workCh   chan workChunk
	doneCh   chan struct{}
	statuses []Status // per due position, filled by the workers
	wPanPos  []int    // per worker: due position of its panic (-1: none)
	wPanVal  []any
	wMerge   []mergeState // per worker: sharded-merge accumulators

	// Sharded-merge scratch: due nodes that returned statusDone this
	// barrier (ascending node ids, parallel due positions), so shard
	// workers can apply the sequential engine's done-at-routing-time
	// drop rule before any status has been applied (DESIGN.md §10).
	doneDue []int32
	donePos []int32

	// chargedMsgs/chargedBits are per-node slabs of modeled traffic
	// charged through StepAPI.ChargeTraffic for exchanges a program
	// elided (e.g. Stage I's fixed-point fast-forward); summed into
	// Metrics.Messages/TotalBits at run end, and folded into snapshot
	// headers so resumed totals stay byte-identical (DESIGN.md §10).
	chargedMsgs []int64
	chargedBits []int64

	// Observability (internal/obs). All slabs below are nil unless
	// Config.Probe is set; the disabled fast path is a nil check per
	// barrier. pReq is the per-node phase-announcement slab: a node's
	// Step writes only its own slot (race-free under parallel workers)
	// and the engine loop folds announcements sequentially, in due
	// order, at the barrier — so attribution is deterministic for every
	// Workers value. pWin* accumulate ChargeTraffic calls per node
	// between barriers for per-phase fast-forward accounting.
	probe      *obs.Probe
	trace      obs.TraceSink
	progress   *obs.Progress
	pReq       []int32         // per-node announced phase (0: none)
	pWinMsgs   []int64         // per-node charged msgs since last barrier
	pWinBits   []int64         // per-node charged bits since last barrier
	pWinCnt    []int64         // per-node ChargeTraffic calls since last barrier
	pStats     []obs.PhaseStat // per-phase accumulators, indexed by PhaseID
	pPhase     int32           // current phase id (0: "run")
	pLastMsgs  int64           // m.Messages at the last fold
	pLastBits  int64           // m.TotalBits at the last fold
	pLastStamp time.Time       // wall stamp of the last fold
	pSeg       obs.PhaseStat   // trace: accumulator snapshot at segment start
	runStart   time.Time       // trace: wall zero for run_end
}

// workChunk is one worker's share of a barrier. In the compute phase it
// is a contiguous slice of the due list and the matching slice of the
// status buffer; because the due list is in ascending node order, a
// chunk walks a contiguous span of every slab. In the merge phase
// (merge=true) every worker receives the full due list plus a disjoint
// receiver-id range [shardLo, shardHi) and routes only the messages
// addressed into its shard (see mergeShard, DESIGN.md §10).
type workChunk struct {
	due      []int32
	statuses []Status
	base     int // due position of due[0] (compute)
	wi       int // worker slot for panic/event reporting
	merge    bool
	shardLo  int32 // merge: receiver-id range [shardLo, shardHi)
	shardHi  int32
}

// Merge-phase event kinds: the first (due position, outbox index) event
// decides the run's error, exactly as the sequential merge would.
const (
	evtNone uint8 = iota
	evtBound
	evtPanic
)

// mergeState is one worker's private accumulator for a sharded merge:
// shard-local metric counters, the shard's mailDue fragment, and the
// earliest abort event the worker observed. Workers write only their
// own entry; the engine loop folds all entries after the join.
type mergeState struct {
	msgs    int64
	bits    int64
	dropped int64
	maxBits int
	mail    []int32 // receivers whose mailbox went empty→non-empty
	evtPos  int     // due position of the first event (-1: none)
	evtMsg  int     // outbox index of the first event
	evtKind uint8
	evtBits int // evtBound: the offending message size
	evtVal  any // evtPanic: the recovered value
}

// minParallelDue is the barrier size below which the engine steps due
// nodes inline even when a worker pool is configured: dispatching a
// handful of nodes to workers costs more than stepping them. Both paths
// produce identical Results, so the threshold is purely a tuning knob.
const minParallelDue = 64

// run is the scheduler loop: step every due node (in index order, which
// keeps inboxes sorted by sender without any sorting), route its sends,
// then fast-forward the global round to the next deadline or delivery.
// With Workers > 1, large barriers are stepped by the worker pool and
// merged in index order (see stepParallel); small barriers and
// single-worker runs step inline, where a panic from a native step
// program unwinds to the single recover here (one deferred frame per run
// instead of one per node step).
//
// A restored run (ResumeStep) enters with resumed=true and an empty due
// list: the snapshot was taken right after a barrier's steps, so the
// first iteration skips straight to the post-barrier checks and the
// next-round computation, re-joining the original run's barrier sequence
// exactly.
func (e *engine) run(due []int32, resumed bool) {
	defer func() {
		if r := recover(); r != nil {
			e.runErr = fmt.Errorf("congest: node %d (id %d) panicked at round %d: %v",
				e.curNode, e.ids[e.curNode], e.round, r)
			e.phase[e.curNode] = phaseDone
		}
	}()
	n := e.n
	e.queued = make([]uint64, (n+63)/64)
	for {
		if !resumed {
			if e.cancel != nil {
				select {
				case <-e.cancel:
					e.runErr = fmt.Errorf("%w at round %d", ErrCanceled, e.round)
					return
				default:
				}
			}
			if e.workers > 1 && len(due) >= minParallelDue {
				if !e.stepParallel(due) {
					return // fatal error; later nodes' sends stay unrouted
				}
			} else {
				for _, i := range due {
					e.curNode = int(i)
					st := e.computeNode(int(i))
					if !e.finishNode(int(i), st) {
						return // fatal error; sends of this round stay unrouted
					}
				}
			}
			// The barrier is complete: outboxes are drained and the
			// engine is quiescent. This is the only point where a
			// snapshot, an injected fault, or a wall-clock deadline can
			// cut the run — all three preserve the invariant that a run
			// either finished a barrier entirely or not at all.
			e.barriers++
			if e.probe != nil {
				e.foldProbe(due)
			}
			if e.progress != nil {
				e.progress.Set(int64(e.round), e.barriers, obs.PhaseID(e.pPhase))
			}
			if e.ckpt.Sink != nil && !e.ckptOff && e.ckpt.EveryBarriers > 0 &&
				e.barriers%int64(e.ckpt.EveryBarriers) == 0 {
				data, err := e.encodeSnapshot()
				if err == nil {
					err = e.ckpt.Sink(e.round, data)
					if err == nil && e.trace != nil {
						e.trace.Emit(obs.Event{Event: "checkpoint", Round: int64(e.round),
							Barrier: e.barriers, Bytes: int64(len(data))})
					}
				}
				if err != nil {
					if errors.Is(err, ErrNotSnapshottable) {
						e.ckptOff = true
					}
					if e.ckpt.OnError != nil {
						e.ckpt.OnError(e.round, err)
					}
				}
			}
			if err := faultpoint.Hit(FaultBarrier); err != nil {
				e.runErr = fmt.Errorf("congest: fault injected at round %d: %w", e.round, err)
				return
			}
			if !e.wallDeadline.IsZero() && time.Now().After(e.wallDeadline) {
				e.runErr = fmt.Errorf("%w at round %d", ErrDeadlineExceeded, e.round)
				return
			}
		}
		resumed = false
		if e.stopOnRej && e.rejected {
			return
		}
		if e.alive == 0 {
			return
		}
		// All nodes are parked; find the next event round. Nodes parked
		// for the immediately next round sit in nrList; mail wakes its
		// recipient one round after delivery; otherwise the next event is
		// the earliest live deadline in the heap (stale entries — nodes
		// re-parked with a different deadline — are dropped lazily).
		next := -1
		if len(e.nrList) > 0 {
			next = e.round + 1
		} else {
			for _, i := range e.mailDue {
				if e.phase[i] == phaseWaiting {
					next = e.round + 1
					break
				}
			}
		}
		if next == -1 {
			for len(e.dlHeap) > 0 {
				top := e.dlHeap[0]
				if e.phase[top.node] != phaseWaiting || e.deadline[top.node] != top.round {
					p := e.heapPop() // stale
					if e.heapDl[p.node] == p.round {
						e.heapDl[p.node] = 0
					}
					continue
				}
				next = int(top.round)
				break
			}
			if next == -1 {
				// Unreachable: every live waiting node is either in
				// nrList (checked above) or has a live heap entry.
				return
			}
		}
		if next > e.maxRounds {
			e.runErr = fmt.Errorf("congest: exceeded %d rounds", e.maxRounds)
			return
		}
		e.round = next // fast-forward over empty rounds
		// Wake every node that is due: parked for this round or mail
		// waiting. nrList is already in ascending index order (finishNode
		// appends in due order), so only the mail/heap wakes need sorting
		// before the two lists merge. Inboxes are captured for all due
		// nodes before any of them steps, so same-round sends are only
		// deliverable at the next barrier.
		e.extra = e.extra[:0]
		for _, i := range e.nrList {
			e.queued[i>>6] |= 1 << (i & 63)
		}
		for _, i := range e.mailDue {
			if e.phase[i] == phaseWaiting && e.queued[i>>6]&(1<<(i&63)) == 0 {
				e.queued[i>>6] |= 1 << (i & 63)
				e.extra = append(e.extra, i)
			}
		}
		e.mailDue = e.mailDue[:0]
		for len(e.dlHeap) > 0 && e.dlHeap[0].round <= int64(e.round) {
			top := e.heapPop()
			if e.heapDl[top.node] == top.round {
				e.heapDl[top.node] = 0
			}
			if e.phase[top.node] != phaseWaiting || e.deadline[top.node] != top.round ||
				e.queued[top.node>>6]&(1<<(top.node&63)) != 0 {
				continue // stale or already queued via mail
			}
			e.queued[top.node>>6] |= 1 << (top.node & 63)
			e.extra = append(e.extra, top.node)
		}
		if k := len(e.nrList) + len(e.extra); k >= e.n/16 {
			// Dense barrier (streaming phases wake most of the network):
			// extracting ascending ids from the queued bitset — one word
			// per 64 nodes — is cheaper than sorting the mail/heap wakes.
			due = due[:0]
			for w, bw := range e.queued {
				for bw != 0 {
					due = append(due, int32(w<<6+bits.TrailingZeros64(bw)))
					bw &= bw - 1
				}
			}
		} else {
			slices.Sort(e.extra)
			due = mergeAscending(due[:0], e.nrList, e.extra)
		}
		e.nrList = e.nrList[:0]
		for _, i := range due {
			e.queued[i>>6] &^= 1 << (i & 63)
			h := &e.hot[i]
			h.inbox, h.mailbox = h.mailbox, h.inbox[:0]
		}
	}
}

// mergeAscending merges two disjoint ascending lists into dst.
func mergeAscending(dst, a, b []int32) []int32 {
	if len(b) == 0 {
		return append(dst, a...)
	}
	if len(a) == 0 {
		return append(dst, b...)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// stepParallel runs one barrier on the worker pool: due is split into
// contiguous chunks, each worker steps its chunk's nodes concurrently
// (compute phase: only the chunk's slab entries are touched), and the
// engine loop then routes outboxes and applies statuses in due order
// (merge phase) — exactly the order the sequential engine uses, so
// Results are byte-identical. It reports false when the run must end.
func (e *engine) stepParallel(due []int32) bool {
	w := e.workers
	if maxW := (len(due) + minParallelDue - 1) / minParallelDue; w > maxW {
		w = maxW
	}
	e.ensurePool(w)
	if cap(e.statuses) < len(due) {
		e.statuses = make([]Status, len(due))
	}
	sts := e.statuses[:len(due)]
	chunk := (len(due) + w - 1) / w
	nw := 0
	for lo := 0; lo < len(due); lo += chunk {
		hi := lo + chunk
		if hi > len(due) {
			hi = len(due)
		}
		e.wPanPos[nw] = -1
		e.workCh <- workChunk{due: due[lo:hi], statuses: sts[lo:hi], base: lo, wi: nw}
		nw++
	}
	for k := 0; k < nw; k++ {
		<-e.doneCh
	}
	panPos := -1
	var panVal any
	for wi := 0; wi < nw; wi++ {
		if p := e.wPanPos[wi]; p >= 0 && (panPos == -1 || p < panPos) {
			panPos, panVal = p, e.wPanVal[wi]
		}
	}
	// Choose the merge strategy. Message-heavy barriers merge by
	// receiver shard (mergeSharded); barriers with little routing work,
	// or any abnormal status, take the sequential merge below — which is
	// byte-for-byte the pre-shard engine, so panic semantics are
	// inherited rather than re-proved (DESIGN.md §10).
	useShard := panPos < 0
	totalMsgs := 0
	if useShard {
		for k, i := range due {
			if sts[k].kind == statusPanic {
				useShard = false
				break
			}
			totalMsgs += len(e.outbox[i])
		}
	}
	if useShard {
		mw := e.workers
		if lim := totalMsgs / minShardMsgs; mw > lim {
			mw = lim
		}
		if mw >= 2 {
			if e.trace != nil {
				e.trace.Emit(obs.Event{Event: "merge", Round: int64(e.round), Barrier: e.barriers,
					Merge: "sharded", Shards: int64(mw), Messages: int64(totalMsgs)})
			}
			return e.mergeSharded(due, sts, mw)
		}
		if e.trace != nil {
			e.trace.Emit(obs.Event{Event: "merge", Round: int64(e.round), Barrier: e.barriers,
				Merge: "sequential", Messages: int64(totalMsgs)})
		}
	}
	for k, i := range due {
		if k == panPos {
			// Matches the sequential engine's panic handling: the first
			// panicking node in due order decides, its round's sends and
			// those of all later due nodes stay unrouted.
			e.runErr = fmt.Errorf("congest: node %d (id %d) panicked at round %d: %v",
				int(i), e.ids[i], e.round, panVal)
			e.phase[i] = phaseDone
			return false
		}
		// A panic out of finishNode itself (e.g. a Message.Bits
		// implementation panicking during routing) unwinds to run()'s
		// recover, which attributes it via curNode — keep it current so
		// the report matches the sequential engine's.
		e.curNode = int(i)
		if !e.finishNode(int(i), sts[k]) {
			return false
		}
	}
	return true
}

// minShardMsgs is the minimum number of queued messages per merge
// worker: below it, shard workers would spend more time scanning
// outboxes for other shards' traffic than routing their own. Both merge
// paths produce identical Results, so — like minParallelDue — this is
// purely a tuning knob.
const minShardMsgs = 1024

// mergeSharded is the parallel merge phase of one barrier: the receiver
// id space [0, n) is cut into mw contiguous shards and each worker
// routes, in due order, exactly the messages addressed into its shard.
// Shards are disjoint, so every mailbox has a single writer, and each
// worker visits senders (and each sender's outbox) in the same order
// the sequential merge does, so per-mailbox append order — and with it
// the sorted-by-sender invariant — is preserved by construction.
// Metric counters and the mailDue list are accumulated per worker and
// folded sequentially after the join; mailDue order across shards is
// irrelevant (its consumers filter by phase and dedup through the
// queued bitset). Status application, clearRound, and the rejection
// fold run sequentially afterwards in due order, exactly like the
// sequential merge. See DESIGN.md §10 for the full determinism
// argument. It reports false when the run must end.
func (e *engine) mergeSharded(due []int32, sts []Status, mw int) bool {
	// The sequential merge interleaves routing with status application,
	// so a message to a node that terminated earlier in due order is
	// dropped. Shard workers route before any status is applied; the
	// doneDue/donePos tables let them apply the same rule: drop iff the
	// receiver was done before the barrier, or returned statusDone at an
	// earlier due position than the sender.
	e.doneDue, e.donePos = e.doneDue[:0], e.donePos[:0]
	for k, i := range due {
		if sts[k].kind == statusDone {
			e.doneDue = append(e.doneDue, i)
			e.donePos = append(e.donePos, int32(k))
		}
	}
	e.ensurePool(mw)
	shard := (e.n + mw - 1) / mw
	for wi := 0; wi < mw; wi++ {
		lo := int32(wi * shard)
		hi := lo + int32(shard)
		if hi > int32(e.n) {
			hi = int32(e.n)
		}
		e.workCh <- workChunk{due: due, wi: wi, merge: true, shardLo: lo, shardHi: hi}
	}
	for k := 0; k < mw; k++ {
		<-e.doneCh
	}
	// Each worker stopped at its shard's first abort event in
	// (due position, outbox index) order, so the minimum across shards
	// is the event the sequential merge would have hit first.
	evtWi := -1
	for wi := 0; wi < mw; wi++ {
		st := &e.wMerge[wi]
		if st.evtKind == evtNone {
			continue
		}
		if evtWi == -1 || st.evtPos < e.wMerge[evtWi].evtPos ||
			(st.evtPos == e.wMerge[evtWi].evtPos && st.evtMsg < e.wMerge[evtWi].evtMsg) {
			evtWi = wi
		}
	}
	if evtWi >= 0 {
		st := &e.wMerge[evtWi]
		i := int(due[st.evtPos])
		e.curNode = i
		if st.evtKind == evtBound {
			e.runErr = fmt.Errorf("congest: node %d sent %d-bit message, bound is %d",
				i, st.evtBits, e.bitBound)
			e.apis[i].clearRound()
		} else {
			e.runErr = fmt.Errorf("congest: node %d (id %d) panicked at round %d: %v",
				i, e.ids[i], e.round, st.evtVal)
			e.phase[i] = phaseDone
		}
		return false
	}
	for wi := 0; wi < mw; wi++ {
		st := &e.wMerge[wi]
		e.m.Messages += st.msgs
		e.m.TotalBits += st.bits
		e.m.DroppedToDone += st.dropped
		if st.maxBits > e.m.MaxMessageBits {
			e.m.MaxMessageBits = st.maxBits
		}
		e.mailDue = append(e.mailDue, st.mail...)
	}
	for k, i := range due {
		if len(e.outbox[i]) > 0 {
			e.apis[i].clearRound()
		}
		if e.rejFlag[i] {
			e.rejected = true
		}
		e.applyStatus(int(i), sts[k])
	}
	return true
}

// mergeShard routes one receiver shard: it walks the full due list in
// order and delivers every queued message whose receiver falls in
// [shardLo, shardHi), maintaining shard-local counters and stopping at
// the shard's first abort event (bit-bound violation, or a panicking
// Message.Bits implementation — the only foreign code on this path).
func (e *engine) mergeShard(wc workChunk) {
	st := &e.wMerge[wc.wi]
	var msgs, totalBits, dropped int64
	maxBits := 0
	mail := st.mail[:0]
	curPos, curMsg := 0, 0
	evtPos, evtMsg := -1, 0
	evtKind, evtBits := evtNone, 0
	defer func() {
		st.msgs, st.bits, st.dropped, st.maxBits = msgs, totalBits, dropped, maxBits
		st.mail = mail
		st.evtPos, st.evtMsg, st.evtKind, st.evtBits = evtPos, evtMsg, evtKind, evtBits
		if r := recover(); r != nil {
			st.evtPos, st.evtMsg, st.evtKind, st.evtVal = curPos, curMsg, evtPanic, r
		}
	}()
	for k, i := range wc.due {
		ob := e.outbox[i]
		if len(ob) == 0 {
			continue
		}
		nbrs := e.g.Neighbors(int(i))
		rp := e.revPort[i]
		for mi := range ob {
			om := &ob[mi]
			to := nbrs[om.port]
			if to < wc.shardLo || to >= wc.shardHi {
				continue
			}
			curPos, curMsg = k, mi
			bits := om.msg.Bits()
			if bits > e.bitBound {
				evtPos, evtMsg, evtKind, evtBits = k, mi, evtBound, bits
				return
			}
			if e.phase[to] == phaseDone || e.doneBefore(to, k) {
				dropped++
				continue
			}
			th := &e.hot[to]
			if len(th.mailbox) == 0 {
				mail = append(mail, to)
			}
			th.mailbox = append(th.mailbox, Inbound{
				Port: int(rp[om.port]),
				From: int(i),
				Msg:  om.msg,
			})
			msgs++
			totalBits += int64(bits)
			if bits > maxBits {
				maxBits = bits
			}
		}
	}
}

// doneBefore reports whether receiver to terminated at a due position
// earlier than senderPos in the current barrier — the sharded merge's
// stand-in for the sequential merge's "already phaseDone at routing
// time" test.
func (e *engine) doneBefore(to int32, senderPos int) bool {
	j, found := slices.BinarySearch(e.doneDue, to)
	return found && int(e.donePos[j]) < senderPos
}

// ensurePool lazily starts the worker goroutines. Workers exit when
// workCh closes (engine shutdown).
func (e *engine) ensurePool(w int) {
	if e.workCh == nil {
		e.workCh = make(chan workChunk, e.workers)
		e.doneCh = make(chan struct{}, e.workers)
		e.wPanPos = make([]int, e.workers)
		e.wPanVal = make([]any, e.workers)
		e.wMerge = make([]mergeState, e.workers)
	}
	for e.pool < w {
		go e.workerLoop()
		e.pool++
	}
}

func (e *engine) workerLoop() {
	for wc := range e.workCh {
		if wc.merge {
			e.mergeShard(wc)
		} else {
			e.computeChunk(wc)
		}
		e.doneCh <- struct{}{}
	}
}

// computeChunk steps every node of one chunk. The due list is ascending,
// so the chunk's slab accesses sweep one contiguous span per slab — the
// parallel compute phase keeps the sequential engine's streaming access
// pattern. A panic (from a native step program; blocking programs
// convert theirs to statusPanic in the shim) is recorded with its due
// position and ends the chunk — the merge phase aborts at the earliest
// panic position, so the unstepped tail of this chunk is never read.
func (e *engine) computeChunk(wc workChunk) {
	k := 0
	defer func() {
		if r := recover(); r != nil {
			e.wPanPos[wc.wi] = wc.base + k
			e.wPanVal[wc.wi] = r
		}
	}()
	for ; k < len(wc.due); k++ {
		wc.statuses[k] = e.computeNode(int(wc.due[k]))
	}
}

// dlEntry is a (wake round, node) pair in the deadline min-heap. Rounds
// are 64-bit like the deadline slab: round numbers legitimately exceed
// 2^31 in fast-forwarded exponential-budget schedules, so they cannot
// be narrowed.
type dlEntry struct {
	round int64
	node  int32
}

func (e *engine) heapPush(round int64, node int32) {
	h := append(e.dlHeap, dlEntry{round: round, node: node})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].round <= h[i].round {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.dlHeap = h
}

func (e *engine) heapPop() dlEntry {
	h := e.dlHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].round < h[s].round {
			s = l
		}
		if r < len(h) && h[r].round < h[s].round {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	e.dlHeap = h
	return top
}

// computeNode advances node i by one round: it runs the node's Step (and
// any same-round Become/BecomeStep handovers) and returns the resulting
// status. It touches only node i's slab entries, so distinct nodes'
// computes may run concurrently; all shared effects (routing,
// scheduling, metrics) happen in finishNode.
func (e *engine) computeNode(i int) Status {
	h := &e.hot[i]
	api := &e.apis[i]
	status := h.prog.Step(api, h.inbox)
	for status.kind == statusBecome || status.kind == statusBecomeStep {
		if status.kind == statusBecome {
			// Switch to the blocking model: the continuation starts
			// running immediately, in the current round, on its own
			// goroutine.
			h.prog = newShim(status.cont)
		} else {
			h.prog = status.contStep // native handover, same round
		}
		status = h.prog.Step(api, h.inbox)
	}
	return status
}

// finishNode routes node i's sends and applies its status. Called in due
// (node index) order for every stepped node, which keeps every mailbox
// sorted by sender (at most one message per ordered node pair per
// round). It reports false when the run must end (program panic or
// bit-bound violation).
func (e *engine) finishNode(i int, status Status) bool {
	api := &e.apis[i]
	if status.kind == statusPanic {
		// A blocking program panicked on its goroutine; the shim converts
		// that into a status instead of unwinding the engine stack.
		e.runErr = fmt.Errorf("congest: node %d (id %d) panicked at round %d: %v",
			i, e.ids[i], e.round, status.panicVal)
		e.phase[i] = phaseDone
		return false
	}
	// Route this node's outbox; messages become deliverable at the next
	// barrier. The adjacency and reverse-port rows are loaded once per
	// node, not once per message.
	if ob := e.outbox[i]; len(ob) > 0 {
		nbrs := e.g.Neighbors(i)
		rp := e.revPort[i]
		for _, om := range ob {
			bits := om.msg.Bits()
			if bits > e.bitBound {
				e.runErr = fmt.Errorf("congest: node %d sent %d-bit message, bound is %d",
					i, bits, e.bitBound)
				api.clearRound()
				return false
			}
			to := int(nbrs[om.port])
			// DroppedToDone counts sends to nodes already done at routing
			// time. A recipient that terminates later in the same round
			// keeps the message in its mailbox unread and it still counts
			// as delivered — the deterministic version of the seed
			// engine's same-round termination race.
			if e.phase[to] == phaseDone {
				e.m.DroppedToDone++
				continue
			}
			th := &e.hot[to]
			if len(th.mailbox) == 0 {
				e.mailDue = append(e.mailDue, int32(to))
			}
			th.mailbox = append(th.mailbox, Inbound{
				Port: int(rp[om.port]),
				From: i,
				Msg:  om.msg,
			})
			e.m.Messages++
			e.m.TotalBits += int64(bits)
			if bits > e.m.MaxMessageBits {
				e.m.MaxMessageBits = bits
			}
		}
		api.clearRound()
	}
	if e.rejFlag[i] {
		e.rejected = true
	}
	e.applyStatus(i, status)
	return true
}

// applyStatus applies a stepped node's scheduling outcome: termination,
// a sleep with an explicit wake round, or re-arming for the next round.
// Called in due order by both merge paths, so nrList stays ascending.
func (e *engine) applyStatus(i int, status Status) {
	switch status.kind {
	case statusDone:
		e.phase[i] = phaseDone
		e.alive--
	case statusSleep:
		e.phase[i] = phaseWaiting
		d := status.wake
		if d <= e.round {
			d = e.round + 1
		}
		e.deadline[i] = int64(d)
		e.parkNode(i)
	default: // statusRunning
		e.phase[i] = phaseWaiting
		e.deadline[i] = int64(e.round + 1)
		e.parkNode(i)
	}
}

// parkNode records where the waiting node wakes next. Nodes due at the
// very next round go to nrList (drained every barrier — no heap traffic
// for the dominant streaming case); others enter the deadline heap
// unless a live entry with the same deadline is already there (a node
// woken by mail every round while sleeping toward a fixed deadline would
// otherwise push one duplicate entry per round).
func (e *engine) parkNode(i int) {
	d := e.deadline[i]
	if d == int64(e.round+1) {
		e.nrList = append(e.nrList, int32(i))
		return
	}
	if e.heapDl[i] == d {
		return
	}
	e.heapDl[i] = d
	e.heapPush(d, int32(i))
}

// shutdown aborts every blocking-node goroutine still parked at a yield
// point and waits for all of them to exit, so that no node code runs
// after Run returns, then releases the worker pool. A node that entered
// the blocking model has its shim as its current program, so the scan
// needs no dedicated shim slab.
func (e *engine) shutdown() {
	for i := range e.hot {
		if sh, ok := e.hot[i].prog.(*shim); ok && sh.started && !sh.closed {
			sh.closed = true
			close(sh.resume)
		}
	}
	e.wg.Wait()
	if e.workCh != nil {
		close(e.workCh) // workers exit; no chunk is in flight here
	}
}
