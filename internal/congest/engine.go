package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Program is the code run by every node. It must communicate only through
// the provided API and must eventually return.
type Program func(api *API)

// Config configures a simulation run.
type Config struct {
	Graph *graph.Graph
	// IDs are the CONGEST identifiers, one per node index. When nil, the
	// engine assigns a pseudorandom permutation of 1..n derived from Seed.
	IDs []int64
	// Seed drives all node-local randomness and the default ID assignment.
	Seed int64
	// BitBound is the maximum message size B. When 0, the engine uses
	// DefaultBitBound(n).
	BitBound int
	// MaxRounds aborts the run when exceeded (a safety net against
	// deadlocked or diverging programs). When 0, defaults to 4_000_000.
	MaxRounds int
	// StopOnReject ends the run at the first barrier after some node
	// outputs VerdictReject. In distributed property testing a single
	// reject decides the global output, so testers use this to terminate
	// promptly once evidence is found (remaining nodes are shut down).
	StopOnReject bool
}

// DefaultBitBound is the default per-message bound: c*ceil(log2 n) bits
// with c = 48, honoring the CONGEST requirement of O(log n)-bit messages
// while leaving room for constant-length compound messages.
func DefaultBitBound(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return 48 * b
}

// Metrics aggregates model-level accounting for a run.
type Metrics struct {
	Rounds         int   // rounds executed (final barrier count)
	Messages       int64 // total messages delivered
	TotalBits      int64 // sum of message sizes
	MaxMessageBits int   // largest single message
	BitBound       int   // the enforced bound
	DroppedToDone  int64 // messages sent to already-terminated nodes
	// ModeledRounds accumulates the documented round cost of substituted
	// black-box subroutines (see DESIGN.md §3); reported alongside the
	// actually simulated rounds.
	ModeledRounds int64
}

// Result is the outcome of a run.
type Result struct {
	Verdicts []Verdict
	Metrics  Metrics
}

// Accepted reports whether every node accepted.
func (r *Result) Accepted() bool {
	for _, v := range r.Verdicts {
		if v != VerdictAccept {
			return false
		}
	}
	return true
}

// Rejected reports whether at least one node rejected.
func (r *Result) Rejected() bool {
	for _, v := range r.Verdicts {
		if v == VerdictReject {
			return true
		}
	}
	return false
}

// RejectCount returns the number of rejecting nodes.
func (r *Result) RejectCount() int {
	c := 0
	for _, v := range r.Verdicts {
		if v == VerdictReject {
			c++
		}
	}
	return c
}

type outMsg struct {
	port int
	msg  Message
}

// stepKind describes why a node yielded to the engine.
type stepKind uint8

const (
	stepNextRound stepKind = iota
	stepSleep
	stepDone
	stepPanic
)

type step struct {
	node     int
	kind     stepKind
	deadline int      // for stepSleep: absolute round to wake by
	outbox   []outMsg // messages sent since last yield
	panicVal any
}

type nodePhase uint8

const (
	phaseRunning nodePhase = iota
	phaseBlocked           // waiting for next round (deadline = round+1)
	phaseSleep             // waiting until deadline or first message
	phaseDone
)

type nodeState struct {
	phase    nodePhase
	deadline int
	mailbox  []Inbound // deliverable at the next barrier
	resume   chan []Inbound
}

var errAborted = errors.New("congest: run aborted")

// Run executes prog on every node of cfg.Graph and returns the verdicts
// and metrics. It returns an error when a node program panics or the
// round limit is exceeded.
func Run(cfg Config, prog Program) (*Result, error) {
	g := cfg.Graph
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	ids := cfg.IDs
	if ids == nil {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1D5))
		perm := rng.Perm(n)
		ids = make([]int64, n)
		for i, p := range perm {
			ids[i] = int64(p + 1)
		}
	} else if len(ids) != n {
		return nil, fmt.Errorf("congest: %d ids for %d nodes", len(ids), n)
	}
	bitBound := cfg.BitBound
	if bitBound == 0 {
		bitBound = DefaultBitBound(n)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4_000_000
	}

	// Reverse port table: revPort[v][i] is the port of v in the adjacency
	// list of its i-th neighbor.
	revPort := make([][]int32, n)
	for v := 0; v < n; v++ {
		revPort[v] = make([]int32, g.Degree(v))
		for i, w := range g.Neighbors(v) {
			nbrs := g.Neighbors(int(w))
			j := sort.Search(len(nbrs), func(k int) bool { return nbrs[k] >= int32(v) })
			revPort[v][i] = int32(j)
		}
	}

	eng := &engine{steps: make(chan step, n)}
	states := make([]nodeState, n)
	verdicts := make([]Verdict, n)
	var modeled atomic.Int64

	var wg sync.WaitGroup
	running := n
	for i := 0; i < n; i++ {
		states[i].resume = make(chan []Inbound, 1)
		api := &API{
			eng:      eng,
			node:     i,
			id:       ids[i],
			n:        n,
			degree:   g.Degree(i),
			bitBound: bitBound,
			rng:      rand.New(rand.NewSource(cfg.Seed ^ (0x5E3779B97F4A7C15 * int64(i+1)))),
			resume:   states[i].resume,
			verdicts: verdicts,
			modeled:  &modeled,
		}
		wg.Add(1)
		go func(api *API) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if r == errAborted {
						return // engine-initiated shutdown
					}
					eng.steps <- step{node: api.node, kind: stepPanic, panicVal: r}
					return
				}
				eng.steps <- step{node: api.node, kind: stepDone, outbox: api.outbox}
			}()
			prog(api)
		}(api)
	}

	m := Metrics{BitBound: bitBound}
	round := 0
	var runErr error

collect:
	for {
		// Wait for every running node to yield.
		for running > 0 {
			s := <-eng.steps
			st := &states[s.node]
			switch s.kind {
			case stepPanic:
				runErr = fmt.Errorf("congest: node %d (id %d) panicked at round %d: %v",
					s.node, ids[s.node], round, s.panicVal)
				st.phase = phaseDone
				running--
				break collect
			case stepDone:
				st.phase = phaseDone
				running--
			case stepNextRound:
				st.phase = phaseBlocked
				st.deadline = round + 1
				running--
			case stepSleep:
				st.phase = phaseSleep
				st.deadline = s.deadline
				if st.deadline <= round {
					st.deadline = round + 1
				}
				running--
			}
			// Route this node's outbox; messages become deliverable at
			// the next barrier.
			for _, om := range s.outbox {
				if om.msg.Bits() > bitBound {
					runErr = fmt.Errorf("congest: node %d sent %d-bit message, bound is %d",
						s.node, om.msg.Bits(), bitBound)
					break collect
				}
				to := int(g.Neighbors(s.node)[om.port])
				if states[to].phase == phaseDone {
					m.DroppedToDone++
					continue
				}
				states[to].mailbox = append(states[to].mailbox, Inbound{
					Port: int(revPort[s.node][om.port]),
					From: s.node,
					Msg:  om.msg,
				})
				m.Messages++
				m.TotalBits += int64(om.msg.Bits())
				if om.msg.Bits() > m.MaxMessageBits {
					m.MaxMessageBits = om.msg.Bits()
				}
			}
		}
		if cfg.StopOnReject && eng.rejected.Load() {
			break
		}
		// All nodes are blocked, sleeping, or done.
		alive := false
		next := -1
		for i := range states {
			st := &states[i]
			if st.phase == phaseDone {
				continue
			}
			alive = true
			d := st.deadline
			if len(st.mailbox) > 0 {
				d = round + 1
			}
			if next == -1 || d < next {
				next = d
			}
		}
		if !alive {
			break
		}
		if next > maxRounds {
			runErr = fmt.Errorf("congest: exceeded %d rounds", maxRounds)
			break
		}
		round = next // fast-forward over empty rounds
		eng.round.Store(int64(round))
		// Wake every node that is due: deadline reached or mail waiting.
		for i := range states {
			st := &states[i]
			if st.phase != phaseBlocked && st.phase != phaseSleep {
				continue
			}
			if st.deadline > round && len(st.mailbox) == 0 {
				continue
			}
			inbox := st.mailbox
			st.mailbox = nil
			sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
			st.phase = phaseRunning
			running++
			st.resume <- inbox
		}
	}

	// Shut down: any goroutine that yields or blocks from now on sees the
	// aborted flag or a closed resume channel and exits via errAborted.
	eng.aborted.Store(true)
	for i := range states {
		close(states[i].resume)
	}
	// Drain steps from nodes that were mid-round during an abort; the
	// steps channel has capacity n, so senders never block, but draining
	// keeps shutdown prompt. Close after all node goroutines exited.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eng.steps {
		}
	}()
	wg.Wait()
	close(eng.steps)
	<-done

	m.Rounds = round
	m.ModeledRounds = modeled.Load()
	return &Result{Verdicts: verdicts, Metrics: m}, runErr
}

// engine is the shared state visible to node APIs.
type engine struct {
	steps    chan step
	round    atomic.Int64
	aborted  atomic.Bool
	rejected atomic.Bool
}
