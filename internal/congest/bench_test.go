package congest

import (
	"testing"

	"repro/internal/graph"
)

// Engine microbenchmarks (run with -benchmem): each primitive is measured
// under both execution models so the blocking-shim overhead stays visible
// in the perf trajectory (scripts/bench.sh records them in BENCH_*.json).

func benchGraphTree(n int) (*graph.Graph, func(i int) Tree) {
	g := graph.Path(n)
	return g, func(i int) Tree { return pathTree(i, n) }
}

func BenchmarkEngineBroadcast(b *testing.B) {
	const n = 64
	g, tree := benchGraphTree(n)
	b.Run("blocking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := Run(Config{Graph: g, Seed: int64(i)}, func(api *API) {
				tr := tree(api.Index())
				var root Message
				if tr.IsRoot() {
					root = intMsg{v: 42}
				}
				if _, ok := tr.BroadcastDown(api, api.Round()+n+2, root, nil); !ok {
					panic("broadcast failed")
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := RunStep(Config{Graph: g, Seed: int64(i)}, func(node int) StepProgram {
				var bd BroadcastDownStep
				started := false
				return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
					if !started {
						started = true
						tr := tree(api.Index())
						var root Message
						if tr.IsRoot() {
							root = intMsg{v: 42}
						}
						if !bd.Begin(api, tr, api.Round()+n+2, root, nil) {
							return bd.Wake()
						}
					} else if !bd.Feed(api, inbox) {
						return bd.Wake()
					}
					if _, ok := bd.Result(); !ok {
						panic("broadcast failed")
					}
					return Done()
				})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineConvergecast(b *testing.B) {
	const n = 64
	g, tree := benchGraphTree(n)
	b.Run("blocking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := Run(Config{Graph: g, Seed: int64(i)}, func(api *API) {
				tr := tree(api.Index())
				own := intMsg{v: int64(api.Index())}
				if _, ok := tr.Convergecast(api, api.Round()+n+2, own, sumCombine); !ok {
					panic("convergecast failed")
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := RunStep(Config{Graph: g, Seed: int64(i)}, func(node int) StepProgram {
				var cv ConvergecastStep
				started := false
				return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
					if !started {
						started = true
						own := intMsg{v: int64(api.Index())}
						if !cv.Begin(api, tree(api.Index()), api.Round()+n+2, own, sumCombine) {
							return cv.Wake()
						}
					} else if !cv.Feed(api, inbox) {
						return cv.Wake()
					}
					if _, ok := cv.Result(); !ok {
						panic("convergecast failed")
					}
					return Done()
				})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineFloodPingPong stresses the dense all-ports exchange: every
// node sends on every port every round for a fixed number of rounds (the
// worst case for scheduler and routing overhead).
func BenchmarkEngineFloodPingPong(b *testing.B) {
	g := graph.Grid(8, 8)
	const rounds = 64
	b.Run("blocking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := Run(Config{Graph: g, Seed: int64(i)}, func(api *API) {
				x := api.ID()
				for r := 0; r < rounds; r++ {
					api.SendAll(intMsg{x})
					for _, in := range api.NextRound() {
						x = (x + in.Msg.(intMsg).v) % 1_000_003
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := RunStep(Config{Graph: g, Seed: int64(i)}, func(node int) StepProgram {
				var x int64
				r := 0
				started := false
				return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
					if !started {
						started = true
						x = api.ID()
						api.SendAll(intMsg{x})
						return Running()
					}
					for _, in := range inbox {
						x = (x + in.Msg.(intMsg).v) % 1_000_003
					}
					r++
					if r == rounds {
						return Done()
					}
					api.SendAll(intMsg{x})
					return Running()
				})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
