package congest

import "fmt"

// Tree is a node's local view of a rooted spanning tree of (a subgraph of)
// the network: the port leading to its parent and the ports leading to its
// children. All Tree operations are budget-synchronized: every node of the
// tree must call the same operation with the same deadline, and every node
// returns exactly at the deadline, keeping multi-part schedules in
// lockstep (the paper's emulation style, §2.1.5).
type Tree struct {
	ParentPort int // -1 at the root
	ChildPorts []int
}

// IsRoot reports whether this node is the tree root.
func (t Tree) IsRoot() bool { return t.ParentPort < 0 }

func (t Tree) isChildPort(p int) bool {
	for _, c := range t.ChildPorts {
		if c == p {
			return true
		}
	}
	return false
}

// BroadcastDown distributes a message from the root to every tree node.
// The root passes its message in rootMsg (other nodes pass nil) and every
// node receives the message that reached it, transformed on each hop by
// transform (nil means identity). Nodes forward to children one round
// after receiving. Returns (msg, true) on success or (nil, false) if the
// deadline passed before the message arrived (budget too small).
func (t Tree) BroadcastDown(api *API, deadline int, rootMsg Message, transform func(Message) Message) (Message, bool) {
	var got Message
	if t.IsRoot() {
		got = rootMsg
		for _, c := range t.ChildPorts {
			api.Send(c, got)
		}
	} else {
		for got == nil && api.Round() < deadline {
			for _, in := range api.SleepUntil(deadline) {
				if in.Port != t.ParentPort {
					panic(fmt.Sprintf("congest: BroadcastDown: unexpected message on port %d (node %d)", in.Port, api.Index()))
				}
				got = in.Msg
			}
		}
		if got == nil {
			return nil, false
		}
		if transform != nil {
			got = transform(got)
		}
		for _, c := range t.ChildPorts {
			api.Send(c, got)
		}
	}
	api.Idle(deadline - api.Round())
	return got, true
}

// Convergecast aggregates one message from every tree node to the root.
// Each node contributes own; combine merges own with the messages of all
// children (ordered as ChildPorts; every child contributes exactly one).
// The root returns the full aggregate; other nodes return the aggregate of
// their subtree. Returns ok=false if the deadline passed before all
// children reported.
func (t Tree) Convergecast(api *API, deadline int, own Message, combine func(own Message, children []Message) Message) (Message, bool) {
	children := make([]Message, len(t.ChildPorts))
	missing := len(t.ChildPorts)
	portIdx := make(map[int]int, len(t.ChildPorts))
	for i, c := range t.ChildPorts {
		portIdx[c] = i
	}
	for missing > 0 && api.Round() < deadline {
		for _, in := range api.SleepUntil(deadline) {
			i, ok := portIdx[in.Port]
			if !ok {
				panic(fmt.Sprintf("congest: Convergecast: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			if children[i] != nil {
				panic(fmt.Sprintf("congest: Convergecast: duplicate message from child port %d", in.Port))
			}
			children[i] = in.Msg
			missing--
		}
	}
	if missing > 0 {
		api.Idle(deadline - api.Round())
		return nil, false
	}
	agg := combine(own, children)
	if !t.IsRoot() {
		api.Send(t.ParentPort, agg)
	}
	api.Idle(deadline - api.Round())
	return agg, true
}

// pipeItem wraps a payload moving through PipelineUp/BroadcastItemsDown.
// The wrapped size is computed once at boxing time: the same boxed item
// is re-routed at every tree hop, and the engine checks Bits() per hop.
type pipeItem struct {
	payload Message
	bits    int
}

func newPipeItem(payload Message) pipeItem {
	return pipeItem{payload: payload, bits: 1 + payload.Bits()}
}

func (p pipeItem) Bits() int { return p.bits }

// pipeBatch packs consecutive pipelined payloads into a single message.
// The pipelined primitives use the full CONGEST bit bound this way: a
// stream of small items (rotation entries, edge ids) moves in
// ceil(total bits / B) rounds instead of one round per item, exactly
// like the paper's own label chunking (§2.2.2) exploits B-bit messages.
// The size is computed once at packing time.
type pipeBatch struct {
	payloads []Message
	bits     int
}

func (p pipeBatch) Bits() int { return p.bits }

// packPipe packs a maximal prefix of items into one pipelined message
// within bitBound bits (batch header 1 bit, plus 1+Bits() per payload,
// mirroring pipeItem's framing) and returns it with the count consumed.
// A single payload travels as a bare pipeItem — also the fallback when
// the batch framing would not fit the bound. The returned batch aliases
// items, so callers must not rewrite consumed slots while the message
// may be in flight (popping a prefix and appending is fine).
func packPipe(items []Message, bitBound int) (Message, int) {
	bits := 1 + 1 + items[0].Bits()
	if bits > bitBound {
		return newPipeItem(items[0]), 1
	}
	n := 1
	for n < len(items) {
		nb := 1 + items[n].Bits()
		if bits+nb > bitBound {
			break
		}
		bits += nb
		n++
	}
	if n == 1 {
		return newPipeItem(items[0]), 1
	}
	return pipeBatch{payloads: items[:n:n], bits: bits}, n
}

// pushPipePayloads appends the payloads of a received pipeItem/pipeBatch
// to a relay queue (shared receive path of the pipelined primitives).
// It reports false for messages that are not pipelined items.
func pushPipePayloads(queue []Message, m Message) ([]Message, bool) {
	switch pm := m.(type) {
	case pipeItem:
		return append(queue, pm.payload), true
	case pipeBatch:
		return append(queue, pm.payloads...), true
	}
	return queue, false
}

// pipeEnd marks the end of a pipelined stream.
type pipeEnd struct{}

func (pipeEnd) Bits() int { return 1 }

// PipelineUp streams every node's items to the root, one B-bit batch of
// items per tree edge per round (the standard CONGEST pipelining bound,
// with the bit bound fully used: completion within ceil(total bits / B)
// + depth rounds). The root returns all items of the tree (its own
// first, then received ones in deterministic arrival order); other nodes
// return nil. ok=false at the root means the deadline was too small.
func (t Tree) PipelineUp(api *API, deadline int, items []Message) ([]Message, bool) {
	if t.IsRoot() {
		collected := append([]Message(nil), items...)
		doneChildren := 0
		for doneChildren < len(t.ChildPorts) && api.Round() < deadline {
			for _, in := range api.SleepUntil(deadline) {
				if !t.isChildPort(in.Port) {
					panic(fmt.Sprintf("congest: PipelineUp: unexpected message on port %d (node %d)", in.Port, api.Index()))
				}
				var ok bool
				if collected, ok = pushPipePayloads(collected, in.Msg); !ok {
					if _, end := in.Msg.(pipeEnd); !end {
						panic("congest: PipelineUp: unexpected message type")
					}
					doneChildren++
				}
			}
		}
		ok := doneChildren == len(t.ChildPorts)
		api.Idle(deadline - api.Round())
		return collected, ok
	}
	// The forward queue holds unboxed payloads; each round a maximal
	// bit-bound-sized batch is packed from its front (own items and
	// received ones re-batch together, so links stay fully utilized).
	// The queue backing must be fresh: in-flight batches alias it.
	queue := make([]Message, 0, len(items))
	queue = append(queue, items...)
	doneChildren := 0
	sentEnd := false
	for api.Round() < deadline {
		allDone := doneChildren == len(t.ChildPorts)
		switch {
		case len(queue) > 0:
			m, n := packPipe(queue, api.BitBound())
			api.Send(t.ParentPort, m)
			queue = queue[n:]
		case allDone && !sentEnd:
			api.Send(t.ParentPort, pipeEnd{})
			sentEnd = true
		}
		var inbox []Inbound
		if sentEnd || (len(queue) == 0 && !allDone) {
			inbox = api.SleepUntil(deadline)
		} else {
			inbox = api.NextRound()
		}
		for _, in := range inbox {
			if !t.isChildPort(in.Port) {
				panic(fmt.Sprintf("congest: PipelineUp: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			var ok bool
			if queue, ok = pushPipePayloads(queue, in.Msg); !ok {
				if _, end := in.Msg.(pipeEnd); !end {
					panic("congest: PipelineUp: unexpected message type")
				}
				doneChildren++
			}
		}
	}
	return nil, sentEnd && len(queue) == 0
}

// BroadcastItemsDown streams a sequence of items from the root to every
// tree node (each node sees all items, one B-bit batch per round,
// pipelined through the tree). Every node returns the full item slice;
// ok=false means the deadline was too small. Items must individually fit
// the bit bound.
func (t Tree) BroadcastItemsDown(api *API, deadline int, items []Message) ([]Message, bool) {
	if t.IsRoot() {
		for next := 0; next < len(items); {
			m, n := packPipe(items[next:], api.BitBound()) // boxed once for all children
			next += n
			for _, c := range t.ChildPorts {
				api.Send(c, m)
			}
			api.NextRound()
		}
		for _, c := range t.ChildPorts {
			api.Send(c, pipeEnd{})
		}
		api.Idle(deadline - api.Round())
		return items, true
	}
	var got []Message
	done := false
	for !done && api.Round() < deadline {
		for _, in := range api.SleepUntil(deadline) {
			if in.Port != t.ParentPort {
				panic(fmt.Sprintf("congest: BroadcastItemsDown: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			var ok bool
			if got, ok = pushPipePayloads(got, in.Msg); ok {
				for _, c := range t.ChildPorts {
					api.Send(c, in.Msg) // forward the already-boxed message
				}
				continue
			}
			if _, end := in.Msg.(pipeEnd); !end {
				panic("congest: BroadcastItemsDown: unexpected message type")
			}
			done = true
			for _, c := range t.ChildPorts {
				api.Send(c, pipeEnd{})
			}
		}
	}
	api.Idle(deadline - api.Round())
	return got, done
}
