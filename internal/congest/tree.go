package congest

import "fmt"

// Tree is a node's local view of a rooted spanning tree of (a subgraph of)
// the network: the port leading to its parent and the ports leading to its
// children. All Tree operations are budget-synchronized: every node of the
// tree must call the same operation with the same deadline, and every node
// returns exactly at the deadline, keeping multi-part schedules in
// lockstep (the paper's emulation style, §2.1.5).
type Tree struct {
	ParentPort int // -1 at the root
	ChildPorts []int
}

// IsRoot reports whether this node is the tree root.
func (t Tree) IsRoot() bool { return t.ParentPort < 0 }

func (t Tree) isChildPort(p int) bool {
	for _, c := range t.ChildPorts {
		if c == p {
			return true
		}
	}
	return false
}

// BroadcastDown distributes a message from the root to every tree node.
// The root passes its message in rootMsg (other nodes pass nil) and every
// node receives the message that reached it, transformed on each hop by
// transform (nil means identity). Nodes forward to children one round
// after receiving. Returns (msg, true) on success or (nil, false) if the
// deadline passed before the message arrived (budget too small).
func (t Tree) BroadcastDown(api *API, deadline int, rootMsg Message, transform func(Message) Message) (Message, bool) {
	var got Message
	if t.IsRoot() {
		got = rootMsg
		for _, c := range t.ChildPorts {
			api.Send(c, got)
		}
	} else {
		for got == nil && api.Round() < deadline {
			for _, in := range api.SleepUntil(deadline) {
				if in.Port != t.ParentPort {
					panic(fmt.Sprintf("congest: BroadcastDown: unexpected message on port %d (node %d)", in.Port, api.Index()))
				}
				got = in.Msg
			}
		}
		if got == nil {
			return nil, false
		}
		if transform != nil {
			got = transform(got)
		}
		for _, c := range t.ChildPorts {
			api.Send(c, got)
		}
	}
	api.Idle(deadline - api.Round())
	return got, true
}

// Convergecast aggregates one message from every tree node to the root.
// Each node contributes own; combine merges own with the messages of all
// children (ordered as ChildPorts; every child contributes exactly one).
// The root returns the full aggregate; other nodes return the aggregate of
// their subtree. Returns ok=false if the deadline passed before all
// children reported.
func (t Tree) Convergecast(api *API, deadline int, own Message, combine func(own Message, children []Message) Message) (Message, bool) {
	children := make([]Message, len(t.ChildPorts))
	missing := len(t.ChildPorts)
	portIdx := make(map[int]int, len(t.ChildPorts))
	for i, c := range t.ChildPorts {
		portIdx[c] = i
	}
	for missing > 0 && api.Round() < deadline {
		for _, in := range api.SleepUntil(deadline) {
			i, ok := portIdx[in.Port]
			if !ok {
				panic(fmt.Sprintf("congest: Convergecast: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			if children[i] != nil {
				panic(fmt.Sprintf("congest: Convergecast: duplicate message from child port %d", in.Port))
			}
			children[i] = in.Msg
			missing--
		}
	}
	if missing > 0 {
		api.Idle(deadline - api.Round())
		return nil, false
	}
	agg := combine(own, children)
	if !t.IsRoot() {
		api.Send(t.ParentPort, agg)
	}
	api.Idle(deadline - api.Round())
	return agg, true
}

// pipeItem wraps a payload moving through PipelineUp/BroadcastItemsDown.
type pipeItem struct{ payload Message }

func (p pipeItem) Bits() int { return 1 + p.payload.Bits() }

// pipeEnd marks the end of a pipelined stream.
type pipeEnd struct{}

func (pipeEnd) Bits() int { return 1 }

// PipelineUp streams every node's items to the root, one item per tree
// edge per round (the standard CONGEST pipelining bound: completion within
// #items + depth rounds). The root returns all items of the tree (its own
// first, then received ones in deterministic arrival order); other nodes
// return nil. ok=false at the root means the deadline was too small.
func (t Tree) PipelineUp(api *API, deadline int, items []Message) ([]Message, bool) {
	if t.IsRoot() {
		collected := append([]Message(nil), items...)
		doneChildren := 0
		for doneChildren < len(t.ChildPorts) && api.Round() < deadline {
			for _, in := range api.SleepUntil(deadline) {
				if !t.isChildPort(in.Port) {
					panic(fmt.Sprintf("congest: PipelineUp: unexpected message on port %d (node %d)", in.Port, api.Index()))
				}
				switch m := in.Msg.(type) {
				case pipeItem:
					collected = append(collected, m.payload)
				case pipeEnd:
					doneChildren++
				default:
					panic("congest: PipelineUp: unexpected message type")
				}
			}
		}
		ok := doneChildren == len(t.ChildPorts)
		api.Idle(deadline - api.Round())
		return collected, ok
	}
	// The forward queue holds pre-boxed pipeItem messages: own items are
	// wrapped once here, received items are forwarded as-is, so an item
	// is boxed once on its whole root path instead of once per hop.
	queue := make([]Message, 0, len(items))
	for _, it := range items {
		queue = append(queue, pipeItem{payload: it})
	}
	doneChildren := 0
	sentEnd := false
	for api.Round() < deadline {
		allDone := doneChildren == len(t.ChildPorts)
		switch {
		case len(queue) > 0:
			api.Send(t.ParentPort, queue[0])
			queue = queue[1:]
		case allDone && !sentEnd:
			api.Send(t.ParentPort, pipeEnd{})
			sentEnd = true
		}
		var inbox []Inbound
		if sentEnd || (len(queue) == 0 && !allDone) {
			inbox = api.SleepUntil(deadline)
		} else {
			inbox = api.NextRound()
		}
		for _, in := range inbox {
			if !t.isChildPort(in.Port) {
				panic(fmt.Sprintf("congest: PipelineUp: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			switch in.Msg.(type) {
			case pipeItem:
				queue = append(queue, in.Msg)
			case pipeEnd:
				doneChildren++
			default:
				panic("congest: PipelineUp: unexpected message type")
			}
		}
	}
	return nil, sentEnd && len(queue) == 0
}

// BroadcastItemsDown streams a sequence of items from the root to every
// tree node (each node sees all items, one per round, pipelined through
// the tree). Every node returns the full item slice; ok=false means the
// deadline was too small. Items must individually fit the bit bound.
func (t Tree) BroadcastItemsDown(api *API, deadline int, items []Message) ([]Message, bool) {
	if t.IsRoot() {
		for _, it := range items {
			var m Message = pipeItem{payload: it} // boxed once for all children
			for _, c := range t.ChildPorts {
				api.Send(c, m)
			}
			api.NextRound()
		}
		for _, c := range t.ChildPorts {
			api.Send(c, pipeEnd{})
		}
		api.Idle(deadline - api.Round())
		return items, true
	}
	var got []Message
	done := false
	for !done && api.Round() < deadline {
		for _, in := range api.SleepUntil(deadline) {
			if in.Port != t.ParentPort {
				panic(fmt.Sprintf("congest: BroadcastItemsDown: unexpected message on port %d (node %d)", in.Port, api.Index()))
			}
			switch m := in.Msg.(type) {
			case pipeItem:
				got = append(got, m.payload)
				for _, c := range t.ChildPorts {
					api.Send(c, in.Msg) // forward the already-boxed message
				}
			case pipeEnd:
				done = true
				for _, c := range t.ChildPorts {
					api.Send(c, pipeEnd{})
				}
			default:
				panic("congest: BroadcastItemsDown: unexpected message type")
			}
		}
	}
	api.Idle(deadline - api.Round())
	return got, done
}
