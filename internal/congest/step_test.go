package congest

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// floodStep is the step-model mirror of the blocking flood-BFS program in
// TestFloodBFSOnGrid: round-exact sends, so both models must produce
// byte-identical Results.
type floodStep struct {
	deadline int
	d        int
	started  bool
	dist     []int
}

func (f *floodStep) Step(api *StepAPI, inbox []Inbound) Status {
	if !f.started {
		f.started = true
		f.d = -1
		if api.Index() == 0 {
			f.d = 0
			api.SendAll(intMsg{0})
		}
		return Sleep(f.deadline)
	}
	if f.d == -1 {
		for _, in := range inbox {
			if m, ok := in.Msg.(intMsg); ok && f.d == -1 {
				f.d = int(m.v) + 1
				api.SendAll(intMsg{int64(f.d)})
			}
		}
	}
	if api.Round() >= f.deadline {
		f.dist[api.Index()] = f.d
		return Done()
	}
	return Sleep(f.deadline)
}

func floodBlocking(deadline int, dist []int) Program {
	return func(api *API) {
		d := -1
		if api.Index() == 0 {
			d = 0
			api.SendAll(intMsg{0})
			api.Idle(deadline - api.Round())
		} else {
			for d == -1 && api.Round() < deadline {
				for _, in := range api.SleepUntil(deadline) {
					if m, ok := in.Msg.(intMsg); ok && d == -1 {
						d = int(m.v) + 1
						api.SendAll(intMsg{int64(d)})
					}
				}
			}
			api.Idle(deadline - api.Round())
		}
		dist[api.Index()] = d
	}
}

// leaderStep mirrors the blocking max-id leader election round for round.
type leaderStep struct {
	rounds  int
	best    int64
	r       int
	started bool
	out     []int64
}

func (l *leaderStep) Step(api *StepAPI, inbox []Inbound) Status {
	if !l.started {
		l.started = true
		l.best = api.ID()
		api.SendAll(intMsg{l.best})
		return Running()
	}
	for _, in := range inbox {
		if m := in.Msg.(intMsg); m.v > l.best {
			l.best = m.v
		}
	}
	l.r++
	if l.r == l.rounds {
		l.out[api.Index()] = l.best
		return Done()
	}
	api.SendAll(intMsg{l.best})
	return Running()
}

// TestStepEngineEquivalence proves both execution models produce
// byte-identical Results for logically identical programs across several
// graph families (issue acceptance criterion).
func TestStepEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(6, 7)},
		{"cycle", graph.Cycle(23)},
		{"star", graph.Star(12)},
		{"path", graph.Path(17)},
	}
	for _, fam := range families {
		for seed := int64(0); seed < 3; seed++ {
			const deadline = 300
			bDist := make([]int, fam.g.N())
			bRes, bErr := Run(Config{Graph: fam.g, Seed: seed}, floodBlocking(deadline, bDist))
			sDist := make([]int, fam.g.N())
			sRes, sErr := RunStep(Config{Graph: fam.g, Seed: seed}, func(int) StepProgram {
				return &floodStep{deadline: deadline, dist: sDist}
			})
			if bErr != nil || sErr != nil {
				t.Fatalf("%s/seed%d: errs %v %v", fam.name, seed, bErr, sErr)
			}
			if !reflect.DeepEqual(bRes, sRes) {
				t.Fatalf("%s/seed%d flood: result mismatch:\nblocking: %+v\nstep:     %+v",
					fam.name, seed, bRes, sRes)
			}
			if !reflect.DeepEqual(bDist, sDist) {
				t.Fatalf("%s/seed%d flood: distances differ", fam.name, seed)
			}

			rounds := fam.g.N()
			bOut := make([]int64, fam.g.N())
			bRes, bErr = Run(Config{Graph: fam.g, Seed: seed}, func(api *API) {
				best := api.ID()
				for r := 0; r < rounds; r++ {
					api.SendAll(intMsg{best})
					for _, in := range api.NextRound() {
						if m := in.Msg.(intMsg); m.v > best {
							best = m.v
						}
					}
				}
				bOut[api.Index()] = best
			})
			sOut := make([]int64, fam.g.N())
			sRes, sErr = RunStep(Config{Graph: fam.g, Seed: seed}, func(int) StepProgram {
				return &leaderStep{rounds: rounds, out: sOut}
			})
			if bErr != nil || sErr != nil {
				t.Fatalf("%s/seed%d: errs %v %v", fam.name, seed, bErr, sErr)
			}
			if !reflect.DeepEqual(bRes, sRes) {
				t.Fatalf("%s/seed%d leader: result mismatch:\nblocking: %+v\nstep:     %+v",
					fam.name, seed, bRes, sRes)
			}
			if !reflect.DeepEqual(bOut, sOut) {
				t.Fatalf("%s/seed%d leader: winners differ", fam.name, seed)
			}
		}
	}
}

// treeOpsStep exercises the step-native tree primitives (convergecast then
// pipelined convergecast) against their blocking counterparts.
func TestTreeStepOpsEquivalence(t *testing.T) {
	const n = 9
	g := graph.Path(n)
	run := func(step bool) (*Result, int64, []int64) {
		var rootSum int64
		var collected []int64
		blocking := func(api *API) {
			tr := pathTree(api.Index(), n)
			deadline := api.Round() + n + 2
			own := intMsg{v: int64(api.Index())}
			agg, ok := tr.Convergecast(api, deadline, own, sumCombine)
			if !ok {
				panic("convergecast failed")
			}
			if tr.IsRoot() {
				rootSum = agg.(intMsg).v
			}
			items := []Message{intMsg{v: int64(api.Index() * 10)}}
			got, ok := tr.PipelineUp(api, api.Round()+2*n+4, items)
			if !ok {
				panic("pipeline failed")
			}
			if tr.IsRoot() {
				for _, m := range got {
					collected = append(collected, m.(intMsg).v)
				}
			}
		}
		var res *Result
		var err error
		if !step {
			res, err = Run(Config{Graph: g, Seed: 7}, blocking)
		} else {
			res, err = RunStep(Config{Graph: g, Seed: 7}, func(int) StepProgram {
				return &treeOpsProg{n: n, rootSum: &rootSum, collected: &collected}
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, rootSum, collected
	}
	bRes, bSum, bCol := run(false)
	sRes, sSum, sCol := run(true)
	if !reflect.DeepEqual(bRes, sRes) {
		t.Fatalf("tree ops: result mismatch:\nblocking: %+v\nstep:     %+v", bRes, sRes)
	}
	if bSum != sSum || !reflect.DeepEqual(bCol, sCol) {
		t.Fatalf("tree ops: outputs differ: %d/%v vs %d/%v", bSum, bCol, sSum, sCol)
	}
}

func sumCombine(own Message, children []Message) Message {
	s := own.(intMsg).v
	for _, c := range children {
		s += c.(intMsg).v
	}
	return intMsg{v: s}
}

type treeOpsProg struct {
	n         int
	rootSum   *int64
	collected *[]int64
	phase     int
	cv        ConvergecastStep
	pu        PipelineUpStep
	tr        Tree
	started   bool
}

func (p *treeOpsProg) Step(api *StepAPI, inbox []Inbound) Status {
	for {
		switch p.phase {
		case 0:
			if !p.started {
				p.started = true
				p.tr = pathTree(api.Index(), p.n)
				own := intMsg{v: int64(api.Index())}
				if !p.cv.Begin(api, p.tr, api.Round()+p.n+2, own, sumCombine) {
					return p.cv.Wake()
				}
			} else if !p.cv.Feed(api, inbox) {
				return p.cv.Wake()
			}
			agg, ok := p.cv.Result()
			if !ok {
				panic("convergecast failed")
			}
			if p.tr.IsRoot() {
				*p.rootSum = agg.(intMsg).v
			}
			p.phase = 1
			p.started = false
		case 1:
			if !p.started {
				p.started = true
				items := []Message{intMsg{v: int64(api.Index() * 10)}}
				if !p.pu.Begin(api, p.tr, api.Round()+2*p.n+4, items) {
					return p.pu.Wake()
				}
			} else if !p.pu.Feed(api, inbox) {
				return p.pu.Wake()
			}
			got, ok := p.pu.Result()
			if p.tr.IsRoot() {
				if !ok {
					panic("pipeline failed")
				}
				for _, m := range got {
					*p.collected = append(*p.collected, m.(intMsg).v)
				}
			}
			return Done()
		}
	}
}

// TestStopOnRejectMidRound verifies that a reject stops the run at the
// next barrier in both execution models, with identical metrics.
func TestStopOnRejectMidRound(t *testing.T) {
	g := graph.Grid(4, 4)
	blocking := func(api *API) {
		for r := 0; r < 100; r++ {
			if api.Index() == 5 && api.Round() == 7 {
				api.Output(VerdictReject)
			}
			api.SendAll(intMsg{int64(r)})
			api.NextRound()
		}
		api.Output(VerdictAccept)
	}
	bRes, err := Run(Config{Graph: g, Seed: 3, StopOnReject: true}, blocking)
	if err != nil {
		t.Fatal(err)
	}
	if bRes.Metrics.Rounds != 7 {
		t.Fatalf("blocking rounds = %d, want 7 (stop at first barrier after reject)", bRes.Metrics.Rounds)
	}
	sRes, err := RunStep(Config{Graph: g, Seed: 3, StopOnReject: true}, func(int) StepProgram {
		r := 0
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if r == 100 {
				api.Output(VerdictAccept)
				return Done()
			}
			if api.Index() == 5 && api.Round() == 7 {
				api.Output(VerdictReject)
			}
			api.SendAll(intMsg{int64(r)})
			r++
			return Running()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bRes, sRes) {
		t.Fatalf("stop-on-reject mismatch:\nblocking: %+v\nstep:     %+v", bRes, sRes)
	}
}

// TestStepSleepFastForward checks that the engine fast-forwards a native
// sleeper over empty rounds without simulating them.
func TestStepSleepFastForward(t *testing.T) {
	g := graph.Path(3)
	res, err := RunStep(Config{Graph: g, Seed: 4}, func(int) StepProgram {
		started := false
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if !started {
				started = true
				return Sleep(2_000_000)
			}
			return Done()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 2_000_000 {
		t.Fatalf("rounds = %d, want 2000000", res.Metrics.Rounds)
	}
}

// TestStepMessageToDoneDropped checks the dropped-to-done accounting under
// the step model.
func TestStepMessageToDoneDropped(t *testing.T) {
	g := graph.Path(2)
	res, err := RunStep(Config{Graph: g, Seed: 5}, func(node int) StepProgram {
		r := 0
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Index() == 0 {
				return Done() // terminate immediately
			}
			switch r {
			case 0:
				r++
				return Running()
			case 1:
				r++
				api.Send(0, intMsg{1}) // node 0 is done by now
				return Running()
			default:
				return Done()
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedToDone != 1 {
		t.Fatalf("dropped = %d, want 1", res.Metrics.DroppedToDone)
	}
}

// TestStepPanicPropagates checks that a panic inside a native Step is
// converted into a run error naming the node and round.
func TestStepPanicPropagates(t *testing.T) {
	g := graph.Path(4)
	_, err := RunStep(Config{Graph: g, Seed: 6}, func(int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Index() == 2 && api.Round() == 3 {
				panic("boom")
			}
			return Running()
		})
	})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "round 3") {
		t.Fatalf("want propagated panic with round, got %v", err)
	}
}

// TestStepBitBoundViolation checks bound enforcement on the step path.
func TestStepBitBoundViolation(t *testing.T) {
	g := graph.Path(2)
	_, err := RunStep(Config{Graph: g, Seed: 7}, func(int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Index() == 0 && api.Round() == 0 {
				api.Send(0, hugeMsg{})
			}
			return Running()
		})
	})
	if err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("want bit bound error, got %v", err)
	}
}

// TestBecomeMidRun checks the native-to-blocking handover: the blocking
// continuation starts in the same round and the combined program behaves
// exactly like its all-blocking equivalent.
func TestBecomeMidRun(t *testing.T) {
	g := graph.Cycle(9)
	const split = 5
	const total = 12
	blocking := func(api *API) {
		x := api.ID()
		for r := 0; r < total; r++ {
			api.SendAll(intMsg{x})
			for _, in := range api.NextRound() {
				x += in.Msg.(intMsg).v
			}
		}
		api.Output(VerdictAccept)
	}
	bRes, err := Run(Config{Graph: g, Seed: 9}, blocking)
	if err != nil {
		t.Fatal(err)
	}
	sRes, err := RunStep(Config{Graph: g, Seed: 9}, func(int) StepProgram {
		var x int64
		r := 0
		started := false
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if !started {
				started = true
				x = api.ID()
				api.SendAll(intMsg{x})
				return Running()
			}
			for _, in := range inbox {
				x += in.Msg.(intMsg).v
			}
			r++
			if r == split {
				// Hand the rest of the schedule to a blocking program.
				return Become(func(api *API) {
					for ; r < total; r++ {
						api.SendAll(intMsg{x})
						for _, in := range api.NextRound() {
							x += in.Msg.(intMsg).v
						}
					}
					api.Output(VerdictAccept)
				})
			}
			api.SendAll(intMsg{x})
			return Running()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bRes, sRes) {
		t.Fatalf("become mismatch:\nblocking: %+v\nhybrid:   %+v", bRes, sRes)
	}
}
