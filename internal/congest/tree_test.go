package congest

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// randomTreeViews builds consistent Tree views for a random spanning tree
// of g rooted at 0 (for failure-injection and property tests).
func randomTreeViews(g *graph.Graph) []Tree {
	res := g.BFS(0)
	views := make([]Tree, g.N())
	for v := 0; v < g.N(); v++ {
		views[v].ParentPort = -1
	}
	portOf := func(v, w int) int {
		for i, x := range g.Neighbors(v) {
			if int(x) == w {
				return i
			}
		}
		panic("not adjacent")
	}
	for v := 0; v < g.N(); v++ {
		if p := res.Parent[v]; p >= 0 {
			views[v].ParentPort = portOf(v, p)
			views[p].ChildPorts = append(views[p].ChildPorts, portOf(p, v))
		}
	}
	return views
}

// TestTreeOpsOnRandomTrees: broadcast and convergecast work on arbitrary
// spanning-tree shapes, not just paths and stars.
func TestTreeOpsOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomTree(5+rng.Intn(40), rng)
		views := randomTreeViews(g)
		depth := g.BFS(0).Dist
		maxd := 0
		for _, d := range depth {
			if d > maxd {
				maxd = d
			}
		}
		var rootSum int64
		_, err := Run(Config{Graph: g, Seed: int64(trial)}, func(api *API) {
			tr := views[api.Index()]
			deadline := api.Round() + maxd + 2
			agg, ok := tr.Convergecast(api, deadline, intMsg{v: 1},
				func(own Message, ch []Message) Message {
					s := own.(intMsg).v
					for _, c := range ch {
						s += c.(intMsg).v
					}
					return intMsg{v: s}
				})
			if !ok {
				panic("convergecast failed")
			}
			if tr.IsRoot() {
				rootSum = agg.(intMsg).v
			}
			// Follow with a broadcast to confirm alternating ops align.
			var m Message
			if tr.IsRoot() {
				m = agg
			}
			got, ok := tr.BroadcastDown(api, api.Round()+maxd+2, m, nil)
			if !ok || got.(intMsg).v != int64(g.N()) {
				panic("broadcast mismatch")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if rootSum != int64(g.N()) {
			t.Fatalf("trial %d: sum %d, want %d", trial, rootSum, g.N())
		}
	}
}

// TestTreeOpsRejectStrayTraffic: the strict tree primitives must flag
// messages arriving outside the declared tree structure while a node is
// actively waiting — the mechanism that catches schedule bugs in the
// Stage I/II lockstep design.
func TestTreeOpsRejectStrayTraffic(t *testing.T) {
	// Star with center 0 and leaves 1..3; the tree is only 0-1 (port 0
	// at the center). Leaf 2 injects a message while the center waits
	// for its real child, which delays.
	g := graph.Star(4)
	_, err := Run(Config{Graph: g, Seed: 2}, func(api *API) {
		switch api.Index() {
		case 0:
			tr := Tree{ParentPort: -1, ChildPorts: []int{0}}
			tr.Convergecast(api, api.Round()+6, intMsg{v: 1},
				func(own Message, ch []Message) Message { return own })
		case 1:
			api.Idle(3) // delay so the center is still waiting
			tr := Tree{ParentPort: 0}
			tr.Convergecast(api, api.Round()+3, intMsg{v: 1},
				func(own Message, ch []Message) Message { return own })
		case 2:
			api.Send(0, intMsg{v: 99}) // stray injection into the op
			api.NextRound()
		default:
			api.Idle(8)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "unexpected message") {
		t.Fatalf("want strict-port violation, got %v", err)
	}
}

// TestPipelineUpManyItemsPerNode stresses queue growth and the
// items+depth pipelining bound on a deeper tree.
func TestPipelineUpManyItemsPerNode(t *testing.T) {
	const n = 12
	const perNode = 9
	g := graph.Path(n)
	var got int
	_, err := Run(Config{Graph: g, Seed: 3}, func(api *API) {
		tr := pathTree(api.Index(), n)
		var items []Message
		for k := 0; k < perNode; k++ {
			items = append(items, intMsg{v: int64(api.Index()*100 + k)})
		}
		deadline := api.Round() + n*perNode + n + 4
		out, ok := tr.PipelineUp(api, deadline, items)
		if !ok {
			panic("pipeline incomplete")
		}
		if tr.IsRoot() {
			got = len(out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n*perNode {
		t.Fatalf("root collected %d items, want %d", got, n*perNode)
	}
}

// TestBroadcastDownTransformChain verifies per-hop transformations on a
// deep path (depth counting).
func TestBroadcastDownTransformChain(t *testing.T) {
	const n = 30
	g := graph.Path(n)
	depths := make([]int64, n)
	_, err := Run(Config{Graph: g, Seed: 4}, func(api *API) {
		tr := pathTree(api.Index(), n)
		var m Message
		if tr.IsRoot() {
			m = intMsg{v: 0}
		}
		got, ok := tr.BroadcastDown(api, api.Round()+n+2, m, func(x Message) Message {
			return intMsg{v: x.(intMsg).v + 1}
		})
		if !ok {
			panic("broadcast incomplete")
		}
		depths[api.Index()] = got.(intMsg).v
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range depths {
		if d != int64(i) {
			t.Fatalf("node %d depth %d", i, d)
		}
	}
}

// TestConvergecastInsufficientBudget: ops report ok=false (rather than
// hanging or panicking) when the deadline cannot be met.
func TestConvergecastInsufficientBudget(t *testing.T) {
	const n = 10
	g := graph.Path(n)
	okAtRoot := true
	_, err := Run(Config{Graph: g, Seed: 5}, func(api *API) {
		tr := pathTree(api.Index(), n)
		// Budget 3 < depth 9: the root cannot hear everyone.
		_, ok := tr.Convergecast(api, api.Round()+3, intMsg{v: 1},
			func(own Message, ch []Message) Message {
				s := own.(intMsg).v
				for _, c := range ch {
					s += c.(intMsg).v
				}
				return intMsg{v: s}
			})
		if tr.IsRoot() {
			okAtRoot = ok
		}
		// Quiesce: messages still in flight at the deadline would poison
		// the next op, so drain one slack round per remaining hop.
		api.Idle(n)
	})
	if err != nil {
		t.Fatal(err)
	}
	if okAtRoot {
		t.Fatal("root must report failure under an impossible budget")
	}
}
