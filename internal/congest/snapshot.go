package congest

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/graphio"
)

// Checkpoint/restore for the step engine (DESIGN.md §9).
//
// A snapshot is taken at a round barrier, immediately after every due
// node has been stepped and its sends routed. At that point the engine
// is quiescent: all outboxes and duplicate-send bitsets are empty, the
// queued bitset is clear, and the only in-flight state is the mailboxes
// (messages deliverable at the next barrier). The scheduling structures
// (deadline heap, next-round list, mail-due list) are pure functions of
// the phase/deadline/mailbox slabs and are rebuilt on restore, so the
// format serializes only: the run header, the per-node slabs, each
// node's mailbox, its lazy RNG draw count, and its program state via the
// Snapshottable interface. Restore re-enters the scheduler loop right
// after the barrier, so a restored run executes the exact same barrier
// sequence — and produces a byte-identical Result — as an uninterrupted
// one.

// snapshotMagic identifies the checkpoint format ("planar checkpoint,
// version 1"); snapshotVersion is bumped on any layout change.
const (
	snapshotMagic   = "PCK1"
	snapshotVersion = 3
)

// snapshotFooterLen is the length of the SHA-256 integrity footer.
const snapshotFooterLen = sha256.Size

// ErrNotSnapshottable is reported when a checkpoint is requested while
// some live node runs a program (or holds an in-flight message) that the
// snapshot layer cannot serialize. Test with errors.Is. The engine stops
// attempting checkpoints for the rest of the run when it sees this.
var ErrNotSnapshottable = errors.New("congest: program state not snapshottable")

// ErrBadSnapshot is reported (wrapped with detail) when snapshot bytes
// fail validation: short data, bad magic, unsupported version, integrity
// footer mismatch, or a malformed record. Test with errors.Is.
var ErrBadSnapshot = errors.New("congest: invalid snapshot")

// ErrDeadlineExceeded is the error reported (wrapped with round context)
// when a run exceeds Config.Deadline. Test with errors.Is.
var ErrDeadlineExceeded = errors.New("congest: deadline exceeded")

// Snapshottable is implemented by step programs that can serialize their
// state into a checkpoint. EncodeState writes every field Step can have
// mutated; SnapshotKind tags the encoding so the restore callback can
// dispatch to the right decoder. Function-valued fields cannot be
// serialized: owners must reinstall them on the first Step after a
// restore (the tree-machine state setters keep such fields out of the
// encoded state on purpose).
type Snapshottable interface {
	StepProgram
	// SnapshotKind identifies the program's encoding to RestoreFunc.
	SnapshotKind() uint16
	// EncodeState appends the program's mutable state to e.
	EncodeState(e *SnapEncoder)
}

// RestoreFunc reconstructs one node's program from its snapshot record.
// It receives the node index, the program's SnapshotKind, and a decoder
// positioned at the state EncodeState wrote (and must consume all of
// it). It is called once per live node, in node order.
type RestoreFunc func(node int, kind uint16, dec *SnapDecoder) (StepProgram, error)

// CheckpointConfig asks the engine to emit periodic snapshots of its own
// state. Checkpointing is best-effort by design: a failing Sink (or a
// run whose programs are not Snapshottable) never aborts the run — the
// error is reported through OnError and the simulation continues, so an
// injected checkpoint-I/O fault costs durability, not the result.
type CheckpointConfig struct {
	// EveryBarriers is the checkpoint cadence in executed barriers
	// (snapshots are only possible at barriers). 0 disables.
	EveryBarriers int
	// Sink receives each encoded snapshot with the round it was taken
	// at. The engine blocks while Sink runs; the data slice is not
	// reused afterwards.
	Sink func(round int, data []byte) error
	// OnError observes encode/Sink failures (optional). After an
	// ErrNotSnapshottable the engine stops attempting checkpoints.
	OnError func(round int, err error)
}

// SnapshotInfo is the decoded header of a snapshot, for validation and
// inventory without a full restore.
type SnapshotInfo struct {
	// Version is the snapshot format version.
	Version int
	// N and M are the node and edge counts of the graph the run was on.
	N, M int
	// Seed is the run seed.
	Seed int64
	// Round is the round the snapshot was taken at.
	Round int
	// Barriers is the number of barriers executed up to the snapshot.
	Barriers int64
}

// SnapEncoder accumulates the binary encoding of snapshot records. All
// integers use the canonical varint layout shared with graphio; the
// zero value is ready to use. Errors are sticky (see Msg).
type SnapEncoder struct {
	buf []byte
	err error
}

// Uvarint appends an unsigned varint.
func (e *SnapEncoder) Uvarint(v uint64) { e.buf = graphio.AppendUvarint(e.buf, v) }

// Varint appends a signed value, zigzag-mapped onto the unsigned layout.
func (e *SnapEncoder) Varint(v int64) { e.Uvarint(uint64(v)<<1 ^ uint64(v>>63)) }

// Int appends a signed int.
func (e *SnapEncoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a boolean as one byte.
func (e *SnapEncoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *SnapEncoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Msg appends a message through the codec registry (nil encodes as kind
// 0). A message type with no registered codec makes the encoder fail
// sticky with ErrNotSnapshottable.
func (e *SnapEncoder) Msg(m Message) {
	if m == nil {
		e.Uvarint(0)
		return
	}
	kind, ok := msgKindByType[reflect.TypeOf(m)]
	if !ok {
		if e.err == nil {
			e.err = fmt.Errorf("%w: no codec for message type %T", ErrNotSnapshottable, m)
		}
		return
	}
	e.Uvarint(uint64(kind))
	msgCodecs[kind].enc(e, m)
}

// Msgs appends a message slice, preserving nil-ness and nil entries.
func (e *SnapEncoder) Msgs(ms []Message) {
	if ms == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(ms)) + 1)
	for _, m := range ms {
		e.Msg(m)
	}
}

// Ints appends an int slice (nil-preserving).
func (e *SnapEncoder) Ints(vs []int) {
	if vs == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(vs)) + 1)
	for _, v := range vs {
		e.Int(v)
	}
}

// Int64s appends an int64 slice (nil-preserving).
func (e *SnapEncoder) Int64s(vs []int64) {
	if vs == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(vs)) + 1)
	for _, v := range vs {
		e.Varint(v)
	}
}

// Int32s appends an int32 slice (nil-preserving).
func (e *SnapEncoder) Int32s(vs []int32) {
	if vs == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(vs)) + 1)
	for _, v := range vs {
		e.Varint(int64(v))
	}
}

// Bools appends a bool slice (nil-preserving).
func (e *SnapEncoder) Bools(vs []bool) {
	if vs == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(vs)) + 1)
	for _, v := range vs {
		e.Bool(v)
	}
}

// Tree appends a Tree value.
func (e *SnapEncoder) Tree(t Tree) {
	e.Int(t.ParentPort)
	e.Ints(t.ChildPorts)
}

// SnapDecoder reads records written by SnapEncoder. Errors are sticky:
// after the first malformed read every getter returns a zero value, and
// Err reports the failure — callers check once at the end.
type SnapDecoder struct {
	buf []byte
	off int
	err error
}

// NewSnapDecoder returns a decoder over an encoded record.
func NewSnapDecoder(b []byte) *SnapDecoder { return &SnapDecoder{buf: b} }

func (d *SnapDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrBadSnapshot, what, d.off)
	}
}

// Err returns the first decode failure, or nil.
func (d *SnapDecoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *SnapDecoder) Remaining() int { return len(d.buf) - d.off }

// Uvarint reads an unsigned varint.
func (d *SnapDecoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n, err := graphio.ConsumeUvarint(d.buf[d.off:])
	if err != nil {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed value.
func (d *SnapDecoder) Varint() int64 {
	u := d.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Int reads a signed int.
func (d *SnapDecoder) Int() int { return int(d.Varint()) }

// Bool reads one boolean byte (any value other than 0 or 1 is an error).
func (d *SnapDecoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bool out of range")
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte slice (aliasing the input buffer).
func (d *SnapDecoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("truncated bytes")
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Msg reads one message (kind 0 decodes as nil).
func (d *SnapDecoder) Msg() Message {
	kind := d.Uvarint()
	if d.err != nil || kind == 0 {
		return nil
	}
	c, ok := msgCodecs[uint16(kind)]
	if !ok || kind > 0xFFFF {
		d.fail(fmt.Sprintf("unknown message kind %d", kind))
		return nil
	}
	return c.dec(d)
}

// Msgs reads a message slice written by SnapEncoder.Msgs.
func (d *SnapDecoder) Msgs() []Message {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) { // every entry costs >= 1 byte
		d.fail("truncated message slice")
		return nil
	}
	ms := make([]Message, n)
	for i := range ms {
		ms[i] = d.Msg()
	}
	return ms
}

// Ints reads an int slice written by SnapEncoder.Ints.
func (d *SnapDecoder) Ints() []int {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.fail("truncated int slice")
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = d.Int()
	}
	return vs
}

// Int64s reads an int64 slice written by SnapEncoder.Int64s.
func (d *SnapDecoder) Int64s() []int64 {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.fail("truncated int64 slice")
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.Varint()
	}
	return vs
}

// Int32s reads an int32 slice written by SnapEncoder.Int32s.
func (d *SnapDecoder) Int32s() []int32 {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.fail("truncated int32 slice")
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.Varint())
	}
	return vs
}

// Bools reads a bool slice written by SnapEncoder.Bools.
func (d *SnapDecoder) Bools() []bool {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(d.Remaining()) {
		d.fail("truncated bool slice")
		return nil
	}
	vs := make([]bool, n)
	for i := range vs {
		vs[i] = d.Bool()
	}
	return vs
}

// Tree reads a Tree value.
func (d *SnapDecoder) Tree() Tree {
	var t Tree
	t.ParentPort = d.Int()
	t.ChildPorts = d.Ints()
	return t
}

// Message codec registry. Codecs are registered from init functions
// (congest, partition, core each own a disjoint kind range) and the maps
// are read-only afterwards, so lock-free concurrent reads are safe.
type msgCodec struct {
	enc func(e *SnapEncoder, m Message)
	dec func(d *SnapDecoder) Message
}

var (
	msgKindByType = map[reflect.Type]uint16{}
	msgCodecs     = map[uint16]msgCodec{}
)

// RegisterMessageCodec registers the snapshot codec for one message
// type, identified by a non-zero kind (kind 0 is reserved for nil).
// sample carries the concrete type; enc receives values of exactly that
// type. Call from init; duplicate kinds or types panic.
func RegisterMessageCodec(kind uint16, sample Message, enc func(e *SnapEncoder, m Message), dec func(d *SnapDecoder) Message) {
	if kind == 0 {
		panic("congest: message kind 0 is reserved")
	}
	if _, dup := msgCodecs[kind]; dup {
		panic(fmt.Sprintf("congest: duplicate message kind %d", kind))
	}
	t := reflect.TypeOf(sample)
	if _, dup := msgKindByType[t]; dup {
		panic(fmt.Sprintf("congest: duplicate message codec for %v", t))
	}
	msgKindByType[t] = kind
	msgCodecs[kind] = msgCodec{enc: enc, dec: dec}
}

// Engine-internal pipeline framing messages (tree.go). Bits are
// encoded rather than recomputed so a restored message is field-exact.
func init() {
	RegisterMessageCodec(1, pipeItem{},
		func(e *SnapEncoder, m Message) {
			p := m.(pipeItem)
			e.Msg(p.payload)
			e.Int(p.bits)
		},
		func(d *SnapDecoder) Message {
			var p pipeItem
			p.payload = d.Msg()
			p.bits = d.Int()
			return p
		})
	RegisterMessageCodec(2, pipeBatch{},
		func(e *SnapEncoder, m Message) {
			p := m.(pipeBatch)
			e.Msgs(p.payloads)
			e.Int(p.bits)
		},
		func(d *SnapDecoder) Message {
			var p pipeBatch
			p.payloads = d.Msgs()
			p.bits = d.Int()
			return p
		})
	RegisterMessageCodec(3, pipeEnd{},
		func(e *SnapEncoder, m Message) {},
		func(d *SnapDecoder) Message { return pipeEnd{} })
}

// countingSource wraps a node's lazy randomness source and counts how
// many times it advanced. math/rand's rngSource steps exactly once per
// Int63 or Uint64 call, so the count alone replays the state: a restore
// reseeds the source and fast-forwards it count steps.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// rngSourcePool recycles the ~5KB math/rand source state across nodes
// and runs. A pooled source is fully re-seeded before every use —
// rngSource.Seed rebuilds the exact state NewSource would produce — so
// reuse never perturbs a draw sequence.
var rngSourcePool = sync.Pool{
	New: func() any { return rand.NewSource(1).(rand.Source64) },
}

// nodeRNGSource is the seeding rule shared by first use and restore. The
// backing state comes from rngSourcePool; the engine hands it back via
// releaseRNG when the run ends.
func nodeRNGSource(seed int64, node int) rand.Source64 {
	src := rngSourcePool.Get().(rand.Source64)
	src.Seed(seed ^ (0x5E3779B97F4A7C15 * int64(node+1)))
	return src
}

// releaseRNG returns every allocated randomness source to the pool.
// Called once after the run loop finishes; no RNG state is read past
// this point (Results carry only counters).
func (e *engine) releaseRNG() {
	for i, src := range e.rngSrc {
		if src != nil {
			rngSourcePool.Put(src.src)
			e.rngSrc[i] = nil
			e.rngs[i] = nil
		}
	}
}

// encodeSnapshot serializes the full engine state at the current
// barrier. Called from the scheduler loop only (workers idle).
func (e *engine) encodeSnapshot() ([]byte, error) {
	// Gate first: a snapshot is all-or-nothing, so detect a
	// non-snapshottable program before encoding anything.
	for i := 0; i < e.n; i++ {
		if e.phase[i] != phaseWaiting {
			continue
		}
		if _, ok := e.hot[i].prog.(Snapshottable); !ok {
			return nil, fmt.Errorf("%w: node %d runs %T", ErrNotSnapshottable, i, e.hot[i].prog)
		}
	}
	enc := &SnapEncoder{buf: make([]byte, 0, 256+32*e.n)}
	enc.buf = append(enc.buf, snapshotMagic...)
	enc.Uvarint(snapshotVersion)
	enc.Uvarint(uint64(e.n))
	enc.Uvarint(uint64(e.g.M()))
	enc.Varint(e.seed)
	enc.Uvarint(uint64(e.bitBound))
	enc.Uvarint(uint64(e.maxRounds))
	enc.Bool(e.stopOnRej)
	enc.Uvarint(uint64(e.round))
	enc.Uvarint(uint64(e.barriers))
	enc.Uvarint(uint64(e.alive))
	enc.Bool(e.rejected)
	// Traffic charged through StepAPI.ChargeTraffic folds into the
	// header totals: the resumed engine starts with the folded sums and
	// fresh zero charge slabs, so final Messages/TotalBits are identical
	// no matter where the run was cut (DESIGN.md §10).
	var chMsgs, chBits int64
	for i := 0; i < e.n; i++ {
		chMsgs += e.chargedMsgs[i]
		chBits += e.chargedBits[i]
	}
	enc.Uvarint(uint64(e.m.Messages + chMsgs))
	enc.Uvarint(uint64(e.m.TotalBits + chBits))
	enc.Uvarint(uint64(e.m.MaxMessageBits))
	enc.Uvarint(uint64(e.m.DroppedToDone))
	for _, id := range e.ids {
		enc.Varint(id)
	}
	var sub SnapEncoder
	for i := 0; i < e.n; i++ {
		enc.Uvarint(uint64(e.phase[i]))
		enc.Uvarint(uint64(e.verdicts[i]))
		enc.Bool(e.rejFlag[i])
		enc.Uvarint(uint64(e.modeled[i]))
		if e.phase[i] != phaseWaiting {
			continue // deadline, RNG, mailbox, program: dead state
		}
		enc.Uvarint(uint64(e.deadline[i]))
		if src := e.rngSrc[i]; src != nil {
			enc.Bool(true)
			enc.Uvarint(src.n)
		} else {
			enc.Bool(false)
		}
		mb := e.hot[i].mailbox
		enc.Uvarint(uint64(len(mb)))
		for _, in := range mb {
			enc.Uvarint(uint64(in.Port))
			enc.Uvarint(uint64(in.From))
			enc.Msg(in.Msg)
		}
		sp := e.hot[i].prog.(Snapshottable)
		sub.buf = sub.buf[:0]
		sub.err = nil
		sp.EncodeState(&sub)
		if sub.err != nil {
			return nil, fmt.Errorf("node %d (%T): %w", i, sp, sub.err)
		}
		enc.Uvarint(uint64(sp.SnapshotKind()))
		enc.Bytes(sub.buf)
	}
	e.encodeObsSection(enc)
	if enc.err != nil {
		return nil, enc.err
	}
	sum := sha256.Sum256(enc.buf)
	return append(enc.buf, sum[:]...), nil
}

// openSnapshot validates magic, version, and the SHA-256 footer, and
// returns a decoder positioned at the header (after the version).
func openSnapshot(data []byte) (*SnapDecoder, error) {
	if len(data) < len(snapshotMagic)+1+snapshotFooterLen {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrBadSnapshot, len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, data[:len(snapshotMagic)])
	}
	body := data[:len(data)-snapshotFooterLen]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(data[len(body):]) {
		return nil, fmt.Errorf("%w: integrity footer mismatch", ErrBadSnapshot)
	}
	d := &SnapDecoder{buf: body, off: len(snapshotMagic)}
	if v := d.Uvarint(); v != snapshotVersion || d.err != nil {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	return d, nil
}

// InspectSnapshot validates a snapshot's framing (magic, version,
// SHA-256 footer) and returns its header without restoring anything.
// Corrupt or truncated data fails with ErrBadSnapshot.
func InspectSnapshot(data []byte) (SnapshotInfo, error) {
	d, err := openSnapshot(data)
	if err != nil {
		return SnapshotInfo{}, err
	}
	info := SnapshotInfo{
		Version: snapshotVersion,
		N:       int(d.Uvarint()),
		M:       int(d.Uvarint()),
		Seed:    d.Varint(),
	}
	d.Uvarint() // bitBound
	d.Uvarint() // maxRounds
	d.Bool()    // stopOnReject
	info.Round = int(d.Uvarint())
	info.Barriers = int64(d.Uvarint())
	if d.err != nil {
		return SnapshotInfo{}, d.err
	}
	return info, nil
}

// ResumeStep restores a run from a snapshot and drives it to
// completion, returning the same Result an uninterrupted run would have
// produced. cfg.Graph must be the graph of the original run (node and
// edge counts are checked); the run parameters that shape the
// computation — seed, IDs, bit bound, round limit, stop-on-reject — are
// taken from the snapshot, while the execution environment (Workers,
// Cancel, Deadline, Checkpoint) comes from cfg. restore rebuilds each
// live node's program from its serialized state.
func ResumeStep(cfg Config, data []byte, restore RestoreFunc) (*Result, error) {
	d, err := openSnapshot(data)
	if err != nil {
		return nil, err
	}
	g := cfg.Graph
	if g == nil {
		return nil, errors.New("congest: ResumeStep needs cfg.Graph")
	}
	n := int(d.Uvarint())
	m := int(d.Uvarint())
	if n != g.N() || m != g.M() {
		return nil, fmt.Errorf("%w: snapshot is for an n=%d m=%d graph, got n=%d m=%d",
			ErrBadSnapshot, n, m, g.N(), g.M())
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eng := &engine{
		g:            g,
		revPort:      g.RevPorts(),
		n:            n,
		seed:         d.Varint(),
		phase:        make([]nodePhase, n),
		deadline:     make([]int64, n),
		heapDl:       make([]int64, n),
		hot:          make([]nodeHot, n),
		outbox:       make([][]outMsg, n),
		rejFlag:      make([]bool, n),
		modeled:      make([]int64, n),
		chargedMsgs:  make([]int64, n),
		chargedBits:  make([]int64, n),
		rngs:         make([]*rand.Rand, n),
		rngSrc:       make([]*countingSource, n),
		apis:         make([]StepAPI, n),
		verdicts:     make([]Verdict, n),
		ids:          make([]int64, n),
		bitBound:     int(d.Uvarint()),
		maxRounds:    int(d.Uvarint()),
		stopOnRej:    d.Bool(),
		workers:      workers,
		cancel:       cfg.Cancel,
		ckpt:         cfg.Checkpoint,
		wallDeadline: cfg.Deadline,
	}
	eng.round = int(d.Uvarint())
	eng.barriers = int64(d.Uvarint())
	eng.alive = int(d.Uvarint())
	eng.rejected = d.Bool()
	eng.m.BitBound = eng.bitBound
	eng.m.Messages = int64(d.Uvarint())
	eng.m.TotalBits = int64(d.Uvarint())
	eng.m.MaxMessageBits = int(d.Uvarint())
	eng.m.DroppedToDone = int64(d.Uvarint())
	for i := range eng.ids {
		eng.ids[i] = d.Varint()
	}
	if d.err != nil {
		return nil, d.err
	}
	sentWords := 0
	for i := 0; i < n; i++ {
		sentWords += (g.Degree(i) + 63) / 64
	}
	eng.sentBits = make([]uint64, sentWords)
	off := int32(0)
	for i := 0; i < n; i++ {
		deg := g.Degree(i)
		eng.apis[i] = StepAPI{eng: eng, node: int32(i), degree: int32(deg), sentOff: off, id: eng.ids[i]}
		off += int32((deg + 63) / 64)
	}

	alive := 0
	for i := 0; i < n; i++ {
		ph := nodePhase(d.Uvarint())
		if ph != phaseWaiting && ph != phaseDone {
			return nil, fmt.Errorf("%w: node %d has phase %d", ErrBadSnapshot, i, ph)
		}
		eng.phase[i] = ph
		eng.verdicts[i] = Verdict(d.Uvarint())
		eng.rejFlag[i] = d.Bool()
		eng.modeled[i] = int64(d.Uvarint())
		if ph != phaseWaiting {
			continue
		}
		alive++
		eng.deadline[i] = int64(d.Uvarint())
		if eng.deadline[i] <= int64(eng.round) {
			return nil, fmt.Errorf("%w: node %d deadline %d not after round %d",
				ErrBadSnapshot, i, eng.deadline[i], eng.round)
		}
		if d.Bool() {
			draws := d.Uvarint()
			if d.err != nil {
				return nil, d.err
			}
			src := &countingSource{src: nodeRNGSource(eng.seed, i)}
			for k := uint64(0); k < draws; k++ {
				src.src.Uint64()
			}
			src.n = draws
			eng.rngSrc[i] = src
			eng.rngs[i] = rand.New(src)
		}
		nmail := d.Uvarint()
		if nmail > uint64(d.Remaining()) {
			return nil, fmt.Errorf("%w: node %d mailbox length %d", ErrBadSnapshot, i, nmail)
		}
		deg := uint64(g.Degree(i))
		for k := uint64(0); k < nmail; k++ {
			port := d.Uvarint()
			from := d.Uvarint()
			msg := d.Msg()
			if d.err != nil {
				return nil, d.err
			}
			if port >= deg || from >= uint64(n) {
				return nil, fmt.Errorf("%w: node %d mailbox entry %d out of range", ErrBadSnapshot, i, k)
			}
			eng.hot[i].mailbox = append(eng.hot[i].mailbox, Inbound{Port: int(port), From: int(from), Msg: msg})
		}
		kind := d.Uvarint()
		state := d.Bytes()
		if d.err != nil {
			return nil, d.err
		}
		sub := NewSnapDecoder(state)
		prog, rerr := restore(i, uint16(kind), sub)
		if rerr != nil {
			return nil, fmt.Errorf("congest: restore node %d (kind %d): %w", i, kind, rerr)
		}
		if sub.err != nil {
			return nil, fmt.Errorf("node %d: %w", i, sub.err)
		}
		if sub.Remaining() != 0 {
			return nil, fmt.Errorf("%w: node %d program state has %d trailing bytes",
				ErrBadSnapshot, i, sub.Remaining())
		}
		eng.hot[i].prog = prog
	}
	eng.initObs(cfg)
	eng.decodeObsSection(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, d.Remaining())
	}
	if alive != eng.alive {
		return nil, fmt.Errorf("%w: header says %d live nodes, records have %d",
			ErrBadSnapshot, eng.alive, alive)
	}

	// Rebuild the scheduling structures from the slabs. They are
	// equivalent to (not bitwise-identical with) the originals — e.g. a
	// node that entered the original heap with deadline round+1 lands in
	// nrList here — but both layouts wake the exact same due set in the
	// exact same (ascending) order at every subsequent barrier, which is
	// all the scheduler's behavior depends on.
	for i := 0; i < n; i++ {
		if eng.phase[i] != phaseWaiting {
			continue
		}
		if len(eng.hot[i].mailbox) > 0 {
			eng.mailDue = append(eng.mailDue, int32(i))
		}
		if dl := eng.deadline[i]; dl == int64(eng.round+1) {
			eng.nrList = append(eng.nrList, int32(i))
		} else {
			eng.heapDl[i] = dl
			eng.heapPush(dl, int32(i))
		}
	}

	eng.run(nil, true)
	eng.shutdown()
	eng.releaseRNG()

	eng.m.Rounds = eng.round
	for i := range eng.modeled {
		eng.m.ModeledRounds += eng.modeled[i]
		eng.m.Messages += eng.chargedMsgs[i]
		eng.m.TotalBits += eng.chargedBits[i]
	}
	return &Result{Verdicts: eng.verdicts, Metrics: eng.m, Phases: eng.finishObs()}, eng.runErr
}
