package congest

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// API is a node's handle to the network. It is valid only inside the
// node's Program goroutine and is not safe for use from other goroutines.
type API struct {
	eng      *engine
	node     int
	id       int64
	n        int
	degree   int
	bitBound int
	rng      *rand.Rand

	resume   chan []Inbound
	verdicts []Verdict
	modeled  *atomic.Int64

	outbox    []outMsg
	sentPorts map[int]bool
	localRnd  int // rounds advanced, node-local view
}

// ID returns this node's CONGEST identifier.
func (a *API) ID() int64 { return a.id }

// Index returns the node's simulation index (0..n-1). Exposed for tests
// and output collection; faithful algorithms use ID and ports only.
func (a *API) Index() int { return a.node }

// N returns the number of nodes in the network (standard CONGEST
// assumption: n is global knowledge).
func (a *API) N() int { return a.n }

// Degree returns the number of incident edges (ports 0..Degree()-1).
func (a *API) Degree() int { return a.degree }

// BitBound returns the per-message bit bound B of this network, so that
// algorithms can chunk long logical payloads into B-bit messages.
func (a *API) BitBound() int { return a.bitBound }

// Rand returns this node's private deterministic randomness source.
func (a *API) Rand() *rand.Rand { return a.rng }

// Round returns the current global round number.
func (a *API) Round() int { return int(a.eng.round.Load()) }

// Send queues m on the given port for delivery at the next round. Sending
// twice on one port in a single round violates the CONGEST model and
// panics, as does an out-of-range port.
func (a *API) Send(port int, m Message) {
	if port < 0 || port >= a.degree {
		panic(fmt.Sprintf("congest: node %d: send on invalid port %d (degree %d)", a.node, port, a.degree))
	}
	if a.sentPorts == nil {
		a.sentPorts = make(map[int]bool, a.degree)
	}
	if a.sentPorts[port] {
		panic(fmt.Sprintf("congest: node %d: two messages on port %d in one round", a.node, port))
	}
	a.sentPorts[port] = true
	a.outbox = append(a.outbox, outMsg{port: port, msg: m})
}

// SendAll queues m on every port.
func (a *API) SendAll(m Message) {
	for p := 0; p < a.degree; p++ {
		a.Send(p, m)
	}
}

// NextRound completes the current round and blocks until the next one,
// returning the messages delivered to this node (sorted by sender).
func (a *API) NextRound() []Inbound {
	return a.yield(step{node: a.node, kind: stepNextRound, outbox: a.take()})
}

// SleepUntil completes the current round and blocks until either a message
// arrives (returning at its delivery round) or the global round reaches
// `round`, whichever comes first. It returns the delivered messages (empty
// on timeout). Messages queued with Send are still delivered.
func (a *API) SleepUntil(round int) []Inbound {
	return a.yield(step{node: a.node, kind: stepSleep, deadline: round, outbox: a.take()})
}

// Idle advances exactly `rounds` rounds, discarding any received messages.
// Use only where the algorithm's schedule guarantees silence.
func (a *API) Idle(rounds int) {
	target := a.Round() + rounds
	for a.Round() < target {
		a.SleepUntil(target)
	}
}

// Output records this node's verdict. The last call wins; a node that
// never calls Output contributes VerdictNone.
func (a *API) Output(v Verdict) {
	a.verdicts[a.node] = v
	if v == VerdictReject {
		a.eng.rejected.Store(true)
	}
}

// Verdict returns the verdict this node has recorded so far.
func (a *API) Verdict() Verdict {
	return a.verdicts[a.node]
}

// ChargeModeledRounds adds r to the modeled-rounds counter, accounting for
// the documented black-box substitutions (DESIGN.md §3).
func (a *API) ChargeModeledRounds(r int) {
	a.modeled.Add(int64(r))
}

func (a *API) take() []outMsg {
	out := a.outbox
	a.outbox = nil
	for p := range a.sentPorts {
		delete(a.sentPorts, p)
	}
	return out
}

func (a *API) yield(s step) []Inbound {
	if a.eng.aborted.Load() {
		panic(errAborted)
	}
	a.eng.steps <- s
	inbox, ok := <-a.resume
	if !ok {
		panic(errAborted)
	}
	return inbox
}
