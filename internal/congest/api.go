package congest

import (
	"math/rand"

	"repro/internal/obs"
)

// API is a node's handle to the network under the blocking compatibility
// model. It is valid only inside the node's Program goroutine and is not
// safe for use from other goroutines. It wraps the same engine-side core
// (StepAPI) that native step programs use, so both execution models share
// identical send, verdict, and randomness semantics.
type API struct {
	s  *StepAPI
	sh *shim
}

// ID returns this node's CONGEST identifier.
func (a *API) ID() int64 { return a.s.ID() }

// Index returns the node's simulation index (0..n-1). Exposed for tests
// and output collection; faithful algorithms use ID and ports only.
func (a *API) Index() int { return a.s.Index() }

// N returns the number of nodes in the network (standard CONGEST
// assumption: n is global knowledge).
func (a *API) N() int { return a.s.N() }

// Degree returns the number of incident edges (ports 0..Degree()-1).
func (a *API) Degree() int { return a.s.Degree() }

// BitBound returns the per-message bit bound B of this network, so that
// algorithms can chunk long logical payloads into B-bit messages.
func (a *API) BitBound() int { return a.s.BitBound() }

// Rand returns this node's private deterministic randomness source.
func (a *API) Rand() *rand.Rand { return a.s.Rand() }

// Round returns the current global round number.
func (a *API) Round() int { return a.s.Round() }

// Send queues m on the given port for delivery at the next round. Sending
// twice on one port in a single round violates the CONGEST model and
// panics, as does an out-of-range port.
func (a *API) Send(port int, m Message) { a.s.Send(port, m) }

// SendAll queues m on every port.
func (a *API) SendAll(m Message) { a.s.SendAll(m) }

// NextRound completes the current round and blocks until the next one,
// returning the messages delivered to this node (sorted by sender). The
// returned slice is reused by the engine: it is only valid until the next
// NextRound/SleepUntil/Idle call.
func (a *API) NextRound() []Inbound {
	return a.sh.await(Running())
}

// SleepUntil completes the current round and blocks until either a message
// arrives (returning at its delivery round) or the global round reaches
// `round`, whichever comes first. It returns the delivered messages (empty
// on timeout). Messages queued with Send are still delivered. The returned
// slice is only valid until the next NextRound/SleepUntil/Idle call.
func (a *API) SleepUntil(round int) []Inbound {
	return a.sh.await(Sleep(round))
}

// Idle advances exactly `rounds` rounds, discarding any received messages.
// Use only where the algorithm's schedule guarantees silence.
func (a *API) Idle(rounds int) {
	target := a.Round() + rounds
	for a.Round() < target {
		a.SleepUntil(target)
	}
}

// Output records this node's verdict. The last call wins; a node that
// never calls Output contributes VerdictNone.
func (a *API) Output(v Verdict) { a.s.Output(v) }

// Verdict returns the verdict this node has recorded so far.
func (a *API) Verdict() Verdict { return a.s.Verdict() }

// ChargeModeledRounds adds r to the modeled-rounds counter, accounting for
// the documented black-box substitutions (DESIGN.md §3).
func (a *API) ChargeModeledRounds(r int) { a.s.ChargeModeledRounds(r) }

// PhaseEnter announces a phase transition for per-phase attribution
// (see StepAPI.PhaseEnter). A no-op when the run has no obs.Probe.
func (a *API) PhaseEnter(id obs.PhaseID) { a.s.PhaseEnter(id) }

// yieldMsg is what a blocking-node goroutine hands back to the engine at
// every yield point: its scheduling request, or the value it panicked with.
type yieldMsg struct {
	status Status
	pan    any
	panned bool
}

// shim runs a blocking Program on its own goroutine and adapts it to the
// StepProgram interface: each Step resumes the goroutine with the round's
// inbox and blocks until the program yields again. The handoff is strictly
// sequential (one node at a time), so the two channel operations per wake
// stay on the uncontended direct-switch path of the runtime scheduler —
// still far costlier than a native Step call, which is why hot paths are
// ported to StepProgram (DESIGN.md §2).
type shim struct {
	prog    Program
	api     *API
	resume  chan []Inbound
	yield   chan yieldMsg
	started bool
	closed  bool
}

func newShim(prog Program) *shim {
	return &shim{
		prog:   prog,
		resume: make(chan []Inbound),
		yield:  make(chan yieldMsg),
	}
}

// Step implements StepProgram by resuming the blocking goroutine for one
// round. The first call starts the goroutine; the program's round-0 code
// (or, after Become, its current-round code) runs immediately.
func (sh *shim) Step(api *StepAPI, inbox []Inbound) Status {
	if !sh.started {
		sh.started = true
		sh.api = &API{s: api, sh: sh}
		api.eng.wg.Add(1)
		go sh.run()
	} else {
		sh.resume <- inbox
	}
	y := <-sh.yield
	if y.panned {
		return Status{kind: statusPanic, panicVal: y.pan}
	}
	return y.status
}

// await is the blocking side of the handoff: yield the given status to the
// engine and park until the engine delivers the next inbox.
func (sh *shim) await(st Status) []Inbound {
	sh.yield <- yieldMsg{status: st}
	inbox, ok := <-sh.resume
	if !ok {
		panic(errAborted) // engine-initiated shutdown
	}
	return inbox
}

func (sh *shim) run() {
	defer sh.api.s.eng.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if r == errAborted {
				return // engine-initiated shutdown; engine is not listening
			}
			sh.yield <- yieldMsg{pan: r, panned: true}
			return
		}
		sh.yield <- yieldMsg{status: Done()}
	}()
	sh.prog(sh.api)
}
