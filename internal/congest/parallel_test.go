package congest

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/graph"
)

// Parallel-engine equivalence: the worker-pool scheduler (Config.Workers
// > 1) must produce byte-identical Results to the sequential engine for
// any worker count (issue acceptance criterion). The graphs here have
// ≥ minParallelDue nodes so the pool really engages, and the programs
// mix dense barriers (every node due) with sparse ones (frontier-only
// wakes, below the threshold) so both the pooled and the inline path of
// a Workers>1 run are exercised. CI runs this file under -race, which
// verifies the compute phase touches only per-node state.

// workerCounts is the issue-mandated equivalence matrix {1, 4,
// GOMAXPROCS} plus 2 (the smallest pool): every count must produce
// Results byte-identical to the Workers=1 baseline.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestParallelEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 12)},
		{"cycle", graph.Cycle(150)},
		{"star", graph.Star(90)},
	}
	for _, fam := range families {
		for seed := int64(0); seed < 2; seed++ {
			const deadline = 400
			seqDist := make([]int, fam.g.N())
			seqRes, seqErr := RunStep(Config{Graph: fam.g, Seed: seed, Workers: 1}, func(int) StepProgram {
				return &floodStep{deadline: deadline, dist: seqDist}
			})
			if seqErr != nil {
				t.Fatalf("%s/seed%d: sequential: %v", fam.name, seed, seqErr)
			}
			for _, w := range workerCounts() {
				parDist := make([]int, fam.g.N())
				parRes, parErr := RunStep(Config{Graph: fam.g, Seed: seed, Workers: w}, func(int) StepProgram {
					return &floodStep{deadline: deadline, dist: parDist}
				})
				if parErr != nil {
					t.Fatalf("%s/seed%d/w%d: parallel: %v", fam.name, seed, w, parErr)
				}
				if !reflect.DeepEqual(seqRes, parRes) {
					t.Fatalf("%s/seed%d/w%d flood: result mismatch:\nworkers=1: %+v\nworkers=%d: %+v",
						fam.name, seed, w, seqRes, w, parRes)
				}
				if !reflect.DeepEqual(seqDist, parDist) {
					t.Fatalf("%s/seed%d/w%d flood: distances differ", fam.name, seed, w)
				}
			}

			rounds := 40
			seqOut := make([]int64, fam.g.N())
			seqRes, seqErr = RunStep(Config{Graph: fam.g, Seed: seed, Workers: 1}, func(int) StepProgram {
				return &leaderStep{rounds: rounds, out: seqOut}
			})
			if seqErr != nil {
				t.Fatalf("%s/seed%d: sequential leader: %v", fam.name, seed, seqErr)
			}
			for _, w := range workerCounts() {
				parOut := make([]int64, fam.g.N())
				parRes, parErr := RunStep(Config{Graph: fam.g, Seed: seed, Workers: w}, func(int) StepProgram {
					return &leaderStep{rounds: rounds, out: parOut}
				})
				if parErr != nil {
					t.Fatalf("%s/seed%d/w%d: parallel leader: %v", fam.name, seed, w, parErr)
				}
				if !reflect.DeepEqual(seqRes, parRes) {
					t.Fatalf("%s/seed%d/w%d leader: result mismatch", fam.name, seed, w)
				}
				if !reflect.DeepEqual(seqOut, parOut) {
					t.Fatalf("%s/seed%d/w%d leader: winners differ", fam.name, seed, w)
				}
			}
		}
	}
}

// TestParallelBlockingEquivalence runs blocking (shim) programs under the
// worker pool: each worker drives its nodes' goroutines through the
// sequential channel handoff, which must not change Results.
func TestParallelBlockingEquivalence(t *testing.T) {
	g := graph.Grid(9, 11)
	prog := func(api *API) {
		best := api.ID()
		for r := 0; r < 25; r++ {
			api.SendAll(intMsg{best})
			for _, in := range api.NextRound() {
				if m := in.Msg.(intMsg); m.v > best {
					best = m.v
				}
			}
		}
		if best == int64(api.N()) {
			api.Output(VerdictReject)
		} else {
			api.Output(VerdictAccept)
		}
	}
	seqRes, err := Run(Config{Graph: g, Seed: 7, Workers: 1}, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		parRes, err := Run(Config{Graph: g, Seed: 7, Workers: w}, prog)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(seqRes, parRes) {
			t.Fatalf("workers=%d: blocking result mismatch:\nworkers=1: %+v\nworkers=%d: %+v",
				w, seqRes, w, parRes)
		}
	}
}

// TestParallelPanicDeterminism: a panic in a pooled barrier must surface
// as the same run error as in the sequential engine — the first
// panicking node in due order decides.
func TestParallelPanicDeterminism(t *testing.T) {
	g := graph.Grid(10, 10)
	progs := func(node int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Round() == 3 && api.Index()%17 == 5 {
				panic("boom")
			}
			api.SendAll(intMsg{int64(api.Round())})
			return Running()
		})
	}
	_, seqErr := RunStep(Config{Graph: g, Seed: 1, Workers: 1}, progs)
	if seqErr == nil || !strings.Contains(seqErr.Error(), "panicked at round 3") {
		t.Fatalf("sequential: unexpected error %v", seqErr)
	}
	for _, w := range workerCounts() {
		_, parErr := RunStep(Config{Graph: g, Seed: 1, Workers: w}, progs)
		if parErr == nil || parErr.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: error mismatch:\nworkers=1: %v\nworkers=%d: %v",
				w, seqErr, w, parErr)
		}
	}
}
