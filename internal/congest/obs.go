package congest

// Engine-side observability (internal/obs): per-phase attribution,
// progress publishing, and trace emission. Everything here is gated on
// Config.Probe / Config.Trace being set — a run without them executes
// one nil check per barrier and allocates nothing, which is the
// zero-overhead-when-disabled contract the bench gate pins.
//
// Determinism: phase announcements are written by nodes into the pReq
// slab during Step (each node touches only its own slot, so the compute
// phase stays race-free under parallel workers) and folded by the
// engine loop at the barrier, in due (ascending node index) order, with
// the last announcement winning — the same order the sequential engine
// would observe. Every accumulated column except WallNs is therefore
// byte-identical across Workers values, with tracing on or off, and
// under kill-and-resume (the snapshot carries the folded accumulators).

import (
	"time"

	"repro/internal/obs"
)

// initObs installs the run's probe, trace sink, and progress cell, and
// allocates the probe slabs. Called once before the scheduler loop by
// RunStep and ResumeStep.
func (e *engine) initObs(cfg Config) {
	e.probe, e.trace, e.progress = cfg.Probe, cfg.Trace, cfg.Progress
	if e.probe == nil && e.trace == nil {
		return
	}
	now := time.Now()
	e.runStart = now
	e.pLastStamp = now
	if e.probe != nil {
		e.pReq = make([]int32, e.n)
		e.pWinMsgs = make([]int64, e.n)
		e.pWinBits = make([]int64, e.n)
		e.pWinCnt = make([]int64, e.n)
		e.pStat(int32(len(e.probe.Names()) - 1)) // size for pre-interned phases
		e.pLastMsgs, e.pLastBits = e.m.Messages, e.m.TotalBits
	}
	if e.trace != nil {
		e.trace.Emit(obs.Event{Event: "run_start", Round: int64(e.round), Barrier: e.barriers,
			N: int64(e.n), M: int64(e.g.M()), Seed: e.seed, Workers: int64(e.workers)})
		if e.probe != nil {
			e.pSeg = *e.pStat(e.pPhase)
		}
	}
}

// pStat returns the accumulator of phase id, growing the table as
// needed (ids are interned before the run, so growth normally happens
// once, in initObs).
func (e *engine) pStat(id int32) *obs.PhaseStat {
	for int(id) >= len(e.pStats) {
		e.pStats = append(e.pStats, obs.PhaseStat{})
	}
	return &e.pStats[id]
}

// foldProbe is the per-barrier attribution step, called by the
// scheduler loop right after a barrier completes (before any
// checkpoint, so snapshots capture folded state). It applies phase
// announcements in due order, then charges the barrier's wakes,
// routed-traffic deltas, fast-forward windows, and wall time to the
// resulting current phase.
func (e *engine) foldProbe(due []int32) {
	for _, i := range due {
		if r := e.pReq[i]; r != 0 {
			e.pReq[i] = 0
			if r != e.pPhase {
				e.switchPhase(r)
			}
		}
	}
	st := e.pStat(e.pPhase)
	st.Barriers++
	st.Wakes += int64(len(due))
	st.Messages += e.m.Messages - e.pLastMsgs
	st.Bits += e.m.TotalBits - e.pLastBits
	e.pLastMsgs, e.pLastBits = e.m.Messages, e.m.TotalBits
	var wMsgs, wBits, wCnt int64
	for _, i := range due {
		if c := e.pWinCnt[i]; c != 0 {
			wCnt += c
			wMsgs += e.pWinMsgs[i]
			wBits += e.pWinBits[i]
			e.pWinCnt[i], e.pWinMsgs[i], e.pWinBits[i] = 0, 0, 0
		}
	}
	if wCnt != 0 {
		st.Windows += wCnt
		st.Messages += wMsgs
		st.Bits += wBits
		if e.trace != nil {
			e.trace.Emit(obs.Event{Event: "fast_forward", Round: int64(e.round), Barrier: e.barriers,
				Phase: e.phaseName(e.pPhase), Windows: wCnt, Messages: wMsgs, Bits: wBits})
		}
	}
	now := time.Now()
	st.WallNs += now.Sub(e.pLastStamp).Nanoseconds()
	e.pLastStamp = now
}

// switchPhase closes the current phase segment (emitting its trace
// deltas) and makes `to` current. The barrier being folded is charged
// to the new phase: a phase's announcing wake executes the phase's
// first op, so its cost belongs to the entered phase.
func (e *engine) switchPhase(to int32) {
	if e.trace != nil {
		e.traceSegment()
	}
	e.pPhase = to
	e.pStat(to)
	if e.trace != nil {
		e.trace.Emit(obs.Event{Event: "phase_enter", Phase: e.phaseName(to),
			Round: int64(e.round), Barrier: e.barriers})
		e.pSeg = *e.pStat(to)
	}
}

// traceSegment emits a phase_exit event carrying the current phase's
// accumulation since its segment started (a phase re-entered later gets
// a fresh segment; trace_report sums segments per phase).
func (e *engine) traceSegment() {
	cur := *e.pStat(e.pPhase)
	e.trace.Emit(obs.Event{
		Event:    "phase_exit",
		Phase:    e.phaseName(e.pPhase),
		Round:    int64(e.round),
		Barrier:  e.barriers,
		WallNs:   cur.WallNs - e.pSeg.WallNs,
		Wakes:    cur.Wakes - e.pSeg.Wakes,
		Barriers: cur.Barriers - e.pSeg.Barriers,
		Messages: cur.Messages - e.pSeg.Messages,
		Bits:     cur.Bits - e.pSeg.Bits,
		Windows:  cur.Windows - e.pSeg.Windows,
	})
}

func (e *engine) phaseName(id int32) string {
	if e.probe == nil {
		return "run"
	}
	return e.probe.Name(obs.PhaseID(id))
}

// finishObs closes the run's instrumentation after the scheduler loop
// ended and the final Metrics are summed: it charges the tail wall
// time, emits the closing trace events (abort on error, then run_end
// with the final totals), and returns the PhaseBreakdown (nil when no
// probe was configured).
func (e *engine) finishObs() obs.PhaseBreakdown {
	if e.probe == nil && e.trace == nil {
		return nil
	}
	var bd obs.PhaseBreakdown
	if e.probe != nil {
		now := time.Now()
		st := e.pStat(e.pPhase)
		st.WallNs += now.Sub(e.pLastStamp).Nanoseconds()
		e.pLastStamp = now
		names := e.probe.Names()
		e.pStat(int32(len(names) - 1))
		bd = make(obs.PhaseBreakdown, len(names))
		for id, name := range names {
			bd[id] = e.pStats[id]
			bd[id].Name = name
		}
	}
	if e.trace != nil {
		if e.probe != nil {
			e.traceSegment()
		}
		if e.runErr != nil {
			e.trace.Emit(obs.Event{Event: "abort", Round: int64(e.round),
				Barrier: e.barriers, Err: e.runErr.Error()})
		}
		e.trace.Emit(obs.Event{Event: "run_end", Round: int64(e.round), Barrier: e.barriers,
			Barriers: e.barriers, Messages: e.m.Messages, Bits: e.m.TotalBits,
			WallNs: time.Since(e.runStart).Nanoseconds()})
	}
	return bd
}

// encodeObsSection appends the attribution state to a snapshot: the
// interned phase names (in PhaseID order), the per-phase accumulators,
// and the current phase. Always writes the presence flag, so the layout
// is identical with and without a probe. WallNs is carried so a resumed
// run's breakdown approximates the continuous run's wall column; every
// other column is exact (and pinned byte-identical by the
// instrumentation-soundness test).
func (e *engine) encodeObsSection(enc *SnapEncoder) {
	if e.probe == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	names := e.probe.Names()
	e.pStat(int32(len(names) - 1))
	enc.Uvarint(uint64(len(names)))
	for _, name := range names {
		enc.Bytes([]byte(name))
	}
	for id := range names {
		st := e.pStats[id]
		enc.Varint(st.WallNs)
		enc.Varint(st.Wakes)
		enc.Varint(st.Barriers)
		enc.Varint(st.Messages)
		enc.Varint(st.Bits)
		enc.Varint(st.Windows)
	}
	enc.Uvarint(uint64(e.pPhase))
}

// decodeObsSection restores the attribution state written by
// encodeObsSection. Phase names are re-interned through the resumed
// run's probe (so IDs stay correct even if the resumed run interned
// phases in a different order); when the resumed run has no probe the
// section is decoded and discarded.
func (e *engine) decodeObsSection(d *SnapDecoder) {
	if !d.Bool() {
		return
	}
	count := d.Uvarint()
	if d.Err() != nil || count > uint64(d.Remaining()) {
		d.Uvarint() // force a sticky error on a hostile count
		return
	}
	names := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		names = append(names, string(d.Bytes()))
	}
	stats := make([]obs.PhaseStat, count)
	for i := range stats {
		stats[i] = obs.PhaseStat{
			WallNs:   d.Varint(),
			Wakes:    d.Varint(),
			Barriers: d.Varint(),
			Messages: d.Varint(),
			Bits:     d.Varint(),
			Windows:  d.Varint(),
		}
	}
	cur := d.Uvarint()
	if d.Err() != nil || e.probe == nil {
		return
	}
	for i, name := range names {
		id := e.probe.Phase(name)
		*e.pStat(int32(id)) = stats[i]
	}
	if cur < count {
		e.pPhase = int32(e.probe.Phase(names[cur]))
	}
	e.pLastMsgs, e.pLastBits = e.m.Messages, e.m.TotalBits
}
