package congest

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// Tests pinned to the struct-of-arrays hot-state layout (DESIGN.md §8):
// the flat duplicate-send bitset, the lazily created per-node RNGs, and
// the 64-bit deadline slab (round numbers past 2^31 are legitimate).
// Each property must hold at every worker count, since workers write
// distinct slab indices concurrently.

// drawStep draws randomness on a subset of nodes only, so the run
// exercises both lazily created and never-created RNG slots. The verdict
// depends on the draw, which makes any seeding or draw-order change
// visible in the Result.
type drawStep struct{ rounds int }

func (d *drawStep) Step(api *StepAPI, inbox []Inbound) Status {
	if api.Round() < d.rounds {
		return Running()
	}
	if api.Index()%3 == 0 {
		if api.Rand().Int63()%2 == 0 {
			api.Output(VerdictAccept)
		} else {
			api.Output(VerdictReject)
		}
	} else {
		api.Output(VerdictAccept)
	}
	return Done()
}

// TestLazyRandDeterminism: RNGs are created on first StepAPI.Rand call
// (most nodes of a deterministic run never allocate one); creation order
// differs between sequential and pooled barriers, so seeding must depend
// only on (run seed, node id) for Results to stay byte-identical.
func TestLazyRandDeterminism(t *testing.T) {
	g := graph.Grid(10, 12)
	run := func(workers int) *Result {
		res, err := RunStep(Config{Graph: g, Seed: 42, Workers: workers}, func(int) StepProgram {
			return &drawStep{rounds: 3}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	if base.RejectCount() == 0 {
		t.Fatal("want at least one reject so the draws are visible in the Result")
	}
	again := run(1)
	if !reflect.DeepEqual(base, again) {
		t.Fatal("same seed, different Results across runs")
	}
	for _, w := range workerCounts() {
		if par := run(w); !reflect.DeepEqual(base, par) {
			t.Fatalf("workers=%d: result mismatch:\nworkers=1: %+v\nworkers=%d: %+v", w, base, w, par)
		}
	}
}

// TestSleepBeyondMaxRounds: a sleep target past MaxRounds ends the run
// with the exceeded-rounds error once no earlier event exists.
func TestSleepBeyondMaxRounds(t *testing.T) {
	g := graph.Cycle(4)
	_, err := RunStep(Config{Graph: g, Seed: 1}, func(int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			return Sleep(math.MaxInt) // far past any representable round
		})
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded 4000000 rounds") {
		t.Fatalf("want exceeded-rounds error, got %v", err)
	}
}

// TestRoundNumbersBeyondInt32: the deadline slab must carry full 64-bit
// round numbers. Exponential-budget schedules under the testers'
// MaxRounds of 2^40 legitimately sleep across billions of empty rounds
// — the engine fast-forwards over them, so huge round numbers are cheap
// — and a narrowed slab turns such a run into a spurious
// exceeded-rounds error (regression: planartest with the default
// fixed-phase schedule died at n=10^4).
func TestRoundNumbersBeyondInt32(t *testing.T) {
	const wake = int(3) << 31 // past int32 range, below MaxRounds
	g := graph.Cycle(4)
	res, err := RunStep(Config{Graph: g, Seed: 1, MaxRounds: 1 << 40}, func(int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Round() >= wake {
				api.Output(VerdictAccept)
				return Done()
			}
			return Sleep(wake)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatal("fast-forwarded run did not accept")
	}
	if res.Metrics.Rounds != wake {
		t.Fatalf("Rounds = %d, want %d", res.Metrics.Rounds, wake)
	}
}

// TestMailWakeFarDeadline: a node parked far past MaxRounds must still
// wake normally on mail — the huge deadline never becomes the next
// event. The star makes every sleeper a neighbor of the sender, so
// every node is woken well before any deadline matters.
func TestMailWakeFarDeadline(t *testing.T) {
	g := graph.Star(5) // node 0 is the center
	woken := make([]bool, g.N())
	res, err := RunStep(Config{Graph: g, Seed: 1}, func(node int) StepProgram {
		if node == 0 {
			return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
				if api.Round() == 0 {
					api.SendAll(intMsg{7})
					return Running()
				}
				api.Output(VerdictAccept)
				return Done()
			})
		}
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if len(inbox) > 0 {
				woken[api.Index()] = true
				api.Output(VerdictAccept)
				return Done()
			}
			return Sleep(math.MaxInt)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range woken[1:] {
		if !w {
			t.Fatalf("leaf %d not woken by mail: %v", i+1, woken)
		}
	}
	if res.Metrics.Rounds > 10 {
		t.Fatalf("run took %d rounds; mail wake should end it promptly", res.Metrics.Rounds)
	}
}

// TestSharedSentBitset: per-node duplicate-send bitsets share one flat
// uint64 slab. A high-degree node spans multiple words; its duplicate
// check must trip on its own ports and stay independent of its
// neighbors' words.
func TestSharedSentBitset(t *testing.T) {
	g := graph.Star(90) // center degree 89: bitset spans two words
	res, err := RunStep(Config{Graph: g, Seed: 3}, func(node int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Round() == 0 {
				api.SendAll(intMsg{int64(api.Index())}) // every port once: legal
				return Running()
			}
			api.Output(VerdictAccept)
			return Done()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatal("star broadcast run did not accept")
	}

	_, err = RunStep(Config{Graph: g, Seed: 3}, func(node int) StepProgram {
		return StepFunc(func(api *StepAPI, inbox []Inbound) Status {
			if api.Index() == 0 && api.Round() == 0 {
				api.Send(70, intMsg{1}) // port 70 lives in the second word
				api.Send(70, intMsg{2})
			}
			return Done()
		})
	})
	if err == nil || !strings.Contains(err.Error(), "two messages on port 70") {
		t.Fatalf("want duplicate-send panic on port 70, got %v", err)
	}
}
