// Package congest simulates the CONGEST model of distributed computing
// (Peleg, 2000): a synchronous message-passing network over a graph where
// in every round each node may send one message of O(log n) bits over each
// incident edge.
//
// Node programs come in two execution models (DESIGN.md §2). The native
// fast path is the run-to-completion StepProgram model: a node is an
// explicit state machine stepped by the engine in a plain loop — no
// goroutines, no channel operations. The compatibility model is the
// blocking Program API (ordinary sequential functions using NextRound /
// SleepUntil), run on one goroutine per node behind a sequential shim.
// Both models can be mixed per node (Become / BecomeStep) and produce
// byte-identical Results for identical logical programs and seeds. The
// engine enforces the model either way: at most one message per edge per
// direction per round, and a hard per-message bit bound.
//
// Everything is deterministic for a fixed Config.Seed: nodes interact only
// at round barriers, inboxes are sorted by sender, and per-node randomness
// comes from seeded generators.
//
// The engine stores per-node hot state as struct-of-arrays slabs indexed
// by node id (plus one 64-byte array-of-structs dispatch line per node),
// sized for simulations in the 10⁵–10⁷-node range; DESIGN.md §8
// documents the memory model, and the README's scaling guide gives
// practical per-size limits.
package congest

import (
	"fmt"
	"math/bits"
)

// Message is a single CONGEST message. Implementations self-report their
// encoded size in bits; the engine checks it against the round bit bound.
type Message interface {
	Bits() int
}

// BitsForValue returns the number of bits needed to represent v >= 0
// (at least 1).
func BitsForValue(v int64) int {
	if v < 0 {
		panic(fmt.Sprintf("congest: negative value %d", v))
	}
	if v == 0 {
		return 1
	}
	return bits.Len64(uint64(v))
}

// BitsForID returns the number of bits of a node identifier in an n-node
// network (identifiers are assumed polynomial in n; we charge 2*ceil(log n)).
func BitsForID(n int) int {
	if n < 2 {
		return 2
	}
	return 2 * bits.Len(uint(n-1))
}

// Verdict is a node's final output for property-testing algorithms.
type Verdict uint8

// Verdicts. Per the distributed property-testing definition, a graph is
// accepted iff every node accepts; it is rejected iff at least one node
// rejects.
const (
	VerdictNone Verdict = iota
	VerdictAccept
	VerdictReject
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "accept"
	case VerdictReject:
		return "reject"
	default:
		return "none"
	}
}

// Inbound is a received message.
type Inbound struct {
	// Port is the receiving node's port (index into its adjacency list)
	// on which the message arrived. CONGEST algorithms should use this.
	Port int
	// From is the sender's node index; exposed for tests and metrics
	// only — a faithful CONGEST algorithm learns identities via messages.
	From int
	Msg  Message
}
