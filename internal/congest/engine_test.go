package congest

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// intMsg is a small test message carrying one value.
type intMsg struct{ v int64 }

func (m intMsg) Bits() int { return 8 + BitsForValue(m.v) }

// hugeMsg violates any sensible bit bound.
type hugeMsg struct{}

func (hugeMsg) Bits() int { return 1 << 20 }

func TestFloodBFSOnGrid(t *testing.T) {
	g := graph.Grid(8, 11)
	want := g.BFS(0)
	dist := make([]int, g.N())
	res, err := Run(Config{Graph: g, Seed: 1}, func(api *API) {
		const deadline = 1000
		d := -1
		if api.Index() == 0 {
			d = 0
			api.SendAll(intMsg{0})
			api.Idle(deadline - api.Round())
		} else {
			for d == -1 && api.Round() < deadline {
				for _, in := range api.SleepUntil(deadline) {
					if m, ok := in.Msg.(intMsg); ok && d == -1 {
						d = int(m.v) + 1
						api.SendAll(intMsg{int64(d)})
					}
				}
			}
			api.Idle(deadline - api.Round())
		}
		dist[api.Index()] = d
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if dist[v] != want.Dist[v] {
			t.Fatalf("node %d: flood dist %d, want %d", v, dist[v], want.Dist[v])
		}
	}
	// Fast-forward must keep the deadline rounds cheap but counted.
	if res.Metrics.Rounds != 1000 {
		t.Fatalf("rounds = %d, want 1000 (deadline padding)", res.Metrics.Rounds)
	}
	if res.Metrics.MaxMessageBits > res.Metrics.BitBound {
		t.Fatalf("max message bits %d exceeds bound %d", res.Metrics.MaxMessageBits, res.Metrics.BitBound)
	}
}

func TestLeaderElectionMaxID(t *testing.T) {
	g := graph.Cycle(17)
	leaders := make([]int64, g.N())
	_, err := Run(Config{Graph: g, Seed: 2}, func(api *API) {
		best := api.ID()
		for r := 0; r < g.N(); r++ {
			api.SendAll(intMsg{best})
			for _, in := range api.NextRound() {
				if m := in.Msg.(intMsg); m.v > best {
					best = m.v
				}
			}
		}
		leaders[api.Index()] = best
	})
	if err != nil {
		t.Fatal(err)
	}
	var max int64
	for _, l := range leaders {
		if l > max {
			max = l
		}
	}
	for i, l := range leaders {
		if l != max {
			t.Fatalf("node %d elected %d, want %d", i, l, max)
		}
	}
}

func TestBitBoundViolation(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g, Seed: 3}, func(api *API) {
		if api.Index() == 0 {
			api.Send(0, hugeMsg{})
		}
		api.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("want bit bound error, got %v", err)
	}
}

func TestDoubleSendPanics(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g, Seed: 4}, func(api *API) {
		if api.Index() == 0 {
			api.Send(0, intMsg{1})
			api.Send(0, intMsg{2}) // model violation
		}
		api.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "two messages") {
		t.Fatalf("want double-send error, got %v", err)
	}
}

func TestInvalidPortPanics(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(Config{Graph: g, Seed: 5}, func(api *API) {
		api.Send(5, intMsg{1})
		api.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "invalid port") {
		t.Fatalf("want invalid port error, got %v", err)
	}
}

func TestMaxRoundsExceeded(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g, Seed: 6, MaxRounds: 50}, func(api *API) {
		for {
			api.NextRound()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want max-rounds error, got %v", err)
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	g := graph.Path(4)
	_, err := Run(Config{Graph: g, Seed: 7}, func(api *API) {
		api.NextRound()
		if api.Index() == 2 {
			panic("boom")
		}
		for i := 0; i < 10; i++ {
			api.NextRound()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want propagated panic, got %v", err)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	g := graph.Grid(5, 5)
	run := func(seed int64) (*Result, []int64) {
		vals := make([]int64, g.N())
		res, err := Run(Config{Graph: g, Seed: seed}, func(api *API) {
			x := api.Rand().Int63n(1000)
			for r := 0; r < 20; r++ {
				api.SendAll(intMsg{x})
				for _, in := range api.NextRound() {
					x = (x + in.Msg.(intMsg).v) % 1_000_003
				}
			}
			vals[api.Index()] = x
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, vals
	}
	r1, v1 := run(42)
	r2, v2 := run(42)
	if r1.Metrics != r2.Metrics {
		t.Fatalf("metrics differ across identical runs:\n%v\n%v", r1.Metrics, r2.Metrics)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("node %d: values differ %d vs %d", i, v1[i], v2[i])
		}
	}
	_, v3 := run(43)
	same := true
	for i := range v1 {
		if v1[i] != v3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical outcomes (suspicious)")
	}
}

func TestSleepUntilWakesOnMessage(t *testing.T) {
	g := graph.Path(2)
	wokeAt := 0
	res, err := Run(Config{Graph: g, Seed: 8}, func(api *API) {
		if api.Index() == 0 {
			api.Idle(5)
			api.Send(0, intMsg{99})
			api.NextRound()
			return
		}
		inbox := api.SleepUntil(100000)
		wokeAt = api.Round()
		if len(inbox) != 1 || inbox[0].Msg.(intMsg).v != 99 {
			panic("wrong inbox")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if wokeAt != 6 {
		t.Fatalf("woke at round %d, want 6", wokeAt)
	}
	if res.Metrics.Rounds > 10 {
		t.Fatalf("rounds = %d; sleeper must not force the deadline", res.Metrics.Rounds)
	}
}

func TestFastForwardLongIdle(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(Config{Graph: g, Seed: 9}, func(api *API) {
		api.Idle(2_000_000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 2_000_000 {
		t.Fatalf("rounds = %d, want 2000000", res.Metrics.Rounds)
	}
}

func TestVerdictAggregation(t *testing.T) {
	g := graph.Path(5)
	res, err := Run(Config{Graph: g, Seed: 10}, func(api *API) {
		if api.Index() == 3 {
			api.Output(VerdictReject)
		} else {
			api.Output(VerdictAccept)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("Accepted must be false with a rejector")
	}
	if !res.Rejected() || res.RejectCount() != 1 {
		t.Fatalf("want exactly one reject, got %d", res.RejectCount())
	}
}

func TestMessageToDoneNodeDropped(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(Config{Graph: g, Seed: 11}, func(api *API) {
		if api.Index() == 0 {
			return // terminate immediately
		}
		api.NextRound()
		api.Send(0, intMsg{1}) // node 0 is done by now
		api.NextRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedToDone != 1 {
		t.Fatalf("dropped = %d, want 1", res.Metrics.DroppedToDone)
	}
}

func TestModeledRounds(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(Config{Graph: g, Seed: 12}, func(api *API) {
		api.ChargeModeledRounds(7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ModeledRounds != 21 {
		t.Fatalf("modeled rounds = %d, want 21", res.Metrics.ModeledRounds)
	}
}

func TestCustomIDs(t *testing.T) {
	g := graph.Path(3)
	ids := []int64{100, 200, 300}
	seen := make([]int64, 3)
	_, err := Run(Config{Graph: g, Seed: 13, IDs: ids}, func(api *API) {
		seen[api.Index()] = api.ID()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if seen[i] != ids[i] {
			t.Fatalf("node %d saw id %d, want %d", i, seen[i], ids[i])
		}
	}
}

func TestDefaultIDsAreUniquePermutation(t *testing.T) {
	g := graph.Grid(4, 4)
	seen := make([]int64, g.N())
	_, err := Run(Config{Graph: g, Seed: 14}, func(api *API) {
		seen[api.Index()] = api.ID()
	})
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int64]bool)
	for _, id := range seen {
		if id < 1 || id > int64(g.N()) || used[id] {
			t.Fatalf("ids are not a permutation of 1..n: %v", seen)
		}
		used[id] = true
	}
}

// pathTree builds the Tree view for node i on the path 0-1-...-n-1 rooted
// at node 0. Port layout: on a path, node 0 has port 0 -> node 1; interior
// node i has port 0 -> i-1 and port 1 -> i+1; the last node has port 0.
func pathTree(i, n int) Tree {
	switch {
	case i == 0:
		return Tree{ParentPort: -1, ChildPorts: []int{0}}
	case i == n-1:
		return Tree{ParentPort: 0}
	default:
		return Tree{ParentPort: 0, ChildPorts: []int{1}}
	}
}

func TestTreeBroadcastDown(t *testing.T) {
	const n = 7
	g := graph.Path(n)
	got := make([]int64, n)
	_, err := Run(Config{Graph: g, Seed: 15}, func(api *API) {
		tr := pathTree(api.Index(), n)
		deadline := api.Round() + n + 2
		var root Message
		if tr.IsRoot() {
			root = intMsg{v: 1}
		}
		// Each hop increments the payload, so node i receives i+1.
		m, ok := tr.BroadcastDown(api, deadline, root, func(m Message) Message {
			return intMsg{v: m.(intMsg).v + 1}
		})
		if !ok {
			panic("broadcast did not complete")
		}
		got[api.Index()] = m.(intMsg).v
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i] != int64(i+1) {
			t.Fatalf("node %d got %d, want %d", i, got[i], i+1)
		}
	}
}

func TestTreeConvergecastSum(t *testing.T) {
	const n = 9
	g := graph.Path(n)
	var rootSum int64
	_, err := Run(Config{Graph: g, Seed: 16}, func(api *API) {
		tr := pathTree(api.Index(), n)
		deadline := api.Round() + n + 2
		own := intMsg{v: int64(api.Index())}
		agg, ok := tr.Convergecast(api, deadline, own, func(own Message, children []Message) Message {
			s := own.(intMsg).v
			for _, c := range children {
				s += c.(intMsg).v
			}
			return intMsg{v: s}
		})
		if !ok {
			panic("convergecast did not complete")
		}
		if tr.IsRoot() {
			rootSum = agg.(intMsg).v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootSum != int64(n*(n-1)/2) {
		t.Fatalf("sum = %d, want %d", rootSum, n*(n-1)/2)
	}
}

func TestTreePipelineUp(t *testing.T) {
	const n = 6
	g := graph.Path(n)
	var collected []int64
	_, err := Run(Config{Graph: g, Seed: 17}, func(api *API) {
		tr := pathTree(api.Index(), n)
		// Each node contributes two items; budget = items + depth + slack.
		items := []Message{
			intMsg{v: int64(api.Index() * 10)},
			intMsg{v: int64(api.Index()*10 + 1)},
		}
		deadline := api.Round() + 2*n + n + 4
		got, ok := tr.PipelineUp(api, deadline, items)
		if !ok {
			panic("pipeline did not complete")
		}
		if tr.IsRoot() {
			for _, m := range got {
				collected = append(collected, m.(intMsg).v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(collected) != 2*n {
		t.Fatalf("collected %d items, want %d", len(collected), 2*n)
	}
	seen := make(map[int64]bool)
	for _, v := range collected {
		seen[v] = true
	}
	for i := 0; i < n; i++ {
		if !seen[int64(i*10)] || !seen[int64(i*10+1)] {
			t.Fatalf("missing items of node %d; got %v", i, collected)
		}
	}
}

func TestTreeBroadcastItemsDown(t *testing.T) {
	const n = 5
	g := graph.Path(n)
	counts := make([]int, n)
	_, err := Run(Config{Graph: g, Seed: 18}, func(api *API) {
		tr := pathTree(api.Index(), n)
		var items []Message
		if tr.IsRoot() {
			for k := 0; k < 7; k++ {
				items = append(items, intMsg{v: int64(100 + k)})
			}
		}
		deadline := api.Round() + 7 + n + 4
		got, ok := tr.BroadcastItemsDown(api, deadline, items)
		if !ok {
			panic("broadcast-items did not complete")
		}
		counts[api.Index()] = len(got)
		for k, m := range got {
			if m.(intMsg).v != int64(100+k) {
				panic("wrong item order")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 7 {
			t.Fatalf("node %d received %d items, want 7", i, c)
		}
	}
}

func TestTreeOpsOnStar(t *testing.T) {
	// Star: center 0 with 6 leaves; exercises wide fan-in/out.
	const n = 7
	g := graph.Star(n)
	var sum int64
	_, err := Run(Config{Graph: g, Seed: 19}, func(api *API) {
		var tr Tree
		if api.Index() == 0 {
			tr = Tree{ParentPort: -1, ChildPorts: []int{0, 1, 2, 3, 4, 5}}
		} else {
			tr = Tree{ParentPort: 0}
		}
		deadline := api.Round() + 4
		agg, ok := tr.Convergecast(api, deadline, intMsg{v: 1}, func(own Message, children []Message) Message {
			s := own.(intMsg).v
			for _, c := range children {
				s += c.(intMsg).v
			}
			return intMsg{v: s}
		})
		if !ok {
			panic("convergecast failed")
		}
		if tr.IsRoot() {
			sum = agg.(intMsg).v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != n {
		t.Fatalf("sum = %d, want %d", sum, n)
	}
}

func TestBitsHelpers(t *testing.T) {
	if BitsForValue(0) != 1 || BitsForValue(1) != 1 || BitsForValue(2) != 2 || BitsForValue(255) != 8 {
		t.Fatal("BitsForValue wrong")
	}
	if BitsForID(1024) != 20 {
		t.Fatalf("BitsForID(1024) = %d, want 20", BitsForID(1024))
	}
	if DefaultBitBound(1024) != 48*10 {
		t.Fatalf("DefaultBitBound(1024) = %d", DefaultBitBound(1024))
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictAccept.String() != "accept" || VerdictReject.String() != "reject" || VerdictNone.String() != "none" {
		t.Fatal("verdict strings wrong")
	}
}

func TestCancelAbortsRun(t *testing.T) {
	g := graph.Cycle(9)
	prog := func(api *API) {
		for r := 0; r < 1_000_000; r++ {
			api.SendAll(intMsg{int64(r)})
			api.NextRound()
		}
	}

	// A channel that fires mid-run ends it with ErrCanceled. Closing
	// before the run starts makes the abort deterministic: the engine
	// polls at the first barrier.
	done := make(chan struct{})
	close(done)
	_, err := Run(Config{Graph: g, Seed: 3, Cancel: done}, prog)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run: err = %v, want ErrCanceled", err)
	}

	// A cancel channel that never fires must not perturb the run:
	// byte-identical Results vs. a run without one.
	idle := make(chan struct{})
	defer close(idle)
	short := func(api *API) {
		for r := 0; r < 10; r++ {
			api.SendAll(intMsg{int64(r)})
			api.NextRound()
		}
		api.Output(VerdictAccept)
	}
	base, err := Run(Config{Graph: g, Seed: 3}, short)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Graph: g, Seed: 3, Cancel: idle}, short)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("idle cancel channel changed the run: %+v vs %+v", base, got)
	}
}
